package baseline

import (
	"repro/internal/channel"
)

// Pipeline is the end-to-end traditional transmitter/receiver: Huffman
// source coding, forward error correction, modulation and the physical
// channel. It transmits the exact text, bit by bit.
type Pipeline struct {
	Huff *Huffman
	Code channel.Code
	Mod  channel.Modulation
	Ch   channel.Channel
}

// Send transmits text through the pipeline and returns the decoded text
// with transport statistics. A 16-bit CRC is carried alongside the payload
// so the receiver can flag residual corruption; the returned ok reports
// whether the frame passed the integrity check.
func (p Pipeline) Send(text string) (decoded string, ok bool, stats channel.LinkStats) {
	info := p.Huff.Encode(text)
	crc := channel.CRC16(info)
	frame := make([]bool, 0, len(info)+16)
	frame = append(frame, info...)
	for b := 15; b >= 0; b-- {
		frame = append(frame, crc&(1<<uint(b)) != 0)
	}

	coded := p.Code.Encode(frame)
	symbols := p.Mod.Modulate(coded)
	received := p.Ch.Transmit(symbols)
	codedRx := p.Mod.Demodulate(received)
	if len(codedRx) > len(coded) {
		codedRx = codedRx[:len(coded)]
	}
	frameRx := p.Code.Decode(codedRx)
	if len(frameRx) > len(frame) {
		frameRx = frameRx[:len(frame)]
	}
	if len(frameRx) < 16 {
		return "", false, channel.LinkStats{InfoBits: len(frame), CodedBits: len(coded), Symbols: len(symbols)}
	}
	infoRx := frameRx[:len(frameRx)-16]
	var crcRx uint16
	for _, b := range frameRx[len(frameRx)-16:] {
		crcRx <<= 1
		if b {
			crcRx |= 1
		}
	}
	decoded = p.Huff.Decode(infoRx)
	ok = channel.CRC16(infoRx) == crcRx
	stats = channel.LinkStats{InfoBits: len(frame), CodedBits: len(coded), Symbols: len(symbols)}
	return decoded, ok, stats
}
