// Package baseline implements the traditional bit-oriented communication
// pipeline the paper contrasts semantic communication against: Huffman
// source coding of the raw text, channel coding, modulation and
// transmission of every bit. Meaning plays no role; fidelity is exact bit
// recovery, and errors surviving the channel code corrupt the decoded text
// from the flip onward.
package baseline

import (
	"container/heap"
	"sort"
)

// Huffman is a byte-level Huffman coder with a static code table trained
// on representative corpus text.
type Huffman struct {
	codes [256][]bool
	root  *hnode
}

// hnode is a Huffman tree node; leaves carry a byte symbol.
type hnode struct {
	count       int
	symbol      byte
	leaf        bool
	left, right *hnode
	// order breaks frequency ties deterministically.
	order int
}

// hheap is a min-heap over nodes by count, then insertion order.
type hheap []*hnode

func (h hheap) Len() int { return len(h) }
func (h hheap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].order < h[j].order
}
func (h hheap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x interface{}) { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Train builds a Huffman coder from sample text. Lowercase letters, digits
// and the space character receive add-one smoothing so any corpus sentence
// is encodable even if a byte never occurred in the samples.
func Train(samples []string) *Huffman {
	counts := make([]int, 256)
	for _, s := range samples {
		for i := 0; i < len(s); i++ {
			counts[s[i]]++
		}
	}
	for b := byte('a'); b <= 'z'; b++ {
		counts[b]++
	}
	for b := byte('0'); b <= '9'; b++ {
		counts[b]++
	}
	counts[' ']++

	var nodes []*hnode
	for b := 0; b < 256; b++ {
		if counts[b] > 0 {
			nodes = append(nodes, &hnode{count: counts[b], symbol: byte(b), leaf: true, order: b})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].order < nodes[j].order })

	h := &Huffman{}
	if len(nodes) == 1 {
		// Degenerate single-symbol alphabet: assign a 1-bit code.
		h.root = &hnode{left: nodes[0], right: nil}
		h.codes[nodes[0].symbol] = []bool{false}
		return h
	}
	hp := hheap(nodes)
	heap.Init(&hp)
	next := 256
	for hp.Len() > 1 {
		a := heap.Pop(&hp).(*hnode)
		b := heap.Pop(&hp).(*hnode)
		heap.Push(&hp, &hnode{count: a.count + b.count, left: a, right: b, order: next})
		next++
	}
	h.root = heap.Pop(&hp).(*hnode)
	h.buildCodes(h.root, nil)
	return h
}

// buildCodes assigns codes by tree walk (left = 0, right = 1).
func (h *Huffman) buildCodes(n *hnode, prefix []bool) {
	if n == nil {
		return
	}
	if n.leaf {
		code := make([]bool, len(prefix))
		copy(code, prefix)
		h.codes[n.symbol] = code
		return
	}
	h.buildCodes(n.left, append(prefix, false))
	h.buildCodes(n.right, append(prefix, true))
}

// Encode converts text to its Huffman bit stream. Bytes without a code
// (never seen and outside the smoothed set) are silently skipped; corpus
// text never contains such bytes.
func (h *Huffman) Encode(s string) []bool {
	out := make([]bool, 0, 6*len(s))
	for i := 0; i < len(s); i++ {
		out = append(out, h.codes[s[i]]...)
	}
	return out
}

// Decode converts a bit stream back to text by walking the code tree. A
// bit error desynchronizes the walk and corrupts the remainder — the
// characteristic cliff of bit-oriented transmission. Decoding stops at the
// end of the stream; a partial code at the tail is dropped.
func (h *Huffman) Decode(bits []bool) string {
	if h.root == nil {
		return ""
	}
	out := make([]byte, 0, len(bits)/4)
	n := h.root
	for _, b := range bits {
		if b {
			n = n.right
		} else {
			n = n.left
		}
		if n == nil {
			// Invalid path (possible under corruption): restart.
			n = h.root
			continue
		}
		if n.leaf {
			out = append(out, n.symbol)
			n = h.root
		}
	}
	return string(out)
}

// CodeLen returns the code length in bits for byte b, or 0 when absent.
func (h *Huffman) CodeLen(b byte) int { return len(h.codes[b]) }

// MeanBitsPerByte estimates the expected code length under the sample
// distribution used at training time, weighted by the trained tree's
// structure. It reports compression efficiency in the experiment tables.
func (h *Huffman) MeanBitsPerByte(samples []string) float64 {
	totalBits, totalBytes := 0, 0
	for _, s := range samples {
		for i := 0; i < len(s); i++ {
			if l := h.CodeLen(s[i]); l > 0 {
				totalBits += l
				totalBytes++
			}
		}
	}
	if totalBytes == 0 {
		return 0
	}
	return float64(totalBits) / float64(totalBytes)
}
