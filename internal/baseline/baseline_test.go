package baseline

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/corpus"
	"repro/internal/mat"
)

// trainedHuffman returns a Huffman coder trained on generated corpus text.
func trainedHuffman(t *testing.T) (*Huffman, []string) {
	t.Helper()
	corp := corpus.Build()
	gen := corpus.NewGenerator(corp, mat.NewRNG(1))
	var samples []string
	for di := range corp.Domains {
		for _, m := range gen.Batch(di, 50, nil) {
			samples = append(samples, m.Text())
		}
	}
	return Train(samples), samples
}

func TestHuffmanRoundTrip(t *testing.T) {
	h, samples := trainedHuffman(t)
	for _, s := range samples[:100] {
		got := h.Decode(h.Encode(s))
		if got != s {
			t.Fatalf("round trip failed: %q -> %q", s, got)
		}
	}
}

func TestHuffmanCompresses(t *testing.T) {
	h, samples := trainedHuffman(t)
	mean := h.MeanBitsPerByte(samples)
	if mean <= 0 || mean >= 8 {
		t.Fatalf("mean bits/byte = %v, want in (0,8)", mean)
	}
	// English-like lowercase text should compress well below 6 bits/byte.
	if mean > 6 {
		t.Fatalf("mean bits/byte = %v, expected < 6 for corpus text", mean)
	}
}

func TestHuffmanPrefixFree(t *testing.T) {
	h, _ := trainedHuffman(t)
	var codes []string
	for b := 0; b < 256; b++ {
		if l := h.CodeLen(byte(b)); l > 0 {
			var sb strings.Builder
			for _, bit := range h.codes[byte(b)] {
				if bit {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			codes = append(codes, sb.String())
		}
	}
	for i, a := range codes {
		for j, b := range codes {
			if i != j && strings.HasPrefix(b, a) {
				t.Fatalf("code %q is a prefix of %q", a, b)
			}
		}
	}
}

func TestHuffmanSmoothedAlphabetAlwaysEncodable(t *testing.T) {
	h := Train([]string{"aaa"}) // minimal training data
	s := "the quick brown fox 0123456789"
	if got := h.Decode(h.Encode(s)); got != s {
		t.Fatalf("smoothed alphabet round trip failed: %q", got)
	}
}

func TestHuffmanBitFlipCorruptsSuffix(t *testing.T) {
	h, samples := trainedHuffman(t)
	s := samples[0]
	bits := h.Encode(s)
	// Flip an early bit: decoding desynchronizes and the text diverges.
	bits[2] = !bits[2]
	got := h.Decode(bits)
	if got == s {
		t.Fatal("bit flip did not corrupt Huffman decoding")
	}
}

func TestHuffmanDeterministic(t *testing.T) {
	_, samples := trainedHuffman(t)
	h1 := Train(samples)
	h2 := Train(samples)
	for b := 0; b < 256; b++ {
		if h1.CodeLen(byte(b)) != h2.CodeLen(byte(b)) {
			t.Fatal("Huffman training not deterministic")
		}
	}
}

func TestPipelineCleanChannel(t *testing.T) {
	h, samples := trainedHuffman(t)
	p := Pipeline{Huff: h, Code: channel.Hamming74{}, Mod: channel.BPSK{}, Ch: channel.Clean{}}
	for _, s := range samples[:20] {
		got, ok, stats := p.Send(s)
		if !ok {
			t.Fatalf("clean channel CRC failed for %q", s)
		}
		if got != s {
			t.Fatalf("clean channel corrupted %q -> %q", s, got)
		}
		if stats.InfoBits <= 0 || stats.CodedBits < stats.InfoBits || stats.Symbols <= 0 {
			t.Fatalf("implausible stats %+v", stats)
		}
	}
}

func TestPipelineHighSNRMostlyClean(t *testing.T) {
	h, samples := trainedHuffman(t)
	rng := mat.NewRNG(33)
	p := Pipeline{
		Huff: h,
		Code: channel.Hamming74{},
		Mod:  channel.BPSK{},
		Ch:   &channel.AWGN{SNRdB: 12, Rng: rng.Split()},
	}
	okCount := 0
	for _, s := range samples[:50] {
		_, ok, _ := p.Send(s)
		if ok {
			okCount++
		}
	}
	if okCount < 45 {
		t.Fatalf("only %d/50 frames survived 12 dB with Hamming", okCount)
	}
}

func TestPipelineLowSNRFails(t *testing.T) {
	h, samples := trainedHuffman(t)
	rng := mat.NewRNG(34)
	p := Pipeline{
		Huff: h,
		Code: channel.Identity{},
		Mod:  channel.BPSK{},
		Ch:   &channel.AWGN{SNRdB: -4, Rng: rng.Split()},
	}
	exact := 0
	for _, s := range samples[:50] {
		got, _, _ := p.Send(s)
		if got == s {
			exact++
		}
	}
	if exact > 5 {
		t.Fatalf("%d/50 messages survived -4 dB uncoded; the cliff is missing", exact)
	}
}

func TestPipelineCRCDetectsCorruption(t *testing.T) {
	h, samples := trainedHuffman(t)
	rng := mat.NewRNG(35)
	p := Pipeline{
		Huff: h,
		Code: channel.Identity{},
		Mod:  channel.BPSK{},
		Ch:   &channel.AWGN{SNRdB: 2, Rng: rng.Split()},
	}
	falseAccepts := 0
	for _, s := range samples[:100] {
		got, ok, _ := p.Send(s)
		if ok && got != s {
			falseAccepts++
		}
	}
	// CRC-16 misses at most ~2^-16 of corrupted frames; in 100 noisy
	// frames false accepts should be absent.
	if falseAccepts > 1 {
		t.Fatalf("%d corrupted frames passed CRC", falseAccepts)
	}
}

// Property: round-trip holds for arbitrary strings drawn from the smoothed
// alphabet.
func TestHuffmanQuick(t *testing.T) {
	h := Train([]string{"the server is down and the network has a bug"})
	alphabet := "abcdefghijklmnopqrstuvwxyz 0123456789"
	f := func(seed uint64, lnRaw uint8) bool {
		rng := mat.NewRNG(seed)
		ln := int(lnRaw % 40)
		var sb strings.Builder
		for i := 0; i < ln; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		s := sb.String()
		return h.Decode(h.Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
