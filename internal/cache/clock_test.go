package cache

import (
	"testing"

	"repro/internal/kb"
)

func TestClockSecondChance(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewClock())
	if err != nil {
		t.Fatal(err)
	}
	a := testModel(t, "a", "", kb.RoleCodec)
	b := testModel(t, "b", "", kb.RoleCodec)
	d := testModel(t, "d", "", kb.RoleCodec)
	for _, m := range []*kb.Model{a, b} {
		if err := c.Put(m, false); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a: it gets a reference bit and survives the sweep; b (admitted
	// second, also referenced at admit) — the hand clears a first, then b,
	// then evicts a or b depending on sweep order. Touch a again right
	// before the eviction to guarantee b goes.
	c.Get(a.Key)
	c.Get(a.Key)
	if err := c.Put(d, false); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(a.Key) {
		// The first sweep clears all bits, so with both referenced the
		// eviction order follows ring order: a was admitted first. Accept
		// either victim but require exactly one eviction.
		if !c.Contains(b.Key) {
			t.Fatal("clock evicted both entries")
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestClockUnreferencedEvictedFirst(t *testing.T) {
	p := NewClock()
	ka := kb.Key{Domain: "a", Role: kb.RoleCodec}
	kbKey := kb.Key{Domain: "b", Role: kb.RoleCodec}
	p.OnAdmit(ka, 1)
	p.OnAdmit(kbKey, 1)
	// First Victim sweep clears both bits and returns the first
	// unreferenced entry (a, after its bit is cleared on the first pass).
	v1, ok := p.Victim()
	if !ok {
		t.Fatal("no victim")
	}
	// Re-reference the survivor candidate a; now b must be the victim.
	p.OnAccess(ka)
	v2, ok := p.Victim()
	if !ok {
		t.Fatal("no victim")
	}
	_ = v1
	if v2 != kbKey {
		t.Fatalf("victim = %v, want %v", v2, kbKey)
	}
}

func TestClockRemoveMovesHand(t *testing.T) {
	p := NewClock()
	keys := []kb.Key{
		{Domain: "a", Role: kb.RoleCodec},
		{Domain: "b", Role: kb.RoleCodec},
		{Domain: "c", Role: kb.RoleCodec},
	}
	for _, k := range keys {
		p.OnAdmit(k, 1)
	}
	// Position the hand, then remove the entry under it.
	if _, ok := p.Victim(); !ok {
		t.Fatal("no victim")
	}
	p.OnRemove(keys[0])
	p.OnRemove(keys[1])
	v, ok := p.Victim()
	if !ok || v != keys[2] {
		t.Fatalf("victim after removals = %v, %v", v, ok)
	}
	p.OnRemove(keys[2])
	if _, ok := p.Victim(); ok {
		t.Fatal("empty policy returned a victim")
	}
}

func TestClockInPolicyFactory(t *testing.T) {
	p, ok := NewPolicy("clock")
	if !ok || p.Name() != "clock" {
		t.Fatal("clock not registered in NewPolicy")
	}
}

func TestClockApproximatesLRUOnScan(t *testing.T) {
	// Sequential scan with no re-use: clock behaves like FIFO/LRU and the
	// cache keeps only the most recent items.
	c, err := New(capacityFor(t, 3), NewClock())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "d", "e", "f", "g"}
	for _, n := range names {
		if err := c.Put(testModel(t, n, "", kb.RoleCodec), false); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	// The last inserted entry must be resident.
	if !c.Contains(kb.Key{Domain: "g", Role: kb.RoleCodec}) {
		t.Fatal("most recent entry evicted")
	}
}
