package cache

import (
	"container/list"

	"repro/internal/kb"
)

// Clock is the second-chance (CLOCK) eviction policy: an approximation of
// LRU with O(1) bookkeeping per access. Entries sit on a circular list
// with a reference bit; the hand sweeps, clearing bits, and evicts the
// first unreferenced entry it finds.
type Clock struct {
	ring  *list.List // circular order; hand points at the next candidate
	items map[kb.Key]*list.Element
	hand  *list.Element
	refs  map[kb.Key]bool
}

var _ Policy = (*Clock)(nil)

// NewClock returns an empty CLOCK policy.
func NewClock() *Clock {
	return &Clock{
		ring:  list.New(),
		items: make(map[kb.Key]*list.Element, 16),
		refs:  make(map[kb.Key]bool, 16),
	}
}

// Name implements Policy.
func (p *Clock) Name() string { return "clock" }

// OnAdmit implements Policy.
func (p *Clock) OnAdmit(k kb.Key, _ int64) {
	if _, ok := p.items[k]; ok {
		p.refs[k] = true
		return
	}
	p.items[k] = p.ring.PushBack(k)
	p.refs[k] = true
}

// OnAccess implements Policy.
func (p *Clock) OnAccess(k kb.Key) {
	if _, ok := p.items[k]; ok {
		p.refs[k] = true
	}
}

// OnRemove implements Policy.
func (p *Clock) OnRemove(k kb.Key) {
	e, ok := p.items[k]
	if !ok {
		return
	}
	if p.hand == e {
		p.hand = e.Next()
	}
	p.ring.Remove(e)
	delete(p.items, k)
	delete(p.refs, k)
}

// Victim implements Policy: sweep the hand, giving referenced entries a
// second chance, until an unreferenced entry is found.
func (p *Clock) Victim() (kb.Key, bool) {
	if p.ring.Len() == 0 {
		return kb.Key{}, false
	}
	// At most two sweeps: the first clears all reference bits.
	for i := 0; i < 2*p.ring.Len(); i++ {
		if p.hand == nil {
			p.hand = p.ring.Front()
		}
		k := p.hand.Value.(kb.Key)
		if p.refs[k] {
			p.refs[k] = false
			p.hand = p.hand.Next()
			continue
		}
		return k, true
	}
	// All entries were re-referenced mid-sweep (cannot happen without
	// concurrent access, which Cache serializes); fall back to the front.
	return p.ring.Front().Value.(kb.Key), true
}

// Len implements Policy.
func (p *Clock) Len() int { return len(p.items) }
