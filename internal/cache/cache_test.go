package cache

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/semantic"
)

var (
	fixtureOnce  sync.Once
	fixtureCodec *semantic.Codec
)

// testModel returns a model with a real codec (shared, untrained — size is
// all that matters here) under the given key.
func testModel(t *testing.T, domain, user string, role kb.Role) *kb.Model {
	t.Helper()
	fixtureOnce.Do(func() {
		corp := corpus.Build()
		fixtureCodec = semantic.NewCodec(corp.Domain("it"), semantic.Config{
			EmbedDim: 8, FeatureDim: 4, HiddenDim: 8,
		})
	})
	return &kb.Model{Key: kb.Key{Domain: domain, User: user, Role: role}, Version: 1, Codec: fixtureCodec}
}

// capacityFor returns a capacity fitting exactly n codec-role models.
func capacityFor(t *testing.T, n int) int64 {
	t.Helper()
	m := testModel(t, "x", "", kb.RoleCodec)
	return m.SizeBytes() * int64(n)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, NewLRU()); err == nil {
		t.Fatal("accepted zero capacity")
	}
	if _, err := New(-5, NewLRU()); err == nil {
		t.Fatal("accepted negative capacity")
	}
	if _, err := New(100, nil); err == nil {
		t.Fatal("accepted nil policy")
	}
}

func TestPutGetHitMiss(t *testing.T) {
	c, err := New(capacityFor(t, 4), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, "it", "", kb.RoleCodec)
	if _, ok := c.Get(m.Key); ok {
		t.Fatal("empty cache returned a model")
	}
	if err := c.Put(m, false); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(m.Key)
	if !ok || got != m {
		t.Fatal("Get after Put failed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesFetched != m.SizeBytes() {
		t.Fatalf("BytesFetched = %d, want %d", s.BytesFetched, m.SizeBytes())
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	a := testModel(t, "a", "", kb.RoleCodec)
	b := testModel(t, "b", "", kb.RoleCodec)
	d := testModel(t, "d", "", kb.RoleCodec)
	if err := c.Put(a, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b, false); err != nil {
		t.Fatal(err)
	}
	c.Get(a.Key) // a becomes most recent
	if err := c.Put(d, false); err != nil {
		t.Fatal(err)
	}
	if c.Contains(b.Key) {
		t.Fatal("LRU should have evicted b (least recently used)")
	}
	if !c.Contains(a.Key) || !c.Contains(d.Key) {
		t.Fatal("wrong eviction victim")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestFIFOIgnoresAccess(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewFIFO())
	if err != nil {
		t.Fatal(err)
	}
	a := testModel(t, "a", "", kb.RoleCodec)
	b := testModel(t, "b", "", kb.RoleCodec)
	d := testModel(t, "d", "", kb.RoleCodec)
	for _, m := range []*kb.Model{a, b} {
		if err := c.Put(m, false); err != nil {
			t.Fatal(err)
		}
	}
	c.Get(a.Key) // FIFO must not care
	if err := c.Put(d, false); err != nil {
		t.Fatal(err)
	}
	if c.Contains(a.Key) {
		t.Fatal("FIFO should have evicted a (oldest)")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLFU())
	if err != nil {
		t.Fatal(err)
	}
	a := testModel(t, "a", "", kb.RoleCodec)
	b := testModel(t, "b", "", kb.RoleCodec)
	d := testModel(t, "d", "", kb.RoleCodec)
	for _, m := range []*kb.Model{a, b} {
		if err := c.Put(m, false); err != nil {
			t.Fatal(err)
		}
	}
	c.Get(a.Key)
	c.Get(a.Key)
	c.Get(b.Key)
	if err := c.Put(d, false); err != nil {
		t.Fatal(err)
	}
	if c.Contains(b.Key) {
		t.Fatal("LFU should have evicted b (freq 2 vs a's 3)")
	}
}

func TestGDSFPrefersSmallPopular(t *testing.T) {
	// One decoder-role (smaller) popular entry and one codec-role (larger)
	// unpopular entry: GDSF must evict the large unpopular one.
	big := testModel(t, "big", "", kb.RoleCodec)
	small := testModel(t, "small", "", kb.RoleDecoder)
	next := testModel(t, "next", "", kb.RoleDecoder)
	capacity := big.SizeBytes() + small.SizeBytes()
	c, err := New(capacity, NewGDSF())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(big, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(small, false); err != nil {
		t.Fatal(err)
	}
	c.Get(small.Key)
	c.Get(small.Key)
	if err := c.Put(next, false); err != nil {
		t.Fatal(err)
	}
	if c.Contains(big.Key) {
		t.Fatal("GDSF should have evicted the large unpopular entry")
	}
	if !c.Contains(small.Key) {
		t.Fatal("GDSF evicted the small popular entry")
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	pinned := testModel(t, "general", "", kb.RoleCodec)
	if err := c.Put(pinned, true); err != nil {
		t.Fatal(err)
	}
	// Fill and churn the remaining capacity.
	for i, name := range []string{"u1", "u2", "u3", "u4"} {
		_ = i
		m := testModel(t, "it", name, kb.RoleCodec)
		if err := c.Put(m, false); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Contains(pinned.Key) {
		t.Fatal("pinned entry was evicted")
	}
}

func TestPutTooLargeFails(t *testing.T) {
	m := testModel(t, "it", "", kb.RoleCodec)
	c, err := New(m.SizeBytes()-1, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(m, false); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestPutBlockedByPinned(t *testing.T) {
	c, err := New(capacityFor(t, 1), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	pinned := testModel(t, "general", "", kb.RoleCodec)
	if err := c.Put(pinned, true); err != nil {
		t.Fatal(err)
	}
	other := testModel(t, "other", "", kb.RoleCodec)
	if err := c.Put(other, false); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge (pinned blocks)", err)
	}
	if !c.Contains(pinned.Key) {
		t.Fatal("pinned entry missing after failed Put")
	}
}

func TestReplaceSameKey(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	m1 := testModel(t, "it", "u1", kb.RoleCodec)
	m2 := &kb.Model{Key: m1.Key, Version: 2, Codec: m1.Codec}
	if err := c.Put(m1, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(m2, false); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after replace", c.Len())
	}
	got, _ := c.Get(m1.Key)
	if got.Version != 2 {
		t.Fatalf("Version = %d, want 2", got.Version)
	}
	if c.Used() != m2.SizeBytes() {
		t.Fatalf("Used = %d, want one model", c.Used())
	}
}

func TestRemove(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	m := testModel(t, "it", "", kb.RoleCodec)
	if err := c.Put(m, false); err != nil {
		t.Fatal(err)
	}
	if !c.Remove(m.Key) {
		t.Fatal("Remove returned false for present key")
	}
	if c.Remove(m.Key) {
		t.Fatal("Remove returned true for absent key")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("cache not empty after Remove")
	}
}

func TestUsedNeverExceedsCapacity(t *testing.T) {
	c, err := New(capacityFor(t, 3), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "d", "e", "f", "g", "h"}
	for _, n := range names {
		if err := c.Put(testModel(t, n, "", kb.RoleCodec), false); err != nil {
			t.Fatal(err)
		}
		if c.Used() > c.Capacity() {
			t.Fatalf("Used %d exceeds capacity %d", c.Used(), c.Capacity())
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func TestKeysSorted(t *testing.T) {
	c, err := New(capacityFor(t, 4), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := c.Put(testModel(t, n, "", kb.RoleCodec), false); err != nil {
			t.Fatal(err)
		}
	}
	keys := c.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1].String() >= keys[i].String() {
			t.Fatal("Keys not sorted")
		}
	}
}

func TestResetStats(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	c.Get(kb.Key{Domain: "x", Role: kb.RoleCodec})
	c.ResetStats()
	if s := c.Stats(); s.Misses != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
}

func TestNewPolicyByName(t *testing.T) {
	for _, name := range []string{"lru", "fifo", "lfu", "gdsf"} {
		p, ok := NewPolicy(name)
		if !ok || p.Name() != name {
			t.Fatalf("NewPolicy(%q) = %v, %v", name, p, ok)
		}
	}
	if _, ok := NewPolicy("belady"); ok {
		t.Fatal("NewPolicy accepted unknown name")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(capacityFor(t, 4), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	models := []*kb.Model{
		testModel(t, "a", "", kb.RoleCodec),
		testModel(t, "b", "", kb.RoleCodec),
		testModel(t, "d", "", kb.RoleCodec),
		testModel(t, "e", "", kb.RoleCodec),
		testModel(t, "f", "", kb.RoleCodec),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := models[(g+i)%len(models)]
				if i%3 == 0 {
					_ = c.Put(m, false)
				} else {
					c.Get(m.Key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > c.Capacity() {
		t.Fatal("capacity violated under concurrency")
	}
}

func TestPolicyVictimEmpty(t *testing.T) {
	for _, p := range []Policy{NewLRU(), NewFIFO(), NewLFU(), NewGDSF()} {
		if _, ok := p.Victim(); ok {
			t.Fatalf("%s: empty policy proposed a victim", p.Name())
		}
	}
}

func TestEvictionGuardSparesVetoedVictim(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	a := testModel(t, "a", "", kb.RoleCodec)
	b := testModel(t, "b", "", kb.RoleCodec)
	d := testModel(t, "d", "", kb.RoleCodec)
	e := testModel(t, "e", "", kb.RoleCodec)
	if err := c.Put(a, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b, false); err != nil {
		t.Fatal(err)
	}
	// LRU would evict a (oldest); the guard spares it, so b goes instead.
	c.SetEvictionGuard(func(k kb.Key) bool { return k.Domain != "a" })
	if err := c.Put(d, false); err != nil {
		t.Fatal(err)
	}
	if c.Contains(b.Key) {
		t.Fatal("guard veto did not redirect the eviction to b")
	}
	if !c.Contains(a.Key) || !c.Contains(d.Key) {
		t.Fatal("guarded entry or new entry missing")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
	// Lifting the guard restores normal eviction, and the spared entry is
	// back in the policy (re-admitted fresh, so d is now the LRU victim).
	c.SetEvictionGuard(nil)
	if err := c.Put(e, false); err != nil {
		t.Fatal(err)
	}
	if c.Contains(d.Key) {
		t.Fatal("expected d evicted after the guard was lifted")
	}
	if !c.Contains(a.Key) || !c.Contains(e.Key) {
		t.Fatal("wrong victim after lifting the guard")
	}
}

func TestEvictionGuardCapacityWins(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	a := testModel(t, "a", "", kb.RoleCodec)
	b := testModel(t, "b", "", kb.RoleCodec)
	d := testModel(t, "d", "", kb.RoleCodec)
	if err := c.Put(a, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b, false); err != nil {
		t.Fatal(err)
	}
	// The guard vetoes everything; local capacity is a hard bound, so a
	// spared entry is evicted anyway rather than failing the insert.
	c.SetEvictionGuard(func(kb.Key) bool { return false })
	if err := c.Put(d, false); err != nil {
		t.Fatalf("insert failed with an all-vetoing guard: %v", err)
	}
	if !c.Contains(d.Key) {
		t.Fatal("new entry missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Used() > c.Capacity() {
		t.Fatal("capacity violated")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestEvictionGuardNeverSeesPinned(t *testing.T) {
	c, err := New(capacityFor(t, 2), NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	pinned := testModel(t, "p", "", kb.RoleCodec)
	b := testModel(t, "b", "", kb.RoleCodec)
	d := testModel(t, "d", "", kb.RoleCodec)
	if err := c.Put(pinned, true); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(b, false); err != nil {
		t.Fatal(err)
	}
	c.SetEvictionGuard(func(k kb.Key) bool {
		if k.Domain == "p" {
			t.Error("guard consulted for a pinned entry")
		}
		return true
	})
	if err := c.Put(d, false); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(pinned.Key) || !c.Contains(d.Key) || c.Contains(b.Key) {
		t.Fatal("wrong eviction outcome with a pinned entry present")
	}
}
