package cache

import (
	"fmt"
	"testing"

	"repro/internal/kb"
	"repro/internal/mat"
)

// This file is the property/invariant harness over every eviction policy:
// random operation sequences drive a Cache while a shadow model checks,
// after every single operation, that
//
//   - Used() never exceeds Capacity() and always equals the sum of the
//     resident entry sizes,
//   - pinned entries are never evicted (only explicit Remove or a same-key
//     Put may take them out),
//   - the policy's bookkeeping tracks exactly the unpinned residents,
//   - Stats accounting balances: hits+misses equals the number of Gets,
//     BytesFetched equals the admitted bytes, and Evictions equals the
//     number of entries that vanished without an explicit Remove/replace.
//
// It also proves the heap-based LFU/GDSF rewrites evict in exactly the
// order of the original O(n) scan implementations, which are preserved
// below as references.

// scanLFU is the pre-heap LFU implementation: linear victim scan over
// (freq, tick). Kept as the eviction-order reference and the "before"
// side of the victim benchmarks.
type scanLFU struct {
	freq map[kb.Key]int
	tick map[kb.Key]uint64
	now  uint64
}

func newScanLFU() *scanLFU {
	return &scanLFU{freq: make(map[kb.Key]int, 16), tick: make(map[kb.Key]uint64, 16)}
}

func (p *scanLFU) Name() string { return "lfu-scan" }

func (p *scanLFU) OnAdmit(k kb.Key, _ int64) {
	p.now++
	if _, ok := p.freq[k]; !ok {
		p.freq[k] = 1
	}
	p.tick[k] = p.now
}

func (p *scanLFU) OnAccess(k kb.Key) {
	p.now++
	if _, ok := p.freq[k]; ok {
		p.freq[k]++
		p.tick[k] = p.now
	}
}

func (p *scanLFU) OnRemove(k kb.Key) {
	delete(p.freq, k)
	delete(p.tick, k)
}

func (p *scanLFU) Victim() (kb.Key, bool) {
	var best kb.Key
	bestFreq := -1
	var bestTick uint64
	for k, f := range p.freq {
		if bestFreq == -1 || f < bestFreq || (f == bestFreq && p.tick[k] < bestTick) {
			best, bestFreq, bestTick = k, f, p.tick[k]
		}
	}
	if bestFreq == -1 {
		return kb.Key{}, false
	}
	return best, true
}

func (p *scanLFU) Len() int { return len(p.freq) }

// scanGDSF is the pre-heap GDSF implementation: linear victim scan over
// (priority, key string).
type scanGDSF struct {
	prio  map[kb.Key]float64
	freq  map[kb.Key]int
	size  map[kb.Key]int64
	clock float64
}

func newScanGDSF() *scanGDSF {
	return &scanGDSF{
		prio: make(map[kb.Key]float64, 16),
		freq: make(map[kb.Key]int, 16),
		size: make(map[kb.Key]int64, 16),
	}
}

func (p *scanGDSF) Name() string { return "gdsf-scan" }

func (p *scanGDSF) OnAdmit(k kb.Key, size int64) {
	if _, ok := p.freq[k]; !ok {
		p.freq[k] = 1
		p.size[k] = size
	}
	p.prio[k] = p.clock + float64(p.freq[k])/sizeKiB(p.size[k])
}

func (p *scanGDSF) OnAccess(k kb.Key) {
	if _, ok := p.freq[k]; !ok {
		return
	}
	p.freq[k]++
	p.prio[k] = p.clock + float64(p.freq[k])/sizeKiB(p.size[k])
}

func (p *scanGDSF) OnRemove(k kb.Key) {
	if pr, ok := p.prio[k]; ok && pr > p.clock {
		p.clock = pr
	}
	delete(p.prio, k)
	delete(p.freq, k)
	delete(p.size, k)
}

func (p *scanGDSF) Victim() (kb.Key, bool) {
	var best kb.Key
	bestPrio := -1.0
	found := false
	for k, pr := range p.prio {
		if !found || pr < bestPrio || (pr == bestPrio && k.String() < best.String()) {
			best, bestPrio, found = k, pr, true
		}
	}
	return best, found
}

func (p *scanGDSF) Len() int { return len(p.prio) }

// propKey builds the i-th key of the harness key universe.
func propKey(i int) kb.Key {
	return kb.Key{Domain: fmt.Sprintf("d%02d", i%7), User: fmt.Sprintf("u%02d", i/7), Role: kb.RoleCodec}
}

// propSize is a deterministic per-key size in bytes, spanning well below
// and above the 1 KiB floor GDSF normalizes against.
func propSize(i int) int64 {
	return int64(200 + (i*977)%4000)
}

// TestHeapPoliciesMatchScanReference drives the heap LFU/GDSF and their
// scan references with identical random operation sequences and requires
// the identical victim after every step, then drains both to empty and
// requires the identical full eviction order.
func TestHeapPoliciesMatchScanReference(t *testing.T) {
	cases := []struct {
		name      string
		heap, ref Policy
	}{
		{"lfu", NewLFU(), newScanLFU()},
		{"gdsf", NewGDSF(), newScanGDSF()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := mat.NewRNG(42)
			const universe = 64
			live := make(map[int]bool)
			for step := 0; step < 4000; step++ {
				i := rng.Intn(universe)
				k := propKey(i)
				switch op := rng.Intn(10); {
				case op < 4: // admit
					tc.heap.OnAdmit(k, propSize(i))
					tc.ref.OnAdmit(k, propSize(i))
					live[i] = true
				case op < 8: // access (sometimes a key the policy never saw)
					tc.heap.OnAccess(k)
					tc.ref.OnAccess(k)
				default: // remove
					tc.heap.OnRemove(k)
					tc.ref.OnRemove(k)
					delete(live, i)
				}
				hv, hok := tc.heap.Victim()
				rv, rok := tc.ref.Victim()
				if hok != rok || hv != rv {
					t.Fatalf("step %d: heap victim (%v,%v) != scan victim (%v,%v)", step, hv, hok, rv, rok)
				}
				if tc.heap.Len() != len(live) || tc.ref.Len() != len(live) {
					t.Fatalf("step %d: Len heap=%d ref=%d want %d", step, tc.heap.Len(), tc.ref.Len(), len(live))
				}
			}
			// Full drain: eviction order must match to the last entry.
			for tc.ref.Len() > 0 {
				hv, hok := tc.heap.Victim()
				rv, rok := tc.ref.Victim()
				if !hok || !rok || hv != rv {
					t.Fatalf("drain: heap (%v,%v) != scan (%v,%v)", hv, hok, rv, rok)
				}
				tc.heap.OnRemove(hv)
				tc.ref.OnRemove(rv)
			}
			if _, ok := tc.heap.Victim(); ok {
				t.Fatal("drained heap policy still proposes a victim")
			}
		})
	}
}

// shadowEntry mirrors one resident cache entry in the harness model.
type shadowEntry struct {
	size   int64
	pinned bool
}

// checkInvariants verifies every cache invariant against the shadow model.
func checkInvariants(t *testing.T, step int, c *Cache, shadow map[kb.Key]shadowEntry, gets, admittedBytes int64, evictions uint64) {
	t.Helper()
	if c.Used() > c.Capacity() {
		t.Fatalf("step %d: Used %d exceeds Capacity %d", step, c.Used(), c.Capacity())
	}
	var wantUsed int64
	unpinned := 0
	for k, e := range shadow {
		wantUsed += e.size
		if !e.pinned {
			unpinned++
		}
		if !c.Contains(k) {
			t.Fatalf("step %d: shadow entry %v missing from cache", step, k)
		}
		if e.pinned {
			if _, ok := c.Peek(k); !ok {
				t.Fatalf("step %d: pinned entry %v was evicted", step, k)
			}
		}
	}
	if c.Used() != wantUsed {
		t.Fatalf("step %d: Used %d != shadow %d", step, c.Used(), wantUsed)
	}
	if c.Len() != len(shadow) {
		t.Fatalf("step %d: Len %d != shadow %d", step, c.Len(), len(shadow))
	}
	if got := c.policy.Len(); got != unpinned {
		t.Fatalf("step %d: policy %s tracks %d entries, want %d unpinned", step, c.PolicyName(), got, unpinned)
	}
	st := c.Stats()
	if int64(st.Hits+st.Misses) != gets {
		t.Fatalf("step %d: hits %d + misses %d != gets %d", step, st.Hits, st.Misses, gets)
	}
	if st.BytesFetched != admittedBytes {
		t.Fatalf("step %d: BytesFetched %d != admitted %d", step, st.BytesFetched, admittedBytes)
	}
	if st.Evictions != evictions {
		t.Fatalf("step %d: Evictions %d != observed %d", step, st.Evictions, evictions)
	}
}

// TestCacheInvariantsUnderRandomOps runs the random-op invariant harness
// over every registered policy.
func TestCacheInvariantsUnderRandomOps(t *testing.T) {
	steps := 3000
	if testing.Short() {
		steps = 800
	}
	for _, name := range []string{"lru", "fifo", "lfu", "gdsf", "clock"} {
		t.Run(name, func(t *testing.T) {
			policy, ok := NewPolicy(name)
			if !ok {
				t.Fatalf("unknown policy %q", name)
			}
			// Capacity fits roughly half the live universe so evictions are
			// constant; model sizes vary per role.
			roles := []kb.Role{kb.RoleEncoder, kb.RoleDecoder, kb.RoleCodec}
			base := testModel(t, "cap", "", kb.RoleCodec).SizeBytes()
			c, err := New(4*base, policy)
			if err != nil {
				t.Fatal(err)
			}
			rng := mat.NewRNG(7 + uint64(len(name)))
			shadow := make(map[kb.Key]shadowEntry)
			var gets, admittedBytes int64
			var evictions uint64
			const universe = 24
			for step := 0; step < steps; step++ {
				i := rng.Intn(universe)
				role := roles[i%len(roles)]
				m := testModel(t, fmt.Sprintf("d%d", i%5), fmt.Sprintf("u%d", i/5), role)
				switch op := rng.Intn(10); {
				case op < 5: // Put, occasionally pinned
					pinned := rng.Intn(8) == 0
					before := make(map[kb.Key]bool, len(shadow))
					for k := range shadow {
						before[k] = true
					}
					err := c.Put(m, pinned)
					// Put removes any same-key entry first, success or not.
					delete(shadow, m.Key)
					if err == nil {
						admittedBytes += m.SizeBytes()
						shadow[m.Key] = shadowEntry{size: m.SizeBytes(), pinned: pinned}
					}
					// Entries that vanished (other than the Put key itself)
					// were evicted by policy choice.
					for k := range before {
						if k != m.Key && !c.Contains(k) {
							delete(shadow, k)
							evictions++
						}
					}
				case op < 8: // Get
					_, hit := c.Get(m.Key)
					gets++
					if _, want := shadow[m.Key]; hit != want {
						t.Fatalf("step %d: Get(%v) hit=%v, shadow says %v", step, m.Key, hit, want)
					}
				case op < 9: // Remove
					removed := c.Remove(m.Key)
					if _, want := shadow[m.Key]; removed != want {
						t.Fatalf("step %d: Remove(%v)=%v, shadow says %v", step, m.Key, removed, want)
					}
					delete(shadow, m.Key)
				default: // Peek must not move any counter
					st := c.Stats()
					c.Peek(m.Key)
					if c.Stats() != st {
						t.Fatalf("step %d: Peek changed stats", step)
					}
				}
				checkInvariants(t, step, c, shadow, gets, admittedBytes, evictions)
			}
			if evictions == 0 {
				t.Fatal("harness never evicted; capacity too generous to test anything")
			}
		})
	}
}

// benchPolicyVictim measures the steady-state victim-selection cost at n
// resident entries: each iteration accesses one key (heap update path) and
// asks for a victim.
func benchPolicyVictim(b *testing.B, p Policy, n int) {
	for i := 0; i < n; i++ {
		p.OnAdmit(propKey(i), propSize(i))
	}
	rng := mat.NewRNG(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnAccess(propKey(rng.Intn(n)))
		if _, ok := p.Victim(); !ok {
			b.Fatal("no victim")
		}
	}
}

// Victim-selection benchmarks at 10k entries: the heap implementations
// (shipped) against the preserved O(n) scan references (before).
func BenchmarkLFUVictim10k(b *testing.B) {
	b.Run("heap", func(b *testing.B) { benchPolicyVictim(b, NewLFU(), 10000) })
	b.Run("scan", func(b *testing.B) { benchPolicyVictim(b, newScanLFU(), 10000) })
}

func BenchmarkGDSFVictim10k(b *testing.B) {
	b.Run("heap", func(b *testing.B) { benchPolicyVictim(b, NewGDSF(), 10000) })
	b.Run("scan", func(b *testing.B) { benchPolicyVictim(b, newScanGDSF(), 10000) })
}
