package cache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kb"
)

// ErrTooLarge reports that an entry cannot fit even after evicting every
// unpinned entry.
var ErrTooLarge = errors.New("cache: entry larger than available capacity")

// Stats counts cache activity. BytesFetched accumulates the sizes of
// entries admitted on miss, i.e. the backhaul traffic a real edge cache
// would generate.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	BytesFetched int64
}

// HitRate returns hits / (hits + misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached model.
type entry struct {
	model  *kb.Model
	size   int64
	pinned bool
}

// Cache is a byte-capacity-bounded model store with pluggable eviction.
// It is safe for concurrent use.
//
// Pinned entries (typically the domain-general models the paper keeps
// resident) never enter the eviction policy and can only be removed
// explicitly.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[kb.Key]*entry
	policy   Policy
	guard    EvictionGuard
	stats    Stats
}

// EvictionGuard vets a proposed eviction victim: returning false asks the
// cache to spare the entry and try another victim. The mesh installs one
// for coordinated eviction — a member must not evict the mesh's last copy
// of a replicated general model. The guard runs under the cache lock and
// must not call back into the cache. Capacity still wins: when every
// remaining victim is vetoed, spared entries are evicted anyway rather
// than failing the insert.
type EvictionGuard func(k kb.Key) bool

// SetEvictionGuard installs guard (nil removes it).
func (c *Cache) SetEvictionGuard(guard EvictionGuard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.guard = guard
}

// New returns a cache with the given byte capacity and eviction policy.
func New(capacity int64, policy Policy) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: non-positive capacity %d", capacity)
	}
	if policy == nil {
		return nil, errors.New("cache: nil policy")
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[kb.Key]*entry, 16),
		policy:   policy,
	}, nil
}

// Get returns the cached model for k, recording a hit or miss.
func (c *Cache) Get(k kb.Key) (*kb.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	if !e.pinned {
		c.policy.OnAccess(k)
	}
	return e.model, true
}

// Peek returns the cached model for k without recording a hit or miss and
// without touching eviction recency. Cooperative caching uses it: a
// neighbor probing this cache must not distort the local policy's view of
// local demand.
func (c *Cache) Peek(k kb.Key) (*kb.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	return e.model, true
}

// Contains reports presence without touching statistics or recency.
func (c *Cache) Contains(k kb.Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[k]
	return ok
}

// Put inserts m (replacing any entry under the same key), evicting
// unpinned entries as needed. Pinned entries never get evicted. The
// model's size counts as fetched bytes: Put is what a miss-path fetch
// calls after pulling the model from the origin.
func (c *Cache) Put(m *kb.Model, pinned bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := m.SizeBytes()
	if old, ok := c.entries[m.Key]; ok {
		c.removeLocked(m.Key, old, false)
	}
	if size > c.capacity {
		return fmt.Errorf("%w: %s is %d bytes, capacity %d", ErrTooLarge, m.Key, size, c.capacity)
	}
	// Entries vetoed by the guard leave the policy for the duration of the
	// eviction loop (so the policy proposes someone else) and re-enter it
	// afterwards; their history resets to freshly-admitted, which is the
	// right bias for an entry the mesh just declared precious.
	var spared []kb.Key
	defer func() {
		for _, k := range spared {
			if e, ok := c.entries[k]; ok {
				c.policy.OnAdmit(k, e.size)
			}
		}
	}()
	for c.used+size > c.capacity {
		victim, ok := c.policy.Victim()
		if !ok {
			// Out of regular victims: evict spared entries after all —
			// local capacity is a hard bound, mesh redundancy is not.
			if len(spared) > 0 {
				k := spared[0]
				spared = spared[1:]
				if e, ok := c.entries[k]; ok {
					delete(c.entries, k)
					c.used -= e.size
					c.stats.Evictions++
				}
				continue
			}
			return fmt.Errorf("%w: %s is %d bytes, %d in use by pinned entries",
				ErrTooLarge, m.Key, size, c.used)
		}
		ve, ok := c.entries[victim]
		if !ok {
			// A policy proposing an unknown key is a programming error in
			// the policy; drop it from the policy and continue.
			c.policy.OnRemove(victim)
			continue
		}
		if c.guard != nil && !c.guard(victim) {
			c.policy.OnRemove(victim)
			spared = append(spared, victim)
			continue
		}
		c.removeLocked(victim, ve, true)
	}
	c.entries[m.Key] = &entry{model: m, size: size, pinned: pinned}
	c.used += size
	if !pinned {
		c.policy.OnAdmit(m.Key, size)
	}
	c.stats.BytesFetched += size
	return nil
}

// removeLocked deletes an entry; the caller holds c.mu.
func (c *Cache) removeLocked(k kb.Key, e *entry, evicted bool) {
	delete(c.entries, k)
	c.used -= e.size
	if !e.pinned {
		c.policy.OnRemove(k)
	}
	if evicted {
		c.stats.Evictions++
	}
}

// Remove explicitly deletes the entry for k (pinned or not), reporting
// whether it was present.
func (c *Cache) Remove(k kb.Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	c.removeLocked(k, e, false)
	return true
}

// Used returns the bytes currently stored.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the counters (capacity and contents are unchanged).
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}

// KeysWhere returns the cached keys satisfying pred, in no particular
// order. pred runs under the cache lock and must not call back into the
// cache. Unlike Keys it never renders or sorts the full key set, so
// filtered scans stay cheap on large caches.
func (c *Cache) KeysWhere(pred func(kb.Key) bool) []kb.Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	var keys []kb.Key
	for k := range c.entries {
		if pred(k) {
			keys = append(keys, k)
		}
	}
	return keys
}

// Keys returns the cached keys in deterministic (string-sorted) order.
func (c *Cache) Keys() []kb.Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]kb.Key, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// PolicyName returns the eviction policy's name.
func (c *Cache) PolicyName() string { return c.policy.Name() }
