// Package cache implements the semantic model cache at the center of the
// paper's contribution: edge servers hold domain-specialized general models
// and user-specific individual models in bounded storage, with pluggable
// eviction policies and byte-level capacity accounting.
package cache

import (
	"container/list"

	"repro/internal/kb"
)

// Policy orders cache entries for eviction. Implementations are not safe
// for concurrent use; Cache serializes calls under its own lock.
//
// Model caches hold tens of entries, so the scan-based policies (LFU,
// GDSF) accept O(n) victim selection in exchange for simplicity; LRU and
// FIFO are O(1).
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// OnAdmit records a newly inserted entry of the given size.
	OnAdmit(k kb.Key, size int64)
	// OnAccess records a cache hit.
	OnAccess(k kb.Key)
	// OnRemove forgets an entry (evicted or explicitly removed).
	OnRemove(k kb.Key)
	// Victim proposes the next entry to evict. It returns false when the
	// policy tracks no entries.
	Victim() (kb.Key, bool)
}

// LRU evicts the least recently used entry.
type LRU struct {
	ll    *list.List // front = most recent
	items map[kb.Key]*list.Element
}

var _ Policy = (*LRU)(nil)

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{ll: list.New(), items: make(map[kb.Key]*list.Element, 16)}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// OnAdmit implements Policy.
func (p *LRU) OnAdmit(k kb.Key, _ int64) {
	if e, ok := p.items[k]; ok {
		p.ll.MoveToFront(e)
		return
	}
	p.items[k] = p.ll.PushFront(k)
}

// OnAccess implements Policy.
func (p *LRU) OnAccess(k kb.Key) {
	if e, ok := p.items[k]; ok {
		p.ll.MoveToFront(e)
	}
}

// OnRemove implements Policy.
func (p *LRU) OnRemove(k kb.Key) {
	if e, ok := p.items[k]; ok {
		p.ll.Remove(e)
		delete(p.items, k)
	}
}

// Victim implements Policy.
func (p *LRU) Victim() (kb.Key, bool) {
	e := p.ll.Back()
	if e == nil {
		return kb.Key{}, false
	}
	return e.Value.(kb.Key), true
}

// FIFO evicts the oldest-inserted entry regardless of use.
type FIFO struct {
	ll    *list.List // front = newest
	items map[kb.Key]*list.Element
}

var _ Policy = (*FIFO)(nil)

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{ll: list.New(), items: make(map[kb.Key]*list.Element, 16)}
}

// Name implements Policy.
func (p *FIFO) Name() string { return "fifo" }

// OnAdmit implements Policy.
func (p *FIFO) OnAdmit(k kb.Key, _ int64) {
	if _, ok := p.items[k]; ok {
		return
	}
	p.items[k] = p.ll.PushFront(k)
}

// OnAccess implements Policy. FIFO ignores accesses.
func (p *FIFO) OnAccess(kb.Key) {}

// OnRemove implements Policy.
func (p *FIFO) OnRemove(k kb.Key) {
	if e, ok := p.items[k]; ok {
		p.ll.Remove(e)
		delete(p.items, k)
	}
}

// Victim implements Policy.
func (p *FIFO) Victim() (kb.Key, bool) {
	e := p.ll.Back()
	if e == nil {
		return kb.Key{}, false
	}
	return e.Value.(kb.Key), true
}

// LFU evicts the least frequently used entry, breaking ties by least
// recent access.
type LFU struct {
	freq map[kb.Key]int
	tick map[kb.Key]uint64
	now  uint64
}

var _ Policy = (*LFU)(nil)

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{freq: make(map[kb.Key]int, 16), tick: make(map[kb.Key]uint64, 16)}
}

// Name implements Policy.
func (p *LFU) Name() string { return "lfu" }

// OnAdmit implements Policy.
func (p *LFU) OnAdmit(k kb.Key, _ int64) {
	p.now++
	if _, ok := p.freq[k]; !ok {
		p.freq[k] = 1
	}
	p.tick[k] = p.now
}

// OnAccess implements Policy.
func (p *LFU) OnAccess(k kb.Key) {
	p.now++
	if _, ok := p.freq[k]; ok {
		p.freq[k]++
		p.tick[k] = p.now
	}
}

// OnRemove implements Policy.
func (p *LFU) OnRemove(k kb.Key) {
	delete(p.freq, k)
	delete(p.tick, k)
}

// Victim implements Policy.
func (p *LFU) Victim() (kb.Key, bool) {
	var best kb.Key
	bestFreq := -1
	var bestTick uint64
	for k, f := range p.freq {
		if bestFreq == -1 || f < bestFreq || (f == bestFreq && p.tick[k] < bestTick) {
			best, bestFreq, bestTick = k, f, p.tick[k]
		}
	}
	if bestFreq == -1 {
		return kb.Key{}, false
	}
	return best, true
}

// GDSF is Greedy-Dual-Size-Frequency: priority = clock + frequency/size,
// favoring small, popular entries; the aging clock prevents stale popular
// entries from living forever. Size is measured in KiB so frequency and
// size terms stay comparable for model-scale objects.
type GDSF struct {
	prio  map[kb.Key]float64
	freq  map[kb.Key]int
	size  map[kb.Key]int64
	clock float64
}

var _ Policy = (*GDSF)(nil)

// NewGDSF returns an empty GDSF policy.
func NewGDSF() *GDSF {
	return &GDSF{
		prio: make(map[kb.Key]float64, 16),
		freq: make(map[kb.Key]int, 16),
		size: make(map[kb.Key]int64, 16),
	}
}

// Name implements Policy.
func (p *GDSF) Name() string { return "gdsf" }

// sizeKiB converts bytes to KiB with a floor of 1 to avoid division blowup.
func sizeKiB(size int64) float64 {
	kib := float64(size) / 1024
	if kib < 1 {
		return 1
	}
	return kib
}

// OnAdmit implements Policy.
func (p *GDSF) OnAdmit(k kb.Key, size int64) {
	if _, ok := p.freq[k]; !ok {
		p.freq[k] = 1
		p.size[k] = size
	}
	p.prio[k] = p.clock + float64(p.freq[k])/sizeKiB(p.size[k])
}

// OnAccess implements Policy.
func (p *GDSF) OnAccess(k kb.Key) {
	if _, ok := p.freq[k]; !ok {
		return
	}
	p.freq[k]++
	p.prio[k] = p.clock + float64(p.freq[k])/sizeKiB(p.size[k])
}

// OnRemove implements Policy.
func (p *GDSF) OnRemove(k kb.Key) {
	if pr, ok := p.prio[k]; ok && pr > p.clock {
		p.clock = pr // age the clock to the evicted priority
	}
	delete(p.prio, k)
	delete(p.freq, k)
	delete(p.size, k)
}

// Victim implements Policy.
func (p *GDSF) Victim() (kb.Key, bool) {
	var best kb.Key
	bestPrio := -1.0
	found := false
	for k, pr := range p.prio {
		if !found || pr < bestPrio || (pr == bestPrio && k.String() < best.String()) {
			best, bestPrio, found = k, pr, true
		}
	}
	return best, found
}

// NewPolicy builds a policy by name ("lru", "fifo", "lfu", "gdsf",
// "clock"), returning false for unknown names.
func NewPolicy(name string) (Policy, bool) {
	switch name {
	case "lru":
		return NewLRU(), true
	case "fifo":
		return NewFIFO(), true
	case "lfu":
		return NewLFU(), true
	case "gdsf":
		return NewGDSF(), true
	case "clock":
		return NewClock(), true
	default:
		return nil, false
	}
}
