// Package cache implements the semantic model cache at the center of the
// paper's contribution: edge servers hold domain-specialized general models
// and user-specific individual models in bounded storage, with pluggable
// eviction policies and byte-level capacity accounting.
package cache

import (
	"container/heap"
	"container/list"

	"repro/internal/kb"
)

// Policy orders cache entries for eviction. Implementations are not safe
// for concurrent use; Cache serializes calls under its own lock.
//
// All policies select victims in O(log n) or better: LRU, FIFO and CLOCK
// are list-based, LFU and GDSF keep an indexed min-heap so cluster-scale
// caches (tens of thousands of individual models) never pay a linear scan.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// OnAdmit records a newly inserted entry of the given size.
	OnAdmit(k kb.Key, size int64)
	// OnAccess records a cache hit.
	OnAccess(k kb.Key)
	// OnRemove forgets an entry (evicted or explicitly removed).
	OnRemove(k kb.Key)
	// Victim proposes the next entry to evict. It returns false when the
	// policy tracks no entries.
	Victim() (kb.Key, bool)
	// Len returns the number of tracked (unpinned) entries. The cache
	// invariant suite checks it against the entry table after every op.
	Len() int
}

// LRU evicts the least recently used entry.
type LRU struct {
	ll    *list.List // front = most recent
	items map[kb.Key]*list.Element
}

var _ Policy = (*LRU)(nil)

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU {
	return &LRU{ll: list.New(), items: make(map[kb.Key]*list.Element, 16)}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// OnAdmit implements Policy.
func (p *LRU) OnAdmit(k kb.Key, _ int64) {
	if e, ok := p.items[k]; ok {
		p.ll.MoveToFront(e)
		return
	}
	p.items[k] = p.ll.PushFront(k)
}

// OnAccess implements Policy.
func (p *LRU) OnAccess(k kb.Key) {
	if e, ok := p.items[k]; ok {
		p.ll.MoveToFront(e)
	}
}

// OnRemove implements Policy.
func (p *LRU) OnRemove(k kb.Key) {
	if e, ok := p.items[k]; ok {
		p.ll.Remove(e)
		delete(p.items, k)
	}
}

// Victim implements Policy.
func (p *LRU) Victim() (kb.Key, bool) {
	e := p.ll.Back()
	if e == nil {
		return kb.Key{}, false
	}
	return e.Value.(kb.Key), true
}

// Len implements Policy.
func (p *LRU) Len() int { return len(p.items) }

// FIFO evicts the oldest-inserted entry regardless of use.
type FIFO struct {
	ll    *list.List // front = newest
	items map[kb.Key]*list.Element
}

var _ Policy = (*FIFO)(nil)

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO {
	return &FIFO{ll: list.New(), items: make(map[kb.Key]*list.Element, 16)}
}

// Name implements Policy.
func (p *FIFO) Name() string { return "fifo" }

// OnAdmit implements Policy.
func (p *FIFO) OnAdmit(k kb.Key, _ int64) {
	if _, ok := p.items[k]; ok {
		return
	}
	p.items[k] = p.ll.PushFront(k)
}

// OnAccess implements Policy. FIFO ignores accesses.
func (p *FIFO) OnAccess(kb.Key) {}

// OnRemove implements Policy.
func (p *FIFO) OnRemove(k kb.Key) {
	if e, ok := p.items[k]; ok {
		p.ll.Remove(e)
		delete(p.items, k)
	}
}

// Victim implements Policy.
func (p *FIFO) Victim() (kb.Key, bool) {
	e := p.ll.Back()
	if e == nil {
		return kb.Key{}, false
	}
	return e.Value.(kb.Key), true
}

// Len implements Policy.
func (p *FIFO) Len() int { return len(p.items) }

// LFU evicts the least frequently used entry, breaking ties by least
// recent access. Entries live in an indexed min-heap ordered by
// (frequency, access tick); ticks are unique, so the order is total and
// Victim is an O(1) peek with O(log n) updates — identical eviction order
// to a full scan, proven by the property harness.
type LFU struct {
	items map[kb.Key]*lfuItem
	heap  lfuHeap
	now   uint64
}

// lfuItem is one heap-resident entry.
type lfuItem struct {
	key  kb.Key
	freq int
	tick uint64
	idx  int
}

// lfuHeap implements container/heap ordered by (freq, tick) ascending.
type lfuHeap []*lfuItem

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].tick < h[j].tick
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *lfuHeap) Push(x any) {
	it := x.(*lfuItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *lfuHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return it
}

var _ Policy = (*LFU)(nil)

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU {
	return &LFU{items: make(map[kb.Key]*lfuItem, 16)}
}

// Name implements Policy.
func (p *LFU) Name() string { return "lfu" }

// OnAdmit implements Policy.
func (p *LFU) OnAdmit(k kb.Key, _ int64) {
	p.now++
	if it, ok := p.items[k]; ok {
		it.tick = p.now
		heap.Fix(&p.heap, it.idx)
		return
	}
	it := &lfuItem{key: k, freq: 1, tick: p.now}
	p.items[k] = it
	heap.Push(&p.heap, it)
}

// OnAccess implements Policy.
func (p *LFU) OnAccess(k kb.Key) {
	p.now++
	if it, ok := p.items[k]; ok {
		it.freq++
		it.tick = p.now
		heap.Fix(&p.heap, it.idx)
	}
}

// OnRemove implements Policy.
func (p *LFU) OnRemove(k kb.Key) {
	if it, ok := p.items[k]; ok {
		heap.Remove(&p.heap, it.idx)
		delete(p.items, k)
	}
}

// Victim implements Policy.
func (p *LFU) Victim() (kb.Key, bool) {
	if len(p.heap) == 0 {
		return kb.Key{}, false
	}
	return p.heap[0].key, true
}

// Len implements Policy.
func (p *LFU) Len() int { return len(p.items) }

// GDSF is Greedy-Dual-Size-Frequency: priority = clock + frequency/size,
// favoring small, popular entries; the aging clock prevents stale popular
// entries from living forever. Size is measured in KiB so frequency and
// size terms stay comparable for model-scale objects. Entries live in an
// indexed min-heap ordered by (priority, key string): the key tie-break
// makes the order total, so the heap minimum matches what a full scan
// would pick (proven against a scan reference by the property harness).
type GDSF struct {
	items map[kb.Key]*gdsfItem
	heap  gdsfHeap
	clock float64
}

// gdsfItem is one heap-resident entry. keyStr caches key.String() so heap
// comparisons never re-render keys.
type gdsfItem struct {
	key    kb.Key
	keyStr string
	prio   float64
	freq   int
	size   int64
	idx    int
}

// gdsfHeap implements container/heap ordered by (prio, keyStr) ascending.
type gdsfHeap []*gdsfItem

func (h gdsfHeap) Len() int { return len(h) }
func (h gdsfHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].keyStr < h[j].keyStr
}
func (h gdsfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *gdsfHeap) Push(x any) {
	it := x.(*gdsfItem)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *gdsfHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return it
}

var _ Policy = (*GDSF)(nil)

// NewGDSF returns an empty GDSF policy.
func NewGDSF() *GDSF {
	return &GDSF{items: make(map[kb.Key]*gdsfItem, 16)}
}

// Name implements Policy.
func (p *GDSF) Name() string { return "gdsf" }

// sizeKiB converts bytes to KiB with a floor of 1 to avoid division blowup.
func sizeKiB(size int64) float64 {
	kib := float64(size) / 1024
	if kib < 1 {
		return 1
	}
	return kib
}

// OnAdmit implements Policy.
func (p *GDSF) OnAdmit(k kb.Key, size int64) {
	it, ok := p.items[k]
	if !ok {
		it = &gdsfItem{key: k, keyStr: k.String(), freq: 1, size: size}
		p.items[k] = it
		it.prio = p.clock + float64(it.freq)/sizeKiB(it.size)
		heap.Push(&p.heap, it)
		return
	}
	it.prio = p.clock + float64(it.freq)/sizeKiB(it.size)
	heap.Fix(&p.heap, it.idx)
}

// OnAccess implements Policy.
func (p *GDSF) OnAccess(k kb.Key) {
	it, ok := p.items[k]
	if !ok {
		return
	}
	it.freq++
	it.prio = p.clock + float64(it.freq)/sizeKiB(it.size)
	heap.Fix(&p.heap, it.idx)
}

// OnRemove implements Policy.
func (p *GDSF) OnRemove(k kb.Key) {
	it, ok := p.items[k]
	if !ok {
		return
	}
	if it.prio > p.clock {
		p.clock = it.prio // age the clock to the evicted priority
	}
	heap.Remove(&p.heap, it.idx)
	delete(p.items, k)
}

// Victim implements Policy.
func (p *GDSF) Victim() (kb.Key, bool) {
	if len(p.heap) == 0 {
		return kb.Key{}, false
	}
	return p.heap[0].key, true
}

// Len implements Policy.
func (p *GDSF) Len() int { return len(p.items) }

// NewPolicy builds a policy by name ("lru", "fifo", "lfu", "gdsf",
// "clock"), returning false for unknown names.
func NewPolicy(name string) (Policy, bool) {
	switch name {
	case "lru":
		return NewLRU(), true
	case "fifo":
		return NewFIFO(), true
	case "lfu":
		return NewLFU(), true
	case "gdsf":
		return NewGDSF(), true
	case "clock":
		return NewClock(), true
	default:
		return nil, false
	}
}
