package edge

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/kb"
	"repro/internal/nn"
)

// ErrNoIndividual reports that the user has no individual model cached on
// this server (never personalized here, or the unpinned entry was
// evicted). Handover treats it as "nothing to migrate".
var ErrNoIndividual = errors.New("edge: no individual model")

// This file implements individual-model handover: when a user moves
// between edge servers (the mobility scenario of 6G deployments), the
// serving infrastructure migrates their personalized codec so the §II-B
// personalization survives the move instead of being relearned from
// scratch.

// ExportedModel is a serialized individual model ready for migration.
type ExportedModel struct {
	Domain  string
	User    string
	Version int
	// Params is the full parameter payload (encoder + decoder: unlike the
	// §II-D decoder sync, a handover moves the whole individual model).
	Params []byte
}

// SizeBytes returns the migration payload size.
func (m *ExportedModel) SizeBytes() int64 {
	return int64(len(m.Params) + len(m.Domain) + len(m.User) + 8)
}

// UserDomains returns the domains for which this server currently caches
// an individual model for user, in deterministic (sorted) order: the set
// of models a handover must migrate. Only the user's own handful of keys
// is sorted, never the full cache.
func (s *Server) UserDomains(user string) []string {
	keys := s.cache.KeysWhere(func(k kb.Key) bool {
		return k.User == user && k.Role == kb.RoleCodec
	})
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.Domain
	}
	sort.Strings(out)
	return out
}

// DropUserModel removes the user's individual model for domain from the
// local cache — the source side of a completed handover — reporting
// whether it was present.
func (s *Server) DropUserModel(domain, user string) bool {
	return s.cache.Remove(kb.UserKey(domain, user, kb.RoleCodec))
}

// ExportUserModel serializes the user's individual model for migration to
// a peer edge. It fails if the user has no individual model here.
func (s *Server) ExportUserModel(domain, user string) (*ExportedModel, error) {
	acq, err := s.AcquireCodec(domain, user)
	if err != nil {
		return nil, err
	}
	if !acq.Individual {
		return nil, fmt.Errorf("edge %s: %w for %s/%s", s.name, ErrNoIndividual, user, domain)
	}
	var buf bytes.Buffer
	if _, err := acq.Model.Codec.Params().WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("edge %s: export %s/%s: %w", s.name, user, domain, err)
	}
	return &ExportedModel{
		Domain:  domain,
		User:    user,
		Version: acq.Model.Version,
		Params:  buf.Bytes(),
	}, nil
}

// ImportUserModel installs a migrated individual model, creating the local
// individual entry from the general model first and then overwriting its
// parameters. Older versions than the locally cached one are rejected.
func (s *Server) ImportUserModel(m *ExportedModel) error {
	params, err := nn.ReadParamSet(bytes.NewReader(m.Params))
	if err != nil {
		return fmt.Errorf("edge %s: import %s/%s: %w", s.name, m.User, m.Domain, err)
	}
	model, _, err := s.Personalize(m.Domain, m.User)
	if err != nil {
		return err
	}
	if model.Version > m.Version {
		return fmt.Errorf("edge %s: import %s/%s: local version %d newer than %d",
			s.name, m.User, m.Domain, model.Version, m.Version)
	}
	target := model.Codec.Params()
	if len(target.Params) != len(params.Params) {
		return fmt.Errorf("edge %s: import %s/%s: parameter count mismatch", s.name, m.User, m.Domain)
	}
	for i, p := range params.Params {
		t := target.Params[i]
		if t.Name != p.Name || t.M.Rows != p.M.Rows || t.M.Cols != p.M.Cols {
			return fmt.Errorf("edge %s: import %s/%s: tensor %q shape mismatch",
				s.name, m.User, m.Domain, p.Name)
		}
	}
	target.CopyFrom(params)
	model.Version = m.Version
	return nil
}
