package edge

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/kb"
	"repro/internal/mat"
	"repro/internal/netsim"
	"repro/internal/semantic"
)

var (
	edgeOnce  sync.Once
	edgeCorp  *corpus.Corpus
	edgeCloud *kb.Registry
)

// cloudFixture pretrains two domain codecs and registers them as general
// models in a cloud registry shared across tests (read-only).
func cloudFixture(t *testing.T) (*corpus.Corpus, *kb.Registry) {
	t.Helper()
	edgeOnce.Do(func() {
		edgeCorp = corpus.Build()
		edgeCloud = kb.NewRegistry()
		cfg := semantic.Config{
			EmbedDim: 12, FeatureDim: 6, HiddenDim: 16,
			Epochs: 3, Sentences: 400, Seed: 7,
		}
		for _, name := range []string{"it", "medical"} {
			d := edgeCorp.Domain(name)
			codec := semantic.Pretrain(d, edgeCorp, cfg)
			edgeCloud.Put(&kb.Model{Key: kb.GeneralKey(name, kb.RoleCodec), Version: 1, Codec: codec})
		}
	})
	return edgeCorp, edgeCloud
}

// newServer builds a test edge with capacity for n codec models.
func newServer(t *testing.T, n int, policy cache.Policy) *Server {
	t.Helper()
	_, cloud := cloudFixture(t)
	m, _ := cloud.Get(kb.GeneralKey("it", kb.RoleCodec))
	srv, err := New(Config{
		Name:          "edge-test",
		CacheCapacity: m.SizeBytes() * int64(n),
		Policy:        policy,
		Uplink:        netsim.Link{Latency: 40 * time.Millisecond, BandwidthBps: 200e6},
	}, cloud)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{CacheCapacity: 100}, nil); err == nil {
		t.Fatal("nil origin accepted")
	}
	_, cloud := cloudFixture(t)
	if _, err := New(Config{CacheCapacity: -1}, cloud); err == nil {
		t.Fatal("bad capacity accepted")
	}
}

func TestAcquireColdThenWarm(t *testing.T) {
	srv := newServer(t, 4, nil)
	cold, err := srv.AcquireCodec("it", "")
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first acquire should be a miss")
	}
	if cold.FetchLatency < 40*time.Millisecond {
		t.Fatalf("cold fetch latency %v below uplink latency", cold.FetchLatency)
	}
	warm, err := srv.AcquireCodec("it", "")
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || warm.FetchLatency != 0 {
		t.Fatalf("second acquire should be a free hit: %+v", warm)
	}
	if warm.Model != cold.Model {
		t.Fatal("warm acquire returned a different model")
	}
}

func TestAcquireUnknownDomain(t *testing.T) {
	srv := newServer(t, 4, nil)
	if _, err := srv.AcquireCodec("astrology", ""); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

func TestAcquirePrefersIndividualModel(t *testing.T) {
	srv := newServer(t, 4, nil)
	if _, _, err := srv.Personalize("it", "alice"); err != nil {
		t.Fatal(err)
	}
	acq, err := srv.AcquireCodec("it", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !acq.Individual {
		t.Fatal("individual model not preferred")
	}
	// Another user still gets the general model.
	acq2, err := srv.AcquireCodec("it", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if acq2.Individual {
		t.Fatal("bob received alice's individual model")
	}
}

func TestPersonalizeIdempotent(t *testing.T) {
	srv := newServer(t, 4, nil)
	m1, _, err := srv.Personalize("it", "alice")
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := srv.Personalize("it", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("Personalize replaced an existing individual model")
	}
}

func TestPersonalizeRequiresUser(t *testing.T) {
	srv := newServer(t, 4, nil)
	if _, _, err := srv.Personalize("it", ""); err == nil {
		t.Fatal("empty user accepted")
	}
}

func TestPersonalizeClonesGeneral(t *testing.T) {
	srv := newServer(t, 4, nil)
	m, _, err := srv.Personalize("it", "alice")
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := srv.AcquireCodec("it", "")
	if m.Codec == gen.Model.Codec {
		t.Fatal("individual model shares codec with general model")
	}
}

func TestEncodeDecodeAcrossServers(t *testing.T) {
	corp, _ := cloudFixture(t)
	sender := newServer(t, 4, nil)
	receiver := newServer(t, 4, nil)
	gen := corpus.NewGenerator(corp, mat.NewRNG(10))
	m := gen.Message(corp.Domain("it").Index, nil)

	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	enc, err := sender.Encode(sc, "it", "u1", m.Words)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Features.Rows != len(m.Words) {
		t.Fatal("feature count mismatch")
	}
	if enc.ComputeLatency != time.Duration(len(m.Words))*200*time.Microsecond {
		t.Fatalf("compute latency = %v", enc.ComputeLatency)
	}
	dec, err := receiver.Decode(sc, "it", "u1", enc.Features)
	if err != nil {
		t.Fatal(err)
	}
	// Same general models on both edges and a clean path: decoding must
	// match ground truth wherever the codec reconstructs correctly.
	acc := semantic.ConceptAccuracy(dec.Concepts, m.ConceptIDs)
	if acc < 0.8 {
		t.Fatalf("cross-server accuracy = %v", acc)
	}
	if len(dec.Words) != len(m.Words) {
		t.Fatal("restored word count mismatch")
	}
}

func TestRecordTransactionBuffersAndSignals(t *testing.T) {
	corp, _ := cloudFixture(t)
	srv := newServer(t, 4, nil)
	srv.bufferThreshold = 3
	gen := corpus.NewGenerator(corp, mat.NewRNG(11))
	var ready bool
	for i := 0; i < 3; i++ {
		m := gen.Message(corp.Domain("it").Index, nil)
		var err error
		_, ready, err = srv.RecordTransaction(nil, "it", "u1", m.Words, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !ready {
		t.Fatal("buffer should signal ready at threshold")
	}
	buf := srv.Buffer("it", "u1")
	if buf == nil || buf.Len() != 3 {
		t.Fatal("buffer not recorded")
	}
}

func TestRecordTransactionOutOfDomainWords(t *testing.T) {
	srv := newServer(t, 4, nil)
	tx, _, err := srv.RecordTransaction(nil, "it", "u1", []string{"doctor", "server"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ConceptIDs[0] != -1 {
		t.Fatal("out-of-domain word should map to concept -1")
	}
	if tx.ConceptIDs[1] < 0 {
		t.Fatal("in-domain word should have a concept")
	}
	if tx.Mismatch() < 0.5 {
		t.Fatalf("mismatch = %v, expected >= 0.5 with one OOD word", tx.Mismatch())
	}
}

func TestUpdateRoundTripBetweenEdges(t *testing.T) {
	corp, _ := cloudFixture(t)
	sender := newServer(t, 6, nil)
	receiver := newServer(t, 6, nil)
	rng := mat.NewRNG(12)
	idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
	gen := corpus.NewGenerator(corp, rng.Split())
	sender.bufferThreshold = 24

	for i := 0; i < 24; i++ {
		m := gen.Message(corp.Domain("it").Index, idio)
		if _, _, err := sender.RecordTransaction(nil, "it", "u1", m.Words, nil); err != nil {
			t.Fatal(err)
		}
	}
	upd, err := sender.RunUpdate("it", "u1", fl.UpdateConfig{Epochs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Version != 1 {
		t.Fatalf("version = %d", upd.Version)
	}
	if sender.Buffer("it", "u1").Len() != 0 {
		t.Fatal("buffer not reset after update")
	}
	if err := receiver.ApplyRemoteUpdate(upd); err != nil {
		t.Fatal(err)
	}
	// Receiver's individual decoder must now match the sender's exactly
	// (lossless compression in this test).
	sm, _ := sender.AcquireCodec("it", "u1")
	rm, _ := receiver.AcquireCodec("it", "u1")
	if !sm.Individual || !rm.Individual {
		t.Fatal("individual models missing after update")
	}
	msgs := gen.Batch(corp.Domain("it").Index, 20, idio)
	for _, m := range msgs {
		feats := sm.Model.Codec.EncodeWords(m.Words)
		a := sm.Model.Codec.DecodeFeatures(feats)
		b := rm.Model.Codec.DecodeFeatures(feats)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("receiver decoder diverged from sender after sync")
			}
		}
	}
}

func TestRunUpdateWithoutData(t *testing.T) {
	srv := newServer(t, 4, nil)
	if _, err := srv.RunUpdate("it", "nobody", fl.UpdateConfig{}); err == nil {
		t.Fatal("update without buffered data accepted")
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	srv := newServer(t, 4, nil)
	lat, err := srv.Prefetch([]string{"it", "medical"})
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("prefetch should pay fetch latency")
	}
	srv.ResetCacheStats()
	for _, d := range []string{"it", "medical"} {
		if acq, err := srv.AcquireCodec(d, ""); err != nil || !acq.CacheHit {
			t.Fatalf("prefetch did not warm %s", d)
		}
	}
	if srv.CacheStats().Misses != 0 {
		t.Fatal("post-prefetch misses recorded")
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	// Capacity for one model only: acquiring two domains must evict.
	srv := newServer(t, 1, cache.NewLRU())
	if _, err := srv.AcquireCodec("it", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AcquireCodec("medical", ""); err != nil {
		t.Fatal(err)
	}
	if srv.Cache().Len() != 1 {
		t.Fatalf("cache holds %d models, capacity is 1", srv.Cache().Len())
	}
	// Re-acquiring the evicted domain is a miss again.
	acq, err := srv.AcquireCodec("it", "")
	if err != nil {
		t.Fatal(err)
	}
	if acq.CacheHit {
		t.Fatal("evicted model reported as hit")
	}
}

func TestConcurrentTransactions(t *testing.T) {
	corp, _ := cloudFixture(t)
	srv := newServer(t, 6, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen := corpus.NewGenerator(corp, mat.NewRNG(uint64(100+g)))
			user := string(rune('a' + g))
			for i := 0; i < 30; i++ {
				m := gen.Message(corp.Domain("it").Index, nil)
				if _, _, err := srv.RecordTransaction(nil, "it", user, m.Words, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		user := string(rune('a' + g))
		if buf := srv.Buffer("it", user); buf == nil || buf.Len() != 30 {
			t.Fatalf("user %s buffer corrupted", user)
		}
	}
}
