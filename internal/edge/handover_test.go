package edge

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/mat"
)

// personalizeOn runs enough idiolect traffic through srv to produce a
// fine-tuned individual model for u1, returning the idiolect.
func personalizeOn(t *testing.T, srv *Server, corp *corpus.Corpus, seed uint64) *corpus.Idiolect {
	t.Helper()
	rng := mat.NewRNG(seed)
	idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
	gen := corpus.NewGenerator(corp, rng.Split())
	srv.bufferThreshold = 24
	for i := 0; i < 24; i++ {
		m := gen.Message(corp.Domain("it").Index, idio)
		if _, _, err := srv.RecordTransaction(nil, "it", "u1", m.Words, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := srv.RunUpdate("it", "u1", fl.UpdateConfig{Epochs: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	return idio
}

func TestHandoverPreservesModel(t *testing.T) {
	corp, _ := cloudFixture(t)
	edgeA := newServer(t, 6, nil)
	edgeB := newServer(t, 6, nil)
	idio := personalizeOn(t, edgeA, corp, 51)

	exported, err := edgeA.ExportUserModel("it", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if exported.SizeBytes() <= 0 || exported.Version != 1 {
		t.Fatalf("export metadata wrong: %+v", exported)
	}
	if err := edgeB.ImportUserModel(exported); err != nil {
		t.Fatal(err)
	}

	// The imported model must decode identically to the source model.
	a, err := edgeA.AcquireCodec("it", "u1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := edgeB.AcquireCodec("it", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if !b.Individual {
		t.Fatal("import did not create an individual model")
	}
	if b.Model.Version != 1 {
		t.Fatalf("imported version = %d", b.Model.Version)
	}
	gen := corpus.NewGenerator(corp, mat.NewRNG(52))
	for i := 0; i < 20; i++ {
		m := gen.Message(corp.Domain("it").Index, idio)
		x := a.Model.Codec.RoundTrip(m.Words)
		y := b.Model.Codec.RoundTrip(m.Words)
		for j := range x {
			if x[j] != y[j] {
				t.Fatal("imported model decodes differently")
			}
		}
	}
}

func TestExportWithoutIndividualModel(t *testing.T) {
	srv := newServer(t, 4, nil)
	if _, err := srv.ExportUserModel("it", "nobody"); err == nil {
		t.Fatal("export without individual model accepted")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	srv := newServer(t, 4, nil)
	err := srv.ImportUserModel(&ExportedModel{
		Domain: "it", User: "u1", Version: 1, Params: []byte("junk"),
	})
	if err == nil {
		t.Fatal("garbage import accepted")
	}
}

func TestImportRejectsStaleVersion(t *testing.T) {
	corp, _ := cloudFixture(t)
	edgeA := newServer(t, 6, nil)
	edgeB := newServer(t, 6, nil)
	personalizeOn(t, edgeA, corp, 53)
	exported, err := edgeA.ExportUserModel("it", "u1")
	if err != nil {
		t.Fatal(err)
	}
	if err := edgeB.ImportUserModel(exported); err != nil {
		t.Fatal(err)
	}
	// A second import with an older version must be rejected.
	stale := *exported
	stale.Version = 0
	if err := edgeB.ImportUserModel(&stale); err == nil {
		t.Fatal("stale import accepted")
	}
}

func TestImportRejectsWrongDomainShapes(t *testing.T) {
	corp, _ := cloudFixture(t)
	edgeA := newServer(t, 6, nil)
	edgeB := newServer(t, 6, nil)
	personalizeOn(t, edgeA, corp, 54)
	exported, err := edgeA.ExportUserModel("it", "u1")
	if err != nil {
		t.Fatal(err)
	}
	// Claim the payload is for a different domain: tensor shapes differ.
	exported.Domain = "medical"
	if err := edgeB.ImportUserModel(exported); err == nil {
		t.Fatal("cross-domain import accepted")
	}
}
