// Package edge implements the semantic edge server of Fig. 1: it caches
// domain-specialized general models and user-specific individual models,
// fetches from the cloud origin on miss (paying transfer latency), runs
// semantic encoding/decoding with simulated compute cost, records
// transactions in per-user domain buffers via its decoder copy, and
// triggers the individual-model update process.
package edge

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/kb"
	"repro/internal/mat"
	"repro/internal/netsim"
)

// Config parameterizes an edge server.
type Config struct {
	// Name identifies the server (e.g. "edge-a").
	Name string
	// CacheCapacity is the model cache size in bytes.
	CacheCapacity int64
	// Policy is the cache eviction policy; nil selects LRU.
	Policy cache.Policy
	// Uplink is the link to the cloud origin used for model fetches.
	Uplink netsim.Link
	// ComputePerToken is the simulated semantic encode/decode cost per
	// token; 0 selects 200µs.
	ComputePerToken time.Duration
	// PinGeneral pins domain-general models in the cache once fetched.
	PinGeneral bool
	// BufferThreshold is the per-user domain-buffer size that triggers an
	// individual-model update; 0 selects 32.
	BufferThreshold int
	// Fetcher resolves local cache misses; nil selects the origin fetcher
	// (cloud registry over Uplink). A cluster installs a cooperative
	// fetcher here that probes neighbor caches before paying the origin.
	Fetcher Fetcher
}

// Fetch is the outcome of resolving a model that missed the local cache.
type Fetch struct {
	// Model is the fetched model.
	Model *kb.Model
	// Latency is the simulated transfer time paid for the fetch.
	Latency time.Duration
	// Remote reports the model came from a peer edge cache rather than
	// the cloud origin (cooperative caching).
	Remote bool
}

// Fetcher resolves cache misses for general models.
type Fetcher interface {
	FetchModel(k kb.Key) (Fetch, error)
}

// originFetcher is the default Fetcher: straight to the cloud origin over
// the uplink.
type originFetcher struct {
	origin *kb.Registry
	uplink netsim.Link
}

// NewOriginFetcher returns the default miss resolver — straight to the
// cloud origin over uplink. Composite fetchers (e.g. the cluster's
// cooperative fetcher) delegate to it as their fallback so origin-fetch
// semantics live in one place.
func NewOriginFetcher(origin *kb.Registry, uplink netsim.Link) Fetcher {
	return originFetcher{origin: origin, uplink: uplink}
}

// FetchModel implements Fetcher.
func (f originFetcher) FetchModel(k kb.Key) (Fetch, error) {
	m, ok := f.origin.Get(k)
	if !ok {
		return Fetch{}, fmt.Errorf("origin has no model %s", k)
	}
	return Fetch{Model: m, Latency: f.uplink.TransferTime(m.SizeBytes())}, nil
}

// Server is one semantic edge server. It is safe for concurrent use.
type Server struct {
	name            string
	cache           *cache.Cache
	fetcher         Fetcher
	computePerToken time.Duration
	pinGeneral      bool
	bufferThreshold int

	mu       sync.Mutex
	buffers  map[string]*fl.Buffer
	versions map[string]int
}

// New builds an edge server backed by the given cloud origin registry.
func New(cfg Config, origin *kb.Registry) (*Server, error) {
	if origin == nil {
		return nil, errors.New("edge: nil origin registry")
	}
	if cfg.Policy == nil {
		cfg.Policy = cache.NewLRU()
	}
	if cfg.ComputePerToken == 0 {
		cfg.ComputePerToken = 200 * time.Microsecond
	}
	if cfg.BufferThreshold == 0 {
		cfg.BufferThreshold = 32
	}
	if cfg.Fetcher == nil {
		cfg.Fetcher = originFetcher{origin: origin, uplink: cfg.Uplink}
	}
	c, err := cache.New(cfg.CacheCapacity, cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("edge %s: %w", cfg.Name, err)
	}
	return &Server{
		name:            cfg.Name,
		cache:           c,
		fetcher:         cfg.Fetcher,
		computePerToken: cfg.ComputePerToken,
		pinGeneral:      cfg.PinGeneral,
		bufferThreshold: cfg.BufferThreshold,
		buffers:         make(map[string]*fl.Buffer, 16),
		versions:        make(map[string]int, 16),
	}, nil
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// ComputePerToken returns the simulated per-token encode/decode cost.
// Batched serve paths that run codec GEMMs outside Encode/Decode use it to
// account compute latency identically to the solo path.
func (s *Server) ComputePerToken() time.Duration { return s.computePerToken }

// CacheStats returns a snapshot of the model-cache counters.
func (s *Server) CacheStats() cache.Stats { return s.cache.Stats() }

// ResetCacheStats zeroes the cache counters.
func (s *Server) ResetCacheStats() { s.cache.ResetStats() }

// Cache exposes the underlying model cache for inspection.
func (s *Server) Cache() *cache.Cache { return s.cache }

// PinsGeneral reports whether this server pins general models in its
// cache once fetched, so a peer pushing a general model (mesh drain) can
// install it exactly as a local fetch would have.
func (s *Server) PinsGeneral() bool { return s.pinGeneral }

// bufferKey builds the buffers map key.
func bufferKey(domain, user string) string { return user + "/" + domain }

// AcquireResult reports how a codec was obtained.
type AcquireResult struct {
	// Model is the codec to use (individual if present, else general).
	Model *kb.Model
	// FetchLatency is the origin transfer time paid (0 on cache hit).
	FetchLatency time.Duration
	// CacheHit reports whether the model came from the local cache.
	CacheHit bool
	// Remote reports a miss served from a peer edge cache (cooperative
	// caching) rather than the cloud origin.
	Remote bool
	// Individual reports whether a user-specific model was used.
	Individual bool
}

// AcquireCodec returns the codec for (domain, user): the user's individual
// model when cached, otherwise the domain-general model, fetching it from
// the cloud origin on miss and paying uplink transfer latency.
func (s *Server) AcquireCodec(domain, user string) (AcquireResult, error) {
	userKey := kb.UserKey(domain, user, kb.RoleCodec)
	if user != "" && s.cache.Contains(userKey) {
		if m, ok := s.cache.Get(userKey); ok {
			return AcquireResult{Model: m, CacheHit: true, Individual: true}, nil
		}
	}
	genKey := kb.GeneralKey(domain, kb.RoleCodec)
	if m, ok := s.cache.Get(genKey); ok {
		return AcquireResult{Model: m, CacheHit: true}, nil
	}
	f, err := s.fetcher.FetchModel(genKey)
	if err != nil {
		return AcquireResult{}, fmt.Errorf("edge %s: %w", s.name, err)
	}
	if err := s.cache.Put(f.Model, s.pinGeneral); err != nil {
		return AcquireResult{}, fmt.Errorf("edge %s: cache %s: %w", s.name, genKey, err)
	}
	return AcquireResult{Model: f.Model, FetchLatency: f.Latency, Remote: f.Remote}, nil
}

// Personalize creates the user's individual codec as a clone of the
// domain-general model (Fig. 1 step 2) and caches it. If an individual
// model already exists it is returned unchanged.
func (s *Server) Personalize(domain, user string) (*kb.Model, time.Duration, error) {
	if user == "" {
		return nil, 0, errors.New("edge: Personalize requires a user")
	}
	userKey := kb.UserKey(domain, user, kb.RoleCodec)
	if s.cache.Contains(userKey) {
		if m, ok := s.cache.Get(userKey); ok {
			return m, 0, nil
		}
	}
	acq, err := s.AcquireCodec(domain, "")
	if err != nil {
		return nil, 0, err
	}
	m := &kb.Model{Key: userKey, Version: 0, Codec: acq.Model.Codec.Clone()}
	if err := s.cache.Put(m, false); err != nil {
		return nil, 0, fmt.Errorf("edge %s: cache individual model: %w", s.name, err)
	}
	return m, acq.FetchLatency, nil
}

// EncodeResult is the outcome of sender-side semantic encoding.
type EncodeResult struct {
	AcquireResult
	// Features is the len(words) x FeatureDim matrix of per-token semantic
	// feature vectors. It is backed by the scratch arena passed to Encode
	// and must be consumed before that scratch is reset or pooled.
	Features *mat.Dense
	// ComputeLatency is the simulated encoding cost.
	ComputeLatency time.Duration
}

// Encode runs semantic feature extraction for (domain, user) over words as
// one batched GEMM. sc must be non-nil: the feature matrix is allocated
// from it, so a warm steady-state call performs no heap allocation.
func (s *Server) Encode(sc *mat.Scratch, domain, user string, words []string) (EncodeResult, error) {
	acq, err := s.AcquireCodec(domain, user)
	if err != nil {
		return EncodeResult{}, err
	}
	return EncodeResult{
		AcquireResult:  acq,
		Features:       acq.Model.Codec.EncodeWordsInto(sc, words),
		ComputeLatency: time.Duration(len(words)) * s.computePerToken,
	}, nil
}

// DecodeResult is the outcome of receiver-side semantic decoding.
type DecodeResult struct {
	AcquireResult
	// Concepts are the decoded domain concepts, backed by the scratch
	// arena passed to Decode.
	Concepts []int
	// Words are the restored canonical surface forms. DecodeConcepts
	// leaves them nil; Decode fills them.
	Words []string
	// ComputeLatency is the simulated decoding cost.
	ComputeLatency time.Duration
}

// DecodeConcepts restores the concept sequence from received features for
// (domain, user) with batched GEMMs, without rendering surface words. sc
// must be non-nil: concepts and all temporaries are allocated from it, so a
// warm steady-state call performs no heap allocation.
func (s *Server) DecodeConcepts(sc *mat.Scratch, domain, user string, feats *mat.Dense) (DecodeResult, error) {
	acq, err := s.AcquireCodec(domain, user)
	if err != nil {
		return DecodeResult{}, err
	}
	concepts := sc.Ints(feats.Rows)
	acq.Model.Codec.DecodeFeaturesInto(sc, feats, concepts)
	return DecodeResult{
		AcquireResult:  acq,
		Concepts:       concepts,
		ComputeLatency: time.Duration(feats.Rows) * s.computePerToken,
	}, nil
}

// Decode restores a message from received features for (domain, user):
// DecodeConcepts plus the canonical surface rendering the daemon returns to
// clients.
func (s *Server) Decode(sc *mat.Scratch, domain, user string, feats *mat.Dense) (DecodeResult, error) {
	res, err := s.DecodeConcepts(sc, domain, user, feats)
	if err != nil {
		return DecodeResult{}, err
	}
	res.Words = res.Model.Codec.RestoreWords(res.Concepts)
	return res, nil
}

// RecordTransaction performs the §II-C decoder-copy mismatch calculation on
// the sender edge: it round-trips the message through the local codec,
// derives ground-truth concepts from the domain KB, and stores the
// transaction in the (user, domain) buffer. It returns the transaction and
// whether the buffer has reached its update threshold.
//
// sc may be nil (an internal pooled scratch is used). enc, when non-nil,
// is the EncodeResult of the same words on this server: if the acquired
// codec is the same model instance the already-computed features are
// reused and only the decoder half of the round trip runs. Encoding is
// deterministic, so the recorded transaction is bit-identical either way.
func (s *Server) RecordTransaction(sc *mat.Scratch, domain, user string, words []string, enc *EncodeResult) (fl.Transaction, bool, error) {
	acq, err := s.AcquireCodec(domain, user)
	if err != nil {
		return fl.Transaction{}, false, err
	}
	tx := newTransaction(acq.Model.Codec.Domain(), words)
	if sc == nil {
		sc = mat.GetScratch()
		defer mat.PutScratch(sc)
	}
	// Decoded is retained by the buffer until the next update fires, so it
	// lives on the heap, not in the scratch arena.
	tx.Decoded = make([]int, len(words))
	if enc != nil && enc.Model == acq.Model {
		acq.Model.Codec.DecodeFeaturesInto(sc, enc.Features, tx.Decoded)
	} else {
		acq.Model.Codec.RoundTripInto(sc, words, tx.Decoded)
	}
	return tx, s.addTransaction(domain, user, tx), nil
}

// RecordDecodedTransaction is RecordTransaction with the decoder-copy
// output already computed: decoded must be the round-trip decode of words
// through the codec this server currently serves for (domain, user). The
// batched serve path uses it after running the decoder copy inside a
// cross-request fused GEMM; callers must serialize with respect to model
// updates for the user (core holds the per-user lock across the whole
// transmit), so the precomputed decode matches what a fresh AcquireCodec
// round trip would produce. decoded is copied; the caller's backing array
// (typically a scratch arena) is not retained.
func (s *Server) RecordDecodedTransaction(domain, user string, words []string, decoded []int) (fl.Transaction, bool, error) {
	if len(decoded) != len(words) {
		return fl.Transaction{}, false, fmt.Errorf("edge %s: decoded length %d != words %d", s.name, len(decoded), len(words))
	}
	acq, err := s.AcquireCodec(domain, user)
	if err != nil {
		return fl.Transaction{}, false, err
	}
	tx := newTransaction(acq.Model.Codec.Domain(), words)
	tx.Decoded = append(make([]int, 0, len(decoded)), decoded...)
	return tx, s.addTransaction(domain, user, tx), nil
}

// newTransaction builds the ground-truth half of a transaction: surface
// IDs and KB concept IDs for words under domain d.
func newTransaction(d *corpus.Domain, words []string) fl.Transaction {
	tx := fl.Transaction{
		SurfaceIDs: make([]int, len(words)),
		ConceptIDs: make([]int, len(words)),
	}
	for i, w := range words {
		tx.SurfaceIDs[i] = d.SurfaceID(w)
		if ci, ok := d.ConceptOf(w); ok {
			tx.ConceptIDs[i] = ci
		} else {
			tx.ConceptIDs[i] = -1 // out-of-domain word: always a mismatch
		}
	}
	return tx
}

// addTransaction appends tx to the (user, domain) buffer, creating it on
// first use, and reports whether the buffer reached its update threshold.
func (s *Server) addTransaction(domain, user string, tx fl.Transaction) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := bufferKey(domain, user)
	buf, ok := s.buffers[key]
	if !ok {
		buf = fl.NewBuffer(domain, user, s.bufferThreshold)
		s.buffers[key] = buf
	}
	buf.Add(tx)
	return buf.Ready()
}

// Buffer returns the (user, domain) buffer, or nil if none exists yet.
func (s *Server) Buffer(domain, user string) *fl.Buffer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buffers[bufferKey(domain, user)]
}

// BufferState is one user domain-buffer snapshot, portable across edge
// servers so a handover carries the pending federated-update transactions
// and the update fires at the same threshold crossing on the new owner.
type BufferState struct {
	Domain string
	Txs    []fl.Transaction
}

// ExportUserBuffers snapshots every non-empty transaction buffer the
// server holds for user, sorted by domain for deterministic wire shape.
func (s *Server) ExportUserBuffers(user string) []BufferState {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []BufferState
	prefix := user + "/"
	for key, buf := range s.buffers {
		if !strings.HasPrefix(key, prefix) || buf.Len() == 0 {
			continue
		}
		out = append(out, BufferState{Domain: buf.Domain, Txs: buf.Transactions()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// ImportUserBuffers replaces the user's domain buffers with the given
// snapshots (the exporter owned the user, so its view is authoritative).
func (s *Server) ImportUserBuffers(user string, states []BufferState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range states {
		key := bufferKey(st.Domain, user)
		buf := fl.NewBuffer(st.Domain, user, s.bufferThreshold)
		for _, tx := range st.Txs {
			buf.Add(tx)
		}
		s.buffers[key] = buf
	}
}

// DropUserBuffers discards every transaction buffer held for user, after
// a handover shipped them to the new owner.
func (s *Server) DropUserBuffers(user string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prefix := user + "/"
	for key := range s.buffers {
		if strings.HasPrefix(key, prefix) {
			delete(s.buffers, key)
		}
	}
}

// RunUpdate executes the §II-D update process for (domain, user): it
// ensures the individual model exists, fine-tunes it on the buffered
// transactions, resets the buffer, and returns the decoder update to ship
// to the receiver edge.
func (s *Server) RunUpdate(domain, user string, cfg fl.UpdateConfig) (*fl.Update, error) {
	s.mu.Lock()
	buf := s.buffers[bufferKey(domain, user)]
	s.mu.Unlock()
	if buf == nil || buf.Len() == 0 {
		return nil, fmt.Errorf("edge %s: no buffered data for %s/%s", s.name, user, domain)
	}
	model, _, err := s.Personalize(domain, user)
	if err != nil {
		return nil, err
	}
	upd, err := fl.RunUpdate(model.Codec, buf, model.Version, cfg)
	if err != nil {
		return nil, err
	}
	model.Version = upd.Version
	s.mu.Lock()
	s.versions[bufferKey(domain, user)] = upd.Version
	s.mu.Unlock()
	buf.Reset()
	return upd, nil
}

// ApplyRemoteUpdate applies a decoder update received from a peer edge to
// the local copy of the user's individual model, creating it from the
// general model if needed.
func (s *Server) ApplyRemoteUpdate(upd *fl.Update) error {
	model, _, err := s.Personalize(upd.Domain, upd.User)
	if err != nil {
		return err
	}
	if err := fl.ApplyUpdate(model.Codec, upd); err != nil {
		return err
	}
	model.Version = upd.Version
	return nil
}

// Prefetch pulls the general models for the given domains into the cache,
// returning the total transfer latency. Experiments use it for warm-start
// conditions.
func (s *Server) Prefetch(domains []string) (time.Duration, error) {
	var total time.Duration
	for _, d := range domains {
		acq, err := s.AcquireCodec(d, "")
		if err != nil {
			return total, err
		}
		total += acq.FetchLatency
	}
	return total, nil
}
