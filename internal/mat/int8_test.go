package mat

import (
	"math"
	"testing"
)

// quantizeDense builds a QMat8 from a float64 matrix with QuantizeRowQ8,
// plus the dequantized float64 view for reference computations.
func quantizeDense(m *Dense) (*QMat8, *Dense) {
	q := NewQMat8(m.Rows, m.Cols)
	deq := NewDense(m.Rows, m.Cols)
	row32 := make([]float32, m.Cols)
	codes := make([]uint8, m.Cols)
	for i := 0; i < m.Rows; i++ {
		Narrow(row32, m.Row(i))
		lo, scale, _ := QuantizeRowQ8(codes, row32)
		q.SetRow(i, codes, lo, scale)
		for j, c := range codes {
			deq.Row(i)[j] = float64(lo) + float64(scale)*float64(c)
		}
	}
	return q, deq
}

func TestQuantizeRowQ8RoundTrip(t *testing.T) {
	rng := NewRNG(5)
	src := make([]float32, 97)
	for i := range src {
		src[i] = float32(4*rng.Float64() - 2)
	}
	src[0], src[13] = 2, -2 // exact range endpoints
	codes := make([]uint8, len(src))
	lo, scale, sum := QuantizeRowQ8(codes, src)
	if lo != -2 || scale <= 0 {
		t.Fatalf("grid lo=%v scale=%v", lo, scale)
	}
	var wantSum int32
	for i, c := range codes {
		wantSum += int32(c)
		back := lo + scale*float32(c)
		// Truncating grid: reconstruction sits within one step below v.
		if diff := float64(src[i] - back); diff < -1e-6 || diff > float64(scale)+1e-6 {
			t.Fatalf("elem %d: %v -> code %d -> %v (step %v)", i, src[i], c, back, scale)
		}
	}
	if sum != wantSum {
		t.Fatalf("code sum %d, want %d", sum, wantSum)
	}
	// Range endpoints hit the grid exactly.
	if codes[0] != 255 || codes[13] != 0 {
		t.Fatalf("endpoint codes = %d, %d; want 255, 0", codes[0], codes[13])
	}
}

func TestQuantizeRowQ8ZeroRow(t *testing.T) {
	src := make([]float32, 8)
	codes := make([]uint8, 8)
	codes[3] = 99 // stale data must be overwritten
	lo, scale, sum := QuantizeRowQ8(codes, src)
	if lo != 0 || scale != 0 || sum != 0 {
		t.Fatalf("zero row: lo=%v scale=%v sum=%d", lo, scale, sum)
	}
	for i, c := range codes {
		if c != 0 {
			t.Fatalf("zero row code %d = %d", i, c)
		}
	}
}

func TestMulMatTQ8AddRowMatchesDequantizedReference(t *testing.T) {
	sc := GetScratch()
	defer PutScratch(sc)
	for _, sh := range gemmShapes {
		a64, b64, a32, _ := tierTestMats(sh.m, sh.k, sh.n, 77)
		_ = a64
		qb, deqB := quantizeDense(b64)
		bias := make([]float32, sh.n)
		for i := range bias {
			bias[i] = float32(i%3) - 1
		}
		sc.Reset()
		got := NewDense32(sh.m, sh.n)
		MulMatTQ8AddRow(sc, got, a32, qb, bias)
		// Reference: quantize the activations the same way, then run the
		// dot products in float64 on the dequantized values.
		deqA := NewDense(sh.m, sh.k)
		codes := make([]uint8, sh.k)
		for i := 0; i < sh.m; i++ {
			lo, scale, _ := QuantizeRowQ8(codes, a32.Row(i))
			for j, c := range codes {
				deqA.Row(i)[j] = float64(lo) + float64(scale)*float64(c)
			}
		}
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want := float64(bias[j])
				for p := 0; p < sh.k; p++ {
					want += deqA.Row(i)[p] * deqB.Row(j)[p]
				}
				g := float64(got.Data[i*sh.n+j])
				// The kernel's affine expansion runs in float32; allow
				// float32-rounding-scale slack around the f64 reference.
				tol := 1e-4 * (1 + math.Abs(want))
				if math.Abs(g-want) > tol {
					t.Fatalf("%dx%dx%d: (%d,%d) = %v, want %v", sh.m, sh.k, sh.n, i, j, g, want)
				}
			}
		}
	}
}

func TestMulMatTQ8DeterministicAcrossWorkers(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	_, b64, a32, _ := tierTestMats(300, 128, 257, 91)
	qb, _ := quantizeDense(b64)
	runAt := func(workers int) *Dense32 {
		SetParallelism(workers)
		sc := GetScratch()
		defer PutScratch(sc)
		dst := NewDense32(300, 257)
		MulMatTQ8AddRow(sc, dst, a32, qb, nil)
		return dst
	}
	serial := runAt(1)
	for _, workers := range []int{2, 8} {
		par := runAt(workers)
		for i, v := range par.Data {
			if v != serial.Data[i] {
				t.Fatalf("workers=%d: elem %d differs: %v vs %v", workers, i, v, serial.Data[i])
			}
		}
	}
}
