// Package mat provides the small, dependency-free numerical substrate used
// by the semantic-codec training stack: dense matrices, vector kernels and a
// deterministic random number generator.
//
// Everything in this package is deterministic given a seed, which is what
// makes the experiment harness bit-reproducible across runs.
package mat

import "math"

// RNG is a deterministic pseudo-random number generator based on SplitMix64.
//
// It is intentionally not safe for concurrent use; callers that need
// parallel streams should derive independent generators with Split.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from the polar method.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Reseed resets the generator to the exact state NewRNG(seed) would
// produce, discarding any cached polar spare. It lets a long-lived
// generator (and whatever buffers hang off its consumers) be reused for
// many independent short streams without reallocating. The body is two
// stores and inlines into per-message call sites: the lock-free channel
// stage reseeds once per transmission, so this sits on the serve path.
// The stale spare value itself is left in place — hasSpare alone gates
// every read of it, so clearing the float would be a third store for
// nothing.
func (r *RNG) Reseed(seed uint64) {
	r.state = seed
	r.hasSpare = false
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mat: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal deviate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// NormFloat64Block fills dst with standard normal deviates, producing the
// EXACT sequence that len(dst) successive NormFloat64 calls would — it
// consumes a cached spare first and caches a spare when the block ends on
// the first half of a polar pair — so callers can amortize per-value call
// overhead without perturbing the stream. Interleaving block and scalar
// draws on one generator is therefore always bit-identical to scalar-only
// draws.
func (r *RNG) NormFloat64Block(dst []float64) {
	i := 0
	if r.hasSpare && i < len(dst) {
		r.hasSpare = false
		dst[i] = r.spare
		i++
	}
	// Whole pairs: generate both polar deviates without touching the spare.
	for ; i+2 <= len(dst); i += 2 {
		for {
			u := 2*r.Float64() - 1
			v := 2*r.Float64() - 1
			s := u*u + v*v
			if s >= 1 || s == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(s) / s)
			dst[i] = u * f
			dst[i+1] = v * f
			break
		}
	}
	if i < len(dst) {
		// Odd tail: the scalar path caches the pair's second deviate as the
		// spare, exactly like a plain NormFloat64 call.
		dst[i] = r.NormFloat64()
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap, with the
// same contract as math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives a new generator whose stream is independent of the parent's
// subsequent output. It is the supported way to hand deterministic
// sub-streams to parallel components.
func (r *RNG) Split() *RNG {
	// Mixing two successive outputs gives a well-separated child state.
	a := r.Uint64()
	b := r.Uint64()
	return NewRNG(a ^ (b << 1) ^ 0x632be59bd9b4e019)
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with exponent s
// using inverse-CDF lookup on precomputed weights. It is suitable for the
// small ranges (domains, vocabulary buckets) used by the workload generator.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s (s > 0); larger
// s skews mass toward low indices. It panics if n <= 0 or s <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("mat: NewZipf called with non-positive n")
	}
	if s <= 0 {
		panic("mat: NewZipf called with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of items the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one index in [0, n) with Zipf-distributed probability.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
