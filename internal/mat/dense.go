package mat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense allocates a zeroed Rows x Cols matrix. It panics on non-positive
// dimensions.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic("mat: NewDense called with non-positive dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable view of row i.
func (m *Dense) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to zero.
func (m *Dense) Zero() { Zero(m.Data) }

// CopyFrom copies src's contents into m. It panics if shapes differ.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Randomize fills m with uniform values in [-scale, scale) drawn from rng.
func (m *Dense) Randomize(rng *RNG, scale float64) {
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * scale
	}
}

// GlorotInit fills m with the Glorot/Xavier uniform initialization for a
// layer with fanIn inputs and fanOut outputs.
func (m *Dense) GlorotInit(rng *RNG, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	m.Randomize(rng, limit)
}

// MulVec computes dst = m * x where x has length Cols and dst has length
// Rows. dst must not alias x. It panics on length mismatches. Large
// matrices shard rows across the package worker pool; results are
// bit-identical to serial execution at any parallelism.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("mat: MulVec length mismatch")
	}
	grain := kernelGrain(m.Cols)
	if Parallelism() == 1 || m.Rows <= grain {
		// Inline fast path: no closure, no scheduling.
		m.mulVecRange(dst, x, 0, m.Rows)
		return
	}
	ParallelFor(m.Rows, grain, func(lo, hi int) {
		m.mulVecRange(dst, x, lo, hi)
	})
}

// MulVecT computes dst = mᵀ * x where x has length Rows and dst has length
// Cols. dst must not alias x. It panics on length mismatches. Large
// matrices shard output columns across the package worker pool; each
// column accumulates rows in serial order, so results are bit-identical to
// serial execution at any parallelism.
func (m *Dense) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("mat: MulVecT length mismatch")
	}
	grain := kernelGrain(m.Rows)
	if Parallelism() == 1 || m.Cols <= grain {
		m.mulVecTRange(dst, x, 0, m.Cols)
		return
	}
	ParallelFor(m.Cols, grain, func(lo, hi int) {
		m.mulVecTRange(dst, x, lo, hi)
	})
}

// AddOuter accumulates m += a * x * yᵀ, where x has length Rows and y has
// length Cols. It panics on length mismatches. Large matrices shard rows
// across the package worker pool; results are bit-identical to serial
// execution at any parallelism.
func (m *Dense) AddOuter(a float64, x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("mat: AddOuter length mismatch")
	}
	grain := kernelGrain(m.Cols)
	if Parallelism() == 1 || m.Rows <= grain {
		m.addOuterRange(a, x, y, 0, m.Rows)
		return
	}
	ParallelFor(m.Rows, grain, func(lo, hi int) {
		m.addOuterRange(a, x, y, lo, hi)
	})
}

// AddScaled accumulates m += a * other. It panics if shapes differ.
func (m *Dense) AddScaled(a float64, other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("mat: AddScaled shape mismatch")
	}
	AXPY(m.Data, a, other.Data)
}

const denseMagic = uint32(0x4d415431) // "MAT1"

// errBadMatrix reports a malformed serialized matrix.
var errBadMatrix = errors.New("mat: malformed serialized matrix")

// WriteTo serializes m in a fixed little-endian binary layout:
// magic, rows, cols (uint32 each) followed by Rows*Cols float64 values.
func (m *Dense) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], denseMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Rows))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.Cols))
	n, err := w.Write(hdr)
	written := int64(n)
	if err != nil {
		return written, fmt.Errorf("mat: write header: %w", err)
	}
	buf := make([]byte, 8*len(m.Data))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	n, err = w.Write(buf)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("mat: write data: %w", err)
	}
	return written, nil
}

// ReadDense deserializes a matrix previously written by WriteTo.
func ReadDense(r io.Reader) (*Dense, error) {
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("mat: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != denseMagic {
		return nil, errBadMatrix
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	cols := int(binary.LittleEndian.Uint32(hdr[8:]))
	// The element-count bound is checked in uint64: on 32-bit platforms
	// rows*cols computed in int can overflow and wrap to a small positive
	// value, bypassing the limit before allocation. 1<<20 elements (8 MiB)
	// is orders of magnitude above any real model tensor while keeping the
	// worst-case allocation a forged header can demand modest.
	if rows <= 0 || cols <= 0 || uint64(rows)*uint64(cols) > 1<<20 {
		return nil, errBadMatrix
	}
	m := NewDense(rows, cols)
	// Decode in bounded chunks: a forged header over a short stream then
	// fails at the first missing chunk without a matching giant byte
	// buffer having been allocated up front.
	buf := make([]byte, 8*1024)
	for i := 0; i < len(m.Data); {
		n := len(m.Data) - i
		if n > len(buf)/8 {
			n = len(buf) / 8
		}
		if _, err := io.ReadFull(r, buf[:8*n]); err != nil {
			return nil, fmt.Errorf("mat: read data: %w", err)
		}
		for j := 0; j < n; j++ {
			m.Data[i+j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		i += n
	}
	return m, nil
}

// SizeBytes returns the serialized size of m in bytes.
func (m *Dense) SizeBytes() int64 { return 12 + int64(8*len(m.Data)) }
