//go:build amd64

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func f32GemmRow(dst, a, b *float32, n, k int)
//
// dst[j] = dot(a[0:k], b[j*k : j*k+k]) for j in [0, n). Four weight rows
// share each 8-lane load of the activation row (FMA into four independent
// YMM accumulators), then a scalar tail finishes k%8 and a single-row loop
// finishes n%4.
TEXT ·f32GemmRow(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ k+32(FP), R8

	MOVQ R8, R9
	ANDQ $-8, R9           // R9 = k &^ 7 (vectorized prefix)
	XORQ R10, R10          // j = 0

loop4:
	MOVQ CX, AX
	SUBQ R10, AX
	CMPQ AX, $4
	JL   loop1             // fewer than 4 rows left

	// Weight row pointers j..j+3 (rows are k floats apart).
	MOVQ  R10, AX
	IMULQ R8, AX
	LEAQ  (DX)(AX*4), R11
	LEAQ  (R11)(R8*4), R12
	LEAQ  (R12)(R8*4), R13
	LEAQ  (R13)(R8*4), R14

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	XORQ   BX, BX          // p = 0

vec4:
	CMPQ        BX, R9
	JGE         red4
	VMOVUPS     (SI)(BX*4), Y4
	VFMADD231PS (R11)(BX*4), Y4, Y0
	VFMADD231PS (R12)(BX*4), Y4, Y1
	VFMADD231PS (R13)(BX*4), Y4, Y2
	VFMADD231PS (R14)(BX*4), Y4, Y3
	ADDQ        $8, BX
	JMP         vec4

red4:
	// Horizontal-reduce each accumulator into lane 0.
	VEXTRACTF128 $1, Y0, X5
	VADDPS       X5, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0
	VEXTRACTF128 $1, Y1, X5
	VADDPS       X5, X1, X1
	VHADDPS      X1, X1, X1
	VHADDPS      X1, X1, X1
	VEXTRACTF128 $1, Y2, X5
	VADDPS       X5, X2, X2
	VHADDPS      X2, X2, X2
	VHADDPS      X2, X2, X2
	VEXTRACTF128 $1, Y3, X5
	VADDPS       X5, X3, X3
	VHADDPS      X3, X3, X3
	VHADDPS      X3, X3, X3

scal4:
	CMPQ        BX, R8
	JGE         st4
	VMOVSS      (SI)(BX*4), X4
	VFMADD231SS (R11)(BX*4), X4, X0
	VFMADD231SS (R12)(BX*4), X4, X1
	VFMADD231SS (R13)(BX*4), X4, X2
	VFMADD231SS (R14)(BX*4), X4, X3
	INCQ        BX
	JMP         scal4

st4:
	VMOVSS X0, (DI)(R10*4)
	VMOVSS X1, 4(DI)(R10*4)
	VMOVSS X2, 8(DI)(R10*4)
	VMOVSS X3, 12(DI)(R10*4)
	ADDQ   $4, R10
	JMP    loop4

loop1:
	CMPQ R10, CX
	JGE  done

	MOVQ   R10, AX
	IMULQ  R8, AX
	LEAQ   (DX)(AX*4), R11
	VXORPS Y0, Y0, Y0
	XORQ   BX, BX

vec1:
	CMPQ        BX, R9
	JGE         red1
	VMOVUPS     (SI)(BX*4), Y4
	VFMADD231PS (R11)(BX*4), Y4, Y0
	ADDQ        $8, BX
	JMP         vec1

red1:
	VEXTRACTF128 $1, Y0, X5
	VADDPS       X5, X0, X0
	VHADDPS      X0, X0, X0
	VHADDPS      X0, X0, X0

scal1:
	CMPQ        BX, R8
	JGE         st1
	VMOVSS      (SI)(BX*4), X4
	VFMADD231SS (R11)(BX*4), X4, X0
	INCQ        BX
	JMP         scal1

st1:
	VMOVSS X0, (DI)(R10*4)
	INCQ   R10
	JMP    loop1

done:
	VZEROUPPER
	RET

// func q8GemmRow(dst *int32, x, w *uint8, n, k int)
//
// dst[j] = Σ_p int32(x[p]) * int32(w[j*k+p]) with k a multiple of 16 (the
// QMat8 stride; pad codes are zero on both sides, contributing nothing).
// Codes zero-extend to int16 (max 255, so VPMADDWD's pairwise products sum
// exactly into int32: 2*255*255 < 2^31). Four weight rows share each
// 16-code activation load, and one VPHADDD tree reduces all four
// accumulators to a single 4-dword store.
TEXT ·q8GemmRow(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ w+16(FP), DX
	MOVQ n+24(FP), CX
	MOVQ k+32(FP), R8
	XORQ R10, R10          // j = 0

q4:
	MOVQ CX, AX
	SUBQ R10, AX
	CMPQ AX, $4
	JL   q1                // fewer than 4 rows left

	MOVQ  R10, AX
	IMULQ R8, AX
	LEAQ  (DX)(AX*1), R11
	LEAQ  (R11)(R8*1), R12
	LEAQ  (R12)(R8*1), R13
	LEAQ  (R13)(R8*1), R14
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	XORQ  BX, BX

q4v:
	CMPQ      BX, R8
	JGE       q4r
	VPMOVZXBW (SI)(BX*1), Y4
	VPMOVZXBW (R11)(BX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y0, Y0
	VPMOVZXBW (R12)(BX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y1, Y1
	VPMOVZXBW (R13)(BX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y2, Y2
	VPMOVZXBW (R14)(BX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y3, Y3
	ADDQ      $16, BX
	JMP       q4v

q4r:
	// [row0 pairs, row1 pairs | ...] -> [s0 s1 s2 s3] in one tree.
	VPHADDD      Y1, Y0, Y0
	VPHADDD      Y3, Y2, Y2
	VPHADDD      Y2, Y0, Y0
	VEXTRACTI128 $1, Y0, X5
	VPADDD       X5, X0, X0
	VMOVDQU      X0, (DI)(R10*4)
	ADDQ         $4, R10
	JMP          q4

q1:
	CMPQ R10, CX
	JGE  qdone

	MOVQ  R10, AX
	IMULQ R8, AX
	LEAQ  (DX)(AX*1), R11
	VPXOR Y0, Y0, Y0
	XORQ  BX, BX

q1v:
	CMPQ      BX, R8
	JGE       q1r
	VPMOVZXBW (SI)(BX*1), Y4
	VPMOVZXBW (R11)(BX*1), Y5
	VPMADDWD  Y5, Y4, Y5
	VPADDD    Y5, Y0, Y0
	ADDQ      $16, BX
	JMP       q1v

q1r:
	VEXTRACTI128 $1, Y0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0xee, X0, X5
	VPADDD       X5, X0, X0
	VPSHUFD      $0x55, X0, X5
	VPADDD       X5, X0, X0
	MOVQ         X0, R12   // low dword = sum (upper bits unused)
	MOVL         R12, (DI)(R10*4)
	INCQ         R10
	JMP          q1

qdone:
	VZEROUPPER
	RET
