//go:build race

package mat

// RaceEnabled reports whether the race detector is compiled in. Allocation
// regression tests consult it: the detector instruments allocations, so
// testing.AllocsPerRun budgets only hold in non-race builds.
const RaceEnabled = true
