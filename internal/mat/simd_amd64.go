//go:build amd64

package mat

// useAVX2 reports whether the AVX2+FMA assembly kernels may run: the CPU
// must advertise AVX2 and FMA3 and the OS must have enabled YMM state
// (OSXSAVE + XCR0). Detected once at startup; the pure-Go loops remain the
// reference fallback on older hardware.
var useAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (YMM) must both be OS-enabled.
	xcr0, _ := xgetbv()
	if xcr0&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

// cpuid executes CPUID with the given leaf/subleaf.
//
//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE).
//
//go:noescape
func xgetbv() (eax, edx uint32)

// f32GemmRow computes dst[j] = dot(a[0:k], b[j*k:j*k+k]) for j in [0, n):
// one activation row against every weight row, 8-lane FMA accumulation
// with a scalar tail. dst, a and b must reference at least n, k and n*k
// floats respectively.
//
//go:noescape
func f32GemmRow(dst, a, b *float32, n, k int)

// q8GemmRow computes dst[j] = Σ_p int32(x[p])*int32(w[j*k+p]) for j in
// [0, n): unsigned 8-bit codes multiplied exactly in int32 via zero-extend
// to int16 and VPMADDWD. k must be a positive multiple of 16 (the QMat8
// stride — the kernel runs pure 16-code steps with no tail). Safe for
// k < 33000 (255*255*k fits int32).
//
//go:noescape
func q8GemmRow(dst *int32, x, w *uint8, n, k int)
