package mat

import (
	"math"
	"testing"
)

// fill32 narrows a deterministically-filled f64 matrix pair into f32.
func tierTestMats(m, k, n int, seed uint64) (a64, b64 *Dense, a32, b32 *Dense32) {
	a64 = NewDense(m, k)
	b64 = NewDense(n, k)
	rng := NewRNG(seed)
	for i := range a64.Data {
		a64.Data[i] = 2*rng.Float64() - 1
	}
	for i := range b64.Data {
		b64.Data[i] = 2*rng.Float64() - 1
	}
	// Sprinkle exact zeros: the f64 kernels have zero-skip paths and the
	// comparison must hold on sparse-ish inputs too.
	for i := 0; i < len(a64.Data); i += 7 {
		a64.Data[i] = 0
	}
	return a64, b64, Dense32From(a64), Dense32From(b64)
}

// ulpDiff32 returns the number of representable float32 steps between a and
// b (0 when bit-equal). NaNs and infinities count as far apart.
func ulpDiff32(a, b float32) int64 {
	ia := int64(int32(math.Float32bits(a)))
	ib := int64(int32(math.Float32bits(b)))
	// Map the sign-magnitude bit patterns onto one monotone integer line
	// (negative floats sort below positives, ±0 coincide).
	if ia < 0 {
		ia = math.MinInt32 - ia
	}
	if ib < 0 {
		ib = math.MinInt32 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// maxUlpDrift32 is the documented per-element bound between the f32 kernel
// result and the f64 reference rounded to float32, for the codec-scale
// shapes (k <= a few hundred): the relaxed even/odd accumulation order plus
// float32 rounding stay within this many ulps of the correctly-rounded
// serial result.
const maxUlpDrift32 = 256

func TestMulMatT32TracksF64Reference(t *testing.T) {
	for _, sh := range gemmShapes {
		a64, b64, a32, b32 := tierTestMats(sh.m, sh.k, sh.n, 11)
		want := NewDense(sh.m, sh.n)
		MulMatT(want, a64, b64)
		got := NewDense32(sh.m, sh.n)
		MulMatT32(got, a32, b32)
		for i, g := range got.Data {
			w := float32(want.Data[i])
			d := ulpDiff32(g, w)
			if d <= maxUlpDrift32 {
				continue
			}
			// Cancelling dot products make result-relative ulp counts
			// meaningless; fall back to an absolute bound scaled by the
			// magnitude of the terms that were summed.
			r, c := i/sh.n, i%sh.n
			scale := 0.0
			for p := 0; p < sh.k; p++ {
				scale += math.Abs(a64.Row(r)[p] * b64.Row(c)[p])
			}
			if tol := float64(sh.k+8) * 1.2e-7 * (scale + 1); math.Abs(float64(g)-want64(want, i)) > tol {
				t.Fatalf("%dx%dx%d: elem %d: f32 %v vs f64 %v (%d ulps, scale %v)",
					sh.m, sh.k, sh.n, i, g, w, d, scale)
			}
		}
	}
}

// want64 reads the f64 reference element (helper keeping the tolerance line
// readable).
func want64(m *Dense, i int) float64 { return m.Data[i] }

func TestMulMatTAddRow32FusesBias(t *testing.T) {
	for _, sh := range gemmShapes {
		_, _, a32, b32 := tierTestMats(sh.m, sh.k, sh.n, 23)
		bias := make([]float32, sh.n)
		for i := range bias {
			bias[i] = float32(i%5) - 2.5
		}
		plain := NewDense32(sh.m, sh.n)
		MulMatT32(plain, a32, b32)
		fused := NewDense32(sh.m, sh.n)
		MulMatTAddRow32(fused, a32, b32, bias)
		for i := 0; i < sh.m; i++ {
			for j := 0; j < sh.n; j++ {
				want := plain.Data[i*sh.n+j] + bias[j]
				if got := fused.Data[i*sh.n+j]; got != want {
					t.Fatalf("%dx%dx%d: (%d,%d) = %v, want %v", sh.m, sh.k, sh.n, i, j, got, want)
				}
			}
		}
	}
}

func TestMulVec32MatchesGEMMRows(t *testing.T) {
	// MulVec32 and the GEMM kernel share the even/odd chain structure, so a
	// row of MulMatT32 output must be bit-identical to MulVec32 on that row.
	for _, sh := range gemmShapes {
		_, _, a32, b32 := tierTestMats(sh.m, sh.k, sh.n, 37)
		gem := NewDense32(sh.m, sh.n)
		MulMatT32(gem, a32, b32)
		dst := make([]float32, sh.n)
		for i := 0; i < sh.m; i++ {
			MulVec32(b32, dst, a32.Row(i))
			for j, v := range dst {
				if v != gem.Data[i*sh.n+j] {
					t.Fatalf("%dx%dx%d: row %d col %d: MulVec32 %v vs GEMM %v",
						sh.m, sh.k, sh.n, i, j, v, gem.Data[i*sh.n+j])
				}
			}
		}
	}
}

func TestMulMatT32DeterministicAcrossWorkers(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	_, _, a32, b32 := tierTestMats(300, 128, 257, 41)
	SetParallelism(1)
	serial := NewDense32(300, 257)
	MulMatT32(serial, a32, b32)
	for _, workers := range []int{2, 8} {
		SetParallelism(workers)
		par := NewDense32(300, 257)
		MulMatT32(par, a32, b32)
		for i, v := range par.Data {
			if v != serial.Data[i] {
				t.Fatalf("workers=%d: elem %d differs: %v vs %v", workers, i, v, serial.Data[i])
			}
		}
	}
}

func TestTanh32AccuracyAndRange(t *testing.T) {
	// Sweep a dense grid plus the clamp boundaries; the rational
	// approximation must stay within a few float32 ulps of libm tanh and
	// never leave [-1, 1].
	vals := []float64{0, 1e-9, -1e-9, 1e-4, 0.5, -0.5, 1, -1, 3, -3, 7.9, -7.9, 8, -8, 50, -50, 1000}
	for v := -8.0; v <= 8.0; v += 0.037 {
		vals = append(vals, v)
	}
	for _, v := range vals {
		got := tanh32(float32(v))
		want := float32(math.Tanh(v))
		if d := ulpDiff32(got, want); d > 8 {
			t.Fatalf("tanh32(%v) = %v, want %v (%d ulps)", v, got, want, d)
		}
		if got > 1 || got < -1 {
			t.Fatalf("tanh32(%v) = %v out of [-1,1]", v, got)
		}
	}
	out := make([]float32, 4)
	Tanh32(out, []float32{-100, 0, 0.25, 100})
	if out[0] != -1 && ulpDiff32(out[0], -1) > 1 {
		t.Fatalf("Tanh32(-100) = %v", out[0])
	}
	if out[1] != 0 {
		t.Fatalf("Tanh32(0) = %v, want 0", out[1])
	}
}

func TestArgmax32MatchesArgmax(t *testing.T) {
	cases := [][]float32{
		{},
		{1},
		{1, 1, 1},
		{3, 1, 3},
		{-5, -2, -9},
		{0, -0, 2, 2},
	}
	for _, c := range cases {
		wide := make([]float64, len(c))
		Widen(wide, c)
		if got, want := Argmax32(c), Argmax(wide); got != want {
			t.Fatalf("Argmax32(%v) = %d, want %d", c, got, want)
		}
	}
}

func TestNarrowWidenRoundTrip(t *testing.T) {
	src := []float64{0, 1, -1, 0.1, 1e-30, 1e30, -3.25}
	n := make([]float32, len(src))
	Narrow(n, src)
	w := make([]float64, len(src))
	Widen(w, n)
	for i := range src {
		if float32(src[i]) != n[i] || w[i] != float64(n[i]) {
			t.Fatalf("round trip mismatch at %d: %v -> %v -> %v", i, src[i], n[i], w[i])
		}
	}
}

func TestScratchNarrowArenas(t *testing.T) {
	sc := GetScratch()
	defer PutScratch(sc)
	v := sc.Vec32(10)
	bts := sc.Bytes(7)
	is := sc.I32(3)
	if len(v) != 10 || len(bts) != 7 || len(is) != 3 {
		t.Fatalf("arena lengths wrong: %d %d %d", len(v), len(bts), len(is))
	}
	m := sc.Mat32(0, 4)
	if m.Rows != 0 {
		t.Fatalf("Mat32(0,4) rows = %d", m.Rows)
	}
	m2 := sc.Mat32(3, 4)
	for i := range m2.Data {
		m2.Data[i] = float32(i)
	}
	sc.Reset()
	m3 := sc.Mat32(2, 2)
	_ = m3
	// After warm-up the arenas must be allocation-free.
	allocs := testing.AllocsPerRun(100, func() {
		sc.Reset()
		sc.Vec32(10)
		sc.Bytes(7)
		sc.I32(3)
		sc.Mat32(3, 4)
	})
	if allocs != 0 {
		t.Fatalf("steady-state narrow-arena allocs = %v, want 0", allocs)
	}
}
