package mat

import (
	"testing"
)

// gemmShapes straddle the parallel cutoff: tiny (always inline), medium,
// and one large enough that every kernel shards across workers.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{8, 16, 8},
	{17, 24, 59},
	{64, 48, 33},
	{300, 128, 257},
}

// fillDeterministic fills d with a fixed pseudo-random pattern including
// exact zeros (the kernels have zero-skip fast paths that must not change
// results).
func fillDeterministic(d *Dense, seed uint64) {
	rng := NewRNG(seed)
	for i := range d.Data {
		if rng.Intn(7) == 0 {
			d.Data[i] = 0
			continue
		}
		d.Data[i] = 2*rng.Float64() - 1
	}
}

// refMulMatT computes dst = a * bᵀ one row-pair dot at a time via MulVec on
// single rows: the per-vector reference path.
func refMulMatT(dst, a, b *Dense) {
	row := make([]float64, b.Rows)
	for i := 0; i < a.Rows; i++ {
		b.MulVec(row, a.Row(i))
		copy(dst.Row(i), row)
	}
}

// refMulMat computes dst = a * b via MulVecT per row.
func refMulMat(dst, a, b *Dense) {
	row := make([]float64, b.Cols)
	for i := 0; i < a.Rows; i++ {
		b.MulVecT(row, a.Row(i))
		copy(dst.Row(i), row)
	}
}

// TestMulMatTMatchesMulVec asserts MulMatT is bit-identical to the
// per-vector MulVec path at 1, 2 and 8 workers.
func TestMulMatTMatchesMulVec(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, sh := range gemmShapes {
		a := NewDense(sh.m, sh.k)
		b := NewDense(sh.n, sh.k)
		fillDeterministic(a, 1)
		fillDeterministic(b, 2)
		SetParallelism(1)
		want := NewDense(sh.m, sh.n)
		refMulMatT(want, a, b)
		for _, workers := range []int{1, 2, 8} {
			SetParallelism(workers)
			got := NewDense(sh.m, sh.n)
			MulMatT(got, a, b)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%dx%dx%d at %d workers: element %d = %v, want %v",
						sh.m, sh.k, sh.n, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestMulMatMatchesMulVecT asserts MulMat is bit-identical to the
// per-vector MulVecT path at 1, 2 and 8 workers.
func TestMulMatMatchesMulVecT(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, sh := range gemmShapes {
		a := NewDense(sh.m, sh.k)
		b := NewDense(sh.k, sh.n)
		fillDeterministic(a, 3)
		fillDeterministic(b, 4)
		SetParallelism(1)
		want := NewDense(sh.m, sh.n)
		refMulMat(want, a, b)
		for _, workers := range []int{1, 2, 8} {
			SetParallelism(workers)
			got := NewDense(sh.m, sh.n)
			MulMat(got, a, b)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%dx%dx%d at %d workers: element %d = %v, want %v",
						sh.m, sh.k, sh.n, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestAddOuterBatchMatchesAddOuter asserts AddOuterBatch equals per-row
// AddOuter calls bitwise at 1, 2 and 8 workers.
func TestAddOuterBatchMatchesAddOuter(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, sh := range gemmShapes {
		x := NewDense(sh.k, sh.m) // k examples of dimension m
		y := NewDense(sh.k, sh.n)
		fillDeterministic(x, 5)
		fillDeterministic(y, 6)
		SetParallelism(1)
		want := NewDense(sh.m, sh.n)
		fillDeterministic(want, 7)
		for i := 0; i < sh.k; i++ {
			want.AddOuter(0.5, x.Row(i), y.Row(i))
		}
		for _, workers := range []int{1, 2, 8} {
			SetParallelism(workers)
			got := NewDense(sh.m, sh.n)
			fillDeterministic(got, 7)
			AddOuterBatch(got, 0.5, x, y)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%dx%dx%d at %d workers: element %d = %v, want %v",
						sh.m, sh.k, sh.n, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestMulVecBlockedTail exercises the 4-row interleaved MulVec kernel on
// row counts around the block width, against a scalar reference.
func TestMulVecBlockedTail(t *testing.T) {
	for rows := 1; rows <= 9; rows++ {
		m := NewDense(rows, 13)
		fillDeterministic(m, uint64(rows))
		x := make([]float64, 13)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		want := make([]float64, rows)
		for i := 0; i < rows; i++ {
			s := 0.0
			for j, w := range m.Row(i) {
				s += w * x[j]
			}
			want[i] = s
		}
		got := make([]float64, rows)
		m.MulVec(got, x)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rows=%d: dst[%d] = %v, want %v", rows, i, got[i], want[i])
			}
		}
	}
}

// TestGEMMShapePanics asserts the kernels reject mismatched shapes.
func TestGEMMShapePanics(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic on shape mismatch", name)
			}
		}()
		fn()
	}
	a := NewDense(2, 3)
	b := NewDense(4, 5)
	check("MulMatT", func() { MulMatT(NewDense(2, 4), a, b) })
	check("MulMat", func() { MulMat(NewDense(2, 5), a, b) })
	check("AddOuterBatch", func() { AddOuterBatch(NewDense(3, 5), 1, a, b) })
	check("AddRowTo", func() { AddRowTo(a, make([]float64, 4)) })
}

// TestMulMatTAddRowMatchesUnfused asserts the fused bias GEMM equals
// MulMatT followed by AddRowTo bitwise at 1, 2 and 8 workers.
func TestMulMatTAddRowMatchesUnfused(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, sh := range gemmShapes {
		a := NewDense(sh.m, sh.k)
		b := NewDense(sh.n, sh.k)
		fillDeterministic(a, 21)
		fillDeterministic(b, 22)
		bias := make([]float64, sh.n)
		for i := range bias {
			bias[i] = float64(i%13)*0.17 - 1
		}
		SetParallelism(1)
		want := NewDense(sh.m, sh.n)
		MulMatT(want, a, b)
		AddRowTo(want, bias)
		for _, workers := range []int{1, 2, 8} {
			SetParallelism(workers)
			got := NewDense(sh.m, sh.n)
			MulMatTAddRow(got, a, b, bias)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%dx%dx%d at %d workers: element %d = %v, want %v",
						sh.m, sh.k, sh.n, workers, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestAddRowTo asserts the batched bias add equals per-row AddTo.
func TestAddRowTo(t *testing.T) {
	m := NewDense(5, 7)
	fillDeterministic(m, 11)
	want := m.Clone()
	bias := make([]float64, 7)
	for i := range bias {
		bias[i] = float64(i) * 0.25
	}
	for i := 0; i < want.Rows; i++ {
		AddTo(want.Row(i), bias)
	}
	AddRowTo(m, bias)
	for i := range want.Data {
		if m.Data[i] != want.Data[i] {
			t.Fatalf("element %d = %v, want %v", i, m.Data[i], want.Data[i])
		}
	}
}
