package mat

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the package's parallel compute layer: a bounded
// worker budget shared by every kernel, a ParallelFor primitive that shards
// index ranges across it, and the row/column-sharded variants of the
// dominant dense kernels (MulVec, MulVecT, AddOuter).
//
// Every parallel kernel is bit-identical to its serial loop at any worker
// count: MulVec and AddOuter write disjoint rows, and MulVecT is sharded
// over columns so each output element accumulates in exactly the serial
// order. Determinism therefore never depends on SetParallelism.

// pool is the immutable worker budget snapshot ParallelFor operates on.
// sem has capacity workers-1: the calling goroutine always executes chunks
// too, so n workers means the caller plus at most n-1 helpers.
type pool struct {
	workers int
	sem     chan struct{}
}

var curPool atomic.Pointer[pool]

func init() { SetParallelism(runtime.GOMAXPROCS(0)) }

// SetParallelism sets the target number of concurrent workers used by the
// parallel kernels and ParallelFor. Values below 1 are clamped to 1, which
// forces fully serial execution. The default is runtime.GOMAXPROCS(0).
// Changing parallelism never changes numerical results.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	curPool.Store(&pool{workers: n, sem: make(chan struct{}, n-1)})
}

// Parallelism returns the current target worker count.
func Parallelism() int { return curPool.Load().workers }

// ParallelFor runs body over contiguous chunks covering [0, n) using up to
// Parallelism() concurrent workers, including the calling goroutine. grain
// is the minimum chunk size: when n <= grain or parallelism is 1 the whole
// range runs inline as body(0, n), so small problems pay no scheduling
// overhead. Helper goroutines are drawn from a bounded budget; when the
// budget is exhausted (e.g. nested ParallelFor calls) chunks run inline on
// the caller, which makes nesting deadlock-free. ParallelFor returns only
// after every chunk has completed.
func ParallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	p := curPool.Load()
	if p.workers == 1 || n <= grain {
		body(0, n)
		return
	}
	parts := (n + grain - 1) / grain
	if parts > p.workers {
		parts = p.workers
	}
	chunk := (n + parts - 1) / parts
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi >= n {
			// Final chunk always runs on the calling goroutine.
			body(lo, n)
			break
		}
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(lo, hi int) {
				defer func() { <-p.sem; wg.Done() }()
				body(lo, hi)
			}(lo, hi)
		default:
			body(lo, hi)
		}
	}
	wg.Wait()
}

// parallelCutoff is the minimum number of scalar multiply-adds a kernel
// call must perform before sharding across workers pays for goroutine
// scheduling. Below it the kernels run their plain serial loops.
const parallelCutoff = 1 << 15

// kernelGrain converts a per-index cost (row length for row-sharded
// kernels, column height for MulVecT) into the ParallelFor grain that
// enforces parallelCutoff.
func kernelGrain(perIndex int) int {
	if perIndex <= 0 {
		return 1
	}
	g := parallelCutoff / perIndex
	if g < 1 {
		g = 1
	}
	return g
}

// mulVecRange computes dst[lo:hi] of dst = m * x: the row-sharded MulVec
// kernel body. Four rows run at a time with independent accumulator chains
// — each output element still sums its products in exact serial order, so
// the result is bit-identical to the one-row-at-a-time loop, but the four
// chains interleave to hide FP-add latency.
func (m *Dense) mulVecRange(dst, x []float64, lo, hi int) {
	c := m.Cols
	i := lo
	for ; i+4 <= hi; i += 4 {
		r0 := m.Data[i*c : i*c+c]
		r1 := m.Data[(i+1)*c : (i+1)*c+c]
		r2 := m.Data[(i+2)*c : (i+2)*c+c]
		r3 := m.Data[(i+3)*c : (i+3)*c+c]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < hi; i++ {
		row := m.Data[i*c : (i+1)*c]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// mulVecTRange computes dst[lo:hi] of dst = mᵀ * x: the column-sharded
// MulVecT kernel body. For each output column the accumulation visits rows
// in ascending order — the exact order of the serial loop — so results are
// bit-identical to serial execution without partial-buffer reductions.
func (m *Dense) mulVecTRange(dst, x []float64, lo, hi int) {
	for j := lo; j < hi; j++ {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := lo; j < hi; j++ {
			dst[j] += row[j] * xi
		}
	}
}

// addOuterRange accumulates rows lo..hi of m += a * x * yᵀ: the row-sharded
// AddOuter kernel body.
func (m *Dense) addOuterRange(a float64, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		axi := a * x[i]
		if axi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += axi * yj
		}
	}
}
