package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestDot(t *testing.T) {
	got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6})
	if got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAddToAXPYScale(t *testing.T) {
	v := []float64{1, 2, 3}
	AddTo(v, []float64{1, 1, 1})
	if v[0] != 2 || v[2] != 4 {
		t.Fatalf("AddTo result %v", v)
	}
	AXPY(v, 2, []float64{1, 0, 1})
	if v[0] != 4 || v[1] != 3 || v[2] != 6 {
		t.Fatalf("AXPY result %v", v)
	}
	Scale(v, 0.5)
	if v[0] != 2 || v[2] != 3 {
		t.Fatalf("Scale result %v", v)
	}
}

func TestCloneIndependent(t *testing.T) {
	v := []float64{1, 2}
	c := Clone(v)
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Cosine identical = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("Cosine orthogonal = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{-1, 0}); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Cosine opposite = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 0}); got != 0 {
		t.Fatalf("Cosine zero vector = %v, want 0", got)
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("Argmax = %d, want 1", got)
	}
	if got := Argmax(nil); got != -1 {
		t.Fatalf("Argmax(nil) = %d, want -1", got)
	}
	// Ties resolve to lowest index.
	if got := Argmax([]float64{2, 2}); got != 0 {
		t.Fatalf("Argmax tie = %d, want 0", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	logits := []float64{1, 2, 3, 4}
	p := make([]float64, 4)
	Softmax(p, logits)
	sum := 0.0
	prev := -1.0
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax element out of (0,1): %v", v)
		}
		if v < prev {
			t.Fatal("softmax not monotone in logits")
		}
		prev = v
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := make([]float64, 2)
	Softmax(p, []float64{1000, 1001})
	if math.IsNaN(p[0]) || math.IsInf(p[1], 0) {
		t.Fatal("softmax overflowed on large logits")
	}
	if !almostEqual(p[0]+p[1], 1, 1e-12) {
		t.Fatalf("softmax large-logit sum = %v", p[0]+p[1])
	}
}

func TestTanhClampMaxAbs(t *testing.T) {
	v := []float64{-10, 0, 10}
	Tanh(v, v)
	if !almostEqual(v[0], -1, 1e-3) || v[1] != 0 || !almostEqual(v[2], 1, 1e-3) {
		t.Fatalf("Tanh = %v", v)
	}
	w := []float64{-3, 0.5, 3}
	Clamp(w, -1, 1)
	if w[0] != -1 || w[1] != 0.5 || w[2] != 1 {
		t.Fatalf("Clamp = %v", w)
	}
	if got := MaxAbs([]float64{-4, 2}); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Fatalf("MaxAbs(nil) = %v", got)
	}
}

// Property: cosine similarity is always within [-1, 1] (up to rounding) and
// symmetric.
func TestCosineQuick(t *testing.T) {
	f := func(a, b [8]float64) bool {
		x, y := a[:], b[:]
		for _, s := range [][]float64{x, y} {
			for i, v := range s {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					v = 0
				}
				s[i] = math.Mod(v, 1e6)
			}
		}
		c1 := Cosine(x, y)
		c2 := Cosine(y, x)
		return c1 >= -1-1e-9 && c1 <= 1+1e-9 && almostEqual(c1, c2, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any finite
// logits.
func TestSoftmaxQuick(t *testing.T) {
	f := func(raw [6]float64) bool {
		logits := make([]float64, 6)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			// Keep magnitudes finite but allow a wide range.
			logits[i] = math.Mod(v, 1e6)
		}
		p := make([]float64, 6)
		Softmax(p, logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return almostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is bilinear in its first argument: Dot(ax+y, z) =
// a*Dot(x,z) + Dot(y,z).
func TestDotBilinearQuick(t *testing.T) {
	f := func(xa, ya, za [5]float64, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			a = 1
		}
		a = math.Mod(a, 100)
		x, y, z := xa[:], ya[:], za[:]
		for i := 0; i < 5; i++ {
			for _, s := range []*[5]float64{&xa, &ya, &za} {
				if math.IsNaN(s[i]) || math.IsInf(s[i], 0) {
					s[i] = 0
				}
				s[i] = math.Mod(s[i], 100)
			}
		}
		lhsVec := make([]float64, 5)
		for i := range lhsVec {
			lhsVec[i] = a*x[i] + y[i]
		}
		lhs := Dot(lhsVec, z)
		rhs := a*Dot(x, z) + Dot(y, z)
		return almostEqual(lhs, rhs, 1e-6*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
