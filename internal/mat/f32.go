package mat

import "math"

// This file implements the float32 kernel tier. Unlike the float64 kernels
// in gemm.go, the 32-bit kernels do NOT promise the serial accumulation
// order: on AVX2+FMA hardware the dot products run through the 8-lane
// assembly kernel (simd_amd64.s), and everywhere else each output element
// sums its products through two interleaved partial chains (even/odd
// positions) folded at the end. Dropping the bit-exact-order constraint is
// what buys the SIMD schedule; it also halves the memory traffic against
// f64. Results are still deterministic on a given machine — the chain
// structure is fixed, so every call computes the same bits at any worker
// count — they just differ from the f64 reference by a measured accuracy
// budget (see the tier tests in internal/semantic).

// Dense32 is a row-major float32 matrix: the storage type of the f32 and
// int8 kernel tiers.
type Dense32 struct {
	Rows, Cols int
	Data       []float32
}

// NewDense32 allocates a zeroed r x c float32 matrix. It panics if either
// dimension is not positive.
func NewDense32(r, c int) *Dense32 {
	if r <= 0 || c <= 0 {
		panic("mat: NewDense32 dimensions must be positive")
	}
	return &Dense32{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// Dense32From narrows a float64 matrix into a fresh Dense32.
func Dense32From(m *Dense) *Dense32 {
	d := &Dense32{Rows: m.Rows, Cols: m.Cols, Data: make([]float32, len(m.Data))}
	Narrow(d.Data, m.Data)
	return d
}

// Row returns a view of row i.
func (m *Dense32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Narrow writes src rounded to float32 into dst. It panics if the lengths
// differ.
func Narrow(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("mat: Narrow length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Widen writes src exactly converted to float64 into dst. It panics if the
// lengths differ.
func Widen(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("mat: Widen length mismatch")
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// MulMatT32 computes dst = a * bᵀ (a is m x k, b is n x k, dst is m x n):
// the f32-tier batched Linear forward. dst must not alias a or b. It panics
// on shape mismatches.
func MulMatT32(dst, a, b *Dense32) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulMatT32 shape mismatch")
	}
	grain := kernelGrain(a.Cols * b.Rows)
	if Parallelism() == 1 || a.Rows <= grain {
		mulMatTRange32(dst, a, b, nil, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, grain, func(lo, hi int) {
		mulMatTRange32(dst, a, b, nil, lo, hi)
	})
}

// MulMatTAddRow32 computes dst = a * bᵀ with row added to every output row:
// the fused f32-tier linear-layer forward. It panics on shape mismatches.
func MulMatTAddRow32(dst, a, b *Dense32, row []float32) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulMatTAddRow32 shape mismatch")
	}
	if len(row) != dst.Cols {
		panic("mat: MulMatTAddRow32 row length mismatch")
	}
	grain := kernelGrain(a.Cols * b.Rows)
	if Parallelism() == 1 || a.Rows <= grain {
		mulMatTRange32(dst, a, b, row, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, grain, func(lo, hi int) {
		mulMatTRange32(dst, a, b, row, lo, hi)
	})
}

// mulMatTRange32 computes rows lo..hi of dst = a * bᵀ (+ bias). Four output
// columns run at a time and each column keeps TWO partial sums — even and
// odd positions of the dot product — folded after the loop: 8 independent
// chains in flight, which saturates the FP pipes a 4-chain serial-order
// kernel cannot.
func mulMatTRange32(dst, a, b *Dense32, bias []float32, lo, hi int) {
	k := a.Cols
	n := b.Rows
	if useAVX2 && k > 0 && n > 0 {
		for i := lo; i < hi; i++ {
			out := dst.Data[i*n : (i+1)*n]
			f32GemmRow(&out[0], &a.Data[i*k], &b.Data[0], n, k)
			if bias != nil {
				for j, bv := range bias {
					out[j] += bv
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		ar := a.Data[i*k : (i+1)*k]
		out := dst.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b.Data[j*k:][:len(ar)]
			b1 := b.Data[(j+1)*k:][:len(ar)]
			b2 := b.Data[(j+2)*k:][:len(ar)]
			b3 := b.Data[(j+3)*k:][:len(ar)]
			var s0a, s0b, s1a, s1b, s2a, s2b, s3a, s3b float32
			p := 0
			for ; p+2 <= k; p += 2 {
				av0, av1 := ar[p], ar[p+1]
				s0a += av0 * b0[p]
				s0b += av1 * b0[p+1]
				s1a += av0 * b1[p]
				s1b += av1 * b1[p+1]
				s2a += av0 * b2[p]
				s2b += av1 * b2[p+1]
				s3a += av0 * b3[p]
				s3b += av1 * b3[p+1]
			}
			if p < k {
				av := ar[p]
				s0a += av * b0[p]
				s1a += av * b1[p]
				s2a += av * b2[p]
				s3a += av * b3[p]
			}
			s0 := s0a + s0b
			s1 := s1a + s1b
			s2 := s2a + s2b
			s3 := s3a + s3b
			if bias != nil {
				s0 += bias[j]
				s1 += bias[j+1]
				s2 += bias[j+2]
				s3 += bias[j+3]
			}
			out[j] = s0
			out[j+1] = s1
			out[j+2] = s2
			out[j+3] = s3
		}
		for ; j < n; j++ {
			br := b.Data[j*k:][:len(ar)]
			var sa, sb float32
			p := 0
			for ; p+2 <= k; p += 2 {
				sa += ar[p] * br[p]
				sb += ar[p+1] * br[p+1]
			}
			if p < k {
				sa += ar[p] * br[p]
			}
			s := sa + sb
			if bias != nil {
				s += bias[j]
			}
			out[j] = s
		}
	}
}

// MulVec32 computes dst = m * x: the f32-tier single-vector forward. Four
// rows run at a time, each with the split even/odd chains of the GEMM
// kernel. It panics on shape mismatches.
func MulVec32(m *Dense32, dst, x []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("mat: MulVec32 shape mismatch")
	}
	k := m.Cols
	if useAVX2 && k > 0 && m.Rows > 0 {
		// Same per-row kernel as the GEMM path, so single-vector results
		// stay bit-identical to batched rows.
		f32GemmRow(&dst[0], &x[0], &m.Data[0], m.Rows, k)
		return
	}
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[i*k:][:len(x)]
		r1 := m.Data[(i+1)*k:][:len(x)]
		r2 := m.Data[(i+2)*k:][:len(x)]
		r3 := m.Data[(i+3)*k:][:len(x)]
		var s0a, s0b, s1a, s1b, s2a, s2b, s3a, s3b float32
		p := 0
		for ; p+2 <= k; p += 2 {
			x0, x1 := x[p], x[p+1]
			s0a += x0 * r0[p]
			s0b += x1 * r0[p+1]
			s1a += x0 * r1[p]
			s1b += x1 * r1[p+1]
			s2a += x0 * r2[p]
			s2b += x1 * r2[p+1]
			s3a += x0 * r3[p]
			s3b += x1 * r3[p+1]
		}
		if p < k {
			xv := x[p]
			s0a += xv * r0[p]
			s1a += xv * r1[p]
			s2a += xv * r2[p]
			s3a += xv * r3[p]
		}
		dst[i] = s0a + s0b
		dst[i+1] = s1a + s1b
		dst[i+2] = s2a + s2b
		dst[i+3] = s3a + s3b
	}
	for ; i < m.Rows; i++ {
		row := m.Data[i*k:][:len(x)]
		var sa, sb float32
		p := 0
		for ; p+2 <= k; p += 2 {
			sa += x[p] * row[p]
			sb += x[p+1] * row[p+1]
		}
		if p < k {
			sa += x[p] * row[p]
		}
		dst[i] = sa + sb
	}
}

// Tanh32 coefficients: the rational minimax approximation tanh(x) ≈ p(x)/q(x)
// with p odd of degree 13 and q even of degree 6, accurate to a few float32
// ulps over the clamp range. Beyond ±tanh32Clamp, float32 tanh is exactly ±1.
const (
	tanh32Clamp = 7.90531110763549805

	tanh32Alpha1  = 4.89352455891786e-03
	tanh32Alpha3  = 6.37261928875436e-04
	tanh32Alpha5  = 1.48572235717979e-05
	tanh32Alpha7  = 5.12229709037114e-08
	tanh32Alpha9  = -8.60467152213735e-11
	tanh32Alpha11 = 2.00018790482477e-13
	tanh32Alpha13 = -2.76076847742355e-16

	tanh32Beta0 = 4.89352518554385e-03
	tanh32Beta2 = 2.26843463243900e-03
	tanh32Beta4 = 1.18534705686654e-04
	tanh32Beta6 = 1.19825839466702e-06
)

// tanh32 evaluates the rational approximation for one value.
func tanh32(x float32) float32 {
	if x > tanh32Clamp {
		x = tanh32Clamp
	} else if x < -tanh32Clamp {
		x = -tanh32Clamp
	}
	x2 := x * x
	p := float32(tanh32Alpha13)
	p = p*x2 + tanh32Alpha11
	p = p*x2 + tanh32Alpha9
	p = p*x2 + tanh32Alpha7
	p = p*x2 + tanh32Alpha5
	p = p*x2 + tanh32Alpha3
	p = p*x2 + tanh32Alpha1
	p = p * x
	q := float32(tanh32Beta6)
	q = q*x2 + tanh32Beta4
	q = q*x2 + tanh32Beta2
	q = q*x2 + tanh32Beta0
	return p / q
}

// Tanh32 applies the f32-tier tanh element-wise, writing into dst (which
// may alias src): a branch-light polynomial-ratio evaluation instead of the
// libm call the f64 path pays per element. Maximum error versus the true
// tanh is a few float32 ulps. It panics if the lengths differ.
func Tanh32(dst, src []float32) {
	if len(dst) != len(src) {
		panic("mat: Tanh32 length mismatch")
	}
	for i, v := range src {
		dst[i] = tanh32(v)
	}
}

// Argmax32 returns the index of the largest element of v, or -1 for an
// empty slice. Ties resolve to the lowest index, matching Argmax.
func Argmax32(v []float32) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// MaxAbs32 returns the largest absolute value in v, or 0 for an empty
// slice. Finite non-negative float32 values order like their bit patterns,
// so the scan masks the sign bit and takes an integer max — branch-free
// where the float compare mispredicts on noisy data. NaN inputs are
// unsupported (a NaN would compare above +Inf).
func MaxAbs32(v []float32) float32 {
	var m uint32
	for _, x := range v {
		m = max(m, math.Float32bits(x)&^(1<<31))
	}
	return math.Float32frombits(m)
}
