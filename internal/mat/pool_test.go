package mat

import "testing"

// TestScratchReuse asserts that after a warm-up pass, repeated
// Reset/Vec/Ints/Mat cycles hand out stable storage without allocating.
func TestScratchReuse(t *testing.T) {
	s := new(Scratch)
	warm := func() {
		s.Reset()
		v := s.Vec(100)
		v[0] = 1
		m := s.Mat(8, 16)
		m.Set(0, 0, 2)
		w := s.Wrap(4, 25, v)
		_ = w
		is := s.Ints(32)
		is[0] = 3
	}
	warm()
	if RaceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
		t.Fatalf("warm Scratch cycle allocates %v times per run, want 0", allocs)
	}
}

// TestScratchGrowKeepsOldBuffers asserts that growing the arena does not
// corrupt slices handed out before the growth.
func TestScratchGrowKeepsOldBuffers(t *testing.T) {
	s := new(Scratch)
	a := s.Vec(10)
	for i := range a {
		a[i] = float64(i)
	}
	b := s.Vec(1 << 16) // forces a new backing array
	b[0] = 99
	for i := range a {
		if a[i] != float64(i) {
			t.Fatalf("pre-growth slice corrupted at %d: %v", i, a[i])
		}
	}
}

// TestScratchZeroRows asserts Mat tolerates empty batches.
func TestScratchZeroRows(t *testing.T) {
	s := new(Scratch)
	m := s.Mat(0, 8)
	if m.Rows != 0 || m.Cols != 8 || len(m.Data) != 0 {
		t.Fatalf("zero-row mat = %+v", m)
	}
}

// TestScratchDistinctBuffers asserts consecutive Vec calls return disjoint
// storage until Reset.
func TestScratchDistinctBuffers(t *testing.T) {
	s := new(Scratch)
	a := s.Vec(16)
	b := s.Vec(16)
	a[15] = 1
	b[0] = 2
	if a[15] != 1 {
		t.Fatal("Vec buffers overlap")
	}
	s.Reset()
	c := s.Vec(16)
	c[0] = 3
	if &c[0] != &a[0] {
		t.Fatal("Reset did not recycle the arena")
	}
}

// TestGetPutScratch exercises the package pool round trip.
func TestGetPutScratch(t *testing.T) {
	s := GetScratch()
	v := s.Vec(8)
	v[0] = 1
	PutScratch(s)
	s2 := GetScratch()
	if s2.off != 0 || s2.nmat != 0 {
		t.Fatalf("pooled scratch not reset: off=%d nmat=%d", s2.off, s2.nmat)
	}
	PutScratch(s2)
}
