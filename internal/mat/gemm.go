package mat

// This file implements the blocked matrix-matrix kernels the batched codec
// paths run on. Every kernel shards output rows across the package worker
// pool (ParallelFor) and keeps the EXACT serial accumulation order for each
// individual output element, so results are bit-identical to the per-vector
// kernels (MulVec, MulVecT, AddOuter) applied row by row — at any worker
// count. Throughput comes not from reordering floating-point sums (which
// would change bits) but from interleaving several independent output
// elements' accumulation chains in the inner loop, hiding FP-add latency
// that a single serial dot product is bound by.

// MulMatT computes dst = a * bᵀ, where a is m x k, b is n x k and dst is
// m x n: the batched forward kernel of a Linear layer (rows of a are
// inputs, rows of b are weight rows). Each dst element is the serial dot
// product of one a-row and one b-row — the same accumulation order as
// MulVec — so results are bit-identical to the per-vector path. dst must
// not alias a or b. It panics on shape mismatches.
func MulMatT(dst, a, b *Dense) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulMatT shape mismatch")
	}
	grain := kernelGrain(a.Cols * b.Rows)
	if Parallelism() == 1 || a.Rows <= grain {
		// Inline fast path: no closure, no scheduling.
		mulMatTRange(dst, a, b, nil, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, grain, func(lo, hi int) {
		mulMatTRange(dst, a, b, nil, lo, hi)
	})
}

// MulMatTAddRow computes dst = a * bᵀ with row added to every output row:
// the fused batched linear-layer forward. Each output element is computed
// as (serial dot product) + row[j] — exactly the value MulMatT followed by
// AddRowTo produces, without the second sweep over dst — so results are
// bit-identical to the unfused pair. It panics on shape mismatches.
func MulMatTAddRow(dst, a, b *Dense, row []float64) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("mat: MulMatTAddRow shape mismatch")
	}
	if len(row) != dst.Cols {
		panic("mat: MulMatTAddRow row length mismatch")
	}
	grain := kernelGrain(a.Cols * b.Rows)
	if Parallelism() == 1 || a.Rows <= grain {
		mulMatTRange(dst, a, b, row, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, grain, func(lo, hi int) {
		mulMatTRange(dst, a, b, row, lo, hi)
	})
}

// mulMatTRange computes rows lo..hi of dst = a * bᵀ, adding bias[j] to
// each finished element when bias is non-nil. For each a-row it fills four
// output columns at a time: the four accumulator chains are independent
// (one per output element, each in exact serial order), which keeps the
// FPU busy where a lone serial dot would stall on add latency.
func mulMatTRange(dst, a, b *Dense, bias []float64, lo, hi int) {
	k := a.Cols
	n := b.Rows
	for i := lo; i < hi; i++ {
		ar := a.Data[i*k : (i+1)*k]
		out := dst.Data[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			// Slicing every operand to len(ar) lets the compiler drop the
			// per-iteration bounds checks in the dot loop.
			b0 := b.Data[j*k:][:len(ar)]
			b1 := b.Data[(j+1)*k:][:len(ar)]
			b2 := b.Data[(j+2)*k:][:len(ar)]
			b3 := b.Data[(j+3)*k:][:len(ar)]
			var s0, s1, s2, s3 float64
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			if bias != nil {
				// The bias lands after the full dot product, exactly like
				// a separate AddRowTo pass, so fusion never changes bits.
				s0 += bias[j]
				s1 += bias[j+1]
				s2 += bias[j+2]
				s3 += bias[j+3]
			}
			out[j] = s0
			out[j+1] = s1
			out[j+2] = s2
			out[j+3] = s3
		}
		for ; j < n; j++ {
			br := b.Data[j*k:][:len(ar)]
			s := 0.0
			for p, av := range ar {
				s += av * br[p]
			}
			if bias != nil {
				s += bias[j]
			}
			out[j] = s
		}
	}
}

// MulMat computes dst = a * b, where a is m x k, b is k x n and dst is
// m x n: the batched input-gradient kernel (dst rows are per-example
// gradients, b is the weight matrix). Each dst element accumulates b-rows
// in ascending order and skips zero a-elements, exactly like MulVecT, so
// results are bit-identical to the per-vector path. dst must not alias a
// or b. It panics on shape mismatches.
func MulMat(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("mat: MulMat shape mismatch")
	}
	grain := kernelGrain(a.Cols * b.Cols)
	if Parallelism() == 1 || a.Rows <= grain {
		mulMatRange(dst, a, b, 0, a.Rows)
		return
	}
	ParallelFor(a.Rows, grain, func(lo, hi int) {
		mulMatRange(dst, a, b, lo, hi)
	})
}

// mulMatRange computes rows lo..hi of dst = a * b in AXPY form: out += ap *
// b-row. The adds across one output row are independent, so the plain loop
// already has instruction-level parallelism; the per-element order over p
// (ascending, zeros skipped) matches mulVecTRange.
func mulMatRange(dst, a, b *Dense, lo, hi int) {
	k := a.Cols
	n := b.Cols
	for i := lo; i < hi; i++ {
		out := dst.Data[i*n : (i+1)*n]
		Zero(out)
		ar := a.Data[i*k : (i+1)*k]
		for p, ap := range ar {
			if ap == 0 {
				continue
			}
			br := b.Data[p*n : (p+1)*n]
			for j, bv := range br {
				out[j] += ap * bv
			}
		}
	}
}

// AddOuterBatch accumulates m += a * xᵀ * y, where x is t x Rows and y is
// t x Cols: the batched weight-gradient kernel, equivalent to calling
// m.AddOuter(a, x.Row(i), y.Row(i)) for every row i in order. Each m
// element accumulates examples in ascending row order and skips zero
// coefficients, exactly like the per-vector AddOuter loop, so results are
// bit-identical at any worker count. It panics on shape mismatches.
func AddOuterBatch(m *Dense, a float64, x, y *Dense) {
	if x.Rows != y.Rows || x.Cols != m.Rows || y.Cols != m.Cols {
		panic("mat: AddOuterBatch shape mismatch")
	}
	grain := kernelGrain(x.Rows * m.Cols)
	if Parallelism() == 1 || m.Rows <= grain {
		addOuterBatchRange(m, a, x, y, 0, m.Rows)
		return
	}
	ParallelFor(m.Rows, grain, func(lo, hi int) {
		addOuterBatchRange(m, a, x, y, lo, hi)
	})
}

// addOuterBatchRange accumulates rows lo..hi of m += a * xᵀ * y.
func addOuterBatchRange(m *Dense, a float64, x, y *Dense, lo, hi int) {
	t := x.Rows
	xc := x.Cols
	yc := y.Cols
	for r := lo; r < hi; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for e := 0; e < t; e++ {
			v := a * x.Data[e*xc+r]
			if v == 0 {
				continue
			}
			yr := y.Data[e*yc : (e+1)*yc]
			for j, yv := range yr {
				row[j] += v * yv
			}
		}
	}
}

// AddRowTo adds vector row into every row of m: the batched bias add. The
// per-row operation is exactly AddTo, so it is bit-identical to adding the
// bias example by example. It panics on length mismatch.
func AddRowTo(m *Dense, row []float64) {
	if len(row) != m.Cols {
		panic("mat: AddRowTo length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		AddTo(m.Data[i*m.Cols:(i+1)*m.Cols], row)
	}
}
