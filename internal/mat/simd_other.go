//go:build !amd64

package mat

// Non-amd64 builds always run the pure-Go reference loops.
const useAVX2 = false

func f32GemmRow(dst, a, b *float32, n, k int) {
	panic("mat: f32GemmRow without AVX2")
}

func q8GemmRow(dst *int32, x, w *uint8, n, k int) {
	panic("mat: q8GemmRow without AVX2")
}
