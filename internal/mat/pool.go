package mat

import "sync"

// This file implements the reusable scratch arena the steady-state serving
// path allocates from. A Scratch hands out float64/int slices and Dense
// headers from grow-once backing buffers: after a few warm-up requests the
// buffers have reached their high-water mark and every subsequent
// Vec/Ints/Mat call is allocation-free. Scratches cycle through a
// package-level sync.Pool so concurrent requests each get a private arena
// without per-request heap garbage.

// Scratch is a bump-pointer arena for temporary kernel buffers. It is not
// safe for concurrent use; each goroutine takes its own via GetScratch.
// Buffers returned by Vec/Ints/Mat contain arbitrary stale data — callers
// must fully overwrite (or explicitly zero) them. Reset recycles every
// outstanding buffer at once: values handed out before a Reset must not be
// used after it.
type Scratch struct {
	arena []float64
	off   int
	ints  []int
	ioff  int
	mats  []*Dense
	nmat  int
	// Narrow-typed arenas for the f32/int8 kernel tiers.
	f32    []float32
	f32off int
	bytes  []uint8
	boff   int
	i32s   []int32
	i32off int
	mats32 []*Dense32
	nmat32 int
}

// Reset recycles the arena: every slice and matrix previously handed out is
// up for reuse by subsequent calls.
func (s *Scratch) Reset() {
	s.off = 0
	s.ioff = 0
	s.nmat = 0
	s.f32off = 0
	s.boff = 0
	s.i32off = 0
	s.nmat32 = 0
}

// Vec returns an uninitialized float64 slice of length n from the arena.
func (s *Scratch) Vec(n int) []float64 {
	if n < 0 {
		panic("mat: Scratch.Vec negative length")
	}
	if s.off+n > len(s.arena) {
		// A fresh backing array replaces the arena; slices handed out
		// earlier keep referencing the old array and stay valid.
		size := 2 * len(s.arena)
		if size < s.off+n {
			size = s.off + n
		}
		if size < 256 {
			size = 256
		}
		s.arena = make([]float64, size)
		s.off = 0
	}
	v := s.arena[s.off : s.off+n : s.off+n]
	s.off += n
	return v
}

// Ints returns an uninitialized int slice of length n from the arena.
func (s *Scratch) Ints(n int) []int {
	if n < 0 {
		panic("mat: Scratch.Ints negative length")
	}
	if s.ioff+n > len(s.ints) {
		size := 2 * len(s.ints)
		if size < s.ioff+n {
			size = s.ioff + n
		}
		if size < 64 {
			size = 64
		}
		s.ints = make([]int, size)
		s.ioff = 0
	}
	v := s.ints[s.ioff : s.ioff+n : s.ioff+n]
	s.ioff += n
	return v
}

// Vec32 returns an uninitialized float32 slice of length n from the arena.
func (s *Scratch) Vec32(n int) []float32 {
	if n < 0 {
		panic("mat: Scratch.Vec32 negative length")
	}
	if s.f32off+n > len(s.f32) {
		size := 2 * len(s.f32)
		if size < s.f32off+n {
			size = s.f32off + n
		}
		if size < 256 {
			size = 256
		}
		s.f32 = make([]float32, size)
		s.f32off = 0
	}
	v := s.f32[s.f32off : s.f32off+n : s.f32off+n]
	s.f32off += n
	return v
}

// Bytes returns an uninitialized byte slice of length n from the arena.
func (s *Scratch) Bytes(n int) []uint8 {
	if n < 0 {
		panic("mat: Scratch.Bytes negative length")
	}
	if s.boff+n > len(s.bytes) {
		size := 2 * len(s.bytes)
		if size < s.boff+n {
			size = s.boff + n
		}
		if size < 256 {
			size = 256
		}
		s.bytes = make([]uint8, size)
		s.boff = 0
	}
	v := s.bytes[s.boff : s.boff+n : s.boff+n]
	s.boff += n
	return v
}

// I32 returns an uninitialized int32 slice of length n from the arena.
func (s *Scratch) I32(n int) []int32 {
	if n < 0 {
		panic("mat: Scratch.I32 negative length")
	}
	if s.i32off+n > len(s.i32s) {
		size := 2 * len(s.i32s)
		if size < s.i32off+n {
			size = s.i32off + n
		}
		if size < 64 {
			size = 64
		}
		s.i32s = make([]int32, size)
		s.i32off = 0
	}
	v := s.i32s[s.i32off : s.i32off+n : s.i32off+n]
	s.i32off += n
	return v
}

// Mat returns an uninitialized rows x cols matrix backed by the arena.
// Unlike NewDense it tolerates rows == 0 (an empty token sequence), so hot
// paths need no special case.
func (s *Scratch) Mat(rows, cols int) *Dense {
	if rows < 0 || cols <= 0 {
		panic("mat: Scratch.Mat invalid dimensions")
	}
	d := s.header()
	d.Rows, d.Cols, d.Data = rows, cols, s.Vec(rows*cols)
	return d
}

// Wrap returns a rows x cols Dense header over caller-supplied data,
// reusing the arena's header storage so steady-state wrapping allocates
// nothing. It panics if data does not hold exactly rows*cols values.
func (s *Scratch) Wrap(rows, cols int, data []float64) *Dense {
	if rows < 0 || cols <= 0 || len(data) != rows*cols {
		panic("mat: Scratch.Wrap shape mismatch")
	}
	d := s.header()
	d.Rows, d.Cols, d.Data = rows, cols, data
	return d
}

// Mat32 returns an uninitialized rows x cols float32 matrix backed by the
// arena, tolerating rows == 0 like Mat.
func (s *Scratch) Mat32(rows, cols int) *Dense32 {
	if rows < 0 || cols <= 0 {
		panic("mat: Scratch.Mat32 invalid dimensions")
	}
	var d *Dense32
	if s.nmat32 < len(s.mats32) {
		d = s.mats32[s.nmat32]
	} else {
		d = new(Dense32)
		s.mats32 = append(s.mats32, d)
	}
	s.nmat32++
	d.Rows, d.Cols, d.Data = rows, cols, s.Vec32(rows*cols)
	return d
}

// header returns the next reusable Dense header, growing the header pool on
// first use of each slot.
func (s *Scratch) header() *Dense {
	var d *Dense
	if s.nmat < len(s.mats) {
		d = s.mats[s.nmat]
	} else {
		d = new(Dense)
		s.mats = append(s.mats, d)
	}
	s.nmat++
	return d
}

// scratchPool recycles Scratch arenas across requests.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// maxPooledScratchFloats bounds the arena size returned to the pool so one
// pathological request (e.g. a firehose message) cannot pin a giant buffer
// for the rest of the process lifetime.
const maxPooledScratchFloats = 1 << 22 // 32 MiB of float64

// GetScratch takes a reset Scratch from the package pool.
func GetScratch() *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.Reset()
	return s
}

// PutScratch returns a Scratch to the package pool. The caller must not use
// s, or any buffer obtained from it, afterwards.
func PutScratch(s *Scratch) {
	if len(s.arena) > maxPooledScratchFloats || len(s.f32) > maxPooledScratchFloats {
		return
	}
	scratchPool.Put(s)
}
