package mat

import "sync"

// This file implements the reusable scratch arena the steady-state serving
// path allocates from. A Scratch hands out float64/int slices and Dense
// headers from grow-once backing buffers: after a few warm-up requests the
// buffers have reached their high-water mark and every subsequent
// Vec/Ints/Mat call is allocation-free. Scratches cycle through a
// package-level sync.Pool so concurrent requests each get a private arena
// without per-request heap garbage.

// Scratch is a bump-pointer arena for temporary kernel buffers. It is not
// safe for concurrent use; each goroutine takes its own via GetScratch.
// Buffers returned by Vec/Ints/Mat contain arbitrary stale data — callers
// must fully overwrite (or explicitly zero) them. Reset recycles every
// outstanding buffer at once: values handed out before a Reset must not be
// used after it.
type Scratch struct {
	arena []float64
	off   int
	ints  []int
	ioff  int
	mats  []*Dense
	nmat  int
}

// Reset recycles the arena: every slice and matrix previously handed out is
// up for reuse by subsequent calls.
func (s *Scratch) Reset() {
	s.off = 0
	s.ioff = 0
	s.nmat = 0
}

// Vec returns an uninitialized float64 slice of length n from the arena.
func (s *Scratch) Vec(n int) []float64 {
	if n < 0 {
		panic("mat: Scratch.Vec negative length")
	}
	if s.off+n > len(s.arena) {
		// A fresh backing array replaces the arena; slices handed out
		// earlier keep referencing the old array and stay valid.
		size := 2 * len(s.arena)
		if size < s.off+n {
			size = s.off + n
		}
		if size < 256 {
			size = 256
		}
		s.arena = make([]float64, size)
		s.off = 0
	}
	v := s.arena[s.off : s.off+n : s.off+n]
	s.off += n
	return v
}

// Ints returns an uninitialized int slice of length n from the arena.
func (s *Scratch) Ints(n int) []int {
	if n < 0 {
		panic("mat: Scratch.Ints negative length")
	}
	if s.ioff+n > len(s.ints) {
		size := 2 * len(s.ints)
		if size < s.ioff+n {
			size = s.ioff + n
		}
		if size < 64 {
			size = 64
		}
		s.ints = make([]int, size)
		s.ioff = 0
	}
	v := s.ints[s.ioff : s.ioff+n : s.ioff+n]
	s.ioff += n
	return v
}

// Mat returns an uninitialized rows x cols matrix backed by the arena.
// Unlike NewDense it tolerates rows == 0 (an empty token sequence), so hot
// paths need no special case.
func (s *Scratch) Mat(rows, cols int) *Dense {
	if rows < 0 || cols <= 0 {
		panic("mat: Scratch.Mat invalid dimensions")
	}
	d := s.header()
	d.Rows, d.Cols, d.Data = rows, cols, s.Vec(rows*cols)
	return d
}

// Wrap returns a rows x cols Dense header over caller-supplied data,
// reusing the arena's header storage so steady-state wrapping allocates
// nothing. It panics if data does not hold exactly rows*cols values.
func (s *Scratch) Wrap(rows, cols int, data []float64) *Dense {
	if rows < 0 || cols <= 0 || len(data) != rows*cols {
		panic("mat: Scratch.Wrap shape mismatch")
	}
	d := s.header()
	d.Rows, d.Cols, d.Data = rows, cols, data
	return d
}

// header returns the next reusable Dense header, growing the header pool on
// first use of each slot.
func (s *Scratch) header() *Dense {
	var d *Dense
	if s.nmat < len(s.mats) {
		d = s.mats[s.nmat]
	} else {
		d = new(Dense)
		s.mats = append(s.mats, d)
	}
	s.nmat++
	return d
}

// scratchPool recycles Scratch arenas across requests.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// maxPooledScratchFloats bounds the arena size returned to the pool so one
// pathological request (e.g. a firehose message) cannot pin a giant buffer
// for the rest of the process lifetime.
const maxPooledScratchFloats = 1 << 22 // 32 MiB of float64

// GetScratch takes a reset Scratch from the package pool.
func GetScratch() *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.Reset()
	return s
}

// PutScratch returns a Scratch to the package pool. The caller must not use
// s, or any buffer obtained from it, afterwards.
func PutScratch(s *Scratch) {
	if len(s.arena) > maxPooledScratchFloats {
		return
	}
	scratchPool.Put(s)
}
