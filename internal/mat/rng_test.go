package mat

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d of 7 values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(6)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed multiset; sum = %d, want 36", sum)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := NewRNG(42)
	fresh := NewRNG(42)
	// Advance by an odd number of normal draws so a polar-method spare is
	// pending, then reseed: the stream must restart exactly, which also
	// proves the spare was discarded.
	for i := 0; i < 7; i++ {
		r.NormFloat64()
	}
	r.Reseed(42)
	for i := 0; i < 20; i++ {
		if a, b := r.NormFloat64(), fresh.NormFloat64(); a != b {
			t.Fatalf("reseeded stream diverged from fresh at step %d: %v != %v", i, a, b)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(123)
	child := parent.Split()
	// The child must not replay the parent's stream.
	a := make([]uint64, 20)
	for i := range a {
		a[i] = child.Uint64()
	}
	parent2 := NewRNG(123)
	matches := 0
	for i := 0; i < 20; i++ {
		if parent2.Uint64() == a[i] {
			matches++
		}
	}
	if matches > 1 {
		t.Fatalf("child stream overlaps parent stream in %d/20 positions", matches)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(17)
	z := NewZipf(r, 10, 1.0)
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	// Rank-0 must dominate rank-9 heavily under s=1.
	if counts[0] < 5*counts[9] {
		t.Fatalf("Zipf skew too weak: counts[0]=%d counts[9]=%d", counts[0], counts[9])
	}
	// Monotone non-increasing within sampling noise for the head.
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Fatalf("Zipf head not monotone: %v", counts[:3])
	}
}

func TestZipfCoversRange(t *testing.T) {
	r := NewRNG(23)
	z := NewZipf(r, 5, 0.8)
	if z.N() != 5 {
		t.Fatalf("N() = %d, want 5", z.N())
	}
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := z.Sample()
		if v < 0 || v >= 5 {
			t.Fatalf("Zipf sample out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Zipf hit only %d of 5 values", len(seen))
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, tc := range []struct {
		name string
		n    int
		s    float64
	}{
		{"zero n", 0, 1},
		{"negative s", 3, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewZipf(r, tc.n, tc.s)
		})
	}
}
