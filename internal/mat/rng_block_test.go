package mat

import "testing"

// TestNormFloat64BlockMatchesScalar proves the block fill is bit-identical
// to repeated scalar draws, including spare handling across odd-sized
// blocks interleaved with scalar calls — the property the channel layer's
// noise amortization rests on.
func TestNormFloat64BlockMatchesScalar(t *testing.T) {
	scalar := NewRNG(99)
	mixed := NewRNG(99)
	var want, got []float64
	// Sizes chosen to cycle the spare through every state: empty blocks,
	// odd blocks (leave a spare), even blocks, and scalar draws in between.
	sizes := []int{0, 1, 2, 3, 0, 5, 4, 7, 1, 1, 8, 3}
	for _, n := range sizes {
		for i := 0; i < n; i++ {
			want = append(want, scalar.NormFloat64())
		}
		buf := make([]float64, n)
		mixed.NormFloat64Block(buf)
		got = append(got, buf...)
		// One scalar draw between blocks exercises spare interleaving.
		want = append(want, scalar.NormFloat64())
		got = append(got, mixed.NormFloat64())
	}
	if len(want) != len(got) {
		t.Fatalf("length mismatch: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("draw %d differs: scalar %v vs block %v", i, want[i], got[i])
		}
	}
	// The generators must end in identical states.
	if scalar.Uint64() != mixed.Uint64() {
		t.Fatal("generator states diverged after block draws")
	}
}
