package mat

import "math"

// Dot returns the inner product of a and b. It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddTo adds src into dst element-wise. It panics if the lengths differ.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mat: AddTo length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Scale multiplies every element of v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// AXPY computes dst += a*x element-wise. It panics if the lengths differ.
func AXPY(dst []float64, a float64, x []float64) {
	if len(dst) != len(x) {
		panic("mat: AXPY length mismatch")
	}
	for i, v := range x {
		dst[i] += a * v
	}
}

// Zero sets every element of v to zero.
func Zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Clone returns a fresh copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// L2 returns the Euclidean norm of v.
func L2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b, or 0 when either vector
// has zero norm. It panics if the lengths differ.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Cosine length mismatch")
	}
	na, nb := L2(a), L2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Argmax returns the index of the largest element of v, or -1 for an empty
// slice. Ties resolve to the lowest index.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Softmax writes the softmax of logits into dst (which may alias logits).
// It uses the max-subtraction trick for numerical stability and panics if
// the lengths differ.
func Softmax(dst, logits []float64) {
	if len(dst) != len(logits) {
		panic("mat: Softmax length mismatch")
	}
	if len(logits) == 0 {
		return
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Tanh applies tanh element-wise, writing into dst (which may alias src).
func Tanh(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mat: Tanh length mismatch")
	}
	for i, v := range src {
		dst[i] = math.Tanh(v)
	}
}

// Clamp limits every element of v to [lo, hi] in place.
func Clamp(v []float64, lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}

// MaxAbs returns the largest absolute value in v, or 0 for an empty slice.
func MaxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
