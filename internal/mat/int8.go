package mat

// This file implements the int8 post-training-quantized kernel tier. A
// QMat8 holds weight rows as 8-bit codes on a per-row 256-level affine
// grid — the same grid channel.Quantizer{Bits: 8} defines (idx =
// trunc((v-Lo)/span*255), value = Lo + idx*step) — so a quantized weight
// dequantizes as Lo[r] + Scale[r]*code. The GEMM quantizes each activation
// row onto its own grid at call time, accumulates pure uint8xuint8 products
// in int32, and dequantizes on output via the expanded affine dot product:
//
//	dot(x̂, ŵ) = sx*sw*Σcx·cw + lox*sw*Σcw + low*sx*Σcx + k*lox*low
//
// where the per-row code sums Σcw are precomputed at quantization time and
// Σcx at activation-quantization time, leaving one integer inner product
// per output element. With k ≤ 255² rows the int32 accumulator cannot
// overflow for any k the codec uses (255*255*k < 2³¹ for k up to ~33000).

// QMat8 is an 8-bit post-training-quantized row-major matrix. Codes decode
// as value = Lo[r] + Scale[r]*code on row r's grid. Scale is the grid step
// (span/255); a row of all-zero source values stores Lo = Scale = 0 so it
// dequantizes to exactly zero. Rows are stored at a 16-byte-aligned Stride
// with zero codes in the padding, so the SIMD kernel runs pure 16-code
// steps with no tail (zero pad codes multiply against zero pad codes and
// contribute nothing to any dot product).
type QMat8 struct {
	Rows, Cols int
	Stride     int       // Cols rounded up to a multiple of 16
	Code       []uint8   // Rows*Stride codes, zero in the padding
	Lo         []float32 // per-row grid origin (level 0 value)
	Scale      []float32 // per-row grid step
	CodeSum    []int32   // per-row Σ codes, for the affine expansion
}

// q8Align pads a code-row length to the SIMD kernel's 16-code step.
func q8Align(k int) int { return (k + 15) &^ 15 }

// NewQMat8 allocates an empty r x c quantized matrix. It panics if either
// dimension is not positive.
func NewQMat8(r, c int) *QMat8 {
	if r <= 0 || c <= 0 {
		panic("mat: NewQMat8 dimensions must be positive")
	}
	stride := q8Align(c)
	return &QMat8{
		Rows:    r,
		Cols:    c,
		Stride:  stride,
		Code:    make([]uint8, r*stride),
		Lo:      make([]float32, r),
		Scale:   make([]float32, r),
		CodeSum: make([]int32, r),
	}
}

// Row returns a view of row i's codes (without the stride padding).
func (m *QMat8) Row(i int) []uint8 {
	return m.Code[i*m.Stride:][:m.Cols]
}

// SetRow installs row i from codes on the grid [lo, lo+255*scale],
// recomputing the row's code sum. It panics on length mismatch.
func (m *QMat8) SetRow(i int, codes []uint8, lo, scale float32) {
	if len(codes) != m.Cols {
		panic("mat: QMat8.SetRow length mismatch")
	}
	copy(m.Row(i), codes)
	m.Lo[i] = lo
	m.Scale[i] = scale
	var sum int32
	for _, c := range codes {
		sum += int32(c)
	}
	m.CodeSum[i] = sum
}

// QuantizeRowQ8 quantizes src onto a symmetric 256-level affine grid over
// [-m, m] with m = max|src|, writing codes into dst and returning the grid
// origin (-m), step (2m/255) and code sum. The index math runs in float64
// and truncates — bit-identical to channel.Quantizer{Bits: 8, Lo: -m,
// Hi: m}.Index on every value (pinned by a cross-package test) — so weight
// rows quantized through the channel machinery and activation rows
// quantized here land on the same grid. An all-zero row returns lo = scale
// = 0 with all-zero codes, dequantizing to exactly zero. It panics if the
// lengths differ.
func QuantizeRowQ8(dst []uint8, src []float32) (lo, scale float32, sum int32) {
	if len(dst) != len(src) {
		panic("mat: QuantizeRowQ8 length mismatch")
	}
	m := MaxAbs32(src)
	if m == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0, 0, 0
	}
	lo64 := -float64(m)
	span := 2 * float64(m)
	for i, v := range src {
		idx := int((float64(v) - lo64) / span * 255)
		if idx < 0 {
			idx = 0
		} else if idx > 255 {
			idx = 255
		}
		dst[i] = uint8(idx)
		sum += int32(idx)
	}
	return float32(lo64), float32(span / 255), sum
}

// MulMatTQ8AddRow computes dst = x * ŵᵀ + bias where w holds int8-quantized
// weight rows: the int8-tier fused linear-layer forward. Each activation
// row of x is quantized onto its own symmetric 256-level grid (temporaries
// from sc), the inner products run entirely in int32, and outputs
// dequantize into float32. bias may be nil. dst must not alias x. It panics
// on shape mismatches.
func MulMatTQ8AddRow(sc *Scratch, dst, x *Dense32, w *QMat8, bias []float32) {
	if x.Cols != w.Cols || dst.Rows != x.Rows || dst.Cols != w.Rows {
		panic("mat: MulMatTQ8AddRow shape mismatch")
	}
	if bias != nil && len(bias) != dst.Cols {
		panic("mat: MulMatTQ8AddRow bias length mismatch")
	}
	k := x.Cols
	kp := w.Stride
	n := w.Rows
	// Quantize every activation row up front (serial: sc is not safe for
	// concurrent use); the GEMM below only reads these buffers. Activation
	// code rows share the weight stride, zero-padded like QMat8 rows.
	cx := sc.Bytes(x.Rows * kp)
	if kp != k {
		for i := 0; i < x.Rows; i++ {
			pad := cx[i*kp+k : (i+1)*kp]
			for j := range pad {
				pad[j] = 0
			}
		}
	}
	xlo := sc.Vec32(x.Rows)
	xscale := sc.Vec32(x.Rows)
	xsum := sc.I32(x.Rows)
	for i := 0; i < x.Rows; i++ {
		xlo[i], xscale[i], xsum[i] = QuantizeRowQ8(cx[i*kp:i*kp+k], x.Row(i))
	}
	grain := kernelGrain(k * n)
	if Parallelism() == 1 || x.Rows <= grain {
		mulMatTQ8Range(dst, cx, xlo, xscale, xsum, w, bias, k, n, 0, x.Rows)
		return
	}
	ParallelFor(x.Rows, grain, func(lo, hi int) {
		mulMatTQ8Range(dst, cx, xlo, xscale, xsum, w, bias, k, n, lo, hi)
	})
}

// mulMatTQ8Range computes rows lo..hi of the quantized GEMM. Four output
// columns run at a time with one int32 accumulator chain each; integer adds
// are single-cycle, so four chains already saturate the ALUs without the
// even/odd split the float kernels need.
func mulMatTQ8Range(dst *Dense32, cx []uint8, xlo, xscale []float32, xsum []int32, w *QMat8, bias []float32, k, n, lo, hi int) {
	kf := float32(k)
	kp := w.Stride
	if useAVX2 && k > 0 && n > 0 {
		// Integer dots per activation row via the VPMADDWD kernel (pure
		// 16-code steps over the zero-padded stride), in fixed-size column
		// chunks so the dot buffer lives on the stack (this range may run
		// inside a parallel worker, which must not touch the caller's
		// scratch).
		var dots [256]int32
		for i := lo; i < hi; i++ {
			out := dst.Data[i*n : (i+1)*n]
			lox := xlo[i]
			sx := xscale[i]
			// Factored dequant: sw*(sx*dot + lox*Σcw) + low*cx1 (+ bias),
			// with cx1 = sx*Σcx + k*lox shared by every output column.
			cx1 := sx*float32(xsum[i]) + kf*lox
			for j0 := 0; j0 < n; j0 += len(dots) {
				jn := min(len(dots), n-j0)
				q8GemmRow(&dots[0], &cx[i*kp], &w.Code[j0*kp], jn, kp)
				for jj := 0; jj < jn; jj++ {
					j := j0 + jj
					v := w.Scale[j]*(sx*float32(dots[jj])+lox*float32(w.CodeSum[j])) + w.Lo[j]*cx1
					if bias != nil {
						v += bias[j]
					}
					out[j] = v
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		ar := cx[i*kp : i*kp+k]
		out := dst.Data[i*n : (i+1)*n]
		lox := xlo[i]
		sx := xscale[i]
		cx1 := sx*float32(xsum[i]) + kf*lox
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := w.Code[j*kp:][:len(ar)]
			b1 := w.Code[(j+1)*kp:][:len(ar)]
			b2 := w.Code[(j+2)*kp:][:len(ar)]
			b3 := w.Code[(j+3)*kp:][:len(ar)]
			var d0, d1, d2, d3 int32
			for p, av := range ar {
				a := int32(av)
				d0 += a * int32(b0[p])
				d1 += a * int32(b1[p])
				d2 += a * int32(b2[p])
				d3 += a * int32(b3[p])
			}
			out[j] = dequantQ8(d0, lox, sx, cx1, w, bias, j)
			out[j+1] = dequantQ8(d1, lox, sx, cx1, w, bias, j+1)
			out[j+2] = dequantQ8(d2, lox, sx, cx1, w, bias, j+2)
			out[j+3] = dequantQ8(d3, lox, sx, cx1, w, bias, j+3)
		}
		for ; j < n; j++ {
			br := w.Code[j*kp:][:len(ar)]
			var d int32
			for p, av := range ar {
				d += int32(av) * int32(br[p])
			}
			out[j] = dequantQ8(d, lox, sx, cx1, w, bias, j)
		}
	}
}

// dequantQ8 expands one integer dot product back to float32 using the
// factored affine expansion sw*(sx*Σcx·cw + lox*Σcw) + low*(sx*Σcx + k*lox)
// (+ bias), where the caller precomputes cx1 = sx*Σcx + k*lox once per
// activation row. Identical operation order to the AVX2 path's inline
// expansion, so both paths produce the same bits.
func dequantQ8(dot int32, lox, sx, cx1 float32, w *QMat8, bias []float32, j int) float32 {
	v := w.Scale[j]*(sx*float32(dot)+lox*float32(w.CodeSum[j])) + w.Lo[j]*cx1
	if bias != nil {
		v += bias[j]
	}
	return v
}
