package mat

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("At/Set mismatch")
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row is not a view")
	}
}

func TestDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(0, 3)
}

func TestMulVec(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 3)
	m.MulVecT(dst, []float64{1, 1})
	if dst[0] != 5 || dst[1] != 7 || dst[2] != 9 {
		t.Fatalf("MulVecT = %v", dst)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewDense(2, 2)
	m.AddOuter(2, []float64{1, 2}, []float64{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("AddOuter data = %v, want %v", m.Data, want)
		}
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 0, 7)
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 7 {
		t.Fatal("Clone shares data")
	}
	m2 := NewDense(2, 2)
	m2.CopyFrom(m)
	if m2.At(0, 0) != 7 {
		t.Fatal("CopyFrom failed")
	}
}

func TestAddScaled(t *testing.T) {
	a := NewDense(1, 2)
	b := NewDense(1, 2)
	copy(a.Data, []float64{1, 2})
	copy(b.Data, []float64{10, 20})
	a.AddScaled(0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("AddScaled = %v", a.Data)
	}
}

func TestGlorotInitBounds(t *testing.T) {
	m := NewDense(8, 8)
	m.GlorotInit(NewRNG(1), 8, 8)
	limit := math.Sqrt(6.0 / 16.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Glorot value %v outside ±%v", v, limit)
		}
	}
	// The matrix must not be all zeros.
	if MaxAbs(m.Data) == 0 {
		t.Fatal("GlorotInit produced all zeros")
	}
}

func TestDenseSerializationRoundTrip(t *testing.T) {
	m := NewDense(3, 5)
	m.Randomize(NewRNG(4), 2)
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != m.SizeBytes() {
		t.Fatalf("WriteTo wrote %d bytes, SizeBytes says %d", n, m.SizeBytes())
	}
	got, err := ReadDense(&buf)
	if err != nil {
		t.Fatalf("ReadDense: %v", err)
	}
	if got.Rows != 3 || got.Cols != 5 {
		t.Fatalf("round-trip shape %dx%d", got.Rows, got.Cols)
	}
	for i := range m.Data {
		if m.Data[i] != got.Data[i] {
			t.Fatalf("round-trip data mismatch at %d", i)
		}
	}
}

func TestReadDenseRejectsGarbage(t *testing.T) {
	if _, err := ReadDense(bytes.NewReader([]byte("not a matrix at all"))); err == nil {
		t.Fatal("ReadDense accepted garbage")
	}
	if _, err := ReadDense(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadDense accepted empty input")
	}
}

// denseHeader builds a serialized-matrix header with the given dimensions.
func denseHeader(rows, cols uint32) []byte {
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], denseMagic)
	binary.LittleEndian.PutUint32(hdr[4:], rows)
	binary.LittleEndian.PutUint32(hdr[8:], cols)
	return hdr
}

// Regression: headers whose rows*cols product overflows int on 32-bit
// platforms (e.g. 65536*65536 wraps to 0) must be rejected before any
// allocation, not accepted via the wrapped product.
func TestReadDenseRejectsElementCountOverflow(t *testing.T) {
	cases := []struct{ rows, cols uint32 }{
		{1 << 16, 1 << 16}, // product 2^32: wraps to 0 in 32-bit int
		{1 << 17, 1 << 16}, // product 2^33: wraps to 0 in 32-bit int
		{1 << 31, 3},       // rows itself is negative as a 32-bit int
		{1 << 15, 1 << 14}, // product 2^29: over the 2^28 element limit
	}
	for _, c := range cases {
		if _, err := ReadDense(bytes.NewReader(denseHeader(c.rows, c.cols))); err == nil {
			t.Fatalf("ReadDense accepted %dx%d header", c.rows, c.cols)
		}
	}
	// A legitimate header still reads (the data section is just short).
	_, err := ReadDense(bytes.NewReader(denseHeader(2, 2)))
	if err == nil {
		t.Fatal("ReadDense with truncated data should error")
	}
}

// Property: (Mᵀ)ᵀ x == M x is trivially true, but MulVec and MulVecT must be
// consistent adjoints: <Mx, y> == <x, Mᵀy>.
func TestMulVecAdjointQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := NewDense(4, 6)
		m.Randomize(rng, 1)
		x := make([]float64, 6)
		y := make([]float64, 4)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		mx := make([]float64, 4)
		m.MulVec(mx, x)
		mty := make([]float64, 6)
		m.MulVecT(mty, y)
		return almostEqual(Dot(mx, y), Dot(x, mty), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips exactly for random matrices.
func TestSerializationQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(6)
		m := NewDense(rows, cols)
		m.Randomize(rng, 10)
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadDense(&buf)
		if err != nil {
			return false
		}
		if got.Rows != rows || got.Cols != cols {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != got.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
