package mat

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

// withParallelism runs fn at worker count n, restoring the prior setting.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

// serialMulVec is the reference dst = m * x loop.
func serialMulVec(m *Dense, dst, x []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = s
	}
}

// serialMulVecT is the reference dst = mᵀ * x loop, matching the seed's
// accumulation order exactly.
func serialMulVecT(m *Dense, dst, x []float64) {
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// serialAddOuter is the reference m += a * x * yᵀ loop.
func serialAddOuter(m *Dense, a float64, x, y []float64) {
	for i := 0; i < m.Rows; i++ {
		axi := a * x[i]
		if axi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += axi * yj
		}
	}
}

// kernelShapes straddle the parallel cutoff: tiny shapes that stay serial,
// shapes right around parallelCutoff elements, and large shapes that shard
// across several workers, including skinny and wide aspect ratios.
var kernelShapes = []struct{ rows, cols int }{
	{1, 1},
	{3, 7},
	{17, 33},
	{64, 64},
	{127, 258}, // just under the cutoff
	{128, 256}, // exactly the cutoff
	{129, 256}, // just over the cutoff
	{1000, 37}, // tall and skinny
	{37, 1000}, // short and wide
	{300, 301}, // well above the cutoff
	{1, 40000}, // single row wider than the cutoff
	{40000, 1}, // single column taller than the cutoff
}

// randomVec fills a deterministic pseudo-random vector with ~1/8 exact
// zeros so the xi == 0 skip path is exercised.
func randomVec(rng *RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Intn(8) == 0 {
			continue
		}
		v[i] = 2*rng.Float64() - 1
	}
	return v
}

// bitsEqual reports element-wise bit identity, distinguishing -0 from 0.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestParallelKernelsMatchSerial(t *testing.T) {
	rng := NewRNG(42)
	for _, sh := range kernelShapes {
		m := NewDense(sh.rows, sh.cols)
		m.Randomize(rng, 1)
		xr := randomVec(rng, sh.rows) // length Rows: MulVecT input, AddOuter x
		xc := randomVec(rng, sh.cols) // length Cols: MulVec input, AddOuter y

		wantMV := make([]float64, sh.rows)
		serialMulVec(m, wantMV, xc)
		wantMVT := make([]float64, sh.cols)
		serialMulVecT(m, wantMVT, xr)
		wantAO := m.Clone()
		serialAddOuter(wantAO, 0.75, xr, xc)

		for _, workers := range []int{1, 2, 3, 8} {
			withParallelism(t, workers, func() {
				got := make([]float64, sh.rows)
				m.MulVec(got, xc)
				if !bitsEqual(got, wantMV) {
					t.Errorf("MulVec %dx%d workers=%d differs from serial", sh.rows, sh.cols, workers)
				}
				gotT := make([]float64, sh.cols)
				m.MulVecT(gotT, xr)
				if !bitsEqual(gotT, wantMVT) {
					t.Errorf("MulVecT %dx%d workers=%d differs from serial", sh.rows, sh.cols, workers)
				}
				ao := m.Clone()
				ao.AddOuter(0.75, xr, xc)
				if !bitsEqual(ao.Data, wantAO.Data) {
					t.Errorf("AddOuter %dx%d workers=%d differs from serial", sh.rows, sh.cols, workers)
				}
			})
		}
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withParallelism(t, workers, func() {
			for _, n := range []int{0, 1, 7, 64, 1000} {
				for _, grain := range []int{1, 3, 64, 5000} {
					visits := make([]int32, n)
					ParallelFor(n, grain, func(lo, hi int) {
						if lo < 0 || hi > n || lo >= hi {
							t.Fatalf("bad chunk [%d,%d) for n=%d", lo, hi, n)
						}
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&visits[i], 1)
						}
					})
					for i, v := range visits {
						if v != 1 {
							t.Fatalf("n=%d grain=%d workers=%d: index %d visited %d times",
								n, grain, workers, i, v)
						}
					}
				}
			}
		})
	}
}

func TestParallelForNestedNoDeadlock(t *testing.T) {
	withParallelism(t, 4, func() {
		var count atomic.Int64
		ParallelFor(16, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ParallelFor(16, 1, func(lo2, hi2 int) {
					count.Add(int64(hi2 - lo2))
				})
			}
		})
		if got := count.Load(); got != 16*16 {
			t.Fatalf("nested ParallelFor covered %d of %d indices", got, 16*16)
		}
	})
}

func TestSetParallelismClamps(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	for _, n := range []int{0, -5} {
		SetParallelism(n)
		if got := Parallelism(); got != 1 {
			t.Fatalf("SetParallelism(%d) -> Parallelism() = %d, want 1", n, got)
		}
	}
	SetParallelism(6)
	if got := Parallelism(); got != 6 {
		t.Fatalf("Parallelism() = %d, want 6", got)
	}
}

func TestDefaultParallelismIsGOMAXPROCS(t *testing.T) {
	// The init default must be at least 1 and no more than GOMAXPROCS;
	// other tests may have changed it, so set it back explicitly.
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(runtime.GOMAXPROCS(0))
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d", got)
	}
}
