package edged

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/text"
)

// server dispatches requests straight into the concurrent core.System; no
// global serialization. A bounded gate caps concurrently served transmits
// so load spikes queue at the door instead of oversubscribing the host.
type server struct {
	sys       *core.System
	mesh      *mesh.Node // nil outside mesh mode
	messages  atomic.Int64
	inflight  atomic.Int64
	shed      atomic.Int64
	gate      chan struct{} // nil = unlimited
	latency   *metrics.Histogram
	queueWait *metrics.Histogram

	idleTimeout  time.Duration // read deadline between requests
	writeTimeout time.Duration // deadline per response write
	shedAfter    time.Duration // server-side admission-queue patience; 0 = none

	connMu  sync.Mutex
	conns   map[net.Conn]bool // true while parked in a read between requests
	closing bool

	// Drain gate: once draining, new transmits/moves park on drainGate
	// until the handoff completes (finishDrain), then answer Draining so
	// the client's retry lands at the new owner with state in place. busy
	// counts admitted requests; drainIdle closes when the last finishes.
	drainMu   sync.Mutex
	draining  bool
	busy      int
	drainIdle chan struct{}
	drainGate chan struct{}
}

// newServer wraps sys. maxInflight 0 selects 2x GOMAXPROCS; negative
// disables the gate.
func newServer(sys *core.System, maxInflight int) *server {
	if maxInflight == 0 {
		maxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	s := &server{
		sys:       sys,
		latency:   metrics.NewLatencyHistogram(),
		queueWait: metrics.NewLatencyHistogram(),
		conns:     make(map[net.Conn]bool),
	}
	if maxInflight > 0 {
		s.gate = make(chan struct{}, maxInflight)
	}
	return s
}

// serve accepts connections until the listener closes, then drains the
// in-flight handlers.
func (s *server) serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
}

// handle serves one client connection until EOF or a missed deadline: a
// stalled peer trips the read deadline instead of pinning the goroutine
// forever. Responses go out framed at the version the request arrived
// with, so v1 clients and v2 mesh peers share one port.
func (s *server) handle(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return
			}
		}
		if !s.markIdle(conn) {
			return
		}
		req, version, err := rpc.ReadRequestV(conn)
		s.markBusy(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				log.Printf("edged: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		var resp *rpc.Response
		if rpc.IsMeshOp(req.Op) && version < rpc.Version2 {
			// Mesh ops are a v2 surface: a v1 frame carrying one is a
			// protocol error, never silently served.
			resp = &rpc.Response{Error: rpc.ErrMeshOpVersion.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if s.writeTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
				return
			}
		}
		if err := rpc.WriteV(conn, version, resp); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				log.Printf("edged: %s: write: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

// markIdle records the connection as parked between requests. During
// shutdown it closes the connection instead and reports false, so a
// handler never blocks in a read the drain would have to wait out.
func (s *server) markIdle(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closing {
		conn.Close()
		return false
	}
	s.conns[conn] = true
	return true
}

// markBusy records the connection as serving a request.
func (s *server) markBusy(conn net.Conn) {
	s.connMu.Lock()
	s.conns[conn] = false
	s.connMu.Unlock()
}

// closeIdleConns begins shutdown: connections parked between requests
// close now (long-lived peers and idle clients reconnect or give up),
// busy ones finish their current request and close on the next read.
// The serve drain then completes without waiting out idle timeouts.
func (s *server) closeIdleConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.closing = true
	for c, idle := range s.conns {
		if idle {
			c.Close()
		}
	}
}

// killConns severs every open connection — the hard-kill path of
// Daemon.Kill; clients see a reset mid-stream, as with a dead process.
func (s *server) killConns() {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	s.closing = true
	for c := range s.conns {
		c.Close()
	}
}

// beginOp admits one transmit or move into the serving path. During a
// drain it instead parks the caller until the handoff completes and
// reports false: the handler answers Draining, and because the response
// only goes out after the user's state reached its new owner, a serial
// client's retry never observes missing state.
func (s *server) beginOp() bool {
	s.drainMu.Lock()
	if !s.draining {
		s.busy++
		s.drainMu.Unlock()
		return true
	}
	gate := s.drainGate
	s.drainMu.Unlock()
	<-gate
	return false
}

// endOp retires one admitted request, waking the drain when the last
// one finishes.
func (s *server) endOp() {
	s.drainMu.Lock()
	s.busy--
	if s.draining && s.busy == 0 && s.drainIdle != nil {
		close(s.drainIdle)
		s.drainIdle = nil
	}
	s.drainMu.Unlock()
}

// beginDrain stops admitting transmits and moves. Mesh ops, pings and
// stats keep flowing — peers still probe and push during the drain.
func (s *server) beginDrain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainGate = make(chan struct{})
	if s.busy > 0 {
		s.drainIdle = make(chan struct{})
	}
	s.drainMu.Unlock()
}

// awaitIdle blocks until every admitted request has finished, or ctx
// expires.
func (s *server) awaitIdle(ctx context.Context) error {
	s.drainMu.Lock()
	idle := s.drainIdle
	s.drainMu.Unlock()
	if idle == nil {
		return nil
	}
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// finishDrain releases every handler parked at the drain gate (and any
// that arrive later: the closed gate admits them straight to the
// Draining answer).
func (s *server) finishDrain() {
	s.drainMu.Lock()
	if s.drainGate != nil {
		select {
		case <-s.drainGate:
			// already closed by an earlier finishDrain
		default:
			close(s.drainGate)
		}
	}
	s.drainMu.Unlock()
}

// drainingResponse is the answer parked requests get once the handoff
// is done: retry elsewhere, your state moved ahead of you.
func drainingResponse() *rpc.Response {
	return &rpc.Response{Draining: true, Error: "draining: member is leaving the mesh"}
}

// dispatch routes one request.
func (s *server) dispatch(req *rpc.Request) *rpc.Response {
	switch req.Op {
	case rpc.OpPing:
		return &rpc.Response{OK: true}
	case rpc.OpStats:
		return &rpc.Response{OK: true, Stats: s.stats()}
	case rpc.OpTransmit:
		return s.transmit(req)
	case rpc.OpMove:
		return s.move(req)
	case rpc.OpJoin, rpc.OpLeave, rpc.OpPeerStats, rpc.OpFetchModel, rpc.OpHandoverPush:
		return s.meshOp(req)
	default:
		return &rpc.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// meshOp serves the v2 mesh surface; a daemon that is not a mesh member
// rejects every mesh op.
func (s *server) meshOp(req *rpc.Request) *rpc.Response {
	if s.mesh == nil {
		return &rpc.Response{Error: fmt.Sprintf("%s: not a mesh member", req.Op)}
	}
	switch req.Op {
	case rpc.OpJoin:
		if req.Peer == nil {
			return &rpc.Response{Error: "join requires peer info"}
		}
		return &rpc.Response{OK: true, Peers: s.mesh.HandleJoin(*req.Peer)}
	case rpc.OpLeave:
		if req.Peer == nil {
			return &rpc.Response{Error: "leave requires peer info"}
		}
		s.mesh.HandleLeave(*req.Peer)
		return &rpc.Response{OK: true}
	case rpc.OpPeerStats:
		ns := s.mesh.Stats()
		return &rpc.Response{OK: true, Node: &ns}
	case rpc.OpFetchModel:
		if req.Fetch == nil {
			return &rpc.Response{Error: "fetch-model requires a model key"}
		}
		payload, err := s.mesh.HandleFetch(*req.Fetch)
		if err != nil {
			return &rpc.Response{Error: err.Error()}
		}
		// A nil Model is a clean miss: the prober moves on.
		return &rpc.Response{OK: true, Model: payload}
	case rpc.OpHandoverPush:
		if req.Handoff == nil {
			return &rpc.Response{Error: "handover-push requires a payload"}
		}
		if err := s.mesh.HandleHandoverPush(req.Handoff); err != nil {
			return &rpc.Response{Error: err.Error()}
		}
		return &rpc.Response{OK: true}
	default:
		return &rpc.Response{Error: fmt.Sprintf("unknown mesh op %q", req.Op)}
	}
}

// stats snapshots the daemon counters; in cluster mode the sender-side
// numbers aggregate every node and per-node detail rides along, and a
// mesh member reports itself as the single node of its slice of the
// deployment (clients merge slices with rpc.Stats.Merge).
func (s *server) stats() *rpc.Stats {
	serve := &rpc.ServeStats{
		InFlight:       int(s.inflight.Load()),
		LatencyP50Ms:   s.latency.P(50),
		LatencyP95Ms:   s.latency.P(95),
		LatencyP99Ms:   s.latency.P(99),
		QueueWaitP50Ms: s.queueWait.P(50),
		QueueWaitP95Ms: s.queueWait.P(95),
		QueueWaitP99Ms: s.queueWait.P(99),
		Shed:           s.shed.Load(),
	}
	bs := s.sys.BatchStats()
	serve.Batches = bs.Batches
	serve.BatchedRequests = bs.BatchedRequests
	serve.BatchOccupancy = bs.Occupancy
	st := &rpc.Stats{
		Messages:  int(s.messages.Load()),
		SyncBytes: s.sys.SyncBytes(),
		SyncCount: s.sys.SyncCount(),
		Serve:     serve,
	}
	if s.mesh != nil {
		ns := s.mesh.Stats()
		st.SenderHitRate = ns.HitRate
		st.CachedModels = ns.CachedModels
		st.CacheUsedBytes = ns.CacheUsedBytes
		st.Handovers, st.MigratedBytes = s.mesh.HandoverStats()
		st.Nodes = []rpc.NodeStats{ns}
		return st
	}
	if s.sys.Cluster == nil {
		cs := s.sys.Sender.CacheStats()
		st.SenderHitRate = cs.HitRate()
		st.CachedModels = s.sys.Sender.Cache().Len()
		st.CacheUsedBytes = s.sys.Sender.Cache().Used()
		return st
	}
	cl := s.sys.Cluster.Stats()
	st.Handovers = cl.Handovers
	st.MigratedBytes = cl.MigratedBytes
	var hits, misses uint64
	st.Nodes = make([]rpc.NodeStats, len(cl.Nodes))
	for i, n := range cl.Nodes {
		hits += n.Cache.Hits
		misses += n.Cache.Misses
		st.CachedModels += n.CachedModels
		st.CacheUsedBytes += n.CacheUsedBytes
		st.Nodes[i] = n.RPC()
	}
	if total := hits + misses; total > 0 {
		st.SenderHitRate = float64(hits) / float64(total)
	}
	return st
}

// move serves one OpMove: attach the user to a cell, handing their
// individual models over when the serving node changes — across
// processes in mesh mode, across in-process nodes in cluster mode.
func (s *server) move(req *rpc.Request) *rpc.Response {
	if req.User == "" {
		return &rpc.Response{Error: "move requires a user"}
	}
	if !s.beginOp() {
		return drainingResponse()
	}
	defer s.endOp()
	if s.mesh != nil {
		h, err := s.mesh.MoveUser(req.User, req.Cell)
		if err != nil {
			return &rpc.Response{Error: err.Error()}
		}
		return &rpc.Response{OK: true, Handover: h}
	}
	res, err := s.sys.MoveUser(req.User, req.Cell)
	if err != nil {
		return &rpc.Response{Error: err.Error()}
	}
	return &rpc.Response{OK: true, Handover: &rpc.Handover{
		From:          s.sys.Cluster.Node(res.From).Name(),
		To:            s.sys.Cluster.Node(res.To).Name(),
		Moved:         res.Moved,
		Models:        res.Models,
		MigratedBytes: res.Bytes,
		LatencyMs:     float64(res.Latency) / float64(time.Millisecond),
	}}
}

// shedLimit derives the admission-queue patience for one request: the
// tighter of the client's deadline hint and the server's -shed-after
// policy. Zero means wait indefinitely.
func (s *server) shedLimit(deadlineMs float64) time.Duration {
	limit := s.shedAfter
	if deadlineMs > 0 {
		d := time.Duration(deadlineMs * float64(time.Millisecond))
		if limit <= 0 || d < limit {
			limit = d
		}
	}
	return limit
}

// admit claims a slot at the -max-inflight gate, observing queue wait. A
// request that cannot be admitted within its shed limit is rejected with
// a Shed response instead of queueing unboundedly: under saturation the
// daemon degrades by refusing late work, not by serving everything late.
func (s *server) admit(req *rpc.Request) *rpc.Response {
	select {
	case s.gate <- struct{}{}:
		s.queueWait.Observe(0)
		return nil
	default:
	}
	start := time.Now()
	if limit := s.shedLimit(req.DeadlineMs); limit > 0 {
		timer := time.NewTimer(limit)
		select {
		case s.gate <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			s.shed.Add(1)
			return &rpc.Response{
				Shed:  true,
				Error: fmt.Sprintf("shed: queued %v at admission gate", limit),
			}
		}
	} else {
		s.gate <- struct{}{}
	}
	s.queueWait.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return nil
}

// transmit serves one message through the pipeline, metering service time.
func (s *server) transmit(req *rpc.Request) *rpc.Response {
	user := req.User
	if user == "" {
		user = "anonymous"
	}
	words := text.Tokenize(req.Text)
	if len(words) == 0 {
		return &rpc.Response{Error: "empty message"}
	}
	if !s.beginOp() {
		return drainingResponse()
	}
	defer s.endOp()
	if s.gate != nil {
		if shed := s.admit(req); shed != nil {
			return shed
		}
		defer func() { <-s.gate }()
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()
	res, err := s.sys.TransmitText(user, words)
	if err != nil {
		return &rpc.Response{Error: err.Error()}
	}
	s.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	s.messages.Add(1)
	if s.mesh != nil {
		s.mesh.TouchUser(user)
		s.mesh.NoteDomain(s.sys.Corpus.Domains[res.SelectedDomain].Name)
	}
	return &rpc.Response{
		OK:             true,
		Restored:       text.Join(res.RestoredWords),
		SelectedDomain: s.sys.Corpus.Domains[res.SelectedDomain].Name,
		Mismatch:       res.Mismatch,
		PayloadBytes:   res.PayloadBytes,
		LatencyMs:      float64(res.Latency) / float64(time.Millisecond),
		CacheHit:       res.EncCacheHit,
		Individual:     res.UsedIndividual,
		UpdateFired:    res.UpdateFired,
	}
}
