// Package edged is the semantic edge daemon behind cmd/edged: the typed
// configuration surface, the request server, and the daemon lifecycle
// (boot, listen, serve, shut down). cmd/edged is a thin flag-parsing
// shell around this package, and tests drive the same code paths the
// binary runs.
//
// A daemon serves one of three deployments:
//
//   - classic: one single-sender two-edge system (the default);
//   - in-process cluster (-nodes N): the sender side is an N-node
//     cluster inside one process;
//   - mesh (-peers ... -mesh-index i): this process is member i of a
//     multi-process cluster; peers cooperate over the v2 wire protocol
//     (see internal/mesh).
package edged

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/rpc"
)

// ConfigError is the typed validation error: it names the offending
// field (by its flag name), the rejected value and the reason, so
// callers can switch on Field instead of parsing message strings.
type ConfigError struct {
	Field  string
	Value  interface{}
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("edged: invalid -%s %v: %s", e.Field, e.Value, e.Reason)
}

// Selector policies the daemon accepts (the oracle selector needs
// ground-truth labels no wire request carries).
var validSelectors = []string{"static", "naivebayes", "sticky", "qlearn", "ucb"}

// Serving kernel tiers the daemon accepts.
var validTiers = []string{"f64", "f32", "int8"}

// Config is the daemon configuration. The zero value is not runnable;
// start from FromFlags (which carries the documented defaults) and
// adjust.
type Config struct {
	// Addr is the TCP listen address.
	Addr string
	// Selector names the model-selection policy.
	Selector string
	// SNRdB is the channel signal-to-noise ratio.
	SNRdB float64
	// Seed is the deterministic system seed (and the mesh ring seed).
	Seed uint64
	// KBDir loads pretrained .kbm models instead of pretraining at boot.
	KBDir string
	// Nodes selects in-process cluster mode when > 1.
	Nodes int
	// PprofAddr exposes net/http/pprof when non-empty.
	PprofAddr string
	// ProfileContention additionally enables mutex and block profiling
	// (runtime.SetMutexProfileFraction / SetBlockProfileRate) so the
	// pprof endpoint can attribute lock contention on the serve path.
	// Requires PprofAddr; the profiles have measurable overhead, so the
	// flag is opt-in.
	ProfileContention bool
	// Workers caps pretraining/kernel parallelism; 0 = GOMAXPROCS.
	Workers int
	// MaxInflight caps concurrently served transmits; 0 = 2x GOMAXPROCS,
	// negative = unlimited.
	MaxInflight int
	// IdleTimeout drops connections idle longer than this; 0 disables.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write; 0 disables.
	WriteTimeout time.Duration
	// BatchWindow enables cross-request batching when > 0.
	BatchWindow time.Duration
	// BatchMaxTokens flushes a collecting batch at this many tokens.
	BatchMaxTokens int
	// ShedAfter sheds transmits queued at the admission gate longer than
	// this; 0 = only shed on client deadline hints.
	ShedAfter time.Duration
	// BufferThreshold is the per-(domain,user) transaction count that
	// triggers an individual-model update; 0 = core default.
	BufferThreshold int
	// Tier names the serving kernel tier.
	Tier string

	// Peers is the full static mesh member list, comma-separated
	// host:port in ring-index order, this process included. Empty
	// disables mesh mode.
	Peers string
	// MeshIndex is this process's position in Peers.
	MeshIndex int
	// ProbeInterval is the mesh liveness-probe period.
	ProbeInterval time.Duration
	// DrainTimeout bounds the graceful drain a SIGTERM triggers: once it
	// expires the daemon falls back to crash-stop. 0 selects 30s.
	DrainTimeout time.Duration
	// Replicas keeps that many mesh ring-successors warm for hot general
	// models (proactive replica pushes); 0 disables replication.
	Replicas int
}

// FromFlags registers every daemon flag on fs with its documented
// default and returns the Config they populate; read it after
// fs.Parse.
func FromFlags(fs *flag.FlagSet) *Config {
	cfg := &Config{}
	fs.StringVar(&cfg.Addr, "addr", ":7060", "listen address")
	fs.StringVar(&cfg.Selector, "selector", "sticky", "model-selection policy ("+strings.Join(validSelectors, "|")+")")
	fs.Float64Var(&cfg.SNRdB, "snr", 12, "channel SNR in dB")
	fs.Uint64Var(&cfg.Seed, "seed", 1, "deterministic seed")
	fs.StringVar(&cfg.KBDir, "kb", "", "directory of pretrained .kbm models (see cmd/semkb); empty pretrains at startup")
	fs.IntVar(&cfg.Nodes, "nodes", 0, "in-process cluster mode: number of sender edge nodes (0/1 = classic single sender)")
	fs.StringVar(&cfg.PprofAddr, "pprof", "", "expose net/http/pprof on this address (e.g. localhost:6060); empty disables")
	fs.BoolVar(&cfg.ProfileContention, "profile-contention", false, "also record mutex and block profiles on the -pprof endpoint (has overhead; requires -pprof)")
	fs.IntVar(&cfg.Workers, "workers", 0, "parallel workers for pretraining and codec kernels (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.MaxInflight, "max-inflight", 0, "max concurrently served transmits (0 = 2x GOMAXPROCS, <0 = unlimited)")
	fs.DurationVar(&cfg.IdleTimeout, "idle-timeout", 5*time.Minute, "per-connection read deadline; 0 disables")
	fs.DurationVar(&cfg.WriteTimeout, "write-timeout", 30*time.Second, "per-response write deadline; 0 disables")
	fs.DurationVar(&cfg.BatchWindow, "batch-window", 0, "cross-request batching window (e.g. 50us); 0 disables batching")
	fs.IntVar(&cfg.BatchMaxTokens, "batch-max-tokens", 0, "flush a collecting batch at this many tokens (0 = default budget)")
	fs.DurationVar(&cfg.ShedAfter, "shed-after", 0, "shed transmits queued at the -max-inflight gate longer than this; 0 = only shed on client deadlines")
	fs.IntVar(&cfg.BufferThreshold, "buffer-threshold", 0, "transactions per (domain,user) before an individual-model update fires (0 = default)")
	fs.StringVar(&cfg.Tier, "tier", "f64", "serving kernel tier ("+strings.Join(validTiers, "|")+"); f64 is bit-exact, f32/int8 trade bounded accuracy for speed")
	fs.StringVar(&cfg.Peers, "peers", "", "mesh mode: full member list, comma-separated host:port in ring-index order (this process included)")
	fs.IntVar(&cfg.MeshIndex, "mesh-index", 0, "mesh mode: this process's position in -peers")
	fs.DurationVar(&cfg.ProbeInterval, "probe-interval", time.Second, "mesh liveness-probe period")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM before falling back to crash-stop")
	fs.IntVar(&cfg.Replicas, "replicas", 0, "mesh mode: keep this many ring-successors warm for hot general models (0 disables replication)")
	return cfg
}

// MeshEnabled reports whether the config selects mesh mode.
func (c *Config) MeshEnabled() bool { return c.Peers != "" }

// MeshMembers parses -peers into the static membership, self included,
// in ring-index order. Call Validate first; this assumes a valid list.
func (c *Config) MeshMembers() []rpc.PeerInfo {
	addrs := strings.Split(c.Peers, ",")
	out := make([]rpc.PeerInfo, len(addrs))
	for i, a := range addrs {
		out[i] = rpc.PeerInfo{Name: fmt.Sprintf("node-%d", i), Index: i, Addr: strings.TrimSpace(a)}
	}
	return out
}

func oneOf(value string, valid []string) bool {
	for _, v := range valid {
		if v == value {
			return true
		}
	}
	return false
}

// Validate checks every field, returning a *ConfigError naming the
// first offending flag.
func (c *Config) Validate() error {
	if c.Addr == "" {
		return &ConfigError{Field: "addr", Value: c.Addr, Reason: "listen address required"}
	}
	if !oneOf(c.Selector, validSelectors) {
		return &ConfigError{Field: "selector", Value: c.Selector, Reason: "unknown policy, want one of " + strings.Join(validSelectors, "|")}
	}
	if !oneOf(c.Tier, validTiers) {
		return &ConfigError{Field: "tier", Value: c.Tier, Reason: "unknown tier, want one of " + strings.Join(validTiers, "|")}
	}
	if c.Nodes < 0 {
		return &ConfigError{Field: "nodes", Value: c.Nodes, Reason: "must be >= 0"}
	}
	if c.ProfileContention && c.PprofAddr == "" {
		return &ConfigError{Field: "profile-contention", Value: c.ProfileContention, Reason: "contention profiles are served over -pprof, which is not set"}
	}
	for _, d := range []struct {
		field string
		v     time.Duration
	}{
		{"idle-timeout", c.IdleTimeout},
		{"write-timeout", c.WriteTimeout},
		{"batch-window", c.BatchWindow},
		{"shed-after", c.ShedAfter},
		{"probe-interval", c.ProbeInterval},
		{"drain-timeout", c.DrainTimeout},
	} {
		if d.v < 0 {
			return &ConfigError{Field: d.field, Value: d.v, Reason: "must be >= 0"}
		}
	}
	if c.BatchMaxTokens < 0 {
		return &ConfigError{Field: "batch-max-tokens", Value: c.BatchMaxTokens, Reason: "must be >= 0"}
	}
	if c.BufferThreshold < 0 {
		return &ConfigError{Field: "buffer-threshold", Value: c.BufferThreshold, Reason: "must be >= 0"}
	}
	if c.Replicas < 0 {
		return &ConfigError{Field: "replicas", Value: c.Replicas, Reason: "must be >= 0"}
	}
	if !c.MeshEnabled() {
		if c.Replicas > 0 {
			return &ConfigError{Field: "replicas", Value: c.Replicas, Reason: "replication needs mesh mode (-peers)"}
		}
		return nil
	}
	if c.Nodes > 1 {
		return &ConfigError{Field: "nodes", Value: c.Nodes, Reason: "in-process cluster and -peers mesh are mutually exclusive"}
	}
	members := strings.Split(c.Peers, ",")
	if len(members) < 2 {
		return &ConfigError{Field: "peers", Value: c.Peers, Reason: "a mesh needs at least 2 members"}
	}
	for i, a := range members {
		a = strings.TrimSpace(a)
		if a == "" || !strings.Contains(a, ":") {
			return &ConfigError{Field: "peers", Value: c.Peers, Reason: fmt.Sprintf("member %d is not a host:port address", i)}
		}
	}
	if c.MeshIndex < 0 || c.MeshIndex >= len(members) {
		return &ConfigError{Field: "mesh-index", Value: c.MeshIndex, Reason: fmt.Sprintf("must be in [0,%d)", len(members))}
	}
	if c.ProbeInterval == 0 {
		return &ConfigError{Field: "probe-interval", Value: c.ProbeInterval, Reason: "mesh mode needs a liveness-probe period"}
	}
	return nil
}
