package edged

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/rpc"
	"repro/internal/semantic"
	"repro/internal/text"
)

var (
	soakOnce     sync.Once
	soakGenerals []*semantic.Codec
)

// soakPretrained trains one small set of general codecs shared by every
// soak/replay system in this file: identical weights are what make the
// served-versus-direct comparison meaningful.
func soakPretrained(t *testing.T) []*semantic.Codec {
	t.Helper()
	soakOnce.Do(func() {
		soakGenerals = semantic.PretrainAll(corpus.Build(), semantic.Config{
			EmbedDim: 12, FeatureDim: 6, HiddenDim: 16,
			Epochs: 2, Sentences: 300, Seed: 11,
		})
	})
	return soakGenerals
}

// soakConfig is the system configuration under soak: sticky selection with
// a small update threshold so fine-tuning and decoder syncs happen under
// concurrent fire.
func soakConfig(t *testing.T) core.Config {
	return core.Config{
		Selector:        core.SelectorSticky,
		PinGeneral:      true,
		BufferThreshold: 8,
		Seed:            11,
		Pretrained:      soakPretrained(t),
	}
}

// startServer boots an in-process daemon on a loopback port and returns
// its address plus a shutdown func that joins the serve loop.
func startServer(t *testing.T, srv *server) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(ln) }()
	return ln.Addr().String(), func() {
		ln.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestSoakConcurrentClients hammers a started daemon with 32 concurrent
// sticky connections across distinct users and checks every response plus
// the exact final counter state.
func TestSoakConcurrentClients(t *testing.T) {
	sys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	const clients, perClient = 32, 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := rpc.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			user := fmt.Sprintf("soak%02d", c)
			gen := corpus.NewGenerator(sys.Corpus, mat.NewRNG(uint64(2000+c)))
			for i := 0; i < perClient; i++ {
				msg := gen.Message(c%len(sys.Corpus.Domains), nil)
				resp, err := cl.Transmit(user, msg.Text())
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", user, err)
					return
				}
				if !resp.OK {
					errCh <- fmt.Errorf("%s message %d: daemon error %q", user, i, resp.Error)
					return
				}
				if resp.Restored == "" || resp.PayloadBytes <= 0 || resp.LatencyMs <= 0 {
					errCh <- fmt.Errorf("%s message %d: implausible response %+v", user, i, resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != clients*perClient {
		t.Fatalf("messages = %d, want exactly %d", st.Messages, clients*perClient)
	}
	if st.Serve == nil {
		t.Fatalf("stats carry no serve metrics: %+v", st)
	}
	if st.Serve.InFlight != 0 {
		t.Fatalf("in-flight gauge stuck at %d after drain", st.Serve.InFlight)
	}
	if st.Serve.LatencyP50Ms <= 0 || st.Serve.LatencyP99Ms < st.Serve.LatencyP50Ms {
		t.Fatalf("latency percentiles implausible: %+v", st.Serve)
	}
	if st.Serve.Shed != 0 {
		t.Fatalf("requests shed without deadlines: %+v", st.Serve)
	}
	if st.SyncCount <= 0 || st.SyncBytes <= 0 {
		t.Fatalf("no decoder updates under soak: %+v", st)
	}
	if st.SenderHitRate <= 0 {
		t.Fatalf("sender cache never hit: %+v", st)
	}
}

// TestSoakBatchedConcurrentClients re-runs the concurrent soak with
// cross-request batching on and asserts every request was served through
// the collector with coherent occupancy accounting.
func TestSoakBatchedConcurrentClients(t *testing.T) {
	cfg := soakConfig(t)
	cfg.BatchWindow = 100 * time.Microsecond
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	const clients, perClient = 16, 6
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := rpc.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			user := fmt.Sprintf("batched%02d", c)
			gen := corpus.NewGenerator(sys.Corpus, mat.NewRNG(uint64(4000+c)))
			for i := 0; i < perClient; i++ {
				resp, err := cl.Transmit(user, gen.Message(c%len(sys.Corpus.Domains), nil).Text())
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", user, err)
					return
				}
				if !resp.OK || resp.Restored == "" {
					errCh <- fmt.Errorf("%s message %d: bad response %+v", user, i, resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	serve := st.Serve
	if serve == nil || serve.BatchedRequests != clients*perClient {
		t.Fatalf("batched requests = %+v, want %d", serve, clients*perClient)
	}
	if serve.Batches <= 0 || serve.Batches > serve.BatchedRequests {
		t.Fatalf("implausible batch count: %+v", serve)
	}
	var occ int64
	for _, n := range serve.BatchOccupancy {
		occ += n
	}
	if occ != serve.Batches {
		t.Fatalf("occupancy histogram sums to %d, want %d batches", occ, serve.Batches)
	}
}

// TestBatchCollectorClientDisconnects soaks the collector against clients
// that vanish mid-batch: each rogue client fires a transmit and slams the
// connection without reading the response, while well-behaved clients
// keep transmitting. The daemon must neither wedge a batch nor leak the
// abandoned work; the race-mode CI job runs this to check the collector's
// synchronization. Every submitted transmit is still executed (the server
// only notices the dead peer at write time), so the batched-request
// accounting stays exact.
func TestBatchCollectorClientDisconnects(t *testing.T) {
	cfg := soakConfig(t)
	cfg.BatchWindow = 200 * time.Microsecond
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	const rogues, good, perClient = 8, 8, 6
	var wg sync.WaitGroup
	errCh := make(chan error, rogues+good)
	for c := 0; c < rogues; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := corpus.NewGenerator(sys.Corpus, mat.NewRNG(uint64(5000+c)))
			for i := 0; i < perClient; i++ {
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					errCh <- err
					return
				}
				// Raw wire-level write, then vanish before the response
				// lands: the transmit is mid-batch when the peer
				// disappears. rpc.Client cannot express this (Do always
				// reads the response), so this one test speaks the frame
				// protocol directly.
				req := rpc.Request{
					Op:   rpc.OpTransmit,
					User: fmt.Sprintf("rogue%02d", c),
					Text: gen.Message(c%len(sys.Corpus.Domains), nil).Text(),
				}
				err = rpc.Write(conn, &req)
				conn.Close()
				if err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	for c := 0; c < good; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := rpc.Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			user := fmt.Sprintf("good%02d", c)
			gen := corpus.NewGenerator(sys.Corpus, mat.NewRNG(uint64(6000+c)))
			for i := 0; i < perClient; i++ {
				resp, err := cl.TransmitDeadline(user, gen.Message(c%len(sys.Corpus.Domains), nil).Text(), 30*time.Second)
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", user, err)
					return
				}
				if !resp.OK {
					errCh <- fmt.Errorf("%s message %d: daemon error %q", user, i, resp.Error)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The daemon must still be fully serviceable, with every transmit —
	// including the abandoned ones — accounted as batched.
	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		// Rogue transmits may still be draining when the clients exit;
		// poll until the counters settle.
		if st.Serve != nil && st.Serve.BatchedRequests == (rogues+good)*perClient && st.Serve.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector never drained: %+v", st.Serve)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServedMatchesDirectSerialReplay replays one user's message sequence
// through a served daemon and through a direct identically-seeded System,
// and requires bit-identical results field by field — the serve path must
// add no behavior.
func TestServedMatchesDirectSerialReplay(t *testing.T) {
	direct, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	servedSys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(servedSys, 0)
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	gen := corpus.NewGenerator(direct.Corpus, mat.NewRNG(77))
	for i := 0; i < 40; i++ {
		words := gen.Message(i%len(direct.Corpus.Domains), nil).Words
		want, err := direct.TransmitText("replay", words)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Transmit("replay", strings.Join(words, " "))
		if err != nil {
			t.Fatal(err)
		}
		if !got.OK {
			t.Fatalf("message %d: daemon error %q", i, got.Error)
		}
		if got.Restored != text.Join(want.RestoredWords) {
			t.Fatalf("message %d: restored %q != direct %q", i, got.Restored, text.Join(want.RestoredWords))
		}
		if got.SelectedDomain != direct.Corpus.Domains[want.SelectedDomain].Name {
			t.Fatalf("message %d: domain %q != direct %q", i, got.SelectedDomain, direct.Corpus.Domains[want.SelectedDomain].Name)
		}
		if got.Mismatch != want.Mismatch {
			t.Fatalf("message %d: mismatch %v != direct %v", i, got.Mismatch, want.Mismatch)
		}
		if got.PayloadBytes != want.PayloadBytes {
			t.Fatalf("message %d: payload %d != direct %d", i, got.PayloadBytes, want.PayloadBytes)
		}
		if got.LatencyMs != float64(want.Latency)/float64(time.Millisecond) {
			t.Fatalf("message %d: latency %v != direct %v", i, got.LatencyMs, want.Latency)
		}
		if got.CacheHit != want.EncCacheHit || got.Individual != want.UsedIndividual || got.UpdateFired != want.UpdateFired {
			t.Fatalf("message %d: flags %+v != direct %+v", i, got, want)
		}
	}
}

// TestBatchedServedMatchesDirectSerialReplay is the replay check with
// cross-request batching on: a serial client stream through a batching
// daemon must still be bit-identical to the direct system, field by field
// — the collector must add no behavior even when every batch holds one
// request.
func TestBatchedServedMatchesDirectSerialReplay(t *testing.T) {
	direct, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := soakConfig(t)
	cfg.BatchWindow = 50 * time.Microsecond
	servedSys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(servedSys, 0)
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	gen := corpus.NewGenerator(direct.Corpus, mat.NewRNG(78))
	for i := 0; i < 24; i++ {
		words := gen.Message(i%len(direct.Corpus.Domains), nil).Words
		want, err := direct.TransmitText("replay", words)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.Transmit("replay", strings.Join(words, " "))
		if err != nil {
			t.Fatal(err)
		}
		if !got.OK {
			t.Fatalf("message %d: daemon error %q", i, got.Error)
		}
		if got.Restored != text.Join(want.RestoredWords) ||
			got.Mismatch != want.Mismatch ||
			got.PayloadBytes != want.PayloadBytes ||
			got.LatencyMs != float64(want.Latency)/float64(time.Millisecond) ||
			got.CacheHit != want.EncCacheHit ||
			got.Individual != want.UsedIndividual ||
			got.UpdateFired != want.UpdateFired {
			t.Fatalf("message %d: batched serve diverged:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestStalledClientDisconnected checks the read deadline: a connection
// that sends nothing must be dropped instead of pinning its goroutine.
func TestStalledClientDisconnected(t *testing.T) {
	sys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	srv.idleTimeout = 50 * time.Millisecond
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Send nothing. The server must close the connection, surfacing as
	// EOF/reset here — not as our own read deadline expiring.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection still open")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never dropped the stalled connection")
	}
}

// TestAdmissionShedding saturates a 1-slot gate with a slow transmit and
// checks a tight-deadline request is shed with the typed response instead
// of queueing, and that the shed counter and queue-wait histogram record
// the event.
func TestAdmissionShedding(t *testing.T) {
	sys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 1)
	srv.shedAfter = 20 * time.Millisecond
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	// Occupy the only slot directly so the timing is deterministic.
	srv.gate <- struct{}{}
	defer func() { <-srv.gate }()

	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// The client's own patience is ample: the server's -shed-after policy
	// is what rejects the request, and the client still gets the answer.
	resp, err := cl.TransmitDeadline("impatient", "the server is down", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !resp.Shed {
		t.Fatalf("saturated gate served anyway: %+v", resp)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Serve == nil || st.Serve.Shed != 1 {
		t.Fatalf("shed counter = %+v, want 1", st.Serve)
	}
	if st.Messages != 0 {
		t.Fatalf("shed request counted as served: %+v", st)
	}
}
