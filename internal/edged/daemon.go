package edged

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers for PprofAddr
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/edge"
	"repro/internal/mat"
	"repro/internal/mesh"
	"repro/internal/rpc"
	"repro/internal/semantic"
)

// loadKB loads one pretrained codec per corpus domain from dir (files
// written by cmd/semkb), in domain order.
func loadKB(dir string) ([]*semantic.Codec, error) {
	corp := corpus.Build()
	out := make([]*semantic.Codec, len(corp.Domains))
	for i, d := range corp.Domains {
		path := filepath.Join(dir, d.Name+".kbm")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("edged: %w (run `semkb -pretrain -out %s` first)", err, dir)
		}
		codec, err := semantic.ReadCodec(f, corp)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("edged: %s: %w", path, err)
		}
		if codec.Domain().Name != d.Name {
			return nil, fmt.Errorf("edged: %s holds domain %q, want %q", path, codec.Domain().Name, d.Name)
		}
		out[i] = codec
	}
	return out, nil
}

// Daemon is one booted edged instance: the serving system, the optional
// mesh membership, and the request server, ready to Listen and Serve.
type Daemon struct {
	Cfg  Config
	Sys  *core.System
	Mesh *mesh.Node // nil outside mesh mode

	srv      *server
	ln       net.Listener
	draining atomic.Bool
}

// New validates cfg and boots the daemon: models pretrained or loaded,
// system built, caches warmed (in mesh mode only member 0 warms its
// sender — peers fill cooperatively, which is the behavior the mesh
// exists to show), mesh membership constructed. It does not listen yet.
func New(cfg Config) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		mat.SetParallelism(cfg.Workers)
	}
	if cfg.PprofAddr != "" {
		if cfg.ProfileContention {
			// Opt-in contention observability: sample every mutex hold
			// and every blocking event so /debug/pprof/mutex and
			// /debug/pprof/block show where serve-path goroutines wait.
			// This is how the per-user channel lock was measured before
			// the pooled lock-free stage replaced it.
			runtime.SetMutexProfileFraction(1)
			runtime.SetBlockProfileRate(1)
		}
		// The pprof mux registers on http.DefaultServeMux via the blank
		// import; serving it on a side port lets `go tool pprof` attach to
		// a live daemon and profile serving hotspots under real load.
		go func() {
			log.Printf("edged: pprof on http://%s/debug/pprof/", cfg.PprofAddr)
			if err := http.ListenAndServe(cfg.PprofAddr, nil); err != nil {
				log.Printf("edged: pprof server: %v", err)
			}
		}()
	}

	coreCfg := core.Config{
		Selector:        cfg.Selector,
		SNRdB:           cfg.SNRdB,
		PinGeneral:      true,
		Seed:            cfg.Seed,
		Nodes:           cfg.Nodes,
		BatchWindow:     cfg.BatchWindow,
		BatchMaxTokens:  cfg.BatchMaxTokens,
		BufferThreshold: cfg.BufferThreshold,
		Tier:            cfg.Tier,
	}
	var node *mesh.Node
	if cfg.MeshEnabled() {
		members := cfg.MeshMembers()
		self := members[cfg.MeshIndex]
		others := append(append([]rpc.PeerInfo{}, members[:cfg.MeshIndex]...), members[cfg.MeshIndex+1:]...)
		var err error
		node, err = mesh.NewNode(mesh.Config{
			Self:          self,
			Peers:         others,
			RingSeed:      cfg.Seed,
			ProbeInterval: cfg.ProbeInterval,
			Replicas:      cfg.Replicas,
			Logf:          log.Printf,
		})
		if err != nil {
			return nil, err
		}
		// A mesh member is a single-sender system named after its ring
		// slot, with the mesh as its miss resolver and per-user noise on
		// — the combination that makes the multi-process deployment
		// bit-identical to the in-process cluster.
		coreCfg.SenderName = self.Name
		coreCfg.SenderFetcher = node
		coreCfg.PerUserNoise = true
	}
	start := time.Now()
	if cfg.KBDir != "" {
		log.Printf("edged: loading pretrained models from %s...", cfg.KBDir)
		pretrained, err := loadKB(cfg.KBDir)
		if err != nil {
			return nil, err
		}
		coreCfg.Pretrained = pretrained
	} else {
		log.Printf("edged: pretraining general models (selector=%s, snr=%.1f dB)...", cfg.Selector, cfg.SNRdB)
	}
	sys, err := core.NewSystem(coreCfg)
	if err != nil {
		return nil, err
	}
	if node != nil {
		node.Bind(sys, edge.NewOriginFetcher(sys.Cloud, sys.CloudLink()))
		// Coordinated eviction: a mesh member must not evict the mesh's
		// last copy of a general model.
		sys.Sender.Cache().SetEvictionGuard(node.EvictionGuard)
	}
	// In cluster mode only node 0 (= sys.Sender) is warmed; likewise a
	// mesh warms only member 0's sender. The other nodes pull models
	// cooperatively from their neighbors on first miss, which is exactly
	// the behavior the cluster exists to show.
	if node == nil || node.Self().Index == 0 {
		if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
			return nil, err
		}
	}
	if _, err := sys.Receiver.Prefetch(sys.Corpus.Names()); err != nil {
		return nil, err
	}
	if sys.Cluster != nil {
		log.Printf("edged: cluster mode, %d nodes (node-0 warm, peers cold)", sys.Cluster.NumNodes())
	}
	if node != nil {
		log.Printf("edged: mesh mode, member %s (%d/%d)", node.Self().Name, node.Self().Index, node.Total())
	}
	log.Printf("edged: ready in %v (domains: %v)", time.Since(start).Round(time.Millisecond), sys.Corpus.Names())

	srv := newServer(sys, cfg.MaxInflight)
	srv.mesh = node
	srv.idleTimeout = cfg.IdleTimeout
	srv.writeTimeout = cfg.WriteTimeout
	srv.shedAfter = cfg.ShedAfter
	return &Daemon{Cfg: cfg, Sys: sys, Mesh: node, srv: srv}, nil
}

// Listen binds the daemon's TCP listener.
func (d *Daemon) Listen() error {
	ln, err := net.Listen("tcp", d.Cfg.Addr)
	if err != nil {
		return err
	}
	d.ln = ln
	log.Printf("edged: listening on %s", ln.Addr())
	return nil
}

// ListenOn adopts a pre-bound listener instead of binding Cfg.Addr —
// mesh tests reserve every member's port up front, because the static
// peer list must be complete before any member boots.
func (d *Daemon) ListenOn(ln net.Listener) { d.ln = ln }

// Addr returns the bound listen address (useful with ":0").
func (d *Daemon) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Serve runs the accept loop until Close (or an accept error), after
// announcing this member to its mesh peers. It drains in-flight
// handlers before returning.
func (d *Daemon) Serve() error {
	if d.ln == nil {
		if err := d.Listen(); err != nil {
			return err
		}
	}
	if d.Mesh != nil {
		d.Mesh.Start()
	}
	if d.Cfg.BatchWindow > 0 {
		log.Printf("edged: cross-request batching on (window %v)", d.Cfg.BatchWindow)
	}
	err := d.srv.serve(d.ln)
	if d.Mesh != nil {
		d.Mesh.Stop()
	}
	return err
}

// Close stops the daemon gracefully: the mesh membership announces its
// departure, the listener stops accepting, and idle connections close
// so Serve can drain the busy ones and return. Safe to call more than
// once.
func (d *Daemon) Close() {
	if d.Mesh != nil {
		d.Mesh.Stop()
	}
	if d.ln != nil {
		d.ln.Close()
	}
	d.srv.closeIdleConns()
}

// Drain removes the daemon from service gracefully: new transmits and
// moves park at the drain gate, in-flight ones finish, and the mesh
// membership hands every owned model and tracked user to the new
// consistent-hash owners before announcing departure (see mesh.Drain).
// Parked requests are answered with Draining only after the handoff
// completes, so a client that retries at the new owner finds its state
// already there. The whole drain is bounded by -drain-timeout; on
// expiry (or a handoff error) the daemon falls back to crash-stop
// semantics for whatever is left. Repeated calls are no-ops.
func (d *Daemon) Drain() error {
	if !d.draining.CompareAndSwap(false, true) {
		return nil
	}
	budget := d.Cfg.DrainTimeout
	if budget <= 0 {
		budget = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	// finishDrain must run on every path: it releases the handlers parked
	// at the drain gate, without which Serve's handler drain never ends.
	defer d.srv.finishDrain()
	d.srv.beginDrain()
	err := d.srv.awaitIdle(ctx)
	if err == nil && d.Mesh != nil {
		err = d.Mesh.Drain(ctx)
	}
	if err != nil {
		log.Printf("edged: drain: %v; falling back to crash-stop", err)
		d.Kill()
		return err
	}
	log.Printf("edged: drain complete")
	d.Close()
	return nil
}

// Kill emulates a process death: the mesh membership is aborted without
// announcing departure (peers must discover the loss through their
// liveness probes, exactly as with a real SIGKILL), the listener closes
// and every open connection is severed mid-stream.
func (d *Daemon) Kill() {
	if d.Mesh != nil {
		d.Mesh.Abort()
	}
	d.Close()
	d.srv.killConns()
}
