package edged

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/semantic"
)

var (
	srvOnce sync.Once
	srvInst *server
	srvErr  error
)

// testServer boots one daemon-side server with small codecs.
func testServer(t *testing.T) *server {
	t.Helper()
	srvOnce.Do(func() {
		sys, err := core.NewSystem(core.Config{
			Selector:   core.SelectorSticky,
			PinGeneral: true,
			Seed:       3,
			Codec: semantic.Config{
				EmbedDim: 12, FeatureDim: 8, HiddenDim: 16,
				Epochs: 3, Sentences: 500,
			},
		})
		if err != nil {
			srvErr = err
			return
		}
		if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
			srvErr = err
			return
		}
		if _, err := sys.Receiver.Prefetch(sys.Corpus.Names()); err != nil {
			srvErr = err
			return
		}
		srvInst = newServer(sys, 0)
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvInst
}

func TestDispatchPing(t *testing.T) {
	s := testServer(t)
	resp := s.dispatch(&rpc.Request{Op: rpc.OpPing})
	if !resp.OK {
		t.Fatalf("ping failed: %+v", resp)
	}
}

func TestDispatchTransmit(t *testing.T) {
	s := testServer(t)
	resp := s.dispatch(&rpc.Request{
		Op:   rpc.OpTransmit,
		User: "alice",
		Text: "the server has a kernel bug",
	})
	if !resp.OK {
		t.Fatalf("transmit failed: %+v", resp)
	}
	if resp.SelectedDomain != "it" {
		t.Fatalf("selected domain = %q, want it", resp.SelectedDomain)
	}
	if resp.Restored == "" || resp.PayloadBytes <= 0 || resp.LatencyMs <= 0 {
		t.Fatalf("implausible response: %+v", resp)
	}
	if !strings.Contains(resp.Restored, "server") {
		t.Fatalf("restored %q lost the message", resp.Restored)
	}
}

func TestDispatchTransmitEmpty(t *testing.T) {
	s := testServer(t)
	resp := s.dispatch(&rpc.Request{Op: rpc.OpTransmit, Text: "  !!  "})
	if resp.OK || resp.Error == "" {
		t.Fatal("empty message accepted")
	}
}

func TestDispatchStats(t *testing.T) {
	s := testServer(t)
	// One transmit so counters are non-trivial.
	s.dispatch(&rpc.Request{Op: rpc.OpTransmit, User: "bob", Text: "the doctor will scan the patient"})
	resp := s.dispatch(&rpc.Request{Op: rpc.OpStats})
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats failed: %+v", resp)
	}
	if resp.Stats.Messages < 1 || resp.Stats.CachedModels < 8 {
		t.Fatalf("stats implausible: %+v", resp.Stats)
	}
}

func TestDispatchUnknownOp(t *testing.T) {
	s := testServer(t)
	resp := s.dispatch(&rpc.Request{Op: "teleport"})
	if resp.OK || resp.Error == "" {
		t.Fatal("unknown op accepted")
	}
}
