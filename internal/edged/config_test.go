package edged

import (
	"errors"
	"flag"
	"testing"
)

// defaultConfig parses an empty command line: the documented defaults.
func defaultConfig(t *testing.T, args ...string) *Config {
	t.Helper()
	fs := flag.NewFlagSet("edged", flag.ContinueOnError)
	cfg := FromFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestFromFlagsDefaultsValidate(t *testing.T) {
	cfg := defaultConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if cfg.Addr != ":7060" || cfg.Selector != "sticky" || cfg.Tier != "f64" || cfg.Seed != 1 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if cfg.MeshEnabled() {
		t.Fatal("mesh enabled by default")
	}
}

// TestValidateTypedErrors checks every rejection is a *ConfigError
// naming the offending flag, so callers can switch on Field.
func TestValidateTypedErrors(t *testing.T) {
	cases := []struct {
		name  string
		args  []string
		field string
	}{
		{"bad selector", []string{"-selector", "psychic"}, "selector"},
		{"bad tier", []string{"-tier", "f16"}, "tier"},
		{"negative nodes", []string{"-nodes", "-2"}, "nodes"},
		{"negative window", []string{"-batch-window", "-1ms"}, "batch-window"},
		{"negative shed", []string{"-shed-after", "-1s"}, "shed-after"},
		{"contention without pprof", []string{"-profile-contention"}, "profile-contention"},
		{"one-member mesh", []string{"-peers", "localhost:7060"}, "peers"},
		{"malformed peer", []string{"-peers", "localhost:7060,nonsense"}, "peers"},
		{"mesh index out of range", []string{"-peers", "a:1,b:2", "-mesh-index", "2"}, "mesh-index"},
		{"mesh vs cluster", []string{"-peers", "a:1,b:2", "-nodes", "3"}, "nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := defaultConfig(t, tc.args...).Validate()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("want *ConfigError, got %v", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("error names field %q, want %q (%v)", ce.Field, tc.field, err)
			}
		})
	}
}

// TestProfileContentionFlag checks the contention-profiling opt-in: off
// by default, accepted alongside -pprof, rejected without it (covered in
// TestValidateTypedErrors).
func TestProfileContentionFlag(t *testing.T) {
	if cfg := defaultConfig(t); cfg.ProfileContention {
		t.Fatal("contention profiling on by default")
	}
	cfg := defaultConfig(t, "-pprof", "localhost:6060", "-profile-contention")
	if err := cfg.Validate(); err != nil {
		t.Fatalf("contention profiling with -pprof rejected: %v", err)
	}
	if !cfg.ProfileContention {
		t.Fatal("flag did not set ProfileContention")
	}
}

func TestMeshMembers(t *testing.T) {
	cfg := defaultConfig(t, "-peers", "h0:1, h1:2,h2:3", "-mesh-index", "1")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	members := cfg.MeshMembers()
	if len(members) != 3 {
		t.Fatalf("got %d members", len(members))
	}
	for i, m := range members {
		if m.Index != i || m.Name != "node-"+string(rune('0'+i)) {
			t.Fatalf("member %d = %+v", i, m)
		}
	}
	if members[1].Addr != "h1:2" {
		t.Fatalf("member 1 addr %q (whitespace not trimmed?)", members[1].Addr)
	}
}
