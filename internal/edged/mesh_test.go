package edged

import (
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/rpc"
)

// testCtx is a per-test context bounded by a generous deadline.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

var meshKB struct {
	once sync.Once
	dir  string
	err  error
}

// meshKBDir writes the shared small pretrained codecs (soakPretrained)
// to .kbm files once per test binary: every daemon in these tests boots
// through the real -kb load path with identical weights, without paying
// pretraining per daemon.
func meshKBDir(t *testing.T) string {
	t.Helper()
	meshKB.once.Do(func() {
		dir, err := os.MkdirTemp("", "edged-mesh-kb-*")
		if err != nil {
			meshKB.err = err
			return
		}
		for _, codec := range soakPretrained(t) {
			f, err := os.Create(filepath.Join(dir, codec.Domain().Name+".kbm"))
			if err != nil {
				meshKB.err = err
				return
			}
			_, werr := codec.WriteTo(f)
			cerr := f.Close()
			if werr != nil || cerr != nil {
				meshKB.err = fmt.Errorf("write kb: %v / %v", werr, cerr)
				return
			}
		}
		meshKB.dir = dir
	})
	if meshKB.err != nil {
		t.Fatal(meshKB.err)
	}
	return meshKB.dir
}

// meshBaseConfig is the deployment-independent part: soakConfig's
// scenario (sticky, seed 11, threshold 8) expressed through the daemon's
// own Config surface.
func meshBaseConfig(t *testing.T) Config {
	cfg := *defaultConfig(t)
	cfg.Seed = 11
	cfg.KBDir = meshKBDir(t)
	cfg.BufferThreshold = 8
	cfg.ProbeInterval = 50 * time.Millisecond
	return cfg
}

// meshDeployment is a booted multi-process-shaped mesh: one Daemon per
// member, each on its own TCP listener, cooperating over the wire only.
type meshDeployment struct {
	daemons []*Daemon
	addrs   []string
	done    []chan error
}

// bootMesh reserves n loopback ports first (the static -peers list must
// be complete before any member boots), then builds and serves each
// member.
func bootMesh(t *testing.T, n int) *meshDeployment {
	t.Helper()
	return bootMeshCfg(t, n, nil)
}

// bootMeshCfg is bootMesh with a per-member config hook (replication
// degree, drain budget, ...), applied after the mesh fields are set.
func bootMeshCfg(t *testing.T, n int, mutate func(i int, cfg *Config)) *meshDeployment {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	peers := ""
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
		if i > 0 {
			peers += ","
		}
		peers += addrs[i]
	}
	m := &meshDeployment{addrs: addrs, daemons: make([]*Daemon, n), done: make([]chan error, n)}
	for i := 0; i < n; i++ {
		cfg := meshBaseConfig(t)
		cfg.Addr = addrs[i]
		cfg.Peers = peers
		cfg.MeshIndex = i
		if mutate != nil {
			mutate(i, &cfg)
		}
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.ListenOn(lns[i])
		m.daemons[i] = d
		m.done[i] = make(chan error, 1)
		go func(i int) { m.done[i] <- d.Serve() }(i)
	}
	t.Cleanup(func() {
		for i, d := range m.daemons {
			d.Close()
			if err := <-m.done[i]; err != nil {
				t.Errorf("node %d serve: %v", i, err)
			}
		}
	})
	return m
}

// meshRouter routes requests the way cmd/semload does in mesh mode:
// client-side consistent hashing over the members it believes alive,
// with explicit per-user overrides after moves. Routing authority lives
// in the client — the mesh's ring exists for move targets and probe
// order, not request admission.
type meshRouter struct {
	t        *testing.T
	m        *meshDeployment
	alive    map[int]bool
	ring     *cluster.Ring
	override map[string]int
	clients  map[int]*rpc.Client
	seed     uint64
}

func newMeshRouter(t *testing.T, m *meshDeployment, seed uint64) *meshRouter {
	r := &meshRouter{
		t: t, m: m, seed: seed,
		alive:    make(map[int]bool),
		override: make(map[string]int),
		clients:  make(map[int]*rpc.Client),
	}
	for i := range m.daemons {
		r.alive[i] = true
	}
	r.rebuild()
	t.Cleanup(r.closeAll)
	return r
}

func (r *meshRouter) rebuild() {
	members := []int{}
	for i, ok := range r.alive {
		if ok {
			members = append(members, i)
		}
	}
	r.ring = cluster.NewRingFor(members, 64, r.seed)
	for u, n := range r.override {
		if !r.alive[n] {
			delete(r.override, u)
		}
	}
}

func (r *meshRouter) closeAll() {
	for _, c := range r.clients {
		c.Close()
	}
	r.clients = make(map[int]*rpc.Client)
}

func (r *meshRouter) client(node int) (*rpc.Client, error) {
	if c, ok := r.clients[node]; ok {
		return c, nil
	}
	c, err := rpc.Dial(r.m.addrs[node])
	if err != nil {
		return nil, err
	}
	r.clients[node] = c
	return c, nil
}

func (r *meshRouter) owner(user string) int {
	if n, ok := r.override[user]; ok {
		return n
	}
	return r.ring.Node(user)
}

// markDead records a discovered death and re-routes.
func (r *meshRouter) markDead(node int) {
	if c, ok := r.clients[node]; ok {
		c.Close()
		delete(r.clients, node)
	}
	if r.alive[node] {
		r.alive[node] = false
		r.rebuild()
	}
}

// transmit sends to the user's owner; on a dead member it marks the
// death, re-routes and retries — the client-side half of a rebalance.
// Retried requests are not client-visible errors; a failure on a member
// believed alive is.
func (r *meshRouter) transmit(user, text string) (*rpc.Response, int, error) {
	for attempt := 0; attempt < len(r.m.daemons)+1; attempt++ {
		node := r.owner(user)
		cl, err := r.client(node)
		if err != nil {
			r.markDead(node)
			continue
		}
		resp, err := cl.Transmit(user, text)
		if err != nil {
			r.markDead(node)
			continue
		}
		if resp.Draining {
			// The member answered only after its handoff completed, so the
			// retry at the recomputed owner finds the user's state in place.
			r.markDead(node)
			continue
		}
		return resp, attempt, nil
	}
	return nil, 0, fmt.Errorf("transmit %s: no live member", user)
}

// move sends a move op to the user's current serving member and applies
// the resulting ownership override locally.
func (r *meshRouter) move(user string, cell int) (*rpc.Response, error) {
	node := r.owner(user)
	cl, err := r.client(node)
	if err != nil {
		return nil, err
	}
	resp, err := cl.Move(user, cell)
	if err != nil {
		return nil, err
	}
	if resp.OK && resp.Handover != nil {
		members := []int{}
		for i, ok := range r.alive {
			if ok {
				members = append(members, i)
			}
		}
		// Same target rule as mesh.Node.MoveUser over sorted live members.
		sortInts(members)
		r.override[user] = members[((cell%len(members))+len(members))%len(members)]
	}
	return resp, err
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// nodeStats fetches one member's mesh counters over the v2 op.
func (r *meshRouter) nodeStats(node int) (*rpc.NodeStats, error) {
	cl, err := r.client(node)
	if err != nil {
		return nil, err
	}
	return cl.PeerStats(testCtx(r.t))
}

// mergedStats merges every live member's v1 stats snapshot — the
// aggregation cmd/semload reports for a mesh.
func (r *meshRouter) mergedStats() (*rpc.Stats, error) {
	var merged *rpc.Stats
	for i := range r.m.daemons {
		if !r.alive[i] {
			continue
		}
		cl, err := r.client(i)
		if err != nil {
			return nil, err
		}
		st, err := cl.Stats()
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = st
		} else {
			merged.Merge(st)
		}
	}
	return merged, nil
}

// TestMeshMatchesInProcessCluster is the tentpole acceptance criterion:
// a mobility-free serial workload against a 3-process mesh produces the
// same run digest as the identical workload against one `edged -nodes 3`
// in-process cluster daemon — bit-identity across the process boundary,
// noise realizations included. The cooperative-fetch accounting must
// agree too.
func TestMeshMatchesInProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh acceptance run in -short mode")
	}
	const users, requests = 6, 180
	corp := corpus.Build()

	workload := func(transmit func(user, text string) *rpc.Response) uint64 {
		root := mat.NewRNG(4242)
		sched := root.Split()
		gens := make([]*corpus.Generator, users)
		for i := range gens {
			gens[i] = corpus.NewGenerator(corp, root.Split())
		}
		var digest uint64
		for i := 0; i < requests; i++ {
			u := sched.Intn(users)
			user := fmt.Sprintf("u%03d", u)
			resp := transmit(user, gens[u].Message(u%len(corp.Domains), nil).Text())
			if !resp.OK {
				t.Fatalf("request %d failed: %q", i, resp.Error)
			}
			fold(&digest, "transmit", user, resp.Restored, resp.SelectedDomain,
				strconv.FormatUint(math.Float64bits(resp.Mismatch), 16),
				strconv.Itoa(resp.PayloadBytes),
				strconv.FormatUint(math.Float64bits(resp.LatencyMs), 16))
		}
		return digest
	}

	// Reference: one in-process cluster daemon, exactly `edged -nodes 3`.
	refCfg := meshBaseConfig(t)
	refCfg.Addr = "127.0.0.1:0"
	refCfg.Nodes = 3
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Listen(); err != nil {
		t.Fatal(err)
	}
	refDone := make(chan error, 1)
	go func() { refDone <- ref.Serve() }()
	defer func() {
		ref.Close()
		if err := <-refDone; err != nil {
			t.Errorf("reference serve: %v", err)
		}
	}()
	refCl, err := rpc.Dial(ref.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer refCl.Close()
	refDigest := workload(func(user, text string) *rpc.Response {
		resp, err := refCl.Transmit(user, text)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	})
	refStats, err := refCl.Stats()
	if err != nil {
		t.Fatal(err)
	}

	// Candidate: three cooperating processes-in-miniature.
	m := bootMesh(t, 3)
	router := newMeshRouter(t, m, 11)
	meshDigest := workload(func(user, text string) *rpc.Response {
		resp, _, err := router.transmit(user, text)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	})
	meshStats, err := router.mergedStats()
	if err != nil {
		t.Fatal(err)
	}

	if meshDigest != refDigest {
		t.Fatalf("mesh run diverged from in-process cluster: %016x != %016x", meshDigest, refDigest)
	}
	if meshStats.Messages != refStats.Messages {
		t.Fatalf("messages: mesh %d, cluster %d", meshStats.Messages, refStats.Messages)
	}
	sumNeighbor := func(st *rpc.Stats) (hits, served int64) {
		for _, n := range st.Nodes {
			hits += n.NeighborHits
			served += n.NeighborServed
		}
		return
	}
	mh, ms := sumNeighbor(meshStats)
	rh, rs := sumNeighbor(refStats)
	if mh == 0 {
		t.Fatal("mesh run resolved no misses cooperatively")
	}
	if mh != rh || ms != rs {
		t.Fatalf("cooperative-fetch accounting diverged: mesh %d/%d, cluster %d/%d", mh, ms, rh, rs)
	}
	if meshStats.Handovers != 0 || refStats.Handovers != 0 {
		t.Fatalf("mobility-free run reported handovers: mesh %d, cluster %d", meshStats.Handovers, refStats.Handovers)
	}
	if meshStats.CachedModels != refStats.CachedModels {
		t.Fatalf("cached models: mesh %d, cluster %d", meshStats.CachedModels, refStats.CachedModels)
	}
}

// TestMeshMobilityHandover moves a personalized user between mesh
// members: the v1 move op on the serving member must push the user's
// individual models and noise sequence to the new owner over the wire,
// and the first transmit there must already serve from the migrated
// individual model.
func TestMeshMobilityHandover(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh handover run in -short mode")
	}
	m := bootMesh(t, 3)
	router := newMeshRouter(t, m, 11)
	corp := corpus.Build()

	user := "wanderer"
	from := router.owner(user)
	gen := corpus.NewGenerator(corp, mat.NewRNG(99))
	// Enough single-domain traffic to fire the update (threshold 8), so
	// the handover has a real payload.
	var sawIndividual bool
	for i := 0; i < 10; i++ {
		resp, _, err := router.transmit(user, gen.Message(0, nil).Text())
		if err != nil || !resp.OK {
			t.Fatalf("warmup %d: %+v, %v", i, resp, err)
		}
		sawIndividual = sawIndividual || resp.Individual
	}
	if !sawIndividual {
		t.Fatal("update process never personalized the user; handover would be empty")
	}

	// Pick a cell that lands on a different member.
	cell := 0
	for ; cell < 3; cell++ {
		if cell%3 != from {
			break
		}
	}
	resp, err := router.move(user, cell)
	if err != nil || !resp.OK || resp.Handover == nil {
		t.Fatalf("move failed: %+v, %v", resp, err)
	}
	h := resp.Handover
	if !h.Moved || h.From == h.To {
		t.Fatalf("move did not change the serving member: %+v", h)
	}
	if h.Models == 0 || h.MigratedBytes <= 0 || h.LatencyMs <= 0 {
		t.Fatalf("handover carried nothing: %+v", h)
	}
	to := router.owner(user)
	if to == from {
		t.Fatalf("router still maps %s to %d", user, from)
	}

	// The new owner serves from the migrated individual model at once.
	resp2, _, err := router.transmit(user, gen.Message(0, nil).Text())
	if err != nil || !resp2.OK {
		t.Fatalf("post-handover transmit: %+v, %v", resp2, err)
	}
	if !resp2.Individual {
		t.Fatal("post-handover transmit fell back to the general model: migration lost the individual model")
	}

	oldStats, err := router.nodeStats(from)
	if err != nil {
		t.Fatal(err)
	}
	newStats, err := router.nodeStats(to)
	if err != nil {
		t.Fatal(err)
	}
	if oldStats.HandoversOut != 1 || newStats.HandoversIn != 1 {
		t.Fatalf("handover counters: out %d (want 1), in %d (want 1)", oldStats.HandoversOut, newStats.HandoversIn)
	}
}

// TestMeshOpsRequireV2 pins the wire-compat contract: v1 clients keep
// full access to the classic ops, and mesh ops on a v1 frame are
// rejected with the protocol error, never silently served.
func TestMeshOpsRequireV2(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh boot in -short mode")
	}
	m := bootMesh(t, 2)

	// v1 surface intact.
	cl, err := rpc.Dial(m.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Transmit("v1user", "the server has a kernel bug")
	if err != nil || !resp.OK {
		t.Fatalf("v1 transmit: %+v, %v", resp, err)
	}

	// A mesh op framed at v1 must bounce with the version error.
	conn, err := net.Dial("tcp", m.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	self := m.daemons[1].Mesh.Self()
	if err := rpc.Write(conn, &rpc.Request{Op: rpc.OpJoin, Peer: &self}); err != nil {
		t.Fatal(err)
	}
	v1resp, err := rpc.ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if v1resp.OK || v1resp.Error != rpc.ErrMeshOpVersion.Error() {
		t.Fatalf("v1-framed mesh op not rejected: %+v", v1resp)
	}

	// The same op at v2 is served.
	peers, err := cl.Join(testCtx(t), self)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 {
		t.Fatalf("join returned %d members, want 2", len(peers))
	}
}

// TestMeshChaosKill is the chaos acceptance criterion: kill one of three
// members mid-run. Requests in flight to the dead member are retried by
// the client against the recomputed ring (not client-visible errors);
// after that rebalance every request must succeed, the pre-kill mobility
// handovers must have happened, and the survivors must have resolved
// misses cooperatively.
func TestMeshChaosKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	const (
		users, requests = 6, 240
		killAt, victim  = 120, 1
		moveRate        = 0.1
		cells           = 3
	)
	m := bootMesh(t, 3)
	router := newMeshRouter(t, m, 11)
	corp := corpus.Build()
	root := mat.NewRNG(777)
	sched := root.Split()
	gens := make([]*corpus.Generator, users)
	for i := range gens {
		gens[i] = corpus.NewGenerator(corp, root.Split())
	}

	handovers, retries, survivorServed := 0, 0, 0
	for i := 0; i < requests; i++ {
		if i == killAt {
			m.daemons[victim].Kill()
		}
		u := sched.Intn(users)
		user := fmt.Sprintf("u%03d", u)
		if i < killAt && sched.Float64() < moveRate {
			// Pre-kill mobility so cross-member handovers happen; the
			// serving member may be the victim later, exercising the
			// override-remap path.
			resp, err := router.move(user, sched.Intn(cells))
			if err != nil || !resp.OK {
				t.Fatalf("move %d: %+v, %v", i, resp, err)
			}
			if resp.Handover.Moved {
				handovers++
			}
		}
		resp, attempts, err := router.transmit(user, gens[u].Message(u%len(corp.Domains), nil).Text())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !resp.OK {
			t.Fatalf("request %d: client-visible error after rebalance: %q", i, resp.Error)
		}
		retries += attempts
		if router.owner(user) != victim {
			survivorServed++
		}
	}

	if handovers == 0 {
		t.Fatal("chaos run produced no handovers before the kill")
	}
	if router.alive[victim] {
		t.Fatal("client never discovered the kill — no request routed to the victim?")
	}
	if retries == 0 {
		t.Fatal("no request was retried: the kill was invisible, assertion too weak")
	}

	// Survivors: cooperative fetches happened, and their probe loops have
	// demoted the victim (zero remaining live-member churn).
	var neighborHits int64
	for _, idx := range []int{0, 2} {
		ns, err := router.nodeStats(idx)
		if err != nil {
			t.Fatalf("survivor %d stats: %v", idx, err)
		}
		neighborHits += ns.NeighborHits
	}
	if neighborHits == 0 {
		t.Fatal("survivors resolved no misses cooperatively")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := m.daemons[0].Mesh.LiveMembers()
		if len(live) == 2 && live[0] == 0 && live[1] == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor 0 never demoted the victim: live members %v", live)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The mesh is still fully serviceable after the rebalance: the
	// survivors' counters account for every request the client routed to
	// them (the victim's pre-kill share died with it, by design).
	st, err := router.mergedStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != survivorServed {
		t.Fatalf("survivors report %d messages, client routed %d to them", st.Messages, survivorServed)
	}
	if got := requests - killAt; survivorServed < got {
		t.Fatalf("survivors served %d, want at least the %d post-kill requests", survivorServed, got)
	}
}

// TestMeshChaosDrain is the graceful-departure acceptance criterion:
// drain (SIGTERM semantics) one of three members mid-run. Unlike the
// chaos kill, a drain is lossless — every model the victim owned and
// every user's full serving state (individual models, noise sequence,
// selection belief, pending update buffers) is pushed to the new ring
// owners before the victim answers Draining, so the run digest matches
// a reference run against the same mesh with no drain at all: zero
// client-visible errors, zero divergence, zero origin re-fetches.
func TestMeshChaosDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drain run in -short mode")
	}
	const (
		users, requests = 6, 240
		drainAt, victim = 120, 1
	)
	corp := corpus.Build()

	// Every member warms its sender cache: both runs then serve with
	// identical cache latencies, which is what makes the digests
	// comparable (the drain moves users between members, and a response
	// must not depend on which member produced it).
	warmAll := func(m *meshDeployment) {
		t.Helper()
		for _, d := range m.daemons {
			if _, err := d.Sys.Sender.Prefetch(d.Sys.Corpus.Names()); err != nil {
				t.Fatal(err)
			}
		}
	}

	workload := func(m *meshDeployment, router *meshRouter, drain bool) uint64 {
		t.Helper()
		root := mat.NewRNG(515)
		sched := root.Split()
		gens := make([]*corpus.Generator, users)
		for i := range gens {
			gens[i] = corpus.NewGenerator(corp, root.Split())
		}
		drainErr := make(chan error, 1)
		var digest uint64
		for i := 0; i < requests; i++ {
			if drain && i == drainAt {
				// Asynchronous, exactly like a SIGTERM landing mid-run: the
				// serial load keeps flowing while the victim drains.
				go func() { drainErr <- m.daemons[victim].Drain() }()
			}
			u := sched.Intn(users)
			user := fmt.Sprintf("u%03d", u)
			resp, _, err := router.transmit(user, gens[u].Message(u%len(corp.Domains), nil).Text())
			if err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if !resp.OK {
				t.Fatalf("request %d: client-visible error during drain: %q", i, resp.Error)
			}
			fold(&digest, "transmit", user, resp.Restored, resp.SelectedDomain,
				strconv.FormatUint(math.Float64bits(resp.Mismatch), 16),
				strconv.Itoa(resp.PayloadBytes),
				strconv.FormatUint(math.Float64bits(resp.LatencyMs), 16))
		}
		if drain {
			select {
			case err := <-drainErr:
				if err != nil {
					t.Fatalf("drain: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("drain never finished")
			}
		}
		return digest
	}

	// Reference: the identical workload against an identical mesh whose
	// membership never changes.
	ref := bootMesh(t, 3)
	warmAll(ref)
	refDigest := workload(ref, newMeshRouter(t, ref, 11), false)

	// Candidate: same mesh, with member 1 drained at the midpoint.
	m := bootMesh(t, 3)
	warmAll(m)
	router := newMeshRouter(t, m, 11)
	// Boot and warmup legitimately paid origin fetches (member 0 fills
	// the mesh's first copy from the cloud); the drain gate is that the
	// run itself adds none.
	preOrigin := make(map[int]int64)
	for _, idx := range []int{0, 2} {
		ns, err := router.nodeStats(idx)
		if err != nil {
			t.Fatalf("survivor %d stats: %v", idx, err)
		}
		preOrigin[idx] = ns.OriginFetches
	}
	digest := workload(m, router, true)

	if digest != refDigest {
		t.Fatalf("drained run diverged from undrained reference: %016x != %016x", digest, refDigest)
	}
	if router.alive[victim] {
		t.Fatal("client never observed the drain — no request was ever rerouted")
	}
	var handoversIn int64
	for _, idx := range []int{0, 2} {
		ns, err := router.nodeStats(idx)
		if err != nil {
			t.Fatalf("survivor %d stats: %v", idx, err)
		}
		if grew := ns.OriginFetches - preOrigin[idx]; grew != 0 {
			t.Fatalf("survivor %d paid %d origin re-fetches; a graceful drain must hand everything off", idx, grew)
		}
		handoversIn += ns.HandoversIn
	}
	if handoversIn == 0 {
		t.Fatal("no survivor received a drain handoff: the victim's users were lost, not handed over")
	}
	// The drained member's probe-announced departure pinned it down:
	// survivors agree on the two-member view.
	live := m.daemons[0].Mesh.LiveMembers()
	if len(live) != 2 || live[0] != 0 || live[1] != 2 {
		t.Fatalf("survivor 0 live view after drain: %v, want [0 2]", live)
	}
}

// TestMeshLeavePinsDeparted pins the Leave-vs-probe race: an OpLeave
// observation is authoritative and a concurrent liveness-probe success
// against the still-answering member (it keeps serving RPCs while its
// drain runs) must not resurrect it. Only a fresh OpJoin revives it.
func TestMeshLeavePinsDeparted(t *testing.T) {
	if testing.Short() {
		t.Skip("mesh boot in -short mode")
	}
	m := bootMesh(t, 3)
	cl, err := rpc.Dial(m.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Let the membership settle first: the boot-time joins must all be
	// processed, or a late join would legitimately revive the member we
	// are about to declare departed.
	deadline := time.Now().Add(10 * time.Second)
	for stable := 0; stable < 10; {
		if len(m.daemons[0].Mesh.LiveMembers()) == 3 {
			stable++
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			t.Fatalf("mesh never settled: live view %v", m.daemons[0].Mesh.LiveMembers())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Forge member 1's departure announcement at member 0 while member 1
	// is in fact still up and answering member 0's probes.
	self1 := m.daemons[1].Mesh.Self()
	if err := cl.Leave(testCtx(t), self1); err != nil {
		t.Fatal(err)
	}
	live := m.daemons[0].Mesh.LiveMembers()
	if len(live) != 2 || live[0] != 0 || live[1] != 2 {
		t.Fatalf("live view after leave: %v, want [0 2]", live)
	}

	// Six probe intervals' worth of successful probes against the live
	// member must not lift the pin.
	time.Sleep(6 * 50 * time.Millisecond)
	live = m.daemons[0].Mesh.LiveMembers()
	if len(live) != 2 || live[0] != 0 || live[1] != 2 {
		t.Fatalf("probe success resurrected the departed member: live view %v, want [0 2]", live)
	}

	// A fresh join is the one event that revives it.
	if _, err := cl.Join(testCtx(t), self1); err != nil {
		t.Fatal(err)
	}
	live = m.daemons[0].Mesh.LiveMembers()
	if len(live) != 3 {
		t.Fatalf("join did not revive the member: live view %v, want [0 1 2]", live)
	}
}

// TestMeshReplicaPush drives enough single-domain traffic through one
// member to promote the domain past the hot threshold and asserts the
// general model lands proactively on the member's ring successor —
// without touching the user-handover counters (replication is a cache
// concern, not a mobility event).
func TestMeshReplicaPush(t *testing.T) {
	if testing.Short() {
		t.Skip("replica run in -short mode")
	}
	m := bootMeshCfg(t, 3, func(i int, cfg *Config) { cfg.Replicas = 1 })
	router := newMeshRouter(t, m, 11)
	corp := corpus.Build()

	// Pick a user owned by member 0 or 1, so the push successor is a cold
	// member (member 0 boots warm and would count as already-replicated).
	user, owner := "", -1
	for u := 0; u < 64; u++ {
		name := fmt.Sprintf("r%03d", u)
		if o := router.owner(name); o != 2 {
			user, owner = name, o
			break
		}
	}
	if user == "" {
		t.Fatal("no user hashed to members 0/1")
	}
	succ := (owner + 1) % 3

	gen := corpus.NewGenerator(corp, mat.NewRNG(5))
	for i := 0; i < 24; i++ {
		resp, _, err := router.transmit(user, gen.Message(0, nil).Text())
		if err != nil || !resp.OK {
			t.Fatalf("transmit %d: %+v, %v", i, resp, err)
		}
	}

	// The promotion threshold is 16 served transmits on one domain and
	// the push is asynchronous; poll the wire-visible counters.
	deadline := time.Now().Add(5 * time.Second)
	var os, ss *rpc.NodeStats
	for {
		var err1, err2 error
		os, err1 = router.nodeStats(owner)
		ss, err2 = router.nodeStats(succ)
		if err1 == nil && err2 == nil && os.ReplicasOut >= 1 && ss.ReplicasIn >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never arrived: owner %+v, successor %+v (%v/%v)", os, ss, err1, err2)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(os.Hot) == 0 || os.Hot[0].Count < 16 {
		t.Fatalf("owner's heat snapshot missing the hot domain: %+v", os.Hot)
	}
	hot := os.Hot[0].Domain
	found := false
	for _, d := range ss.Generals {
		found = found || d == hot
	}
	if !found {
		t.Fatalf("successor does not hold the replicated general %q: %v", hot, ss.Generals)
	}
	if os.HandoversOut != 0 || ss.HandoversIn != 0 {
		t.Fatalf("replica push bumped user-handover counters: out %d, in %d", os.HandoversOut, ss.HandoversIn)
	}
}
