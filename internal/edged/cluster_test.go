package edged

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/rpc"
)

// clusterConfig is soakConfig plus three sender nodes.
func clusterConfig(t *testing.T) core.Config {
	cfg := soakConfig(t)
	cfg.Nodes = 3
	return cfg
}

// startClusterServer boots an in-process cluster-mode daemon with node 0
// warmed, exactly as `edged -nodes 3` starts.
func startClusterServer(t *testing.T) (string, func()) {
	t.Helper()
	sys, err := core.NewSystem(clusterConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Receiver.Prefetch(sys.Corpus.Names()); err != nil {
		t.Fatal(err)
	}
	return startServer(t, newServer(sys, 0))
}

// fold mirrors cmd/semload's digest folding.
func fold(digest *uint64, parts ...string) {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	*digest ^= h.Sum64() + 0x9e3779b97f4a7c15 + (*digest << 6) + (*digest >> 2)
}

// mobilityRun drives the semload -mobility scenario over one connection:
// a serial seeded stream of moves and transmits. It returns the run
// digest plus the observed handover count.
func mobilityRun(t *testing.T, addr string, users, requests, cells int, moveRate float64, seed uint64) (uint64, int) {
	t.Helper()
	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	corp := corpus.Build()
	root := mat.NewRNG(seed)
	sched := root.Split()
	gens := make([]*corpus.Generator, users)
	for i := range gens {
		gens[i] = corpus.NewGenerator(corp, root.Split())
	}
	var digest uint64
	handovers := 0
	for i := 0; i < requests; i++ {
		u := sched.Intn(users)
		user := fmt.Sprintf("u%03d", u)
		if sched.Float64() < moveRate {
			cell := sched.Intn(cells)
			resp, err := cl.Move(user, cell)
			if err != nil {
				t.Fatal(err)
			}
			if !resp.OK || resp.Handover == nil {
				t.Fatalf("move failed: %+v", resp)
			}
			if resp.Handover.Moved {
				handovers++
			}
			fold(&digest, "move", user, strconv.Itoa(cell),
				resp.Handover.From, resp.Handover.To,
				strconv.FormatBool(resp.Handover.Moved),
				strconv.FormatInt(resp.Handover.MigratedBytes, 10))
		}
		// Sticky per-user domains concentrate each user's traffic so the
		// update process fires, individual models form, and handovers have
		// real payloads to migrate.
		msg := gens[u].Message(u%len(corp.Domains), nil)
		resp, err := cl.Transmit(user, msg.Text())
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("transmit %d failed: %q", i, resp.Error)
		}
		fold(&digest, "transmit", user, resp.Restored, resp.SelectedDomain,
			strconv.FormatUint(math.Float64bits(resp.Mismatch), 16),
			strconv.Itoa(resp.PayloadBytes),
			strconv.FormatUint(math.Float64bits(resp.LatencyMs), 16))
	}
	return digest, handovers
}

// clusterStats fetches the daemon's stats snapshot.
func clusterStats(t *testing.T, addr string) *rpc.Stats {
	t.Helper()
	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestClusterMobilityDeterministicRun is the acceptance run: the semload
// -mobility scenario against a 3-node daemon must produce handovers and
// neighbor cache hits, and two identically-seeded runs against two
// identically-started daemons must be bit-identical.
func TestClusterMobilityDeterministicRun(t *testing.T) {
	const (
		users, requests, cells = 6, 200, 3
		moveRate               = 0.15
		seed                   = 4242
	)
	run := func() (uint64, int, *rpc.Stats) {
		addr, shutdown := startClusterServer(t)
		defer shutdown()
		digest, handovers := mobilityRun(t, addr, users, requests, cells, moveRate, seed)
		return digest, handovers, clusterStats(t, addr)
	}
	d1, h1, st1 := run()
	d2, h2, st2 := run()

	if h1 == 0 {
		t.Fatal("mobility run produced no handovers")
	}
	if st1.Handovers == 0 || st1.MigratedBytes == 0 {
		t.Fatalf("daemon saw no migrations: %+v", st1)
	}
	var neighborHits int64
	for _, n := range st1.Nodes {
		neighborHits += n.NeighborHits
	}
	if neighborHits == 0 {
		t.Fatal("mobility run produced no cooperative cache hits")
	}
	if len(st1.Nodes) != 3 {
		t.Fatalf("stats report %d nodes, want 3", len(st1.Nodes))
	}

	if d1 != d2 {
		t.Fatalf("identically-seeded runs diverged: %016x != %016x", d1, d2)
	}
	if h1 != h2 || st1.Handovers != st2.Handovers || st1.MigratedBytes != st2.MigratedBytes {
		t.Fatalf("handover accounting diverged: run1 %d/%d/%d, run2 %d/%d/%d",
			h1, st1.Handovers, st1.MigratedBytes, h2, st2.Handovers, st2.MigratedBytes)
	}
}

// TestClusterStatsShape checks the cluster-mode stats surface: per-node
// entries present, aggregate hit rate populated, and OpMove rejected by a
// single-sender daemon.
func TestClusterStatsShape(t *testing.T) {
	addr, shutdown := startClusterServer(t)
	defer shutdown()
	// One transmit so counters move.
	cl, err := rpc.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if resp, err := cl.Transmit("u1", "the server restarted after the patch"); err != nil || !resp.OK {
		t.Fatalf("transmit failed: %+v, %v", resp, err)
	}
	st := clusterStats(t, addr)
	if len(st.Nodes) != 3 {
		t.Fatalf("want 3 node entries, got %d", len(st.Nodes))
	}
	if st.SenderHitRate <= 0 {
		t.Fatalf("aggregate hit rate not populated: %+v", st)
	}
	total := 0
	for _, n := range st.Nodes {
		total += n.Users
	}
	if total != 1 {
		t.Fatalf("user occupancy sums to %d, want 1", total)
	}

	// A classic single-sender daemon must reject OpMove.
	sys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	soloAddr, soloShutdown := startServer(t, newServer(sys, 0))
	defer soloShutdown()
	soloCl, err := rpc.Dial(soloAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer soloCl.Close()
	resp, err := soloCl.Move("u1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Fatalf("single-sender daemon accepted OpMove: %+v", resp)
	}
}
