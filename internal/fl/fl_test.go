package fl

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/semantic"
)

var (
	fixOnce sync.Once
	fixCorp *corpus.Corpus
	fixGen  *semantic.Codec
)

func fixtures(t *testing.T) (*corpus.Corpus, *semantic.Codec) {
	t.Helper()
	fixOnce.Do(func() {
		fixCorp = corpus.Build()
		fixGen = semantic.Pretrain(fixCorp.Domain("it"), fixCorp, semantic.Config{
			EmbedDim: 12, FeatureDim: 6, HiddenDim: 16,
			Epochs: 3, Sentences: 400, Seed: 7,
		})
	})
	return fixCorp, fixGen
}

// fillBuffer records n idiolect-bearing transactions through codec's
// decoder copy.
func fillBuffer(corp *corpus.Corpus, codec *semantic.Codec, idio *corpus.Idiolect, n int, seed uint64) *Buffer {
	d := codec.Domain()
	gen := corpus.NewGenerator(corp, mat.NewRNG(seed))
	buf := NewBuffer(d.Name, "u1", n)
	for i := 0; i < n; i++ {
		m := gen.Message(d.Index, idio)
		sids := make([]int, len(m.Words))
		for j, w := range m.Words {
			sids[j] = d.SurfaceID(w)
		}
		buf.Add(Transaction{
			SurfaceIDs: sids,
			ConceptIDs: m.ConceptIDs,
			Decoded:    codec.RoundTrip(m.Words),
		})
	}
	return buf
}

func TestTransactionMismatch(t *testing.T) {
	tx := Transaction{ConceptIDs: []int{1, 2, 3, 4}, Decoded: []int{1, 2, 9, 9}}
	if got := tx.Mismatch(); got != 0.5 {
		t.Fatalf("Mismatch = %v, want 0.5", got)
	}
	if (Transaction{}).Mismatch() != 0 {
		t.Fatal("empty transaction mismatch should be 0")
	}
	short := Transaction{ConceptIDs: []int{1, 2}, Decoded: []int{1}}
	if short.Mismatch() != 0.5 {
		t.Fatal("missing decoded positions should count as mismatches")
	}
}

func TestOutputReturnBytes(t *testing.T) {
	tx := Transaction{}
	if got := tx.OutputReturnBytes([]string{"ab", "cde"}); got != 7 {
		t.Fatalf("OutputReturnBytes = %d, want 7", got)
	}
}

func TestBufferLifecycle(t *testing.T) {
	b := NewBuffer("it", "u1", 3)
	if b.Ready() {
		t.Fatal("empty buffer ready")
	}
	for i := 0; i < 3; i++ {
		b.Add(Transaction{SurfaceIDs: []int{1}, ConceptIDs: []int{2}, Decoded: []int{2}})
	}
	if !b.Ready() || b.Len() != 3 {
		t.Fatal("buffer should be ready at threshold")
	}
	if got := len(b.Examples()); got != 3 {
		t.Fatalf("Examples = %d", got)
	}
	b.Reset()
	if b.Len() != 0 || b.Ready() {
		t.Fatal("Reset failed")
	}
}

func TestBufferDefaultThreshold(t *testing.T) {
	b := NewBuffer("it", "u1", 0)
	if b.Threshold != 32 {
		t.Fatalf("default threshold = %d", b.Threshold)
	}
}

func TestBufferMeanMismatch(t *testing.T) {
	b := NewBuffer("it", "u1", 8)
	b.Add(Transaction{ConceptIDs: []int{1, 2}, Decoded: []int{1, 2}}) // 0
	b.Add(Transaction{ConceptIDs: []int{1, 2}, Decoded: []int{9, 9}}) // 1
	if got := b.MeanMismatch(); got != 0.5 {
		t.Fatalf("MeanMismatch = %v", got)
	}
}

func TestRunUpdateEmptyBuffer(t *testing.T) {
	_, gen := fixtures(t)
	buf := NewBuffer("it", "u1", 4)
	if _, err := RunUpdate(gen.Clone(), buf, 0, UpdateConfig{}); err == nil {
		t.Fatal("empty-buffer update should error")
	}
}

func TestRunUpdateImprovesAccuracy(t *testing.T) {
	corp, gen := fixtures(t)
	individual := gen.Clone()
	idio := corpus.NewIdiolect(corp, mat.NewRNG(91), 0.5)
	buf := fillBuffer(corp, individual, idio, 48, 92)

	upd, err := RunUpdate(individual, buf, 0, UpdateConfig{Epochs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Version != 1 {
		t.Fatalf("Version = %d", upd.Version)
	}
	if upd.Stats.PostAccuracy <= upd.Stats.PreAccuracy {
		t.Fatalf("fine-tune did not improve: %v -> %v",
			upd.Stats.PreAccuracy, upd.Stats.PostAccuracy)
	}
	if upd.Stats.PayloadBytes <= 0 || upd.Stats.DenseBytes < upd.Stats.PayloadBytes {
		t.Fatalf("byte accounting wrong: %+v", upd.Stats)
	}
}

func TestApplyUpdateSynchronizesReceiver(t *testing.T) {
	corp, gen := fixtures(t)
	sender := gen.Clone()
	receiver := gen.Clone()
	idio := corpus.NewIdiolect(corp, mat.NewRNG(93), 0.5)
	buf := fillBuffer(corp, sender, idio, 48, 94)

	upd, err := RunUpdate(sender, buf, 0, UpdateConfig{Epochs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyUpdate(receiver, upd); err != nil {
		t.Fatal(err)
	}
	// Lossless sync: sender-encoder -> receiver-decoder must match
	// sender-local accuracy exactly.
	examples := buf.Examples()
	local := sender.Evaluate(examples)
	cross := CrossEvaluate(sender, receiver, examples)
	if local != cross {
		t.Fatalf("lossless sync mismatch: local %v cross %v", local, cross)
	}
}

func TestCompressedUpdateCloseToLossless(t *testing.T) {
	corp, gen := fixtures(t)
	sender := gen.Clone()
	receiver := gen.Clone()
	idio := corpus.NewIdiolect(corp, mat.NewRNG(95), 0.5)
	buf := fillBuffer(corp, sender, idio, 48, 96)

	upd, err := RunUpdate(sender, buf, 0, UpdateConfig{
		Epochs: 4, Seed: 5,
		Compress: nn.CompressOptions{TopKFrac: 0.25, Int8: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyUpdate(receiver, upd); err != nil {
		t.Fatal(err)
	}
	examples := buf.Examples()
	local := sender.Evaluate(examples)
	cross := CrossEvaluate(sender, receiver, examples)
	if cross < local-0.15 {
		t.Fatalf("compressed sync degraded too much: local %v cross %v", local, cross)
	}
	if upd.Stats.PayloadBytes >= upd.Stats.DenseBytes/2 {
		t.Fatalf("top-25%%+int8 payload %d not much smaller than dense %d",
			upd.Stats.PayloadBytes, upd.Stats.DenseBytes)
	}
}

func TestApplyUpdateRejectsGarbage(t *testing.T) {
	_, gen := fixtures(t)
	if err := ApplyUpdate(gen.Clone(), &Update{Payload: []byte("junk")}); err == nil {
		t.Fatal("garbage payload accepted")
	}
}

func TestUpdateDoesNotTouchEncoderOnReceiver(t *testing.T) {
	corp, gen := fixtures(t)
	sender := gen.Clone()
	receiver := gen.Clone()
	idio := corpus.NewIdiolect(corp, mat.NewRNG(97), 0.4)
	buf := fillBuffer(corp, sender, idio, 40, 98)
	upd, err := RunUpdate(sender, buf, 0, UpdateConfig{Epochs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	encBefore := receiver.EncoderParams().Clone()
	if err := ApplyUpdate(receiver, upd); err != nil {
		t.Fatal(err)
	}
	encAfter := receiver.EncoderParams()
	for i := range encBefore.Params {
		a := encBefore.Params[i].M.Data
		b := encAfter.Params[i].M.Data
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("decoder update modified receiver encoder")
			}
		}
	}
}

func TestCrossEvaluateEmpty(t *testing.T) {
	_, gen := fixtures(t)
	if got := CrossEvaluate(gen, gen, nil); got != 0 {
		t.Fatalf("empty CrossEvaluate = %v", got)
	}
}
