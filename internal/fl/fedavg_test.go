package fl

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/semantic"
)

// donorSets builds per-donor idiolect example sets for the fixture domain.
func donorSets(corp *corpus.Corpus, d *corpus.Domain, donors, sentences int, seed uint64) [][]semantic.Example {
	rng := mat.NewRNG(seed)
	out := make([][]semantic.Example, donors)
	for i := range out {
		idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
		gen := corpus.NewGenerator(corp, rng.Split())
		var exs []semantic.Example
		for _, m := range gen.Batch(d.Index, sentences, idio) {
			exs = append(exs, semantic.ExamplesFromMessage(d, m)...)
		}
		out[i] = exs
	}
	return out
}

func TestCodecDelta(t *testing.T) {
	_, gen := fixtures(t)
	a := gen.Clone()
	b := gen.Clone()
	b.Params().ByName(semantic.ParamDecW).Data[0] += 2
	delta := CodecDelta(b, a)
	if got := delta.ByName(semantic.ParamDecW).Data[0]; got != 2 {
		t.Fatalf("delta = %v, want 2", got)
	}
	// All other entries zero.
	if mat.MaxAbs(delta.ByName(semantic.ParamEncW).Data) != 0 {
		t.Fatal("unexpected encoder delta")
	}
}

func TestApplyAverageDelta(t *testing.T) {
	_, gen := fixtures(t)
	base := gen.Clone()
	d1 := base.Params().ZeroClone()
	d2 := base.Params().ZeroClone()
	d1.ByName(semantic.ParamDecB).Data[0] = 4
	d2.ByName(semantic.ParamDecB).Data[0] = 2
	orig := base.Params().ByName(semantic.ParamDecB).Data[0]
	if err := ApplyAverageDelta(base, []*nn.ParamSet{d1, d2}, 1); err != nil {
		t.Fatal(err)
	}
	got := base.Params().ByName(semantic.ParamDecB).Data[0]
	if got != orig+3 {
		t.Fatalf("after FedAvg = %v, want %v", got, orig+3)
	}
	if err := ApplyAverageDelta(base, nil, 1); err == nil {
		t.Fatal("empty aggregation accepted")
	}
}

func TestRunFederatedImprovesColdStart(t *testing.T) {
	corp, gen := fixtures(t)
	d := corp.Domain("it")
	donors := donorSets(corp, d, 8, 40, 77)

	improved, err := RunFederated(gen, donors, FederatedConfig{Rounds: 3, LocalEpochs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	// A brand-new user with a fresh idiolect: the improved general model
	// must handle their rare-synonym vocabulary better than the stock one.
	rng := mat.NewRNG(1234)
	var cold []semantic.Example
	newIdio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
	newGen := corpus.NewGenerator(corp, rng.Split())
	for _, m := range newGen.Batch(d.Index, 80, newIdio) {
		cold = append(cold, semantic.ExamplesFromMessage(d, m)...)
	}
	stockAcc := gen.Evaluate(cold)
	fedAcc := improved.Evaluate(cold)
	if fedAcc <= stockAcc {
		t.Fatalf("FedAvg did not improve cold start: stock %v fed %v", stockAcc, fedAcc)
	}

	// Generic traffic must not degrade (no catastrophic forgetting).
	var generic []semantic.Example
	for _, m := range newGen.Batch(d.Index, 80, nil) {
		generic = append(generic, semantic.ExamplesFromMessage(d, m)...)
	}
	if improved.Evaluate(generic) < gen.Evaluate(generic)-0.03 {
		t.Fatalf("FedAvg degraded generic traffic: %v -> %v",
			gen.Evaluate(generic), improved.Evaluate(generic))
	}

	// The input general model must be untouched.
	if gen.Evaluate(cold) != stockAcc {
		t.Fatal("RunFederated mutated its input codec")
	}
}

func TestRunFederatedValidation(t *testing.T) {
	_, gen := fixtures(t)
	if _, err := RunFederated(gen, nil, FederatedConfig{}); err == nil {
		t.Fatal("no donors accepted")
	}
}

func TestClipToNorm(t *testing.T) {
	_, gen := fixtures(t)
	delta := gen.Params().ZeroClone()
	delta.ByName(semantic.ParamDecB).Data[0] = 3
	delta.ByName(semantic.ParamDecB).Data[1] = 4 // norm 5
	clipToNorm(delta, 1)
	norm := 0.0
	for _, p := range delta.Params {
		for _, v := range p.M.Data {
			norm += v * v
		}
	}
	if norm > 1.0001 {
		t.Fatalf("clipped norm^2 = %v, want <= 1", norm)
	}
	// Already-small deltas pass through unchanged.
	small := gen.Params().ZeroClone()
	small.ByName(semantic.ParamDecB).Data[0] = 0.1
	clipToNorm(small, 1)
	if small.ByName(semantic.ParamDecB).Data[0] != 0.1 {
		t.Fatal("clip modified an in-bounds delta")
	}
}

func TestDPFederatedStillImprovesColdStart(t *testing.T) {
	corp, gen := fixtures(t)
	d := corp.Domain("it")
	donors := donorSets(corp, d, 8, 40, 177)
	improved, err := RunFederated(gen, donors, FederatedConfig{
		Rounds: 3, LocalEpochs: 2, Seed: 9,
		DP: DPConfig{ClipNorm: 3, NoiseMultiplier: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := mat.NewRNG(888)
	var cold []semantic.Example
	idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
	g := corpus.NewGenerator(corp, rng.Split())
	for _, m := range g.Batch(d.Index, 80, idio) {
		cold = append(cold, semantic.ExamplesFromMessage(d, m)...)
	}
	if improved.Evaluate(cold) <= gen.Evaluate(cold) {
		t.Fatalf("DP FedAvg did not improve cold start: %v -> %v",
			gen.Evaluate(cold), improved.Evaluate(cold))
	}
}

func TestDPNoiseDestroysUtilityWhenHuge(t *testing.T) {
	corp, gen := fixtures(t)
	d := corp.Domain("it")
	donors := donorSets(corp, d, 4, 20, 178)
	wrecked, err := RunFederated(gen, donors, FederatedConfig{
		Rounds: 2, LocalEpochs: 1, Seed: 9,
		DP: DPConfig{ClipNorm: 3, NoiseMultiplier: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := mat.NewRNG(889)
	var generic []semantic.Example
	g := corpus.NewGenerator(corp, rng.Split())
	for _, m := range g.Batch(d.Index, 60, nil) {
		generic = append(generic, semantic.ExamplesFromMessage(d, m)...)
	}
	// Sanity check on the mechanism: absurd noise must visibly damage the
	// model (i.e. the noise is really being injected).
	if wrecked.Evaluate(generic) >= gen.Evaluate(generic)-0.05 {
		t.Fatalf("huge DP noise had no effect: %v vs %v",
			wrecked.Evaluate(generic), gen.Evaluate(generic))
	}
}
