package fl

import (
	"errors"
	"math"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/semantic"
)

// newRNG is a seam for deterministic seeding in tests.
func newRNG(seed uint64) *mat.RNG { return mat.NewRNG(seed) }

// This file implements the federated-learning extension the paper points
// at via its FL reference and §III research directions: periodically
// aggregating many users' individual-model improvements back into the
// domain-general model (FedAvg), so new users cold-start from a model that
// already knows the population's rare vocabulary. The base system keeps
// general models immutable (§II-D); this is the explicit relaxation.

// CodecDelta returns the full parameter delta after - before. The codecs
// must share shapes (clones of a common ancestor).
func CodecDelta(after, before *semantic.Codec) *nn.ParamSet {
	delta := after.Params().Clone()
	delta.AddScaled(-1, before.Params())
	return delta
}

// errNoDeltas reports an aggregation call with no inputs.
var errNoDeltas = errors.New("fl: no deltas to aggregate")

// ApplyAverageDelta applies the FedAvg aggregate (the element-wise mean of
// deltas, scaled by scale) to codec's parameters in place. A scale of 1
// is classic FedAvg; smaller values damp the global step.
func ApplyAverageDelta(codec *semantic.Codec, deltas []*nn.ParamSet, scale float64) error {
	if len(deltas) == 0 {
		return errNoDeltas
	}
	target := codec.Params()
	factor := scale / float64(len(deltas))
	for _, d := range deltas {
		if len(d.Params) != len(target.Params) {
			return errors.New("fl: delta shape mismatch")
		}
		target.AddScaled(factor, d)
	}
	return nil
}

// DPConfig enables differentially private aggregation (the §III-C
// privacy direction): every donor delta is clipped to a global L2 norm
// and Gaussian noise proportional to that sensitivity is added before
// averaging, so no single user's update is identifiable in the aggregate.
type DPConfig struct {
	// ClipNorm bounds each donor delta's L2 norm; <= 0 disables DP.
	ClipNorm float64
	// NoiseMultiplier sets the noise standard deviation as a multiple of
	// ClipNorm (sigma = NoiseMultiplier * ClipNorm), applied per
	// aggregated coordinate after averaging.
	NoiseMultiplier float64
}

// Enabled reports whether DP processing is active.
func (c DPConfig) Enabled() bool { return c.ClipNorm > 0 }

// FederatedConfig parameterizes RunFederated.
type FederatedConfig struct {
	// Rounds of donor fine-tuning + aggregation (default 5).
	Rounds int
	// LocalEpochs per donor per round (default 2).
	LocalEpochs int
	// LR for donor fine-tuning; 0 selects the codec default.
	LR float64
	// Scale damps the aggregated step (default 1 = classic FedAvg).
	Scale float64
	// DP optionally makes the aggregation differentially private.
	DP DPConfig
	// Seed drives fine-tuning and DP noise (default 1).
	Seed uint64
}

func (c FederatedConfig) withDefaults() FederatedConfig {
	if c.Rounds == 0 {
		c.Rounds = 5
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 2
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunFederated improves a general codec by FedAvg over per-donor example
// sets: each round, every donor fine-tunes a clone of the current global
// model on its local data, and the mean delta is folded back. It returns
// the improved codec, leaving the input untouched.
func RunFederated(general *semantic.Codec, donorData [][]semantic.Example, cfg FederatedConfig) (*semantic.Codec, error) {
	if len(donorData) == 0 {
		return nil, errNoDeltas
	}
	cfg = cfg.withDefaults()
	global := general.Clone()
	noiseRNG := newRNG(cfg.Seed ^ 0xd9)
	for round := 0; round < cfg.Rounds; round++ {
		deltas := make([]*nn.ParamSet, 0, len(donorData))
		for di, examples := range donorData {
			if len(examples) == 0 {
				continue
			}
			local := global.Clone()
			seed := cfg.Seed + uint64(round*1009+di*31+1)
			local.FineTune(examples, cfg.LocalEpochs, cfg.LR, newRNG(seed))
			delta := CodecDelta(local, global)
			if cfg.DP.Enabled() {
				clipToNorm(delta, cfg.DP.ClipNorm)
			}
			deltas = append(deltas, delta)
		}
		if err := ApplyAverageDelta(global, deltas, cfg.Scale); err != nil {
			return nil, err
		}
		if cfg.DP.Enabled() && cfg.DP.NoiseMultiplier > 0 {
			// Gaussian mechanism: per-coordinate noise scaled to the
			// clipped per-donor sensitivity divided by the donor count.
			sigma := cfg.DP.NoiseMultiplier * cfg.DP.ClipNorm / float64(len(deltas))
			addGaussianNoise(global.Params(), sigma, noiseRNG)
		}
	}
	return global, nil
}

// clipToNorm rescales ps so its global L2 norm is at most clip.
func clipToNorm(ps *nn.ParamSet, clip float64) {
	sq := 0.0
	for _, p := range ps.Params {
		for _, v := range p.M.Data {
			sq += v * v
		}
	}
	norm := sqrt(sq)
	if norm <= clip || norm == 0 {
		return
	}
	scale := clip / norm
	for _, p := range ps.Params {
		mat.Scale(p.M.Data, scale)
	}
}

// addGaussianNoise perturbs every parameter coordinate with N(0, sigma^2).
func addGaussianNoise(ps *nn.ParamSet, sigma float64, rng *mat.RNG) {
	if sigma <= 0 {
		return
	}
	for _, p := range ps.Params {
		for i := range p.M.Data {
			p.M.Data[i] += sigma * rng.NormFloat64()
		}
	}
}

// sqrt is a local alias keeping the math import localized.
func sqrt(v float64) float64 { return math.Sqrt(v) }
