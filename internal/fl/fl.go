// Package fl implements the paper's update process (§II-C, §II-D): the
// sender edge records communication transactions in per-domain buffers,
// computes semantic mismatch locally using its decoder copy, fine-tunes the
// user-specific individual model once enough data accumulates, and ships
// only the decoder update to the receiver edge — the federated-learning-
// style synchronization step.
//
// It also implements the anti-pattern the decoder copy exists to avoid:
// returning the receiver's decoded output to the sender per message. Both
// paths are metered so experiment E4 can compare their traffic.
package fl

import (
	"errors"
	"fmt"

	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/semantic"
)

// Transaction is one communication recorded in a domain buffer: the
// transmitted surfaces, the KB ground-truth concepts, and what the decoder
// copy produced.
type Transaction struct {
	SurfaceIDs []int
	ConceptIDs []int
	Decoded    []int
}

// Mismatch returns the fraction of positions where the decoder copy
// disagreed with the KB concepts — the paper's semantic mismatch signal.
func (t Transaction) Mismatch() float64 {
	if len(t.ConceptIDs) == 0 {
		return 0
	}
	bad := 0
	for i, want := range t.ConceptIDs {
		if i >= len(t.Decoded) || t.Decoded[i] != want {
			bad++
		}
	}
	return float64(bad) / float64(len(t.ConceptIDs))
}

// OutputReturnBytes is the feedback traffic the transaction would cost if
// the receiver had to send its decoded output back to the sender (the
// design rejected in §II-C): one byte per character of each decoded word
// plus a separator.
func (t Transaction) OutputReturnBytes(words []string) int {
	n := 0
	for _, w := range words {
		n += len(w) + 1
	}
	return n
}

// Buffer is the per-(user, domain) transaction store b_m of Fig. 1 step 3.
// It is not safe for concurrent use; the edge server serializes access.
type Buffer struct {
	// Domain and User identify the individual model the buffer feeds.
	Domain string
	User   string
	// Threshold is the transaction count that triggers an update.
	Threshold int

	txs []Transaction
}

// NewBuffer returns an empty buffer with the given update threshold.
func NewBuffer(domain, user string, threshold int) *Buffer {
	if threshold <= 0 {
		threshold = 32
	}
	return &Buffer{Domain: domain, User: user, Threshold: threshold}
}

// Add appends a transaction.
func (b *Buffer) Add(tx Transaction) { b.txs = append(b.txs, tx) }

// Len returns the number of buffered transactions.
func (b *Buffer) Len() int { return len(b.txs) }

// Ready reports whether enough data has accumulated to trigger an update.
func (b *Buffer) Ready() bool { return len(b.txs) >= b.Threshold }

// Reset clears the buffer after an update.
func (b *Buffer) Reset() { b.txs = b.txs[:0] }

// MeanMismatch returns the average transaction mismatch, or 0 when empty.
func (b *Buffer) MeanMismatch() float64 {
	if len(b.txs) == 0 {
		return 0
	}
	total := 0.0
	for _, tx := range b.txs {
		total += tx.Mismatch()
	}
	return total / float64(len(b.txs))
}

// Examples flattens the buffered transactions into training pairs.
// Out-of-domain tokens (concept -1, e.g. after a wrong model selection)
// carry no supervision signal and are skipped.
func (b *Buffer) Examples() []semantic.Example {
	out := make([]semantic.Example, 0, 8*len(b.txs))
	for _, tx := range b.txs {
		for i, sid := range tx.SurfaceIDs {
			if tx.ConceptIDs[i] < 0 {
				continue
			}
			out = append(out, semantic.Example{SurfaceID: sid, ConceptID: tx.ConceptIDs[i]})
		}
	}
	return out
}

// Transactions returns a copy of the buffered transactions.
func (b *Buffer) Transactions() []Transaction {
	out := make([]Transaction, len(b.txs))
	copy(out, b.txs)
	return out
}

// UpdateConfig controls one individual-model update.
type UpdateConfig struct {
	// Epochs is the number of fine-tuning passes over the buffer.
	Epochs int
	// LR is the fine-tuning learning rate; 0 selects the codec default.
	LR float64
	// Compress selects the lossy encoding of the decoder delta.
	Compress nn.CompressOptions
	// Seed drives fine-tuning randomness.
	Seed uint64
}

// UpdateStats meters one update for the experiment tables.
type UpdateStats struct {
	// BufferSize is the number of transactions consumed.
	BufferSize int
	// PreAccuracy and PostAccuracy are buffer-set reconstruction
	// accuracies before and after fine-tuning, measured on the sender.
	PreAccuracy  float64
	PostAccuracy float64
	// PayloadBytes is the wire size of the compressed decoder update.
	PayloadBytes int
	// DenseBytes is what the uncompressed decoder delta would cost.
	DenseBytes int
}

// Update is a decoder synchronization message from sender to receiver edge.
type Update struct {
	Domain  string
	User    string
	Version int
	Payload []byte
	Stats   UpdateStats
}

// errEmptyBuffer reports an update attempt with no data.
var errEmptyBuffer = errors.New("fl: update with empty buffer")

// RunUpdate executes Fig. 1 steps 3-4 on the sender edge: fine-tune the
// user's individual codec on the buffered transactions, extract the decoder
// delta, and package it (optionally compressed) for the receiver. The
// buffer is not reset; callers reset it after a successful send.
func RunUpdate(codec *semantic.Codec, buf *Buffer, version int, cfg UpdateConfig) (*Update, error) {
	if buf.Len() == 0 {
		return nil, errEmptyBuffer
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	examples := buf.Examples()
	pre := codec.Evaluate(examples)

	before := codec.DecoderParams().Clone()
	codec.FineTune(examples, cfg.Epochs, cfg.LR, mat.NewRNG(cfg.Seed))
	post := codec.Evaluate(examples)

	delta := codec.DecoderParams().Clone()
	delta.AddScaled(-1, before)
	dense := nn.Compress(delta, nn.CompressOptions{})
	compressed := nn.Compress(delta, cfg.Compress)
	payload := compressed.Encode()

	return &Update{
		Domain:  buf.Domain,
		User:    buf.User,
		Version: version + 1,
		Payload: payload,
		Stats: UpdateStats{
			BufferSize:   buf.Len(),
			PreAccuracy:  pre,
			PostAccuracy: post,
			PayloadBytes: len(payload),
			DenseBytes:   dense.SizeBytes(),
		},
	}, nil
}

// ApplyUpdate applies a received decoder update to the receiver's copy of
// the user's individual codec.
func ApplyUpdate(codec *semantic.Codec, upd *Update) error {
	cg, err := nn.DecodeCompressed(upd.Payload)
	if err != nil {
		return fmt.Errorf("fl: decode update payload: %w", err)
	}
	if err := cg.ApplyTo(codec.DecoderParams(), 1); err != nil {
		return fmt.Errorf("fl: apply update: %w", err)
	}
	// The update wrote through the shared decoder tensors: drop any cached
	// reduced-precision kernel-tier shadows so the next tiered decode
	// re-quantizes from the fresh weights.
	codec.InvalidateTierCache()
	return nil
}

// CrossEvaluate measures end-to-end reconstruction accuracy when the
// sender's encoder feeds the receiver's decoder — the metric that exposes
// decoder-copy staleness and lossy-sync error.
func CrossEvaluate(sender, receiver *semantic.Codec, examples []semantic.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	feat := make([]float64, sender.FeatureDim())
	correct := 0
	for _, ex := range examples {
		sender.EncodeSurfaceID(ex.SurfaceID, feat)
		if receiver.DecodeFeature(feat) == ex.ConceptID {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}
