// Package mesh turns independent edged processes into one cooperative
// edge cluster: the multi-process counterpart of internal/cluster.
//
// Each process runs a single-sender core.System plus a mesh.Node. The
// node knows the static peer list, probes peer liveness, and maintains a
// consistent-hash ring over the live members — the same ring (same seed,
// same virtual points) the in-process cluster uses, so a user hashes to
// node i in a 3-process mesh exactly when the in-process `-nodes 3`
// cluster routes them to node i. On top of membership the node provides
// the two cross-process data paths:
//
//   - cooperative fetch: the node implements edge.Fetcher; a local
//     general-model cache miss probes peer caches over the v2 wire
//     protocol (OpFetchModel) in ring order before paying the cloud
//     origin, mirroring the in-process cooperative fetcher including its
//     latency accounting (simulated mesh-link transfer time, not
//     wall-clock).
//
//   - handover: when a user's serving node changes (mobility or a peer
//     death), the old owner exports the user's serving state —
//     individual models of both edge sides plus the per-user noise
//     sequence — and pushes it to the new owner (OpHandoverPush), which
//     resumes the user's noise stream bit-identically.
package mesh

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/edge"
	"repro/internal/kb"
	"repro/internal/netsim"
	"repro/internal/rpc"
)

// Config parameterizes a mesh member. Zero fields select documented
// defaults.
type Config struct {
	// Self identifies this member: Name ("node-i"), ring index i, and
	// the address peers reach it at.
	Self rpc.PeerInfo
	// Peers lists every other static member. Indices must be distinct
	// and, together with Self.Index, cover 0..len(Peers) so the ring
	// matches the in-process cluster's.
	Peers []rpc.PeerInfo
	// MeshLink models inter-node transfers (default 10 ms, 100 Mbps —
	// the core EdgeLink default, which is what the in-process cluster
	// charges for neighbor fetches).
	MeshLink netsim.Link
	// RingReplicas is the number of virtual points per node (default 64,
	// matching internal/cluster).
	RingReplicas int
	// RingSeed places the virtual points (default 1, matching
	// internal/cluster). Must equal the system seed the in-process
	// deployment would use for routing parity.
	RingSeed uint64
	// ProbeInterval is the liveness-probe period (default 1s).
	ProbeInterval time.Duration
	// CallTimeout bounds every mesh RPC, probes included (default 2s).
	CallTimeout time.Duration
	// Replicas keeps that many ring-successors warm for hot general
	// models: once a domain's local transmit count crosses the promotion
	// threshold, its general model is proactively pushed to the next
	// Replicas live successors, so the member's death or drain costs zero
	// origin re-fetches for hot models. 0 (the default) disables
	// replication.
	Replicas int
	// Logf receives mesh events; nil discards them.
	Logf func(format string, args ...interface{})
}

func (cfg Config) withDefaults() Config {
	if cfg.MeshLink == (netsim.Link{}) {
		cfg.MeshLink = netsim.Link{Latency: 10 * time.Millisecond, BandwidthBps: 100e6}
	}
	if cfg.RingReplicas == 0 {
		cfg.RingReplicas = 64
	}
	if cfg.RingSeed == 0 {
		cfg.RingSeed = 1
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.CallTimeout == 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	return cfg
}

// peer is one remote member: a lazily-dialed client plus liveness state.
type peer struct {
	info rpc.PeerInfo

	// stateMu serializes liveness transitions so an up observation from a
	// concurrent probe cannot interleave with the departed pin-down.
	stateMu  sync.Mutex
	alive    atomic.Bool
	departed atomic.Bool

	// lastStats is the peer's most recent OpPeerStats snapshot, refreshed
	// by the probe loop; nil before the first successful probe.
	lastStats atomic.Pointer[rpc.NodeStats]

	mu     sync.Mutex
	client *rpc.Client
}

// usable reports the peer is believed alive and not pinned down by an
// OpLeave observation.
func (p *peer) usable() bool { return p.alive.Load() && !p.departed.Load() }

// call dials the peer if needed and runs fn on its client, serializing
// callers (the underlying connection carries one request at a time). The
// call is bounded by both ctx and timeout, whichever expires first, so a
// dead peer can never stall a shutdown past its drain budget. Any error
// tears the connection down so the next call redials.
func (p *peer) call(ctx context.Context, timeout time.Duration, fn func(ctx context.Context, c *rpc.Client) error) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.client == nil {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", p.info.Addr)
		if err != nil {
			return err
		}
		p.client = rpc.NewClient(conn)
	}
	if err := fn(ctx, p.client); err != nil {
		p.client.Close()
		p.client = nil
		return err
	}
	return nil
}

func (p *peer) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.client != nil {
		p.client.Close()
		p.client = nil
	}
}

// Node is this process's mesh membership: liveness view, ring, coop
// fetcher and handover endpoints. It implements edge.Fetcher.
type Node struct {
	cfg   Config
	self  rpc.PeerInfo
	total int // static mesh size

	// Bound after core.NewSystem via Bind.
	sys    *core.System
	origin edge.Fetcher
	corp   *corpus.Corpus

	mu    sync.RWMutex
	peers map[int]*peer // static; peer state mutates, map does not
	ring  *cluster.Ring
	users map[string]struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	// asyncMu gates goAsync against wg.Wait: once stopping is set no new
	// background work may enter the wait group.
	asyncMu  sync.Mutex
	stopping bool

	// heat counts transmits per domain on this member; replicated marks
	// domains whose general model this member already pushed to its
	// successors. Both only populate with Replicas > 0.
	heatMu     sync.Mutex
	heat       map[string]int64
	replicated map[string]bool

	neighborHits   atomic.Int64
	neighborServed atomic.Int64
	neighborBytes  atomic.Int64
	originFetches  atomic.Int64
	originBytes    atomic.Int64
	fetchLatency   atomic.Int64 // summed simulated ns
	handoversIn    atomic.Int64
	handoversOut   atomic.Int64
	migratedBytes  atomic.Int64
	replicasIn     atomic.Int64
	replicasOut    atomic.Int64
}

// NewNode validates the static membership and builds the node. Every
// member starts presumed alive: the ring initially equals the in-process
// cluster's full ring, and the probe loop (Start) demotes members that
// turn out to be unreachable.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	total := len(cfg.Peers) + 1
	seen := map[int]bool{cfg.Self.Index: true}
	if cfg.Self.Index < 0 || cfg.Self.Index >= total {
		return nil, fmt.Errorf("mesh: self index %d out of range [0,%d)", cfg.Self.Index, total)
	}
	n := &Node{
		cfg:        cfg,
		self:       cfg.Self,
		total:      total,
		peers:      make(map[int]*peer, len(cfg.Peers)),
		users:      make(map[string]struct{}, 16),
		stop:       make(chan struct{}),
		heat:       make(map[string]int64, 8),
		replicated: make(map[string]bool, 8),
	}
	for _, pi := range cfg.Peers {
		if pi.Index < 0 || pi.Index >= total || seen[pi.Index] {
			return nil, fmt.Errorf("mesh: peer %q index %d duplicate or out of range [0,%d)", pi.Name, pi.Index, total)
		}
		if pi.Addr == "" {
			return nil, fmt.Errorf("mesh: peer %q has no address", pi.Name)
		}
		seen[pi.Index] = true
		p := &peer{info: pi}
		p.alive.Store(true)
		n.peers[pi.Index] = p
	}
	n.rebuildRing()
	return n, nil
}

// Bind attaches the serving system and the origin fallback fetcher. It
// must run after core.NewSystem and before serving; the chicken-and-egg
// is inherent — the system is built with the node as its SenderFetcher,
// while the node's origin fallback needs the system's cloud registry.
func (n *Node) Bind(sys *core.System, origin edge.Fetcher) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sys = sys
	n.origin = origin
	n.corp = sys.Corpus
}

// Self returns this member's identity.
func (n *Node) Self() rpc.PeerInfo { return n.self }

// Total returns the static mesh size.
func (n *Node) Total() int { return n.total }

// Start announces this member to its peers (best-effort) and launches
// the liveness-probe loop.
func (n *Node) Start() {
	for _, p := range n.peersByIndex() {
		p := p
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.join(p)
		}()
	}
	n.wg.Add(1)
	go n.probeLoop()
}

// beginStop closes the stop channel exactly once and reports whether
// this caller won the shutdown race. Losing callers (a Stop after a
// Drain, concurrent Close/Kill) must not run the shutdown body again.
func (n *Node) beginStop() bool {
	won := false
	n.stopOnce.Do(func() {
		n.asyncMu.Lock()
		n.stopping = true
		n.asyncMu.Unlock()
		close(n.stop)
		won = true
	})
	return won
}

// goAsync runs f on the node's wait group unless shutdown already began.
// The asyncMu handshake with beginStop keeps wg.Add from racing the
// shutdown path's wg.Wait.
func (n *Node) goAsync(f func()) {
	n.asyncMu.Lock()
	defer n.asyncMu.Unlock()
	if n.stopping {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		f()
	}()
}

// Stop announces departure to live peers (best-effort, in parallel, each
// call deadline-bounded), stops probing and closes every peer
// connection. Unlike Drain it ships no state.
func (n *Node) Stop() {
	if !n.beginStop() {
		return
	}
	n.announceLeave(context.Background())
	n.wg.Wait()
	for _, p := range n.peersByIndex() {
		p.close()
	}
}

// Abort stops the node without announcing departure — the process-death
// path: peers must discover the loss through their liveness probes,
// exactly as with a real SIGKILL. Stop after Abort is a no-op.
func (n *Node) Abort() {
	if !n.beginStop() {
		return
	}
	n.wg.Wait()
	for _, p := range n.peersByIndex() {
		p.close()
	}
}

// announceLeave sends OpLeave to every usable peer in parallel. Each call
// is bounded by ctx and CallTimeout, so a dead peer costs at most one
// timeout of the caller's budget, not one per peer.
func (n *Node) announceLeave(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range n.peersByIndex() {
		if !p.usable() {
			continue
		}
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			err := p.call(ctx, n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
				return c.Leave(ctx, n.self)
			})
			if err != nil {
				n.cfg.Logf("mesh: leave %s: %v", p.info.Name, err)
			}
		}(p)
	}
	wg.Wait()
}

// join performs the OpJoin handshake with one peer and applies the
// outcome to the liveness view.
func (n *Node) join(p *peer) {
	err := p.call(context.Background(), n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
		_, err := c.Join(ctx, n.self)
		return err
	})
	n.setAlive(p, err == nil)
	if err != nil {
		n.cfg.Logf("mesh: join %s (%s): %v", p.info.Name, p.info.Addr, err)
	}
}

// probeLoop probes every peer once per ProbeInterval, flipping liveness
// on the observed outcome. The probe is OpPeerStats rather than a bare
// ping: the response piggybacks the peer's cached-general list and
// domain-heat snapshot, which coordinated eviction and replication feed
// on. Departed peers are skipped — only a fresh OpJoin revives them.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
		}
		for _, p := range n.peersByIndex() {
			if p.departed.Load() {
				continue
			}
			var st *rpc.NodeStats
			err := p.call(context.Background(), n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
				var err error
				st, err = c.PeerStats(ctx)
				return err
			})
			if err == nil && st != nil {
				p.lastStats.Store(st)
			}
			n.setAlive(p, err == nil)
		}
	}
}

// setAlive records a liveness observation, rebuilding the ring on a
// transition. An up observation for a peer pinned down by HandleLeave is
// discarded: the departure announcement is authoritative, and a liveness
// probe that raced it (the probe succeeded against the member while it
// was still draining) must not resurrect the departed member.
func (n *Node) setAlive(p *peer, alive bool) {
	p.stateMu.Lock()
	if alive && p.departed.Load() {
		p.stateMu.Unlock()
		return
	}
	changed := p.alive.Swap(alive) != alive
	p.stateMu.Unlock()
	if !changed {
		return
	}
	if alive {
		n.cfg.Logf("mesh: peer %s up", p.info.Name)
	} else {
		n.cfg.Logf("mesh: peer %s down, rebalancing", p.info.Name)
	}
	n.mu.Lock()
	n.rebuildRing()
	n.mu.Unlock()
}

// rebuildRing recomputes the ring over the live members. Callers hold
// n.mu (NewNode runs before concurrency starts).
func (n *Node) rebuildRing() {
	n.ring = cluster.NewRingFor(n.liveMembersLocked(), n.cfg.RingReplicas, n.cfg.RingSeed)
}

func (n *Node) liveMembersLocked() []int {
	members := []int{n.self.Index}
	for idx, p := range n.peers {
		if p.alive.Load() {
			members = append(members, idx)
		}
	}
	sort.Ints(members)
	return members
}

// LiveMembers returns the sorted indices of the members this node
// believes are alive (always including itself).
func (n *Node) LiveMembers() []int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.liveMembersLocked()
}

// Owner returns the ring index that owns user under the current live
// membership.
func (n *Node) Owner(user string) int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ring.Node(user)
}

// Members returns the full static membership, self included, sorted by
// index.
func (n *Node) Members() []rpc.PeerInfo {
	out := make([]rpc.PeerInfo, 0, n.total)
	out = append(out, n.self)
	for _, p := range n.peersByIndex() {
		out = append(out, p.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// peersByIndex returns the remote peers in ascending index order.
func (n *Node) peersByIndex() []*peer {
	out := make([]*peer, 0, len(n.peers))
	for off := 1; off < n.total; off++ {
		if p, ok := n.peers[(n.self.Index+off)%n.total]; ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].info.Index < out[j].info.Index })
	return out
}

// HandleJoin serves a peer's OpJoin: the announcement is a liveness
// observation, and the response tells the joiner who this node knows. A
// fresh join is the only event that lifts a departed pin.
func (n *Node) HandleJoin(pi rpc.PeerInfo) []rpc.PeerInfo {
	if p, ok := n.peers[pi.Index]; ok && p.info.Name == pi.Name {
		p.stateMu.Lock()
		p.departed.Store(false)
		changed := !p.alive.Swap(true)
		p.stateMu.Unlock()
		if changed {
			n.cfg.Logf("mesh: peer %s up", p.info.Name)
			n.mu.Lock()
			n.rebuildRing()
			n.mu.Unlock()
		}
	}
	return n.Members()
}

// HandleLeave serves a peer's OpLeave: an authoritative down observation
// that pins the member down. Probe successes observed concurrently (the
// draining member still answers RPCs until it exits) cannot resurrect
// it; only a fresh OpJoin does.
func (n *Node) HandleLeave(pi rpc.PeerInfo) {
	p, ok := n.peers[pi.Index]
	if !ok || p.info.Name != pi.Name {
		return
	}
	p.stateMu.Lock()
	p.departed.Store(true)
	changed := p.alive.Swap(false)
	p.stateMu.Unlock()
	if changed {
		n.cfg.Logf("mesh: peer %s left, rebalancing", p.info.Name)
		n.mu.Lock()
		n.rebuildRing()
		n.mu.Unlock()
	}
}

// TouchUser records that this node served user (stats only).
func (n *Node) TouchUser(user string) {
	n.mu.Lock()
	n.users[user] = struct{}{}
	n.mu.Unlock()
}

func (n *Node) dropUser(user string) {
	n.mu.Lock()
	delete(n.users, user)
	n.mu.Unlock()
}

// Stats snapshots this member's mesh counters in the shared wire shape.
func (n *Node) Stats() rpc.NodeStats {
	n.mu.RLock()
	users := len(n.users)
	sys := n.sys
	n.mu.RUnlock()
	st := rpc.NodeStats{
		Name:           n.self.Name,
		Users:          users,
		HandoversIn:    n.handoversIn.Load(),
		HandoversOut:   n.handoversOut.Load(),
		NeighborHits:   n.neighborHits.Load(),
		NeighborServed: n.neighborServed.Load(),
		OriginFetches:  n.originFetches.Load(),
		NeighborBytes:  n.neighborBytes.Load(),
		OriginBytes:    n.originBytes.Load(),
		FetchLatencyMs: float64(n.fetchLatency.Load()) / float64(time.Millisecond),
		ReplicasIn:     n.replicasIn.Load(),
		ReplicasOut:    n.replicasOut.Load(),
	}
	if sys != nil {
		st.HitRate = sys.Sender.CacheStats().HitRate()
		st.CachedModels = sys.Sender.Cache().Len()
		st.CacheUsedBytes = sys.Sender.Cache().Used()
		st.Generals = n.generalDomains(sys)
	}
	st.Hot = n.hotDomains()
	return st
}

// generalDomains lists the domains whose general model the sender cache
// holds, sorted.
func (n *Node) generalDomains(sys *core.System) []string {
	keys := sys.Sender.Cache().KeysWhere(func(k kb.Key) bool {
		return k.User == "" && k.Role == kb.RoleCodec
	})
	if len(keys) == 0 {
		return nil
	}
	doms := make([]string, len(keys))
	for i, k := range keys {
		doms[i] = k.Domain
	}
	sort.Strings(doms)
	return doms
}

// hotDomains snapshots the per-domain transmit counts, hottest first,
// capped to the hottest 8 — the popularity signal piggybacked on the
// OpPeerStats probe exchange.
func (n *Node) hotDomains() []rpc.DomainHeat {
	n.heatMu.Lock()
	out := make([]rpc.DomainHeat, 0, len(n.heat))
	for d, c := range n.heat {
		out = append(out, rpc.DomainHeat{Domain: d, Count: c})
	}
	n.heatMu.Unlock()
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Domain < out[j].Domain
	})
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

// EvictionGuard implements the mesh-wide last-holder check for
// coordinated eviction: evicting a general model is vetoed when, by this
// member's latest peer-stats snapshots, no live peer holds a copy — the
// aggregate mesh cache must not silently lose its only replica of a
// domain. User-individual models are always local-only and evict freely.
// The guard runs under the cache lock and reads only atomics.
func (n *Node) EvictionGuard(k kb.Key) bool {
	if k.User != "" || k.Role != kb.RoleCodec {
		return true
	}
	for _, p := range n.peersByIndex() {
		if !p.usable() {
			continue
		}
		st := p.lastStats.Load()
		if st == nil {
			continue
		}
		for _, d := range st.Generals {
			if d == k.Domain {
				return true
			}
		}
	}
	return false
}

// HandoverStats returns the aggregate handover counters (out-side, the
// figure the in-process cluster reports).
func (n *Node) HandoverStats() (handovers, migratedBytes int64) {
	return n.handoversOut.Load(), n.migratedBytes.Load()
}
