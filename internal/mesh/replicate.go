package mesh

import (
	"bytes"
	"context"

	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/rpc"
)

// replicaHotCount is the per-domain transmit count that promotes a
// general model to "hot": crossing it triggers the one-time proactive
// replica push to the node's ring-successors.
const replicaHotCount = 16

// NoteDomain records one served transmit for domain — the popularity
// signal hot-model replication promotes on. When the domain crosses the
// promotion threshold for the first time, its general model is pushed
// asynchronously to the next Replicas live successors so losing this
// member costs zero origin re-fetches for the hot model.
func (n *Node) NoteDomain(domain string) {
	if n.cfg.Replicas <= 0 {
		return
	}
	n.heatMu.Lock()
	n.heat[domain]++
	promote := n.heat[domain] >= replicaHotCount && !n.replicated[domain]
	if promote {
		n.replicated[domain] = true
	}
	n.heatMu.Unlock()
	if !promote {
		return
	}
	n.goAsync(func() { n.pushReplicas(domain) })
}

// pushReplicas pushes domain's general model to the next Replicas usable
// successors in index order — the same order the cooperative fetcher
// probes on a miss, so replicas sit where a survivor looks first. A
// successor whose latest stats snapshot already lists the domain counts
// as warm without a wire transfer.
func (n *Node) pushReplicas(domain string) {
	n.mu.RLock()
	sys := n.sys
	n.mu.RUnlock()
	if sys == nil {
		return
	}
	payload, ok := n.generalPayload(sys, domain)
	if !ok {
		return // evicted since promotion; nothing to push
	}
	push := &rpc.HandoffPayload{
		FromNode: n.self.Name,
		Reason:   rpc.HandoffReplica,
		General:  []rpc.ModelPayload{*payload},
	}
	pushed := 0
	for off := 1; off < n.total && pushed < n.cfg.Replicas; off++ {
		p, ok := n.peers[(n.self.Index+off)%n.total]
		if !ok || !p.usable() {
			continue
		}
		if st := p.lastStats.Load(); st != nil && containsString(st.Generals, domain) {
			pushed++ // already warm
			continue
		}
		err := p.call(context.Background(), n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
			return c.HandoverPush(ctx, push)
		})
		if err != nil {
			n.setAlive(p, false)
			n.cfg.Logf("mesh: replica push %s to %s: %v", domain, p.info.Name, err)
			continue
		}
		n.replicasOut.Add(1)
		pushed++
		n.cfg.Logf("mesh: replicated hot model %s to %s", domain, p.info.Name)
	}
}

// generalPayload serializes domain's general model from the local sender
// cache with Peek semantics (a push must not distort local hit stats or
// recency), for drain and replica pushes.
func (n *Node) generalPayload(sys *core.System, domain string) (*rpc.ModelPayload, bool) {
	m, ok := sys.Sender.Cache().Peek(kb.Key{Domain: domain, Role: kb.RoleCodec})
	if !ok {
		return nil, false
	}
	var buf bytes.Buffer
	if _, err := m.Codec.WriteTo(&buf); err != nil {
		n.cfg.Logf("mesh: serialize general %s: %v", domain, err)
		return nil, false
	}
	return &rpc.ModelPayload{Domain: domain, Version: m.Version, Params: buf.Bytes()}, true
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
