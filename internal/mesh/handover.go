package mesh

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/kb"
	"repro/internal/rpc"
)

// Handoff side labels on the wire.
const (
	sideSender   = "sender"
	sideReceiver = "receiver"
)

// exportToWire flattens a user's exported serving state into the v2
// handover payload: both sides' individual models, the selection belief
// and the pending federated-update buffers.
func exportToWire(exp *core.UserExport, from string) *rpc.HandoffPayload {
	h := &rpc.HandoffPayload{User: exp.User, FromNode: from, NoiseSeq: exp.NoiseSeq}
	add := func(side string, models []*edge.ExportedModel) {
		for _, m := range models {
			h.Models = append(h.Models, rpc.HandoffModel{Side: side, Model: rpc.ModelPayload{
				Domain:  m.Domain,
				User:    m.User,
				Version: m.Version,
				Params:  m.Params,
			}})
		}
	}
	add(sideSender, exp.Sender)
	add(sideReceiver, exp.Receiver)
	h.Belief = exp.Belief
	for _, b := range exp.Buffers {
		wb := rpc.BufferState{Domain: b.Domain}
		for _, tx := range b.Txs {
			wb.Txs = append(wb.Txs, rpc.TxState{
				Surfaces: tx.SurfaceIDs,
				Concepts: tx.ConceptIDs,
				Decoded:  tx.Decoded,
			})
		}
		h.Buffers = append(h.Buffers, wb)
	}
	return h
}

// exportFromWire is the inverse of exportToWire.
func exportFromWire(h *rpc.HandoffPayload) (*core.UserExport, error) {
	exp := &core.UserExport{User: h.User, NoiseSeq: h.NoiseSeq, Belief: h.Belief}
	for _, hm := range h.Models {
		m := &edge.ExportedModel{
			Domain:  hm.Model.Domain,
			User:    hm.Model.User,
			Version: hm.Model.Version,
			Params:  hm.Model.Params,
		}
		switch hm.Side {
		case sideSender:
			exp.Sender = append(exp.Sender, m)
		case sideReceiver:
			exp.Receiver = append(exp.Receiver, m)
		default:
			return nil, fmt.Errorf("mesh: unknown handoff side %q", hm.Side)
		}
	}
	for _, wb := range h.Buffers {
		b := edge.BufferState{Domain: wb.Domain}
		for _, tx := range wb.Txs {
			b.Txs = append(b.Txs, fl.Transaction{
				SurfaceIDs: tx.Surfaces,
				ConceptIDs: tx.Concepts,
				Decoded:    tx.Decoded,
			})
		}
		exp.Buffers = append(exp.Buffers, b)
	}
	return exp, nil
}

// MoveUser serves a v1 "move" op on a mesh member: attach the user to a
// radio cell and, when the cell maps to a different live member, push
// the user's serving state there and drop it locally. The reported
// latency is the simulated mesh-link transfer of the sender-side
// payload, mirroring the in-process cluster's handover accounting.
func (n *Node) MoveUser(user string, cell int) (*rpc.Handover, error) {
	n.mu.RLock()
	sys := n.sys
	n.mu.RUnlock()
	if sys == nil {
		return nil, fmt.Errorf("mesh: node not bound to a system")
	}
	members := n.LiveMembers()
	target := members[((cell%len(members))+len(members))%len(members)]
	if target == n.self.Index {
		n.TouchUser(user)
		return &rpc.Handover{From: n.self.Name, To: n.self.Name}, nil
	}
	p, ok := n.peers[target]
	if !ok {
		return nil, fmt.Errorf("mesh: no peer at index %d", target)
	}
	exp, err := sys.ExportUserForHandover(user)
	if err != nil {
		return nil, err
	}
	payload := exportToWire(exp, n.self.Name)
	err = p.call(context.Background(), n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
		return c.HandoverPush(ctx, payload)
	})
	if err != nil {
		n.setAlive(p, false)
		return nil, fmt.Errorf("mesh: handover %s to %s: %w", user, p.info.Name, err)
	}
	sys.DropUserAfterHandover(exp)
	n.dropUser(user)
	bytes := exp.SenderBytes()
	n.handoversOut.Add(1)
	n.migratedBytes.Add(bytes)
	return &rpc.Handover{
		From:          n.self.Name,
		To:            p.info.Name,
		Moved:         true,
		Models:        len(exp.Sender),
		MigratedBytes: bytes,
		LatencyMs:     float64(n.cfg.MeshLink.TransferTime(bytes)) / float64(time.Millisecond),
	}, nil
}

// HandleHandoverPush serves a peer's OpHandoverPush: install any pushed
// general models (drain rebalancing or a hot-model replica), then the
// user state, so the first local transmit continues the user's noise
// stream exactly where the old owner stopped.
func (n *Node) HandleHandoverPush(h *rpc.HandoffPayload) error {
	n.mu.RLock()
	sys := n.sys
	n.mu.RUnlock()
	if sys == nil {
		return fmt.Errorf("mesh: node not bound to a system")
	}
	for i := range h.General {
		g := &h.General[i]
		k := kb.Key{Domain: g.Domain, Role: kb.RoleCodec}
		m, err := n.reviveModel(k, g)
		if err != nil {
			return fmt.Errorf("mesh: revive pushed general %s: %w", g.Domain, err)
		}
		// A drain push makes this node an owner: install exactly as a
		// local origin fetch would (pin iff this edge pins generals). A
		// replica push is a cache hint and stays evictable — coordinated
		// eviction protects the mesh's last copy.
		pinned := h.Reason == rpc.HandoffDrain && sys.Sender.PinsGeneral()
		if err := sys.Sender.Cache().Put(m, pinned); err != nil {
			if h.Reason == rpc.HandoffReplica {
				n.cfg.Logf("mesh: replica %s rejected: %v", g.Domain, err)
				continue
			}
			return fmt.Errorf("mesh: install pushed general %s: %w", g.Domain, err)
		}
		if h.Reason == rpc.HandoffReplica {
			n.replicasIn.Add(1)
		}
	}
	if h.User == "" {
		return nil // pure general-model push, no user state rides along
	}
	exp, err := exportFromWire(h)
	if err != nil {
		return err
	}
	if err := sys.ImportUserFromHandover(exp); err != nil {
		return err
	}
	n.handoversIn.Add(1)
	n.TouchUser(h.User)
	return nil
}
