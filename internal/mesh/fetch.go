package mesh

import (
	"bytes"
	"context"
	"errors"

	"repro/internal/edge"
	"repro/internal/kb"
	"repro/internal/rpc"
	"repro/internal/semantic"
)

// parseRole maps the wire role name back to a kb.Role.
func parseRole(s string) (kb.Role, error) {
	for _, r := range []kb.Role{kb.RoleEncoder, kb.RoleDecoder, kb.RoleCodec} {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, errors.New("mesh: unknown model role " + s)
}

// FetchModel implements edge.Fetcher: resolve a local sender-cache miss
// cooperatively by probing live peers over the wire in ring order
// (nearest successor first), then fall back to the cloud origin. The
// probe order, Peek semantics and simulated latency accounting mirror
// the in-process cluster's cooperative fetcher exactly: a neighbor hit
// costs one mesh-link transfer of the model's role-sized parameters —
// wall-clock time spent on the TCP round-trip is not part of the model.
func (n *Node) FetchModel(k kb.Key) (edge.Fetch, error) {
	if n.origin == nil {
		return edge.Fetch{}, errors.New("mesh: node not bound to a system")
	}
	req := rpc.FetchRequest{Domain: k.Domain, User: k.User, Role: k.Role.String()}
	for off := 1; off < n.total; off++ {
		p, ok := n.peers[(n.self.Index+off)%n.total]
		if !ok || !p.usable() {
			continue
		}
		var payload *rpc.ModelPayload
		err := p.call(context.Background(), n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
			var err error
			payload, err = c.FetchModel(ctx, req)
			return err
		})
		if err != nil {
			n.setAlive(p, false)
			continue
		}
		if payload == nil {
			continue // peer cache miss; keep probing
		}
		m, err := n.reviveModel(k, payload)
		if err != nil {
			// The peer answered but the stream did not revive: the
			// connection's framing state is suspect, so tear the client
			// down rather than reuse it for the next call.
			p.close()
			n.cfg.Logf("mesh: fetch %s from %s: %v", k, p.info.Name, err)
			continue
		}
		lat := n.cfg.MeshLink.TransferTime(m.SizeBytes())
		n.neighborHits.Add(1)
		n.neighborBytes.Add(m.SizeBytes())
		n.fetchLatency.Add(int64(lat))
		return edge.Fetch{Model: m, Latency: lat, Remote: true}, nil
	}
	fetch, err := n.origin.FetchModel(k)
	if err != nil {
		return edge.Fetch{}, err
	}
	n.originFetches.Add(1)
	n.originBytes.Add(fetch.Model.SizeBytes())
	n.fetchLatency.Add(int64(fetch.Latency))
	return fetch, nil
}

// reviveModel reconstructs a kb.Model from its wire payload — the full
// codec stream, so the receiving process depends only on bytes that
// actually crossed the network, never on shared memory.
func (n *Node) reviveModel(k kb.Key, payload *rpc.ModelPayload) (*kb.Model, error) {
	codec, err := semantic.ReadCodec(bytes.NewReader(payload.Params), n.corp)
	if err != nil {
		return nil, err
	}
	return &kb.Model{Key: k, Version: payload.Version, Codec: codec}, nil
}

// HandleFetch serves a peer's OpFetchModel: peek the local sender cache
// (Peek, so remote demand never distorts this node's own eviction order
// or hit statistics) and ship the full codec stream on a hit. A miss
// returns nil — the prober moves on to the next member.
func (n *Node) HandleFetch(f rpc.FetchRequest) (*rpc.ModelPayload, error) {
	role, err := parseRole(f.Role)
	if err != nil {
		return nil, err
	}
	n.mu.RLock()
	sys := n.sys
	n.mu.RUnlock()
	if sys == nil {
		return nil, errors.New("mesh: node not bound to a system")
	}
	m, ok := sys.Sender.Cache().Peek(kb.Key{Domain: f.Domain, User: f.User, Role: role})
	if !ok {
		return nil, nil
	}
	var buf bytes.Buffer
	if _, err := m.Codec.WriteTo(&buf); err != nil {
		return nil, err
	}
	n.neighborServed.Add(1)
	return &rpc.ModelPayload{Domain: f.Domain, User: f.User, Version: m.Version, Params: buf.Bytes()}, nil
}
