package mesh

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kb"
	"repro/internal/rpc"
)

// Drain gracefully removes this member from the mesh: it stops the probe
// loop, pushes every general model it owns and every tracked user's
// complete serving state to the consistent-hash owners under the
// surviving membership, announces OpLeave to every live peer (in
// parallel), and closes the peer connections. Every peer RPC is bounded
// by ctx as well as CallTimeout, so a dead peer cannot stall the drain
// past its budget; on ctx expiry the remaining pushes fail fast and the
// caller falls back to crash-stop semantics for whatever state is left.
// Drain, Stop and Abort are mutually idempotent — whichever runs first
// wins.
func (n *Node) Drain(ctx context.Context) error {
	if !n.beginStop() {
		return nil
	}
	n.wg.Wait() // probe loop, joins and in-flight replica pushes are done
	defer func() {
		for _, p := range n.peersByIndex() {
			p.close()
		}
	}()

	n.mu.RLock()
	sys := n.sys
	n.mu.RUnlock()

	// The handoff ring is built over the surviving membership — the same
	// membership (and ring seed) a client recomputes after marking this
	// member dead, so every pushed user lands exactly where retried
	// requests will be routed.
	var survivors []int
	for idx, p := range n.peers {
		if p.usable() {
			survivors = append(survivors, idx)
		}
	}
	sort.Ints(survivors)
	if len(survivors) == 0 {
		n.cfg.Logf("mesh: drain: no live peers, nothing to hand off")
		return nil
	}
	ring := cluster.NewRingFor(survivors, n.cfg.RingReplicas, n.cfg.RingSeed)

	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	if sys != nil {
		n.drainGenerals(ctx, sys, ring, fail)
		n.drainUsers(ctx, sys, ring, fail)
	}
	n.announceLeave(ctx)
	if err := ctx.Err(); err != nil {
		fail(err)
	}
	return firstErr
}

// drainGenerals pushes every general model in the local sender cache to
// its new ring owner, skipping owners whose latest stats snapshot shows
// they already hold a copy.
func (n *Node) drainGenerals(ctx context.Context, sys *core.System, ring *cluster.Ring, fail func(error)) {
	keys := sys.Sender.Cache().KeysWhere(func(k kb.Key) bool {
		return k.User == "" && k.Role == kb.RoleCodec
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i].Domain < keys[j].Domain })
	for _, k := range keys {
		target := ring.Node(k.Domain)
		p, ok := n.peers[target]
		if !ok || !p.usable() {
			fail(fmt.Errorf("mesh: drain: no live owner for general %s (target %d)", k.Domain, target))
			continue
		}
		if st := p.lastStats.Load(); st != nil && containsString(st.Generals, k.Domain) {
			continue // the new owner already holds a copy: nothing lost
		}
		payload, ok := n.generalPayload(sys, k.Domain)
		if !ok {
			continue
		}
		push := &rpc.HandoffPayload{
			FromNode: n.self.Name,
			Reason:   rpc.HandoffDrain,
			General:  []rpc.ModelPayload{*payload},
		}
		err := p.call(ctx, n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
			return c.HandoverPush(ctx, push)
		})
		if err != nil {
			n.setAlive(p, false)
			fail(fmt.Errorf("mesh: drain push general %s to %s: %w", k.Domain, p.info.Name, err))
			continue
		}
		n.cfg.Logf("mesh: drained general %s to %s", k.Domain, p.info.Name)
	}
}

// drainUsers exports and pushes every tracked user's serving state to
// its new ring owner, dropping the local copy after each successful
// push.
func (n *Node) drainUsers(ctx context.Context, sys *core.System, ring *cluster.Ring, fail func(error)) {
	n.mu.RLock()
	users := make([]string, 0, len(n.users))
	for u := range n.users {
		users = append(users, u)
	}
	n.mu.RUnlock()
	sort.Strings(users)
	handed := 0
	for _, user := range users {
		target := ring.Node(user)
		p, ok := n.peers[target]
		if !ok || !p.usable() {
			fail(fmt.Errorf("mesh: drain: no live owner for user %s (target %d)", user, target))
			continue
		}
		exp, err := sys.ExportUserForHandover(user)
		if err != nil {
			fail(fmt.Errorf("mesh: drain export %s: %w", user, err))
			continue
		}
		h := exportToWire(exp, n.self.Name)
		h.Reason = rpc.HandoffDrain
		err = p.call(ctx, n.cfg.CallTimeout, func(ctx context.Context, c *rpc.Client) error {
			return c.HandoverPush(ctx, h)
		})
		if err != nil {
			n.setAlive(p, false)
			fail(fmt.Errorf("mesh: drain push %s to %s: %w", user, p.info.Name, err))
			continue
		}
		sys.DropUserAfterHandover(exp)
		n.dropUser(user)
		n.handoversOut.Add(1)
		n.migratedBytes.Add(exp.SenderBytes())
		handed++
	}
	n.cfg.Logf("mesh: drained %d/%d users", handed, len(users))
}
