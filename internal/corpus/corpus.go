package corpus

import (
	"fmt"
	"sort"
)

// Domain is a fully built domain knowledge base: the lexicon a
// domain-specialized semantic codec is trained on.
type Domain struct {
	// Name is the domain identifier, e.g. "it".
	Name string
	// Index is the position within the corpus' domain list.
	Index int
	// Concepts holds function concepts first, then content concepts.
	Concepts []Concept
	// NumFunction is the count of leading function-word concepts.
	NumFunction int

	// surfaces is the deterministic local lexicon; index 0 is the unknown
	// surface "<unk>".
	surfaces   []string
	surfaceIDs map[string]int
	// surfaceConcept maps local surface ID to concept index (-1 for unknown).
	surfaceConcept []int
}

// UnknownSurfaceID is the local surface ID reserved for out-of-domain words.
const UnknownSurfaceID = 0

// VocabSize returns the number of local surfaces including the unknown
// surface.
func (d *Domain) VocabSize() int { return len(d.surfaces) }

// NumConcepts returns the number of concepts in the domain.
func (d *Domain) NumConcepts() int { return len(d.Concepts) }

// SurfaceID returns the local ID for word, or UnknownSurfaceID when the
// word is not part of this domain's lexicon.
func (d *Domain) SurfaceID(word string) int {
	if id, ok := d.surfaceIDs[word]; ok {
		return id
	}
	return UnknownSurfaceID
}

// Surface returns the word for a local surface ID.
func (d *Domain) Surface(id int) string {
	if id < 0 || id >= len(d.surfaces) {
		return "<unk>"
	}
	return d.surfaces[id]
}

// HasSurface reports whether word belongs to this domain's lexicon.
func (d *Domain) HasSurface(word string) bool {
	_, ok := d.surfaceIDs[word]
	return ok
}

// ConceptOf returns the concept index expressed by word within this domain.
func (d *Domain) ConceptOf(word string) (int, bool) {
	id, ok := d.surfaceIDs[word]
	if !ok {
		return -1, false
	}
	ci := d.surfaceConcept[id]
	if ci < 0 {
		return -1, false
	}
	return ci, true
}

// ConceptOfSurfaceID returns the concept index for a local surface ID, or
// -1 for the unknown surface.
func (d *Domain) ConceptOfSurfaceID(id int) int {
	if id < 0 || id >= len(d.surfaceConcept) {
		return -1
	}
	return d.surfaceConcept[id]
}

// Canonical returns the canonical surface of concept index ci.
func (d *Domain) Canonical(ci int) string {
	if ci < 0 || ci >= len(d.Concepts) {
		return "<unk>"
	}
	return d.Concepts[ci].Canonical()
}

// ContentConcepts returns the indices of non-function concepts.
func (d *Domain) ContentConcepts() []int {
	out := make([]int, 0, len(d.Concepts)-d.NumFunction)
	for i := d.NumFunction; i < len(d.Concepts); i++ {
		out = append(out, i)
	}
	return out
}

// Surfaces returns a copy of the local lexicon in surface-ID order.
func (d *Domain) Surfaces() []string {
	out := make([]string, len(d.surfaces))
	copy(out, d.surfaces)
	return out
}

// Corpus is the complete multi-domain language definition.
type Corpus struct {
	Domains []*Domain
	byName  map[string]int
}

// Build constructs the built-in eight-domain corpus. The result is fully
// deterministic. Build panics if the static domain data violates its
// invariants (duplicate canonical surfaces across domains, or a surface
// bound to two concepts within one domain); the corpus tests exercise these
// invariants.
func Build() *Corpus {
	canonOwner := make(map[string]string, 256)
	corp := &Corpus{
		Domains: make([]*Domain, 0, len(domainSpecs)),
		byName:  make(map[string]int, len(domainSpecs)),
	}
	for di, spec := range domainSpecs {
		d := &Domain{
			Name:        spec.name,
			Index:       di,
			NumFunction: len(functionWords),
			surfaces:    make([]string, 0, 1+len(functionWords)+3*len(spec.concepts)),
			surfaceIDs:  make(map[string]int, 128),
		}
		d.surfaces = append(d.surfaces, "<unk>")
		d.surfaceConcept = append(d.surfaceConcept, -1)

		addSurface := func(word string, concept int) {
			if prev, ok := d.surfaceIDs[word]; ok {
				panic(fmt.Sprintf("corpus: surface %q bound to two concepts (%d and %d) in domain %s",
					word, d.surfaceConcept[prev], concept, d.Name))
			}
			d.surfaceIDs[word] = len(d.surfaces)
			d.surfaces = append(d.surfaces, word)
			d.surfaceConcept = append(d.surfaceConcept, concept)
		}

		polySet := make(map[string]struct{}, 16)
		for _, p := range PolysemousSurfaces() {
			polySet[p] = struct{}{}
		}
		for _, fw := range functionWords {
			ci := len(d.Concepts)
			d.Concepts = append(d.Concepts, Concept{
				Key:      "fn:" + fw,
				Surfaces: []string{fw},
				Function: true,
				PolyIdx:  -1,
			})
			addSurface(fw, ci)
		}
		for _, surfaces := range spec.concepts {
			canonical := surfaces[0]
			if owner, ok := canonOwner[canonical]; ok {
				panic(fmt.Sprintf("corpus: canonical surface %q reused by domains %s and %s",
					canonical, owner, spec.name))
			}
			canonOwner[canonical] = spec.name
			ci := len(d.Concepts)
			polyIdx := -1
			for si, s := range surfaces {
				if _, ok := polySet[s]; ok && si > 0 {
					polyIdx = si
				}
			}
			d.Concepts = append(d.Concepts, Concept{
				Key:      spec.name + ":" + canonical,
				Surfaces: append([]string(nil), surfaces...),
				PolyIdx:  polyIdx,
			})
			for _, s := range surfaces {
				addSurface(s, ci)
			}
		}
		corp.byName[spec.name] = di
		corp.Domains = append(corp.Domains, d)
	}
	return corp
}

// Domain returns the domain with the given name, or nil if absent.
func (c *Corpus) Domain(name string) *Domain {
	if i, ok := c.byName[name]; ok {
		return c.Domains[i]
	}
	return nil
}

// Names returns all domain names in index order.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.Domains))
	for i, d := range c.Domains {
		out[i] = d.Name
	}
	return out
}

// AllSurfaces returns the sorted union of every domain's lexicon (excluding
// the unknown surface). The classical baseline trains its source coder on
// this set.
func (c *Corpus) AllSurfaces() []string {
	set := make(map[string]struct{}, 1024)
	for _, d := range c.Domains {
		for _, s := range d.surfaces[1:] {
			set[s] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
