// Package corpus builds the synthetic domain-oriented language on which the
// semantic-communication system operates.
//
// The paper's knowledge bases are domain-specialized: the same surface word
// can carry different meanings in different domains (its example: "bus" is a
// vehicle in daily life but an interconnect in computer architecture). This
// package makes that structure explicit and controllable:
//
//   - a Concept is a unit of meaning with one canonical surface form and
//     zero or more rarer synonyms (the "tail" surfaces);
//   - a Domain is a set of concepts (shared function-word concepts plus
//     domain-specific content concepts);
//   - polysemous surfaces appear in several domains mapped to different
//     concepts;
//   - an Idiolect models a user's personal preference for rare synonyms,
//     which is what the user-specific individual models of the paper must
//     learn.
package corpus

// Concept is one unit of meaning within a domain.
type Concept struct {
	// Key uniquely identifies the concept across all domains, e.g.
	// "it:server" or "fn:the".
	Key string
	// Surfaces lists the words that express this concept; Surfaces[0] is
	// the canonical form used for restoration.
	Surfaces []string
	// Function marks closed-class words shared across domains.
	Function bool
	// PolyIdx is the index in Surfaces of a curated polysemous surface
	// (e.g. "bus"), or -1 when the concept has none. Polysemous surfaces
	// are everyday words, so the generator emits them far more often than
	// ordinary tail synonyms.
	PolyIdx int
}

// Canonical returns the canonical surface form.
func (c *Concept) Canonical() string { return c.Surfaces[0] }

// domainSpec is the static definition a Domain is built from.
type domainSpec struct {
	name     string
	concepts [][]string // each entry: canonical followed by synonyms
}

// functionWords are closed-class words shared by every domain; each is its
// own concept and never has synonyms.
var functionWords = []string{
	"the", "a", "an", "is", "are", "was", "to", "of", "in", "on",
	"at", "with", "for", "and", "or", "but", "this", "that", "it", "we",
	"you", "they", "has", "have", "will", "can", "new", "more", "very", "now",
}

// c builds a concept surface list: canonical followed by rare synonyms.
func c(surfaces ...string) []string { return surfaces }

// domainSpecs defines the eight built-in domains.
//
// Synonyms after the canonical form are the rare "tail" surfaces that
// general models see infrequently during pretraining. The curated
// polysemous surfaces (bus, virus, cell, stream, court, pitch, driver,
// bank, patch, mouse) each appear in exactly two domains under different
// concepts — reproducing the paper's "bus" example. A handful of natural
// accidental polysemes (e.g. "summit", "season", "game") also exist across
// domains; within a single domain every surface maps to exactly one
// concept, an invariant enforced by Build.
var domainSpecs = []domainSpec{
	{
		name: "it",
		concepts: [][]string{
			c("server", "host", "mainframe"),
			c("network", "lan"),
			c("database", "datastore"),
			c("compiler", "toolchain"),
			c("kernel"),
			c("protocol", "handshake"),
			c("packet", "datagram", "frame"),
			c("memory", "ram"),
			c("code", "program", "source"),
			c("bug", "defect", "glitch"),
			c("cloud"),
			c("processor", "cpu", "chip"),
			c("firewall"),
			c("router", "gateway"),
			c("algorithm", "heuristic"),
			c("encryption", "cipher"),
			c("latency", "lag"),
			c("bandwidth", "throughput"),
			c("software", "application"),
			c("hardware"),
			c("interface", "api"),
			c("thread", "goroutine"),
			c("interconnect", "bus", "backplane"), // polysemy: bus
			c("malware", "virus", "trojan"),       // polysemy: virus
			c("basestation", "cell", "antenna"),   // polysemy: cell
			c("datastream", "stream", "feed"),     // polysemy: stream
			c("module", "driver", "plugin"),       // polysemy: driver
			c("update", "patch", "hotfix"),        // polysemy: patch
			c("pointer", "mouse", "cursor"),       // polysemy: mouse
		},
	},
	{
		name: "medical",
		concepts: [][]string{
			c("doctor", "physician", "medic"),
			c("patient", "case"),
			c("hospital", "clinic", "ward"),
			c("treatment", "therapy", "regimen"),
			c("diagnosis", "prognosis"),
			c("surgery", "operation"),
			c("medicine", "drug", "medication"),
			c("vaccine", "shot", "immunization"),
			c("symptom", "sign"),
			c("disease", "illness", "condition"),
			c("nurse", "caregiver"),
			c("blood", "plasma"),
			c("heart", "cardiac"),
			c("brain", "neural"),
			c("infection", "sepsis"),
			c("recovery", "healing"),
			c("dose", "dosage"),
			c("trial", "study"),
			c("scan", "imaging", "mri"),
			c("gene", "dna"),
			c("pathogen", "virus", "microbe"),  // polysemy: virus
			c("biocell", "cell", "tissue"),     // polysemy: cell
			c("dressing", "patch", "bandage"),  // polysemy: patch
			c("labmouse", "mouse", "specimen"), // polysemy: mouse
			c("fracture", "break"),
			c("allergy", "reaction"),
		},
	},
	{
		name: "news",
		concepts: [][]string{
			c("government", "administration", "cabinet"),
			c("election", "vote", "ballot"),
			c("president", "leader"),
			c("parliament", "congress", "senate"),
			c("policy", "legislation", "bill"),
			c("economy", "gdp"),
			c("protest", "demonstration", "rally"),
			c("journalist", "reporter", "correspondent"),
			c("investigation", "probe", "inquiry"),
			c("scandal", "controversy"),
			c("minister", "secretary"),
			c("summit", "conference"),
			c("treaty", "agreement", "accord"),
			c("border", "frontier"),
			c("crisis", "emergency"),
			c("statement", "announcement", "remarks"),
			c("campaign", "race"),
			c("tribunal", "court", "judiciary"), // polysemy: court
			c("reform", "overhaul"),
			c("sanction", "embargo"),
			c("diplomat", "envoy"),
			c("headline", "story"),
			c("region", "province"),
			c("crime", "offense"),
			c("verdict", "ruling", "judgment"),
			c("debate", "hearing"),
		},
	},
	{
		name: "entertainment",
		concepts: [][]string{
			c("movie", "film", "feature"),
			c("actor", "star", "performer"),
			c("director", "filmmaker"),
			c("album", "record", "lp"),
			c("song", "track", "single"),
			c("concert", "gig", "show"),
			c("band", "group"),
			c("festival", "premiere"),
			c("award", "trophy", "prize"),
			c("celebrity", "icon"),
			c("studio", "label"),
			c("script", "screenplay"),
			c("drama", "thriller"),
			c("comedy", "sitcom"),
			c("audience", "fans", "crowd"),
			c("review", "critique"),
			c("ticket", "pass"),
			c("stage", "venue"),
			c("series", "season"),
			c("trailer", "teaser"),
			c("broadcast", "stream", "airing"), // polysemy: stream
			c("proposal", "pitch"),             // polysemy: pitch
			c("musician", "artist"),
			c("genre", "style"),
			c("boxoffice", "gross"),
			c("soundtrack", "score"),
		},
	},
	{
		name: "sports",
		concepts: [][]string{
			c("team", "squad", "club"),
			c("player", "athlete"),
			c("coach", "manager", "trainer"),
			c("game", "match", "fixture"),
			c("goal", "score"),
			c("league", "division"),
			c("championship", "title", "cup"),
			c("tournament", "playoff"),
			c("stadium", "arena", "ground"),
			c("season", "campaign"),
			c("injury", "knock"),
			c("transfer", "signing"),
			c("referee", "official", "umpire"),
			c("defense", "backline"),
			c("offense", "attack"),
			c("record", "milestone"),
			c("fans", "supporters"),
			c("training", "practice", "drills"),
			c("victory", "win", "triumph"),
			c("defeat", "loss"),
			c("hardcourt", "court", "surface"), // polysemy: court
			c("field", "pitch", "turf"),        // polysemy: pitch
			c("racer", "driver", "pilot"),      // polysemy: driver
			c("medal", "podium"),
			c("contract", "deal"),
			c("captain", "skipper"),
		},
	},
	{
		name: "finance",
		concepts: [][]string{
			c("market", "exchange", "bourse"),
			c("shares", "stock", "equity"),
			c("investor", "shareholder", "trader"),
			c("profit", "earnings", "gains"),
			c("revenue", "turnover", "sales"),
			c("lender", "bank", "institution"), // polysemy: bank
			c("loan", "credit", "mortgage"),
			c("interest", "yield"),
			c("inflation", "prices"),
			c("currency", "dollar", "euro"),
			c("bond", "debt", "treasury"),
			c("fund", "portfolio"),
			c("merger", "acquisition", "takeover"),
			c("regulator", "watchdog"),
			c("tax", "levy", "duty"),
			c("budget", "spending"),
			c("recession", "downturn", "slump"),
			c("growth", "expansion"),
			c("dividend", "payout"),
			c("startup", "venture"),
			c("analyst", "economist"),
			c("asset", "holding"),
			c("audit", "filing"),
			c("forecast", "outlook", "guidance"),
			c("capital", "liquidity"),
			c("broker", "dealer"),
		},
	},
	{
		name: "travel",
		concepts: [][]string{
			c("flight", "plane", "airline"),
			c("hotel", "resort", "lodge"),
			c("airport", "terminal"),
			c("passport", "visa"),
			c("tourist", "traveler", "visitor"),
			c("beach", "coast", "shore"),
			c("mountain", "peak", "summit"),
			c("tour", "excursion", "trip"),
			c("luggage", "baggage", "suitcase"),
			c("booking", "reservation"),
			c("guide", "itinerary"),
			c("island", "archipelago"),
			c("museum", "gallery"),
			c("train", "railway", "rail"),
			c("shuttle", "bus", "minibus"),      // polysemy: bus
			c("riverbank", "bank", "waterside"), // polysemy: bank
			c("cruise", "voyage", "crossing"),
			c("destination", "getaway"),
			c("fare", "airfare"),
			c("map", "route"),
			c("adventure", "trek", "hike"),
			c("culture", "heritage"),
			c("cuisine", "food"),
			c("landmark", "monument"),
			c("holiday", "vacation"),
			c("customs", "immigration"),
		},
	},
	{
		name: "gaming",
		concepts: [][]string{
			c("videogame", "game"),
			c("gamer", "player"),
			c("console", "playstation", "xbox"),
			c("level", "zone", "map"),
			c("quest", "mission", "raid"),
			c("character", "avatar", "hero"),
			c("weapon", "loadout", "gear"),
			c("multiplayer", "coop", "pvp"),
			c("graphics", "visuals", "textures"),
			c("developer", "dev"),
			c("release", "launch"),
			c("esports", "scene"),
			c("controller", "gamepad", "joystick"),
			c("lobby", "matchmaking"),
			c("guild", "clan"),
			c("achievement", "unlock"),
			c("boss", "enemy", "mob"),
			c("inventory", "loot"),
			c("engine", "physics"),
			c("speedrun", "glitchless"),
			c("dlc", "addon"),
			c("strategy", "tactics", "meta"),
			c("leaderboard", "rank"),
			c("stealth", "sniper"),
			c("sandbox", "openworld"),
			c("arcade", "retro"),
		},
	},
}

// PolysemousSurfaces returns the curated set of surfaces that carry a
// different meaning in each of two domains.
func PolysemousSurfaces() []string {
	return []string{"bus", "virus", "cell", "stream", "court", "pitch", "driver", "bank", "patch", "mouse"}
}
