package corpus

import (
	"testing"

	"repro/internal/mat"
)

func TestBuildInvariants(t *testing.T) {
	c := Build()
	if len(c.Domains) != 8 {
		t.Fatalf("domain count = %d, want 8", len(c.Domains))
	}
	for _, d := range c.Domains {
		if d.NumFunction != len(functionWords) {
			t.Errorf("%s: NumFunction = %d", d.Name, d.NumFunction)
		}
		if d.NumConcepts() <= d.NumFunction {
			t.Errorf("%s: no content concepts", d.Name)
		}
		if d.VocabSize() < d.NumConcepts() {
			t.Errorf("%s: vocab smaller than concepts", d.Name)
		}
		// Every surface must map back to exactly the concept that owns it.
		for ci := range d.Concepts {
			for _, s := range d.Concepts[ci].Surfaces {
				got, ok := d.ConceptOf(s)
				if !ok || got != ci {
					t.Errorf("%s: surface %q maps to concept %d, want %d", d.Name, s, got, ci)
				}
			}
		}
	}
}

func TestDomainLookupByName(t *testing.T) {
	c := Build()
	for _, name := range []string{"it", "medical", "news", "entertainment", "sports", "finance", "travel", "gaming"} {
		if c.Domain(name) == nil {
			t.Errorf("Domain(%q) = nil", name)
		}
	}
	if c.Domain("nonexistent") != nil {
		t.Error("Domain(nonexistent) != nil")
	}
	if len(c.Names()) != 8 {
		t.Errorf("Names() = %v", c.Names())
	}
}

func TestUnknownSurface(t *testing.T) {
	c := Build()
	d := c.Domain("it")
	if d.SurfaceID("zzzzz") != UnknownSurfaceID {
		t.Error("unknown word should map to UnknownSurfaceID")
	}
	if _, ok := d.ConceptOf("zzzzz"); ok {
		t.Error("unknown word should have no concept")
	}
	if d.ConceptOfSurfaceID(UnknownSurfaceID) != -1 {
		t.Error("unknown surface should map to concept -1")
	}
	if d.Surface(-5) != "<unk>" || d.Surface(99999) != "<unk>" {
		t.Error("out-of-range surface IDs should render <unk>")
	}
}

func TestPolysemyAcrossDomains(t *testing.T) {
	c := Build()
	cases := []struct {
		word             string
		domainA, domainB string
	}{
		{"bus", "it", "travel"},
		{"virus", "it", "medical"},
		{"cell", "it", "medical"},
		{"stream", "it", "entertainment"},
		{"court", "news", "sports"},
		{"pitch", "entertainment", "sports"},
		{"driver", "it", "sports"},
		{"bank", "finance", "travel"},
		{"patch", "it", "medical"},
		{"mouse", "it", "medical"},
	}
	for _, tc := range cases {
		da, db := c.Domain(tc.domainA), c.Domain(tc.domainB)
		ca, oka := da.ConceptOf(tc.word)
		cb, okb := db.ConceptOf(tc.word)
		if !oka || !okb {
			t.Errorf("%q missing from %s or %s", tc.word, tc.domainA, tc.domainB)
			continue
		}
		// The same surface must restore to different canonical forms.
		canonA := da.Canonical(ca)
		canonB := db.Canonical(cb)
		if canonA == canonB {
			t.Errorf("%q restores identically (%q) in %s and %s", tc.word, canonA, tc.domainA, tc.domainB)
		}
	}
	if got := len(PolysemousSurfaces()); got != len(cases) {
		t.Errorf("PolysemousSurfaces lists %d words, tests cover %d", got, len(cases))
	}
}

func TestBusExampleFromPaper(t *testing.T) {
	// The paper: "bus" is a vehicle in daily life but a high-speed internal
	// connection in computer architecture.
	c := Build()
	it := c.Domain("it")
	travel := c.Domain("travel")
	ci, _ := it.ConceptOf("bus")
	ct, _ := travel.ConceptOf("bus")
	if it.Canonical(ci) != "interconnect" {
		t.Errorf("it canonical for bus = %q, want interconnect", it.Canonical(ci))
	}
	if travel.Canonical(ct) != "shuttle" {
		t.Errorf("travel canonical for bus = %q, want shuttle", travel.Canonical(ct))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	c := Build()
	g1 := NewGenerator(c, mat.NewRNG(99))
	g2 := NewGenerator(c, mat.NewRNG(99))
	for i := 0; i < 20; i++ {
		m1 := g1.Message(i%8, nil)
		m2 := g2.Message(i%8, nil)
		if m1.Text() != m2.Text() {
			t.Fatalf("same-seed generators diverged: %q vs %q", m1.Text(), m2.Text())
		}
	}
}

func TestGeneratedMessagesWellFormed(t *testing.T) {
	c := Build()
	g := NewGenerator(c, mat.NewRNG(5))
	for di := range c.Domains {
		d := c.Domains[di]
		for i := 0; i < 50; i++ {
			m := g.Message(di, nil)
			if len(m.Words) < g.MinLen || len(m.Words) > g.MaxLen {
				t.Fatalf("message length %d outside [%d,%d]", len(m.Words), g.MinLen, g.MaxLen)
			}
			if len(m.Words) != len(m.ConceptIDs) {
				t.Fatal("words and concepts misaligned")
			}
			for j, w := range m.Words {
				ci, ok := d.ConceptOf(w)
				if !ok {
					t.Fatalf("generated word %q not in domain %s", w, d.Name)
				}
				if ci != m.ConceptIDs[j] {
					t.Fatalf("concept mismatch for %q: %d vs %d", w, ci, m.ConceptIDs[j])
				}
			}
		}
	}
}

func TestTailSurfacesAreRare(t *testing.T) {
	c := Build()
	g := NewGenerator(c, mat.NewRNG(13))
	canonical, tail := 0, 0
	d := c.Domain("medical")
	for i := 0; i < 2000; i++ {
		m := g.Message(d.Index, nil)
		for j, w := range m.Words {
			con := &d.Concepts[m.ConceptIDs[j]]
			// Concepts carrying a curated polyseme follow PolyProb, not
			// TailProb; exclude them here.
			if con.Function || len(con.Surfaces) < 2 || con.PolyIdx > 0 {
				continue
			}
			if w == con.Canonical() {
				canonical++
			} else {
				tail++
			}
		}
	}
	frac := float64(tail) / float64(tail+canonical)
	if frac < 0.015 || frac > 0.09 {
		t.Fatalf("tail fraction = %v, want near TailProb 0.04", frac)
	}
}

func TestIdiolectShiftsSurfaceChoice(t *testing.T) {
	c := Build()
	rng := mat.NewRNG(21)
	idio := NewIdiolect(c, rng.Split(), 0.5)
	if idio.NumPrefs() == 0 {
		t.Fatal("idiolect with strength 0.5 has no preferences")
	}
	g := NewGenerator(c, rng.Split())
	d := c.Domain("it")
	prefUsed, prefTotal := 0, 0
	for i := 0; i < 2000; i++ {
		m := g.Message(d.Index, idio)
		for j, w := range m.Words {
			con := &d.Concepts[m.ConceptIDs[j]]
			pref, ok := idio.PreferredSurface(con.Key)
			if !ok {
				continue
			}
			prefTotal++
			if w == con.Surfaces[pref] {
				prefUsed++
			}
		}
	}
	if prefTotal == 0 {
		t.Fatal("no preferred concepts sampled")
	}
	frac := float64(prefUsed) / float64(prefTotal)
	if frac < 0.8 {
		t.Fatalf("preferred surface used %v of the time, want ~Adherence 0.9", frac)
	}
}

func TestIdiolectStrengthZero(t *testing.T) {
	c := Build()
	idio := NewIdiolect(c, mat.NewRNG(3), 0)
	if idio.NumPrefs() != 0 {
		t.Fatalf("strength-0 idiolect has %d prefs", idio.NumPrefs())
	}
}

func TestNilIdiolectSafe(t *testing.T) {
	var idio *Idiolect
	if _, ok := idio.PreferredSurface("x"); ok {
		t.Fatal("nil idiolect returned a preference")
	}
	if idio.NumPrefs() != 0 {
		t.Fatal("nil idiolect has prefs")
	}
}

func TestZipfPopularityDiffersAcrossDomains(t *testing.T) {
	// The per-domain rank permutation must give different popular concepts
	// to different domains; otherwise the selection experiment degenerates.
	c := Build()
	g := NewGenerator(c, mat.NewRNG(31))
	top := make([]int, len(c.Domains))
	for di := range c.Domains {
		counts := map[int]int{}
		for i := 0; i < 500; i++ {
			m := g.Message(di, nil)
			for j, ci := range m.ConceptIDs {
				_ = j
				if !c.Domains[di].Concepts[ci].Function {
					counts[ci]++
				}
			}
		}
		best, bestN := -1, -1
		for ci, n := range counts {
			if n > bestN {
				best, bestN = ci, n
			}
		}
		top[di] = best
	}
	distinct := map[int]bool{}
	for _, ci := range top {
		distinct[ci] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("top concepts identical across too many domains: %v", top)
	}
}

func TestAllSurfacesSortedUnique(t *testing.T) {
	c := Build()
	all := c.AllSurfaces()
	if len(all) < 300 {
		t.Fatalf("global lexicon suspiciously small: %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("AllSurfaces not sorted/unique at %d: %q, %q", i, all[i-1], all[i])
		}
	}
}
