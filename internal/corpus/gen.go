package corpus

import (
	"strings"

	"repro/internal/mat"
)

// Message is one generated utterance: the unit transmitted through the
// semantic communication system.
type Message struct {
	// DomainIndex and DomainName identify the true domain of the message
	// (ground truth for model selection).
	DomainIndex int
	DomainName  string
	// Words are the transmitted surface forms.
	Words []string
	// ConceptIDs are the domain-local concept indices — the meaning the
	// receiver must restore. len(ConceptIDs) == len(Words).
	ConceptIDs []int
}

// Text renders the message as a space-joined sentence.
func (m Message) Text() string { return strings.Join(m.Words, " ") }

// Idiolect models one user's personal language: a preference for specific
// rare synonyms on a subset of concepts. General models, trained on
// canonical-heavy traffic, handle these poorly — the motivation for the
// paper's user-specific individual models.
type Idiolect struct {
	// prefs maps concept key to the preferred surface index (>= 1, i.e. a
	// tail synonym).
	prefs map[string]int
	// Adherence is the probability the user uses the preferred synonym
	// when expressing a preferred concept.
	Adherence float64
}

// NewIdiolect samples an idiolect. strength in [0,1] is the fraction of
// multi-surface content concepts (per domain) for which the user prefers a
// rare synonym.
func NewIdiolect(c *Corpus, rng *mat.RNG, strength float64) *Idiolect {
	id := &Idiolect{prefs: make(map[string]int, 64), Adherence: 0.9}
	for _, d := range c.Domains {
		for _, ci := range d.ContentConcepts() {
			con := &d.Concepts[ci]
			if len(con.Surfaces) < 2 {
				continue
			}
			if rng.Float64() < strength {
				// Prefer one of the tail synonyms uniformly.
				id.prefs[con.Key] = 1 + rng.Intn(len(con.Surfaces)-1)
			}
		}
	}
	return id
}

// PreferredSurface returns the preferred surface index for a concept key
// and whether a preference exists.
func (id *Idiolect) PreferredSurface(key string) (int, bool) {
	if id == nil {
		return 0, false
	}
	i, ok := id.prefs[key]
	return i, ok
}

// NumPrefs returns the number of concepts with a personal preference.
func (id *Idiolect) NumPrefs() int {
	if id == nil {
		return 0
	}
	return len(id.prefs)
}

// Generator samples messages from the corpus. It is deterministic given its
// RNG and safe to reuse across domains; it is not safe for concurrent use.
type Generator struct {
	// FuncProb is the probability a token position holds a function word.
	FuncProb float64
	// TailProb is the probability a content concept is expressed with a
	// rare synonym instead of its canonical surface (absent idiolect
	// preference).
	TailProb float64
	// PolyProb is the probability a concept carrying a curated polysemous
	// surface (e.g. "bus") is expressed with that surface. Polysemes are
	// everyday words, so this is much higher than TailProb.
	PolyProb float64
	// Balanced, when true, samples content concepts uniformly instead of
	// by Zipf popularity. Pretraining corpora are balanced (knowledge
	// bases are built from broad domain corpora); live traffic is not.
	Balanced bool
	// MinLen and MaxLen bound the sentence length in tokens.
	MinLen, MaxLen int

	corpus *Corpus
	rng    *mat.RNG
	// contentZipf samples a rank; rankMaps permute rank -> concept so each
	// domain has its own popularity ordering.
	contentZipf []*mat.Zipf
	rankMaps    [][]int
	funcZipf    *mat.Zipf
}

// NewGenerator builds a generator over c driven by rng.
func NewGenerator(c *Corpus, rng *mat.RNG) *Generator {
	g := &Generator{
		FuncProb:    0.35,
		TailProb:    0.04,
		PolyProb:    0.40,
		MinLen:      5,
		MaxLen:      12,
		corpus:      c,
		rng:         rng,
		contentZipf: make([]*mat.Zipf, len(c.Domains)),
		rankMaps:    make([][]int, len(c.Domains)),
	}
	g.funcZipf = mat.NewZipf(rng.Split(), len(functionWords), 1.1)
	for i, d := range c.Domains {
		content := d.ContentConcepts()
		g.contentZipf[i] = mat.NewZipf(rng.Split(), len(content), 0.9)
		// Deterministic per-domain permutation so popularity orderings
		// differ across domains.
		perm := mat.NewRNG(uint64(7919 * (i + 1))).Perm(len(content))
		rm := make([]int, len(content))
		for rank, p := range perm {
			rm[rank] = content[p]
		}
		g.rankMaps[i] = rm
	}
	return g
}

// Corpus returns the corpus the generator draws from.
func (g *Generator) Corpus() *Corpus { return g.corpus }

// Message samples one message from the domain at index di. idio may be nil
// for a generic speaker.
func (g *Generator) Message(di int, idio *Idiolect) Message {
	d := g.corpus.Domains[di]
	n := g.MinLen
	if g.MaxLen > g.MinLen {
		n += g.rng.Intn(g.MaxLen - g.MinLen + 1)
	}
	msg := Message{
		DomainIndex: di,
		DomainName:  d.Name,
		Words:       make([]string, 0, n),
		ConceptIDs:  make([]int, 0, n),
	}
	for t := 0; t < n; t++ {
		var ci int
		switch {
		case g.rng.Float64() < g.FuncProb:
			if g.Balanced {
				ci = g.rng.Intn(len(functionWords))
			} else {
				ci = g.funcZipf.Sample() // function concepts lead the concept list
			}
		case g.Balanced:
			rm := g.rankMaps[di]
			ci = rm[g.rng.Intn(len(rm))]
		default:
			ci = g.rankMaps[di][g.contentZipf[di].Sample()]
		}
		con := &d.Concepts[ci]
		surface := con.Canonical()
		if !con.Function && len(con.Surfaces) > 1 {
			switch pref, ok := idio.PreferredSurface(con.Key); {
			case ok && g.rng.Float64() < idio.Adherence:
				surface = con.Surfaces[pref]
			case con.PolyIdx > 0 && g.rng.Float64() < g.PolyProb:
				surface = con.Surfaces[con.PolyIdx]
			case g.rng.Float64() < g.TailProb:
				surface = con.Surfaces[1+g.rng.Intn(len(con.Surfaces)-1)]
			}
		}
		msg.Words = append(msg.Words, surface)
		msg.ConceptIDs = append(msg.ConceptIDs, ci)
	}
	return msg
}

// Batch samples n messages from domain di.
func (g *Generator) Batch(di, n int, idio *Idiolect) []Message {
	out := make([]Message, n)
	for i := range out {
		out[i] = g.Message(di, idio)
	}
	return out
}
