// Package selection implements the model-selection policies from the
// paper's research direction §III-A: picking which domain-specialized
// general model should encode a message.
//
// Policies span the spectrum the paper sketches: a static default, a
// traditional per-message classifier (naive Bayes over message words), a
// context-aware classifier that exploits topic persistence, and
// reinforcement-learning selectors (ε-greedy Q-learning and UCB) that learn
// from the downstream semantic-mismatch reward rather than labels.
package selection

import (
	"math"
	"sync"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// Selector chooses a domain model for each message and learns from
// feedback. Implementations are not safe for concurrent use.
type Selector interface {
	// Name identifies the selector in experiment output.
	Name() string
	// Select returns the domain index chosen for the message words.
	Select(words []string) int
	// Feedback reports the reward observed after using the selection
	// (1 - semantic mismatch, measured via the sender's decoder copy).
	// Selectors without a learning component ignore it.
	Feedback(reward float64)
	// Reset clears per-stream context (topic memory, bandit state is
	// kept; only conversation context resets).
	Reset()
}

// Static always selects a fixed domain — the no-selection baseline.
type Static struct {
	// DomainIndex is the fixed choice.
	DomainIndex int
}

var _ Selector = (*Static)(nil)

// Name implements Selector.
func (s *Static) Name() string { return "static" }

// Select implements Selector.
func (s *Static) Select([]string) int { return s.DomainIndex }

// Feedback implements Selector.
func (s *Static) Feedback(float64) {}

// Reset implements Selector.
func (s *Static) Reset() {}

// NaiveBayes is the traditional per-message classification network stand-in
// from §III-A: multinomial naive Bayes over message words with Laplace
// smoothing. It has no context memory.
type NaiveBayes struct {
	domains []string
	// logPrior[d] and logLik[d][word] are fixed after training.
	logPrior []float64
	logLik   []map[string]float64
	// logUnseen[d] is the smoothed likelihood of an unseen word.
	logUnseen []float64
}

var _ Selector = (*NaiveBayes)(nil)

// TrainNaiveBayes fits the classifier on generated domain traffic:
// sentences per domain drawn without idiolect.
func TrainNaiveBayes(corp *corpus.Corpus, sentencesPerDomain int, seed uint64) *NaiveBayes {
	rng := mat.NewRNG(seed)
	gen := corpus.NewGenerator(corp, rng)
	nb := &NaiveBayes{
		domains:   corp.Names(),
		logPrior:  make([]float64, len(corp.Domains)),
		logLik:    make([]map[string]float64, len(corp.Domains)),
		logUnseen: make([]float64, len(corp.Domains)),
	}
	vocab := make(map[string]struct{}, 1024)
	counts := make([]map[string]int, len(corp.Domains))
	totals := make([]int, len(corp.Domains))
	for di := range corp.Domains {
		counts[di] = make(map[string]int, 256)
		for _, m := range gen.Batch(di, sentencesPerDomain, nil) {
			for _, w := range m.Words {
				counts[di][w]++
				totals[di]++
				vocab[w] = struct{}{}
			}
		}
	}
	v := float64(len(vocab))
	uniformPrior := math.Log(1 / float64(len(corp.Domains)))
	for di := range corp.Domains {
		nb.logPrior[di] = uniformPrior
		nb.logLik[di] = make(map[string]float64, len(counts[di]))
		denom := float64(totals[di]) + v
		for w, c := range counts[di] {
			nb.logLik[di][w] = math.Log((float64(c) + 1) / denom)
		}
		nb.logUnseen[di] = math.Log(1 / denom)
	}
	return nb
}

// Name implements Selector.
func (nb *NaiveBayes) Name() string { return "naivebayes" }

// Scores returns the per-domain log-posterior scores for words.
func (nb *NaiveBayes) Scores(words []string) []float64 {
	scores := make([]float64, len(nb.domains))
	for di := range nb.domains {
		s := nb.logPrior[di]
		for _, w := range words {
			if ll, ok := nb.logLik[di][w]; ok {
				s += ll
			} else {
				s += nb.logUnseen[di]
			}
		}
		scores[di] = s
	}
	return scores
}

// Select implements Selector.
func (nb *NaiveBayes) Select(words []string) int {
	return mat.Argmax(nb.Scores(words))
}

// Feedback implements Selector.
func (nb *NaiveBayes) Feedback(float64) {}

// Reset implements Selector.
func (nb *NaiveBayes) Reset() {}

// Sticky is the context-aware selector of §III-A implemented as an HMM
// forward filter: it maintains a belief over domains, propagates it through
// a sticky transition prior (topics arrive in runs), and renormalizes with
// the naive-Bayes likelihood of each message. Unlike a fixed score bonus,
// the filter cannot lock into a wrong domain — strong contrary evidence
// always overrides the prior.
type Sticky struct {
	// NB provides the per-message likelihood.
	NB *NaiveBayes
	// StayProb is the transition self-probability; 0 selects a sensible
	// default matching typical topic-run lengths.
	StayProb float64

	belief []float64 // posterior over domains; nil until first message
}

var _ Selector = (*Sticky)(nil)

// NewSticky wraps nb with a sticky-transition HMM filter. stayProb <= 0
// selects the default 0.9.
func NewSticky(nb *NaiveBayes, stayProb float64) *Sticky {
	if stayProb <= 0 || stayProb >= 1 {
		stayProb = 0.9
	}
	return &Sticky{NB: nb, StayProb: stayProb}
}

// Name implements Selector.
func (s *Sticky) Name() string { return "sticky" }

// Select implements Selector.
func (s *Sticky) Select(words []string) int {
	n := len(s.NB.domains)
	if s.belief == nil {
		s.belief = make([]float64, n)
		for i := range s.belief {
			s.belief[i] = 1 / float64(n)
		}
	}
	// Transition: belief' = T * belief with sticky diagonal.
	switchP := (1 - s.StayProb) / float64(n-1)
	prior := make([]float64, n)
	var total float64
	for d := range prior {
		p := 0.0
		for d2, b := range s.belief {
			if d2 == d {
				p += s.StayProb * b
			} else {
				p += switchP * b
			}
		}
		prior[d] = p
		total += p
	}
	// Observation: multiply by likelihood in log space, then normalize.
	scores := s.NB.Scores(words)
	logPost := make([]float64, n)
	for d := range logPost {
		logPost[d] = math.Log(prior[d]/total) + scores[d]
	}
	mat.Softmax(s.belief, logPost)
	return mat.Argmax(s.belief)
}

// Feedback implements Selector.
func (s *Sticky) Feedback(float64) {}

// Reset implements Selector.
func (s *Sticky) Reset() { s.belief = nil }

// BeliefCarrier is implemented by selectors whose per-stream context is a
// portable posterior over domains, so a user handover can move the
// selection state to the new serving node and the stream continues
// bit-identically.
type BeliefCarrier interface {
	// ExportBelief returns a copy of the posterior, nil before the first
	// message.
	ExportBelief() []float64
	// ImportBelief replaces the posterior with a copy of b; nil resets.
	ImportBelief(b []float64)
}

var _ BeliefCarrier = (*Sticky)(nil)

// ExportBelief implements BeliefCarrier.
func (s *Sticky) ExportBelief() []float64 {
	if s.belief == nil {
		return nil
	}
	out := make([]float64, len(s.belief))
	copy(out, s.belief)
	return out
}

// ImportBelief implements BeliefCarrier.
func (s *Sticky) ImportBelief(b []float64) {
	if b == nil {
		s.belief = nil
		return
	}
	s.belief = make([]float64, len(b))
	copy(s.belief, b)
}

// QLearn is the reinforcement-learning selector from §III-A implemented as
// contextual Q-learning: the state is (previous selection, naive-Bayes
// guess) and the action is the domain to use. The reward is the downstream
// semantic fidelity computed via the decoder copy, so no labels are needed.
type QLearn struct {
	// NB supplies the context feature (its per-message guess).
	NB *NaiveBayes
	// Epsilon is the exploration rate.
	Epsilon float64
	// Alpha is the learning rate.
	Alpha float64
	// Rng drives exploration.
	Rng *mat.RNG

	n          int
	q          [][]float64 // q[state][action]
	prev       int
	lastState  int
	lastAction int
	pending    bool
}

var _ Selector = (*QLearn)(nil)

// NewQLearn builds a Q-learning selector over n domains.
func NewQLearn(nb *NaiveBayes, n int, rng *mat.RNG) *QLearn {
	states := (n + 1) * n // prev in {-1..n-1} encoded as {0..n}, nbGuess in {0..n-1}
	q := make([][]float64, states)
	for i := range q {
		q[i] = make([]float64, n)
		// Mildly optimistic initialization: high enough to try untested
		// actions eventually, low enough that a good observed reward
		// (~0.9 for a correct selection) dominates quickly.
		for j := range q[i] {
			q[i][j] = 0.6
		}
	}
	return &QLearn{NB: nb, Epsilon: 0.08, Alpha: 0.3, Rng: rng, n: n, q: q, prev: -1}
}

// Name implements Selector.
func (ql *QLearn) Name() string { return "qlearn" }

// state encodes (prev, nbGuess) into a table index.
func (ql *QLearn) state(nbGuess int) int {
	return (ql.prev+1)*ql.n + nbGuess
}

// Select implements Selector.
func (ql *QLearn) Select(words []string) int {
	nbGuess := ql.NB.Select(words)
	s := ql.state(nbGuess)
	var a int
	if ql.Rng.Float64() < ql.Epsilon {
		a = ql.Rng.Intn(ql.n)
	} else {
		a = mat.Argmax(ql.q[s])
	}
	ql.lastState, ql.lastAction, ql.pending = s, a, true
	ql.prev = a
	return a
}

// Feedback implements Selector.
func (ql *QLearn) Feedback(reward float64) {
	if !ql.pending {
		return
	}
	q := ql.q[ql.lastState]
	q[ql.lastAction] += ql.Alpha * (reward - q[ql.lastAction])
	ql.pending = false
}

// Reset implements Selector.
func (ql *QLearn) Reset() {
	ql.prev = -1
	ql.pending = false
}

// UCB is an upper-confidence-bound bandit conditioned on the naive-Bayes
// guess: for each context it balances exploiting the best-known domain
// against exploring under-tried ones.
type UCB struct {
	// NB supplies the context feature.
	NB *NaiveBayes
	// C is the exploration coefficient; 0 selects a sensible default.
	C float64

	n          int
	counts     [][]float64
	sums       [][]float64
	total      []float64
	lastCtx    int
	lastAction int
	pending    bool
}

var _ Selector = (*UCB)(nil)

// NewUCB builds a UCB selector over n domains.
func NewUCB(nb *NaiveBayes, n int) *UCB {
	counts := make([][]float64, n)
	sums := make([][]float64, n)
	for i := range counts {
		counts[i] = make([]float64, n)
		sums[i] = make([]float64, n)
	}
	return &UCB{NB: nb, C: 1.2, n: n, counts: counts, sums: sums, total: make([]float64, n)}
}

// Name implements Selector.
func (u *UCB) Name() string { return "ucb" }

// Select implements Selector.
func (u *UCB) Select(words []string) int {
	ctx := u.NB.Select(words)
	best, bestScore := 0, math.Inf(-1)
	for a := 0; a < u.n; a++ {
		var score float64
		if u.counts[ctx][a] == 0 {
			score = math.Inf(1)
		} else {
			mean := u.sums[ctx][a] / u.counts[ctx][a]
			score = mean + u.C*math.Sqrt(math.Log(u.total[ctx]+1)/u.counts[ctx][a])
		}
		if score > bestScore {
			best, bestScore = a, score
		}
	}
	u.lastCtx, u.lastAction, u.pending = ctx, best, true
	return best
}

// Feedback implements Selector.
func (u *UCB) Feedback(reward float64) {
	if !u.pending {
		return
	}
	u.counts[u.lastCtx][u.lastAction]++
	u.sums[u.lastCtx][u.lastAction] += reward
	u.total[u.lastCtx]++
	u.pending = false
}

// Reset implements Selector.
func (u *UCB) Reset() { u.pending = false }

// PerUser maintains one selector instance per user so conversation context
// never leaks across interleaved user streams — the edge server tracks
// selection context per session, not per arrival order. The map itself is
// safe for concurrent use; the selectors it hands out are not, so callers
// running users in parallel must serialize per user (as core.System does
// with its per-user locks).
type PerUser struct {
	factory func() Selector
	mu      sync.Mutex
	m       map[string]Selector
	name    string
}

// NewPerUser builds a per-user selector family from a factory. The family
// name is taken from a probe instance.
func NewPerUser(factory func() Selector) *PerUser {
	return &PerUser{
		factory: factory,
		m:       make(map[string]Selector, 8),
		name:    factory().Name(),
	}
}

// Name returns the underlying selector family name.
func (p *PerUser) Name() string { return p.name }

// For returns the selector bound to user, creating it on first use.
// Creation is serialized, so factories may split a shared RNG.
func (p *PerUser) For(user string) Selector {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.m[user]
	if !ok {
		s = p.factory()
		p.m[user] = s
	}
	return s
}
