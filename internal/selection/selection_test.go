package selection

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/trace"
)

var (
	selOnce sync.Once
	selCorp *corpus.Corpus
	selNB   *NaiveBayes
)

func fixtures(t *testing.T) (*corpus.Corpus, *NaiveBayes) {
	t.Helper()
	selOnce.Do(func() {
		selCorp = corpus.Build()
		selNB = TrainNaiveBayes(selCorp, 120, 5)
	})
	return selCorp, selNB
}

// accuracy runs a selector family over a workload and returns the fraction
// of correct domain selections, feeding back a simple oracle reward
// (1 correct, 0 wrong) to learning selectors. Context is tracked per user.
func accuracy(corp *corpus.Corpus, factory func() Selector, seed uint64, n int) float64 {
	w := trace.Generate(corp, trace.Config{Users: 4, Messages: n, Seed: seed})
	return accuracyOn(w, factory)
}

// ambiguousAccuracy uses short, function-word-heavy messages: the regime
// where per-message classification is unreliable and context matters.
func ambiguousAccuracy(corp *corpus.Corpus, factory func() Selector, seed uint64, n int) float64 {
	w := trace.Generate(corp, trace.Config{
		Users: 4, Messages: n, Seed: seed,
		MinLen: 3, MaxLen: 5, FuncProb: 0.6,
	})
	return accuracyOn(w, factory)
}

func accuracyOn(w *trace.Workload, factory func() Selector) float64 {
	per := NewPerUser(factory)
	correct := 0
	for _, r := range w.Requests {
		sel := per.For(r.User)
		got := sel.Select(r.Msg.Words)
		if got == r.Msg.DomainIndex {
			correct++
			sel.Feedback(1)
		} else {
			sel.Feedback(0)
		}
	}
	return float64(correct) / float64(len(w.Requests))
}

func TestStaticSelector(t *testing.T) {
	s := &Static{DomainIndex: 3}
	if s.Select([]string{"anything"}) != 3 {
		t.Fatal("static selection wrong")
	}
	s.Feedback(1) // must not panic
	s.Reset()
	if s.Name() != "static" {
		t.Fatal("name wrong")
	}
}

func TestNaiveBayesAccuracy(t *testing.T) {
	corp, nb := fixtures(t)
	acc := accuracy(corp, func() Selector { return nb }, 11, 600)
	if acc < 0.8 {
		t.Fatalf("naive Bayes accuracy = %v, want >= 0.8", acc)
	}
}

func TestNaiveBayesObviousMessages(t *testing.T) {
	corp, nb := fixtures(t)
	cases := []struct {
		words  []string
		domain string
	}{
		{[]string{"the", "server", "has", "a", "kernel", "bug"}, "it"},
		{[]string{"the", "doctor", "and", "the", "nurse", "are", "in", "surgery"}, "medical"},
		{[]string{"the", "team", "has", "a", "goal", "in", "the", "league"}, "sports"},
		{[]string{"the", "market", "and", "shares", "are", "in", "recession"}, "finance"},
	}
	for _, tc := range cases {
		got := nb.Select(tc.words)
		if corp.Domains[got].Name != tc.domain {
			t.Errorf("Select(%v) = %s, want %s", tc.words, corp.Domains[got].Name, tc.domain)
		}
	}
}

func TestStickyBeatsNaiveBayesOnAmbiguousRunningTopics(t *testing.T) {
	corp, nb := fixtures(t)
	nbAcc := ambiguousAccuracy(corp, func() Selector { return nb }, 17, 1500)
	stickyAcc := ambiguousAccuracy(corp, func() Selector { return NewSticky(nb, 0) }, 17, 1500)
	if nbAcc > 0.97 {
		t.Fatalf("ambiguous workload too easy for NB: %v", nbAcc)
	}
	if stickyAcc <= nbAcc {
		t.Fatalf("context-aware sticky (%v) should beat per-message NB (%v) under topic runs",
			stickyAcc, nbAcc)
	}
}

func TestStickyResetClearsContext(t *testing.T) {
	_, nb := fixtures(t)
	s := NewSticky(nb, 0.9)
	s.Select([]string{"the", "server", "kernel"})
	s.Reset()
	if s.belief != nil {
		t.Fatal("Reset did not clear belief state")
	}
}

func TestQLearnImprovesOverRandom(t *testing.T) {
	corp, nb := fixtures(t)
	ql := NewQLearn(nb, len(corp.Domains), mat.NewRNG(3))
	acc := accuracy(corp, func() Selector { return ql }, 19, 2000)
	// Q-learning with a good NB context feature should comfortably beat
	// chance (1/8) and approach NB alone.
	if acc < 0.5 {
		t.Fatalf("Q-learning accuracy = %v, want >= 0.5", acc)
	}
}

func TestQLearnFeedbackWithoutSelect(t *testing.T) {
	corp, nb := fixtures(t)
	ql := NewQLearn(nb, len(corp.Domains), mat.NewRNG(4))
	ql.Feedback(1) // no pending selection: must be a no-op
	ql.Reset()
}

func TestUCBImprovesOverRandom(t *testing.T) {
	corp, nb := fixtures(t)
	u := NewUCB(nb, len(corp.Domains))
	acc := accuracy(corp, func() Selector { return u }, 23, 2000)
	if acc < 0.5 {
		t.Fatalf("UCB accuracy = %v, want >= 0.5", acc)
	}
}

func TestUCBExploresAllArmsInContext(t *testing.T) {
	corp, nb := fixtures(t)
	u := NewUCB(nb, len(corp.Domains))
	// Same context repeatedly: the first len(domains) picks must try every
	// arm once (infinite UCB for untried arms).
	words := []string{"the", "server", "kernel", "bug"}
	seen := make(map[int]bool)
	for i := 0; i < len(corp.Domains); i++ {
		a := u.Select(words)
		if seen[a] {
			t.Fatalf("UCB repeated arm %d before trying all", a)
		}
		seen[a] = true
		u.Feedback(0.5)
	}
}

func TestSelectorsDeterministic(t *testing.T) {
	corp, nb := fixtures(t)
	a := NewQLearn(nb, len(corp.Domains), mat.NewRNG(7))
	b := NewQLearn(nb, len(corp.Domains), mat.NewRNG(7))
	accA := accuracy(corp, func() Selector { return a }, 29, 500)
	accB := accuracy(corp, func() Selector { return b }, 29, 500)
	if accA != accB {
		t.Fatalf("same-seed Q-learning differs: %v vs %v", accA, accB)
	}
}

func TestNamesDistinct(t *testing.T) {
	corp, nb := fixtures(t)
	sels := []Selector{
		&Static{}, nb, NewSticky(nb, 0),
		NewQLearn(nb, len(corp.Domains), mat.NewRNG(1)),
		NewUCB(nb, len(corp.Domains)),
	}
	seen := map[string]bool{}
	for _, s := range sels {
		if seen[s.Name()] {
			t.Fatalf("duplicate selector name %q", s.Name())
		}
		seen[s.Name()] = true
	}
}
