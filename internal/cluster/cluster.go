// Package cluster implements the multi-node semantic edge cluster of the
// paper's 6G deployment picture: N edge servers behind a router that
// assigns users to nodes by consistent hashing, migrates personalized
// models between nodes when users move (mobility-driven handover), and
// resolves cache misses cooperatively — a node probes its neighbors'
// caches before paying the cloud-origin fetch.
//
// A Cluster is deterministic given its Config and is safe for concurrent
// use across users; operations for one user (Move versus that user's
// model accesses) must be externally serialized, which core.System does
// with its per-user locks.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/edge"
	"repro/internal/kb"
	"repro/internal/netsim"
	"repro/internal/rpc"
)

// Config parameterizes a cluster. Zero fields select documented defaults.
type Config struct {
	// Nodes is the number of edge nodes (default 2).
	Nodes int
	// CacheBytes is the per-node model-cache capacity; required.
	CacheBytes int64
	// Policy names the per-node cache eviction policy (default "lru").
	Policy string
	// Uplink is the node-to-cloud link paid on origin fetches (default
	// 40 ms, 200 Mbps).
	Uplink netsim.Link
	// Mesh is the node-to-node link paid on cooperative fetches and
	// handover migrations (default 5 ms, 400 Mbps: edge sites are close).
	Mesh netsim.Link
	// ComputePerToken, PinGeneral and BufferThreshold pass through to each
	// node's edge server.
	ComputePerToken time.Duration
	PinGeneral      bool
	BufferThreshold int
	// Replicas is the number of virtual points per node on the hash ring
	// (default 64).
	Replicas int
	// Seed places the ring's virtual points (default 1).
	Seed uint64
}

// withDefaults returns cfg with zero fields replaced.
func (cfg Config) withDefaults() Config {
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	if cfg.Uplink == (netsim.Link{}) {
		cfg.Uplink = netsim.Link{Latency: 40 * time.Millisecond, BandwidthBps: 200e6}
	}
	if cfg.Mesh == (netsim.Link{}) {
		cfg.Mesh = netsim.Link{Latency: 5 * time.Millisecond, BandwidthBps: 400e6}
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Node is one edge server in the cluster plus its per-node counters.
type Node struct {
	index int
	name  string
	edge  *edge.Server

	handoversIn    atomic.Int64
	handoversOut   atomic.Int64
	neighborHits   atomic.Int64 // misses this node resolved from a neighbor
	neighborBytes  atomic.Int64
	neighborServed atomic.Int64 // probes this node's cache answered for peers
	originFetches  atomic.Int64
	originBytes    atomic.Int64
	fetchLatency   atomic.Int64 // cumulative simulated miss-path latency, ns
}

// Index returns the node's position in the cluster.
func (n *Node) Index() int { return n.index }

// Name returns the node name ("node-0", ...).
func (n *Node) Name() string { return n.name }

// Edge returns the node's edge server.
func (n *Node) Edge() *edge.Server { return n.edge }

// Cluster is a running multi-node edge deployment.
type Cluster struct {
	cfg   Config
	nodes []*Node
	ring  *Ring

	// mu guards the routing state: the mobility override and the set of
	// users ever routed (for per-node occupancy stats).
	mu       sync.RWMutex
	override map[string]int
	seen     map[string]struct{}

	handovers      atomic.Int64
	migratedModels atomic.Int64
	migratedBytes  atomic.Int64
	migrateLatency atomic.Int64 // ns
}

// New builds a cluster of cfg.Nodes edge servers backed by the given
// cloud origin registry.
func New(cfg Config, origin *kb.Registry) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if origin == nil {
		return nil, errors.New("cluster: nil origin registry")
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 node, got %d", cfg.Nodes)
	}
	if _, ok := cache.NewPolicy(cfg.Policy); !ok {
		return nil, fmt.Errorf("cluster: unknown cache policy %q", cfg.Policy)
	}
	c := &Cluster{
		cfg:      cfg,
		nodes:    make([]*Node, cfg.Nodes),
		ring:     NewRing(cfg.Nodes, cfg.Replicas, cfg.Seed),
		override: make(map[string]int, 64),
		seen:     make(map[string]struct{}, 64),
	}
	for i := range c.nodes {
		node := &Node{index: i, name: fmt.Sprintf("node-%d", i)}
		policy, _ := cache.NewPolicy(cfg.Policy)
		srv, err := edge.New(edge.Config{
			Name:            node.name,
			CacheCapacity:   cfg.CacheBytes,
			Policy:          policy,
			Uplink:          cfg.Uplink,
			ComputePerToken: cfg.ComputePerToken,
			PinGeneral:      cfg.PinGeneral,
			BufferThreshold: cfg.BufferThreshold,
			Fetcher:         &coopFetcher{cluster: c, node: node, origin: edge.NewOriginFetcher(origin, cfg.Uplink)},
		}, origin)
		if err != nil {
			return nil, err
		}
		node.edge = srv
		c.nodes[i] = node
	}
	return c, nil
}

// NumNodes returns the cluster size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Route returns the node currently serving user: the mobility override
// when one is set, else the consistent-hash assignment.
func (c *Cluster) Route(user string) *Node {
	c.mu.RLock()
	n, overridden := c.override[user]
	_, known := c.seen[user]
	c.mu.RUnlock()
	if overridden {
		return c.nodes[n]
	}
	if !known {
		c.mu.Lock()
		c.seen[user] = struct{}{}
		c.mu.Unlock()
	}
	return c.nodes[c.ring.Node(user)]
}

// HandoverResult reports one mobility event.
type HandoverResult struct {
	User string
	// From and To are node indices; Moved is false when the user was
	// already served by the target node (no handover needed).
	From, To int
	Moved    bool
	// Models and Bytes count the migrated individual models; Latency is
	// the simulated mesh transfer time for the migration payload.
	Models  int
	Bytes   int64
	Latency time.Duration
}

// Move attaches user to the node serving cell (cell indices wrap around
// the cluster size), executing a handover when the serving node changes:
// every individual model the old node holds for the user is exported,
// shipped over the mesh, imported on the new node and dropped at the
// source, so personalization survives the move.
//
// Calls for one user must not race that user's model accesses; core
// serializes them under its per-user lock.
func (c *Cluster) Move(user string, cell int) (HandoverResult, error) {
	n := len(c.nodes)
	target := ((cell % n) + n) % n
	from := c.Route(user)
	c.mu.Lock()
	c.override[user] = target
	c.seen[user] = struct{}{}
	c.mu.Unlock()
	res := HandoverResult{User: user, From: from.index, To: target}
	if from.index == target {
		return res, nil
	}
	res.Moved = true
	to := c.nodes[target]
	for _, domain := range from.edge.UserDomains(user) {
		exp, err := from.edge.ExportUserModel(domain, user)
		if errors.Is(err, edge.ErrNoIndividual) {
			// The unpinned entry was evicted between enumeration and export;
			// the user simply re-personalizes on the new node.
			continue
		}
		if err != nil {
			return res, fmt.Errorf("cluster: export %s/%s from %s: %w", user, domain, from.name, err)
		}
		if err := to.edge.ImportUserModel(exp); err != nil {
			return res, fmt.Errorf("cluster: import %s/%s into %s: %w", user, domain, to.name, err)
		}
		from.edge.DropUserModel(domain, user)
		res.Models++
		res.Bytes += exp.SizeBytes()
	}
	res.Latency = c.cfg.Mesh.TransferTime(res.Bytes)
	c.handovers.Add(1)
	c.migratedModels.Add(int64(res.Models))
	c.migratedBytes.Add(res.Bytes)
	c.migrateLatency.Add(int64(res.Latency))
	from.handoversOut.Add(1)
	to.handoversIn.Add(1)
	return res, nil
}

// coopFetcher resolves one node's cache misses cooperatively: probe every
// other node's cache in deterministic ring order (nearest successor
// first), paying one mesh hop on a neighbor hit; fall back to the
// standard origin fetcher over the uplink. Neighbor probes use Peek so
// remote demand never distorts the neighbor's own eviction policy or hit
// statistics.
type coopFetcher struct {
	cluster *Cluster
	node    *Node
	origin  edge.Fetcher
}

// FetchModel implements edge.Fetcher.
func (f *coopFetcher) FetchModel(k kb.Key) (edge.Fetch, error) {
	n := len(f.cluster.nodes)
	for off := 1; off < n; off++ {
		nb := f.cluster.nodes[(f.node.index+off)%n]
		m, ok := nb.edge.Cache().Peek(k)
		if !ok {
			continue
		}
		lat := f.cluster.cfg.Mesh.TransferTime(m.SizeBytes())
		f.node.neighborHits.Add(1)
		f.node.neighborBytes.Add(m.SizeBytes())
		f.node.fetchLatency.Add(int64(lat))
		nb.neighborServed.Add(1)
		return edge.Fetch{Model: m, Latency: lat, Remote: true}, nil
	}
	fetch, err := f.origin.FetchModel(k)
	if err != nil {
		return edge.Fetch{}, err
	}
	f.node.originFetches.Add(1)
	f.node.originBytes.Add(fetch.Model.SizeBytes())
	f.node.fetchLatency.Add(int64(fetch.Latency))
	return fetch, nil
}

// NodeStats is one node's counter snapshot.
type NodeStats struct {
	Name string
	// Users is the number of known users currently routed to this node.
	Users int
	// Cache is the node's model-cache counter snapshot; CachedModels and
	// CacheUsedBytes describe current occupancy.
	Cache          cache.Stats
	CachedModels   int
	CacheUsedBytes int64
	// Handover and cooperative-fetch traffic.
	HandoversIn    int64
	HandoversOut   int64
	NeighborHits   int64
	NeighborBytes  int64
	NeighborServed int64
	OriginFetches  int64
	OriginBytes    int64
	// FetchLatency is the cumulative simulated miss-path transfer time.
	FetchLatency time.Duration
}

// RPC converts the snapshot to its wire form. The mapping is the single
// source of truth for how node counters serialize, shared by the
// single-process cluster daemon and each mesh peer, so per-process stats
// aggregate identically to the in-process cluster's counters.
func (s NodeStats) RPC() rpc.NodeStats {
	return rpc.NodeStats{
		Name:           s.Name,
		Users:          s.Users,
		HitRate:        s.Cache.HitRate(),
		CachedModels:   s.CachedModels,
		CacheUsedBytes: s.CacheUsedBytes,
		HandoversIn:    s.HandoversIn,
		HandoversOut:   s.HandoversOut,
		NeighborHits:   s.NeighborHits,
		NeighborBytes:  s.NeighborBytes,
		NeighborServed: s.NeighborServed,
		OriginFetches:  s.OriginFetches,
		OriginBytes:    s.OriginBytes,
		FetchLatencyMs: float64(s.FetchLatency) / float64(time.Millisecond),
	}
}

// Stats is a whole-cluster counter snapshot.
type Stats struct {
	Nodes []NodeStats
	// Handovers counts user moves that changed nodes; MigratedModels and
	// MigratedBytes the individual models shipped over the mesh for them.
	Handovers      int64
	MigratedModels int64
	MigratedBytes  int64
	MigrateLatency time.Duration
}

// NeighborHits sums cooperative cache hits across nodes.
func (s Stats) NeighborHits() int64 {
	var total int64
	for _, n := range s.Nodes {
		total += n.NeighborHits
	}
	return total
}

// Stats snapshots every counter in the cluster.
func (c *Cluster) Stats() Stats {
	occupancy := make([]int, len(c.nodes))
	c.mu.RLock()
	for user := range c.seen {
		if n, ok := c.override[user]; ok {
			occupancy[n]++
		} else {
			occupancy[c.ring.Node(user)]++
		}
	}
	c.mu.RUnlock()
	st := Stats{
		Nodes:          make([]NodeStats, len(c.nodes)),
		Handovers:      c.handovers.Load(),
		MigratedModels: c.migratedModels.Load(),
		MigratedBytes:  c.migratedBytes.Load(),
		MigrateLatency: time.Duration(c.migrateLatency.Load()),
	}
	for i, n := range c.nodes {
		st.Nodes[i] = NodeStats{
			Name:           n.name,
			Users:          occupancy[i],
			Cache:          n.edge.CacheStats(),
			CachedModels:   n.edge.Cache().Len(),
			CacheUsedBytes: n.edge.Cache().Used(),
			HandoversIn:    n.handoversIn.Load(),
			HandoversOut:   n.handoversOut.Load(),
			NeighborHits:   n.neighborHits.Load(),
			NeighborBytes:  n.neighborBytes.Load(),
			NeighborServed: n.neighborServed.Load(),
			OriginFetches:  n.originFetches.Load(),
			OriginBytes:    n.originBytes.Load(),
			FetchLatency:   time.Duration(n.fetchLatency.Load()),
		}
	}
	return st
}
