package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/kb"
	"repro/internal/mat"
	"repro/internal/netsim"
	"repro/internal/semantic"
)

var (
	fixOnce  sync.Once
	fixCorp  *corpus.Corpus
	fixCloud *kb.Registry
)

// cloudFixture pretrains two small domain codecs and registers them as
// general models in a cloud registry shared (read-only) across tests.
func cloudFixture(t *testing.T) (*corpus.Corpus, *kb.Registry) {
	t.Helper()
	fixOnce.Do(func() {
		fixCorp = corpus.Build()
		fixCloud = kb.NewRegistry()
		cfg := semantic.Config{
			EmbedDim: 12, FeatureDim: 6, HiddenDim: 16,
			Epochs: 3, Sentences: 400, Seed: 7,
		}
		for _, name := range []string{"it", "medical"} {
			d := fixCorp.Domain(name)
			codec := semantic.Pretrain(d, fixCorp, cfg)
			fixCloud.Put(&kb.Model{Key: kb.GeneralKey(name, kb.RoleCodec), Version: 1, Codec: codec})
		}
	})
	return fixCorp, fixCloud
}

// newCluster builds an n-node cluster whose per-node cache fits about
// eight codec models.
func newCluster(t *testing.T, n int, policy string) *Cluster {
	t.Helper()
	_, cloud := cloudFixture(t)
	m, _ := cloud.Get(kb.GeneralKey("it", kb.RoleCodec))
	c, err := New(Config{
		Nodes:      n,
		CacheBytes: m.SizeBytes() * 8,
		Policy:     policy,
		Uplink:     netsim.Link{Latency: 40 * time.Millisecond, BandwidthBps: 200e6},
		Mesh:       netsim.Link{Latency: 5 * time.Millisecond, BandwidthBps: 400e6},
		Seed:       1,
	}, cloud)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// personalize runs enough idiolect traffic through the user's serving node
// to fine-tune an individual "it" model there.
func personalize(t *testing.T, c *Cluster, user string, seed uint64) {
	t.Helper()
	corp, _ := cloudFixture(t)
	rng := mat.NewRNG(seed)
	idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
	gen := corpus.NewGenerator(corp, rng.Split())
	node := c.Route(user)
	for i := 0; i < 24; i++ {
		m := gen.Message(corp.Domain("it").Index, idio)
		if _, _, err := node.Edge().RecordTransaction(nil, "it", user, m.Words, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := node.Edge().RunUpdate("it", user, fl.UpdateConfig{Epochs: 3, Seed: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	_, cloud := cloudFixture(t)
	if _, err := New(Config{CacheBytes: 1 << 20}, nil); err == nil {
		t.Fatal("nil origin accepted")
	}
	if _, err := New(Config{Nodes: -2, CacheBytes: 1 << 20}, cloud); err == nil {
		t.Fatal("negative node count accepted")
	}
	if _, err := New(Config{CacheBytes: 1 << 20, Policy: "belady"}, cloud); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRoutingDeterministicAndBalanced(t *testing.T) {
	a := newCluster(t, 4, "lru")
	b := newCluster(t, 4, "lru")
	counts := make([]int, 4)
	for u := 0; u < 400; u++ {
		user := fmt.Sprintf("u%03d", u)
		na, nb := a.Route(user), b.Route(user)
		if na.Index() != nb.Index() {
			t.Fatalf("user %s routes to %d on one cluster, %d on its twin", user, na.Index(), nb.Index())
		}
		counts[na.Index()]++
	}
	for i, n := range counts {
		// Consistent hashing with 64 vnodes is uneven but no node should be
		// starved or own the majority of 400 users over 4 nodes.
		if n < 20 || n > 250 {
			t.Fatalf("node %d owns %d of 400 users; ring badly unbalanced: %v", i, n, counts)
		}
	}
}

func TestMoveOverridesRouting(t *testing.T) {
	c := newCluster(t, 3, "lru")
	user := "roamer"
	home := c.Route(user).Index()
	target := (home + 1) % 3
	res, err := c.Move(user, target)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Moved || res.From != home || res.To != target {
		t.Fatalf("unexpected handover result %+v", res)
	}
	if got := c.Route(user).Index(); got != target {
		t.Fatalf("after Move user routes to %d, want %d", got, target)
	}
	// Moving to the same cell is a no-op, not a handover.
	res, err = c.Move(user, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moved {
		t.Fatalf("same-cell move reported a handover: %+v", res)
	}
	if st := c.Stats(); st.Handovers != 1 {
		t.Fatalf("handovers = %d, want 1", st.Handovers)
	}
	// Cell indices wrap modulo the cluster size.
	if _, err := c.Move(user, 3+home); err != nil {
		t.Fatal(err)
	}
	if got := c.Route(user).Index(); got != home {
		t.Fatalf("wrapped move routed to %d, want %d", got, home)
	}
}

// TestHandoverGoldenRoundTrip is the golden bit-identity check: after a
// handover, the new node's exported model bytes and its encode outputs
// must equal the pre-handover node's exactly.
func TestHandoverGoldenRoundTrip(t *testing.T) {
	corp, _ := cloudFixture(t)
	c := newCluster(t, 2, "lru")
	user := "golden"
	personalize(t, c, user, 51)
	from := c.Route(user)
	to := (from.Index() + 1) % 2

	words := corpus.NewGenerator(corp, mat.NewRNG(99)).Message(corp.Domain("it").Index, nil).Words
	preExport, err := from.Edge().ExportUserModel("it", user)
	if err != nil {
		t.Fatal(err)
	}
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	preEnc, err := from.Edge().Encode(sc, "it", user, words)
	if err != nil {
		t.Fatal(err)
	}
	if !preEnc.Individual {
		t.Fatal("pre-handover encode did not use the individual model")
	}

	res, err := c.Move(user, to)
	if err != nil {
		t.Fatal(err)
	}
	if res.Models != 1 || res.Bytes != preExport.SizeBytes() {
		t.Fatalf("handover migrated %d models / %d bytes, want 1 / %d", res.Models, res.Bytes, preExport.SizeBytes())
	}
	if res.Latency <= 0 {
		t.Fatal("handover paid no mesh latency")
	}
	if got := from.Edge().UserDomains(user); len(got) != 0 {
		t.Fatalf("source node still holds %v after handover", got)
	}

	postExport, err := c.Node(to).Edge().ExportUserModel("it", user)
	if err != nil {
		t.Fatal(err)
	}
	if postExport.Version != preExport.Version {
		t.Fatalf("version changed across handover: %d -> %d", preExport.Version, postExport.Version)
	}
	if !bytes.Equal(postExport.Params, preExport.Params) {
		t.Fatal("exported parameter bytes differ across handover")
	}
	postEnc, err := c.Node(to).Edge().Encode(sc, "it", user, words)
	if err != nil {
		t.Fatal(err)
	}
	if !postEnc.Individual {
		t.Fatal("post-handover encode did not use the migrated individual model")
	}
	if postEnc.Features.Rows != preEnc.Features.Rows {
		t.Fatal("feature count changed across handover")
	}
	for i := range preEnc.Features.Data {
		if postEnc.Features.Data[i] != preEnc.Features.Data[i] {
			t.Fatalf("feature element %d differs across handover: %v != %v",
				i, postEnc.Features.Data[i], preEnc.Features.Data[i])
		}
	}
}

func TestCooperativeFetchPrefersNeighbor(t *testing.T) {
	c := newCluster(t, 3, "lru")
	// Warm node 0 only: every other node starts cold.
	if _, err := c.Node(0).Edge().Prefetch([]string{"it", "medical"}); err != nil {
		t.Fatal(err)
	}
	acq, err := c.Node(1).Edge().AcquireCodec("it", "")
	if err != nil {
		t.Fatal(err)
	}
	if acq.CacheHit {
		t.Fatal("cold node reported a local hit")
	}
	if !acq.Remote {
		t.Fatal("miss with a warm neighbor was not served cooperatively")
	}
	// One mesh hop (5 ms + serialization) is far below the 40 ms uplink.
	if acq.FetchLatency <= 0 || acq.FetchLatency >= 40*time.Millisecond {
		t.Fatalf("neighbor fetch latency %v not in mesh range", acq.FetchLatency)
	}
	st := c.Stats()
	if st.Nodes[1].NeighborHits != 1 || st.Nodes[1].NeighborBytes <= 0 {
		t.Fatalf("node 1 counters wrong: %+v", st.Nodes[1])
	}
	if st.Nodes[0].NeighborServed != 1 {
		t.Fatalf("node 0 served %d probes, want 1", st.Nodes[0].NeighborServed)
	}
	// Node 1's origin counter must be untouched; node 0 fetched two models.
	if st.Nodes[1].OriginFetches != 0 || st.Nodes[0].OriginFetches != 2 {
		t.Fatalf("origin fetch counters wrong: %+v", st.Nodes)
	}
	// A fully cold key still falls back to the origin.
	acq, err = c.Node(2).Edge().AcquireCodec("medical", "")
	if err != nil {
		t.Fatal(err)
	}
	if !acq.Remote {
		t.Fatal("medical is cached on node 0; expected a cooperative hit")
	}
}

func TestCooperativeFetchFallsBackToOrigin(t *testing.T) {
	c := newCluster(t, 2, "lru")
	acq, err := c.Node(1).Edge().AcquireCodec("it", "")
	if err != nil {
		t.Fatal(err)
	}
	if acq.Remote {
		t.Fatal("all-cold cluster reported a neighbor hit")
	}
	if acq.FetchLatency < 40*time.Millisecond {
		t.Fatalf("origin fetch latency %v below uplink latency", acq.FetchLatency)
	}
	st := c.Stats()
	if st.Nodes[1].OriginFetches != 1 || st.Nodes[1].OriginBytes <= 0 {
		t.Fatalf("origin counters wrong: %+v", st.Nodes[1])
	}
	if st.NeighborHits() != 0 {
		t.Fatal("phantom neighbor hit")
	}
}

func TestStatsOccupancy(t *testing.T) {
	c := newCluster(t, 2, "lru")
	for u := 0; u < 10; u++ {
		c.Route(fmt.Sprintf("u%02d", u))
	}
	c.Move("u00", 1)
	st := c.Stats()
	total := 0
	for _, n := range st.Nodes {
		total += n.Users
	}
	if total != 10 {
		t.Fatalf("occupancy sums to %d, want 10", total)
	}
}

// TestConcurrentClusterUse exercises routing, cooperative fetches and
// handovers from many goroutines; run under -race it is the cluster's
// data-race gate. Each goroutine owns one user, so the per-user
// serialization contract holds while nodes and counters are shared.
func TestConcurrentClusterUse(t *testing.T) {
	c := newCluster(t, 3, "lru")
	if _, err := c.Node(0).Edge().Prefetch([]string{"it", "medical"}); err != nil {
		t.Fatal(err)
	}
	const users = 16
	var wg sync.WaitGroup
	errCh := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("c%02d", u)
			for i := 0; i < 30; i++ {
				node := c.Route(user)
				if _, err := node.Edge().AcquireCodec("it", user); err != nil {
					errCh <- err
					return
				}
				if _, _, err := node.Edge().Personalize("it", user); err != nil {
					errCh <- err
					return
				}
				if i%7 == u%7 {
					if _, err := c.Move(user, (node.Index()+1)%3); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Handovers == 0 {
		t.Fatal("concurrent run produced no handovers")
	}
	for _, n := range st.Nodes {
		if n.CacheUsedBytes > c.Node(0).Edge().Cache().Capacity() {
			t.Fatalf("node %s over capacity", n.Name)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Growing the ring by one node must only reassign users, never produce
	// an out-of-range node, and must keep most users in place.
	small := NewRing(3, 64, 1)
	big := NewRing(4, 64, 1)
	moved := 0
	const users = 1000
	for u := 0; u < users; u++ {
		user := fmt.Sprintf("u%04d", u)
		s, b := small.Node(user), big.Node(user)
		if s < 0 || s >= 3 || b < 0 || b >= 4 {
			t.Fatalf("node index out of range: %d, %d", s, b)
		}
		if s != b {
			moved++
		}
	}
	// Consistent hashing moves roughly 1/4 of users when going 3 -> 4
	// nodes; a modulo hash would move about 3/4.
	if moved > users/2 {
		t.Fatalf("adding one node moved %d/%d users; not consistent", moved, users)
	}
}
