package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over node indices: every node owns a
// fixed number of virtual points placed by a seeded hash, and a user maps
// to the first point clockwise from their own hash. Identically-configured
// clusters therefore route identically, and adding or removing one node
// reassigns only the users whose arcs it owned — the property that keeps
// cache warmth intact as a deployment scales.
type ring struct {
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash uint64
	node int
}

// hash64 is FNV-1a over s with a murmur-style finalizer. The finalizer
// matters: plain FNV over short sequential names ("u001", "u002", ...)
// yields near-sequential hashes that all land on one arc of the ring; the
// avalanche spreads them uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing places replicas virtual points per node, seeded by seed.
func newRing(nodes, replicas int, seed uint64) *ring {
	r := &ring{points: make([]ringPoint, 0, nodes*replicas)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < replicas; v++ {
			h := hash64(fmt.Sprintf("%x/node-%d/%d", seed, n, v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	// Ties break by node index so the order is total and deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// node returns the owning node index for key.
func (r *ring) node(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}
