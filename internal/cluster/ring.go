package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over node indices: every node owns a
// fixed number of virtual points placed by a seeded hash, and a user maps
// to the first point clockwise from their own hash. Identically-configured
// clusters therefore route identically, and adding or removing one node
// reassigns only the users whose arcs it owned — the property that keeps
// cache warmth intact as a deployment scales, and that lets the
// multi-process mesh recompute ownership on join/leave by rebuilding the
// ring over the live members (a dead node's points vanish; every other
// arc is untouched).
type Ring struct {
	points []ringPoint // sorted by hash
}

// ringPoint is one virtual node.
type ringPoint struct {
	hash uint64
	node int
}

// Hash64 is FNV-1a over s with a murmur-style finalizer. The finalizer
// matters: plain FNV over short sequential names ("u001", "u002", ...)
// yields near-sequential hashes that all land on one arc of the ring; the
// avalanche spreads them uniformly. It is exported so out-of-process
// peers (and drivers) can derive per-user values that agree with the
// ring's placement.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing places replicas virtual points per node for nodes 0..nodes-1,
// seeded by seed.
func NewRing(nodes, replicas int, seed uint64) *Ring {
	members := make([]int, nodes)
	for i := range members {
		members[i] = i
	}
	return NewRingFor(members, replicas, seed)
}

// NewRingFor builds the ring over an explicit member set (node indices,
// not necessarily contiguous). A member's virtual points depend only on
// its own index, so NewRingFor([0,2], ...) is exactly NewRing(3, ...)
// with node 1's points removed — the rebalance a mesh performs when a
// peer dies.
func NewRingFor(members []int, replicas int, seed uint64) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(members)*replicas)}
	for _, n := range members {
		for v := 0; v < replicas; v++ {
			h := Hash64(fmt.Sprintf("%x/node-%d/%d", seed, n, v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	// Ties break by node index so the order is total and deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Node returns the owning node index for key.
func (r *Ring) Node(key string) int {
	h := Hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}
