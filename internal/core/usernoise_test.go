package core

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/trace"
)

// userNoiseConfig is a fast per-user-noise system: oracle selection (no
// selector state, so every divergence in these tests is a noise
// divergence), pinned generals, shared pretrained codecs.
func userNoiseConfig() Config {
	cfg := batchTestConfig()
	cfg.Selector = SelectorOracle
	cfg.PerUserNoise = true
	return cfg
}

// oracleRequests builds a fixed ground-truth message stream for user, all
// in one domain so the individual-model update pipeline engages.
func oracleRequests(corp *corpus.Corpus, user string, domain, n int, seed uint64) []trace.Request {
	gen := corpus.NewGenerator(corp, mat.NewRNG(seed))
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = trace.Request{User: user, Msg: gen.Message(domain, nil)}
	}
	return reqs
}

// noisyDigest folds the noise-dependent fields too: RestoredWords is the
// only Result field that depends on channel-noise draws, so including it
// makes the digest sensitive to the exact noise realization.
func noisyDigest(results []*Result) string {
	var out string
	for _, r := range results {
		out += fmt.Sprintf("%d|%v|%g|%d|%d|%d\n",
			r.SelectedDomain, r.RestoredWords, r.Mismatch,
			r.PayloadBytes, r.Symbols, r.Latency.Nanoseconds())
	}
	return out
}

// TestPerUserNoiseInterleavingInvariance checks the defining property of
// PerUserNoise mode: one user's complete result stream — noise
// realizations included — is bit-identical whether the user runs alone or
// interleaved with arbitrary other traffic. (Classic mode deliberately
// lacks this property: its shared RNG draws in global arrival order,
// pinned by the serialized-baseline golden.)
func TestPerUserNoiseInterleavingInvariance(t *testing.T) {
	mkSys := func() *System {
		s, err := NewSystem(userNoiseConfig())
		if err != nil {
			t.Fatal(err)
		}
		prefetchAll(t, s)
		return s
	}
	alice := oracleRequests(corpus.Build(), "alice", 0, 12, 501)
	bob := oracleRequests(corpus.Build(), "bob", 1, 12, 502)

	// Run 1: alice alone.
	solo := mkSys()
	var soloResults []*Result
	for i := range alice {
		res, err := solo.Transmit(alice[i])
		if err != nil {
			t.Fatal(err)
		}
		soloResults = append(soloResults, res)
	}

	// Run 2: alice interleaved with bob, strictly alternating, so every
	// alice message has a different global arrival position than in run 1.
	mixed := mkSys()
	var mixedResults []*Result
	for i := range alice {
		if _, err := mixed.Transmit(bob[i]); err != nil {
			t.Fatal(err)
		}
		res, err := mixed.Transmit(alice[i])
		if err != nil {
			t.Fatal(err)
		}
		mixedResults = append(mixedResults, res)
	}

	if a, b := noisyDigest(soloResults), noisyDigest(mixedResults); a != b {
		t.Fatalf("alice's stream depends on interleaving under PerUserNoise:\nsolo:\n%s\nmixed:\n%s", a, b)
	}
}

// TestPerUserNoiseHandoverContinuity simulates the mesh handover: run a
// user's first half on one system, export their serving state, import it
// into a second identically-seeded system, and run the second half there.
// The second half must be bit-identical to an uninterrupted reference run
// — the exported noise sequence and individual models make the new owner
// continue exactly where the old one stopped. The split lands on a
// buffer-threshold boundary because transaction buffers are deliberately
// node-local (exactly like the in-process cluster's handover).
func TestPerUserNoiseHandoverContinuity(t *testing.T) {
	cfg := userNoiseConfig() // BufferThreshold 8 via batchTestConfig
	mkSys := func(name string) *System {
		c := cfg
		c.SenderName = name
		s, err := NewSystem(c)
		if err != nil {
			t.Fatal(err)
		}
		prefetchAll(t, s)
		return s
	}
	reqs := oracleRequests(corpus.Build(), "carol", 2, 16, 503)
	split := 8 // buffer threshold boundary: update fired, buffer empty

	// Reference: one system serves all 16 messages.
	ref := mkSys("node-0")
	var refTail []*Result
	for i := range reqs {
		res, err := ref.Transmit(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if i >= split {
			refTail = append(refTail, res)
		}
	}

	// Handover: first half on node 0, export/import, second half on node 1.
	old := mkSys("node-0")
	for i := 0; i < split; i++ {
		if _, err := old.Transmit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	exp, err := old.ExportUserForHandover("carol")
	if err != nil {
		t.Fatal(err)
	}
	if exp.NoiseSeq != uint64(split) {
		t.Fatalf("exported NoiseSeq = %d, want %d", exp.NoiseSeq, split)
	}
	if len(exp.Sender) == 0 || len(exp.Receiver) == 0 {
		t.Fatalf("export carried no individual models: sender %d, receiver %d (update never fired?)",
			len(exp.Sender), len(exp.Receiver))
	}
	if exp.SenderBytes() <= 0 {
		t.Fatalf("SenderBytes = %d", exp.SenderBytes())
	}
	neu := mkSys("node-1")
	if err := neu.ImportUserFromHandover(exp); err != nil {
		t.Fatal(err)
	}
	old.DropUserAfterHandover(exp)
	for _, m := range exp.Sender {
		if _, err := old.Sender.ExportUserModel(m.Domain, "carol"); err == nil {
			t.Fatalf("sender model %s/carol still present after drop", m.Domain)
		}
	}
	var newTail []*Result
	for i := split; i < len(reqs); i++ {
		res, err := neu.Transmit(reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		newTail = append(newTail, res)
	}

	if a, b := noisyDigest(refTail), noisyDigest(newTail); a != b {
		t.Fatalf("post-handover stream diverged from uninterrupted reference:\nref:\n%s\nnew:\n%s", a, b)
	}
}

// TestNoiseSeedDerivation pins the basic properties of the derivation:
// deterministic, and distinct across users, sequence numbers and system
// seeds.
func TestNoiseSeedDerivation(t *testing.T) {
	base := noiseSeed(1, 100, 0)
	if base != noiseSeed(1, 100, 0) {
		t.Fatal("noiseSeed not deterministic")
	}
	for name, other := range map[string]uint64{
		"user": noiseSeed(1, 101, 0),
		"seq":  noiseSeed(1, 100, 1),
		"seed": noiseSeed(2, 100, 0),
	} {
		if other == base {
			t.Fatalf("noiseSeed collision when only %s differs", name)
		}
	}
}
