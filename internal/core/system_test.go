package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/semantic"
	"repro/internal/trace"
)

// testConfig keeps system tests fast while remaining accurate enough for
// the behavioral assertions.
func testConfig() Config {
	return Config{
		Codec: semantic.Config{
			EmbedDim:   12,
			FeatureDim: 6,
			HiddenDim:  16,
			Epochs:     3,
			Sentences:  400,
		},
		Seed: 7,
	}
}

var (
	sysOnce sync.Once
	sysInst *System
	sysErr  error
)

// sharedSystem builds one oracle-selector system reused by read-mostly
// tests. Tests that mutate state (updates, cache churn) build their own.
func sharedSystem(t *testing.T) *System {
	t.Helper()
	sysOnce.Do(func() {
		cfg := testConfig()
		cfg.Selector = SelectorOracle
		cfg.PinGeneral = true
		sysInst, sysErr = NewSystem(cfg)
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysInst
}

func TestNewSystemValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Selector = "telepathy"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown selector accepted")
	}
	cfg = testConfig()
	cfg.Policy = "belady"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
	cfg = testConfig()
	cfg.CodeName = "turbo"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown code accepted")
	}
}

func TestTransmitEndToEnd(t *testing.T) {
	s := sharedSystem(t)
	w := trace.Generate(s.Corpus, trace.Config{Users: 2, Messages: 30, Seed: 11})
	results, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(results)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Messages != 30 {
		t.Fatalf("messages = %d", sum.Messages)
	}
	// Oracle selection, trained codecs, 12 dB with Hamming: high fidelity.
	if sum.MeanWordAccuracy < 0.75 {
		t.Fatalf("word accuracy = %v, want >= 0.75", sum.MeanWordAccuracy)
	}
	if sum.MeanSimilarity < sum.MeanWordAccuracy {
		t.Fatalf("similarity (%v) should be >= word accuracy (%v)",
			sum.MeanSimilarity, sum.MeanWordAccuracy)
	}
	if sum.SelectionAccuracy != 1 {
		t.Fatalf("oracle selection accuracy = %v", sum.SelectionAccuracy)
	}
	if sum.MeanPayloadBytes <= 0 {
		t.Fatal("no payload accounted")
	}
	for _, r := range results {
		if r.Latency <= 0 {
			t.Fatal("non-positive latency")
		}
		if len(r.RestoredWords) != len(r.Req.Msg.Words) {
			t.Fatal("restored length mismatch")
		}
	}
}

func TestSemanticPayloadSmallerThanRawText(t *testing.T) {
	s := sharedSystem(t)
	w := trace.Generate(s.Corpus, trace.Config{Users: 1, Messages: 40, Seed: 13})
	results, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	var semBytes, rawBytes float64
	for _, r := range results {
		semBytes += float64(r.PayloadBytes)
		rawBytes += float64(len(r.Req.Msg.Text()))
	}
	if semBytes >= rawBytes {
		t.Fatalf("semantic payload (%v) not smaller than raw text (%v)", semBytes, rawBytes)
	}
}

func TestColdCachePaysFetchLatency(t *testing.T) {
	cfg := testConfig()
	cfg.Selector = SelectorOracle
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(s.Corpus, trace.Config{Users: 1, Messages: 10, Seed: 17})
	results, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].EncCacheHit {
		t.Fatal("first message should miss the sender cache")
	}
	// Fetch latency dominates the cold message.
	if results[0].Latency < 40*time.Millisecond {
		t.Fatalf("cold latency = %v, below cloud link latency", results[0].Latency)
	}
	// Later same-domain messages should be far cheaper.
	last := results[len(results)-1]
	if last.Latency >= results[0].Latency {
		t.Fatalf("warm latency %v not below cold %v", last.Latency, results[0].Latency)
	}
}

func TestUpdateProcessFiresAndHelps(t *testing.T) {
	cfg := testConfig()
	cfg.Selector = SelectorOracle
	cfg.PinGeneral = true
	cfg.BufferThreshold = 24
	cfg.UpdateEpochs = 4
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Single user with a strong idiolect in a single domain.
	w := trace.Generate(s.Corpus, trace.Config{
		Users: 1, Messages: 120, Seed: 23,
		IdiolectStrength: 0.5, MeanRunLength: 1e9, // stay in one domain
	})
	results, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	updates := 0
	for _, r := range results {
		if r.UpdateFired {
			updates++
			if r.UpdateBytes <= 0 {
				t.Fatal("update fired with zero bytes")
			}
		}
	}
	if updates == 0 {
		t.Fatal("no updates fired in 120 messages with threshold 24")
	}
	if s.SyncCount() != updates || s.SyncBytes() <= 0 {
		t.Fatalf("sync counters inconsistent: count %d vs %d", s.SyncCount(), updates)
	}
	// Personalization must reduce mismatch: compare first vs last quarter.
	quarter := len(results) / 4
	var early, late float64
	for i := 0; i < quarter; i++ {
		early += results[i].Mismatch
		late += results[len(results)-1-i].Mismatch
	}
	if late >= early {
		t.Fatalf("mismatch did not decrease after updates: early %v late %v", early, late)
	}
	// Individual models must be in play by the end.
	if !results[len(results)-1].UsedIndividual {
		t.Fatal("individual model not used after updates")
	}
}

func TestSelectorLearnsFromMismatchReward(t *testing.T) {
	cfg := testConfig()
	cfg.Selector = SelectorQLearn
	cfg.PinGeneral = true
	cfg.DisableAutoUpdate = true
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	messages := 800
	if testing.Short() {
		messages = 400 // enough reward rounds for the late-accuracy bound
	}
	w := trace.Generate(s.Corpus, trace.Config{Users: 1, Messages: messages, Seed: 29})
	results, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	// After enough reward-driven updates the policy must operate far
	// above chance (1/8) in the second half of the stream.
	half := len(results) / 2
	lastOK := 0
	for _, r := range results[half:] {
		if r.CorrectSelection {
			lastOK++
		}
	}
	lateAcc := float64(lastOK) / float64(half)
	if lateAcc < 0.5 {
		t.Fatalf("late selection accuracy = %v, want >= 0.5 (chance is 0.125)", lateAcc)
	}
}

func TestWrongSelectionScoresLow(t *testing.T) {
	cfg := testConfig()
	cfg.Selector = SelectorStatic
	cfg.StaticDomain = 0 // always "it"
	cfg.PinGeneral = true
	cfg.DisableAutoUpdate = true
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(s.Corpus, trace.Config{Users: 2, Messages: 100, Seed: 31})
	results, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	var right, wrong int
	var rightAcc, wrongAcc float64
	for _, r := range results {
		if r.CorrectSelection {
			right++
			rightAcc += r.WordAccuracy
		} else {
			wrong++
			wrongAcc += r.WordAccuracy
		}
	}
	if right == 0 || wrong == 0 {
		t.Skipf("workload lacked both conditions: right=%d wrong=%d", right, wrong)
	}
	if rightAcc/float64(right) <= wrongAcc/float64(wrong) {
		t.Fatalf("wrong-domain selection should hurt fidelity: right %v wrong %v",
			rightAcc/float64(right), wrongAcc/float64(wrong))
	}
}

func TestCompressedUpdatesSmaller(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping two-system compression comparison in -short")
	}
	run := func(compress nn.CompressOptions) int64 {
		cfg := testConfig()
		cfg.Selector = SelectorOracle
		cfg.PinGeneral = true
		cfg.BufferThreshold = 24
		cfg.Compress = compress
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := trace.Generate(s.Corpus, trace.Config{
			Users: 1, Messages: 60, Seed: 37,
			IdiolectStrength: 0.4, MeanRunLength: 1e9,
		})
		if _, err := s.RunWorkload(w); err != nil {
			t.Fatal(err)
		}
		return s.SyncBytes()
	}
	dense := run(nn.CompressOptions{})
	sparse := run(nn.CompressOptions{TopKFrac: 0.1, Int8: true})
	if dense == 0 || sparse == 0 {
		t.Fatal("no sync traffic recorded")
	}
	if sparse >= dense/4 {
		t.Fatalf("top-10%%+int8 sync (%d) not much smaller than dense (%d)", sparse, dense)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty summarize should error")
	}
}

func TestSystemDeterminism(t *testing.T) {
	run := func() Summary {
		cfg := testConfig()
		cfg.Selector = SelectorOracle
		cfg.PinGeneral = true
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := trace.Generate(s.Corpus, trace.Config{Users: 2, Messages: 50, Seed: 41})
		results, err := s.RunWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := Summarize(results)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("system not deterministic:\n%+v\n%+v", a, b)
	}
}
