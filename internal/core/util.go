package core

import (
	"time"

	"repro/internal/cache"
	"repro/internal/metrics"
)

// edgePolicy aliases the cache policy interface used when wiring edges.
type edgePolicy = cache.Policy

// cachePolicyByName resolves an eviction policy name.
func cachePolicyByName(name string) (edgePolicy, bool) {
	return cache.NewPolicy(name)
}

// percentileDuration returns the p-th percentile of float64-encoded
// durations.
func percentileDuration(values []float64, p float64) time.Duration {
	return time.Duration(metrics.Percentile(values, p))
}
