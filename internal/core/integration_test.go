package core

import (
	"testing"

	"repro/internal/text"
	"repro/internal/trace"
)

// Integration tests exercising system configurations beyond the defaults:
// fading channels, higher-order modulations, interleaving and the live
// TransmitText path.

// buildSystem constructs a system with the shared small codec config plus
// the given mutator.
func buildSystem(t *testing.T, mutate func(*Config)) *System {
	t.Helper()
	cfg := testConfig()
	cfg.Selector = SelectorOracle
	cfg.PinGeneral = true
	cfg.DisableAutoUpdate = true
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fidelity runs a workload and returns mean word accuracy.
func fidelity(t *testing.T, s *System, seed uint64, n int) float64 {
	t.Helper()
	w := trace.Generate(s.Corpus, trace.Config{Users: 2, Messages: n, Seed: seed})
	results, err := s.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(results)
	if err != nil {
		t.Fatal(err)
	}
	return sum.MeanWordAccuracy
}

func TestRayleighDegradesVsAWGN(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-system channel-behavior test in -short")
	}
	awgn := buildSystem(t, func(c *Config) { c.SNRdB = 6 })
	ray := buildSystem(t, func(c *Config) { c.SNRdB = 6; c.Rayleigh = true })
	a := fidelity(t, awgn, 71, 80)
	r := fidelity(t, ray, 71, 80)
	if r >= a {
		t.Fatalf("Rayleigh fidelity (%v) should be below AWGN (%v) at 6 dB", r, a)
	}
}

func TestInterleavingHelpsBlockFading(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-system channel-behavior test in -short")
	}
	plain := buildSystem(t, func(c *Config) { c.SNRdB = 9; c.Rayleigh = true })
	ilv := buildSystem(t, func(c *Config) {
		c.SNRdB = 9
		c.Rayleigh = true
		c.InterleaveDepth = 14
	})
	p := fidelity(t, plain, 73, 120)
	i := fidelity(t, ilv, 73, 120)
	// Per-symbol fading with BPSK leaves little burst structure, so the
	// requirement is weak: interleaving must not hurt.
	if i < p-0.03 {
		t.Fatalf("interleaving hurt fidelity: %v -> %v", p, i)
	}
}

func TestHigherOrderModulations(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-system channel-behavior test in -short")
	}
	// At high SNR all modulations must work; at the same SNR the denser
	// constellation loses more than BPSK.
	for _, mod := range []string{"qpsk", "16qam"} {
		mod := mod
		t.Run(mod, func(t *testing.T) {
			high := buildSystem(t, func(c *Config) { c.ModName = mod; c.SNRdB = 16 })
			if acc := fidelity(t, high, 79, 60); acc < 0.8 {
				t.Fatalf("%s at 16 dB accuracy = %v", mod, acc)
			}
		})
	}
	bpskLow := buildSystem(t, func(c *Config) { c.ModName = "bpsk"; c.SNRdB = 4 })
	qamLow := buildSystem(t, func(c *Config) { c.ModName = "16qam"; c.SNRdB = 4 })
	bAcc := fidelity(t, bpskLow, 83, 80)
	qAcc := fidelity(t, qamLow, 83, 80)
	if qAcc >= bAcc {
		t.Fatalf("16-QAM at 4 dB (%v) should lose to BPSK (%v)", qAcc, bAcc)
	}
	// But 16-QAM uses 4x fewer symbols (air time).
	wq := trace.Generate(qamLow.Corpus, trace.Config{Users: 1, Messages: 10, Seed: 83})
	resQ, err := qamLow.RunWorkload(wq)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := bpskLow.RunWorkload(wq)
	if err != nil {
		t.Fatal(err)
	}
	// 16-QAM carries 4 bits/symbol vs BPSK's 1: expect ~4x fewer symbols.
	if resQ[0].Symbols >= resB[0].Symbols/3 {
		t.Fatalf("16-QAM should use ~4x fewer symbols: %d vs %d", resQ[0].Symbols, resB[0].Symbols)
	}
}

func TestTransmitText(t *testing.T) {
	s := buildSystem(t, func(c *Config) { c.Selector = SelectorSticky })
	res, err := s.TransmitText("alice", text.Tokenize("the server has a kernel bug"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Corpus.Domains[res.SelectedDomain].Name != "it" {
		t.Fatalf("selected %q", s.Corpus.Domains[res.SelectedDomain].Name)
	}
	if len(res.RestoredWords) != 6 {
		t.Fatalf("restored %v", res.RestoredWords)
	}
	if res.PayloadBytes <= 0 || res.Latency <= 0 {
		t.Fatal("missing transport accounting")
	}
}

func TestTransmitTextOracleRejected(t *testing.T) {
	s := buildSystem(t, nil) // oracle selector
	if _, err := s.TransmitText("alice", []string{"the", "server"}); err == nil {
		t.Fatal("oracle TransmitText should error")
	}
}

func TestProcessUpdateWithoutData(t *testing.T) {
	s := buildSystem(t, nil)
	if _, err := s.ProcessUpdate("it", "ghost"); err == nil {
		t.Fatal("update without buffered data accepted")
	}
}

func TestInterleaveConfigValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-system channel-behavior test in -short")
	}
	// Depth 1 and 0 are no-ops, not errors.
	for _, depth := range []int{0, 1, 8} {
		depth := depth
		s := buildSystem(t, func(c *Config) { c.InterleaveDepth = depth })
		if acc := fidelity(t, s, 89, 30); acc < 0.7 {
			t.Fatalf("depth %d accuracy = %v", depth, acc)
		}
	}
}
