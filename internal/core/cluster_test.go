package core

import (
	"testing"

	"repro/internal/trace"
)

// clusterTestConfig is the package test config in cluster mode.
func clusterTestConfig(nodes int) Config {
	cfg := testConfig()
	cfg.Nodes = nodes
	cfg.Selector = SelectorOracle
	return cfg
}

// TestClusterWorkloadWithMobility runs a mobile workload end to end
// through a 3-node cluster system: mobility events must produce
// handovers, cooperative fetches must happen (only node 0 is warmed),
// and two identically-seeded systems must agree result for result.
func TestClusterWorkloadWithMobility(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster workload is slow; run without -short")
	}
	mkSys := func() *System {
		sys, err := NewSystem(clusterTestConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := mkSys()
	w := trace.Generate(sys.Corpus, trace.Config{
		Users: 6, Messages: 300, Cells: 3, MobilityRate: 0.08, Seed: 21,
	})
	if len(w.Moves) == 0 {
		t.Fatal("workload has no mobility events")
	}
	results, err := sys.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(w.Requests) {
		t.Fatalf("results = %d, want %d", len(results), len(w.Requests))
	}
	st := sys.Cluster.Stats()
	if st.Handovers == 0 {
		t.Fatal("mobile workload triggered no handovers")
	}
	if st.NeighborHits() == 0 {
		t.Fatal("cold nodes never fetched cooperatively")
	}
	sum, err := Summarize(results)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanWordAccuracy < 0.5 {
		t.Fatalf("cluster-mode accuracy collapsed: %+v", sum)
	}

	// Replay on an identical twin: serial cluster-mode runs must be
	// bit-identical, handovers included.
	twin := mkSys()
	results2, err := twin.RunWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		a, b := results[i], results2[i]
		if a.Mismatch != b.Mismatch || a.PayloadBytes != b.PayloadBytes ||
			a.Latency != b.Latency || a.SelectedDomain != b.SelectedDomain {
			t.Fatalf("result %d diverged across identical cluster systems", i)
		}
	}
	st2 := twin.Cluster.Stats()
	if st.Handovers != st2.Handovers || st.MigratedBytes != st2.MigratedBytes {
		t.Fatalf("handover accounting diverged: %d/%d vs %d/%d",
			st.Handovers, st.MigratedBytes, st2.Handovers, st2.MigratedBytes)
	}
}

// TestMoveUserRequiresCluster checks that mobility is rejected in the
// classic single-sender configuration.
func TestMoveUserRequiresCluster(t *testing.T) {
	cfg := testConfig()
	cfg.Selector = SelectorOracle
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MoveUser("u1", 1); err == nil {
		t.Fatal("single-sender system accepted MoveUser")
	}
}
