package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// allocSystem builds a warm pinned system with automatic updates off, so
// repeated transmits stay on the steady-state path.
func allocSystem(t *testing.T) *System {
	t.Helper()
	return allocSystemTier(t, "", false)
}

// allocSystemTier is allocSystem at an explicit serving kernel tier and
// noise scheme (perUser selects the pooled lock-free channel stage).
func allocSystemTier(t *testing.T, tier string, perUser bool) *System {
	t.Helper()
	cfg := goldenConfig()
	cfg.DisableAutoUpdate = true
	cfg.Tier = tier
	cfg.PerUserNoise = perUser
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sender.Prefetch(s.Corpus.Names()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Receiver.Prefetch(s.Corpus.Names()); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTransmitCodecPathZeroAllocs pins the steady-state Transmit codec
// path — batched encode on the sender edge, the physical channel, batched
// decode on the receiver edge, and the decoder-copy mismatch decode — at
// zero heap allocations per message. This is exactly the per-message
// compute transmitSelected performs, crossing the channel through
// sendOverChannel so both schemes are covered: the classic serialized
// link AND the pooled lock-free PerUserNoise stage, whose steady-state
// pool checkout must not allocate. What remains outside are the retained
// artifacts (Result, transaction buffers, restored words), which hold
// amortized state by design. The guarantee holds at every kernel tier:
// the reduced-precision weight shadows are built once per codec and the
// tiered kernels draw all temporaries from the same scratch arena the
// f64 path uses.
func TestTransmitCodecPathZeroAllocs(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	for _, noise := range []struct {
		name    string
		perUser bool
	}{{"shared", false}, {"pooled", true}} {
		for _, tier := range []string{"f64", "f32", "int8"} {
			t.Run(noise.name+"/"+tier, func(t *testing.T) {
				s := allocSystemTier(t, tier, noise.perUser)
				words := corpus.NewGenerator(s.Corpus, mat.NewRNG(5)).Message(s.Corpus.Domain("it").Index, nil).Words
				const domain, user = "it", "alloc-user"

				prev := mat.Parallelism()
				defer mat.SetParallelism(prev)
				mat.SetParallelism(1) // sharding spawns goroutines, which allocate

				sc := mat.GetScratch()
				defer mat.PutScratch(sc)
				mismatch := make([]int, len(words))

				var seq uint64
				codecPath := func() {
					sc.Reset()
					enc, err := s.Sender.Encode(sc, domain, user, words)
					if err != nil {
						t.Fatal(err)
					}
					rx := sc.Mat(enc.Features.Rows, enc.Model.Codec.FeatureDim())
					// The channel crossing transmitSelected performs: a derived
					// per-message seed in PerUserNoise mode (advancing like the
					// user's stream would), ignored by the classic shared link.
					seed := noiseSeed(s.cfg.Seed, 12345, seq)
					seq++
					s.sendOverChannel(seed, rx.Data, enc.Features.Data)
					if _, err := s.Receiver.DecodeConcepts(sc, domain, user, rx); err != nil {
						t.Fatal(err)
					}
					// Decoder-copy mismatch: reuses the already-encoded features,
					// as RecordTransaction does inside Transmit.
					enc.Model.Codec.DecodeFeaturesInto(sc, enc.Features, mismatch)
				}
				for i := 0; i < 8; i++ {
					codecPath() // warm every arena and channel buffer to its high-water mark
				}
				if allocs := testing.AllocsPerRun(100, codecPath); allocs != 0 {
					t.Fatalf("steady-state Transmit codec path (%s/%s) allocates %v times per message, want 0", noise.name, tier, allocs)
				}
			})
		}
	}
}

// TestTransmitAllocBudget bounds the WHOLE steady-state TransmitText,
// including the retained artifacts the codec path excludes. The budget has
// headroom over the current count (about ten) but fails loudly if per-token
// allocation ever creeps back in (which costs several allocations per
// token, i.e. roughly an order of magnitude more).
func TestTransmitAllocBudget(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	s := allocSystem(t)
	words := corpus.NewGenerator(s.Corpus, mat.NewRNG(6)).Message(s.Corpus.Domain("it").Index, nil).Words

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)
	mat.SetParallelism(1)

	transmit := func() {
		if _, err := s.TransmitText("budget-user", words); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		transmit()
	}
	const budget = 24
	if allocs := testing.AllocsPerRun(50, transmit); allocs > budget {
		t.Fatalf("steady-state TransmitText allocates %v times per message, budget %d", allocs, budget)
	}
}
