package core

import (
	"errors"
	"fmt"

	"repro/internal/edge"
	"repro/internal/selection"
)

// This file is the System-level half of multi-process handover: where the
// in-process cluster migrates models between two nodes it owns
// (cluster.Move), a mesh of independent processes must export a user's
// complete serving state on the old owner, ship it over the wire, and
// import it on the new owner. The state is wider than the in-process
// case: each process has its own receiver edge, so receiver-side
// individual models migrate too, and the per-user noise sequence rides
// along so the user's channel-noise stream continues bit-identically.

// UserExport is one user's migratable serving state.
type UserExport struct {
	User string
	// NoiseSeq is the user's next channel-noise sequence number
	// (PerUserNoise mode).
	NoiseSeq uint64
	// Sender and Receiver hold the individual models each edge side
	// caches for the user.
	Sender   []*edge.ExportedModel
	Receiver []*edge.ExportedModel
	// Belief is the user's domain-selection posterior, when the selector
	// carries one (sticky); nil otherwise.
	Belief []float64
	// Buffers are the user's pending federated-update transactions, so
	// the next individual-model update fires at the same threshold
	// crossing on the new owner.
	Buffers []edge.BufferState
}

// SenderBytes sums the sender-side migration payload — the figure the
// in-process cluster reports as MigratedBytes, kept identical here so
// mesh and cluster handover accounting agree.
func (e *UserExport) SenderBytes() int64 {
	var total int64
	for _, m := range e.Sender {
		total += m.SizeBytes()
	}
	return total
}

// ExportUserForHandover serializes the user's individual models from both
// edge sides plus their noise sequence, under the user's lock so no
// transmit is mid-flight while the state is captured. Models evicted
// between enumeration and export are skipped, exactly like cluster.Move:
// the user simply re-personalizes on the new node.
func (s *System) ExportUserForHandover(user string) (*UserExport, error) {
	if s.Cluster != nil {
		return nil, errors.New("core: ExportUserForHandover is for single-sender (mesh member) systems; cluster mode hands over internally")
	}
	st := s.userState(user)
	st.mu.Lock()
	defer st.mu.Unlock()
	out := &UserExport{User: user, NoiseSeq: st.noiseSeq}
	export := func(srv *edge.Server, dst *[]*edge.ExportedModel) error {
		for _, domain := range srv.UserDomains(user) {
			exp, err := srv.ExportUserModel(domain, user)
			if errors.Is(err, edge.ErrNoIndividual) {
				continue
			}
			if err != nil {
				return fmt.Errorf("core: export %s/%s: %w", user, domain, err)
			}
			*dst = append(*dst, exp)
		}
		return nil
	}
	if err := export(s.Sender, &out.Sender); err != nil {
		return nil, err
	}
	if err := export(s.Receiver, &out.Receiver); err != nil {
		return nil, err
	}
	if bc, ok := st.sel.(selection.BeliefCarrier); ok {
		out.Belief = bc.ExportBelief()
	}
	out.Buffers = s.Sender.ExportUserBuffers(user)
	return out, nil
}

// ImportUserFromHandover installs a migrated user's serving state: both
// edge sides' individual models and the noise sequence, under the user's
// lock. The first transmit after import continues the user's noise
// stream exactly where the old owner left it.
func (s *System) ImportUserFromHandover(exp *UserExport) error {
	if exp == nil {
		return errors.New("core: nil handover export")
	}
	st := s.userState(exp.User)
	st.mu.Lock()
	defer st.mu.Unlock()
	if exp.NoiseSeq > st.noiseSeq {
		st.noiseSeq = exp.NoiseSeq
	}
	for _, m := range exp.Sender {
		if err := s.Sender.ImportUserModel(m); err != nil {
			return fmt.Errorf("core: import sender %s/%s: %w", m.User, m.Domain, err)
		}
	}
	for _, m := range exp.Receiver {
		if err := s.Receiver.ImportUserModel(m); err != nil {
			return fmt.Errorf("core: import receiver %s/%s: %w", m.User, m.Domain, err)
		}
	}
	if len(exp.Belief) > 0 {
		if bc, ok := st.sel.(selection.BeliefCarrier); ok {
			bc.ImportBelief(exp.Belief)
		}
	}
	if len(exp.Buffers) > 0 {
		s.Sender.ImportUserBuffers(exp.User, exp.Buffers)
	}
	return nil
}

// DropUserAfterHandover removes the exported individual models from both
// local edges — the source side of a completed handover push. Dropping
// only what was exported keeps the operation idempotent against models
// created concurrently (none can be: the exporter holds no transmit for
// the user once ownership moved).
func (s *System) DropUserAfterHandover(exp *UserExport) {
	if exp == nil {
		return
	}
	st := s.userState(exp.User)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, m := range exp.Sender {
		s.Sender.DropUserModel(m.Domain, m.User)
	}
	for _, m := range exp.Receiver {
		s.Receiver.DropUserModel(m.Domain, m.User)
	}
	if len(exp.Buffers) > 0 {
		s.Sender.DropUserBuffers(exp.User)
	}
}
