package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/trace"
)

// pooledOracleStreams builds one fixed oracle request stream per user,
// user u pinned to domain u mod len(domains).
func pooledOracleStreams(corp *corpus.Corpus, users, perUser int) [][]trace.Request {
	streams := make([][]trace.Request, users)
	for u := range streams {
		streams[u] = oracleRequests(corp, fmt.Sprintf("user%d", u),
			u%len(corp.Domains), perUser, uint64(700+u))
	}
	return streams
}

// userNoisyDigests runs every user's stream against s — concurrently when
// parallel is set — and returns one NOISE-SENSITIVE digest per user
// (noisyDigest includes RestoredWords, so any divergence in the exact
// channel-noise realization fails the comparison).
func userNoisyDigests(t *testing.T, s *System, streams [][]trace.Request, parallel bool) []string {
	t.Helper()
	digests := make([]string, len(streams))
	run := func(u int) error {
		results := make([]*Result, 0, len(streams[u]))
		for i := range streams[u] {
			res, err := s.Transmit(streams[u][i])
			if err != nil {
				return err
			}
			results = append(results, res)
		}
		digests[u] = noisyDigest(results)
		return nil
	}
	if !parallel {
		for u := range streams {
			if err := run(u); err != nil {
				t.Fatal(err)
			}
		}
		return digests
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(streams))
	for u := range streams {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := run(u); err != nil {
				errCh <- err
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return digests
}

// TestLinkPoolMatchesSerializedGolden is the tentpole bit-identity proof:
// PerUserNoise serving over the lock-free pooled channel stage produces,
// per user, the exact noise realizations of the pre-pool serialized path
// (reseed the one shared RNG under linkMu) — at 1, 2 and 8 mat workers,
// with users running concurrently, both on the solo per-request path and
// through the cross-request batch collector. The reference runs on the
// same binary via the serialLink test hook, which routes PerUserNoise
// transmits back through the serialized path.
func TestLinkPoolMatchesSerializedGolden(t *testing.T) {
	const users, perUser = 6, 16

	// Serialized reference: pre-pool path, one user at a time.
	ref, err := NewSystem(userNoiseConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref.serialLink = true
	prefetchAll(t, ref)
	streams := pooledOracleStreams(ref.Corpus, users, perUser)
	want := userNoisyDigests(t, ref, streams, false)

	prevWorkers := mat.Parallelism()
	defer mat.SetParallelism(prevWorkers)

	for _, workers := range []int{1, 2, 8} {
		for _, window := range []time.Duration{0, 50 * time.Microsecond} {
			name := fmt.Sprintf("workers=%d/solo", workers)
			if window > 0 {
				name = fmt.Sprintf("workers=%d/batched", workers)
			}
			t.Run(name, func(t *testing.T) {
				mat.SetParallelism(workers)
				cfg := userNoiseConfig()
				cfg.BatchWindow = window
				s, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				prefetchAll(t, s)
				got := userNoisyDigests(t, s, streams, true)
				for u := range want {
					if got[u] != want[u] {
						t.Fatalf("user%d noise stream diverged from serialized reference:\nwant:\n%s\ngot:\n%s",
							u, want[u], got[u])
					}
				}
			})
		}
	}
}

// TestLinkPoolSerialHookMatchesPooledSerial sanity-checks the reference
// itself: with a single user running serially, the pooled path and the
// serialLink path must agree — they are two implementations of the same
// derived-seed draw.
func TestLinkPoolSerialHookMatchesPooledSerial(t *testing.T) {
	mk := func(serial bool) *System {
		s, err := NewSystem(userNoiseConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.serialLink = serial
		prefetchAll(t, s)
		return s
	}
	streams := pooledOracleStreams(corpus.Build(), 1, 12)
	a := userNoisyDigests(t, mk(true), streams, false)
	b := userNoisyDigests(t, mk(false), streams, false)
	if a[0] != b[0] {
		t.Fatalf("serialLink reference and pooled path disagree on a serial stream:\nserial:\n%s\npooled:\n%s", a[0], b[0])
	}
}

// TestLinkPoolRaceSoak hammers the pooled channel stage under load — one
// hot user shared by many goroutines (per-user serialization with
// maximal pool contention) and a wide set of distinct users (maximal
// checkout concurrency) — on both the solo path and the batch collector.
// Its value is highest under -race, where it proves the lock-free stage
// is data-race-free; without the detector it still exercises pool
// checkout under real contention.
func TestLinkPoolRaceSoak(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10
	)
	for _, window := range []time.Duration{0, 50 * time.Microsecond} {
		name := "solo"
		if window > 0 {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			cfg := userNoiseConfig()
			cfg.BatchWindow = window
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prefetchAll(t, s)
			gen := corpus.NewGenerator(s.Corpus, mat.NewRNG(808))
			msgs := make([]corpus.Message, goroutines*perG)
			for i := range msgs {
				msgs[i] = gen.Message(i%len(s.Corpus.Domains), nil)
			}

			var wg sync.WaitGroup
			errCh := make(chan error, 2*goroutines)
			for g := 0; g < goroutines; g++ {
				// Half the load hammers one hot user; half spreads across
				// distinct users.
				wg.Add(2)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						req := trace.Request{User: "hot-user", Msg: msgs[(g*perG+i)%len(msgs)]}
						if _, err := s.Transmit(req); err != nil {
							errCh <- err
							return
						}
					}
				}(g)
				go func(g int) {
					defer wg.Done()
					user := fmt.Sprintf("cold-user%d", g)
					for i := 0; i < perG; i++ {
						req := trace.Request{User: user, Msg: msgs[(g*perG+i)%len(msgs)]}
						if _, err := s.Transmit(req); err != nil {
							errCh <- err
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
		})
	}
}
