// Package core wires every substrate into the paper's complete semantic
// edge computing and caching system (Fig. 1):
//
//  1. the sender edge selects a domain-specialized model for each message
//     (§III-A), caching general encoders AND decoders locally (§II-C);
//  2. per-user individual models are cloned from the general models and
//     cached separately (§II-B);
//  3. semantic features cross the physical channel to the receiver edge,
//     which restores the message with its decoder (§I);
//  4. the sender computes semantic mismatch locally via its decoder copy
//     and buffers transactions (§II-C);
//  5. full buffers trigger individual-model fine-tuning, and the decoder
//     update is shipped to the receiver edge, federated-learning style
//     (§II-D).
//
// A System is deterministic given its Config.Seed and is safe for
// concurrent use: requests from different users proceed in parallel,
// while requests from the same user are serialized in arrival order (a
// user's selector context, transaction buffer and individual models form
// one causal stream). On an otherwise idle system a user observes the
// exact result sequence the fully serialized system would produce; under
// concurrent traffic per-user state still evolves identically.
//
// Channel noise comes in two schemes. The classic single-sender mode
// draws from one shared RNG in global arrival order, so individual noise
// realizations depend on the interleaving (historical behavior, pinned
// by golden digests) and every transmission serializes through one
// mutex-guarded channel. Cluster mode (Config.Nodes > 1) — and any
// system with Config.PerUserNoise set — instead derives an independent
// noise stream per (user, message-sequence) pair, making every user's
// noise independent of interleaving AND of which process serves them: a
// multi-process mesh whose nodes each run their own System reproduces
// the single-process cluster's noise bit-for-bit. Because those derived
// seeds depend on nothing shared, the PerUserNoise channel stage runs
// lock-free on a pool of per-request channel instances — transmissions
// cross the physical layer fully in parallel, with outputs bit-identical
// to the serialized draws at any worker count.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/kb"
	"repro/internal/mat"
	"repro/internal/netsim"
	"repro/internal/nn"
	"repro/internal/selection"
	"repro/internal/semantic"
	"repro/internal/trace"
)

// Selector policy names accepted by Config.Selector.
const (
	SelectorOracle     = "oracle"
	SelectorStatic     = "static"
	SelectorNaiveBayes = "naivebayes"
	SelectorSticky     = "sticky"
	SelectorQLearn     = "qlearn"
	SelectorUCB        = "ucb"
)

// Config parameterizes a System. Zero fields select documented defaults.
type Config struct {
	// Codec sets codec hyper-parameters for all general models.
	Codec semantic.Config

	// Nodes selects cluster mode when > 1: the sender side becomes a
	// multi-node edge cluster (internal/cluster) routing each user to a
	// node by consistent hashing, with mobility-driven handover and
	// cooperative caching between nodes. 0 or 1 keeps the classic
	// single-sender two-edge deployment.
	Nodes int

	// PerUserNoise derives an independent channel-noise stream per
	// (user, message-sequence) pair instead of drawing from one shared
	// RNG in global arrival order. Forced on in cluster mode (Nodes > 1),
	// where it is what makes a multi-process mesh bit-identical to the
	// in-process cluster; off by default in classic mode, whose shared
	// stream is pinned by golden digests.
	PerUserNoise bool

	// SenderName overrides the single-sender edge server's name (default
	// "edge-sender"). A mesh member running as node i of a multi-process
	// deployment names its local sender "node-i" so stats and errors read
	// identically to the in-process cluster.
	SenderName string

	// SenderFetcher overrides the sender edge's model-miss resolver in
	// single-sender mode (nil selects the standard origin fetcher). The
	// multi-process mesh injects its cooperative over-the-wire fetcher
	// here. Ignored in cluster mode, which wires its own per-node
	// cooperative fetchers.
	SenderFetcher edge.Fetcher

	// SenderCacheBytes / ReceiverCacheBytes size the edge model caches;
	// 0 sizes each cache to hold every general model plus eight
	// individual models. In cluster mode every node's cache gets
	// SenderCacheBytes.
	SenderCacheBytes   int64
	ReceiverCacheBytes int64
	// Policy names the cache eviction policy ("lru", "fifo", "lfu",
	// "gdsf"; default "lru").
	Policy string
	// PinGeneral pins general models in the edge caches once fetched.
	PinGeneral bool
	// CloudLink is the edge-to-cloud link for model fetches (default
	// 40 ms, 200 Mbps).
	CloudLink netsim.Link
	// EdgeLink is the edge-to-edge link carrying decoder updates
	// (default 10 ms, 100 Mbps).
	EdgeLink netsim.Link
	// ComputePerToken is the per-token semantic compute cost (default
	// 200 µs).
	ComputePerToken time.Duration

	// SNRdB is the physical channel signal-to-noise ratio (default 12).
	SNRdB float64
	// Rayleigh selects Rayleigh fading instead of pure AWGN.
	Rayleigh bool
	// QuantBits is the feature quantization width (default 3).
	QuantBits int
	// CodeName names the channel code ("hamming74", "rep3", "rep5",
	// "none"; default "hamming74").
	CodeName string
	// ModName names the modulation ("bpsk", "qpsk", "16qam"; default
	// "bpsk").
	ModName string
	// InterleaveDepth enables block interleaving of coded bits when > 1;
	// useful against burst errors under Rayleigh fading.
	InterleaveDepth int
	// SymbolRateHz converts channel symbols to air time (default 1e6).
	SymbolRateHz float64

	// Tier names the serving kernel tier for every codec in the system
	// ("f64", "f32", "int8"; default "f64", the bit-exact reference).
	// Pretraining always runs in f64; the tier is applied to the trained
	// (or supplied) general models, and individual models inherit it when
	// they are cloned from a general.
	Tier string

	// Selector names the model-selection policy (default "naivebayes").
	Selector string
	// StaticDomain is the fixed choice for the "static" selector.
	StaticDomain int

	// BufferThreshold triggers individual-model updates (default 32).
	BufferThreshold int
	// UpdateEpochs is the fine-tuning pass count per update (default 3).
	UpdateEpochs int
	// Compress selects decoder-update compression (default lossless).
	Compress nn.CompressOptions
	// DisableAutoUpdate turns off automatic update processing inside
	// Transmit; callers then invoke ProcessUpdate explicitly.
	DisableAutoUpdate bool

	// BatchWindow enables cross-request dynamic batching when > 0: an
	// in-flight transmit waits up to this long for others to share one
	// fused encode/decode GEMM pass with (see internal/core/batch.go).
	// Zero keeps the solo per-request path. Per-request outputs are
	// bit-identical either way.
	BatchWindow time.Duration
	// BatchMaxTokens flushes a collecting batch early once its total
	// token count reaches this budget; 0 selects DefaultBatchMaxTokens.
	// Only meaningful with BatchWindow > 0.
	BatchMaxTokens int

	// Seed drives every random component (default 1).
	Seed uint64

	// Pretrained supplies ready general codecs (one per corpus domain, in
	// domain order), skipping pretraining. The experiment harness uses it
	// to share one training run across many system instances. Codecs are
	// cloned per system so instances stay independent.
	Pretrained []*semantic.Codec
}

// withDefaults returns cfg with zero fields replaced.
func (cfg Config) withDefaults() Config {
	if cfg.Policy == "" {
		cfg.Policy = "lru"
	}
	if cfg.CloudLink == (netsim.Link{}) {
		cfg.CloudLink = netsim.Link{Latency: 40 * time.Millisecond, BandwidthBps: 200e6}
	}
	if cfg.EdgeLink == (netsim.Link{}) {
		cfg.EdgeLink = netsim.Link{Latency: 10 * time.Millisecond, BandwidthBps: 100e6}
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = 12
	}
	if cfg.QuantBits == 0 {
		cfg.QuantBits = 3
	}
	if cfg.CodeName == "" {
		cfg.CodeName = "hamming74"
	}
	if cfg.ModName == "" {
		cfg.ModName = "bpsk"
	}
	if cfg.SymbolRateHz == 0 {
		cfg.SymbolRateHz = 1e6
	}
	if cfg.Selector == "" {
		cfg.Selector = SelectorNaiveBayes
	}
	if cfg.BufferThreshold == 0 {
		cfg.BufferThreshold = 32
	}
	if cfg.UpdateEpochs == 0 {
		cfg.UpdateEpochs = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Nodes > 1 {
		cfg.PerUserNoise = true
	}
	if cfg.SenderName == "" {
		cfg.SenderName = "edge-sender"
	}
	return cfg
}

// newCode builds a channel code by name.
func newCode(name string) (channel.Code, error) {
	switch name {
	case "hamming74":
		return channel.Hamming74{}, nil
	case "rep3":
		return channel.Repetition{N: 3}, nil
	case "rep5":
		return channel.Repetition{N: 5}, nil
	case "none":
		return channel.Identity{}, nil
	default:
		return nil, fmt.Errorf("core: unknown channel code %q", name)
	}
}

// newModulation builds a modulation by name.
func newModulation(name string) (channel.Modulation, error) {
	switch name {
	case "bpsk":
		return channel.BPSK{}, nil
	case "qpsk":
		return channel.QPSK{}, nil
	case "16qam":
		return channel.QAM16{}, nil
	default:
		return nil, fmt.Errorf("core: unknown modulation %q", name)
	}
}

// System is a running semantic communication deployment: a single sender
// edge and a receiver edge in the classic two-edge configuration, or N
// sender nodes behind Cluster in cluster mode.
type System struct {
	cfg Config

	Corpus   *corpus.Corpus
	Cloud    *kb.Registry
	Sender   *edge.Server
	Receiver *edge.Server
	Generals []*semantic.Codec

	// Cluster is the sender-side node cluster in cluster mode (Config
	//.Nodes > 1), nil otherwise. Sender then aliases node 0's edge.
	Cluster *cluster.Cluster

	nb         *selection.NaiveBayes
	selFactory func() selection.Selector
	oracle     bool

	// users shards per-user mutable state; usersMu guards the map only.
	// Each userState carries its own mutex so independent users transmit
	// in parallel while one user's requests stay serialized.
	usersMu sync.RWMutex
	users   map[string]*userState

	// The physical channel comes in two implementations, selected once at
	// NewSystem. Classic shared-RNG mode keeps linkMu: the noise RNG is
	// the one stateful component every transmission crosses, and its
	// draws advance in strict global arrival order (pinned by golden
	// digests), so transmits serialize here — the critical section is
	// small next to the encode/decode compute, which runs outside it.
	// linkScratch holds the reusable channel stage buffers, guarded by
	// the same mutex.
	linkMu       sync.Mutex
	link         channel.FeatureLink
	linkScratch  channel.TxScratch
	symbolRateHz float64
	edgeLink     netsim.Link

	// userNoise selects per-user derived noise streams. Every draw's seed
	// is then a pure function of (user, seq), independent of arrival
	// order and serving process, so the channel stage needs no lock:
	// linkPool hands each transmission its own channel instance (private
	// RNG + stage scratch), reseeded per message. Outputs are
	// bit-identical to serializing the draws under linkMu at any worker
	// count and interleaving. serialLink is a test-only override that
	// routes PerUserNoise transmits back through the pre-pool serialized
	// path (reseed the shared RNG under linkMu), preserved as the
	// bit-identity reference; it must be set before any traffic.
	userNoise  bool
	noiseRng   *mat.RNG
	linkPool   *channel.LinkPool
	serialLink bool

	// batcher is the cross-request dynamic batching collector, nil when
	// Config.BatchWindow is zero (solo per-request path).
	batcher *batcher

	// Aggregate counters (atomic: updated from concurrent transmits).
	syncBytes   atomic.Int64
	syncCount   atomic.Int64
	syncLatency atomic.Int64 // nanoseconds
}

// userState is one user's shard of mutable system state. Its mutex spans
// the whole transmit so the selector context, buffer arithmetic and
// individual-model updates of one user form a serial stream.
type userState struct {
	mu  sync.Mutex
	sel selection.Selector // nil under the oracle policy
	// noiseSeq counts the user's messages for per-user noise derivation
	// (PerUserNoise mode). It migrates with the user on a mesh handover so
	// the noise stream continues bit-identically on the new serving node.
	noiseSeq uint64
}

// userState returns the state shard for user, creating it on first use.
// Selector construction happens under the map write lock: factories may
// split a shared RNG, which must not race.
func (s *System) userState(user string) *userState {
	s.usersMu.RLock()
	st := s.users[user]
	s.usersMu.RUnlock()
	if st != nil {
		return st
	}
	s.usersMu.Lock()
	defer s.usersMu.Unlock()
	if st = s.users[user]; st == nil {
		st = &userState{}
		if !s.oracle {
			st.sel = s.selFactory()
		}
		s.users[user] = st
	}
	return st
}

// selectorFactories maps each non-oracle selector name to a builder of
// per-user selector constructors. Together with the SelectorOracle special
// case it is the single source of truth for selector names: validSelector
// and initSelectors both read it, so a new policy registers in one place.
var selectorFactories = map[string]func(s *System, rng *mat.RNG) func() selection.Selector{
	SelectorStatic: func(s *System, _ *mat.RNG) func() selection.Selector {
		return func() selection.Selector { return &selection.Static{DomainIndex: s.cfg.StaticDomain} }
	},
	SelectorNaiveBayes: func(s *System, _ *mat.RNG) func() selection.Selector {
		return func() selection.Selector { return s.nb }
	},
	SelectorSticky: func(s *System, _ *mat.RNG) func() selection.Selector {
		return func() selection.Selector { return selection.NewSticky(s.nb, 0) }
	},
	SelectorQLearn: func(s *System, rng *mat.RNG) func() selection.Selector {
		return func() selection.Selector {
			return selection.NewQLearn(s.nb, len(s.Corpus.Domains), rng.Split())
		}
	},
	SelectorUCB: func(s *System, _ *mat.RNG) func() selection.Selector {
		return func() selection.Selector { return selection.NewUCB(s.nb, len(s.Corpus.Domains)) }
	},
}

// validSelector reports whether name is a known selection policy.
func validSelector(name string) bool {
	if name == SelectorOracle {
		return true
	}
	_, ok := selectorFactories[name]
	return ok
}

// NewSystem pretrains the general models, registers them in the cloud,
// boots both edge servers and the selection policy, and returns the ready
// system. Every name-keyed configuration choice is validated before the
// expensive pretraining so misconfiguration fails fast.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if _, ok := newPolicy(cfg.Policy); !ok {
		return nil, fmt.Errorf("core: unknown cache policy %q", cfg.Policy)
	}
	code, err := newCode(cfg.CodeName)
	if err != nil {
		return nil, err
	}
	mod, err := newModulation(cfg.ModName)
	if err != nil {
		return nil, err
	}
	if !validSelector(cfg.Selector) {
		return nil, fmt.Errorf("core: unknown selector %q", cfg.Selector)
	}
	tier, err := semantic.ParseTier(cfg.Tier)
	if err != nil {
		return nil, err
	}
	corp := corpus.Build()
	var generals []*semantic.Codec
	if len(cfg.Pretrained) == len(corp.Domains) {
		// Clones are independent deep copies of read-only sources, so they
		// shard across the mat worker pool.
		generals = make([]*semantic.Codec, len(cfg.Pretrained))
		mat.ParallelFor(len(cfg.Pretrained), 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				generals[i] = cfg.Pretrained[i].Clone()
			}
		})
	} else {
		codecCfg := cfg.Codec
		if codecCfg.Seed == 0 {
			codecCfg.Seed = cfg.Seed
		}
		generals = semantic.PretrainAll(corp, codecCfg)
	}
	if tier != semantic.TierF64 {
		// Serving tier on the trained generals; individual models inherit
		// it when cloned. Applied post-training so pretraining itself stays
		// on the bit-exact f64 path regardless of tier.
		for _, g := range generals {
			if err := g.SetTier(tier); err != nil {
				return nil, err
			}
		}
	}

	cloud := kb.NewRegistry()
	var generalBytes int64
	for i, d := range corp.Domains {
		m := &kb.Model{Key: kb.GeneralKey(d.Name, kb.RoleCodec), Version: 1, Codec: generals[i]}
		cloud.Put(m)
		generalBytes += m.SizeBytes()
	}
	perModel := generalBytes / int64(len(corp.Domains))
	defaultCache := generalBytes + 8*perModel
	if cfg.SenderCacheBytes == 0 {
		cfg.SenderCacheBytes = defaultCache
	}
	if cfg.ReceiverCacheBytes == 0 {
		cfg.ReceiverCacheBytes = defaultCache
	}

	mkEdge := func(name string, capacity int64, fetcher edge.Fetcher) (*edge.Server, error) {
		policy, ok := newPolicy(cfg.Policy)
		if !ok {
			return nil, fmt.Errorf("core: unknown cache policy %q", cfg.Policy)
		}
		return edge.New(edge.Config{
			Name:            name,
			CacheCapacity:   capacity,
			Policy:          policy,
			Uplink:          cfg.CloudLink,
			ComputePerToken: cfg.ComputePerToken,
			PinGeneral:      cfg.PinGeneral,
			BufferThreshold: cfg.BufferThreshold,
			Fetcher:         fetcher,
		}, cloud)
	}
	var sender *edge.Server
	var nodeCluster *cluster.Cluster
	if cfg.Nodes > 1 {
		nodeCluster, err = cluster.New(cluster.Config{
			Nodes:           cfg.Nodes,
			CacheBytes:      cfg.SenderCacheBytes,
			Policy:          cfg.Policy,
			Uplink:          cfg.CloudLink,
			Mesh:            cfg.EdgeLink,
			ComputePerToken: cfg.ComputePerToken,
			PinGeneral:      cfg.PinGeneral,
			BufferThreshold: cfg.BufferThreshold,
			Seed:            cfg.Seed,
		}, cloud)
		if err != nil {
			return nil, err
		}
		sender = nodeCluster.Node(0).Edge()
	} else {
		sender, err = mkEdge(cfg.SenderName, cfg.SenderCacheBytes, cfg.SenderFetcher)
		if err != nil {
			return nil, err
		}
	}
	receiver, err := mkEdge("edge-receiver", cfg.ReceiverCacheBytes, nil)
	if err != nil {
		return nil, err
	}

	if cfg.InterleaveDepth > 1 {
		code = channel.InterleavedCode{Inner: code, IV: channel.Interleaver{Depth: cfg.InterleaveDepth}}
	}
	rng := mat.NewRNG(cfg.Seed ^ 0x5eed)
	noiseRng := rng.Split()
	// mkChannel builds one stochastic channel instance around its own RNG;
	// the shared link uses noiseRng, and in PerUserNoise mode the link
	// pool constructs additional instances whose RNGs are reseeded from
	// the (user, seq) derivation before every message.
	mkChannel := func(r *mat.RNG) channel.Channel {
		if cfg.Rayleigh {
			return &channel.Rayleigh{SNRdB: cfg.SNRdB, Rng: r}
		}
		return &channel.AWGN{SNRdB: cfg.SNRdB, Rng: r}
	}
	link := channel.FeatureLink{
		Quant: channel.Quantizer{Bits: cfg.QuantBits, Lo: -1, Hi: 1},
		Code:  code,
		Mod:   mod,
		Ch:    mkChannel(noiseRng),
	}

	s := &System{
		cfg:          cfg,
		Corpus:       corp,
		Cloud:        cloud,
		Sender:       sender,
		Receiver:     receiver,
		Generals:     generals,
		Cluster:      nodeCluster,
		link:         link,
		symbolRateHz: cfg.SymbolRateHz,
		edgeLink:     cfg.EdgeLink,
		userNoise:    cfg.PerUserNoise,
		noiseRng:     noiseRng,
		users:        make(map[string]*userState, 16),
	}
	if cfg.PerUserNoise {
		// Lock-free channel stage: the pool's instances share the
		// stateless quantizer/code/modulation values with the main link
		// but each own a private channel + RNG, seeded per message. The
		// placeholder seed is never drawn from — SendSeeded reseeds first.
		s.linkPool = channel.NewLinkPool(func() channel.FeatureLink {
			l := link
			l.Ch = mkChannel(mat.NewRNG(0))
			return l
		})
	}
	if cfg.BatchWindow > 0 {
		s.batcher = newBatcher(s, cfg.BatchWindow, cfg.BatchMaxTokens)
	}
	if err := s.initSelectors(rng); err != nil {
		return nil, err
	}
	return s, nil
}

// newPolicy mirrors cache.NewPolicy without exporting the dependency to
// callers of this package.
func newPolicy(name string) (edgePolicy, bool) {
	return cachePolicyByName(name)
}

// initSelectors trains the shared classifier and builds the per-user
// selector family.
func (s *System) initSelectors(rng *mat.RNG) error {
	cfg := s.cfg
	if cfg.Selector == SelectorOracle {
		s.oracle = true
		return nil
	}
	build, ok := selectorFactories[cfg.Selector]
	if !ok {
		return fmt.Errorf("core: unknown selector %q", cfg.Selector)
	}
	s.nb = selection.TrainNaiveBayes(s.Corpus, 150, cfg.Seed^0xbead)
	s.selFactory = build(s, rng)
	// Probe once, exactly as selection.NewPerUser did before per-user
	// sharding: factories that split an RNG per instance keep the same
	// split sequence, so per-user selector streams stay bit-identical.
	s.selFactory()
	return nil
}

// Result reports one end-to-end semantic transmission.
type Result struct {
	// Req is the originating request.
	Req trace.Request
	// SelectedDomain is the model-selection outcome.
	SelectedDomain int
	// CorrectSelection reports SelectedDomain == true domain.
	CorrectSelection bool
	// RestoredWords is the receiver's restored message.
	RestoredWords []string
	// CanonicalWords renders the ground-truth meaning.
	CanonicalWords []string
	// WordAccuracy compares restored to canonical words.
	WordAccuracy float64
	// Similarity is the graded semantic fidelity in [0,1].
	Similarity float64
	// Mismatch is the sender-side decoder-copy estimate.
	Mismatch float64
	// PayloadBytes is the semantic payload size on the air.
	PayloadBytes int
	// Symbols is the channel symbol count.
	Symbols int
	// Latency is the end-to-end message latency (fetch + compute + air
	// time + propagation).
	Latency time.Duration
	// EncCacheHit / DecCacheHit report model-cache hits on each edge.
	EncCacheHit bool
	DecCacheHit bool
	// UsedIndividual reports whether the sender used a user-specific
	// model.
	UsedIndividual bool
	// UpdateFired reports that this transmission triggered an
	// individual-model update; UpdateBytes is its wire cost.
	UpdateFired bool
	UpdateBytes int
}

// mix64 is the SplitMix64 finalizer: a cheap, high-avalanche mixer for
// combining seed material.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// noiseSeed derives the channel-noise seed for one message in PerUserNoise
// mode from the system seed, the user's stable hash and the user's
// message sequence number. The derivation depends on nothing else — not
// the serving node, not the arrival interleaving — which is the whole
// point: any deployment shape serving the same (user, seq) message draws
// the same noise.
func noiseSeed(systemSeed, userHash, seq uint64) uint64 {
	return mix64(mix64(systemSeed^0x6e6f697365) ^ userHash ^ (seq * 0x9e3779b97f4a7c15))
}

// nextNoiseSeed advances the user's message sequence and returns the
// derived seed for this message. Caller must hold st.mu.
func (s *System) nextNoiseSeed(st *userState, user string) uint64 {
	seq := st.noiseSeq
	st.noiseSeq++
	return noiseSeed(s.cfg.Seed, cluster.Hash64(user), seq)
}

// sendOverChannel runs one message's physical-channel crossing using the
// scheme selected at NewSystem. In PerUserNoise mode the crossing is
// lock-free: a pooled channel instance is checked out, reseeded to the
// message's derived seed and returned — bit-identical to reseeding one
// shared serialized channel, because the draw depends only on seed. In
// classic shared-RNG mode (seed is then ignored) every crossing
// serializes under linkMu so the shared noise stream advances in strict
// global arrival order. The serialLink test hook routes PerUserNoise
// crossings through the serialized path as the bit-identity reference.
func (s *System) sendOverChannel(seed uint64, dst, src []float64) channel.LinkStats {
	if s.userNoise && !s.serialLink {
		inst := s.linkPool.Get()
		stats := inst.SendSeeded(seed, dst, src)
		s.linkPool.Put(inst)
		return stats
	}
	s.linkMu.Lock()
	if s.userNoise {
		s.noiseRng.Reseed(seed)
	}
	stats := s.link.SendFlatScratch(&s.linkScratch, dst, src)
	s.linkMu.Unlock()
	return stats
}

// senderFor returns the sender edge serving user: the routed cluster node
// in cluster mode, the single sender otherwise.
func (s *System) senderFor(user string) *edge.Server {
	if s.Cluster != nil {
		return s.Cluster.Route(user).Edge()
	}
	return s.Sender
}

// MoveUser attaches user to cell (cluster mode only), executing a
// handover when the serving node changes. It serializes against the
// user's own transmissions, so a model never migrates mid-transmit.
func (s *System) MoveUser(user string, cell int) (cluster.HandoverResult, error) {
	if s.Cluster == nil {
		return cluster.HandoverResult{}, errors.New("core: MoveUser requires cluster mode (Config.Nodes > 1)")
	}
	st := s.userState(user)
	st.mu.Lock()
	defer st.mu.Unlock()
	return s.Cluster.Move(user, cell)
}

// Transmit runs one message through the full pipeline. Transmissions for
// different users run concurrently; same-user calls serialize.
func (s *System) Transmit(req trace.Request) (*Result, error) {
	msg := req.Msg
	st := s.userState(req.User)
	st.mu.Lock()
	defer st.mu.Unlock()
	// One pooled scratch arena backs the whole codec path of this request;
	// everything it hands out is consumed before the arena is pooled again.
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	// Step 1: model selection on the sender edge.
	var selected int
	if s.oracle {
		selected = msg.DomainIndex
	} else {
		selected = st.sel.Select(msg.Words)
	}
	res, decoded, err := s.transmitSelected(sc, st, req.User, msg.Words, selected, st.sel)
	if err != nil {
		return nil, err
	}
	res.Req = req
	res.CorrectSelection = selected == msg.DomainIndex
	s.scoreResult(res, decoded)
	return res, nil
}

// TransmitText runs live text (no ground truth) through the pipeline: the
// daemon's entry point. Fidelity fields that require ground truth stay
// zero; the sender-side Mismatch estimate is still populated. The oracle
// selector cannot serve live text.
func (s *System) TransmitText(user string, words []string) (*Result, error) {
	if s.oracle {
		return nil, errors.New("core: oracle selector requires ground-truth requests")
	}
	st := s.userState(user)
	st.mu.Lock()
	defer st.mu.Unlock()
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	selected := st.sel.Select(words)
	res, _, err := s.transmitSelected(sc, st, user, words, selected, st.sel)
	if err != nil {
		return nil, err
	}
	res.Req = trace.Request{User: user, Msg: corpus.Message{
		DomainIndex: selected,
		DomainName:  s.Corpus.Domains[selected].Name,
		Words:       words,
	}}
	return res, nil
}

// transmitSelected runs pipeline steps 2-6 for an already-selected domain.
// It returns the partially scored result and the decoded concepts. All
// codec-path temporaries (feature matrices, received features, concept
// buffers) come from sc, so the steady-state codec path allocates nothing;
// the returned concepts are backed by sc and must be consumed before the
// scratch is released.
func (s *System) transmitSelected(sc *mat.Scratch, st *userState, user string, words []string, selected int, sel selection.Selector) (*Result, []int, error) {
	if s.batcher != nil {
		return s.transmitBatched(sc, st, user, words, selected, sel)
	}
	domain := s.Corpus.Domains[selected].Name
	sender := s.senderFor(user)

	// Step 2: sender-side semantic encoding (one batched GEMM).
	enc, err := sender.Encode(sc, domain, user, words)
	if err != nil {
		return nil, nil, err
	}

	// Step 3: physical channel. In PerUserNoise mode the crossing is
	// lock-free on a pooled channel instance seeded from (user, seq), so
	// the draw is independent of arrival interleaving, serving process
	// AND of every other in-flight transmission; classic mode serializes
	// the shared noise RNG under linkMu in global arrival order.
	var seed uint64
	if s.userNoise {
		seed = s.nextNoiseSeed(st, user)
	}
	rx := sc.Mat(enc.Features.Rows, enc.Model.Codec.FeatureDim())
	stats := s.sendOverChannel(seed, rx.Data, enc.Features.Data)
	airTime := time.Duration(float64(stats.Symbols) / s.symbolRateHz * float64(time.Second))
	airTime += s.edgeLink.Latency

	// Step 4: receiver-side semantic decoding (batched GEMMs).
	dec, err := s.Receiver.Decode(sc, domain, user, rx)
	if err != nil {
		return nil, nil, err
	}

	// Step 5: sender-side mismatch via decoder copy, buffered. The encode
	// result rides along so the round trip reuses the already-computed
	// features when the decoder copy is the same model instance.
	tx, ready, err := sender.RecordTransaction(sc, domain, user, words, &enc)
	if err != nil {
		return nil, nil, err
	}
	if sel != nil {
		sel.Feedback(1 - tx.Mismatch())
	}

	res := &Result{
		SelectedDomain: selected,
		RestoredWords:  dec.Words,
		Mismatch:       tx.Mismatch(),
		PayloadBytes:   stats.PayloadBytes(),
		Symbols:        stats.Symbols,
		Latency:        enc.FetchLatency + enc.ComputeLatency + airTime + dec.FetchLatency + dec.ComputeLatency,
		EncCacheHit:    enc.CacheHit,
		DecCacheHit:    dec.CacheHit,
		UsedIndividual: enc.Individual,
	}

	// Step 6: update process when the buffer is full.
	if ready && !s.cfg.DisableAutoUpdate {
		bytes, err := s.ProcessUpdate(domain, user)
		if err == nil {
			res.UpdateFired = true
			res.UpdateBytes = bytes
		}
	}
	return res, dec.Concepts, nil
}

// scoreResult fills the fidelity metrics against ground truth.
func (s *System) scoreResult(res *Result, decoded []int) {
	msg := res.Req.Msg
	trueDomain := s.Corpus.Domains[msg.DomainIndex]
	canonical := make([]string, len(msg.ConceptIDs))
	for i, ci := range msg.ConceptIDs {
		canonical[i] = trueDomain.Canonical(ci)
	}
	res.CanonicalWords = canonical
	res.WordAccuracy = semantic.WordAccuracy(res.RestoredWords, canonical)
	if res.CorrectSelection {
		res.Similarity = semantic.Similarity(s.Generals[msg.DomainIndex], decoded, msg.ConceptIDs)
	} else {
		// Cross-domain decoding has no shared concept space; fall back to
		// surface-level fidelity.
		res.Similarity = res.WordAccuracy
	}
}

// ProcessUpdate runs the update process for (domain, user) on the user's
// serving edge and ships the decoder update across the edge link,
// returning the payload size.
func (s *System) ProcessUpdate(domain, user string) (int, error) {
	upd, err := s.senderFor(user).RunUpdate(domain, user, fl.UpdateConfig{
		Epochs:   s.cfg.UpdateEpochs,
		Compress: s.cfg.Compress,
		Seed:     s.cfg.Seed ^ 0xfade,
	})
	if err != nil {
		return 0, err
	}
	if err := s.Receiver.ApplyRemoteUpdate(upd); err != nil {
		return 0, err
	}
	s.syncBytes.Add(int64(upd.Stats.PayloadBytes))
	s.syncCount.Add(1)
	s.syncLatency.Add(int64(s.edgeLink.TransferTime(int64(upd.Stats.PayloadBytes))))
	return upd.Stats.PayloadBytes, nil
}

// SyncBytes returns the cumulative decoder-update traffic.
func (s *System) SyncBytes() int64 { return s.syncBytes.Load() }

// SyncCount returns the number of decoder updates shipped.
func (s *System) SyncCount() int { return int(s.syncCount.Load()) }

// SyncLatency returns the cumulative simulated edge-link transfer time of
// all shipped decoder updates.
func (s *System) SyncLatency() time.Duration { return time.Duration(s.syncLatency.Load()) }

// CloudLink returns the (defaulted) edge-to-cloud link the system
// charges for origin model fetches — what an external fetcher (e.g. the
// mesh's origin fallback) must charge to match in-process accounting.
func (s *System) CloudLink() netsim.Link { return s.cfg.CloudLink }

// MeshLink returns the (defaulted) edge-to-edge link — what the
// in-process cluster charges for neighbor transfers, and what a
// multi-process mesh must charge for parity.
func (s *System) MeshLink() netsim.Link { return s.cfg.EdgeLink }

// RunWorkload transmits every request in w, returning per-message
// results. In cluster mode the workload's mobility events apply in
// sequence order: each Move relocates its user (triggering a handover)
// before the request at the same Seq is served.
func (s *System) RunWorkload(w *trace.Workload) ([]Result, error) {
	out := make([]Result, 0, len(w.Requests))
	next := 0 // next unapplied mobility event
	for _, req := range w.Requests {
		for s.Cluster != nil && next < len(w.Moves) && w.Moves[next].Seq <= req.Seq {
			mv := w.Moves[next]
			if _, err := s.MoveUser(mv.User, mv.Cell); err != nil {
				return out, fmt.Errorf("core: move %d (%s -> cell %d): %w", mv.Seq, mv.User, mv.Cell, err)
			}
			next++
		}
		res, err := s.Transmit(req)
		if err != nil {
			return out, fmt.Errorf("core: request %d: %w", req.Seq, err)
		}
		out = append(out, *res)
	}
	return out, nil
}

// errNoResults reports summarizing an empty result set.
var errNoResults = errors.New("core: no results to summarize")

// Summary aggregates a result set.
type Summary struct {
	Messages          int
	MeanWordAccuracy  float64
	MeanSimilarity    float64
	MeanMismatch      float64
	SelectionAccuracy float64
	MeanPayloadBytes  float64
	MeanLatency       time.Duration
	P95Latency        time.Duration
	IndividualShare   float64
	Updates           int
	UpdateBytes       int64
}

// Summarize reduces results to aggregate metrics.
func Summarize(results []Result) (Summary, error) {
	if len(results) == 0 {
		return Summary{}, errNoResults
	}
	var sum Summary
	latencies := make([]float64, 0, len(results))
	for i := range results {
		r := &results[i]
		sum.MeanWordAccuracy += r.WordAccuracy
		sum.MeanSimilarity += r.Similarity
		sum.MeanMismatch += r.Mismatch
		if r.CorrectSelection {
			sum.SelectionAccuracy++
		}
		sum.MeanPayloadBytes += float64(r.PayloadBytes)
		sum.MeanLatency += r.Latency
		latencies = append(latencies, float64(r.Latency))
		if r.UsedIndividual {
			sum.IndividualShare++
		}
		if r.UpdateFired {
			sum.Updates++
			sum.UpdateBytes += int64(r.UpdateBytes)
		}
	}
	n := float64(len(results))
	sum.Messages = len(results)
	sum.MeanWordAccuracy /= n
	sum.MeanSimilarity /= n
	sum.MeanMismatch /= n
	sum.SelectionAccuracy /= n
	sum.MeanPayloadBytes /= n
	sum.MeanLatency /= time.Duration(len(results))
	sum.IndividualShare /= n
	sum.P95Latency = percentileDuration(latencies, 95)
	return sum, nil
}
