package core

import (
	"fmt"
	"hash"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// hashNodeFreeResult digests the Result fields that must not depend on
// which cluster node served the request or on what its cache held at
// the time: the selection, the restored text (per-user noise makes it
// deterministic in cluster mode), the channel payload, and the
// update-process outcomes. Cache hits and latency stay out — they
// legitimately differ with the interleaving of other users' fetches.
func hashNodeFreeResult(h hash.Hash, res *Result) {
	fmt.Fprintf(h, "%d|%v|%g|%d|%d|%t|%t|%d\n",
		res.SelectedDomain, res.RestoredWords, res.Mismatch,
		res.PayloadBytes, res.Symbols,
		res.UsedIndividual, res.UpdateFired, res.UpdateBytes)
}

// moverRun drives one user through messages on sys, moving them to a new
// cell after every moveEvery-th message — between that user's own
// transmits, so the move races whatever batches other users have in
// flight, never the mover's own request. It returns the stream digest
// and the number of moves that changed nodes.
func moverRun(t *testing.T, sys *System, user string, messages [][]string, moveEvery int) (uint64, int) {
	t.Helper()
	h := fnv.New64a()
	moved, cell := 0, 0
	var sawIndividual bool
	for i, words := range messages {
		if i > 0 && i%moveEvery == 0 {
			cell++
			res, err := sys.MoveUser(user, cell)
			if err != nil {
				t.Errorf("move at message %d: %v", i, err)
				return 0, 0
			}
			if res.Moved {
				moved++
			}
		}
		res, err := sys.TransmitText(user, words)
		if err != nil {
			t.Errorf("message %d: %v", i, err)
			return 0, 0
		}
		hashNodeFreeResult(h, res)
		sawIndividual = sawIndividual || res.UsedIndividual
	}
	if !sawIndividual {
		t.Error("mover never served from an individual model: handovers migrated nothing")
	}
	return h.Sum64(), moved
}

// TestHandoverRacesBatchCollector pins the interaction between mobility
// handover and cross-request batching in cluster mode: a user moved
// mid-batch — the handover racing batches other users have in flight —
// must keep completing every request on exactly one node, with the
// stream digest of serial unbatched serving. Per-user noise (forced in
// cluster mode) is what makes that comparison exact.
func TestHandoverRacesBatchCollector(t *testing.T) {
	if testing.Short() {
		t.Skip("race comparison is slow; run without -short")
	}
	const (
		mover              = "mover"
		moverMsgs          = 40
		moveEvery          = 10
		bgUsers, bgPerUser = 5, 40
		window             = 200 * time.Microsecond
	)
	corp := corpus.Build()
	moverStream := make([][]string, moverMsgs)
	gen := corpus.NewGenerator(corp, mat.NewRNG(5150))
	for i := range moverStream {
		moverStream[i] = gen.Message(0, nil).Words
	}
	bgStreams := batchUserMessages(corp, bgUsers, bgPerUser)

	// Reference: same cluster, no batching, mover alone, serial.
	refSys, err := NewSystem(func() Config {
		cfg := batchTestConfig()
		cfg.Nodes = 3
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	prefetchAll(t, refSys)
	refDigest, refMoves := moverRun(t, refSys, mover, moverStream, moveEvery)
	if refMoves == 0 {
		t.Fatal("move schedule never changed nodes; the test exercises nothing")
	}

	// Candidate: batching on, background users keeping the collector busy
	// while the mover's handovers happen.
	cfg := batchTestConfig()
	cfg.Nodes = 3
	cfg.BatchWindow = window
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prefetchAll(t, sys)
	var wg sync.WaitGroup
	for u := range bgStreams {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("bg%d", u)
			for i, words := range bgStreams[u] {
				if _, err := sys.TransmitText(user, words); err != nil {
					t.Errorf("background %s message %d: %v", user, i, err)
					return
				}
			}
		}(u)
	}
	digest, moves := moverRun(t, sys, mover, moverStream, moveEvery)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if moves != refMoves {
		t.Fatalf("racing run moved nodes %d times, reference %d: move schedule is not deterministic", moves, refMoves)
	}
	if digest != refDigest {
		t.Fatalf("mover stream diverged under handover-vs-batch racing: %016x != %016x", digest, refDigest)
	}
	if got := sys.Cluster.Stats().Handovers; got != int64(moves) {
		t.Fatalf("cluster counted %d handovers, client saw %d node changes", got, moves)
	}

	// "Exactly one node": after the run the mover's individual models live
	// only on the node currently routing them — every handover moved the
	// state, none duplicated or stranded it.
	owner := sys.Cluster.Route(mover)
	holders := 0
	for i := 0; i < sys.Cluster.NumNodes(); i++ {
		n := sys.Cluster.Node(i)
		if len(n.Edge().UserDomains(mover)) == 0 {
			continue
		}
		holders++
		if n.Name() != owner.Name() {
			t.Errorf("node %s holds the mover's individual models but %s routes them", n.Name(), owner.Name())
		}
	}
	if holders != 1 {
		t.Fatalf("the mover's individual models live on %d nodes, want exactly 1", holders)
	}
}
