package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/semantic"
	"repro/internal/trace"
)

// goldenConfig is the fixed scenario for the serialized-baseline digest:
// a sticky-selector system with a small update threshold so the full
// pipeline (selection, encode, channel, decode, buffering, updates) runs.
func goldenConfig() Config {
	return Config{
		Codec: semantic.Config{
			EmbedDim:   12,
			FeatureDim: 6,
			HiddenDim:  16,
			Epochs:     3,
			Sentences:  400,
		},
		Selector:        SelectorSticky,
		PinGeneral:      true,
		BufferThreshold: 8,
		Seed:            7,
	}
}

// goldenMessages generates the fixed single-user message sequence.
func goldenMessages(corp *corpus.Corpus) [][]string {
	gen := corpus.NewGenerator(corp, mat.NewRNG(1234))
	msgs := make([][]string, 40)
	for i := range msgs {
		msgs[i] = gen.Message(i%len(corp.Domains), nil).Words
	}
	return msgs
}

// hashResult folds every Result field that the wire protocol or the
// experiment tables expose into the digest.
func hashResult(h hash.Hash, res *Result) {
	fmt.Fprintf(h, "%d|%v|%g|%d|%d|%d|%t|%t|%t|%t|%d\n",
		res.SelectedDomain, res.RestoredWords, res.Mismatch,
		res.PayloadBytes, res.Symbols, res.Latency.Nanoseconds(),
		res.EncCacheHit, res.DecCacheHit, res.UsedIndividual,
		res.UpdateFired, res.UpdateBytes)
}

// singleUserDigest runs the golden sequence for one user and digests every
// result.
func singleUserDigest(t *testing.T) string {
	t.Helper()
	s, err := NewSystem(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, words := range goldenMessages(s.Corpus) {
		res, err := s.TransmitText("solo", words)
		if err != nil {
			t.Fatal(err)
		}
		hashResult(h, res)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// serializedBaselineDigest is the digest produced by the pre-concurrency
// global-lock serve path (recorded before the per-user sharding refactor,
// linux/amd64). A single-user request sequence must stay bit-identical to
// it: concurrency must never change what any one user observes.
const serializedBaselineDigest = "73d6fe6dc1ddebd2b26f9e21cc167e62b00cb4a81df375cc66bc7936eda5b59b"

func TestSingleUserSerialGolden(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// Go may fuse floating-point operations differently per
		// architecture, so the recorded digest is amd64-specific.
		t.Skipf("golden digest recorded on amd64, running on %s", runtime.GOARCH)
	}
	got := singleUserDigest(t)
	if got != serializedBaselineDigest {
		t.Fatalf("single-user result stream diverged from the serialized baseline:\n got %s\nwant %s",
			got, serializedBaselineDigest)
	}
}

// TestConcurrentDistinctUsers hammers one shared system from many users at
// once, with the update process live, and checks that every transmit
// succeeds and the aggregate counters add up exactly.
func TestConcurrentDistinctUsers(t *testing.T) {
	s, err := NewSystem(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	const users, perUser = 8, 24 // threshold 8: every user fires updates
	var wg sync.WaitGroup
	var updates, individual atomic.Int64
	errCh := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			gen := corpus.NewGenerator(s.Corpus, mat.NewRNG(uint64(100+u)))
			user := fmt.Sprintf("user%d", u)
			for i := 0; i < perUser; i++ {
				res, err := s.TransmitText(user, gen.Message(u%len(s.Corpus.Domains), nil).Words)
				if err != nil {
					errCh <- err
					return
				}
				if len(res.RestoredWords) == 0 || res.PayloadBytes <= 0 || res.Latency <= 0 {
					errCh <- fmt.Errorf("user %d message %d: implausible result %+v", u, i, res)
					return
				}
				if res.UpdateFired {
					updates.Add(1)
				}
				if res.UsedIndividual {
					individual.Add(1)
				}
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Each user stays in one domain and sends 24 messages with threshold
	// 8, so exactly 3 updates per user must have fired and been counted.
	wantUpdates := int64(users * perUser / 8)
	if updates.Load() != wantUpdates {
		t.Fatalf("updates fired = %d, want %d", updates.Load(), wantUpdates)
	}
	if int64(s.SyncCount()) != updates.Load() {
		t.Fatalf("SyncCount = %d, updates observed = %d", s.SyncCount(), updates.Load())
	}
	if s.SyncBytes() <= 0 || s.SyncLatency() <= 0 {
		t.Fatalf("sync accounting empty: bytes %d latency %v", s.SyncBytes(), s.SyncLatency())
	}
	if individual.Load() == 0 {
		t.Fatal("no transmit used an individual model despite updates")
	}
}

// TestConcurrentSameUser checks that racing requests for one user are
// serialized, not corrupted: the user's buffer arithmetic must come out
// exact.
func TestConcurrentSameUser(t *testing.T) {
	cfg := goldenConfig()
	cfg.Selector = SelectorStatic // one domain: buffer counts are exact
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 8
	var wg sync.WaitGroup
	var updates atomic.Int64
	errCh := make(chan error, workers)
	gens := make([]*corpus.Generator, workers)
	for w := range gens {
		gens[w] = corpus.NewGenerator(s.Corpus, mat.NewRNG(uint64(500+w)))
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := s.TransmitText("shared", gens[w].Message(0, nil).Words)
				if err != nil {
					errCh <- err
					return
				}
				if res.UpdateFired {
					updates.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// 64 messages through one serialized user with threshold 8: exactly 8
	// updates, regardless of interleaving.
	if updates.Load() != workers*perWorker/8 {
		t.Fatalf("updates = %d, want %d", updates.Load(), workers*perWorker/8)
	}
}

// TestConcurrentOracleWorkload drives the ground-truth Transmit entry
// point concurrently under the oracle selector.
func TestConcurrentOracleWorkload(t *testing.T) {
	cfg := goldenConfig()
	cfg.Selector = SelectorOracle
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.Generate(s.Corpus, trace.Config{Users: 6, Messages: 90, Seed: 19})
	var wg sync.WaitGroup
	errCh := make(chan error, len(w.Requests))
	for _, req := range w.Requests {
		wg.Add(1)
		go func(req trace.Request) {
			defer wg.Done()
			res, err := s.Transmit(req)
			if err != nil {
				errCh <- err
				return
			}
			if !res.CorrectSelection {
				errCh <- fmt.Errorf("oracle mis-selected for %s", req.User)
			}
		}(req)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
