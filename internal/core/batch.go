package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/mat"
	"repro/internal/selection"
	"repro/internal/semantic"
)

// DefaultBatchMaxTokens caps the token count of one cross-request batch
// when Config.BatchMaxTokens is zero and batching is on. A full batch
// flushes immediately instead of waiting out the window.
const DefaultBatchMaxTokens = 512

// batcher is the cross-request dynamic batching collector. In-flight
// transmits submit jobs; the first submitter of a batch becomes its
// leader, waits out the window (or a full token budget), steals the
// accumulated batch and executes it as a handful of fused GEMMs — one
// encode, one receiver decode and one decoder-copy decode per distinct
// codec — instead of one small GEMM set per request. The moment a leader
// steals its batch the next submitter becomes the new leader, so
// collection of batch N+1 overlaps execution of batch N.
//
// There is no background goroutine: with no traffic the batcher is
// completely idle, and shutdown needs no coordination.
//
// Batching is transparent per request. Every fused kernel keeps the exact
// serial accumulation order per output element and each output row
// depends only on its own input row, so a request's bytes are identical
// whether it ran solo or inside any batch (see Codec.EncodeBatchInto).
// Channel noise draws happen under linkMu in batch arrival order, exactly
// as solo transmits draw in global arrival order; in PerUserNoise mode
// each job's noise instead comes from its own (user, seq) derived seed on
// a pooled channel instance, so the crossings run lock-free in parallel
// and batching is noise-transparent there too.
type batcher struct {
	sys       *System
	window    time.Duration
	maxTokens int

	mu       sync.Mutex
	pending  []*batchJob
	tokens   int
	leading  bool      // a leader is currently collecting
	lastGrow time.Time // when pending last gained a job

	// free recycles pending-slice backing arrays: batches can overlap, so
	// the buffers rotate through a free list instead of double-buffering.
	free [][]*batchJob

	jobPool  sync.Pool
	execPool sync.Pool

	// Occupancy buckets: 1, 2, 3-4, 5-8, 9-16, 17+ requests per batch.
	batches     atomic.Int64
	batchedReqs atomic.Int64
	occupancy   [6]atomic.Int64
}

// BatchStats is a snapshot of the collector's counters.
type BatchStats struct {
	// Batches counts executed batches; BatchedRequests the transmits
	// served through them.
	Batches         int64
	BatchedRequests int64
	// Occupancy histograms requests-per-batch into the buckets
	// 1, 2, 3-4, 5-8, 9-16, 17+.
	Occupancy [6]int64
}

// batchJob is one transmit's slot in a batch. The request side fills the
// input fields (words and the codecs it acquired under its user lock);
// the leader fills the output fields and signals done. Output slices are
// backed by the batch's scratch arena: the request side must copy what it
// keeps, then call release exactly once.
type batchJob struct {
	words       []string
	senderCodec *semantic.Codec
	recvCodec   *semantic.Codec

	// reseed/noiseSeed select a per-user derived noise stream for this
	// job's channel crossing (PerUserNoise mode): the leader reseeds the
	// channel RNG to noiseSeed before this job's draw, making the noise
	// independent of batch composition and bit-identical to solo serving.
	reseed    bool
	noiseSeed uint64

	// Row offsets of this job inside its sender/receiver codec groups.
	sgIdx, sgOff int
	rgIdx, rgOff int

	linkStats channel.LinkStats
	concepts  []int // receiver-decoded concepts (batch scratch)
	decoded   []int // sender decoder-copy concepts (batch scratch)

	exec *batchExec
	done chan struct{} // buffered 1, reused across the job's pool lives
}

// batchExec owns one batch execution's scratch arena and grouping
// buffers. Executions can overlap (pipelining), so this state is pooled
// per execution rather than owned by the batcher. The scratch is returned
// to the mat pool when the last job releases it.
type batchExec struct {
	sc      *mat.Scratch
	refs    atomic.Int32
	sgroups []codecGroup
	rgroups []codecGroup
	msgs    [][]string
	pool    *sync.Pool
}

// codecGroup collects the jobs of one batch that share a codec instance
// AND its kernel tier: a fused GEMM pass runs on one tier, so requests
// that observed different tiers of the same codec (a SetTier racing the
// collect window) must not share a pass.
type codecGroup struct {
	codec  *semantic.Codec
	tier   semantic.Tier
	tokens int
	feats  *mat.Dense // packed per-token features (encode or rx)
}

// release drops one job's reference to the batch scratch, returning it to
// the mat pool when every job has released.
func (x *batchExec) release() {
	if x.refs.Add(-1) == 0 {
		mat.PutScratch(x.sc)
		x.sc = nil
		x.sgroups = x.sgroups[:0]
		x.rgroups = x.rgroups[:0]
		x.msgs = x.msgs[:0]
		x.pool.Put(x)
	}
}

// newBatcher builds a collector for sys. window must be positive;
// maxTokens <= 0 selects DefaultBatchMaxTokens.
func newBatcher(sys *System, window time.Duration, maxTokens int) *batcher {
	if maxTokens <= 0 {
		maxTokens = DefaultBatchMaxTokens
	}
	b := &batcher{sys: sys, window: window, maxTokens: maxTokens}
	b.jobPool.New = func() interface{} {
		return &batchJob{done: make(chan struct{}, 1)}
	}
	b.execPool.New = func() interface{} {
		return &batchExec{pool: &b.execPool}
	}
	return b
}

// getJob returns a pooled job ready to fill.
func (b *batcher) getJob() *batchJob {
	return b.jobPool.Get().(*batchJob)
}

// putJob recycles a consumed job.
func (b *batcher) putJob(j *batchJob) {
	*j = batchJob{done: j.done}
	b.jobPool.Put(j)
}

// submit enqueues j and blocks until its batch has executed. The first
// submitter while no leader is collecting becomes the leader and runs the
// batch itself.
func (b *batcher) submit(j *batchJob) {
	b.mu.Lock()
	if b.pending == nil {
		if n := len(b.free); n > 0 {
			b.pending, b.free = b.free[n-1], b.free[:n-1]
		}
	}
	b.pending = append(b.pending, j)
	b.tokens += len(j.words)
	b.lastGrow = time.Now()
	if !b.leading {
		b.leading = true
		b.mu.Unlock()
		b.lead()
		<-j.done
		return
	}
	b.mu.Unlock()
	<-j.done
}

// lead collects until the window expires, the token budget fills, or the
// queue goes quiet, then steals the batch and executes it. The window is
// a maximum linger, not a mandatory wait: once no new job has arrived for
// window/8 the leader flushes early — in a closed-loop lull every
// in-flight request is already in the batch and waiting out the tail of
// the window would be dead air. Short windows spin with Gosched so
// microsecond budgets are honored; longer windows sleep in quiet-period
// increments so the early flush still triggers promptly.
func (b *batcher) lead() {
	now := time.Now()
	deadline := now.Add(b.window)
	quiet := b.window / 8
	if quiet < time.Microsecond {
		quiet = time.Microsecond
	}
	for {
		b.mu.Lock()
		now = time.Now()
		if b.tokens >= b.maxTokens || !now.Before(deadline) || now.Sub(b.lastGrow) >= quiet {
			jobs := b.pending
			b.pending = nil
			b.tokens = 0
			b.leading = false
			b.mu.Unlock()
			b.execute(jobs)
			return
		}
		b.mu.Unlock()
		if remaining := time.Until(deadline); remaining > 200*time.Microsecond {
			nap := remaining - 100*time.Microsecond
			if quiet < nap {
				nap = quiet
			}
			time.Sleep(nap)
		} else {
			runtime.Gosched()
		}
	}
}

// occBucket maps a batch occupancy to its histogram bucket.
func occBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	default:
		return 5
	}
}

// groupOf returns the index of the (codec, tier) group in *groups,
// appending a new group on first sight. Batches see a handful of distinct
// codecs, so a linear scan beats a map (and allocates nothing once the
// slice is warm).
func groupOf(groups *[]codecGroup, codec *semantic.Codec, tier semantic.Tier) int {
	for i := range *groups {
		if (*groups)[i].codec == codec && (*groups)[i].tier == tier {
			return i
		}
	}
	*groups = append(*groups, codecGroup{codec: codec, tier: tier})
	return len(*groups) - 1
}

// execute runs one stolen batch: fused encode per sender codec, the
// physical channel (parallel pooled crossings in PerUserNoise mode, the
// shared channel in arrival order under one linkMu hold otherwise),
// fused receiver decode per receiver codec, fused decoder-copy decode
// per sender codec, then signals every waiting request.
func (b *batcher) execute(jobs []*batchJob) {
	b.batches.Add(1)
	b.batchedReqs.Add(int64(len(jobs)))
	b.occupancy[occBucket(len(jobs))].Add(1)

	x := b.execPool.Get().(*batchExec)
	x.sc = mat.GetScratch()
	x.refs.Store(int32(len(jobs)))

	// Group jobs by sender and receiver codec instance, recording each
	// job's token-row offset within its groups.
	for _, j := range jobs {
		j.exec = x
		j.sgIdx = groupOf(&x.sgroups, j.senderCodec, j.senderCodec.Tier())
		j.sgOff = x.sgroups[j.sgIdx].tokens
		x.sgroups[j.sgIdx].tokens += len(j.words)
		j.rgIdx = groupOf(&x.rgroups, j.recvCodec, j.recvCodec.Tier())
		j.rgOff = x.rgroups[j.rgIdx].tokens
		x.rgroups[j.rgIdx].tokens += len(j.words)
	}

	// Fused encode: one gather + GEMM + tanh per sender codec.
	for gi := range x.sgroups {
		g := &x.sgroups[gi]
		x.msgs = x.msgs[:0]
		for _, j := range jobs {
			if j.sgIdx == gi {
				x.msgs = append(x.msgs, j.words)
			}
		}
		g.feats = g.codec.EncodeBatchInto(x.sc, x.msgs)
	}

	// Physical channel: each job's received features go straight into the
	// packed per-receiver-codec matrices. In PerUserNoise mode the
	// crossings are independent — every job's noise comes from its own
	// derived seed — so they shard across the worker pool on pooled
	// channel instances with no lock; each job writes a disjoint row
	// range of its group matrix. Classic mode draws from the shared RNG
	// in batch arrival order under a single linkMu hold, exactly as solo
	// transmits draw in global arrival order.
	for gi := range x.rgroups {
		g := &x.rgroups[gi]
		g.feats = x.sc.Mat(g.tokens, g.codec.FeatureDim())
	}
	if b.sys.userNoise && !b.sys.serialLink {
		mat.ParallelFor(len(jobs), 1, func(lo, hi int) {
			inst := b.sys.linkPool.Get()
			for i := lo; i < hi; i++ {
				j := jobs[i]
				ed := j.senderCodec.FeatureDim()
				rd := j.recvCodec.FeatureDim()
				enc := x.sgroups[j.sgIdx].feats.Data[j.sgOff*ed : (j.sgOff+len(j.words))*ed]
				rx := x.rgroups[j.rgIdx].feats.Data[j.rgOff*rd : (j.rgOff+len(j.words))*rd]
				j.linkStats = inst.SendSeeded(j.noiseSeed, rx, enc)
			}
			b.sys.linkPool.Put(inst)
		})
	} else {
		b.sys.linkMu.Lock()
		for _, j := range jobs {
			ed := j.senderCodec.FeatureDim()
			rd := j.recvCodec.FeatureDim()
			enc := x.sgroups[j.sgIdx].feats.Data[j.sgOff*ed : (j.sgOff+len(j.words))*ed]
			rx := x.rgroups[j.rgIdx].feats.Data[j.rgOff*rd : (j.rgOff+len(j.words))*rd]
			if j.reseed {
				b.sys.noiseRng.Reseed(j.noiseSeed)
			}
			j.linkStats = b.sys.link.SendFlatScratch(&b.sys.linkScratch, rx, enc)
		}
		b.sys.linkMu.Unlock()
	}

	// Fused receiver decode per receiver codec; jobs get subslice views.
	for gi := range x.rgroups {
		g := &x.rgroups[gi]
		concepts := x.sc.Ints(g.tokens)
		g.codec.DecodeFeaturesInto(x.sc, g.feats, concepts)
		for _, j := range jobs {
			if j.rgIdx == gi {
				j.concepts = concepts[j.rgOff : j.rgOff+len(j.words)]
			}
		}
	}

	// Fused decoder-copy decode per sender codec, straight off the packed
	// encode features (the §II-C mismatch round trip).
	for gi := range x.sgroups {
		g := &x.sgroups[gi]
		decoded := x.sc.Ints(g.tokens)
		g.codec.DecodeFeaturesInto(x.sc, g.feats, decoded)
		for _, j := range jobs {
			if j.sgIdx == gi {
				j.decoded = decoded[j.sgOff : j.sgOff+len(j.words)]
			}
		}
	}

	for _, j := range jobs {
		j.done <- struct{}{}
	}

	// Recycle the pending-slice buffer for a future batch.
	for i := range jobs {
		jobs[i] = nil
	}
	b.mu.Lock()
	b.free = append(b.free, jobs[:0])
	b.mu.Unlock()
}

// Stats snapshots the collector counters.
func (b *batcher) Stats() BatchStats {
	st := BatchStats{
		Batches:         b.batches.Load(),
		BatchedRequests: b.batchedReqs.Load(),
	}
	for i := range b.occupancy {
		st.Occupancy[i] = b.occupancy[i].Load()
	}
	return st
}

// BatchStats snapshots the cross-request batcher's counters; the zero
// value reports batching off.
func (s *System) BatchStats() BatchStats {
	if s.batcher == nil {
		return BatchStats{}
	}
	return s.batcher.Stats()
}

// BatchingEnabled reports whether the cross-request collector is active.
func (s *System) BatchingEnabled() bool { return s.batcher != nil }

// transmitBatched is the cross-request batched variant of
// transmitSelected: codec acquisition, transaction recording, selector
// feedback and the update process stay request-side under the user lock,
// while the per-token GEMMs and the channel crossing run inside the
// collector's fused batch. Per-request outputs are bit-identical to the
// solo path.
func (s *System) transmitBatched(sc *mat.Scratch, st *userState, user string, words []string, selected int, sel selection.Selector) (*Result, []int, error) {
	domain := s.Corpus.Domains[selected].Name
	sender := s.senderFor(user)

	// Codec acquisition happens request-side, exactly like the solo
	// path's Encode/Decode: cache hits, fetch latencies and
	// individual-model choice are per-request state guarded by the user
	// lock, not batch state.
	encAcq, err := sender.AcquireCodec(domain, user)
	if err != nil {
		return nil, nil, err
	}
	decAcq, err := s.Receiver.AcquireCodec(domain, user)
	if err != nil {
		return nil, nil, err
	}

	j := s.batcher.getJob()
	j.words = words
	j.senderCodec = encAcq.Model.Codec
	j.recvCodec = decAcq.Model.Codec
	if s.userNoise {
		// The sequence advances request-side under the user lock, exactly
		// like the solo path, so batch membership never perturbs it.
		j.reseed = true
		j.noiseSeed = s.nextNoiseSeed(st, user)
	}
	s.batcher.submit(j)

	// From here the job's output slices live in the batch scratch: copy
	// everything we keep before releasing.
	airTime := time.Duration(float64(j.linkStats.Symbols) / s.symbolRateHz * float64(time.Second))
	airTime += s.edgeLink.Latency
	payloadBytes := j.linkStats.PayloadBytes()
	symbols := j.linkStats.Symbols
	restored := j.recvCodec.RestoreWords(j.concepts)
	concepts := sc.Ints(len(j.concepts))
	copy(concepts, j.concepts)

	tx, ready, err := sender.RecordDecodedTransaction(domain, user, words, j.decoded)
	j.exec.release()
	s.batcher.putJob(j)
	if err != nil {
		return nil, nil, err
	}
	if sel != nil {
		sel.Feedback(1 - tx.Mismatch())
	}

	encCompute := time.Duration(len(words)) * sender.ComputePerToken()
	decCompute := time.Duration(len(words)) * s.Receiver.ComputePerToken()
	res := &Result{
		SelectedDomain: selected,
		RestoredWords:  restored,
		Mismatch:       tx.Mismatch(),
		PayloadBytes:   payloadBytes,
		Symbols:        symbols,
		Latency:        encAcq.FetchLatency + encCompute + airTime + decAcq.FetchLatency + decCompute,
		EncCacheHit:    encAcq.CacheHit,
		DecCacheHit:    decAcq.CacheHit,
		UsedIndividual: encAcq.Individual,
	}

	if ready && !s.cfg.DisableAutoUpdate {
		bytes, err := s.ProcessUpdate(domain, user)
		if err == nil {
			res.UpdateFired = true
			res.UpdateBytes = bytes
		}
	}
	return res, concepts, nil
}
