package core

import (
	"fmt"
	"hash"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/semantic"
)

// batchTestPretrained trains the small shared codec set once per test
// binary: every system in these tests clones it instead of retraining.
var batchTestPretrained struct {
	once   sync.Once
	codecs []*semantic.Codec
}

// batchTestConfig is the fixed scenario for batched-vs-solo comparisons:
// sticky selection, pinned generals, ample cache, and a small update
// threshold so fine-tuning fires inside the run.
func batchTestConfig() Config {
	batchTestPretrained.once.Do(func() {
		batchTestPretrained.codecs = semantic.PretrainAll(corpus.Build(), semantic.Config{
			EmbedDim:   12,
			FeatureDim: 6,
			HiddenDim:  16,
			Epochs:     2,
			Sentences:  200,
			Seed:       7,
		})
	})
	return Config{
		Selector:        SelectorSticky,
		PinGeneral:      true,
		BufferThreshold: 8,
		Seed:            7,
		Pretrained:      batchTestPretrained.codecs,
	}
}

// batchUserMessages builds each user's fixed message stream: user u
// sticks to domain u mod len(domains), seeded per user.
func batchUserMessages(corp *corpus.Corpus, users, perUser int) [][][]string {
	out := make([][][]string, users)
	for u := range out {
		gen := corpus.NewGenerator(corp, mat.NewRNG(uint64(3000+u)))
		msgs := make([][]string, perUser)
		for i := range msgs {
			msgs[i] = gen.Message(u%len(corp.Domains), nil).Words
		}
		out[u] = msgs
	}
	return out
}

// hashNoiseFreeResult digests every Result field that does not depend on
// channel-noise draws. Noise comes from one shared RNG in global arrival
// order (a documented property of concurrent serving, independent of
// batching), so RestoredWords — the only noise-dependent field — stays
// out of the digest; everything else, including the decoder-copy
// Mismatch, latency accounting and the update-process outcomes, must be
// bit-identical between solo and batched serving.
func hashNoiseFreeResult(h hash.Hash, res *Result) {
	fmt.Fprintf(h, "%d|%g|%d|%d|%d|%t|%t|%t|%t|%d\n",
		res.SelectedDomain, res.Mismatch, res.PayloadBytes, res.Symbols,
		res.Latency.Nanoseconds(), res.EncCacheHit, res.DecCacheHit,
		res.UsedIndividual, res.UpdateFired, res.UpdateBytes)
}

// prefetchAll warms both edges with every general model so no run pays an
// interleaving-dependent fetch latency.
func prefetchAll(t *testing.T, s *System) {
	t.Helper()
	domains := make([]string, len(s.Corpus.Domains))
	for i, d := range s.Corpus.Domains {
		domains[i] = d.Name
	}
	if _, err := s.Sender.Prefetch(domains); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Receiver.Prefetch(domains); err != nil {
		t.Fatal(err)
	}
}

// userDigests runs every user's stream against s — concurrently when
// parallel is set — and returns one noise-free digest per user.
func userDigests(t *testing.T, s *System, streams [][][]string, parallel bool) []uint64 {
	t.Helper()
	digests := make([]uint64, len(streams))
	run := func(u int) error {
		h := fnv.New64a()
		user := fmt.Sprintf("user%d", u)
		for _, words := range streams[u] {
			res, err := s.TransmitText(user, words)
			if err != nil {
				return err
			}
			hashNoiseFreeResult(h, res)
		}
		digests[u] = h.Sum64()
		return nil
	}
	if !parallel {
		for u := range streams {
			if err := run(u); err != nil {
				t.Fatal(err)
			}
		}
		return digests
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(streams))
	for u := range streams {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := run(u); err != nil {
				errCh <- err
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	return digests
}

// TestBatchedMatchesSoloGolden is the tentpole invariant: per-user result
// streams under cross-request batching are bit-identical to solo serving,
// at any mat worker count and any batch window.
func TestBatchedMatchesSoloGolden(t *testing.T) {
	const users, perUser = 6, 16
	solo, err := NewSystem(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	streams := batchUserMessages(solo.Corpus, users, perUser)
	prefetchAll(t, solo)
	want := userDigests(t, solo, streams, false)

	prevWorkers := mat.Parallelism()
	defer mat.SetParallelism(prevWorkers)

	for _, workers := range []int{1, 2, 8} {
		for _, window := range []time.Duration{50 * time.Microsecond, 200 * time.Microsecond} {
			mat.SetParallelism(workers)
			cfg := batchTestConfig()
			cfg.BatchWindow = window
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prefetchAll(t, s)
			got := userDigests(t, s, streams, true)
			for u := range got {
				if got[u] != want[u] {
					t.Fatalf("workers=%d window=%v: user %d batched digest %016x != solo %016x",
						workers, window, u, got[u], want[u])
				}
			}
			st := s.BatchStats()
			if st.BatchedRequests != int64(users*perUser) {
				t.Fatalf("workers=%d window=%v: %d requests batched, want %d",
					workers, window, st.BatchedRequests, users*perUser)
			}
			if st.Batches <= 0 || st.Batches > st.BatchedRequests {
				t.Fatalf("implausible batch count %d for %d requests", st.Batches, st.BatchedRequests)
			}
		}
	}
}

// TestBatchTokenCapFlushes asserts a full token budget flushes the batch
// immediately instead of waiting out a long window.
func TestBatchTokenCapFlushes(t *testing.T) {
	cfg := batchTestConfig()
	cfg.BatchWindow = 5 * time.Second // would dwarf the test timeout if waited out
	cfg.BatchMaxTokens = 1            // every submission fills the budget
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prefetchAll(t, s)
	gen := corpus.NewGenerator(s.Corpus, mat.NewRNG(42))
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := s.TransmitText("solo", gen.Message(0, nil).Words); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > cfg.BatchWindow {
		t.Fatalf("token-capped batches took %v: window not short-circuited", elapsed)
	}
	st := s.BatchStats()
	if st.Batches != 4 || st.Occupancy[0] != 4 {
		t.Fatalf("stats = %+v, want 4 singleton batches", st)
	}
}

// TestBatchStatsOff asserts the zero-value snapshot with batching off.
func TestBatchStatsOff(t *testing.T) {
	s, err := NewSystem(batchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.BatchingEnabled() {
		t.Fatal("batching enabled without BatchWindow")
	}
	if st := s.BatchStats(); st != (BatchStats{}) {
		t.Fatalf("stats = %+v, want zero", st)
	}
}

// TestOccBucket pins the occupancy histogram bucketing.
func TestOccBucket(t *testing.T) {
	want := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 100: 5}
	for n, bucket := range want {
		if got := occBucket(n); got != bucket {
			t.Fatalf("occBucket(%d) = %d, want %d", n, got, bucket)
		}
	}
}
