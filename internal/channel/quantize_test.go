package channel

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// mustPanic asserts fn panics with the quantizer's Bits-contract message.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected panic for out-of-range Bits", name)
		}
		if s, ok := r.(string); !ok || s != "channel: Quantizer.Bits out of range [1,16]" {
			t.Fatalf("%s: unexpected panic value %v", name, r)
		}
	}()
	fn()
}

// TestQuantizerPanicContract pins the shared validation: every entry point
// — encode, decode and the grid helpers — rejects Bits outside [1,16] with
// the same panic, for both too-small and too-large widths.
func TestQuantizerPanicContract(t *testing.T) {
	vals := []float64{0.5}
	bits := []bool{true, false, true}
	dst := make([]float64, 1)
	for _, b := range []int{0, -1, 17, 100} {
		q := Quantizer{Bits: b, Lo: -1, Hi: 1}
		mustPanic(t, "Encode", func() { q.Encode(vals) })
		mustPanic(t, "EncodeTo", func() { q.EncodeTo(nil, vals) })
		mustPanic(t, "Decode", func() { q.Decode(bits) })
		mustPanic(t, "DecodeInto", func() { q.DecodeInto(dst, bits) })
		mustPanic(t, "Index", func() { q.Index(0.5) })
		mustPanic(t, "Value", func() { q.Value(1) })
	}
	// Boundary widths are accepted everywhere.
	for _, b := range []int{1, 16} {
		q := Quantizer{Bits: b, Lo: -1, Hi: 1}
		q.DecodeInto(dst, q.EncodeTo(nil, vals))
		if got := q.Value(q.Index(0.5)); math.Abs(got-0.5) > q.StepSize() {
			t.Fatalf("Bits=%d: round trip of 0.5 gave %v (step %v)", b, got, q.StepSize())
		}
	}
}

// TestQuantizerIndexValueMatchEncodeDecode proves the exported grid helpers
// are the same machinery the bit-stream path runs: Index/Value must
// reproduce EncodeTo/DecodeInto exactly for every value.
func TestQuantizerIndexValueMatchEncodeDecode(t *testing.T) {
	rng := mat.NewRNG(3)
	for _, bitsPer := range []int{1, 3, 8, 16} {
		q := Quantizer{Bits: bitsPer, Lo: -1, Hi: 1}
		vals := make([]float64, 64)
		for i := range vals {
			vals[i] = 3*rng.Float64() - 1.5 // includes out-of-range values
		}
		vals[0], vals[1], vals[2] = -1, 1, 0
		stream := q.EncodeTo(nil, vals)
		dec := make([]float64, len(vals))
		if got := q.DecodeInto(dec, stream); got != len(vals) {
			t.Fatalf("Bits=%d: DecodeInto wrote %d values", bitsPer, got)
		}
		for i, v := range vals {
			idx := q.Index(v)
			if w := q.Value(idx); w != dec[i] {
				t.Fatalf("Bits=%d: Value(Index(%v)) = %v but stream decoded %v", bitsPer, v, w, dec[i])
			}
			// The index itself must match the bits that were emitted.
			enc := 0
			for b := 0; b < bitsPer; b++ {
				enc <<= 1
				if stream[i*bitsPer+b] {
					enc |= 1
				}
			}
			if idx != enc {
				t.Fatalf("Bits=%d: Index(%v) = %d but stream holds %d", bitsPer, v, idx, enc)
			}
		}
	}
}

// TestQuantizerIndexClamps pins clamping at both ends of the grid.
func TestQuantizerIndexClamps(t *testing.T) {
	q := Quantizer{Bits: 8, Lo: -2, Hi: 2}
	if q.Index(-100) != 0 || q.Index(-2) != 0 {
		t.Fatal("low clamp broken")
	}
	if q.Index(100) != 255 || q.Index(2) != 255 {
		t.Fatal("high clamp broken")
	}
	if q.Value(-5) != q.Value(0) || q.Value(999) != q.Value(255) {
		t.Fatal("Value index clamp broken")
	}
}
