// Package channel simulates the physical layer of the semantic
// communication workflow: feature quantization, channel coding, modulation
// and noisy channel models. Both the semantic pipeline and the classical
// bit-oriented baseline transmit through this package, so comparisons see
// identical channel conditions.
package channel

// PackBits packs a bit slice into bytes, most significant bit first. The
// final byte is zero-padded.
func PackBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return out
}

// UnpackBits expands bytes into n bits, most significant bit first. It
// panics if n exceeds the available bits.
func UnpackBits(data []byte, n int) []bool {
	if n > 8*len(data) {
		panic("channel: UnpackBits length exceeds data")
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = data[i/8]&(1<<(7-uint(i%8))) != 0
	}
	return out
}

// BytesToBits converts a byte slice to its full bit representation.
func BytesToBits(data []byte) []bool {
	return UnpackBits(data, 8*len(data))
}

// BitErrors counts positions where a and b differ, comparing over the
// shorter length and adding the length difference as errors.
func BitErrors(a, b []bool) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			errs++
		}
	}
	if len(a) > n {
		errs += len(a) - n
	} else if len(b) > n {
		errs += len(b) - n
	}
	return errs
}

// CRC16 computes the CRC-16/CCITT-FALSE checksum of the packed form of
// bits. The baseline pipeline uses it for frame-integrity detection.
func CRC16(bits []bool) uint16 {
	data := PackBits(bits)
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
