package channel

// This file implements the poolable channel stage: a TxInstance bundles
// one independently usable copy of the physical layer (a FeatureLink
// whose Channel owns a private noise RNG, plus the per-stage scratch
// buffers), and a LinkPool hands instances to concurrent transmissions
// without a lock. The design exists for per-message derived noise seeds
// (core's PerUserNoise mode): because every draw's seed is a pure
// function of (user, seq), WHICH physical instance performs the draw is
// irrelevant — reseeding any instance to the derived seed reproduces the
// exact bytes a single serialized channel would have produced under a
// global mutex. Classic shared-RNG serving, whose noise stream advances
// in global arrival order, cannot use the pool and keeps its lock.

import "sync"

// NoiseReseeder is a Channel whose randomness can be reset to a derived
// seed, making one long-lived instance (and its warm noise buffers)
// reusable across independent noise streams. Every stock stochastic
// channel (AWGN, Rayleigh, Erasure) implements it; Clean has no
// randomness to reseed.
type NoiseReseeder interface {
	// ReseedNoise resets the channel's RNG to the exact state a freshly
	// constructed channel with this seed would have, discarding any
	// cached deviates, so the next Transmit draws a stream depending
	// only on seed.
	ReseedNoise(seed uint64)
}

// TxInstance is everything one in-flight transmission needs exclusive
// access to: a FeatureLink whose Channel owns a private RNG, and the
// reusable stage buffers. An instance is not safe for concurrent use;
// a LinkPool hands each transmission its own.
type TxInstance struct {
	link    FeatureLink
	reseed  NoiseReseeder
	scratch TxScratch
}

// SendSeeded resets the instance's noise stream to seed and runs one
// allocation-free crossing. The output is bit-identical to reseeding a
// shared serialized channel under a lock and calling SendFlatScratch:
// the draw depends only on seed, never on which instance (or how warm a
// buffer) performs it.
func (t *TxInstance) SendSeeded(seed uint64, dst, flat []float64) LinkStats {
	t.reseed.ReseedNoise(seed)
	return t.link.SendFlatScratch(&t.scratch, dst, flat)
}

// LinkPool is a lock-free free list of TxInstances backing the parallel
// channel stage: Get checks an instance out (constructing one on a cold
// or post-GC pool), Put returns it warm. Steady-state checkout does not
// allocate — the zero-allocation serve-path pin covers it.
type LinkPool struct {
	pool sync.Pool
}

// NewLinkPool builds a pool whose instances are created by mk. Each call
// to mk must return an independent FeatureLink — in particular a freshly
// constructed Channel owning its own RNG; sharing one channel between
// instances would race. The channel must implement NoiseReseeder
// (checked at first construction, panicking otherwise: a pooled channel
// that cannot be reseeded would silently correlate streams).
func NewLinkPool(mk func() FeatureLink) *LinkPool {
	p := &LinkPool{}
	p.pool.New = func() interface{} {
		l := mk()
		rs, ok := l.Ch.(NoiseReseeder)
		if !ok {
			panic("channel: pooled Channel must implement NoiseReseeder")
		}
		return &TxInstance{link: l, reseed: rs}
	}
	return p
}

// Get checks an instance out for exclusive use.
func (p *LinkPool) Get() *TxInstance { return p.pool.Get().(*TxInstance) }

// Put returns an instance for reuse. The caller must not touch it after.
func (p *LinkPool) Put(t *TxInstance) { p.pool.Put(t) }
