package channel

// LinkStats reports the transport cost of one transmission.
type LinkStats struct {
	// InfoBits is the payload size before channel coding.
	InfoBits int
	// CodedBits is the size after channel coding.
	CodedBits int
	// Symbols is the number of channel symbols sent.
	Symbols int
}

// PayloadBytes returns the information payload rounded up to whole bytes —
// the figure the experiments report as "bytes per message".
func (s LinkStats) PayloadBytes() int { return (s.InfoBits + 7) / 8 }

// FeatureLink carries semantic feature vectors across the physical layer:
// quantize, channel-encode, modulate, transmit, and reverse. It is the
// digital feature transport used by the semantic pipeline.
type FeatureLink struct {
	Quant Quantizer
	Code  Code
	Mod   Modulation
	Ch    Channel
}

// DefaultFeatureLink builds the standard configuration used by the
// experiments: 6-bit quantization, Hamming(7,4) and BPSK over ch.
func DefaultFeatureLink(ch Channel) FeatureLink {
	return FeatureLink{
		Quant: DefaultQuantizer(),
		Code:  Hamming74{},
		Mod:   BPSK{},
		Ch:    ch,
	}
}

// SendFlat transmits a flat feature buffer (token-major, the Data layout
// of a feature matrix) and writes the received values into dst, which must
// have length len(flat); positions past the received stream are zeroed. It
// is bit-identical to Send on the same values but lets callers reuse one
// receive buffer across transmissions instead of allocating per-token
// vectors.
func (l FeatureLink) SendFlat(dst, flat []float64) LinkStats {
	return l.SendFlatScratch(nil, dst, flat)
}

// SendFlatScratch is SendFlat with caller-owned stage buffers: every
// intermediate (bit streams, symbol vectors) appends into ts, so a warm
// steady-state transmission allocates nothing when the configured code,
// modulation and channel implement the fast-path interfaces (all stock
// implementations do). ts may be nil, which falls back to fresh buffers.
// Results are bit-identical to Send/SendFlat.
func (l FeatureLink) SendFlatScratch(ts *TxScratch, dst, flat []float64) LinkStats {
	if len(dst) != len(flat) {
		panic("channel: SendFlat buffer length mismatch")
	}
	if ts == nil {
		ts = new(TxScratch)
	}
	ts.info = l.Quant.EncodeTo(ts.info[:0], flat)
	ts.coded = codeEncode(l.Code, ts.coded[:0], ts.info)
	ts.symbols = modulate(l.Mod, ts.symbols[:0], ts.coded)
	ts.received = transmit(l.Ch, ts.received[:0], ts.symbols)
	codedRx := demodulate(l.Mod, ts.codedRx[:0], ts.received)
	ts.codedRx = codedRx
	if len(codedRx) > len(ts.coded) {
		codedRx = codedRx[:len(ts.coded)]
	}
	infoRx := codeDecode(l.Code, ts.infoRx[:0], codedRx)
	ts.infoRx = infoRx
	if len(infoRx) > len(ts.info) {
		infoRx = infoRx[:len(ts.info)]
	}
	n := l.Quant.DecodeInto(dst, infoRx)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	return LinkStats{InfoBits: len(ts.info), CodedBits: len(ts.coded), Symbols: len(ts.symbols)}
}

// Send transmits per-token feature vectors and returns the received
// feature vectors together with transport statistics. The feature
// dimensionality dim must match every vector.
func (l FeatureLink) Send(feats [][]float64, dim int) ([][]float64, LinkStats) {
	flat := make([]float64, 0, len(feats)*dim)
	for _, f := range feats {
		flat = append(flat, f...)
	}
	rx := make([]float64, len(flat))
	stats := l.SendFlat(rx, flat)
	out := make([][]float64, len(feats))
	for i := range out {
		v := make([]float64, dim)
		copy(v, rx[min(len(rx), i*dim):min(len(rx), (i+1)*dim)])
		out[i] = v
	}
	return out, stats
}

// AnalogLink transmits features directly as symbol amplitudes (two feature
// dimensions per complex symbol) with no quantization or coding — the
// DeepSC-style analog transport used as an ablation.
type AnalogLink struct {
	Ch Channel
}

// Send transmits feature vectors in analog form. Payload accounting
// charges the equivalent of one 6-bit code per dimension so analog and
// digital rows are comparable in the ablation tables.
func (l AnalogLink) Send(feats [][]float64, dim int) ([][]float64, LinkStats) {
	flat := make([]float64, 0, len(feats)*dim)
	for _, f := range feats {
		flat = append(flat, f...)
	}
	n := (len(flat) + 1) / 2
	symbols := make([]complex128, n)
	for i := 0; i < n; i++ {
		re := flat[2*i]
		im := 0.0
		if 2*i+1 < len(flat) {
			im = flat[2*i+1]
		}
		symbols[i] = complex(re, im)
	}
	received := l.Ch.Transmit(symbols)
	values := make([]float64, len(flat))
	for i := 0; i < n; i++ {
		values[2*i] = real(received[i])
		if 2*i+1 < len(flat) {
			values[2*i+1] = imag(received[i])
		}
	}
	out := make([][]float64, len(feats))
	for i := range out {
		v := make([]float64, dim)
		copy(v, values[i*dim:min(len(values), (i+1)*dim)])
		out[i] = v
	}
	bits := 6 * len(flat)
	return out, LinkStats{InfoBits: bits, CodedBits: bits, Symbols: n}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AdaptiveCode selects a channel code from the estimated channel SNR — a
// small instance of the paper's §III-C communication-optimization
// direction: spend redundancy only when the channel needs it.
//
//	SNR >= GoodSNRdB        -> no coding (rate 1)
//	SNR >= FairSNRdB        -> Hamming(7,4)
//	otherwise               -> Hamming(7,4) + repetition(3)
type AdaptiveCode struct {
	// GoodSNRdB and FairSNRdB are the selection thresholds; zero values
	// select 10 dB and 2 dB.
	GoodSNRdB float64
	FairSNRdB float64
}

// ForSNR returns the code chosen for the given channel estimate.
func (a AdaptiveCode) ForSNR(snrDB float64) Code {
	good, fair := a.GoodSNRdB, a.FairSNRdB
	if good == 0 {
		good = 10
	}
	if fair == 0 {
		fair = 2
	}
	switch {
	case snrDB >= good:
		return Identity{}
	case snrDB >= fair:
		return Hamming74{}
	default:
		return concatCode{outer: Repetition{N: 3}, inner: Hamming74{}}
	}
}

// concatCode concatenates two codes: information bits pass through the
// inner code, then the outer code protects the inner codeword.
type concatCode struct {
	outer, inner Code
}

var _ Code = concatCode{}

// Name implements Code.
func (c concatCode) Name() string { return c.inner.Name() + "+" + c.outer.Name() }

// Rate implements Code.
func (c concatCode) Rate() float64 { return c.inner.Rate() * c.outer.Rate() }

// Encode implements Code.
func (c concatCode) Encode(bits []bool) []bool {
	return c.outer.Encode(c.inner.Encode(bits))
}

// Decode implements Code.
func (c concatCode) Decode(coded []bool) []bool {
	return c.inner.Decode(c.outer.Decode(coded))
}
