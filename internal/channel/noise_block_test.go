package channel

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// scalarAWGN reproduces the pre-amortization AWGN TransmitTo: one
// NormFloat64 pair per symbol, sigma recomputed per call.
func scalarAWGN(snr float64, rng *mat.RNG, dst, symbols []complex128) []complex128 {
	sigma := (&AWGN{SNRdB: snr}).NoiseSigma()
	for _, s := range symbols {
		dst = append(dst, s+complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64()))
	}
	return dst
}

// TestAWGNBlockDrawBitIdentical proves the block-amortized AWGN produces
// exactly the symbols the scalar-draw implementation did, across messages
// of varying (odd and even) lengths on one shared RNG stream.
func TestAWGNBlockDrawBitIdentical(t *testing.T) {
	ch := &AWGN{SNRdB: 6, Rng: mat.NewRNG(42)}
	ref := mat.NewRNG(42)
	var got, want []complex128
	for _, n := range []int{1, 3, 8, 0, 5, 64, 2} {
		symbols := make([]complex128, n)
		for i := range symbols {
			symbols[i] = complex(float64(i)-1, 0.5*float64(i))
		}
		got = ch.TransmitTo(got[:0], symbols)
		want = scalarAWGN(6, ref, want[:0], symbols)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("len=%d symbol %d: block %v vs scalar %v", n, i, got[i], want[i])
			}
		}
	}
}

// scalarRayleigh reproduces the pre-amortization Rayleigh TransmitTo.
func scalarRayleigh(snr float64, block int, rng *mat.RNG, dst, symbols []complex128) []complex128 {
	c := &Rayleigh{SNRdB: snr, BlockLen: block, Rng: rng}
	// The scalar path is still live for BlockLen > 1; route per-symbol
	// fading through it by drawing with block = 1 semantics manually.
	sigma := c.noiseSigmaCached()
	if block <= 0 {
		block = 1
	}
	var h complex128
	for i, s := range symbols {
		if i%block == 0 {
			h = complex(rng.NormFloat64()/math.Sqrt2, rng.NormFloat64()/math.Sqrt2)
			if abs := math.Hypot(real(h), imag(h)); abs < 1e-3 {
				h = complex(1e-3, 0)
			}
		}
		n := complex(sigma*rng.NormFloat64(), sigma*rng.NormFloat64())
		dst = append(dst, (h*s+n)/h)
	}
	return dst
}

// TestRayleighBlockDrawBitIdentical proves per-symbol-fading Rayleigh (the
// default) is bit-identical to the scalar draw order after the block-draw
// rewrite, and that BlockLen > 1 still matches the scalar reference.
func TestRayleighBlockDrawBitIdentical(t *testing.T) {
	for _, blockLen := range []int{0, 1, 4} {
		ch := &Rayleigh{SNRdB: 3, BlockLen: blockLen, Rng: mat.NewRNG(7)}
		ref := mat.NewRNG(7)
		var got, want []complex128
		for _, n := range []int{1, 5, 16, 3} {
			symbols := make([]complex128, n)
			for i := range symbols {
				symbols[i] = complex(1-float64(i%3), float64(i%2))
			}
			got = ch.TransmitTo(got[:0], symbols)
			want = scalarRayleigh(3, blockLen, ref, want[:0], symbols)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("block=%d len=%d symbol %d: %v vs %v", blockLen, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestAWGNSigmaCacheTracksSNRChanges guards the sigma cache against a
// mutated SNRdB field between calls.
func TestAWGNSigmaCacheTracksSNRChanges(t *testing.T) {
	ch := &AWGN{SNRdB: 0, Rng: mat.NewRNG(1)}
	if got, want := ch.noiseSigmaCached(), ch.NoiseSigma(); got != want {
		t.Fatalf("sigma %v, want %v", got, want)
	}
	ch.SNRdB = 12
	if got, want := ch.noiseSigmaCached(), ch.NoiseSigma(); got != want {
		t.Fatalf("after SNR change: sigma %v, want %v", got, want)
	}
}
