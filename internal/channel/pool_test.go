package channel

import (
	"sync"
	"testing"

	"repro/internal/mat"
)

// poolTestLink builds the standard link over a Rayleigh channel with a
// private RNG — the configuration the serve path pools.
func poolTestLink() FeatureLink {
	return DefaultFeatureLink(&Rayleigh{SNRdB: 12, Rng: mat.NewRNG(0)})
}

// poolTestPayload is a deterministic flat feature buffer.
func poolTestPayload(n int, seed uint64) []float64 {
	rng := mat.NewRNG(seed)
	flat := make([]float64, n)
	for i := range flat {
		flat[i] = 2*rng.Float64() - 1
	}
	return flat
}

// TestSendSeededMatchesSerializedReseed pins the pool's founding claim:
// checking ANY instance out of the pool and calling SendSeeded produces
// the exact bytes a single shared channel would under a lock — reseed,
// then SendFlatScratch. Instances are deliberately left warm (reused
// across seeds in a scrambled order) to prove buffer history is
// irrelevant.
func TestSendSeededMatchesSerializedReseed(t *testing.T) {
	const dims = 96
	seeds := []uint64{3, 11, 3, 900719, 11, 0xdeadbeef, 3}
	flat := poolTestPayload(dims, 42)

	// Serialized reference: one shared channel, reseeded per message.
	shared := poolTestLink()
	var ts TxScratch
	want := make([][]float64, len(seeds))
	for i, seed := range seeds {
		shared.Ch.(NoiseReseeder).ReseedNoise(seed)
		dst := make([]float64, dims)
		shared.SendFlatScratch(&ts, dst, flat)
		want[i] = dst
	}

	// Pooled path: interleave two instances so each crossing runs on an
	// instance warmed by a DIFFERENT seed's history.
	pool := NewLinkPool(poolTestLink)
	a, b := pool.Get(), pool.Get()
	insts := []*TxInstance{a, b}
	for i, seed := range seeds {
		dst := make([]float64, dims)
		insts[i%2].SendSeeded(seed, dst, flat)
		for j := range dst {
			if dst[j] != want[i][j] {
				t.Fatalf("seed %#x: pooled output[%d] = %v, serialized reference %v",
					seed, j, dst[j], want[i][j])
			}
		}
	}
	pool.Put(a)
	pool.Put(b)
}

// TestLinkPoolSameSeedSameBytes checks that two different instances given
// the same seed produce identical crossings — the property that makes
// WHICH instance serves a request irrelevant.
func TestLinkPoolSameSeedSameBytes(t *testing.T) {
	const dims = 64
	flat := poolTestPayload(dims, 7)
	pool := NewLinkPool(poolTestLink)
	a, b := pool.Get(), pool.Get()
	// Warm b with unrelated traffic first.
	scratchDst := make([]float64, dims)
	b.SendSeeded(0xabcdef, scratchDst, flat)

	da := make([]float64, dims)
	db := make([]float64, dims)
	sa := a.SendSeeded(77, da, flat)
	sb := b.SendSeeded(77, db, flat)
	if sa != sb {
		t.Fatalf("stats diverge across instances: %+v vs %+v", sa, sb)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("output[%d] diverges across instances: %v vs %v", i, da[i], db[i])
		}
	}
	pool.Put(a)
	pool.Put(b)
}

// TestLinkPoolRequiresReseeder pins the constructor's safety check: a
// pool over a channel without ReseedNoise must panic at first checkout
// rather than silently correlate noise streams.
func TestLinkPoolRequiresReseeder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get over a non-reseedable Channel did not panic")
		}
	}()
	pool := NewLinkPool(func() FeatureLink { return DefaultFeatureLink(Clean{}) })
	pool.Get()
}

// TestLinkPoolCheckoutZeroAllocs pins the steady-state cost of the
// lock-free channel stage at the channel layer: a warm Get → SendSeeded →
// Put cycle performs zero heap allocations. (The serve-path pin in core
// covers the same property end to end.)
func TestLinkPoolCheckoutZeroAllocs(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	const dims = 96
	flat := poolTestPayload(dims, 9)
	dst := make([]float64, dims)
	pool := NewLinkPool(poolTestLink)
	crossing := func() {
		inst := pool.Get()
		inst.SendSeeded(123, dst, flat)
		pool.Put(inst)
	}
	for i := 0; i < 8; i++ {
		crossing() // warm the instance's scratch to its high-water mark
	}
	if allocs := testing.AllocsPerRun(100, crossing); allocs != 0 {
		t.Fatalf("warm pooled crossing allocates %v times, want 0", allocs)
	}
}

// TestLinkPoolConcurrentCrossings hammers one pool from many goroutines
// under the race detector and checks every crossing still reproduces the
// serialized reference bytes for its seed.
func TestLinkPoolConcurrentCrossings(t *testing.T) {
	const (
		dims       = 48
		goroutines = 8
		perG       = 40
	)
	flat := poolTestPayload(dims, 21)

	// Reference bytes per seed, drawn serially.
	shared := poolTestLink()
	var ts TxScratch
	want := make(map[uint64][]float64)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			seed := uint64(g*1000 + i)
			shared.Ch.(NoiseReseeder).ReseedNoise(seed)
			dst := make([]float64, dims)
			shared.SendFlatScratch(&ts, dst, flat)
			want[seed] = dst
		}
	}

	pool := NewLinkPool(poolTestLink)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]float64, dims)
			for i := 0; i < perG; i++ {
				seed := uint64(g*1000 + i)
				inst := pool.Get()
				inst.SendSeeded(seed, dst, flat)
				pool.Put(inst)
				for j := range dst {
					if dst[j] != want[seed][j] {
						errs <- "concurrent pooled crossing diverged from serialized reference"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
