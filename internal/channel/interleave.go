package channel

// Interleaver is a block interleaver: bits are written row-wise into a
// Depth x width matrix and read column-wise, spreading burst errors (deep
// fades, erasure clusters) across many codewords so the channel code sees
// isolated errors it can correct.
type Interleaver struct {
	// Depth is the number of rows; bursts up to Depth bits apart land in
	// different codewords. Depth <= 1 disables interleaving.
	Depth int
}

// Interleave permutes bits. The output has the same length; a trailing
// partial block passes through unpermuted.
func (iv Interleaver) Interleave(bits []bool) []bool {
	return iv.permute(bits, false)
}

// Deinterleave inverts Interleave.
func (iv Interleaver) Deinterleave(bits []bool) []bool {
	return iv.permute(bits, true)
}

// permute applies the block permutation (or its inverse).
func (iv Interleaver) permute(bits []bool, inverse bool) []bool {
	depth := iv.Depth
	out := make([]bool, len(bits))
	if depth <= 1 {
		copy(out, bits)
		return out
	}
	width := len(bits) / depth
	block := width * depth
	for i := 0; i < block; i++ {
		// Row-wise index i = r*width + c maps to column-wise j = c*depth + r.
		r, c := i/width, i%width
		j := c*depth + r
		if inverse {
			out[i] = bits[j]
		} else {
			out[j] = bits[i]
		}
	}
	copy(out[block:], bits[block:])
	return out
}

// InterleavedCode wraps a channel code with block interleaving applied to
// its coded bits.
type InterleavedCode struct {
	Inner Code
	IV    Interleaver
}

var _ Code = InterleavedCode{}

// Name implements Code.
func (c InterleavedCode) Name() string { return c.Inner.Name() + "+ilv" }

// Rate implements Code.
func (c InterleavedCode) Rate() float64 { return c.Inner.Rate() }

// Encode implements Code.
func (c InterleavedCode) Encode(bits []bool) []bool {
	return c.IV.Interleave(c.Inner.Encode(bits))
}

// Decode implements Code.
func (c InterleavedCode) Decode(coded []bool) []bool {
	return c.Inner.Decode(c.IV.Deinterleave(coded))
}
