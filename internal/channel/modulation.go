package channel

import "math"

// Modulation maps bit streams to complex baseband symbols and back (hard
// decision). All modulations are normalized to unit average symbol energy.
type Modulation interface {
	// Name identifies the modulation in experiment output.
	Name() string
	// BitsPerSymbol returns the number of bits each symbol carries.
	BitsPerSymbol() int
	// Modulate maps bits to symbols. Bit streams are zero-padded to a
	// multiple of BitsPerSymbol.
	Modulate(bits []bool) []complex128
	// Demodulate maps symbols back to bits by nearest-constellation-point
	// decision.
	Demodulate(symbols []complex128) []bool
}

// BPSK is binary phase-shift keying: one bit per real symbol.
type BPSK struct{}

var _ Modulation = BPSK{}

// Name implements Modulation.
func (BPSK) Name() string { return "bpsk" }

// BitsPerSymbol implements Modulation.
func (BPSK) BitsPerSymbol() int { return 1 }

// Modulate implements Modulation.
func (m BPSK) Modulate(bits []bool) []complex128 {
	return m.ModulateTo(make([]complex128, 0, len(bits)), bits)
}

// ModulateTo implements the allocation-free fast path.
func (BPSK) ModulateTo(dst []complex128, bits []bool) []complex128 {
	for _, b := range bits {
		if b {
			dst = append(dst, complex(1, 0))
		} else {
			dst = append(dst, complex(-1, 0))
		}
	}
	return dst
}

// Demodulate implements Modulation.
func (m BPSK) Demodulate(symbols []complex128) []bool {
	return m.DemodulateTo(make([]bool, 0, len(symbols)), symbols)
}

// DemodulateTo implements the allocation-free fast path.
func (BPSK) DemodulateTo(dst []bool, symbols []complex128) []bool {
	for _, s := range symbols {
		dst = append(dst, real(s) >= 0)
	}
	return dst
}

// QPSK is quadrature phase-shift keying: two Gray-coded bits per symbol.
type QPSK struct{}

var _ Modulation = QPSK{}

// Name implements Modulation.
func (QPSK) Name() string { return "qpsk" }

// BitsPerSymbol implements Modulation.
func (QPSK) BitsPerSymbol() int { return 2 }

// qpskAmp normalizes unit average energy: each I/Q component is ±1/√2.
var qpskAmp = 1 / math.Sqrt2

// Modulate implements Modulation.
func (m QPSK) Modulate(bits []bool) []complex128 {
	return m.ModulateTo(make([]complex128, 0, (len(bits)+1)/2), bits)
}

// ModulateTo implements the allocation-free fast path.
func (QPSK) ModulateTo(dst []complex128, bits []bool) []complex128 {
	n := (len(bits) + 1) / 2
	for i := 0; i < n; i++ {
		b0, b1 := false, false
		if 2*i < len(bits) {
			b0 = bits[2*i]
		}
		if 2*i+1 < len(bits) {
			b1 = bits[2*i+1]
		}
		re, im := -qpskAmp, -qpskAmp
		if b0 {
			re = qpskAmp
		}
		if b1 {
			im = qpskAmp
		}
		dst = append(dst, complex(re, im))
	}
	return dst
}

// Demodulate implements Modulation.
func (m QPSK) Demodulate(symbols []complex128) []bool {
	return m.DemodulateTo(make([]bool, 0, 2*len(symbols)), symbols)
}

// DemodulateTo implements the allocation-free fast path.
func (QPSK) DemodulateTo(dst []bool, symbols []complex128) []bool {
	for _, s := range symbols {
		dst = append(dst, real(s) >= 0, imag(s) >= 0)
	}
	return dst
}

// QAM16 is 16-ary quadrature amplitude modulation with Gray coding: four
// bits per symbol, two per axis.
type QAM16 struct{}

var _ Modulation = QAM16{}

// Name implements Modulation.
func (QAM16) Name() string { return "16qam" }

// BitsPerSymbol implements Modulation.
func (QAM16) BitsPerSymbol() int { return 4 }

// qam16Amp normalizes average symbol energy to 1 for levels {±1, ±3}:
// E = 2 * mean{1,9} = 10, so divide by √10.
var qam16Amp = 1 / math.Sqrt(10)

// qam16Level maps two Gray-coded bits to an axis level.
func qam16Level(b0, b1 bool) float64 {
	// Gray mapping: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3.
	switch {
	case !b0 && !b1:
		return -3
	case !b0 && b1:
		return -1
	case b0 && b1:
		return +1
	default:
		return +3
	}
}

// qam16Bits inverts qam16Level by nearest level.
func qam16Bits(v float64) (bool, bool) {
	switch {
	case v < -2:
		return false, false
	case v < 0:
		return false, true
	case v < 2:
		return true, true
	default:
		return true, false
	}
}

// Modulate implements Modulation.
func (m QAM16) Modulate(bits []bool) []complex128 {
	return m.ModulateTo(make([]complex128, 0, (len(bits)+3)/4), bits)
}

// ModulateTo implements the allocation-free fast path.
func (QAM16) ModulateTo(dst []complex128, bits []bool) []complex128 {
	n := (len(bits) + 3) / 4
	get := func(i int) bool {
		if i < len(bits) {
			return bits[i]
		}
		return false
	}
	for i := 0; i < n; i++ {
		re := qam16Level(get(4*i), get(4*i+1))
		im := qam16Level(get(4*i+2), get(4*i+3))
		dst = append(dst, complex(re*qam16Amp, im*qam16Amp))
	}
	return dst
}

// Demodulate implements Modulation.
func (m QAM16) Demodulate(symbols []complex128) []bool {
	return m.DemodulateTo(make([]bool, 0, 4*len(symbols)), symbols)
}

// DemodulateTo implements the allocation-free fast path.
func (QAM16) DemodulateTo(dst []bool, symbols []complex128) []bool {
	for _, s := range symbols {
		b0, b1 := qam16Bits(real(s) / qam16Amp)
		b2, b3 := qam16Bits(imag(s) / qam16Amp)
		dst = append(dst, b0, b1, b2, b3)
	}
	return dst
}
