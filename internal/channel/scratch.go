package channel

// This file implements the allocation-free transmit path: a TxScratch of
// reusable stage buffers and optional append-style fast-path interfaces
// (EncodeTo/DecodeTo, ModulateTo/DemodulateTo, TransmitTo) that the stock
// codes, modulations and channels implement. Every *To method appends to
// the destination it is given and returns the result, exactly like the
// built-in append; the plain interface methods delegate to the *To
// variants with a fresh buffer, so both paths share one implementation and
// are bit-identical by construction. Exotic implementations that lack the
// fast path simply fall back to their allocating methods.

// TxScratch holds the per-stage buffers of one feature transmission. Reuse
// a TxScratch across transmissions (serialized by the caller — the buffers
// are not safe for concurrent use) and the steady-state channel path stops
// allocating: each buffer reaches its high-water mark after the first few
// messages.
type TxScratch struct {
	info, coded, codedRx, infoRx []bool
	symbols, received            []complex128
}

// codeTo is the allocation-free fast path of a Code.
type codeTo interface {
	// EncodeTo appends the coded bits for bits to dst and returns it.
	EncodeTo(dst, bits []bool) []bool
	// DecodeTo appends the decoded bits for coded to dst and returns it.
	DecodeTo(dst, coded []bool) []bool
}

// modTo is the allocation-free fast path of a Modulation.
type modTo interface {
	// ModulateTo appends the symbols for bits to dst and returns it.
	ModulateTo(dst []complex128, bits []bool) []complex128
	// DemodulateTo appends the bits for symbols to dst and returns it.
	DemodulateTo(dst []bool, symbols []complex128) []bool
}

// chTo is the allocation-free fast path of a Channel.
type chTo interface {
	// TransmitTo appends the received symbols to dst and returns it,
	// consuming the channel's noise RNG exactly like Transmit.
	TransmitTo(dst, symbols []complex128) []complex128
}

// codeEncode dispatches to the fast path when the code has one.
func codeEncode(c Code, dst, bits []bool) []bool {
	if ct, ok := c.(codeTo); ok {
		return ct.EncodeTo(dst, bits)
	}
	return c.Encode(bits)
}

// codeDecode dispatches to the fast path when the code has one.
func codeDecode(c Code, dst, coded []bool) []bool {
	if ct, ok := c.(codeTo); ok {
		return ct.DecodeTo(dst, coded)
	}
	return c.Decode(coded)
}

// modulate dispatches to the fast path when the modulation has one.
func modulate(m Modulation, dst []complex128, bits []bool) []complex128 {
	if mt, ok := m.(modTo); ok {
		return mt.ModulateTo(dst, bits)
	}
	return m.Modulate(bits)
}

// demodulate dispatches to the fast path when the modulation has one.
func demodulate(m Modulation, dst []bool, symbols []complex128) []bool {
	if mt, ok := m.(modTo); ok {
		return mt.DemodulateTo(dst, symbols)
	}
	return m.Demodulate(symbols)
}

// transmit dispatches to the fast path when the channel has one.
func transmit(c Channel, dst, symbols []complex128) []complex128 {
	if ct, ok := c.(chTo); ok {
		return ct.TransmitTo(dst, symbols)
	}
	return c.Transmit(symbols)
}
