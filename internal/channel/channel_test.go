package channel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func randomBits(rng *mat.RNG, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < 0.5
	}
	return out
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := mat.NewRNG(1)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 100} {
		bits := randomBits(rng, n)
		got := UnpackBits(PackBits(bits), n)
		if BitErrors(bits, got) != 0 {
			t.Fatalf("pack/unpack round trip failed for n=%d", n)
		}
	}
}

func TestUnpackPanicsOnOverrun(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UnpackBits([]byte{0xff}, 9)
}

func TestBitErrors(t *testing.T) {
	a := []bool{true, false, true}
	b := []bool{true, true, true}
	if BitErrors(a, b) != 1 {
		t.Fatal("BitErrors miscounted")
	}
	if BitErrors(a, a[:2]) != 1 {
		t.Fatal("length difference should count as errors")
	}
	if BitErrors(nil, nil) != 0 {
		t.Fatal("empty comparison should be 0")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	bits := BytesToBits([]byte("123456789"))
	if got := CRC16(bits); got != 0x29B1 {
		t.Fatalf("CRC16 = %#x, want 0x29B1", got)
	}
}

func TestCRCDetectsChange(t *testing.T) {
	rng := mat.NewRNG(2)
	bits := randomBits(rng, 128)
	orig := CRC16(bits)
	bits[17] = !bits[17]
	if CRC16(bits) == orig {
		t.Fatal("single bit flip not detected")
	}
}

func TestQuantizerRoundTripError(t *testing.T) {
	q := Quantizer{Bits: 6, Lo: -1, Hi: 1}
	rng := mat.NewRNG(3)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 2*rng.Float64() - 1
	}
	got := q.Decode(q.Encode(vals))
	if len(got) != len(vals) {
		t.Fatalf("decode length %d, want %d", len(got), len(vals))
	}
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > q.StepSize() {
			t.Fatalf("quantization error %v exceeds step %v", math.Abs(got[i]-vals[i]), q.StepSize())
		}
	}
}

func TestQuantizerClamps(t *testing.T) {
	q := Quantizer{Bits: 4, Lo: -1, Hi: 1}
	got := q.Decode(q.Encode([]float64{-5, 5}))
	if got[0] != -1 || got[1] != 1 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestQuantizerBitsBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Bits=0")
		}
	}()
	Quantizer{Bits: 0, Lo: 0, Hi: 1}.Encode([]float64{0.5})
}

func TestCodesRoundTripClean(t *testing.T) {
	rng := mat.NewRNG(4)
	for _, code := range []Code{Identity{}, Repetition{N: 3}, Repetition{N: 5}, Hamming74{}} {
		bits := randomBits(rng, 64)
		decoded := code.Decode(code.Encode(bits))
		if len(decoded) < len(bits) {
			t.Fatalf("%s: decoded shorter than input", code.Name())
		}
		if BitErrors(bits, decoded[:len(bits)]) != 0 {
			t.Fatalf("%s: clean round trip corrupted bits", code.Name())
		}
		if r := code.Rate(); r <= 0 || r > 1 {
			t.Fatalf("%s: rate %v out of (0,1]", code.Name(), r)
		}
	}
}

func TestHamming74CorrectsSingleErrors(t *testing.T) {
	rng := mat.NewRNG(5)
	code := Hamming74{}
	bits := randomBits(rng, 64)
	coded := code.Encode(bits)
	// Flip exactly one bit in every 7-bit block.
	for blk := 0; blk*7 < len(coded); blk++ {
		pos := blk*7 + rng.Intn(7)
		coded[pos] = !coded[pos]
	}
	decoded := code.Decode(coded)
	if BitErrors(bits, decoded[:len(bits)]) != 0 {
		t.Fatal("Hamming74 failed to correct single errors per block")
	}
}

func TestRepetitionCorrectsMinorityErrors(t *testing.T) {
	code := Repetition{N: 3}
	bits := []bool{true, false, true, true}
	coded := code.Encode(bits)
	coded[0] = !coded[0] // one of three copies
	coded[5] = !coded[5]
	decoded := code.Decode(coded)
	if BitErrors(bits, decoded) != 0 {
		t.Fatal("rep3 failed to correct single flips")
	}
}

func TestModulationsRoundTripClean(t *testing.T) {
	rng := mat.NewRNG(6)
	for _, mod := range []Modulation{BPSK{}, QPSK{}, QAM16{}} {
		n := 4 * 12 // multiple of every BitsPerSymbol
		bits := randomBits(rng, n)
		rx := mod.Demodulate(mod.Modulate(bits))
		if BitErrors(bits, rx[:n]) != 0 {
			t.Fatalf("%s: clean demodulation corrupted bits", mod.Name())
		}
	}
}

func TestModulationUnitEnergy(t *testing.T) {
	rng := mat.NewRNG(7)
	for _, mod := range []Modulation{BPSK{}, QPSK{}, QAM16{}} {
		bits := randomBits(rng, 4*256)
		symbols := mod.Modulate(bits)
		e := 0.0
		for _, s := range symbols {
			e += real(s)*real(s) + imag(s)*imag(s)
		}
		e /= float64(len(symbols))
		if math.Abs(e-1) > 0.1 {
			t.Fatalf("%s: mean symbol energy %v, want ~1", mod.Name(), e)
		}
	}
}

func TestAWGNBERDecreasesWithSNR(t *testing.T) {
	rng := mat.NewRNG(8)
	mod := BPSK{}
	bits := randomBits(rng, 20000)
	ber := func(snr float64) float64 {
		ch := &AWGN{SNRdB: snr, Rng: rng.Split()}
		rx := mod.Demodulate(ch.Transmit(mod.Modulate(bits)))
		return float64(BitErrors(bits, rx)) / float64(len(bits))
	}
	low := ber(-2)
	mid := ber(4)
	high := ber(10)
	if !(low > mid && mid > high) {
		t.Fatalf("BER not monotone with SNR: %v %v %v", low, mid, high)
	}
	if high > 1e-3 {
		t.Fatalf("BER at 10 dB BPSK = %v, want < 1e-3", high)
	}
	if low < 0.01 {
		t.Fatalf("BER at -2 dB BPSK = %v, suspiciously low", low)
	}
}

func TestAWGNTheoreticalBER(t *testing.T) {
	// BPSK over AWGN: Pb = Q(sqrt(2*SNR)). At 6 dB, Pb ~ 2.4e-3.
	rng := mat.NewRNG(9)
	bits := randomBits(rng, 200000)
	ch := &AWGN{SNRdB: 6, Rng: rng.Split()}
	mod := BPSK{}
	rx := mod.Demodulate(ch.Transmit(mod.Modulate(bits)))
	got := float64(BitErrors(bits, rx)) / float64(len(bits))
	want := 0.5 * math.Erfc(math.Sqrt(math.Pow(10, 0.6)))
	if got < want/2 || got > want*2 {
		t.Fatalf("BPSK BER at 6 dB = %v, theory %v", got, want)
	}
}

func TestRayleighWorseThanAWGN(t *testing.T) {
	rng := mat.NewRNG(10)
	bits := randomBits(rng, 30000)
	mod := BPSK{}
	awgn := &AWGN{SNRdB: 8, Rng: rng.Split()}
	ray := &Rayleigh{SNRdB: 8, Rng: rng.Split()}
	berA := float64(BitErrors(bits, mod.Demodulate(awgn.Transmit(mod.Modulate(bits))))) / float64(len(bits))
	berR := float64(BitErrors(bits, mod.Demodulate(ray.Transmit(mod.Modulate(bits))))) / float64(len(bits))
	if berR <= berA {
		t.Fatalf("Rayleigh BER %v should exceed AWGN BER %v at equal SNR", berR, berA)
	}
}

func TestErasureRate(t *testing.T) {
	rng := mat.NewRNG(11)
	ch := &Erasure{P: 0.2, Rng: rng.Split()}
	symbols := make([]complex128, 10000)
	for i := range symbols {
		symbols[i] = complex(1, 0)
	}
	rx := ch.Transmit(symbols)
	erased := 0
	for _, s := range rx {
		if s == 0 {
			erased++
		}
	}
	frac := float64(erased) / float64(len(rx))
	if math.Abs(frac-0.2) > 0.03 {
		t.Fatalf("erasure fraction %v, want ~0.2", frac)
	}
}

func TestCleanChannelIdentity(t *testing.T) {
	in := []complex128{1, complex(0, 1), complex(-0.5, 0.5)}
	out := Clean{}.Transmit(in)
	for i := range in {
		if in[i] != out[i] {
			t.Fatal("clean channel altered symbols")
		}
	}
	// Must be a copy, not an alias.
	out[0] = 99
	if in[0] == 99 {
		t.Fatal("clean channel aliased input")
	}
}

func TestFeatureLinkCleanRoundTrip(t *testing.T) {
	link := DefaultFeatureLink(Clean{})
	feats := [][]float64{{0.5, -0.5, 0.25, -0.25}, {0.1, 0.9, -0.9, 0}}
	rx, stats := link.Send(feats, 4)
	if len(rx) != 2 {
		t.Fatalf("rx count = %d", len(rx))
	}
	for i := range feats {
		for j := range feats[i] {
			if math.Abs(rx[i][j]-feats[i][j]) > link.Quant.StepSize() {
				t.Fatalf("clean link error beyond quantization at [%d][%d]", i, j)
			}
		}
	}
	if stats.InfoBits != 2*4*3 {
		t.Fatalf("InfoBits = %d, want 24 (2 tokens x 4 dims x 3 bits)", stats.InfoBits)
	}
	if stats.CodedBits <= stats.InfoBits {
		t.Fatal("Hamming coding should expand the stream")
	}
	if stats.PayloadBytes() != 3 {
		t.Fatalf("PayloadBytes = %d, want 3", stats.PayloadBytes())
	}
}

func TestFeatureLinkNoisePerturbsGracefully(t *testing.T) {
	rng := mat.NewRNG(12)
	link := DefaultFeatureLink(&AWGN{SNRdB: 0, Rng: rng.Split()})
	feats := [][]float64{{0.5, -0.5, 0.25, -0.25}}
	rx, _ := link.Send(feats, 4)
	// Values stay within the quantizer range even under noise.
	for _, v := range rx[0] {
		if v < -1 || v > 1 {
			t.Fatalf("received feature %v outside quantizer range", v)
		}
	}
}

func TestAnalogLinkCleanIsExact(t *testing.T) {
	link := AnalogLink{Ch: Clean{}}
	feats := [][]float64{{0.3, -0.7}, {0.1, 0.2}}
	rx, stats := link.Send(feats, 2)
	for i := range feats {
		for j := range feats[i] {
			if rx[i][j] != feats[i][j] {
				t.Fatal("analog clean transport should be exact")
			}
		}
	}
	if stats.Symbols != 2 {
		t.Fatalf("symbols = %d, want 2 (two dims per symbol)", stats.Symbols)
	}
}

// Property: Hamming(7,4) corrects any single-bit error in any block for
// arbitrary payloads.
func TestHammingQuick(t *testing.T) {
	f := func(seed uint64, flipPos uint8) bool {
		rng := mat.NewRNG(seed)
		bits := randomBits(rng, 32)
		code := Hamming74{}
		coded := code.Encode(bits)
		pos := int(flipPos) % len(coded)
		coded[pos] = !coded[pos]
		decoded := code.Decode(coded)
		return BitErrors(bits, decoded[:len(bits)]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantizer round-trip error never exceeds one step.
func TestQuantizerQuick(t *testing.T) {
	f := func(seed uint64, bitsRaw uint8) bool {
		bits := int(bitsRaw%8) + 1
		q := Quantizer{Bits: bits, Lo: -1, Hi: 1}
		rng := mat.NewRNG(seed)
		vals := make([]float64, 32)
		for i := range vals {
			vals[i] = 2*rng.Float64() - 1
		}
		got := q.Decode(q.Encode(vals))
		for i := range vals {
			if math.Abs(got[i]-vals[i]) > q.StepSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
