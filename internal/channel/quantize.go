package channel

// Quantizer maps bounded float values to fixed-width bit codes and back.
// Semantic feature vectors are tanh-bounded, so [-1,1] with 4-8 bits per
// dimension is the standard configuration.
type Quantizer struct {
	Bits   int     // bits per value; must be in [1,16]
	Lo, Hi float64 // value range; values outside are clamped
}

// DefaultQuantizer quantizes tanh features with 3 bits per dimension: the
// smallest width that costs no measurable codec accuracy (the quantization
// step sits at the denoising-training noise level, which the decoder is
// trained to absorb).
func DefaultQuantizer() Quantizer { return Quantizer{Bits: 3, Lo: -1, Hi: 1} }

// levels returns the number of quantization levels.
func (q Quantizer) levels() int { return 1 << uint(q.Bits) }

// validate panics unless Bits is in [1,16]: the single shared contract
// check every codec entry point (Encode/EncodeTo, Decode/DecodeInto,
// Index/Value) runs before touching the grid.
func (q Quantizer) validate() {
	if q.Bits < 1 || q.Bits > 16 {
		panic("channel: Quantizer.Bits out of range [1,16]")
	}
}

// Index returns the level index v quantizes to: the truncating affine grid
// idx = trunc((v-Lo)/(Hi-Lo) * (levels-1)), with v clamped to [Lo, Hi] and
// the index clamped to the valid range. This is the scale/zero-point
// machinery the int8 kernel tier derives its weight grids from.
func (q Quantizer) Index(v float64) int {
	q.validate()
	return q.index(v, q.levels(), q.Hi-q.Lo)
}

// index is the validation-free grid lookup the hot loops use.
func (q Quantizer) index(v float64, n int, span float64) int {
	if v < q.Lo {
		v = q.Lo
	} else if v > q.Hi {
		v = q.Hi
	}
	idx := int((v - q.Lo) / span * float64(n-1))
	if idx < 0 {
		idx = 0
	} else if idx > n-1 {
		idx = n - 1
	}
	return idx
}

// Value returns the reconstruction value of level idx: Lo + idx*StepSize.
// The index is clamped to the valid level range.
func (q Quantizer) Value(idx int) float64 {
	q.validate()
	n := q.levels()
	if idx < 0 {
		idx = 0
	} else if idx > n-1 {
		idx = n - 1
	}
	return q.value(idx, n, q.Hi-q.Lo)
}

// value is the validation-free reconstruction the hot loops use.
func (q Quantizer) value(idx, n int, span float64) float64 {
	return q.Lo + float64(idx)/float64(n-1)*span
}

// Encode quantizes vals into a bit stream of len(vals)*Bits bits.
func (q Quantizer) Encode(vals []float64) []bool {
	q.validate() // before sizing the buffer: a negative Bits must hit the contract panic
	return q.EncodeTo(make([]bool, 0, len(vals)*q.Bits), vals)
}

// EncodeTo quantizes vals, appending the bit stream to dst and returning
// it: the allocation-free variant of Encode.
func (q Quantizer) EncodeTo(dst []bool, vals []float64) []bool {
	q.validate()
	n := q.levels()
	span := q.Hi - q.Lo
	out := dst
	for _, v := range vals {
		idx := q.index(v, n, span)
		for b := q.Bits - 1; b >= 0; b-- {
			out = append(out, idx&(1<<uint(b)) != 0)
		}
	}
	return out
}

// Decode reconstructs values from a bit stream produced by Encode.
// Trailing bits that do not fill a full code are ignored.
func (q Quantizer) Decode(bits []bool) []float64 {
	q.validate()
	out := make([]float64, len(bits)/q.Bits)
	q.DecodeInto(out, bits)
	return out
}

// DecodeInto reconstructs values from a bit stream produced by Encode into
// dst, returning how many values were written: min(len(dst),
// len(bits)/Bits). Trailing bits that do not fill a full code are ignored.
// It is the allocation-free variant of Decode.
func (q Quantizer) DecodeInto(dst []float64, bits []bool) int {
	q.validate()
	n := q.levels()
	span := q.Hi - q.Lo
	count := len(bits) / q.Bits
	if count > len(dst) {
		count = len(dst)
	}
	for i := 0; i < count; i++ {
		idx := 0
		for b := 0; b < q.Bits; b++ {
			idx <<= 1
			if bits[i*q.Bits+b] {
				idx |= 1
			}
		}
		dst[i] = q.value(idx, n, span)
	}
	return count
}

// StepSize returns the reconstruction step between adjacent levels.
func (q Quantizer) StepSize() float64 {
	return (q.Hi - q.Lo) / float64(q.levels()-1)
}
