package channel

// Code is a forward-error-correction channel code over bit streams.
type Code interface {
	// Name identifies the code in experiment output.
	Name() string
	// Rate returns information bits per coded bit (<= 1).
	Rate() float64
	// Encode maps information bits to coded bits.
	Encode(bits []bool) []bool
	// Decode maps coded bits back to information bits, correcting errors
	// within the code's capability.
	Decode(coded []bool) []bool
}

// Identity is the no-coding passthrough.
type Identity struct{}

var _ Code = Identity{}

// Name implements Code.
func (Identity) Name() string { return "none" }

// Rate implements Code.
func (Identity) Rate() float64 { return 1 }

// Encode implements Code.
func (c Identity) Encode(bits []bool) []bool {
	return c.EncodeTo(make([]bool, 0, len(bits)), bits)
}

// EncodeTo implements the allocation-free fast path.
func (Identity) EncodeTo(dst, bits []bool) []bool {
	return append(dst, bits...)
}

// Decode implements Code.
func (c Identity) Decode(coded []bool) []bool {
	return c.DecodeTo(make([]bool, 0, len(coded)), coded)
}

// DecodeTo implements the allocation-free fast path.
func (Identity) DecodeTo(dst, coded []bool) []bool {
	return append(dst, coded...)
}

// Repetition repeats every bit N times and decodes by majority vote. N must
// be odd and >= 3.
type Repetition struct {
	N int
}

var _ Code = Repetition{}

// Name implements Code.
func (r Repetition) Name() string {
	switch r.N {
	case 3:
		return "rep3"
	case 5:
		return "rep5"
	default:
		return "repN"
	}
}

// Rate implements Code.
func (r Repetition) Rate() float64 { return 1 / float64(r.n()) }

func (r Repetition) n() int {
	if r.N < 3 {
		return 3
	}
	return r.N | 1 // force odd
}

// Encode implements Code.
func (r Repetition) Encode(bits []bool) []bool {
	return r.EncodeTo(make([]bool, 0, len(bits)*r.n()), bits)
}

// EncodeTo implements the allocation-free fast path.
func (r Repetition) EncodeTo(dst, bits []bool) []bool {
	n := r.n()
	for _, b := range bits {
		for i := 0; i < n; i++ {
			dst = append(dst, b)
		}
	}
	return dst
}

// Decode implements Code.
func (r Repetition) Decode(coded []bool) []bool {
	return r.DecodeTo(make([]bool, 0, len(coded)/r.n()), coded)
}

// DecodeTo implements the allocation-free fast path.
func (r Repetition) DecodeTo(dst, coded []bool) []bool {
	n := r.n()
	count := len(coded) / n
	for i := 0; i < count; i++ {
		ones := 0
		for j := 0; j < n; j++ {
			if coded[i*n+j] {
				ones++
			}
		}
		dst = append(dst, ones*2 > n)
	}
	return dst
}

// Hamming74 is the classic (7,4) Hamming code: 4 information bits per
// 7-bit codeword with single-error correction. Information streams are
// zero-padded to a multiple of 4; callers track payload length.
type Hamming74 struct{}

var _ Code = Hamming74{}

// Name implements Code.
func (Hamming74) Name() string { return "hamming74" }

// Rate implements Code.
func (Hamming74) Rate() float64 { return 4.0 / 7.0 }

// Encode implements Code. Codeword layout: p1 p2 d1 p3 d2 d3 d4 with
// parity positions 1, 2 and 4 (1-indexed).
func (c Hamming74) Encode(bits []bool) []bool {
	return c.EncodeTo(make([]bool, 0, (len(bits)+3)/4*7), bits)
}

// EncodeTo implements the allocation-free fast path.
func (Hamming74) EncodeTo(dst, bits []bool) []bool {
	blocks := (len(bits) + 3) / 4
	var d [4]bool
	for blk := 0; blk < blocks; blk++ {
		for i := 0; i < 4; i++ {
			idx := blk*4 + i
			if idx < len(bits) {
				d[i] = bits[idx]
			} else {
				d[i] = false
			}
		}
		p1 := d[0] != d[1] != d[3]
		p2 := d[0] != d[2] != d[3]
		p3 := d[1] != d[2] != d[3]
		dst = append(dst, p1, p2, d[0], p3, d[1], d[2], d[3])
	}
	return dst
}

// Decode implements Code, correcting at most one bit error per 7-bit block.
func (c Hamming74) Decode(coded []bool) []bool {
	return c.DecodeTo(make([]bool, 0, len(coded)/7*4), coded)
}

// DecodeTo implements the allocation-free fast path.
func (Hamming74) DecodeTo(dst, coded []bool) []bool {
	blocks := len(coded) / 7
	var w [7]bool
	for blk := 0; blk < blocks; blk++ {
		copy(w[:], coded[blk*7:blk*7+7])
		// Syndrome bits (1-indexed positions).
		s1 := w[0] != w[2] != w[4] != w[6]
		s2 := w[1] != w[2] != w[5] != w[6]
		s3 := w[3] != w[4] != w[5] != w[6]
		syndrome := 0
		if s1 {
			syndrome += 1
		}
		if s2 {
			syndrome += 2
		}
		if s3 {
			syndrome += 4
		}
		if syndrome != 0 {
			w[syndrome-1] = !w[syndrome-1]
		}
		dst = append(dst, w[2], w[4], w[5], w[6])
	}
	return dst
}
