package channel

import (
	"math"

	"repro/internal/mat"
)

// Channel distorts a symbol stream as a physical medium would.
type Channel interface {
	// Name identifies the channel in experiment output.
	Name() string
	// Transmit returns the received symbols for the given sent symbols.
	Transmit(symbols []complex128) []complex128
}

// Clean is a distortion-free channel, useful as a control condition.
type Clean struct{}

var _ Channel = Clean{}

// Name implements Channel.
func (Clean) Name() string { return "clean" }

// Transmit implements Channel.
func (c Clean) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// TransmitTo implements the allocation-free fast path.
func (Clean) TransmitTo(dst, symbols []complex128) []complex128 {
	return append(dst, symbols...)
}

// AWGN adds complex white Gaussian noise at a configured signal-to-noise
// ratio, assuming unit average symbol energy.
type AWGN struct {
	// SNRdB is the per-symbol signal-to-noise ratio in decibels.
	SNRdB float64
	// Rng drives the noise; it must be non-nil.
	Rng *mat.RNG

	// sigma caches NoiseSigma() for the current SNRdB (the pow+sqrt is
	// measurable per message), and noise is the reusable block-draw buffer;
	// both make TransmitTo stateful, which is fine because the Rng field
	// already makes a channel single-goroutine.
	sigmaFor float64
	sigma    float64
	sigmaOK  bool
	noise    []float64
}

var _ Channel = (*AWGN)(nil)

// Name implements Channel.
func (c *AWGN) Name() string { return "awgn" }

// NoiseSigma returns the per-component noise standard deviation implied by
// SNRdB for unit-energy symbols.
func (c *AWGN) NoiseSigma() float64 {
	noisePower := math.Pow(10, -c.SNRdB/10)
	return math.Sqrt(noisePower / 2)
}

// noiseSigmaCached returns NoiseSigma(), recomputing only when SNRdB
// changed since the last call.
func (c *AWGN) noiseSigmaCached() float64 {
	if !c.sigmaOK || c.sigmaFor != c.SNRdB {
		c.sigma = c.NoiseSigma()
		c.sigmaFor = c.SNRdB
		c.sigmaOK = true
	}
	return c.sigma
}

// Transmit implements Channel.
func (c *AWGN) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// ReseedNoise implements NoiseReseeder: the next Transmit draws the
// exact noise stream a freshly constructed channel with this seed would.
// The cached sigma and the warm noise buffer survive — they carry no
// stream state.
func (c *AWGN) ReseedNoise(seed uint64) { c.Rng.Reseed(seed) }

// noiseBlock fills and returns c's reusable buffer with n normal deviates
// drawn as one block: bit-identical to n scalar NormFloat64 calls
// (mat.RNG.NormFloat64Block), amortizing per-draw call overhead across the
// whole message.
func (c *AWGN) noiseBlock(n int) []float64 {
	if cap(c.noise) < n {
		c.noise = make([]float64, n)
	}
	nz := c.noise[:n]
	c.Rng.NormFloat64Block(nz)
	return nz
}

// TransmitTo implements the allocation-free fast path; the noise RNG is
// consumed in exactly the Transmit order (the block draw reproduces the
// scalar sequence bit for bit).
func (c *AWGN) TransmitTo(dst, symbols []complex128) []complex128 {
	sigma := c.noiseSigmaCached()
	nz := c.noiseBlock(2 * len(symbols))
	for i, s := range symbols {
		dst = append(dst, s+complex(sigma*nz[2*i], sigma*nz[2*i+1]))
	}
	return dst
}

// Rayleigh models flat Rayleigh fading with AWGN and perfect channel state
// information at the receiver: y = h*x + n, equalized as y/h.
type Rayleigh struct {
	// SNRdB is the average per-symbol signal-to-noise ratio in decibels.
	SNRdB float64
	// BlockLen is the number of symbols sharing one fading coefficient
	// (coherence block); 0 means per-symbol fading.
	BlockLen int
	// Rng drives fading and noise; it must be non-nil.
	Rng *mat.RNG

	// sigma cache + block-draw buffer, as in AWGN.
	sigmaFor float64
	sigma    float64
	sigmaOK  bool
	noise    []float64
}

var _ Channel = (*Rayleigh)(nil)

// Name implements Channel.
func (c *Rayleigh) Name() string { return "rayleigh" }

// noiseSigmaCached returns the per-component noise sigma, recomputing only
// when SNRdB changed since the last call.
func (c *Rayleigh) noiseSigmaCached() float64 {
	if !c.sigmaOK || c.sigmaFor != c.SNRdB {
		noisePower := math.Pow(10, -c.SNRdB/10)
		c.sigma = math.Sqrt(noisePower / 2)
		c.sigmaFor = c.SNRdB
		c.sigmaOK = true
	}
	return c.sigma
}

// Transmit implements Channel.
func (c *Rayleigh) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// ReseedNoise implements NoiseReseeder: fading and noise draws restart
// from the state a fresh channel with this seed would have.
func (c *Rayleigh) ReseedNoise(seed uint64) { c.Rng.Reseed(seed) }

// TransmitTo implements the allocation-free fast path; fading and noise
// draws consume the RNG in exactly the Transmit order. Per-symbol fading
// (the default) draws all four deviates per symbol — h_re, h_im, n_re,
// n_im — as one block per message, bit-identical to the scalar sequence;
// coherence blocks larger than one keep the scalar draw pattern.
func (c *Rayleigh) TransmitTo(dst, symbols []complex128) []complex128 {
	sigma := c.noiseSigmaCached()
	block := c.BlockLen
	if block <= 0 {
		block = 1
	}
	if block == 1 {
		need := 4 * len(symbols)
		if cap(c.noise) < need {
			c.noise = make([]float64, need)
		}
		nz := c.noise[:need]
		c.Rng.NormFloat64Block(nz)
		for i, s := range symbols {
			h := complex(nz[4*i]/math.Sqrt2, nz[4*i+1]/math.Sqrt2)
			// Avoid pathological division in deep fades.
			if abs := math.Hypot(real(h), imag(h)); abs < 1e-3 {
				h = complex(1e-3, 0)
			}
			n := complex(sigma*nz[4*i+2], sigma*nz[4*i+3])
			dst = append(dst, (h*s+n)/h)
		}
		return dst
	}
	var h complex128
	for i, s := range symbols {
		if i%block == 0 {
			// h ~ CN(0,1): unit average power fade.
			h = complex(c.Rng.NormFloat64()/math.Sqrt2, c.Rng.NormFloat64()/math.Sqrt2)
			// Avoid pathological division in deep fades.
			if abs := math.Hypot(real(h), imag(h)); abs < 1e-3 {
				h = complex(1e-3, 0)
			}
		}
		n := complex(sigma*c.Rng.NormFloat64(), sigma*c.Rng.NormFloat64())
		dst = append(dst, (h*s+n)/h)
	}
	return dst
}

// Erasure zeroes each symbol independently with probability P, modeling
// deep packet-level losses.
type Erasure struct {
	// P is the per-symbol erasure probability in [0,1].
	P float64
	// Rng drives erasures; it must be non-nil.
	Rng *mat.RNG
}

var _ Channel = (*Erasure)(nil)

// Name implements Channel.
func (c *Erasure) Name() string { return "erasure" }

// Transmit implements Channel.
func (c *Erasure) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// ReseedNoise implements NoiseReseeder: erasure draws restart from the
// state a fresh channel with this seed would have.
func (c *Erasure) ReseedNoise(seed uint64) { c.Rng.Reseed(seed) }

// TransmitTo implements the allocation-free fast path; erasure draws
// consume the RNG in exactly the Transmit order.
func (c *Erasure) TransmitTo(dst, symbols []complex128) []complex128 {
	for _, s := range symbols {
		if c.Rng.Float64() < c.P {
			dst = append(dst, 0)
		} else {
			dst = append(dst, s)
		}
	}
	return dst
}
