package channel

import (
	"math"

	"repro/internal/mat"
)

// Channel distorts a symbol stream as a physical medium would.
type Channel interface {
	// Name identifies the channel in experiment output.
	Name() string
	// Transmit returns the received symbols for the given sent symbols.
	Transmit(symbols []complex128) []complex128
}

// Clean is a distortion-free channel, useful as a control condition.
type Clean struct{}

var _ Channel = Clean{}

// Name implements Channel.
func (Clean) Name() string { return "clean" }

// Transmit implements Channel.
func (c Clean) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// TransmitTo implements the allocation-free fast path.
func (Clean) TransmitTo(dst, symbols []complex128) []complex128 {
	return append(dst, symbols...)
}

// AWGN adds complex white Gaussian noise at a configured signal-to-noise
// ratio, assuming unit average symbol energy.
type AWGN struct {
	// SNRdB is the per-symbol signal-to-noise ratio in decibels.
	SNRdB float64
	// Rng drives the noise; it must be non-nil.
	Rng *mat.RNG
}

var _ Channel = (*AWGN)(nil)

// Name implements Channel.
func (c *AWGN) Name() string { return "awgn" }

// NoiseSigma returns the per-component noise standard deviation implied by
// SNRdB for unit-energy symbols.
func (c *AWGN) NoiseSigma() float64 {
	noisePower := math.Pow(10, -c.SNRdB/10)
	return math.Sqrt(noisePower / 2)
}

// Transmit implements Channel.
func (c *AWGN) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// TransmitTo implements the allocation-free fast path; the noise RNG is
// consumed in exactly the Transmit order.
func (c *AWGN) TransmitTo(dst, symbols []complex128) []complex128 {
	sigma := c.NoiseSigma()
	for _, s := range symbols {
		dst = append(dst, s+complex(sigma*c.Rng.NormFloat64(), sigma*c.Rng.NormFloat64()))
	}
	return dst
}

// Rayleigh models flat Rayleigh fading with AWGN and perfect channel state
// information at the receiver: y = h*x + n, equalized as y/h.
type Rayleigh struct {
	// SNRdB is the average per-symbol signal-to-noise ratio in decibels.
	SNRdB float64
	// BlockLen is the number of symbols sharing one fading coefficient
	// (coherence block); 0 means per-symbol fading.
	BlockLen int
	// Rng drives fading and noise; it must be non-nil.
	Rng *mat.RNG
}

var _ Channel = (*Rayleigh)(nil)

// Name implements Channel.
func (c *Rayleigh) Name() string { return "rayleigh" }

// Transmit implements Channel.
func (c *Rayleigh) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// TransmitTo implements the allocation-free fast path; fading and noise
// draws consume the RNG in exactly the Transmit order.
func (c *Rayleigh) TransmitTo(dst, symbols []complex128) []complex128 {
	noisePower := math.Pow(10, -c.SNRdB/10)
	sigma := math.Sqrt(noisePower / 2)
	block := c.BlockLen
	if block <= 0 {
		block = 1
	}
	var h complex128
	for i, s := range symbols {
		if i%block == 0 {
			// h ~ CN(0,1): unit average power fade.
			h = complex(c.Rng.NormFloat64()/math.Sqrt2, c.Rng.NormFloat64()/math.Sqrt2)
			// Avoid pathological division in deep fades.
			if abs := math.Hypot(real(h), imag(h)); abs < 1e-3 {
				h = complex(1e-3, 0)
			}
		}
		n := complex(sigma*c.Rng.NormFloat64(), sigma*c.Rng.NormFloat64())
		dst = append(dst, (h*s+n)/h)
	}
	return dst
}

// Erasure zeroes each symbol independently with probability P, modeling
// deep packet-level losses.
type Erasure struct {
	// P is the per-symbol erasure probability in [0,1].
	P float64
	// Rng drives erasures; it must be non-nil.
	Rng *mat.RNG
}

var _ Channel = (*Erasure)(nil)

// Name implements Channel.
func (c *Erasure) Name() string { return "erasure" }

// Transmit implements Channel.
func (c *Erasure) Transmit(symbols []complex128) []complex128 {
	return c.TransmitTo(make([]complex128, 0, len(symbols)), symbols)
}

// TransmitTo implements the allocation-free fast path; erasure draws
// consume the RNG in exactly the Transmit order.
func (c *Erasure) TransmitTo(dst, symbols []complex128) []complex128 {
	for _, s := range symbols {
		if c.Rng.Float64() < c.P {
			dst = append(dst, 0)
		} else {
			dst = append(dst, s)
		}
	}
	return dst
}
