package channel

import (
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestInterleaveRoundTrip(t *testing.T) {
	rng := mat.NewRNG(1)
	for _, depth := range []int{0, 1, 2, 7, 8} {
		for _, n := range []int{0, 1, 7, 8, 56, 57, 100} {
			bits := randomBits(rng, n)
			iv := Interleaver{Depth: depth}
			got := iv.Deinterleave(iv.Interleave(bits))
			if BitErrors(bits, got) != 0 {
				t.Fatalf("depth %d n %d: round trip corrupted", depth, n)
			}
		}
	}
}

func TestInterleaveActuallyPermutes(t *testing.T) {
	bits := make([]bool, 16)
	bits[0], bits[1] = true, true // adjacent pair
	iv := Interleaver{Depth: 4}
	out := iv.Interleave(bits)
	// The two set bits must no longer be adjacent.
	positions := []int{}
	for i, b := range out {
		if b {
			positions = append(positions, i)
		}
	}
	if len(positions) != 2 {
		t.Fatalf("bit count changed: %v", positions)
	}
	if positions[1]-positions[0] == 1 {
		t.Fatal("interleaver left adjacent bits adjacent")
	}
}

func TestInterleavedCodeBreaksBursts(t *testing.T) {
	// A burst of 3 consecutive coded-bit errors defeats plain Hamming(7,4)
	// (two errors can land in one block) but not the interleaved version
	// with sufficient depth.
	rng := mat.NewRNG(2)
	info := randomBits(rng, 64)

	plain := Hamming74{}
	ilv := InterleavedCode{Inner: Hamming74{}, IV: Interleaver{Depth: 16}}

	burstAt := func(coded []bool, start int) []bool {
		out := make([]bool, len(coded))
		copy(out, coded)
		for i := start; i < start+3 && i < len(out); i++ {
			out[i] = !out[i]
		}
		return out
	}

	plainFail, ilvFail := 0, 0
	for start := 0; start+3 <= 64; start++ {
		if BitErrors(info, plain.Decode(burstAt(plain.Encode(info), start))[:64]) > 0 {
			plainFail++
		}
		if BitErrors(info, ilv.Decode(burstAt(ilv.Encode(info), start))[:64]) > 0 {
			ilvFail++
		}
	}
	if ilvFail >= plainFail {
		t.Fatalf("interleaving did not help bursts: plain %d fails, interleaved %d", plainFail, ilvFail)
	}
	if ilvFail != 0 {
		t.Fatalf("depth-16 interleaving should absorb all 3-bit bursts, got %d failures", ilvFail)
	}
}

func TestInterleavedCodeMetadata(t *testing.T) {
	c := InterleavedCode{Inner: Hamming74{}, IV: Interleaver{Depth: 8}}
	if c.Name() != "hamming74+ilv" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Rate() != (Hamming74{}).Rate() {
		t.Fatal("interleaving must not change the code rate")
	}
}

// Property: interleave/deinterleave is a bijection for arbitrary sizes.
func TestInterleaveQuick(t *testing.T) {
	f := func(seed uint64, depthRaw, nRaw uint8) bool {
		depth := int(depthRaw%12) + 1
		n := int(nRaw)
		rng := mat.NewRNG(seed)
		bits := randomBits(rng, n)
		iv := Interleaver{Depth: depth}
		return BitErrors(bits, iv.Deinterleave(iv.Interleave(bits))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveCodeSelection(t *testing.T) {
	a := AdaptiveCode{}
	if a.ForSNR(15).Name() != "none" {
		t.Fatalf("15 dB -> %s, want none", a.ForSNR(15).Name())
	}
	if a.ForSNR(6).Name() != "hamming74" {
		t.Fatalf("6 dB -> %s, want hamming74", a.ForSNR(6).Name())
	}
	if got := a.ForSNR(-2).Name(); got != "hamming74+rep3" {
		t.Fatalf("-2 dB -> %s, want hamming74+rep3", got)
	}
}

func TestConcatCodeRoundTripAndRate(t *testing.T) {
	rng := mat.NewRNG(77)
	c := AdaptiveCode{}.ForSNR(-5) // hamming + rep3
	bits := randomBits(rng, 64)
	decoded := c.Decode(c.Encode(bits))
	if BitErrors(bits, decoded[:len(bits)]) != 0 {
		t.Fatal("concatenated code corrupted clean bits")
	}
	want := (Hamming74{}).Rate() * (Repetition{N: 3}).Rate()
	if c.Rate() != want {
		t.Fatalf("rate = %v, want %v", c.Rate(), want)
	}
}

func TestAdaptiveCodeLowSNRBeatsUncoded(t *testing.T) {
	rng := mat.NewRNG(78)
	bits := randomBits(rng, 4000)
	mod := BPSK{}
	send := func(c Code) int {
		ch := &AWGN{SNRdB: -2, Rng: rng.Split()}
		coded := c.Encode(bits)
		rx := mod.Demodulate(ch.Transmit(mod.Modulate(coded)))
		return BitErrors(bits, c.Decode(rx[:len(coded)])[:len(bits)])
	}
	heavy := send(AdaptiveCode{}.ForSNR(-2))
	uncoded := send(Identity{})
	if heavy >= uncoded {
		t.Fatalf("heavy code (%d errors) should beat uncoded (%d) at -2 dB", heavy, uncoded)
	}
}
