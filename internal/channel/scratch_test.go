package channel

import (
	"testing"

	"repro/internal/mat"
)

// scratchConfigs cover every stock code/modulation/channel combination the
// fast paths implement, plus composed codes that fall back to the
// allocating path mid-pipeline.
func scratchConfigs() []FeatureLink {
	return []FeatureLink{
		{Quant: DefaultQuantizer(), Code: Hamming74{}, Mod: BPSK{}, Ch: &AWGN{SNRdB: 6, Rng: mat.NewRNG(1)}},
		{Quant: Quantizer{Bits: 4, Lo: -1, Hi: 1}, Code: Identity{}, Mod: QPSK{}, Ch: &AWGN{SNRdB: 0, Rng: mat.NewRNG(2)}},
		{Quant: DefaultQuantizer(), Code: Repetition{N: 3}, Mod: QAM16{}, Ch: &Rayleigh{SNRdB: 10, Rng: mat.NewRNG(3)}},
		{Quant: DefaultQuantizer(), Code: Hamming74{}, Mod: BPSK{}, Ch: Clean{}},
		{Quant: DefaultQuantizer(), Code: Hamming74{}, Mod: BPSK{}, Ch: &Erasure{P: 0.2, Rng: mat.NewRNG(4)}},
		// InterleavedCode has no fast path: exercises the fallback.
		{Quant: DefaultQuantizer(), Code: InterleavedCode{Inner: Hamming74{}, IV: Interleaver{Depth: 4}}, Mod: BPSK{}, Ch: Clean{}},
	}
}

// testFeats builds a deterministic feature batch.
func testFeats(tokens, dim int) [][]float64 {
	rng := mat.NewRNG(42)
	out := make([][]float64, tokens)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = 2*rng.Float64() - 1
		}
		out[i] = v
	}
	return out
}

// TestSendFlatScratchMatchesSend asserts the scratch-reusing transmit path
// is bit-identical to Send for every stock configuration, across repeated
// reuses of one TxScratch (noisy channels are re-seeded so both paths
// consume identical RNG streams).
func TestSendFlatScratchMatchesSend(t *testing.T) {
	const dim = 8
	feats := testFeats(11, dim)
	flat := make([]float64, 0, len(feats)*dim)
	for _, f := range feats {
		flat = append(flat, f...)
	}
	for ci := range scratchConfigs() {
		ts := new(TxScratch)
		for round := 0; round < 3; round++ {
			// Fresh links with identical seeds: one per path.
			plain := scratchConfigs()[ci]
			scratch := scratchConfigs()[ci]
			want, wantStats := plain.Send(feats, dim)
			dst := make([]float64, len(flat))
			gotStats := scratch.SendFlatScratch(ts, dst, flat)
			if gotStats != wantStats {
				t.Fatalf("config %d round %d: stats %+v, want %+v", ci, round, gotStats, wantStats)
			}
			for i := range feats {
				for j := 0; j < dim; j++ {
					if dst[i*dim+j] != want[i][j] {
						t.Fatalf("config %d round %d: value (%d,%d) = %v, want %v",
							ci, round, i, j, dst[i*dim+j], want[i][j])
					}
				}
			}
		}
	}
}

// TestSendFlatScratchZeroAllocs pins the warm scratch transmit path at
// zero heap allocations for the default configuration.
func TestSendFlatScratchZeroAllocs(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	l := FeatureLink{Quant: DefaultQuantizer(), Code: Hamming74{}, Mod: BPSK{}, Ch: &AWGN{SNRdB: 6, Rng: mat.NewRNG(9)}}
	feats := testFeats(9, 8)
	flat := make([]float64, 0, 72)
	for _, f := range feats {
		flat = append(flat, f...)
	}
	dst := make([]float64, len(flat))
	ts := new(TxScratch)
	send := func() { l.SendFlatScratch(ts, dst, flat) }
	send() // warm the stage buffers
	if allocs := testing.AllocsPerRun(100, send); allocs != 0 {
		t.Fatalf("warm SendFlatScratch allocates %v times per call, want 0", allocs)
	}
}
