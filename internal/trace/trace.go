// Package trace generates reproducible communication workloads: users with
// personal idiolects emitting messages whose topics arrive in sticky runs
// with Zipf-distributed domain popularity. Every experiment consumes its
// traffic from here so workload assumptions live in one place.
package trace

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// Request is one message emission by a user.
type Request struct {
	// Seq is the global request index, starting at 0.
	Seq int
	// User is the sending user's name.
	User string
	// Msg is the generated message with ground-truth domain and concepts.
	Msg corpus.Message
}

// Config parameterizes workload generation. Zero fields select defaults.
type Config struct {
	// Users is the number of distinct users (default 8).
	Users int
	// Messages is the total number of requests (default 1000).
	Messages int
	// MeanRunLength is the expected number of consecutive same-domain
	// messages per user (geometric runs, default 12).
	MeanRunLength float64
	// DomainZipfS is the Zipf exponent of domain popularity (default 1.0).
	DomainZipfS float64
	// IdiolectStrength is the per-user idiolect strength in [0,1]
	// (default 0: generic speakers).
	IdiolectStrength float64
	// MinLen and MaxLen override message length bounds when > 0. Short
	// messages are ambiguous: domain-selection experiments use them to
	// create regimes where per-message classification fails and context
	// helps.
	MinLen, MaxLen int
	// FuncProb overrides the function-word probability when > 0. Higher
	// values dilute domain evidence per message.
	FuncProb float64
	// Seed drives all randomness (default 1).
	Seed uint64
}

// withDefaults returns cfg with zero fields replaced.
func (cfg Config) withDefaults() Config {
	if cfg.Users == 0 {
		cfg.Users = 8
	}
	if cfg.Messages == 0 {
		cfg.Messages = 1000
	}
	if cfg.MeanRunLength == 0 {
		cfg.MeanRunLength = 12
	}
	if cfg.DomainZipfS == 0 {
		cfg.DomainZipfS = 1.0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Workload is a generated request stream.
type Workload struct {
	// Requests in emission order.
	Requests []Request
	// Users lists user names in creation order.
	Users []string
	// Idiolects maps user name to idiolect (nil entries mean generic
	// speakers).
	Idiolects map[string]*corpus.Idiolect
}

// DomainCounts returns how many requests carry each true domain.
func (w *Workload) DomainCounts(numDomains int) []int {
	counts := make([]int, numDomains)
	for _, r := range w.Requests {
		counts[r.Msg.DomainIndex]++
	}
	return counts
}

// Generate builds a workload over corp under cfg. It is deterministic
// given cfg.Seed.
func Generate(corp *corpus.Corpus, cfg Config) *Workload {
	cfg = cfg.withDefaults()
	rng := mat.NewRNG(cfg.Seed)
	gen := corpus.NewGenerator(corp, rng.Split())
	if cfg.MinLen > 0 {
		gen.MinLen = cfg.MinLen
	}
	if cfg.MaxLen >= gen.MinLen && cfg.MaxLen > 0 {
		gen.MaxLen = cfg.MaxLen
	} else if cfg.MinLen > gen.MaxLen {
		gen.MaxLen = cfg.MinLen
	}
	if cfg.FuncProb > 0 {
		gen.FuncProb = cfg.FuncProb
	}
	domainZipf := mat.NewZipf(rng.Split(), len(corp.Domains), cfg.DomainZipfS)
	idioRNG := rng.Split()

	w := &Workload{
		Requests:  make([]Request, 0, cfg.Messages),
		Users:     make([]string, 0, cfg.Users),
		Idiolects: make(map[string]*corpus.Idiolect, cfg.Users),
	}
	// Per-user topic state.
	current := make([]int, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		name := fmt.Sprintf("u%02d", u+1)
		w.Users = append(w.Users, name)
		if cfg.IdiolectStrength > 0 {
			w.Idiolects[name] = corpus.NewIdiolect(corp, idioRNG.Split(), cfg.IdiolectStrength)
		} else {
			w.Idiolects[name] = nil
		}
		current[u] = domainZipf.Sample()
	}
	switchProb := 1 / cfg.MeanRunLength
	for i := 0; i < cfg.Messages; i++ {
		u := rng.Intn(cfg.Users)
		if rng.Float64() < switchProb {
			current[u] = domainZipf.Sample()
		}
		name := w.Users[u]
		msg := gen.Message(current[u], w.Idiolects[name])
		w.Requests = append(w.Requests, Request{Seq: i, User: name, Msg: msg})
	}
	return w
}
