// Package trace generates reproducible communication workloads: users with
// personal idiolects emitting messages whose topics arrive in sticky runs
// with Zipf-distributed domain popularity. Every experiment consumes its
// traffic from here so workload assumptions live in one place.
package trace

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// Request is one message emission by a user.
type Request struct {
	// Seq is the global request index, starting at 0.
	Seq int
	// User is the sending user's name.
	User string
	// Cell is the radio cell the user sends from, or -1 when the user has
	// never moved (they stay in their router-assigned home cell).
	Cell int
	// Msg is the generated message with ground-truth domain and concepts.
	Msg corpus.Message
}

// Move is one mobility event: User attaches to Cell before the request at
// Seq is served. A cluster maps cells onto nodes and executes a handover
// for each Move that changes the serving node.
type Move struct {
	Seq  int
	User string
	Cell int
}

// Config parameterizes workload generation. Zero fields select defaults.
type Config struct {
	// Users is the number of distinct users (default 8).
	Users int
	// Messages is the total number of requests (default 1000).
	Messages int
	// MeanRunLength is the expected number of consecutive same-domain
	// messages per user (geometric runs, default 12).
	MeanRunLength float64
	// DomainZipfS is the Zipf exponent of domain popularity (default 1.0).
	DomainZipfS float64
	// IdiolectStrength is the per-user idiolect strength in [0,1]
	// (default 0: generic speakers).
	IdiolectStrength float64
	// MinLen and MaxLen override message length bounds when > 0. Short
	// messages are ambiguous: domain-selection experiments use them to
	// create regimes where per-message classification fails and context
	// helps.
	MinLen, MaxLen int
	// FuncProb overrides the function-word probability when > 0. Higher
	// values dilute domain evidence per message.
	FuncProb float64
	// Cells is the number of radio cells users roam across. Mobility
	// events are generated only when Cells > 1 and MobilityRate > 0.
	Cells int
	// MobilityRate is the per-request probability that the emitting user
	// has moved to a new uniformly-drawn cell since their last message.
	MobilityRate float64
	// Seed drives all randomness (default 1).
	Seed uint64
}

// withDefaults returns cfg with zero fields replaced.
func (cfg Config) withDefaults() Config {
	if cfg.Users == 0 {
		cfg.Users = 8
	}
	if cfg.Messages == 0 {
		cfg.Messages = 1000
	}
	if cfg.MeanRunLength == 0 {
		cfg.MeanRunLength = 12
	}
	if cfg.DomainZipfS == 0 {
		cfg.DomainZipfS = 1.0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Workload is a generated request stream.
type Workload struct {
	// Requests in emission order.
	Requests []Request
	// Moves holds the mobility events in Seq order (empty without
	// mobility). A Move at Seq s applies before Requests[s] is served.
	Moves []Move
	// Users lists user names in creation order.
	Users []string
	// Idiolects maps user name to idiolect (nil entries mean generic
	// speakers).
	Idiolects map[string]*corpus.Idiolect
}

// DomainCounts returns how many requests carry each true domain.
func (w *Workload) DomainCounts(numDomains int) []int {
	counts := make([]int, numDomains)
	for _, r := range w.Requests {
		counts[r.Msg.DomainIndex]++
	}
	return counts
}

// Generate builds a workload over corp under cfg. It is deterministic
// given cfg.Seed.
func Generate(corp *corpus.Corpus, cfg Config) *Workload {
	cfg = cfg.withDefaults()
	rng := mat.NewRNG(cfg.Seed)
	gen := corpus.NewGenerator(corp, rng.Split())
	if cfg.MinLen > 0 {
		gen.MinLen = cfg.MinLen
	}
	if cfg.MaxLen >= gen.MinLen && cfg.MaxLen > 0 {
		gen.MaxLen = cfg.MaxLen
	} else if cfg.MinLen > gen.MaxLen {
		gen.MaxLen = cfg.MinLen
	}
	if cfg.FuncProb > 0 {
		gen.FuncProb = cfg.FuncProb
	}
	domainZipf := mat.NewZipf(rng.Split(), len(corp.Domains), cfg.DomainZipfS)
	idioRNG := rng.Split()
	// Mobility draws come from an independently seeded stream (a Split
	// would advance the root RNG), so enabling mobility never perturbs
	// the message/domain streams and mobility-free workloads stay
	// bit-identical to earlier versions.
	mobility := cfg.Cells > 1 && cfg.MobilityRate > 0
	mobRNG := mat.NewRNG(cfg.Seed ^ 0x6ce115)

	w := &Workload{
		Requests:  make([]Request, 0, cfg.Messages),
		Users:     make([]string, 0, cfg.Users),
		Idiolects: make(map[string]*corpus.Idiolect, cfg.Users),
	}
	// Per-user topic and cell state (-1: never moved, home cell).
	current := make([]int, cfg.Users)
	cells := make([]int, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		name := fmt.Sprintf("u%02d", u+1)
		w.Users = append(w.Users, name)
		if cfg.IdiolectStrength > 0 {
			w.Idiolects[name] = corpus.NewIdiolect(corp, idioRNG.Split(), cfg.IdiolectStrength)
		} else {
			w.Idiolects[name] = nil
		}
		current[u] = domainZipf.Sample()
		cells[u] = -1
	}
	switchProb := 1 / cfg.MeanRunLength
	for i := 0; i < cfg.Messages; i++ {
		u := rng.Intn(cfg.Users)
		if rng.Float64() < switchProb {
			current[u] = domainZipf.Sample()
		}
		name := w.Users[u]
		if mobility && mobRNG.Float64() < cfg.MobilityRate {
			cells[u] = mobRNG.Intn(cfg.Cells)
			w.Moves = append(w.Moves, Move{Seq: i, User: name, Cell: cells[u]})
		}
		msg := gen.Message(current[u], w.Idiolects[name])
		w.Requests = append(w.Requests, Request{Seq: i, User: name, Cell: cells[u], Msg: msg})
	}
	return w
}
