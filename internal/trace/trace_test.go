package trace

import (
	"testing"

	"repro/internal/corpus"
)

func TestGenerateDefaults(t *testing.T) {
	corp := corpus.Build()
	w := Generate(corp, Config{})
	if len(w.Requests) != 1000 {
		t.Fatalf("requests = %d, want default 1000", len(w.Requests))
	}
	if len(w.Users) != 8 {
		t.Fatalf("users = %d, want default 8", len(w.Users))
	}
	for i, r := range w.Requests {
		if r.Seq != i {
			t.Fatal("Seq not sequential")
		}
		if r.User == "" || len(r.Msg.Words) == 0 {
			t.Fatal("malformed request")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	corp := corpus.Build()
	cfg := Config{Users: 4, Messages: 200, Seed: 42}
	a := Generate(corp, cfg)
	b := Generate(corp, cfg)
	for i := range a.Requests {
		if a.Requests[i].User != b.Requests[i].User ||
			a.Requests[i].Msg.Text() != b.Requests[i].Msg.Text() {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	corp := corpus.Build()
	a := Generate(corp, Config{Messages: 100, Seed: 1})
	b := Generate(corp, Config{Messages: 100, Seed: 2})
	same := 0
	for i := range a.Requests {
		if a.Requests[i].Msg.Text() == b.Requests[i].Msg.Text() {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("different seeds produced %d/100 identical messages", same)
	}
}

func TestZipfDomainPopularity(t *testing.T) {
	corp := corpus.Build()
	w := Generate(corp, Config{Messages: 5000, DomainZipfS: 1.2, Seed: 3})
	counts := w.DomainCounts(len(corp.Domains))
	max, min := counts[0], counts[0]
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 3*min {
		t.Fatalf("domain popularity not skewed: %v", counts)
	}
}

func TestTopicRuns(t *testing.T) {
	corp := corpus.Build()
	w := Generate(corp, Config{Users: 1, Messages: 2000, MeanRunLength: 15, Seed: 9})
	// Count run lengths for the single user.
	runs := 0
	for i := 1; i < len(w.Requests); i++ {
		if w.Requests[i].Msg.DomainIndex != w.Requests[i-1].Msg.DomainIndex {
			runs++
		}
	}
	meanRun := float64(len(w.Requests)) / float64(runs+1)
	// Domain switches occur with prob 1/15 but may resample the same
	// domain, so observed runs are somewhat longer than 15.
	if meanRun < 8 {
		t.Fatalf("mean run length %v too short for MeanRunLength 15", meanRun)
	}
}

func TestIdiolectsAssigned(t *testing.T) {
	corp := corpus.Build()
	w := Generate(corp, Config{Users: 5, Messages: 10, IdiolectStrength: 0.4, Seed: 4})
	withPrefs := 0
	for _, u := range w.Users {
		if w.Idiolects[u] != nil && w.Idiolects[u].NumPrefs() > 0 {
			withPrefs++
		}
	}
	if withPrefs != 5 {
		t.Fatalf("%d/5 users have idiolects", withPrefs)
	}
	// Different users must have different idiolects.
	a, b := w.Idiolects[w.Users[0]], w.Idiolects[w.Users[1]]
	if a.NumPrefs() == 0 || b.NumPrefs() == 0 {
		t.Fatal("empty idiolects")
	}
}

func TestNoIdiolectByDefault(t *testing.T) {
	corp := corpus.Build()
	w := Generate(corp, Config{Users: 2, Messages: 10, Seed: 4})
	for _, u := range w.Users {
		if w.Idiolects[u] != nil {
			t.Fatal("default workload should have generic speakers")
		}
	}
}

func TestMobilityEvents(t *testing.T) {
	corp := corpus.Build()
	cfg := Config{Users: 6, Messages: 2000, Cells: 4, MobilityRate: 0.05, Seed: 9}
	w := Generate(corp, cfg)
	if len(w.Moves) == 0 {
		t.Fatal("mobility enabled but no moves generated")
	}
	// Roughly rate*messages moves, within a loose statistical band.
	if len(w.Moves) < 40 || len(w.Moves) > 250 {
		t.Fatalf("moves = %d, want about %d", len(w.Moves), int(0.05*2000))
	}
	lastSeq := -1
	for _, mv := range w.Moves {
		if mv.Cell < 0 || mv.Cell >= cfg.Cells {
			t.Fatalf("move cell %d out of range [0,%d)", mv.Cell, cfg.Cells)
		}
		if mv.Seq < lastSeq || mv.Seq >= cfg.Messages {
			t.Fatalf("move seq %d out of order or range", mv.Seq)
		}
		lastSeq = mv.Seq
		if w.Requests[mv.Seq].User != mv.User {
			t.Fatalf("move at seq %d names %s, request says %s", mv.Seq, mv.User, w.Requests[mv.Seq].User)
		}
		if w.Requests[mv.Seq].Cell != mv.Cell {
			t.Fatalf("request %d cell %d, move says %d", mv.Seq, w.Requests[mv.Seq].Cell, mv.Cell)
		}
	}
	// Determinism: an identical config yields an identical move stream.
	w2 := Generate(corp, cfg)
	if len(w2.Moves) != len(w.Moves) {
		t.Fatal("mobility stream not deterministic")
	}
	for i := range w.Moves {
		if w.Moves[i] != w2.Moves[i] {
			t.Fatalf("move %d differs across identical runs", i)
		}
	}
}

func TestMobilityDoesNotPerturbMessages(t *testing.T) {
	// Enabling mobility must not change a single message, user pick or
	// domain: the mobility stream draws from its own RNG split.
	corp := corpus.Build()
	base := Generate(corp, Config{Users: 5, Messages: 500, Seed: 13})
	mob := Generate(corp, Config{Users: 5, Messages: 500, Seed: 13, Cells: 3, MobilityRate: 0.2})
	if len(base.Moves) != 0 {
		t.Fatal("mobility-free workload generated moves")
	}
	for i := range base.Requests {
		if base.Requests[i].User != mob.Requests[i].User ||
			base.Requests[i].Msg.DomainIndex != mob.Requests[i].Msg.DomainIndex ||
			base.Requests[i].Msg.Text() != mob.Requests[i].Msg.Text() {
			t.Fatalf("request %d differs once mobility is enabled", i)
		}
		if base.Requests[i].Cell != -1 {
			t.Fatalf("request %d: home cell should be -1, got %d", i, base.Requests[i].Cell)
		}
	}
}
