package semantic

import (
	"bytes"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
)

func TestCodecSerializationRoundTrip(t *testing.T) {
	corp, c := sharedFixtures(t)
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadCodec(&buf, corp)
	if err != nil {
		t.Fatalf("ReadCodec: %v", err)
	}
	if got.Domain().Name != "it" {
		t.Fatalf("domain = %q", got.Domain().Name)
	}
	if got.Config().FeatureDim != c.Config().FeatureDim {
		t.Fatal("config not preserved")
	}
	// Loaded codec must behave identically.
	gen := corpus.NewGenerator(corp, mat.NewRNG(321))
	for i := 0; i < 20; i++ {
		m := gen.Message(corp.Domain("it").Index, nil)
		a := c.RoundTrip(m.Words)
		b := got.RoundTrip(m.Words)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("loaded codec decodes differently")
			}
		}
	}
}

func TestReadCodecRejectsGarbage(t *testing.T) {
	corp := corpus.Build()
	if _, err := ReadCodec(bytes.NewReader([]byte("not a codec")), corp); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadCodec(bytes.NewReader(nil), corp); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadCodecRejectsTruncated(t *testing.T) {
	corp, c := sharedFixtures(t)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 20, len(data) / 2, len(data) - 3} {
		if _, err := ReadCodec(bytes.NewReader(data[:cut]), corp); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadCodecUnknownDomain(t *testing.T) {
	corp, c := sharedFixtures(t)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the domain name ("it" sits after magic + name length).
	data[8] = 'z'
	data[9] = 'z'
	if _, err := ReadCodec(bytes.NewReader(data), corp); err == nil {
		t.Fatal("unknown domain accepted")
	}
}
