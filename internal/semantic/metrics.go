package semantic

import (
	"math"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// ConceptAccuracy returns the fraction of positions where got matches want
// exactly. Sequences of different lengths are compared over the shorter
// prefix with missing positions counted as errors.
func ConceptAccuracy(got, want []int) float64 {
	if len(want) == 0 {
		return 0
	}
	n := len(want)
	correct := 0
	for i := 0; i < n && i < len(got); i++ {
		if got[i] == want[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

// Similarity measures graded semantic similarity between a decoded concept
// sequence and the ground truth, in [0,1]. Exact concept matches score 1;
// mismatches score the embedding-cosine similarity (mapped from [-1,1] to
// [0,1]) between the canonical surfaces of the two concepts under the
// reference codec. This rewards decoding errors that land on semantically
// close meanings — the graceful-degradation property that motivates
// semantic communication.
func Similarity(ref *Codec, got, want []int) float64 {
	if len(want) == 0 {
		return 0
	}
	d := ref.domain
	total := 0.0
	for i := range want {
		if i < len(got) && got[i] == want[i] {
			total += 1
			continue
		}
		if i >= len(got) {
			continue
		}
		a := embOfConcept(ref, d, got[i])
		b := embOfConcept(ref, d, want[i])
		if a == nil || b == nil {
			continue
		}
		cos := mat.Cosine(a, b)
		total += (cos + 1) / 2 * 0.8 // cap partial credit below exact match
	}
	return total / float64(len(want))
}

// embOfConcept returns the reference embedding of a concept's canonical
// surface, or nil for invalid concepts.
func embOfConcept(ref *Codec, d *corpus.Domain, ci int) []float64 {
	if ci < 0 || ci >= d.NumConcepts() {
		return nil
	}
	sid := d.SurfaceID(d.Canonical(ci))
	return ref.emb.Lookup(sid)
}

// WordAccuracy compares restored words against reference words
// position-wise (exact string match), over the reference length.
func WordAccuracy(got, want []string) float64 {
	if len(want) == 0 {
		return 0
	}
	correct := 0
	for i := range want {
		if i < len(got) && got[i] == want[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(want))
}

// BLEU1 computes unigram-precision BLEU with brevity penalty between a
// candidate and reference token sequence. It is the classical text-fidelity
// metric reported alongside semantic similarity.
func BLEU1(candidate, reference []string) float64 {
	if len(candidate) == 0 || len(reference) == 0 {
		return 0
	}
	refCounts := make(map[string]int, len(reference))
	for _, w := range reference {
		refCounts[w]++
	}
	match := 0
	for _, w := range candidate {
		if refCounts[w] > 0 {
			refCounts[w]--
			match++
		}
	}
	precision := float64(match) / float64(len(candidate))
	if precision == 0 {
		return 0
	}
	// Brevity penalty.
	bp := 1.0
	if len(candidate) < len(reference) {
		bp = math.Exp(1 - float64(len(reference))/float64(len(candidate)))
	}
	return bp * precision
}
