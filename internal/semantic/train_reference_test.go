package semantic

import (
	"repro/internal/mat"
	"repro/internal/nn"
)

// trainEpochReference is the pre-GEMM per-example training loop, preserved
// verbatim as the bit-identity reference for the batched TrainEpoch: one
// example at a time through Forward/Backward with fresh per-call scratch
// slices, stepping the optimizer every 8 examples. The batched
// implementation must reproduce its parameter stream bit for bit.
func trainEpochReference(c *Codec, examples []Example, opt nn.Optimizer, rng *mat.RNG, noiseStd float64) TrainResult {
	params := c.Params()
	grads := params.ZeroClone()
	gEmb := grads.ByName(ParamEncEmb)
	gEncW := grads.ByName(ParamEncW)
	gEncB := grads.ByName(ParamEncB)
	gDecW := grads.ByName(ParamDecW)
	gDecB := grads.ByName(ParamDecB)
	gOutW := grads.ByName(ParamOutW)
	gOutB := grads.ByName(ParamOutB)

	F, H := c.cfg.FeatureDim, c.cfg.HiddenDim
	V := c.domain.NumConcepts()
	pre := make([]float64, F)     // encoder pre-activation
	feat := make([]float64, F)    // tanh feature
	noisy := make([]float64, F)   // channel-noised feature
	hPre := make([]float64, H)    // decoder pre-activation
	h := make([]float64, H)       // decoder hidden
	logits := make([]float64, V)  // concept logits
	dLogits := make([]float64, V) // CE gradient
	dH := make([]float64, H)
	dFeat := make([]float64, F)
	dEmb := make([]float64, c.cfg.EmbedDim)

	order := rng.Perm(len(examples))
	totalLoss := 0.0
	correct := 0
	const batch = 8
	inBatch := 0
	for _, oi := range order {
		ex := examples[oi]
		// Forward: encoder.
		x := c.emb.Lookup(ex.SurfaceID)
		c.enc.Forward(pre, x)
		nn.TanhForward(feat, pre)
		// Channel-noise injection (denoising training).
		copy(noisy, feat)
		if noiseStd > 0 {
			for i := range noisy {
				noisy[i] += noiseStd * rng.NormFloat64()
			}
		}
		// Forward: decoder.
		c.dec.Forward(hPre, noisy)
		nn.TanhForward(h, hPre)
		c.out.Forward(logits, h)
		if mat.Argmax(logits) == ex.ConceptID {
			correct++
		}
		totalLoss += nn.SoftmaxCrossEntropy(dLogits, logits, ex.ConceptID)
		// Backward: decoder.
		c.out.Backward(h, dLogits, gOutW, gOutB, dH)
		nn.TanhBackward(dH, h, dH)
		c.dec.Backward(noisy, dH, gDecW, gDecB, dFeat)
		// Backward through the (noise-free) tanh feature into the encoder.
		nn.TanhBackward(dFeat, feat, dFeat)
		c.enc.Backward(x, dFeat, gEncW, gEncB, dEmb)
		c.emb.AccumulateGrad(gEmb, ex.SurfaceID, dEmb)

		inBatch++
		if inBatch == batch {
			scaleGrads(grads, 1/float64(batch))
			opt.Step(params, grads)
			grads.Zero()
			inBatch = 0
		}
	}
	if inBatch > 0 {
		scaleGrads(grads, 1/float64(inBatch))
		opt.Step(params, grads)
	}
	n := float64(len(examples))
	if n == 0 {
		return TrainResult{}
	}
	return TrainResult{MeanLoss: totalLoss / n, Accuracy: float64(correct) / n}
}
