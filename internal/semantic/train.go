package semantic

import (
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Example is one supervised training pair: a surface ID observed on the
// sender side and the concept it expresses according to the domain KB.
type Example struct {
	SurfaceID int
	ConceptID int
}

// ExamplesFromMessage expands a generated message into per-token training
// examples for the codec of its domain.
func ExamplesFromMessage(d *corpus.Domain, m corpus.Message) []Example {
	out := make([]Example, 0, len(m.Words))
	for i, w := range m.Words {
		out = append(out, Example{SurfaceID: d.SurfaceID(w), ConceptID: m.ConceptIDs[i]})
	}
	return out
}

// TrainResult summarizes one training epoch.
type TrainResult struct {
	MeanLoss float64
	Accuracy float64
}

// TrainEpoch runs one stochastic epoch over examples, updating the codec's
// parameters in place through opt. rng drives example shuffling and the
// denoising feature noise; noiseStd <= 0 disables noise injection.
func (c *Codec) TrainEpoch(examples []Example, opt nn.Optimizer, rng *mat.RNG, noiseStd float64) TrainResult {
	params := c.Params()
	grads := params.ZeroClone()
	gEmb := grads.ByName(ParamEncEmb)
	gEncW := grads.ByName(ParamEncW)
	gEncB := grads.ByName(ParamEncB)
	gDecW := grads.ByName(ParamDecW)
	gDecB := grads.ByName(ParamDecB)
	gOutW := grads.ByName(ParamOutW)
	gOutB := grads.ByName(ParamOutB)

	F, H := c.cfg.FeatureDim, c.cfg.HiddenDim
	V := c.domain.NumConcepts()
	pre := make([]float64, F)     // encoder pre-activation
	feat := make([]float64, F)    // tanh feature
	noisy := make([]float64, F)   // channel-noised feature
	hPre := make([]float64, H)    // decoder pre-activation
	h := make([]float64, H)       // decoder hidden
	logits := make([]float64, V)  // concept logits
	dLogits := make([]float64, V) // CE gradient
	dH := make([]float64, H)
	dFeat := make([]float64, F)
	dEmb := make([]float64, c.cfg.EmbedDim)

	order := rng.Perm(len(examples))
	totalLoss := 0.0
	correct := 0
	const batch = 8
	inBatch := 0
	for _, oi := range order {
		ex := examples[oi]
		// Forward: encoder.
		x := c.emb.Lookup(ex.SurfaceID)
		c.enc.Forward(pre, x)
		nn.TanhForward(feat, pre)
		// Channel-noise injection (denoising training).
		copy(noisy, feat)
		if noiseStd > 0 {
			for i := range noisy {
				noisy[i] += noiseStd * rng.NormFloat64()
			}
		}
		// Forward: decoder.
		c.dec.Forward(hPre, noisy)
		nn.TanhForward(h, hPre)
		c.out.Forward(logits, h)
		if mat.Argmax(logits) == ex.ConceptID {
			correct++
		}
		totalLoss += nn.SoftmaxCrossEntropy(dLogits, logits, ex.ConceptID)
		// Backward: decoder.
		c.out.Backward(h, dLogits, gOutW, gOutB, dH)
		nn.TanhBackward(dH, h, dH)
		c.dec.Backward(noisy, dH, gDecW, gDecB, dFeat)
		// Backward through the (noise-free) tanh feature into the encoder.
		nn.TanhBackward(dFeat, feat, dFeat)
		c.enc.Backward(x, dFeat, gEncW, gEncB, dEmb)
		c.emb.AccumulateGrad(gEmb, ex.SurfaceID, dEmb)

		inBatch++
		if inBatch == batch {
			scaleGrads(grads, 1/float64(batch))
			opt.Step(params, grads)
			grads.Zero()
			inBatch = 0
		}
	}
	if inBatch > 0 {
		scaleGrads(grads, 1/float64(inBatch))
		opt.Step(params, grads)
	}
	n := float64(len(examples))
	if n == 0 {
		return TrainResult{}
	}
	return TrainResult{MeanLoss: totalLoss / n, Accuracy: float64(correct) / n}
}

// scaleGrads multiplies every gradient tensor by s.
func scaleGrads(grads *nn.ParamSet, s float64) {
	for _, p := range grads.Params {
		mat.Scale(p.M.Data, s)
	}
}

// Evaluate measures reconstruction concept accuracy over examples without
// updating parameters and without noise.
func (c *Codec) Evaluate(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	feat := make([]float64, c.cfg.FeatureDim)
	for _, ex := range examples {
		c.EncodeSurfaceID(ex.SurfaceID, feat)
		if c.DecodeFeature(feat) == ex.ConceptID {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// Pretrain trains a fresh general codec for domain d on generated traffic
// with no idiolect. It is deterministic given cfg.Seed.
func Pretrain(d *corpus.Domain, corp *corpus.Corpus, cfg Config) *Codec {
	cfg = cfg.withDefaults()
	c := NewCodec(d, cfg)
	rng := mat.NewRNG(cfg.Seed + uint64(d.Index)*1009)
	gen := corpus.NewGenerator(corp, rng.Split())
	gen.Balanced = true // KBs pretrain on broad, balanced domain corpora
	// General corpora do not cover personal rare-synonym vocabulary: tail
	// surfaces stay untrained in the general model. The resulting mismatch
	// on idiolect-bearing traffic is exactly what §II-B's user-specific
	// individual models exist to fix.
	gen.TailProb = 0
	msgs := gen.Batch(d.Index, cfg.Sentences, nil)
	var examples []Example
	for _, m := range msgs {
		examples = append(examples, ExamplesFromMessage(d, m)...)
	}
	opt := &nn.Adam{LR: cfg.LR, Clip: 5}
	trainRNG := rng.Split()
	for e := 0; e < cfg.Epochs; e++ {
		c.TrainEpoch(examples, opt, trainRNG, cfg.NoiseStd)
	}
	return c
}

// PretrainAll builds one general codec per domain, in domain order. The
// domains train concurrently on the mat worker pool: each Pretrain derives
// its RNG purely from cfg.Seed and the domain index, so the result is
// bit-identical to the serial loop at any parallelism.
func PretrainAll(corp *corpus.Corpus, cfg Config) []*Codec {
	out := make([]*Codec, len(corp.Domains))
	mat.ParallelFor(len(corp.Domains), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Pretrain(corp.Domains[i], corp, cfg)
		}
	})
	return out
}

// FineTune adapts a codec (typically a Clone of the general model) on a
// user's buffered traffic for the given number of epochs, returning the
// final epoch's result. This is the individual-model update step of the
// paper's §II-D.
func (c *Codec) FineTune(examples []Example, epochs int, lr float64, rng *mat.RNG) TrainResult {
	if lr <= 0 {
		lr = c.cfg.LR / 2
	}
	opt := &nn.SGD{LR: lr, Momentum: 0.5, Clip: 5}
	var res TrainResult
	for e := 0; e < epochs; e++ {
		res = c.TrainEpoch(examples, opt, rng, c.cfg.NoiseStd/2)
	}
	return res
}
