package semantic

import (
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Example is one supervised training pair: a surface ID observed on the
// sender side and the concept it expresses according to the domain KB.
type Example struct {
	SurfaceID int
	ConceptID int
}

// ExamplesFromMessage expands a generated message into per-token training
// examples for the codec of its domain.
func ExamplesFromMessage(d *corpus.Domain, m corpus.Message) []Example {
	out := make([]Example, 0, len(m.Words))
	for i, w := range m.Words {
		out = append(out, Example{SurfaceID: d.SurfaceID(w), ConceptID: m.ConceptIDs[i]})
	}
	return out
}

// TrainResult summarizes one training epoch.
type TrainResult struct {
	MeanLoss float64
	Accuracy float64
}

// trainBatch is the minibatch size: the optimizer steps once per
// trainBatch examples, with the trailing partial batch stepped on its own
// (matching the historical per-example loop's boundaries exactly).
const trainBatch = 8

// TrainEpoch runs one stochastic epoch over examples, updating the codec's
// parameters in place through opt. rng drives example shuffling and the
// denoising feature noise; noiseStd <= 0 disables noise injection.
//
// Each minibatch runs as batched matrix-matrix products (embedding gather,
// encoder GEMM, decoder GEMMs, batched backward). Every gradient element
// accumulates examples in ascending minibatch order and the noise RNG is
// consumed in the same example-major order as the per-example loop, so the
// parameter stream is bit-identical to the historical implementation at any
// worker count.
func (c *Codec) TrainEpoch(examples []Example, opt nn.Optimizer, rng *mat.RNG, noiseStd float64) TrainResult {
	params := c.Params()
	grads := params.ZeroClone()
	gEmb := grads.ByName(ParamEncEmb)
	gEncW := grads.ByName(ParamEncW)
	gEncB := grads.ByName(ParamEncB)
	gDecW := grads.ByName(ParamDecW)
	gDecB := grads.ByName(ParamDecB)
	gOutW := grads.ByName(ParamOutW)
	gOutB := grads.ByName(ParamOutB)

	E, F, H := c.cfg.EmbedDim, c.cfg.FeatureDim, c.cfg.HiddenDim
	V := c.domain.NumConcepts()
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	// Full-size minibatch buffers; the trailing partial batch reuses their
	// storage through row-limited views.
	x := sc.Mat(trainBatch, E)       // gathered token embeddings
	pre := sc.Mat(trainBatch, F)     // encoder pre-activation
	feat := sc.Mat(trainBatch, F)    // tanh feature
	noisy := sc.Mat(trainBatch, F)   // channel-noised feature
	hPre := sc.Mat(trainBatch, H)    // decoder pre-activation
	h := sc.Mat(trainBatch, H)       // decoder hidden
	logits := sc.Mat(trainBatch, V)  // concept logits
	dLogits := sc.Mat(trainBatch, V) // CE gradient
	dH := sc.Mat(trainBatch, H)
	dFeat := sc.Mat(trainBatch, F)
	dX := sc.Mat(trainBatch, E)
	sids := sc.Ints(trainBatch)

	order := rng.Perm(len(examples))
	totalLoss := 0.0
	correct := 0
	for start := 0; start < len(order); start += trainBatch {
		n := min(trainBatch, len(order)-start)
		xB, preB, featB, noisyB := x, pre, feat, noisy
		hPreB, hB, logitsB, dLogitsB := hPre, h, logits, dLogits
		dHB, dFeatB, dXB := dH, dFeat, dX
		if n < trainBatch {
			xB = sc.Wrap(n, E, x.Data[:n*E])
			preB = sc.Wrap(n, F, pre.Data[:n*F])
			featB = sc.Wrap(n, F, feat.Data[:n*F])
			noisyB = sc.Wrap(n, F, noisy.Data[:n*F])
			hPreB = sc.Wrap(n, H, hPre.Data[:n*H])
			hB = sc.Wrap(n, H, h.Data[:n*H])
			logitsB = sc.Wrap(n, V, logits.Data[:n*V])
			dLogitsB = sc.Wrap(n, V, dLogits.Data[:n*V])
			dHB = sc.Wrap(n, H, dH.Data[:n*H])
			dFeatB = sc.Wrap(n, F, dFeat.Data[:n*F])
			dXB = sc.Wrap(n, E, dX.Data[:n*E])
		}
		// Forward: encoder over the gathered minibatch.
		for t := 0; t < n; t++ {
			ex := examples[order[start+t]]
			sids[t] = ex.SurfaceID
			copy(xB.Row(t), c.emb.Lookup(ex.SurfaceID))
		}
		c.enc.ForwardBatch(preB, xB)
		nn.TanhForward(featB.Data, preB.Data)
		// Channel-noise injection (denoising training), drawn in
		// example-major order: the exact RNG stream of the serial loop.
		copy(noisyB.Data, featB.Data)
		if noiseStd > 0 {
			for i := range noisyB.Data {
				noisyB.Data[i] += noiseStd * rng.NormFloat64()
			}
		}
		// Forward: decoder.
		c.dec.ForwardBatch(hPreB, noisyB)
		nn.TanhForward(hB.Data, hPreB.Data)
		c.out.ForwardBatch(logitsB, hB)
		for t := 0; t < n; t++ {
			ex := examples[order[start+t]]
			if mat.Argmax(logitsB.Row(t)) == ex.ConceptID {
				correct++
			}
			totalLoss += nn.SoftmaxCrossEntropy(dLogitsB.Row(t), logitsB.Row(t), ex.ConceptID)
		}
		// Backward: decoder.
		c.out.BackwardBatch(hB, dLogitsB, gOutW, gOutB, dHB)
		nn.TanhBackward(dHB.Data, hB.Data, dHB.Data)
		c.dec.BackwardBatch(noisyB, dHB, gDecW, gDecB, dFeatB)
		// Backward through the (noise-free) tanh feature into the encoder.
		nn.TanhBackward(dFeatB.Data, featB.Data, dFeatB.Data)
		c.enc.BackwardBatch(xB, dFeatB, gEncW, gEncB, dXB)
		for t := 0; t < n; t++ {
			c.emb.AccumulateGrad(gEmb, sids[t], dXB.Row(t))
		}
		scaleGrads(grads, 1/float64(n))
		opt.Step(params, grads)
		grads.Zero()
		// Weights changed: any cached reduced-precision shadows are stale.
		c.tiers.Store(nil)
	}
	nEx := float64(len(examples))
	if nEx == 0 {
		return TrainResult{}
	}
	return TrainResult{MeanLoss: totalLoss / nEx, Accuracy: float64(correct) / nEx}
}

// scaleGrads multiplies every gradient tensor by s.
func scaleGrads(grads *nn.ParamSet, s float64) {
	for _, p := range grads.Params {
		mat.Scale(p.M.Data, s)
	}
}

// evalChunk bounds the scratch footprint of Evaluate: examples stream
// through the batched encode/decode pipeline this many at a time.
const evalChunk = 256

// Evaluate measures reconstruction concept accuracy over examples without
// updating parameters and without noise. Examples run through the batched
// GEMM pipeline in fixed-size chunks over one reused scratch arena instead
// of allocating per-example feature/hidden/logit buffers; the decoded
// concepts (and therefore the accuracy) are bit-identical to the
// per-example path.
func (c *Codec) Evaluate(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	correct := 0
	for start := 0; start < len(examples); start += evalChunk {
		sc.Reset()
		n := min(evalChunk, len(examples)-start)
		chunk := examples[start : start+n]
		ids := sc.Ints(n)
		for t, ex := range chunk {
			ids[t] = ex.SurfaceID
		}
		feats := sc.Mat(n, c.cfg.FeatureDim)
		c.enc.ForwardBatch(feats, c.packSurfaceEmbeddings(sc, ids))
		nn.TanhForward(feats.Data, feats.Data)
		decoded := sc.Ints(n)
		c.DecodeFeaturesInto(sc, feats, decoded)
		for t, ex := range chunk {
			if decoded[t] == ex.ConceptID {
				correct++
			}
		}
	}
	return float64(correct) / float64(len(examples))
}

// Pretrain trains a fresh general codec for domain d on generated traffic
// with no idiolect. It is deterministic given cfg.Seed.
func Pretrain(d *corpus.Domain, corp *corpus.Corpus, cfg Config) *Codec {
	cfg = cfg.withDefaults()
	c := NewCodec(d, cfg)
	rng := mat.NewRNG(cfg.Seed + uint64(d.Index)*1009)
	gen := corpus.NewGenerator(corp, rng.Split())
	gen.Balanced = true // KBs pretrain on broad, balanced domain corpora
	// General corpora do not cover personal rare-synonym vocabulary: tail
	// surfaces stay untrained in the general model. The resulting mismatch
	// on idiolect-bearing traffic is exactly what §II-B's user-specific
	// individual models exist to fix.
	gen.TailProb = 0
	msgs := gen.Batch(d.Index, cfg.Sentences, nil)
	var examples []Example
	for _, m := range msgs {
		examples = append(examples, ExamplesFromMessage(d, m)...)
	}
	opt := &nn.Adam{LR: cfg.LR, Clip: 5}
	trainRNG := rng.Split()
	for e := 0; e < cfg.Epochs; e++ {
		c.TrainEpoch(examples, opt, trainRNG, cfg.NoiseStd)
	}
	return c
}

// PretrainAll builds one general codec per domain, in domain order. The
// domains train concurrently on the mat worker pool: each Pretrain derives
// its RNG purely from cfg.Seed and the domain index, so the result is
// bit-identical to the serial loop at any parallelism.
func PretrainAll(corp *corpus.Corpus, cfg Config) []*Codec {
	out := make([]*Codec, len(corp.Domains))
	mat.ParallelFor(len(corp.Domains), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = Pretrain(corp.Domains[i], corp, cfg)
		}
	})
	return out
}

// FineTune adapts a codec (typically a Clone of the general model) on a
// user's buffered traffic for the given number of epochs, returning the
// final epoch's result. This is the individual-model update step of the
// paper's §II-D.
func (c *Codec) FineTune(examples []Example, epochs int, lr float64, rng *mat.RNG) TrainResult {
	if lr <= 0 {
		lr = c.cfg.LR / 2
	}
	opt := &nn.SGD{LR: lr, Momentum: 0.5, Clip: 5}
	var res TrainResult
	for e := 0; e < epochs; e++ {
		res = c.TrainEpoch(examples, opt, rng, c.cfg.NoiseStd/2)
	}
	return res
}
