// Package semantic implements the knowledge-base (KB) encoder/decoder pair
// at the core of the semantic communication workflow: semantic encoding
// extracts per-token feature vectors from a message; semantic decoding
// restores the meaning (domain concepts) from possibly noise-corrupted
// features.
//
// A Codec is a domain-specialized bottleneck network:
//
//	surface id -> Embedding -> Linear -> tanh  = feature vector  (encoder)
//	feature    -> Linear -> tanh -> Linear -> softmax over concepts (decoder)
//
// Features are bounded in (-1,1) by the tanh, which lets the channel layer
// quantize them uniformly. Training is denoising: Gaussian noise is added
// to features so decoding stays robust under channel corruption, mirroring
// how DeepSC-style systems train through the channel.
package semantic

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Config sets codec hyper-parameters. The zero value selects the defaults
// used throughout the experiments.
type Config struct {
	EmbedDim   int     // token embedding width (default 16)
	FeatureDim int     // transmitted feature width (default 8)
	HiddenDim  int     // decoder hidden width (default 24)
	NoiseStd   float64 // training-time feature noise (default 0.20)
	LR         float64 // optimizer learning rate (default 0.03)
	Epochs     int     // pretraining epochs (default 5)
	Sentences  int     // pretraining sentences (default 1000)
	Seed       uint64  // weight-init / training seed (default 1)
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.EmbedDim == 0 {
		cfg.EmbedDim = 16
	}
	if cfg.FeatureDim == 0 {
		cfg.FeatureDim = 8
	}
	if cfg.HiddenDim == 0 {
		cfg.HiddenDim = 24
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.20
	}
	if cfg.LR == 0 {
		cfg.LR = 0.03
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 5
	}
	if cfg.Sentences == 0 {
		cfg.Sentences = 1000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Parameter tensor names. The decoder names are what the federated-style
// update process ships between edge servers.
const (
	ParamEncEmb = "enc.emb"
	ParamEncW   = "enc.w"
	ParamEncB   = "enc.b"
	ParamDecW   = "dec.w"
	ParamDecB   = "dec.b"
	ParamOutW   = "out.w"
	ParamOutB   = "out.b"
)

// Codec is a domain-specialized semantic encoder/decoder pair.
type Codec struct {
	domain *corpus.Domain
	cfg    Config

	emb *nn.Embedding // vocab x E
	enc *nn.Linear    // E -> F
	dec *nn.Linear    // F -> H
	out *nn.Linear    // H -> concepts
}

// NewCodec builds an untrained codec for domain d.
func NewCodec(d *corpus.Domain, cfg Config) *Codec {
	cfg = cfg.withDefaults()
	rng := mat.NewRNG(cfg.Seed)
	return &Codec{
		domain: d,
		cfg:    cfg,
		emb:    nn.NewEmbedding(rng, d.VocabSize(), cfg.EmbedDim),
		enc:    nn.NewLinear(rng, cfg.EmbedDim, cfg.FeatureDim),
		dec:    nn.NewLinear(rng, cfg.FeatureDim, cfg.HiddenDim),
		out:    nn.NewLinear(rng, cfg.HiddenDim, d.NumConcepts()),
	}
}

// Domain returns the domain the codec specializes in.
func (c *Codec) Domain() *corpus.Domain { return c.domain }

// Config returns the effective configuration.
func (c *Codec) Config() Config { return c.cfg }

// FeatureDim returns the width of transmitted feature vectors.
func (c *Codec) FeatureDim() int { return c.cfg.FeatureDim }

// Params returns the full parameter set (shared storage, not a copy).
func (c *Codec) Params() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.Add(ParamEncEmb, c.emb.Table)
	ps.Add(ParamEncW, c.enc.W)
	ps.Add(ParamEncB, c.enc.B)
	ps.Add(ParamDecW, c.dec.W)
	ps.Add(ParamDecB, c.dec.B)
	ps.Add(ParamOutW, c.out.W)
	ps.Add(ParamOutB, c.out.B)
	return ps
}

// EncoderParams returns the encoder-side tensors (shared storage).
func (c *Codec) EncoderParams() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.Add(ParamEncEmb, c.emb.Table)
	ps.Add(ParamEncW, c.enc.W)
	ps.Add(ParamEncB, c.enc.B)
	return ps
}

// DecoderParams returns the decoder-side tensors (shared storage). These
// are the tensors synchronized to the receiver edge in the update process.
func (c *Codec) DecoderParams() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.Add(ParamDecW, c.dec.W)
	ps.Add(ParamDecB, c.dec.B)
	ps.Add(ParamOutW, c.out.W)
	ps.Add(ParamOutB, c.out.B)
	return ps
}

// Clone returns a deep copy of the codec. Individual (user-specific) models
// start as clones of the domain's general model, exactly as in the paper's
// Fig. 1 step 2.
func (c *Codec) Clone() *Codec {
	return &Codec{
		domain: c.domain,
		cfg:    c.cfg,
		emb:    &nn.Embedding{Table: c.emb.Table.Clone()},
		enc:    &nn.Linear{W: c.enc.W.Clone(), B: c.enc.B.Clone()},
		dec:    &nn.Linear{W: c.dec.W.Clone(), B: c.dec.B.Clone()},
		out:    &nn.Linear{W: c.out.W.Clone(), B: c.out.B.Clone()},
	}
}

// SizeBytes returns the serialized size of all parameters: the footprint
// the codec occupies in an edge cache.
func (c *Codec) SizeBytes() int64 { return c.Params().SizeBytes() }

// EncoderSizeBytes returns the serialized size of the encoder tensors.
func (c *Codec) EncoderSizeBytes() int64 { return c.EncoderParams().SizeBytes() }

// DecoderSizeBytes returns the serialized size of the decoder tensors.
func (c *Codec) DecoderSizeBytes() int64 { return c.DecoderParams().SizeBytes() }

// EncodeSurfaceID computes the feature vector for one local surface ID.
func (c *Codec) EncodeSurfaceID(id int, dst []float64) {
	if len(dst) != c.cfg.FeatureDim {
		panic("semantic: EncodeSurfaceID dst length mismatch")
	}
	if id < 0 || id >= c.emb.Vocab() {
		id = corpus.UnknownSurfaceID
	}
	c.enc.Forward(dst, c.emb.Lookup(id))
	nn.TanhForward(dst, dst)
}

// tokenGrain is the minimum number of tokens per worker when sharding a
// single message across the compute pool: typical chat-length messages stay
// serial, long firehose inputs shard.
const tokenGrain = 256

// EncodeWords encodes a token sequence into per-token feature vectors.
// Words outside the domain lexicon encode as the unknown surface. Encoding
// only reads the codec, so it is safe to call concurrently; long sequences
// shard tokens across the mat worker pool.
func (c *Codec) EncodeWords(words []string) [][]float64 {
	feats := make([][]float64, len(words))
	mat.ParallelFor(len(words), tokenGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f := make([]float64, c.cfg.FeatureDim)
			c.EncodeSurfaceID(c.domain.SurfaceID(words[i]), f)
			feats[i] = f
		}
	})
	return feats
}

// EncodeBatch encodes a batch of token sequences, sharding messages across
// the mat worker pool. The result is ordered like msgs and bit-identical
// to calling EncodeWords on each message serially.
func (c *Codec) EncodeBatch(msgs [][]string) [][][]float64 {
	out := make([][][]float64, len(msgs))
	mat.ParallelFor(len(msgs), batchGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c.EncodeWords(msgs[i])
		}
	})
	return out
}

// batchGrain is the minimum number of messages per worker for the batch
// encode/decode entry points.
const batchGrain = 8

// DecodeFeature returns the most likely concept index for one feature
// vector.
func (c *Codec) DecodeFeature(feat []float64) int {
	h := make([]float64, c.cfg.HiddenDim)
	c.dec.Forward(h, feat)
	nn.TanhForward(h, h)
	logits := make([]float64, c.domain.NumConcepts())
	c.out.Forward(logits, h)
	return mat.Argmax(logits)
}

// DecodeFeatures decodes a feature sequence into concept indices. Decoding
// only reads the codec, so it is safe to call concurrently; long sequences
// shard tokens across the mat worker pool.
func (c *Codec) DecodeFeatures(feats [][]float64) []int {
	out := make([]int, len(feats))
	mat.ParallelFor(len(feats), tokenGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c.DecodeFeature(feats[i])
		}
	})
	return out
}

// DecodeBatch decodes a batch of feature sequences, sharding messages
// across the mat worker pool. The result is ordered like feats and
// bit-identical to calling DecodeFeatures on each sequence serially.
func (c *Codec) DecodeBatch(feats [][][]float64) [][]int {
	out := make([][]int, len(feats))
	mat.ParallelFor(len(feats), batchGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c.DecodeFeatures(feats[i])
		}
	})
	return out
}

// RestoreWords renders concept indices as canonical surface forms: the
// restored message shown to the receiving user.
func (c *Codec) RestoreWords(concepts []int) []string {
	out := make([]string, len(concepts))
	for i, ci := range concepts {
		out[i] = c.domain.Canonical(ci)
	}
	return out
}

// RoundTrip encodes then decodes words with no channel in between; it is
// the sender-edge "decoder copy" computation from the paper's §II-C used
// for mismatch calculation.
func (c *Codec) RoundTrip(words []string) []int {
	return c.DecodeFeatures(c.EncodeWords(words))
}

// Validate performs internal shape consistency checks, returning an error
// describing the first violation. It is cheap and intended for use after
// deserialization.
func (c *Codec) Validate() error {
	if c.emb.Dim() != c.enc.In() {
		return fmt.Errorf("semantic: embedding dim %d != encoder in %d", c.emb.Dim(), c.enc.In())
	}
	if c.enc.Out() != c.dec.In() {
		return fmt.Errorf("semantic: encoder out %d != decoder in %d", c.enc.Out(), c.dec.In())
	}
	if c.dec.Out() != c.out.In() {
		return fmt.Errorf("semantic: decoder hidden %d != output in %d", c.dec.Out(), c.out.In())
	}
	if c.out.Out() != c.domain.NumConcepts() {
		return fmt.Errorf("semantic: output dim %d != concepts %d", c.out.Out(), c.domain.NumConcepts())
	}
	return nil
}
