// Package semantic implements the knowledge-base (KB) encoder/decoder pair
// at the core of the semantic communication workflow: semantic encoding
// extracts per-token feature vectors from a message; semantic decoding
// restores the meaning (domain concepts) from possibly noise-corrupted
// features.
//
// A Codec is a domain-specialized bottleneck network:
//
//	surface id -> Embedding -> Linear -> tanh  = feature vector  (encoder)
//	feature    -> Linear -> tanh -> Linear -> softmax over concepts (decoder)
//
// Features are bounded in (-1,1) by the tanh, which lets the channel layer
// quantize them uniformly. Training is denoising: Gaussian noise is added
// to features so decoding stays robust under channel corruption, mirroring
// how DeepSC-style systems train through the channel.
package semantic

import (
	"fmt"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Config sets codec hyper-parameters. The zero value selects the defaults
// used throughout the experiments.
type Config struct {
	EmbedDim   int     // token embedding width (default 16)
	FeatureDim int     // transmitted feature width (default 8)
	HiddenDim  int     // decoder hidden width (default 24)
	NoiseStd   float64 // training-time feature noise (default 0.20)
	LR         float64 // optimizer learning rate (default 0.03)
	Epochs     int     // pretraining epochs (default 5)
	Sentences  int     // pretraining sentences (default 1000)
	Seed       uint64  // weight-init / training seed (default 1)
	Tier       Tier    // serving kernel tier (default TierF64, bit-exact); runtime-only, not serialized
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (cfg Config) withDefaults() Config {
	if cfg.EmbedDim == 0 {
		cfg.EmbedDim = 16
	}
	if cfg.FeatureDim == 0 {
		cfg.FeatureDim = 8
	}
	if cfg.HiddenDim == 0 {
		cfg.HiddenDim = 24
	}
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.20
	}
	if cfg.LR == 0 {
		cfg.LR = 0.03
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 5
	}
	if cfg.Sentences == 0 {
		cfg.Sentences = 1000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Parameter tensor names. The decoder names are what the federated-style
// update process ships between edge servers.
const (
	ParamEncEmb = "enc.emb"
	ParamEncW   = "enc.w"
	ParamEncB   = "enc.b"
	ParamDecW   = "dec.w"
	ParamDecB   = "dec.b"
	ParamOutW   = "out.w"
	ParamOutB   = "out.b"
)

// Codec is a domain-specialized semantic encoder/decoder pair.
type Codec struct {
	domain *corpus.Domain
	cfg    Config

	emb *nn.Embedding // vocab x E
	enc *nn.Linear    // E -> F
	dec *nn.Linear    // F -> H
	out *nn.Linear    // H -> concepts

	// tiers caches the reduced-precision weight shadows for the current
	// serving tier (nil when cold or invalidated; always nil at TierF64).
	tiers atomic.Pointer[tierState]
}

// NewCodec builds an untrained codec for domain d.
func NewCodec(d *corpus.Domain, cfg Config) *Codec {
	cfg = cfg.withDefaults()
	rng := mat.NewRNG(cfg.Seed)
	return &Codec{
		domain: d,
		cfg:    cfg,
		emb:    nn.NewEmbedding(rng, d.VocabSize(), cfg.EmbedDim),
		enc:    nn.NewLinear(rng, cfg.EmbedDim, cfg.FeatureDim),
		dec:    nn.NewLinear(rng, cfg.FeatureDim, cfg.HiddenDim),
		out:    nn.NewLinear(rng, cfg.HiddenDim, d.NumConcepts()),
	}
}

// Domain returns the domain the codec specializes in.
func (c *Codec) Domain() *corpus.Domain { return c.domain }

// Config returns the effective configuration.
func (c *Codec) Config() Config { return c.cfg }

// FeatureDim returns the width of transmitted feature vectors.
func (c *Codec) FeatureDim() int { return c.cfg.FeatureDim }

// Params returns the full parameter set (shared storage, not a copy).
func (c *Codec) Params() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.Add(ParamEncEmb, c.emb.Table)
	ps.Add(ParamEncW, c.enc.W)
	ps.Add(ParamEncB, c.enc.B)
	ps.Add(ParamDecW, c.dec.W)
	ps.Add(ParamDecB, c.dec.B)
	ps.Add(ParamOutW, c.out.W)
	ps.Add(ParamOutB, c.out.B)
	return ps
}

// EncoderParams returns the encoder-side tensors (shared storage).
func (c *Codec) EncoderParams() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.Add(ParamEncEmb, c.emb.Table)
	ps.Add(ParamEncW, c.enc.W)
	ps.Add(ParamEncB, c.enc.B)
	return ps
}

// DecoderParams returns the decoder-side tensors (shared storage). These
// are the tensors synchronized to the receiver edge in the update process.
func (c *Codec) DecoderParams() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.Add(ParamDecW, c.dec.W)
	ps.Add(ParamDecB, c.dec.B)
	ps.Add(ParamOutW, c.out.W)
	ps.Add(ParamOutB, c.out.B)
	return ps
}

// Clone returns a deep copy of the codec. Individual (user-specific) models
// start as clones of the domain's general model, exactly as in the paper's
// Fig. 1 step 2.
func (c *Codec) Clone() *Codec {
	return &Codec{
		domain: c.domain,
		cfg:    c.cfg,
		emb:    &nn.Embedding{Table: c.emb.Table.Clone()},
		enc:    &nn.Linear{W: c.enc.W.Clone(), B: c.enc.B.Clone()},
		dec:    &nn.Linear{W: c.dec.W.Clone(), B: c.dec.B.Clone()},
		out:    &nn.Linear{W: c.out.W.Clone(), B: c.out.B.Clone()},
	}
}

// SizeBytes returns the serialized size of all parameters: the footprint
// the codec occupies in an edge cache.
func (c *Codec) SizeBytes() int64 { return c.Params().SizeBytes() }

// EncoderSizeBytes returns the serialized size of the encoder tensors.
func (c *Codec) EncoderSizeBytes() int64 { return c.EncoderParams().SizeBytes() }

// DecoderSizeBytes returns the serialized size of the decoder tensors.
func (c *Codec) DecoderSizeBytes() int64 { return c.DecoderParams().SizeBytes() }

// EncodeSurfaceID computes the feature vector for one local surface ID.
func (c *Codec) EncodeSurfaceID(id int, dst []float64) {
	if len(dst) != c.cfg.FeatureDim {
		panic("semantic: EncodeSurfaceID dst length mismatch")
	}
	c.enc.Forward(dst, c.embeddingRow(id))
	nn.TanhForward(dst, dst)
}

// embeddingRow returns the embedding for id, clamping out-of-lexicon IDs to
// the unknown surface.
func (c *Codec) embeddingRow(id int) []float64 {
	if id < 0 || id >= c.emb.Vocab() {
		id = corpus.UnknownSurfaceID
	}
	return c.emb.Lookup(id)
}

// packSurfaceEmbeddings gathers the embeddings of the given surface IDs
// into an n x EmbedDim scratch matrix (row order = id order).
func (c *Codec) packSurfaceEmbeddings(sc *mat.Scratch, ids []int) *mat.Dense {
	x := sc.Mat(len(ids), c.cfg.EmbedDim)
	for i, id := range ids {
		copy(x.Row(i), c.embeddingRow(id))
	}
	return x
}

// encodeWordsTo runs the batched encoder over words, writing the per-token
// features into dst (len(words) x FeatureDim): one gather of the token
// embeddings, one GEMM, one tanh sweep. Temporaries come from sc.
func (c *Codec) encodeWordsTo(sc *mat.Scratch, dst *mat.Dense, words []string) {
	if c.cfg.Tier != TierF64 {
		c.encodeWordsToTiered(sc, dst, words)
		return
	}
	x := sc.Mat(len(words), c.cfg.EmbedDim)
	for i, w := range words {
		copy(x.Row(i), c.embeddingRow(c.domain.SurfaceID(w)))
	}
	c.enc.ForwardBatch(dst, x)
	nn.TanhForward(dst.Data, dst.Data)
}

// EncodeWordsInto encodes a token sequence into a len(words) x FeatureDim
// feature matrix allocated from sc: the zero-allocation batched encode used
// by the steady-state serving path. Words outside the domain lexicon encode
// as the unknown surface. The result is bit-identical to per-token
// EncodeSurfaceID calls at any worker count; it is owned by sc and must be
// consumed before the scratch is reset or returned to the pool.
func (c *Codec) EncodeWordsInto(sc *mat.Scratch, words []string) *mat.Dense {
	dst := sc.Mat(len(words), c.cfg.FeatureDim)
	c.encodeWordsTo(sc, dst, words)
	return dst
}

// EncodeBatchInto encodes a batch of messages in one fused pass: every
// token of every message is gathered into a single embedding matrix and
// pushed through one encoder GEMM and one tanh sweep. The result matrix
// (sum(len(msgs[i])) x FeatureDim, allocated from sc) holds the messages'
// feature rows concatenated in msgs order.
//
// Because each output row of the batched GEMM depends only on its own
// input row and keeps the exact serial accumulation order per element,
// rows [start_i, start_i+len(msgs[i])) are bit-identical to a solo
// EncodeWordsInto(sc, msgs[i]) call at any worker count and any batch
// composition. This is what makes cross-request batching transparent: a
// request cannot tell which batch it landed in.
func (c *Codec) EncodeBatchInto(sc *mat.Scratch, msgs [][]string) *mat.Dense {
	total := 0
	for _, m := range msgs {
		total += len(m)
	}
	if c.cfg.Tier != TierF64 {
		return c.encodeBatchIntoTiered(sc, msgs, total)
	}
	x := sc.Mat(total, c.cfg.EmbedDim)
	row := 0
	for _, m := range msgs {
		for _, w := range m {
			copy(x.Row(row), c.embeddingRow(c.domain.SurfaceID(w)))
			row++
		}
	}
	dst := sc.Mat(total, c.cfg.FeatureDim)
	c.enc.ForwardBatch(dst, x)
	nn.TanhForward(dst.Data, dst.Data)
	return dst
}

// EncodeWords encodes a token sequence into per-token feature vectors.
// Words outside the domain lexicon encode as the unknown surface. Encoding
// only reads the codec, so it is safe to call concurrently. The returned
// vectors are rows of one batched GEMM result, bit-identical to per-token
// encoding.
func (c *Codec) EncodeWords(words []string) [][]float64 {
	feats := make([][]float64, len(words))
	if len(words) == 0 {
		return feats
	}
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	dst := mat.NewDense(len(words), c.cfg.FeatureDim)
	c.encodeWordsTo(sc, dst, words)
	for i := range feats {
		feats[i] = dst.Row(i)
	}
	return feats
}

// EncodeBatch encodes a batch of token sequences, sharding messages across
// the mat worker pool. The result is ordered like msgs and bit-identical
// to calling EncodeWords on each message serially.
func (c *Codec) EncodeBatch(msgs [][]string) [][][]float64 {
	out := make([][][]float64, len(msgs))
	mat.ParallelFor(len(msgs), batchGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c.EncodeWords(msgs[i])
		}
	})
	return out
}

// batchGrain is the minimum number of messages per worker for the batch
// encode/decode entry points.
const batchGrain = 8

// DecodeFeature returns the most likely concept index for one feature
// vector. Scratch comes from the package pool, so steady-state calls are
// allocation-free.
func (c *Codec) DecodeFeature(feat []float64) int {
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	var dst [1]int
	c.DecodeFeaturesInto(sc, sc.Wrap(1, len(feat), feat), dst[:])
	return dst[0]
}

// DecodeFeaturesInto decodes a feats.Rows x FeatureDim feature matrix into
// concept indices written to dst (length feats.Rows): two batched GEMMs
// (hidden, logits) and an argmax sweep, with all temporaries drawn from sc.
// It is the zero-allocation batched decode used by the steady-state serving
// path and is bit-identical to per-token DecodeFeature calls at any worker
// count.
func (c *Codec) DecodeFeaturesInto(sc *mat.Scratch, feats *mat.Dense, dst []int) {
	if len(dst) != feats.Rows {
		panic("semantic: DecodeFeaturesInto dst length mismatch")
	}
	if c.cfg.Tier != TierF64 {
		c.decodeFeaturesIntoTiered(sc, feats, dst)
		return
	}
	h := sc.Mat(feats.Rows, c.cfg.HiddenDim)
	c.dec.ForwardBatch(h, feats)
	nn.TanhForward(h.Data, h.Data)
	logits := sc.Mat(feats.Rows, c.domain.NumConcepts())
	c.out.ForwardBatch(logits, h)
	for i := 0; i < feats.Rows; i++ {
		dst[i] = mat.Argmax(logits.Row(i))
	}
}

// DecodeFeatures decodes a feature sequence into concept indices. Decoding
// only reads the codec, so it is safe to call concurrently. The sequence is
// packed into one matrix and decoded with batched GEMMs, bit-identical to
// per-token decoding.
func (c *Codec) DecodeFeatures(feats [][]float64) []int {
	out := make([]int, len(feats))
	if len(feats) == 0 {
		return out
	}
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	d := sc.Mat(len(feats), c.cfg.FeatureDim)
	for i, f := range feats {
		if len(f) != c.cfg.FeatureDim {
			panic("semantic: DecodeFeatures feature length mismatch")
		}
		copy(d.Row(i), f)
	}
	c.DecodeFeaturesInto(sc, d, out)
	return out
}

// DecodeBatch decodes a batch of feature sequences, sharding messages
// across the mat worker pool. The result is ordered like feats and
// bit-identical to calling DecodeFeatures on each sequence serially.
func (c *Codec) DecodeBatch(feats [][][]float64) [][]int {
	out := make([][]int, len(feats))
	mat.ParallelFor(len(feats), batchGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = c.DecodeFeatures(feats[i])
		}
	})
	return out
}

// RestoreWords renders concept indices as canonical surface forms: the
// restored message shown to the receiving user.
func (c *Codec) RestoreWords(concepts []int) []string {
	out := make([]string, len(concepts))
	for i, ci := range concepts {
		out[i] = c.domain.Canonical(ci)
	}
	return out
}

// RoundTripInto encodes then decodes words with no channel in between,
// writing the decoded concepts into dst (length len(words)). All
// temporaries come from sc, so steady-state calls allocate nothing.
func (c *Codec) RoundTripInto(sc *mat.Scratch, words []string, dst []int) {
	c.DecodeFeaturesInto(sc, c.EncodeWordsInto(sc, words), dst)
}

// RoundTrip encodes then decodes words with no channel in between; it is
// the sender-edge "decoder copy" computation from the paper's §II-C used
// for mismatch calculation. One scratch arena from the package pool backs
// the whole round trip instead of per-token buffers.
func (c *Codec) RoundTrip(words []string) []int {
	out := make([]int, len(words))
	if len(words) == 0 {
		return out
	}
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	c.RoundTripInto(sc, words, out)
	return out
}

// Validate performs internal shape consistency checks, returning an error
// describing the first violation. It is cheap and intended for use after
// deserialization.
func (c *Codec) Validate() error {
	if c.emb.Dim() != c.enc.In() {
		return fmt.Errorf("semantic: embedding dim %d != encoder in %d", c.emb.Dim(), c.enc.In())
	}
	if c.enc.Out() != c.dec.In() {
		return fmt.Errorf("semantic: encoder out %d != decoder in %d", c.enc.Out(), c.dec.In())
	}
	if c.dec.Out() != c.out.In() {
		return fmt.Errorf("semantic: decoder hidden %d != output in %d", c.dec.Out(), c.out.In())
	}
	if c.out.Out() != c.domain.NumConcepts() {
		return fmt.Errorf("semantic: output dim %d != concepts %d", c.out.Out(), c.domain.NumConcepts())
	}
	return nil
}
