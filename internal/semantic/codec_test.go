package semantic

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

// testConfig keeps unit-test training fast.
func testConfig() Config {
	return Config{
		EmbedDim:   12,
		FeatureDim: 8,
		HiddenDim:  16,
		Epochs:     3,
		Sentences:  500,
		Seed:       7,
	}
}

var (
	corpOnce   sync.Once
	sharedCorp *corpus.Corpus
	itCodec    *Codec
)

// sharedFixtures pretrains a single IT-domain codec reused by read-only
// tests to keep the suite fast.
func sharedFixtures(t *testing.T) (*corpus.Corpus, *Codec) {
	t.Helper()
	corpOnce.Do(func() {
		sharedCorp = corpus.Build()
		itCodec = Pretrain(sharedCorp.Domain("it"), sharedCorp, testConfig())
	})
	return sharedCorp, itCodec
}

func TestNewCodecShapes(t *testing.T) {
	corp := corpus.Build()
	d := corp.Domain("medical")
	c := NewCodec(d, testConfig())
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.FeatureDim() != 8 {
		t.Fatalf("FeatureDim = %d", c.FeatureDim())
	}
	ps := c.Params()
	if len(ps.Params) != 7 {
		t.Fatalf("param tensors = %d, want 7", len(ps.Params))
	}
	if c.SizeBytes() <= 0 || c.EncoderSizeBytes() <= 0 || c.DecoderSizeBytes() <= 0 {
		t.Fatal("non-positive size accounting")
	}
	if c.EncoderSizeBytes()+c.DecoderSizeBytes() != c.SizeBytes()+4 {
		// Each subset carries its own 4-byte count header, so the two
		// halves overlap the full set's single header by exactly 4 bytes.
		t.Fatalf("size split inconsistent: enc %d + dec %d vs all %d",
			c.EncoderSizeBytes(), c.DecoderSizeBytes(), c.SizeBytes())
	}
}

func TestPretrainLearnsReconstruction(t *testing.T) {
	corp, c := sharedFixtures(t)
	d := corp.Domain("it")
	gen := corpus.NewGenerator(corp, mat.NewRNG(1234))
	var examples []Example
	for _, m := range gen.Batch(d.Index, 150, nil) {
		examples = append(examples, ExamplesFromMessage(d, m)...)
	}
	acc := c.Evaluate(examples)
	if acc < 0.85 {
		t.Fatalf("pretrained reconstruction accuracy = %v, want >= 0.85", acc)
	}
}

func TestRoundTripMatchesEncodeDecode(t *testing.T) {
	corp, c := sharedFixtures(t)
	gen := corpus.NewGenerator(corp, mat.NewRNG(55))
	m := gen.Message(corp.Domain("it").Index, nil)
	got := c.RoundTrip(m.Words)
	want := c.DecodeFeatures(c.EncodeWords(m.Words))
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("RoundTrip disagrees with Encode+Decode")
		}
	}
}

func TestFeaturesBounded(t *testing.T) {
	corp, c := sharedFixtures(t)
	gen := corpus.NewGenerator(corp, mat.NewRNG(77))
	for i := 0; i < 20; i++ {
		m := gen.Message(corp.Domain("it").Index, nil)
		for _, f := range c.EncodeWords(m.Words) {
			for _, v := range f {
				if v < -1 || v > 1 {
					t.Fatalf("feature %v outside [-1,1]", v)
				}
			}
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	_, c := sharedFixtures(t)
	clone := c.Clone()
	orig := c.Params().ByName(ParamDecW).Data[0]
	clone.Params().ByName(ParamDecW).Data[0] = orig + 42
	if c.Params().ByName(ParamDecW).Data[0] != orig {
		t.Fatal("Clone shares decoder storage")
	}
}

func TestUnknownWordEncodesAsUnknown(t *testing.T) {
	corp, c := sharedFixtures(t)
	d := corp.Domain("it")
	fUnknown := make([]float64, c.FeatureDim())
	c.EncodeSurfaceID(d.SurfaceID("notaword12345"), fUnknown)
	fUnk := make([]float64, c.FeatureDim())
	c.EncodeSurfaceID(corpus.UnknownSurfaceID, fUnk)
	for i := range fUnk {
		if fUnknown[i] != fUnk[i] {
			t.Fatal("out-of-lexicon word did not encode as unknown surface")
		}
	}
}

func TestDecoderSyncViaDelta(t *testing.T) {
	// A receiver holding a stale decoder copy must, after applying the
	// sender's decoder delta, decode identically to the sender — the
	// §II-C/§II-D consistency property the whole update process relies on.
	corp, c := sharedFixtures(t)
	d := corp.Domain("it")
	sender := c.Clone()
	receiver := c.Clone()

	// Fine-tune the sender's individual model.
	gen := corpus.NewGenerator(corp, mat.NewRNG(9))
	idio := corpus.NewIdiolect(corp, mat.NewRNG(10), 0.4)
	var examples []Example
	for _, m := range gen.Batch(d.Index, 60, idio) {
		examples = append(examples, ExamplesFromMessage(d, m)...)
	}
	before := sender.DecoderParams().Clone()
	sender.FineTune(examples, 2, 0.02, mat.NewRNG(11))

	// Delta = after - before, shipped and applied to the receiver.
	delta := sender.DecoderParams().Clone()
	delta.AddScaled(-1, before)
	cg := nn.Compress(delta, nn.CompressOptions{})
	if err := cg.ApplyTo(receiver.DecoderParams(), 1); err != nil {
		t.Fatalf("apply delta: %v", err)
	}

	// Sender and receiver decoders must now agree everywhere.
	for i := 0; i < 40; i++ {
		m := gen.Message(d.Index, idio)
		feats := sender.EncodeWords(m.Words)
		a := sender.DecodeFeatures(feats)
		b := receiver.DecodeFeatures(feats)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("receiver decoder diverged after delta sync")
			}
		}
	}
}

func TestPersonalizationReducesIdiolectMismatch(t *testing.T) {
	// The paper's §II-B claim: general models mis-handle user idiolects;
	// user-specific individual models fix this.
	corp, general := sharedFixtures(t)
	d := corp.Domain("it")
	rng := mat.NewRNG(42)
	idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
	gen := corpus.NewGenerator(corp, rng.Split())

	var train, test []Example
	for _, m := range gen.Batch(d.Index, 120, idio) {
		train = append(train, ExamplesFromMessage(d, m)...)
	}
	for _, m := range gen.Batch(d.Index, 80, idio) {
		test = append(test, ExamplesFromMessage(d, m)...)
	}

	generalAcc := general.Evaluate(test)
	individual := general.Clone()
	individual.FineTune(train, 4, 0.03, rng.Split())
	individualAcc := individual.Evaluate(test)

	if individualAcc <= generalAcc {
		t.Fatalf("personalization did not help: general %v, individual %v", generalAcc, individualAcc)
	}
	if individualAcc-generalAcc < 0.03 {
		t.Fatalf("personalization gain too small: general %v, individual %v", generalAcc, individualAcc)
	}
}

func TestPolysemyDecodesPerDomain(t *testing.T) {
	// "bus" must restore to "interconnect" under the IT codec and to
	// "shuttle" under the travel codec — the paper's motivating example.
	corp, itC := sharedFixtures(t)
	cfg := testConfig()
	travelC := Pretrain(corp.Domain("travel"), corp, cfg)

	itConcepts := itC.RoundTrip([]string{"bus"})
	travelConcepts := travelC.RoundTrip([]string{"bus"})
	itWord := itC.RestoreWords(itConcepts)[0]
	travelWord := travelC.RestoreWords(travelConcepts)[0]
	if itWord != "interconnect" {
		t.Errorf("IT codec restored bus -> %q, want interconnect", itWord)
	}
	if travelWord != "shuttle" {
		t.Errorf("travel codec restored bus -> %q, want shuttle", travelWord)
	}
}

func TestTrainEpochEmptyExamples(t *testing.T) {
	corp := corpus.Build()
	c := NewCodec(corp.Domain("it"), testConfig())
	res := c.TrainEpoch(nil, &nn.SGD{LR: 0.1}, mat.NewRNG(1), 0)
	if res.MeanLoss != 0 || res.Accuracy != 0 {
		t.Fatalf("empty epoch result = %+v", res)
	}
}

func TestPretrainDeterministic(t *testing.T) {
	corp := corpus.Build()
	cfg := testConfig()
	cfg.Sentences = 100
	cfg.Epochs = 1
	a := Pretrain(corp.Domain("news"), corp, cfg)
	b := Pretrain(corp.Domain("news"), corp, cfg)
	pa, pb := a.Params(), b.Params()
	for i := range pa.Params {
		for j := range pa.Params[i].M.Data {
			if pa.Params[i].M.Data[j] != pb.Params[i].M.Data[j] {
				t.Fatal("Pretrain is not deterministic")
			}
		}
	}
}
