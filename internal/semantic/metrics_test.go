package semantic

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
	"repro/internal/mat"
)

func TestConceptAccuracy(t *testing.T) {
	tests := []struct {
		name      string
		got, want []int
		expect    float64
	}{
		{"perfect", []int{1, 2, 3}, []int{1, 2, 3}, 1},
		{"none", []int{9, 9, 9}, []int{1, 2, 3}, 0},
		{"half", []int{1, 9}, []int{1, 2}, 0.5},
		{"short candidate", []int{1}, []int{1, 2}, 0.5},
		{"long candidate", []int{1, 2, 3, 4}, []int{1, 2}, 1},
		{"empty reference", []int{1}, nil, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := ConceptAccuracy(tc.got, tc.want); got != tc.expect {
				t.Fatalf("ConceptAccuracy = %v, want %v", got, tc.expect)
			}
		})
	}
}

func TestWordAccuracy(t *testing.T) {
	if got := WordAccuracy([]string{"a", "b"}, []string{"a", "c"}); got != 0.5 {
		t.Fatalf("WordAccuracy = %v", got)
	}
	if got := WordAccuracy(nil, nil); got != 0 {
		t.Fatalf("WordAccuracy empty = %v", got)
	}
}

func TestBLEU1(t *testing.T) {
	ref := []string{"the", "server", "is", "down"}
	if got := BLEU1(ref, ref); got != 1 {
		t.Fatalf("BLEU1 identical = %v", got)
	}
	if got := BLEU1([]string{"x", "y", "z", "w"}, ref); got != 0 {
		t.Fatalf("BLEU1 disjoint = %v", got)
	}
	// Clipping: repeated candidate words must not overcount.
	got := BLEU1([]string{"the", "the", "the", "the"}, ref)
	if got != 0.25 {
		t.Fatalf("BLEU1 clipped = %v, want 0.25", got)
	}
	// Brevity penalty: a 2-token candidate against a 4-token reference.
	short := BLEU1([]string{"the", "server"}, ref)
	want := math.Exp(1-2) * 1.0
	if math.Abs(short-want) > 1e-12 {
		t.Fatalf("BLEU1 brevity = %v, want %v", short, want)
	}
	if BLEU1(nil, ref) != 0 || BLEU1(ref, nil) != 0 {
		t.Fatal("BLEU1 empty cases should be 0")
	}
}

func TestSimilarityBounds(t *testing.T) {
	_, c := sharedFixtures(t)
	d := c.Domain()
	content := d.ContentConcepts()
	want := content[:4]
	// Identical sequences score exactly 1.
	if got := Similarity(c, want, want); got != 1 {
		t.Fatalf("Similarity identical = %v", got)
	}
	// Mismatches score strictly below exact matches but may earn partial
	// credit in [0, 0.9].
	got := Similarity(c, []int{content[5], content[6], content[7], content[8]}, want)
	if got < 0 || got >= 1 {
		t.Fatalf("Similarity mismatch = %v, want in [0,1)", got)
	}
	if Similarity(c, nil, nil) != 0 {
		t.Fatal("Similarity empty = nonzero")
	}
}

func TestSimilarityRewardsExactOverMismatch(t *testing.T) {
	_, c := sharedFixtures(t)
	d := c.Domain()
	content := d.ContentConcepts()
	want := content[:6]
	exact := Similarity(c, want, want)
	oneOff := append([]int{}, want...)
	oneOff[0] = content[10]
	partial := Similarity(c, oneOff, want)
	if partial >= exact {
		t.Fatalf("one mismatch (%v) should score below exact (%v)", partial, exact)
	}
}

func TestSimilarityHandlesInvalidConcepts(t *testing.T) {
	_, c := sharedFixtures(t)
	got := Similarity(c, []int{-1, 99999}, []int{1, 2})
	if got < 0 || got > 1 || math.IsNaN(got) {
		t.Fatalf("Similarity with invalid concepts = %v", got)
	}
}

// Property: ConceptAccuracy is within [0,1] and equals 1 iff sequences
// agree on the reference prefix.
func TestConceptAccuracyQuick(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := mat.NewRNG(seed)
		ln := int(n%10) + 1
		want := make([]int, ln)
		got := make([]int, ln)
		allMatch := true
		for i := range want {
			want[i] = rng.Intn(5)
			got[i] = rng.Intn(5)
			if got[i] != want[i] {
				allMatch = false
			}
		}
		acc := ConceptAccuracy(got, want)
		if acc < 0 || acc > 1 {
			return false
		}
		return (acc == 1) == allMatch
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExamplesFromMessage(t *testing.T) {
	corp := corpus.Build()
	d := corp.Domain("sports")
	gen := corpus.NewGenerator(corp, mat.NewRNG(3))
	m := gen.Message(d.Index, nil)
	exs := ExamplesFromMessage(d, m)
	if len(exs) != len(m.Words) {
		t.Fatalf("examples = %d, words = %d", len(exs), len(m.Words))
	}
	for i, ex := range exs {
		if ex.SurfaceID != d.SurfaceID(m.Words[i]) {
			t.Fatal("surface ID mismatch")
		}
		if ex.ConceptID != m.ConceptIDs[i] {
			t.Fatal("concept ID mismatch")
		}
	}
}
