package semantic

import (
	"testing"

	"repro/internal/mat"
)

// TestCodecSteadyStateZeroAllocs pins the warm codec hot path at zero heap
// allocations: encode, batched decode (the codec path of DecodeBatch), and
// the decoder-copy round trip, all against one reused scratch arena. Any
// regression that reintroduces per-token or per-call buffers fails here.
// The race detector instruments allocations, so the budget only holds in
// non-race builds.
func TestCodecSteadyStateZeroAllocs(t *testing.T) {
	if mat.RaceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	corp, codec := sharedFixtures(t)
	msgs := batchMessages(corp, 8)
	words := msgs[0]

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)
	mat.SetParallelism(1) // sharding spawns goroutines, which allocate

	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	concepts := make([]int, len(words))

	// The per-message codec path exactly as Transmit drives it: batched
	// encode, batched decode of the received features, and the decoder-copy
	// round trip reusing the encoded features.
	message := func() {
		sc.Reset()
		feats := codec.EncodeWordsInto(sc, words)
		codec.DecodeFeaturesInto(sc, feats, concepts)
		codec.DecodeFeaturesInto(sc, feats, concepts)
	}
	message() // warm the arena to its high-water mark
	if allocs := testing.AllocsPerRun(100, message); allocs != 0 {
		t.Fatalf("steady-state encode/decode allocates %v times per message, want 0", allocs)
	}

	// The batched decode path: every token of a whole message batch packed
	// into one matrix (the DecodeBatch hot loop), decoded in place.
	total := 0
	for _, m := range msgs {
		total += len(m)
	}
	batchConcepts := make([]int, total)
	batch := func() {
		sc.Reset()
		d := sc.Mat(total, codec.FeatureDim())
		row := 0
		for _, m := range msgs {
			codec.encodeWordsTo(sc, sc.Wrap(len(m), codec.FeatureDim(), d.Data[row*codec.FeatureDim():(row+len(m))*codec.FeatureDim()]), m)
			row += len(m)
		}
		codec.DecodeFeaturesInto(sc, d, batchConcepts)
	}
	batch()
	if allocs := testing.AllocsPerRun(100, batch); allocs != 0 {
		t.Fatalf("steady-state batched decode allocates %v times per batch, want 0", allocs)
	}

	// RoundTripInto is the scratch-arena variant RecordTransaction uses on
	// the decoder-copy path.
	roundTrip := func() {
		sc.Reset()
		codec.RoundTripInto(sc, words, concepts)
	}
	roundTrip()
	if allocs := testing.AllocsPerRun(100, roundTrip); allocs != 0 {
		t.Fatalf("steady-state round trip allocates %v times per message, want 0", allocs)
	}
}
