package semantic

import (
	"errors"

	"repro/internal/mat"
	"repro/internal/nn"
)

// VectorCodec is the multimodal extension from the paper's §III-B: a
// semantic codec for continuous vector streams (avatar pose, sensor
// readings) rather than text. It is a denoising linear autoencoder with a
// tanh-bounded bottleneck, so its features ride the same quantize/code/
// modulate transport as the text codec's.
type VectorCodec struct {
	enc *nn.Linear // In -> F
	dec *nn.Linear // F -> In

	inDim, featDim int
}

// NewVectorCodec allocates an untrained codec compressing inDim-dimensional
// vectors to featDim features.
func NewVectorCodec(rng *mat.RNG, inDim, featDim int) *VectorCodec {
	return &VectorCodec{
		enc:     nn.NewLinear(rng, inDim, featDim),
		dec:     nn.NewLinear(rng, featDim, inDim),
		inDim:   inDim,
		featDim: featDim,
	}
}

// InDim returns the source vector dimensionality.
func (vc *VectorCodec) InDim() int { return vc.inDim }

// FeatureDim returns the transmitted feature dimensionality.
func (vc *VectorCodec) FeatureDim() int { return vc.featDim }

// Params returns the parameter set (shared storage).
func (vc *VectorCodec) Params() *nn.ParamSet {
	ps := &nn.ParamSet{}
	ps.Add("venc.w", vc.enc.W)
	ps.Add("venc.b", vc.enc.B)
	ps.Add("vdec.w", vc.dec.W)
	ps.Add("vdec.b", vc.dec.B)
	return ps
}

// Encode computes the bounded feature vector for x. dst must have length
// FeatureDim.
func (vc *VectorCodec) Encode(dst, x []float64) {
	if len(x) != vc.inDim || len(dst) != vc.featDim {
		panic("semantic: VectorCodec.Encode length mismatch")
	}
	vc.enc.Forward(dst, x)
	nn.TanhForward(dst, dst)
}

// Decode reconstructs a source vector from features. dst must have length
// InDim.
func (vc *VectorCodec) Decode(dst, feat []float64) {
	if len(feat) != vc.featDim || len(dst) != vc.inDim {
		panic("semantic: VectorCodec.Decode length mismatch")
	}
	vc.dec.Forward(dst, feat)
}

// errNoSamples reports training with no data.
var errNoSamples = errors.New("semantic: VectorCodec training needs samples")

// Train fits the autoencoder on samples by SGD over the reconstruction
// MSE, injecting Gaussian feature noise (denoising training) so decoding
// tolerates channel corruption. It returns the final epoch's mean squared
// error per dimension.
func (vc *VectorCodec) Train(samples [][]float64, epochs int, lr, noiseStd float64, rng *mat.RNG) (float64, error) {
	if len(samples) == 0 {
		return 0, errNoSamples
	}
	if epochs <= 0 {
		epochs = 10
	}
	if lr <= 0 {
		lr = 0.01
	}
	params := vc.Params()
	grads := params.ZeroClone()
	gEncW := grads.ByName("venc.w")
	gEncB := grads.ByName("venc.b")
	gDecW := grads.ByName("vdec.w")
	gDecB := grads.ByName("vdec.b")
	opt := &nn.Adam{LR: lr, Clip: 5}

	pre := make([]float64, vc.featDim)
	feat := make([]float64, vc.featDim)
	noisy := make([]float64, vc.featDim)
	out := make([]float64, vc.inDim)
	dOut := make([]float64, vc.inDim)
	dFeat := make([]float64, vc.featDim)

	var lastMSE float64
	const batch = 8
	for e := 0; e < epochs; e++ {
		order := rng.Perm(len(samples))
		total := 0.0
		inBatch := 0
		grads.Zero()
		for _, si := range order {
			x := samples[si]
			vc.enc.Forward(pre, x)
			nn.TanhForward(feat, pre)
			copy(noisy, feat)
			if noiseStd > 0 {
				for i := range noisy {
					noisy[i] += noiseStd * rng.NormFloat64()
				}
			}
			vc.dec.Forward(out, noisy)
			total += nn.MSE(dOut, out, x)
			vc.dec.Backward(noisy, dOut, gDecW, gDecB, dFeat)
			nn.TanhBackward(dFeat, feat, dFeat)
			vc.enc.Backward(x, dFeat, gEncW, gEncB, nil)
			inBatch++
			if inBatch == batch {
				scaleGrads(grads, 1/float64(batch))
				opt.Step(params, grads)
				grads.Zero()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			scaleGrads(grads, 1/float64(inBatch))
			opt.Step(params, grads)
			grads.Zero()
		}
		lastMSE = total / float64(len(samples)) / float64(vc.inDim) * 2 // MSE returns 0.5*sum
	}
	return lastMSE, nil
}

// NMSE returns the normalized mean squared reconstruction error of the
// codec over samples (reconstruction energy relative to signal energy),
// without noise. Lower is better; 0 is perfect.
func (vc *VectorCodec) NMSE(samples [][]float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	feat := make([]float64, vc.featDim)
	out := make([]float64, vc.inDim)
	num, den := 0.0, 0.0
	for _, x := range samples {
		vc.Encode(feat, x)
		vc.Decode(out, feat)
		for i := range x {
			d := out[i] - x[i]
			num += d * d
			den += x[i] * x[i]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
