package semantic

import (
	"testing"

	"repro/internal/mat"
)

// poseSamples synthesizes correlated "avatar pose" vectors: observable
// dim-D vectors generated from a low-dimensional latent, i.e. compressible
// structure a semantic codec can exploit.
func poseSamples(rng *mat.RNG, n, dim, latent int) [][]float64 {
	// Fixed mixing matrix.
	mix := mat.NewDense(dim, latent)
	mix.Randomize(rng, 1)
	out := make([][]float64, n)
	z := make([]float64, latent)
	for i := range out {
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		x := make([]float64, dim)
		mix.MulVec(x, z)
		for j := range x {
			x[j] += 0.02 * rng.NormFloat64() // small observation noise
		}
		out[i] = x
	}
	return out
}

func TestVectorCodecLearnsCompressibleData(t *testing.T) {
	rng := mat.NewRNG(5)
	// Train and test must share the mixing matrix: one draw, then split.
	all := poseSamples(mat.NewRNG(7), 500, 12, 4)
	train, test := all[:400], all[400:]

	vc := NewVectorCodec(rng.Split(), 12, 5)
	before := vc.NMSE(test)
	mse, err := vc.Train(train, 30, 0.02, 0.05, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	after := vc.NMSE(test)
	if after >= before {
		t.Fatalf("training did not reduce NMSE: %v -> %v", before, after)
	}
	// Latent dim 4 < feature dim 5: near-lossless compression is possible.
	if after > 0.15 {
		t.Fatalf("NMSE = %v, want <= 0.15 for compressible data", after)
	}
	if mse <= 0 {
		t.Fatalf("training MSE = %v", mse)
	}
}

func TestVectorCodecBottleneckLimits(t *testing.T) {
	// With feature dim below the latent dimension, reconstruction must be
	// lossy: NMSE stays well above the roomy codec's.
	all := poseSamples(mat.NewRNG(9), 500, 12, 6)
	train, test := all[:400], all[400:]
	rng := mat.NewRNG(10)

	tight := NewVectorCodec(rng.Split(), 12, 2)
	if _, err := tight.Train(train, 30, 0.02, 0.05, rng.Split()); err != nil {
		t.Fatal(err)
	}
	roomy := NewVectorCodec(rng.Split(), 12, 8)
	if _, err := roomy.Train(train, 30, 0.02, 0.05, rng.Split()); err != nil {
		t.Fatal(err)
	}
	if tight.NMSE(test) <= roomy.NMSE(test) {
		t.Fatalf("2-dim bottleneck (%v) should reconstruct worse than 8-dim (%v)",
			tight.NMSE(test), roomy.NMSE(test))
	}
}

func TestVectorCodecFeaturesBounded(t *testing.T) {
	all := poseSamples(mat.NewRNG(11), 50, 8, 3)
	vc := NewVectorCodec(mat.NewRNG(12), 8, 4)
	feat := make([]float64, 4)
	for _, x := range all {
		vc.Encode(feat, x)
		for _, v := range feat {
			if v < -1 || v > 1 {
				t.Fatalf("feature %v outside [-1,1]", v)
			}
		}
	}
}

func TestVectorCodecValidation(t *testing.T) {
	vc := NewVectorCodec(mat.NewRNG(1), 8, 4)
	if _, err := vc.Train(nil, 5, 0.01, 0, mat.NewRNG(2)); err == nil {
		t.Fatal("empty training set accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not caught")
		}
	}()
	vc.Encode(make([]float64, 4), make([]float64, 3))
}

func TestVectorCodecNMSEEmpty(t *testing.T) {
	vc := NewVectorCodec(mat.NewRNG(1), 4, 2)
	if vc.NMSE(nil) != 0 {
		t.Fatal("empty NMSE should be 0")
	}
}
