package semantic

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

// trainExamples builds a deterministic example set whose size is NOT a
// multiple of the minibatch, so the partial trailing batch is exercised.
func trainExamples(corp *corpus.Corpus, n int) []Example {
	d := corp.Domain("it")
	gen := corpus.NewGenerator(corp, mat.NewRNG(77))
	var out []Example
	for _, m := range gen.Batch(d.Index, 64, nil) {
		out = append(out, ExamplesFromMessage(d, m)...)
	}
	return out[:n]
}

// TestTrainEpochMatchesReference asserts the batched GEMM TrainEpoch
// produces bitwise-identical parameters, loss and accuracy to the
// historical per-example loop, at 1, 2 and 8 workers, for both optimizers
// and with and without noise.
func TestTrainEpochMatchesReference(t *testing.T) {
	corp := corpus.Build()
	base := NewCodec(corp.Domain("it"), Config{Seed: 9})
	examples := trainExamples(corp, 83) // 83 = 10 full batches + tail of 3

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)

	for _, tc := range []struct {
		name     string
		noiseStd float64
		opt      func() nn.Optimizer
	}{
		{"adam_noise", 0.2, func() nn.Optimizer { return &nn.Adam{LR: 0.03, Clip: 5} }},
		{"sgd_noiseless", 0, func() nn.Optimizer { return &nn.SGD{LR: 0.01, Momentum: 0.5, Clip: 5} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mat.SetParallelism(1)
			ref := base.Clone()
			wantRes := trainEpochReference(ref, examples, tc.opt(), mat.NewRNG(31), tc.noiseStd)
			want := ref.Params()

			for _, workers := range []int{1, 2, 8} {
				mat.SetParallelism(workers)
				got := base.Clone()
				gotRes := got.TrainEpoch(examples, tc.opt(), mat.NewRNG(31), tc.noiseStd)
				if gotRes != wantRes {
					t.Fatalf("%d workers: TrainResult %+v, want %+v", workers, gotRes, wantRes)
				}
				gp := got.Params()
				for i := range want.Params {
					wm, gm := want.Params[i].M, gp.Params[i].M
					for j := range wm.Data {
						if gm.Data[j] != wm.Data[j] {
							t.Fatalf("%d workers: tensor %q element %d = %v, want %v",
								workers, want.Params[i].Name, j, gm.Data[j], wm.Data[j])
						}
					}
				}
			}
		})
	}
}

// TestEncodeDecodeGEMMMatchesPerToken asserts the batched encode/decode
// entry points are bit-identical to the per-token EncodeSurfaceID /
// single-vector decode path at 1, 2 and 8 workers.
func TestEncodeDecodeGEMMMatchesPerToken(t *testing.T) {
	corp, codec := sharedFixtures(t)
	msgs := batchMessages(corp, 12)

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)

	for _, words := range msgs {
		// Per-token reference path.
		mat.SetParallelism(1)
		wantFeats := make([][]float64, len(words))
		for i, w := range words {
			f := make([]float64, codec.FeatureDim())
			codec.EncodeSurfaceID(codec.Domain().SurfaceID(w), f)
			wantFeats[i] = f
		}
		wantConcepts := make([]int, len(words))
		for i, f := range wantFeats {
			wantConcepts[i] = codec.DecodeFeature(f)
		}

		for _, workers := range []int{1, 2, 8} {
			mat.SetParallelism(workers)
			sc := mat.GetScratch()
			feats := codec.EncodeWordsInto(sc, words)
			for i := range words {
				for j, v := range wantFeats[i] {
					if feats.At(i, j) != v {
						t.Fatalf("%d workers: feature (%d,%d) = %v, want %v", workers, i, j, feats.At(i, j), v)
					}
				}
			}
			got := make([]int, len(words))
			codec.DecodeFeaturesInto(sc, feats, got)
			for i := range got {
				if got[i] != wantConcepts[i] {
					t.Fatalf("%d workers: concept %d = %d, want %d", workers, i, got[i], wantConcepts[i])
				}
			}
			// RoundTripInto must agree with encode-then-decode.
			sc.Reset()
			rt := make([]int, len(words))
			codec.RoundTripInto(sc, words, rt)
			for i := range rt {
				if rt[i] != wantConcepts[i] {
					t.Fatalf("%d workers: roundtrip concept %d = %d, want %d", workers, i, rt[i], wantConcepts[i])
				}
			}
			mat.PutScratch(sc)
		}
	}
}

// TestEvaluateMatchesPerExample asserts the chunked batched Evaluate equals
// the per-example encode/decode accuracy, across chunk boundaries.
func TestEvaluateMatchesPerExample(t *testing.T) {
	corp, codec := sharedFixtures(t)
	examples := trainExamples(corp, 300) // straddles the 256-example chunk

	feat := make([]float64, codec.FeatureDim())
	correct := 0
	for _, ex := range examples {
		codec.EncodeSurfaceID(ex.SurfaceID, feat)
		if codec.DecodeFeature(feat) == ex.ConceptID {
			correct++
		}
	}
	want := float64(correct) / float64(len(examples))
	if got := codec.Evaluate(examples); got != want {
		t.Fatalf("Evaluate = %v, want %v", got, want)
	}
}
