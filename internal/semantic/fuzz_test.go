package semantic

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/corpus"
)

// FuzzReadCodec feeds arbitrary bytes to the .kbm reader: it must never
// panic or over-allocate (forged headers once drove NewCodec into
// makeslice panics), and every stream it accepts must validate and
// re-serialize stably.
func FuzzReadCodec(f *testing.F) {
	corp := corpus.Build()
	codec := NewCodec(corp.Domains[0], Config{
		EmbedDim: 6, FeatureDim: 3, HiddenDim: 8, Epochs: 1, Sentences: 50,
	})
	var buf bytes.Buffer
	if _, err := codec.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:16])           // truncated after the header
	f.Add(valid[:len(valid)/2]) // truncated mid-tensor
	f.Add([]byte{})
	f.Add([]byte("SKB1 but not really"))
	// A forged header demanding ~4-billion-wide layers: the reader must
	// reject it before allocating, not crash in NewCodec.
	forged := append([]byte{}, valid[:12]...)
	for i := 0; i < 5; i++ {
		forged = binary.LittleEndian.AppendUint32(forged, 0xfffffff0)
	}
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCodec(bytes.NewReader(data), corp)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("reader accepted a codec that fails validation: %v", err)
		}
		var out bytes.Buffer
		if _, err := c.WriteTo(&out); err != nil {
			t.Fatalf("accepted codec fails to serialize: %v", err)
		}
		if _, err := ReadCodec(bytes.NewReader(out.Bytes()), corp); err != nil {
			t.Fatalf("re-serialized codec fails to parse: %v", err)
		}
	})
}
