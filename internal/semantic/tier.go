package semantic

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

// Tier selects the numeric kernels the codec's serving entry points
// (EncodeWordsInto/EncodeBatchInto/DecodeFeaturesInto and the APIs built on
// them) run on. Training and the single-token EncodeSurfaceID always run
// the bit-exact f64 path regardless of tier, so tiers never change what a
// model learns — only how cheaply it serves. Evaluate decodes through the
// serving tier, so it reports the accuracy users of that tier would see.
type Tier uint8

const (
	// TierF64 is the bit-exact float64 reference: serving output is
	// bit-identical to the historical implementation. The default.
	TierF64 Tier = iota
	// TierF32 runs float32 kernels with a relaxed (but fixed and
	// deterministic) accumulation order and a polynomial tanh.
	TierF32
	// TierInt8 serves frozen weights as 8-bit codes on per-row affine
	// grids with int32 accumulation, dequantizing on output. Updated
	// (fine-tuned) models are transparently re-quantized on next use.
	TierInt8
)

// String returns the flag/config spelling of the tier.
func (t Tier) String() string {
	switch t {
	case TierF64:
		return "f64"
	case TierF32:
		return "f32"
	case TierInt8:
		return "int8"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// ParseTier parses a tier name. The empty string selects the f64 default,
// so an unset flag or config field keeps bit-exact behavior.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "f64":
		return TierF64, nil
	case "f32":
		return TierF32, nil
	case "int8":
		return TierInt8, nil
	}
	return TierF64, fmt.Errorf("semantic: unknown kernel tier %q (want f64, f32 or int8)", s)
}

// Tiers lists every tier, for sweeps and flag documentation.
func Tiers() []Tier { return []Tier{TierF64, TierF32, TierInt8} }

// tierState caches the reduced-precision weight shadows of one codec for
// one tier. It is immutable once built; the codec swaps whole states
// atomically, so concurrent readers either see a complete state or build
// their own identical one (the build is deterministic).
type tierState struct {
	tier  Tier
	emb32 *mat.Dense32 // vocab x E, shared by f32 and int8 tiers

	enc32, dec32, out32 *nn.Linear32 // f32 tier
	encQ8, decQ8, outQ8 *nn.LinearQ8 // int8 tier
}

// Tier returns the codec's current kernel tier.
func (c *Codec) Tier() Tier { return c.cfg.Tier }

// SetTier selects the kernel tier for subsequent serving calls and drops
// any cached weight shadows. It returns an error for an undefined tier
// value. Safe to call on a live codec: in-flight decodes finish on the
// shadows they already loaded.
func (c *Codec) SetTier(t Tier) error {
	if t > TierInt8 {
		return fmt.Errorf("semantic: undefined kernel tier %d", uint8(t))
	}
	c.cfg.Tier = t
	c.tiers.Store(nil)
	return nil
}

// InvalidateTierCache drops the cached reduced-precision weight shadows.
// Every path that mutates parameter tensors must invalidate: TrainEpoch
// (covering Pretrain/FineTune/fl.RunUpdate) does it internally, and
// fl.ApplyUpdate — which writes through shared ParamSet storage — calls
// this explicitly. The next tiered call lazily re-derives the shadows from
// the current weights.
func (c *Codec) InvalidateTierCache() { c.tiers.Store(nil) }

// tierShadow returns the weight shadows for the current tier, building and
// caching them on first use (or after an invalidation). Concurrent callers
// may race to build; the results are identical and one winner is kept.
func (c *Codec) tierShadow() *tierState {
	if ts := c.tiers.Load(); ts != nil && ts.tier == c.cfg.Tier {
		return ts
	}
	ts := &tierState{tier: c.cfg.Tier, emb32: mat.Dense32From(c.emb.Table)}
	switch c.cfg.Tier {
	case TierF32:
		ts.enc32 = nn.NewLinear32(c.enc)
		ts.dec32 = nn.NewLinear32(c.dec)
		ts.out32 = nn.NewLinear32(c.out)
	case TierInt8:
		ts.encQ8 = nn.NewLinearQ8(c.enc)
		ts.decQ8 = nn.NewLinearQ8(c.dec)
		ts.outQ8 = nn.NewLinearQ8(c.out)
	}
	c.tiers.Store(ts)
	return ts
}

// embeddingRow32 returns the f32 embedding for id, clamping out-of-lexicon
// IDs like embeddingRow.
func (c *Codec) embeddingRow32(ts *tierState, id int) []float32 {
	if id < 0 || id >= ts.emb32.Rows {
		id = corpus.UnknownSurfaceID
	}
	return ts.emb32.Row(id)
}

// encodeWordsToTiered is the f32/int8 body of encodeWordsTo: gather the f32
// embeddings, run the tier's encoder kernel, apply the polynomial tanh and
// widen the features into dst for the (float64) channel layer.
func (c *Codec) encodeWordsToTiered(sc *mat.Scratch, dst *mat.Dense, words []string) {
	ts := c.tierShadow()
	x := sc.Mat32(len(words), c.cfg.EmbedDim)
	for i, w := range words {
		copy(x.Row(i), c.embeddingRow32(ts, c.domain.SurfaceID(w)))
	}
	c.encodeGathered32(sc, ts, x, dst)
}

// encodeGathered32 pushes gathered f32 embeddings through the tier's
// encoder and widens the tanh features into dst.
func (c *Codec) encodeGathered32(sc *mat.Scratch, ts *tierState, x *mat.Dense32, dst *mat.Dense) {
	f := sc.Mat32(x.Rows, c.cfg.FeatureDim)
	if ts.tier == TierInt8 {
		ts.encQ8.ForwardBatch(sc, f, x)
	} else {
		ts.enc32.ForwardBatch(f, x)
	}
	mat.Tanh32(f.Data, f.Data)
	mat.Widen(dst.Data, f.Data)
}

// encodeBatchIntoTiered is the f32/int8 body of EncodeBatchInto.
func (c *Codec) encodeBatchIntoTiered(sc *mat.Scratch, msgs [][]string, total int) *mat.Dense {
	ts := c.tierShadow()
	x := sc.Mat32(total, c.cfg.EmbedDim)
	row := 0
	for _, m := range msgs {
		for _, w := range m {
			copy(x.Row(row), c.embeddingRow32(ts, c.domain.SurfaceID(w)))
			row++
		}
	}
	dst := sc.Mat(total, c.cfg.FeatureDim)
	c.encodeGathered32(sc, ts, x, dst)
	return dst
}

// decodeFeaturesIntoTiered is the f32/int8 body of DecodeFeaturesInto:
// narrow the features, run the tier's two decoder kernels and argmax in
// float32.
func (c *Codec) decodeFeaturesIntoTiered(sc *mat.Scratch, feats *mat.Dense, dst []int) {
	ts := c.tierShadow()
	f := sc.Mat32(feats.Rows, feats.Cols)
	mat.Narrow(f.Data, feats.Data)
	h := sc.Mat32(feats.Rows, c.cfg.HiddenDim)
	logits := sc.Mat32(feats.Rows, c.domain.NumConcepts())
	if ts.tier == TierInt8 {
		ts.decQ8.ForwardBatch(sc, h, f)
		mat.Tanh32(h.Data, h.Data)
		ts.outQ8.ForwardBatch(sc, logits, h)
	} else {
		ts.dec32.ForwardBatch(h, f)
		mat.Tanh32(h.Data, h.Data)
		ts.out32.ForwardBatch(logits, h)
	}
	for i := 0; i < feats.Rows; i++ {
		dst[i] = mat.Argmax32(logits.Row(i))
	}
}
