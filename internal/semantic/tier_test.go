package semantic

import (
	"math"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/nn"
)

const eps32 = 1.1920928955078125e-07 // float32 machine epsilon

// tierTrialCodec builds an untrained codec with randomized layer shapes —
// the kernels' correctness properties must hold at any dimensions, not just
// the tuned defaults (which have k a multiple of the SIMD widths).
func tierTrialCodec(corp *corpus.Corpus, trial int, rng *mat.RNG) *Codec {
	d := corp.Domains[trial%len(corp.Domains)]
	return NewCodec(d, Config{
		EmbedDim:   4 + rng.Intn(29),
		FeatureDim: 2 + rng.Intn(23),
		HiddenDim:  4 + rng.Intn(37),
		Seed:       uint64(1000 + trial),
	})
}

// trialWords samples one generated message from the codec's domain.
func trialWords(corp *corpus.Corpus, c *Codec, rng *mat.RNG) []string {
	gen := corpus.NewGenerator(corp, rng)
	words := gen.Message(c.domain.Index, nil).Words
	if len(words) == 0 {
		words = []string{"?"}
	}
	return words
}

// maxAbs64 returns max|v| over a float64 slice.
func maxAbs64(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// TestTierF32EncodeDriftWithinBudget is the f32-tier accuracy property:
// across random codec shapes, every encoded feature stays within the
// floating-point drift budget of the f64 reference — narrowing error on
// weights and embeddings plus f32 accumulation over the fan-in, passed
// through the 1-Lipschitz tanh, plus a few ulps for the polynomial tanh.
func TestTierF32EncodeDriftWithinBudget(t *testing.T) {
	corp := corpus.Build()
	rng := mat.NewRNG(42)
	for trial := 0; trial < 6; trial++ {
		c := tierTrialCodec(corp, trial, rng)
		words := trialWords(corp, c, rng)
		sc := mat.GetScratch()
		ref := c.EncodeWordsInto(sc, words)
		refData := append([]float64(nil), ref.Data...)
		if err := c.SetTier(TierF32); err != nil {
			t.Fatal(err)
		}
		got := c.EncodeWordsInto(sc, words)
		k := float64(c.cfg.EmbedDim)
		wmax := maxAbs64(c.enc.W.Data)
		xmax := maxAbs64(c.emb.Table.Data)
		budget := 1e-6 + 4*k*eps32*math.Max(wmax*xmax, 1)
		for i, g := range got.Data {
			if diff := math.Abs(g - refData[i]); diff > budget {
				t.Fatalf("trial %d elem %d: f32 %v vs f64 %v (diff %v > budget %v, shape E=%d F=%d)",
					trial, i, g, refData[i], diff, budget, c.cfg.EmbedDim, c.cfg.FeatureDim)
			}
		}
		mat.PutScratch(sc)
	}
}

// q8LayerBudget bounds the per-element output error the int8 tier may add
// at one linear layer with inputs in [-1, 1]: one truncating 256-level grid
// step per factor, summed over the fan-in (see the derivation in the
// nn-level budget test).
func q8LayerBudget(l *nn.Linear) float64 {
	wmax := maxAbs64(l.W.Data)
	return float64(l.In()) * (2*wmax/255 + 2*(wmax+2.0/255)/255)
}

// decodeLogits64 reproduces the f64 decode body up to (and excluding) the
// argmax, returning the logits.
func decodeLogits64(c *Codec, sc *mat.Scratch, feats *mat.Dense) *mat.Dense {
	h := sc.Mat(feats.Rows, c.cfg.HiddenDim)
	c.dec.ForwardBatch(h, feats)
	nn.TanhForward(h.Data, h.Data)
	logits := sc.Mat(feats.Rows, c.domain.NumConcepts())
	c.out.ForwardBatch(logits, h)
	return logits
}

// decodeLogitsQ8 reproduces the int8 decode body up to the argmax.
func decodeLogitsQ8(c *Codec, sc *mat.Scratch, feats *mat.Dense) *mat.Dense32 {
	ts := c.tierShadow()
	f := sc.Mat32(feats.Rows, feats.Cols)
	mat.Narrow(f.Data, feats.Data)
	h := sc.Mat32(feats.Rows, c.cfg.HiddenDim)
	ts.decQ8.ForwardBatch(sc, h, f)
	mat.Tanh32(h.Data, h.Data)
	logits := sc.Mat32(feats.Rows, c.domain.NumConcepts())
	ts.outQ8.ForwardBatch(sc, logits, h)
	return logits
}

// TestTierInt8MismatchWithinBudget is the int8-tier accuracy property,
// across random codec shapes:
//
//  1. every decoded logit stays within the composed two-layer quantization
//     budget of the f64 reference, and
//  2. the int8 argmax may disagree with f64 ONLY on near-ties — tokens
//     whose f64 top-two logit margin is inside twice the logit budget.
//
// Property 2 is the serving guarantee E12 measures as mismatch_delta: a
// confidently-decoded concept can never flip tiers.
func TestTierInt8MismatchWithinBudget(t *testing.T) {
	corp := corpus.Build()
	rng := mat.NewRNG(99)
	for trial := 0; trial < 6; trial++ {
		c := tierTrialCodec(corp, trial, rng)
		words := trialWords(corp, c, rng)
		sc := mat.GetScratch()
		feats := c.EncodeWordsInto(sc, words) // f64 features feed both decoders
		ref := decodeLogits64(c, sc, feats)
		if err := c.SetTier(TierInt8); err != nil {
			t.Fatal(err)
		}
		got := decodeLogitsQ8(c, sc, feats)

		// Compose the per-layer budgets: the out-layer adds its own budget
		// and amplifies the hidden drift by at most its row's |W| sum (tanh
		// between the layers is 1-Lipschitz). 5% + 1e-4 headroom covers the
		// f32 arithmetic the bound's exact algebra ignores.
		bd := q8LayerBudget(c.dec)
		bo := q8LayerBudget(c.out)
		n := c.domain.NumConcepts()
		bound := make([]float64, n)
		var maxBound float64
		for j := 0; j < n; j++ {
			var rowsum float64
			for _, w := range c.out.W.Row(j) {
				rowsum += math.Abs(w)
			}
			bound[j] = (bo+rowsum*bd)*1.05 + 1e-4
			maxBound = math.Max(maxBound, bound[j])
		}
		for i := 0; i < ref.Rows; i++ {
			rr, gr := ref.Row(i), got.Row(i)
			for j := 0; j < n; j++ {
				if diff := math.Abs(float64(gr[j]) - rr[j]); diff > bound[j] {
					t.Fatalf("trial %d token %d logit %d: int8 %v vs f64 %v (diff %v > budget %v)",
						trial, i, j, gr[j], rr[j], diff, bound[j])
				}
			}
			top, top32 := mat.Argmax(rr), mat.Argmax32(gr)
			if top == top32 {
				continue
			}
			margin := rr[top]
			second := math.Inf(-1)
			for j, v := range rr {
				if j != top && v > second {
					second = v
				}
			}
			margin -= second
			if margin >= 2*maxBound {
				t.Fatalf("trial %d token %d: int8 flipped argmax %d→%d at f64 margin %v >= 2*budget %v",
					trial, i, top, top32, margin, 2*maxBound)
			}
		}
		mat.PutScratch(sc)
	}
}

// TestTierServingIsDeterministic pins that repeated tiered serving calls —
// including a cache invalidation between them — produce identical bits:
// the reduced-precision shadows are pure functions of the weights.
func TestTierServingIsDeterministic(t *testing.T) {
	corp := corpus.Build()
	rng := mat.NewRNG(7)
	c := tierTrialCodec(corp, 1, rng)
	words := trialWords(corp, c, rng)
	for _, tier := range []Tier{TierF32, TierInt8} {
		if err := c.SetTier(tier); err != nil {
			t.Fatal(err)
		}
		sc := mat.GetScratch()
		first := append([]float64(nil), c.EncodeWordsInto(sc, words).Data...)
		c.InvalidateTierCache()
		again := c.EncodeWordsInto(sc, words)
		for i, v := range again.Data {
			if v != first[i] {
				t.Fatalf("tier %v elem %d: %v then %v after cache invalidation", tier, i, v, first[i])
			}
		}
		mat.PutScratch(sc)
	}
}
