package semantic

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
)

// batchMessages generates a deterministic batch of IT-domain messages.
func batchMessages(corp *corpus.Corpus, n int) [][]string {
	gen := corpus.NewGenerator(corp, mat.NewRNG(99))
	d := corp.Domain("it")
	msgs := make([][]string, 0, n)
	for _, m := range gen.Batch(d.Index, n, nil) {
		msgs = append(msgs, m.Words)
	}
	return msgs
}

// TestBatchMatchesSerial asserts EncodeBatch/DecodeBatch are bit-identical
// to per-message EncodeWords/DecodeFeatures at any worker count.
func TestBatchMatchesSerial(t *testing.T) {
	corp, codec := sharedFixtures(t)
	msgs := batchMessages(corp, 40)

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)

	mat.SetParallelism(1)
	wantFeats := make([][][]float64, len(msgs))
	for i, m := range msgs {
		wantFeats[i] = codec.EncodeWords(m)
	}
	wantConcepts := make([][]int, len(msgs))
	for i, f := range wantFeats {
		wantConcepts[i] = codec.DecodeFeatures(f)
	}

	for _, workers := range []int{1, 2, 8} {
		mat.SetParallelism(workers)
		feats := codec.EncodeBatch(msgs)
		if !reflect.DeepEqual(feats, wantFeats) {
			t.Fatalf("EncodeBatch at %d workers differs from serial encode", workers)
		}
		concepts := codec.DecodeBatch(feats)
		if !reflect.DeepEqual(concepts, wantConcepts) {
			t.Fatalf("DecodeBatch at %d workers differs from serial decode", workers)
		}
	}
}

// TestEncodeBatchIntoBitIdentical asserts the fused batch-of-messages
// encode is bit-identical per message to solo encodes, at any worker
// count and any batch composition — the invariant cross-request dynamic
// batching rests on.
func TestEncodeBatchIntoBitIdentical(t *testing.T) {
	corp, codec := sharedFixtures(t)
	msgs := batchMessages(corp, 17)

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)

	mat.SetParallelism(1)
	solo := make([][][]float64, len(msgs))
	for i, m := range msgs {
		sc := mat.GetScratch()
		enc := codec.EncodeWordsInto(sc, m)
		solo[i] = make([][]float64, enc.Rows)
		for r := 0; r < enc.Rows; r++ {
			solo[i][r] = append([]float64(nil), enc.Row(r)...)
		}
		mat.PutScratch(sc)
	}

	for _, workers := range []int{1, 2, 8} {
		mat.SetParallelism(workers)
		// Vary batch composition: full batch, pairs, singletons.
		for _, span := range []int{len(msgs), 2, 1} {
			for lo := 0; lo < len(msgs); lo += span {
				hi := lo + span
				if hi > len(msgs) {
					hi = len(msgs)
				}
				sc := mat.GetScratch()
				packed := codec.EncodeBatchInto(sc, msgs[lo:hi])
				row := 0
				for i := lo; i < hi; i++ {
					for r := range solo[i] {
						for k, v := range solo[i][r] {
							if packed.Row(row)[k] != v {
								t.Fatalf("workers %d span %d: msg %d token %d col %d: batch %v != solo %v",
									workers, span, i, r, k, packed.Row(row)[k], v)
							}
						}
						row++
					}
				}
				if row != packed.Rows {
					t.Fatalf("packed rows %d, consumed %d", packed.Rows, row)
				}
				mat.PutScratch(sc)
			}
		}
	}
}

// TestConcurrentBatchEncode hammers one shared codec from many goroutines
// at full parallelism. Under -race this proves the encode/decode read path
// is free of data races (the CI race job runs it).
func TestConcurrentBatchEncode(t *testing.T) {
	corp, codec := sharedFixtures(t)
	msgs := batchMessages(corp, 24)

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)
	mat.SetParallelism(8)

	want := codec.DecodeBatch(codec.EncodeBatch(msgs))

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				got := codec.DecodeBatch(codec.EncodeBatch(msgs))
				if !reflect.DeepEqual(got, want) {
					errs <- "concurrent batch encode/decode not deterministic"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestPretrainAllParallelDeterminism asserts PretrainAll produces the same
// models regardless of worker count: per-domain training must be seeded
// independently of scheduling.
func TestPretrainAllParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-pretrain determinism check in -short")
	}
	corp := corpus.Build()
	cfg := testConfig()
	cfg.Sentences = 120
	cfg.Epochs = 1

	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)

	mat.SetParallelism(1)
	serial := PretrainAll(corp, cfg)
	mat.SetParallelism(8)
	parallel := PretrainAll(corp, cfg)

	if len(serial) != len(parallel) {
		t.Fatalf("codec counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i].Params(), parallel[i].Params()
		for j := range a.Params {
			am, bm := a.Params[j].M, b.Params[j].M
			for k := range am.Data {
				if am.Data[k] != bm.Data[k] {
					t.Fatalf("domain %d tensor %q differs at %d: %v vs %v",
						i, a.Params[j].Name, k, am.Data[k], bm.Data[k])
				}
			}
		}
	}
}
