package semantic

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/corpus"
	"repro/internal/nn"
)

// codecMagic identifies a serialized codec stream ("SKB1": semantic
// knowledge base, version 1).
const codecMagic = uint32(0x534b4231)

// Deserialization bounds for untrusted .kbm input. A forged header with
// multi-billion layer widths would otherwise drive NewCodec into
// gigabyte-scale (or panicking) allocations before any shape check runs.
// Real configs sit orders of magnitude below both limits.
const (
	maxCodecDim   = 1 << 10 // layer width (defaults are 8..24)
	maxCodecCount = 1 << 20 // epochs / sentences (metadata only)
)

// errBadCodec reports a malformed serialized codec.
var errBadCodec = errors.New("semantic: malformed serialized codec")

// WriteTo serializes the codec: magic, domain name, hyper-parameters and
// all parameter tensors. The domain's lexicon itself is not stored — it is
// reconstructed from the corpus at load time, mirroring how a deployed KB
// model references its knowledge base by name.
func (c *Codec) WriteTo(w io.Writer) (int64, error) {
	var written int64
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		n, err := w.Write(scratch[:4])
		written += int64(n)
		return err
	}
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
		n, err := w.Write(scratch[:8])
		written += int64(n)
		return err
	}
	if err := writeU32(codecMagic); err != nil {
		return written, fmt.Errorf("semantic: write magic: %w", err)
	}
	name := c.domain.Name
	if err := writeU32(uint32(len(name))); err != nil {
		return written, fmt.Errorf("semantic: write name length: %w", err)
	}
	n, err := io.WriteString(w, name)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("semantic: write name: %w", err)
	}
	for _, v := range []uint32{
		uint32(c.cfg.EmbedDim), uint32(c.cfg.FeatureDim), uint32(c.cfg.HiddenDim),
		uint32(c.cfg.Epochs), uint32(c.cfg.Sentences),
	} {
		if err := writeU32(v); err != nil {
			return written, fmt.Errorf("semantic: write config: %w", err)
		}
	}
	if err := writeF64(c.cfg.NoiseStd); err != nil {
		return written, fmt.Errorf("semantic: write config: %w", err)
	}
	if err := writeF64(c.cfg.LR); err != nil {
		return written, fmt.Errorf("semantic: write config: %w", err)
	}
	m, err := c.Params().WriteTo(w)
	written += m
	if err != nil {
		return written, fmt.Errorf("semantic: write params: %w", err)
	}
	return written, nil
}

// ReadCodec deserializes a codec written by WriteTo, binding it to the
// matching domain in corp. It validates shapes against the domain lexicon.
func ReadCodec(r io.Reader, corp *corpus.Corpus) (*Codec, error) {
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(r, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readF64 := func() (float64, error) {
		if _, err := io.ReadFull(r, scratch[:8]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(scratch[:8])), nil
	}
	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("semantic: read magic: %w", err)
	}
	if magic != codecMagic {
		return nil, errBadCodec
	}
	nameLen, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("semantic: read name length: %w", err)
	}
	if nameLen > 256 {
		return nil, errBadCodec
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return nil, fmt.Errorf("semantic: read name: %w", err)
	}
	d := corp.Domain(string(nameBuf))
	if d == nil {
		return nil, fmt.Errorf("semantic: unknown domain %q in serialized codec", nameBuf)
	}
	var cfg Config
	for _, f := range []struct {
		dst   *int
		limit int
	}{
		{&cfg.EmbedDim, maxCodecDim},
		{&cfg.FeatureDim, maxCodecDim},
		{&cfg.HiddenDim, maxCodecDim},
		{&cfg.Epochs, maxCodecCount},
		{&cfg.Sentences, maxCodecCount},
	} {
		v, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("semantic: read config: %w", err)
		}
		if v == 0 || v > uint32(f.limit) {
			return nil, errBadCodec
		}
		*f.dst = int(v)
	}
	if cfg.NoiseStd, err = readF64(); err != nil {
		return nil, fmt.Errorf("semantic: read config: %w", err)
	}
	if cfg.LR, err = readF64(); err != nil {
		return nil, fmt.Errorf("semantic: read config: %w", err)
	}
	if math.IsNaN(cfg.NoiseStd) || math.IsInf(cfg.NoiseStd, 0) ||
		math.IsNaN(cfg.LR) || math.IsInf(cfg.LR, 0) {
		return nil, errBadCodec
	}
	params, err := nn.ReadParamSet(r)
	if err != nil {
		return nil, fmt.Errorf("semantic: read params: %w", err)
	}
	cfg.Seed = 1 // seeds are not persisted; loaded codecs are already trained
	c := NewCodec(d, cfg)
	target := c.Params()
	if len(target.Params) != len(params.Params) {
		return nil, errBadCodec
	}
	for i, p := range params.Params {
		t := target.Params[i]
		if t.Name != p.Name || t.M.Rows != p.M.Rows || t.M.Cols != p.M.Cols {
			return nil, fmt.Errorf("semantic: tensor %q mismatch against domain %q", p.Name, d.Name)
		}
	}
	target.CopyFrom(params)
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
