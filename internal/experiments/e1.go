package experiments

import (
	"repro/internal/baseline"
	"repro/internal/channel"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/semantic"
	"repro/internal/text"
)

// E1Options parameterizes the semantic-versus-traditional comparison.
type E1Options struct {
	// SNRs lists the SNR sweep points in dB (default -6..18 step 3).
	SNRs []float64
	// MessagesPerDomain per SNR point (default 150).
	MessagesPerDomain int
	// Domains under test (default it, medical, sports).
	Domains []string
	// Rayleigh switches the channel model from AWGN to Rayleigh fading.
	Rayleigh bool
	// Seed drives message generation and noise (default 1).
	Seed uint64
}

func (o E1Options) withDefaults() E1Options {
	if len(o.SNRs) == 0 {
		o.SNRs = []float64{-6, -3, 0, 3, 6, 9, 12, 15, 18}
	}
	if o.MessagesPerDomain == 0 {
		o.MessagesPerDomain = 150
	}
	if len(o.Domains) == 0 {
		o.Domains = []string{"it", "medical", "sports"}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E1Point is one SNR sweep point.
type E1Point struct {
	SNRdB float64
	// Semantic pipeline metrics.
	SemSimilarity  float64
	SemConceptAcc  float64
	SemPayloadByte float64
	// Traditional pipeline metrics.
	TradConceptAcc  float64
	TradExactRate   float64 // fraction of messages recovered bit-exact
	TradPayloadByte float64
}

// E1Result is the full sweep.
type E1Result struct {
	Points   []E1Point
	Rayleigh bool
}

// RunE1 compares the semantic pipeline against the traditional
// Huffman-coded pipeline over the same channel, code and modulation,
// sweeping SNR. Fidelity is meaning recovery: decoded words mapped through
// the true domain KB to concepts, compared against the ground truth.
func RunE1(env *Env, opts E1Options) (*E1Result, error) {
	opts = opts.withDefaults()
	rng := mat.NewRNG(opts.Seed)
	gen := corpus.NewGenerator(env.Corpus, rng.Split())

	// Pre-generate one message set per domain, reused at every SNR so the
	// sweep isolates channel effects.
	type msgSet struct {
		domain *corpus.Domain
		codec  *semantic.Codec
		msgs   []corpus.Message
	}
	sets := make([]msgSet, 0, len(opts.Domains))
	for _, name := range opts.Domains {
		d := env.Corpus.Domain(name)
		sets = append(sets, msgSet{
			domain: d,
			codec:  env.Generals[d.Index],
			msgs:   gen.Batch(d.Index, opts.MessagesPerDomain, nil),
		})
	}

	// RNG splits happen serially up front so the per-SNR noise streams are
	// independent of scheduling; the sweep points then run concurrently
	// (codecs, messages and the Huffman coder are all read-only here).
	noiseRNGs := make([]*mat.RNG, len(opts.SNRs))
	for i := range noiseRNGs {
		noiseRNGs[i] = rng.Split()
	}
	res := &E1Result{Rayleigh: opts.Rayleigh, Points: make([]E1Point, len(opts.SNRs))}
	err := forEachTrial(len(opts.SNRs), func(pi int) error {
		snr := opts.SNRs[pi]
		var ch channel.Channel
		if opts.Rayleigh {
			ch = &channel.Rayleigh{SNRdB: snr, Rng: noiseRNGs[pi]}
		} else {
			ch = &channel.AWGN{SNRdB: snr, Rng: noiseRNGs[pi]}
		}
		link := channel.DefaultFeatureLink(ch)
		pipe := baseline.Pipeline{
			Huff: env.Huffman,
			Code: channel.Hamming74{},
			Mod:  channel.BPSK{},
			Ch:   ch,
		}
		var pt E1Point
		pt.SNRdB = snr
		var n float64
		for _, set := range sets {
			for _, m := range set.msgs {
				n++
				// Semantic pipeline.
				feats := set.codec.EncodeWords(m.Words)
				rx, stats := link.Send(feats, set.codec.FeatureDim())
				decoded := set.codec.DecodeFeatures(rx)
				pt.SemSimilarity += semantic.Similarity(set.codec, decoded, m.ConceptIDs)
				pt.SemConceptAcc += semantic.ConceptAccuracy(decoded, m.ConceptIDs)
				pt.SemPayloadByte += float64(stats.PayloadBytes())

				// Traditional pipeline: recover text, then meaning.
				txt := m.Text()
				got, _, tstats := pipe.Send(txt)
				if got == txt {
					pt.TradExactRate++
				}
				concepts := conceptsOfText(set.domain, got, len(m.ConceptIDs))
				pt.TradConceptAcc += semantic.ConceptAccuracy(concepts, m.ConceptIDs)
				pt.TradPayloadByte += float64(tstats.PayloadBytes())
			}
		}
		pt.SemSimilarity /= n
		pt.SemConceptAcc /= n
		pt.SemPayloadByte /= n
		pt.TradConceptAcc /= n
		pt.TradExactRate /= n
		pt.TradPayloadByte /= n
		res.Points[pi] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// conceptsOfText tokenizes decoded text and maps each token to its domain
// concept (-1 for unknown), truncating/padding to want positions.
func conceptsOfText(d *corpus.Domain, s string, want int) []int {
	tokens := text.Tokenize(s)
	out := make([]int, 0, want)
	for _, tok := range tokens {
		if ci, ok := d.ConceptOf(tok); ok {
			out = append(out, ci)
		} else {
			out = append(out, -1)
		}
	}
	return out
}

// FigureA renders the fidelity-versus-SNR series.
func (r *E1Result) FigureA() *metrics.Table {
	name := "Figure A: meaning fidelity vs SNR (AWGN, BPSK, Hamming(7,4))"
	if r.Rayleigh {
		name = "Figure A': meaning fidelity vs SNR (Rayleigh, BPSK, Hamming(7,4))"
	}
	t := metrics.NewTable(name,
		"snr_db", "semantic_similarity", "semantic_concept_acc", "traditional_concept_acc", "traditional_exact")
	for _, p := range r.Points {
		t.AddRow(metrics.F(p.SNRdB, 0), metrics.F(p.SemSimilarity, 3),
			metrics.F(p.SemConceptAcc, 3), metrics.F(p.TradConceptAcc, 3),
			metrics.F(p.TradExactRate, 3))
	}
	return t
}

// TableA renders the payload comparison at the highest-SNR point.
func (r *E1Result) TableA() *metrics.Table {
	t := metrics.NewTable("Table A: transmitted payload per message",
		"pipeline", "bytes_per_message", "relative")
	if len(r.Points) == 0 {
		return t
	}
	last := r.Points[len(r.Points)-1]
	t.AddRow("semantic", metrics.F(last.SemPayloadByte, 1), "1.00x")
	ratio := last.TradPayloadByte / last.SemPayloadByte
	t.AddRow("traditional", metrics.F(last.TradPayloadByte, 1), metrics.F(ratio, 2)+"x")
	return t
}
