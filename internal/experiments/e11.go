package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/kb"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// E11Options parameterizes the cluster-scale caching/handover trade-off
// sweep: cache policy x node count x mobility rate.
type E11Options struct {
	// Policies to compare (default lru, gdsf).
	Policies []string
	// NodeCounts to sweep (default 2, 4).
	NodeCounts []int
	// MobilityRates to sweep, per-request move probability (default 0,
	// 0.02, 0.10).
	MobilityRates []float64
	// Users and Requests size the workload (defaults 24 and 4000).
	Users    int
	Requests int
	// CapacityModels is the per-node cache size in model-equivalents
	// (default 3: small enough that eviction pressure is constant).
	CapacityModels int
	// Seed drives the workload and ring placement (default 1).
	Seed uint64
}

func (o E11Options) withDefaults() E11Options {
	if len(o.Policies) == 0 {
		o.Policies = []string{"lru", "gdsf"}
	}
	if len(o.NodeCounts) == 0 {
		o.NodeCounts = []int{2, 4}
	}
	if len(o.MobilityRates) == 0 {
		o.MobilityRates = []float64{0, 0.02, 0.10}
	}
	if o.Users == 0 {
		o.Users = 24
	}
	if o.Requests == 0 {
		o.Requests = 4000
	}
	if o.CapacityModels == 0 {
		o.CapacityModels = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E11Cell is one (policy, nodes, mobility) measurement.
type E11Cell struct {
	Policy       string
	Nodes        int
	MobilityRate float64
	// LocalHitRate aggregates node-local cache hits over all accesses.
	LocalHitRate float64
	// NeighborShare is the fraction of misses resolved from a neighbor
	// cache instead of the cloud origin.
	NeighborShare float64
	// Handovers and MigratedKB count mobility-driven model migrations.
	Handovers  int64
	MigratedKB float64
	// MeanFetchMs is the mean simulated miss-path latency per request.
	MeanFetchMs float64
}

// E11Result is the full grid.
type E11Result struct {
	Cells []E11Cell
}

// RunE11 replays a mobile workload against a model-serving cluster for
// every (policy, node count, mobility rate) combination: users roam
// between cells (handover migrates their personalized models) while nodes
// resolve cache misses cooperatively before paying the origin fetch. It
// reproduces the paper's caching/handover trade-off at cluster scale:
// mobility converts local hits into mesh traffic and migrations, and the
// eviction policy decides how much of the working set survives.
func RunE11(env *Env, opts E11Options) (*E11Result, error) {
	opts = opts.withDefaults()
	// Shared read-only cloud registry of general models.
	cloud := kb.NewRegistry()
	var modelBytes int64
	for i, d := range env.Corpus.Domains {
		m := &kb.Model{Key: kb.GeneralKey(d.Name, kb.RoleCodec), Version: 1, Codec: env.Generals[i]}
		cloud.Put(m)
		if s := m.SizeBytes(); s > modelBytes {
			modelBytes = s
		}
	}

	type combo struct {
		policy string
		nodes  int
		rate   float64
	}
	combos := make([]combo, 0, len(opts.Policies)*len(opts.NodeCounts)*len(opts.MobilityRates))
	for _, p := range opts.Policies {
		for _, n := range opts.NodeCounts {
			for _, r := range opts.MobilityRates {
				combos = append(combos, combo{p, n, r})
			}
		}
	}

	res := &E11Result{Cells: make([]E11Cell, len(combos))}
	err := forEachTrial(len(combos), func(ci int) error {
		cb := combos[ci]
		// Cells map 1:1 onto nodes; the workload's cell indices wrap.
		w := trace.Generate(env.Corpus, trace.Config{
			Users: opts.Users, Messages: opts.Requests,
			Cells: cb.nodes, MobilityRate: cb.rate,
			MeanRunLength: 8, Seed: opts.Seed,
		})
		c, err := cluster.New(cluster.Config{
			Nodes:      cb.nodes,
			CacheBytes: modelBytes * int64(opts.CapacityModels),
			Policy:     cb.policy,
			Uplink:     netsim.Link{Latency: 40 * time.Millisecond, BandwidthBps: 200e6},
			Mesh:       netsim.Link{Latency: 5 * time.Millisecond, BandwidthBps: 400e6},
			Seed:       opts.Seed,
		}, cloud)
		if err != nil {
			return err
		}
		personalized := make(map[string]bool, opts.Users*2)
		var totalFetch time.Duration
		next := 0
		for _, req := range w.Requests {
			for next < len(w.Moves) && w.Moves[next].Seq <= req.Seq {
				if _, err := c.Move(w.Moves[next].User, w.Moves[next].Cell); err != nil {
					return err
				}
				next++
			}
			node := c.Route(req.User)
			// First touch of a (user, domain) pair personalizes there, so
			// mobility has individual models to migrate.
			pk := req.User + "/" + req.Msg.DomainName
			if !personalized[pk] {
				personalized[pk] = true
				_, lat, err := node.Edge().Personalize(req.Msg.DomainName, req.User)
				if err != nil {
					return err
				}
				totalFetch += lat
			}
			acq, err := node.Edge().AcquireCodec(req.Msg.DomainName, req.User)
			if err != nil {
				return err
			}
			totalFetch += acq.FetchLatency
		}
		st := c.Stats()
		var hits, misses uint64
		var neighbor, origin int64
		for _, n := range st.Nodes {
			hits += n.Cache.Hits
			misses += n.Cache.Misses
			neighbor += n.NeighborHits
			origin += n.OriginFetches
		}
		cell := E11Cell{
			Policy:       cb.policy,
			Nodes:        cb.nodes,
			MobilityRate: cb.rate,
			Handovers:    st.Handovers,
			MigratedKB:   float64(st.MigratedBytes) / 1024,
			MeanFetchMs:  float64(totalFetch.Milliseconds()) / float64(len(w.Requests)),
		}
		if total := hits + misses; total > 0 {
			cell.LocalHitRate = float64(hits) / float64(total)
		}
		if total := neighbor + origin; total > 0 {
			cell.NeighborShare = float64(neighbor) / float64(total)
		}
		res.Cells[ci] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TableG renders the sweep: one row per combination.
func (r *E11Result) TableG() *metrics.Table {
	t := metrics.NewTable("Table G: cluster caching/handover trade-off (policy x nodes x mobility)",
		"policy", "nodes", "mobility", "local_hit", "neighbor_share", "handovers", "migrated_kb", "fetch_ms")
	for _, c := range r.Cells {
		t.AddRow(c.Policy, fmt.Sprintf("%d", c.Nodes), metrics.F(c.MobilityRate, 2),
			metrics.F(c.LocalHitRate, 3), metrics.F(c.NeighborShare, 3),
			fmt.Sprintf("%d", c.Handovers), metrics.F(c.MigratedKB, 1), metrics.F(c.MeanFetchMs, 2))
	}
	return t
}
