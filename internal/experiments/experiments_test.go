package experiments

import (
	"strings"
	"testing"
)

// The experiment tests use reduced sizes: they verify the qualitative
// shapes EXPERIMENTS.md reports, not the full-resolution numbers.

func TestE1Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE1(env, E1Options{
		SNRs:              []float64{-4, 4, 12},
		MessagesPerDomain: 40,
		Domains:           []string{"it"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	low, mid, high := res.Points[0], res.Points[1], res.Points[2]
	// Semantic fidelity degrades gracefully; traditional collapses at low
	// SNR (the headline qualitative claim).
	if low.SemSimilarity <= low.TradConceptAcc {
		t.Fatalf("at -4 dB semantic (%v) should beat traditional (%v)",
			low.SemSimilarity, low.TradConceptAcc)
	}
	// Both converge high at 12 dB.
	if high.SemConceptAcc < 0.8 || high.TradConceptAcc < 0.8 {
		t.Fatalf("at 12 dB both should be high: sem %v trad %v",
			high.SemConceptAcc, high.TradConceptAcc)
	}
	// Monotone improvement with SNR for both.
	if !(low.SemConceptAcc <= mid.SemConceptAcc && mid.SemConceptAcc <= high.SemConceptAcc+0.05) {
		t.Fatalf("semantic accuracy not monotone: %v %v %v",
			low.SemConceptAcc, mid.SemConceptAcc, high.SemConceptAcc)
	}
	// Semantic payload must be smaller.
	if high.SemPayloadByte >= high.TradPayloadByte {
		t.Fatalf("semantic payload (%v) should be below traditional (%v)",
			high.SemPayloadByte, high.TradPayloadByte)
	}
	// Tables render.
	if res.FigureA().NumRows() != 3 || res.TableA().NumRows() != 2 {
		t.Fatal("table shapes wrong")
	}
}

func TestE2Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE2(env, E2Options{
		Capacities: []int{1, 4, 8},
		Policies:   []string{"lru", "lfu"},
		Requests:   1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, p := range []string{"lru", "lfu"} {
		small := res.cell(p, 1)
		full := res.cell(p, 8)
		if small.HitRate >= full.HitRate {
			t.Fatalf("%s: hit rate not increasing with capacity: %v -> %v",
				p, small.HitRate, full.HitRate)
		}
		// With capacity for the whole catalog the only misses are cold.
		if full.HitRate < 0.99 {
			t.Fatalf("%s: full-capacity hit rate = %v", p, full.HitRate)
		}
		if small.MeanFetchMs <= full.MeanFetchMs {
			t.Fatalf("%s: latency should shrink with capacity", p)
		}
	}
	if res.FigureB().NumRows() != 3 || res.LatencyTable().NumRows() != 3 {
		t.Fatal("table shapes wrong")
	}
}

func TestE3Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE3(env, E3Options{
		Users: 4, Rounds: 12, MessagesPerRound: 8,
		BufferThreshold: 24, IdiolectStrength: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 12 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	if res.FinalGap <= 0 {
		t.Fatalf("individual model did not beat general by the end: gap %v", res.FinalGap)
	}
	// The general baseline stays roughly flat; the individual curve must
	// end below its own start.
	first := res.Rounds[0].IndividualMismatch
	last := res.Rounds[len(res.Rounds)-1].IndividualMismatch
	if last >= first {
		t.Fatalf("individual mismatch did not decrease: %v -> %v", first, last)
	}
	updates := 0
	for _, row := range res.Rounds {
		updates += row.UpdatesFired
	}
	if updates == 0 {
		t.Fatal("no updates fired")
	}
	if res.FigureC().NumRows() != 12 {
		t.Fatal("table shape wrong")
	}
}

func TestE4Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE4(env, E4Options{Rounds: 6, BufferSize: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mechanisms) != 4 {
		t.Fatalf("mechanisms = %d", len(res.Mechanisms))
	}
	outputReturn := res.Mechanisms[0]
	decoderCopy := res.Mechanisms[1]
	if outputReturn.FeedbackBytesPerRound <= 0 {
		t.Fatal("output-return mechanism reported no feedback traffic")
	}
	if decoderCopy.FeedbackBytesPerRound != 0 {
		t.Fatal("decoder-copy mechanism should have zero feedback traffic")
	}
	if outputReturn.TotalBytes <= decoderCopy.TotalBytes {
		t.Fatalf("§II-C claim violated: output-return (%v B) should cost more than decoder-copy (%v B)",
			outputReturn.TotalBytes, decoderCopy.TotalBytes)
	}
	// Compressed sync cheaper than dense.
	if res.Mechanisms[3].SyncBytesPerUpdate >= decoderCopy.SyncBytesPerUpdate {
		t.Fatal("compressed sync not smaller than dense")
	}
	if res.TableB().NumRows() != 4 {
		t.Fatal("table shape wrong")
	}
}

func TestE5Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE5(env, E5Options{
		Selectors: []string{"oracle", "static", "naivebayes", "sticky"},
		Messages:  600,
		Users:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]E5Row{}
	for _, row := range res.Rows {
		byName[row.Selector] = row
	}
	if byName["oracle"].SelectionAccuracy != 1 {
		t.Fatalf("oracle accuracy = %v", byName["oracle"].SelectionAccuracy)
	}
	if byName["static"].SelectionAccuracy >= byName["naivebayes"].SelectionAccuracy {
		t.Fatal("static should lose to naive Bayes")
	}
	if byName["sticky"].SelectionAccuracy <= byName["naivebayes"].SelectionAccuracy {
		t.Fatalf("context-aware sticky (%v) should beat per-message NB (%v)",
			byName["sticky"].SelectionAccuracy, byName["naivebayes"].SelectionAccuracy)
	}
	// Better selection must translate into better end-to-end fidelity.
	if byName["oracle"].WordAccuracy <= byName["static"].WordAccuracy {
		t.Fatal("oracle fidelity should beat static")
	}
	if res.FigureD().NumRows() != 4 {
		t.Fatal("table shape wrong")
	}
}

func TestE6Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE6(env, E6Options{Messages: 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	warm, cold, thrash := res.Rows[0], res.Rows[1], res.Rows[2]
	// Cold fetches are rare (one per domain per edge), so they surface in
	// the tail and the mean, not the median.
	if warm.P99 >= cold.P99 {
		t.Fatalf("warm p99 (%v) should be below cold p99 (%v)", warm.P99, cold.P99)
	}
	if warm.Mean >= cold.Mean {
		t.Fatalf("warm mean (%v) should be below cold mean (%v)", warm.Mean, cold.Mean)
	}
	if warm.Mean >= thrash.Mean {
		t.Fatalf("warm mean (%v) should be below thrashing mean (%v)", warm.Mean, thrash.Mean)
	}
	if warm.HitRate < 0.99 {
		t.Fatalf("warm hit rate = %v", warm.HitRate)
	}
	if thrash.HitRate > 0.9 {
		t.Fatalf("thrashing hit rate suspiciously high: %v", thrash.HitRate)
	}
	if res.TableC().NumRows() != 3 {
		t.Fatal("table shape wrong")
	}
}

func TestE7Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE7(env, E7Options{
		TopKFracs:  []float64{1, 0.1},
		BufferSize: 32,
		Updates:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 { // 2 fracs x int8 on/off
		t.Fatalf("points = %d", len(res.Points))
	}
	var dense, sparse E7Point
	for _, p := range res.Points {
		if !p.Int8 && p.TopKFrac == 1 {
			dense = p
		}
		if p.Int8 && p.TopKFrac == 0.1 {
			sparse = p
		}
	}
	if sparse.BytesPerSync >= dense.BytesPerSync/4 {
		t.Fatalf("top-10%%+int8 (%v B) should be far below dense (%v B)",
			sparse.BytesPerSync, dense.BytesPerSync)
	}
	// Dense sync is lossless: receiver == sender.
	if dense.ReceiverAccuracy != dense.SenderAccuracy {
		t.Fatalf("dense sync should be lossless: %v vs %v",
			dense.ReceiverAccuracy, dense.SenderAccuracy)
	}
	if res.FigureE().NumRows() != 4 {
		t.Fatal("table shape wrong")
	}
}

func TestE8Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE8(env, E8Options{UserCounts: []int{1, 4}, MessagesPerUser: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Throughput <= 0 {
			t.Fatal("non-positive throughput")
		}
	}
	if res.TableD().NumRows() != 2 {
		t.Fatal("table shape wrong")
	}
}

func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ablation sweeps in -short")
	}
	env := Environment()
	res, err := RunAblations(env, AblationOptions{Messages: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FeatureDim) != 4 || len(res.Transport) != 4 {
		t.Fatalf("rows: dims %d transport %d", len(res.FeatureDim), len(res.Transport))
	}
	// Wider bottleneck should not reduce payload.
	if res.FeatureDim[0].PayloadBytes >= res.FeatureDim[3].PayloadBytes {
		t.Fatal("payload should grow with feature dim")
	}
	// Hamming-protected transport should beat uncoded at 6 dB.
	var hamming, uncoded AblationRow
	for _, row := range res.Transport {
		switch row.Config {
		case "digital/hamming":
			hamming = row
		case "digital/none":
			uncoded = row
		}
	}
	if hamming.ConceptAcc <= uncoded.ConceptAcc-0.02 {
		t.Fatalf("hamming (%v) should not lose to uncoded (%v) at 6 dB",
			hamming.ConceptAcc, uncoded.ConceptAcc)
	}
	tables := res.Tables()
	if len(tables) != 3 {
		t.Fatal("expected 3 ablation tables")
	}
	for _, tbl := range tables {
		if !strings.Contains(tbl.String(), "Ablation") {
			t.Fatal("ablation table missing title")
		}
	}
}

func TestEnvironmentSingleton(t *testing.T) {
	a := Environment()
	b := Environment()
	if a != b {
		t.Fatal("Environment not cached")
	}
	if a.General("it") == nil || a.General("nope") != nil {
		t.Fatal("General lookup wrong")
	}
}
