package experiments

import (
	"repro/internal/channel"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/semantic"
)

// E10Options parameterizes the multimodal (continuous vector stream)
// experiment from §III-B: semantic compression of avatar pose data.
type E10Options struct {
	// PoseDim is the observable pose dimensionality (default 12).
	PoseDim int
	// LatentDim is the true generative latent width (default 4).
	LatentDim int
	// FeatureDim is the semantic bottleneck (default 5).
	FeatureDim int
	// Frames measured per transport (default 300).
	Frames int
	// SNRdB is the channel operating point (default 6).
	SNRdB float64
	// Seed (default 1).
	Seed uint64
}

func (o E10Options) withDefaults() E10Options {
	if o.PoseDim == 0 {
		o.PoseDim = 12
	}
	if o.LatentDim == 0 {
		o.LatentDim = 4
	}
	if o.FeatureDim == 0 {
		o.FeatureDim = 5
	}
	if o.Frames == 0 {
		o.Frames = 300
	}
	if o.SNRdB == 0 {
		o.SNRdB = 6
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E10Row is one transport's outcome.
type E10Row struct {
	Transport    string
	NMSE         float64
	BytesPerPose float64
}

// E10Result compares pose-stream transports.
type E10Result struct {
	Rows []E10Row
}

// genPoses synthesizes correlated pose vectors from a low-dimensional
// latent, normalized to roughly unit scale.
func genPoses(rng *mat.RNG, n, dim, latent int) [][]float64 {
	mix := mat.NewDense(dim, latent)
	mix.Randomize(rng, 0.6)
	out := make([][]float64, n)
	z := make([]float64, latent)
	for i := range out {
		for j := range z {
			z[j] = rng.NormFloat64()
		}
		x := make([]float64, dim)
		mix.MulVec(x, z)
		for j := range x {
			x[j] += 0.02 * rng.NormFloat64()
		}
		out[i] = x
	}
	return out
}

// RunE10 trains a vector semantic codec on synthetic avatar-pose streams
// and compares it against raw scalar quantization of every dimension over
// the same channel: semantic compression exploits the pose manifold, raw
// quantization cannot.
func RunE10(env *Env, opts E10Options) (*E10Result, error) {
	opts = opts.withDefaults()
	rng := mat.NewRNG(opts.Seed)
	all := genPoses(rng.Split(), 800+opts.Frames, opts.PoseDim, opts.LatentDim)
	train, test := all[:800], all[800:]

	vc := semantic.NewVectorCodec(rng.Split(), opts.PoseDim, opts.FeatureDim)
	if _, err := vc.Train(train, 60, 0.02, 0.05, rng.Split()); err != nil {
		return nil, err
	}

	res := &E10Result{}
	// Pose values exceed [-1,1]; raw transports quantize over [-4,4].
	rawRange := 4.0

	// Transport 1: semantic features, 6-bit quantization, Hamming, BPSK.
	{
		link := channel.FeatureLink{
			Quant: channel.Quantizer{Bits: 6, Lo: -1, Hi: 1},
			Code:  channel.Hamming74{},
			Mod:   channel.BPSK{},
			Ch:    &channel.AWGN{SNRdB: opts.SNRdB, Rng: rng.Split()},
		}
		feat := make([]float64, opts.FeatureDim)
		out := make([]float64, opts.PoseDim)
		num, den, bytes := 0.0, 0.0, 0.0
		for _, x := range test {
			vc.Encode(feat, x)
			rx, stats := link.Send([][]float64{feat}, opts.FeatureDim)
			vc.Decode(out, rx[0])
			for i := range x {
				dd := out[i] - x[i]
				num += dd * dd
				den += x[i] * x[i]
			}
			bytes += float64(stats.PayloadBytes())
		}
		res.Rows = append(res.Rows, E10Row{
			Transport:    "semantic (vector codec, 5x6b)",
			NMSE:         num / den,
			BytesPerPose: bytes / float64(len(test)),
		})
	}

	// Transports 2-3: raw per-dimension quantization, once at an equal
	// byte budget (3 bits/dim ~ the semantic payload) and once at 6
	// bits/dim (2.4x the bytes) to show what raw transport must pay to
	// beat the semantic codec on quality.
	for _, bits := range []int{3, 6} {
		link := channel.FeatureLink{
			Quant: channel.Quantizer{Bits: bits, Lo: -rawRange, Hi: rawRange},
			Code:  channel.Hamming74{},
			Mod:   channel.BPSK{},
			Ch:    &channel.AWGN{SNRdB: opts.SNRdB, Rng: rng.Split()},
		}
		num, den, bytes := 0.0, 0.0, 0.0
		for _, x := range test {
			rx, stats := link.Send([][]float64{x}, opts.PoseDim)
			for i := range x {
				dd := rx[0][i] - x[i]
				num += dd * dd
				den += x[i] * x[i]
			}
			bytes += float64(stats.PayloadBytes())
		}
		name := "raw quantized (12x3b, equal bytes)"
		if bits == 6 {
			name = "raw quantized (12x6b, 2.4x bytes)"
		}
		res.Rows = append(res.Rows, E10Row{
			Transport:    name,
			NMSE:         num / den,
			BytesPerPose: bytes / float64(len(test)),
		})
	}
	return res, nil
}

// TableF renders the multimodal comparison.
func (r *E10Result) TableF() *metrics.Table {
	t := metrics.NewTable("Table F (extension): avatar pose streams — semantic vs raw transport (6 dB AWGN)",
		"transport", "nmse", "bytes_per_pose")
	for _, row := range r.Rows {
		t.AddRow(row.Transport, metrics.F(row.NMSE, 4), metrics.F(row.BytesPerPose, 1))
	}
	return t
}
