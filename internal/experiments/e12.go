package experiments

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/semantic"
)

// E12Options parameterizes the kernel-tier accuracy-versus-speed sweep:
// serving tier (f64 / f32 / int8) x channel SNR.
type E12Options struct {
	// Tiers under test (default all three, f64 first as the reference).
	Tiers []semantic.Tier
	// SNRs lists the sweep points in dB (default 0..18 step 6).
	SNRs []float64
	// MessagesPerDomain per sweep cell (default 200).
	MessagesPerDomain int
	// Domains under test (default it, medical).
	Domains []string
	// TimingTokens sizes the token stream for the per-tier ns/token
	// measurement (default 4096).
	TimingTokens int
	// Seed drives message generation and noise (default 1).
	Seed uint64
}

func (o E12Options) withDefaults() E12Options {
	if len(o.Tiers) == 0 {
		o.Tiers = semantic.Tiers()
	}
	if len(o.SNRs) == 0 {
		o.SNRs = []float64{0, 6, 12, 18}
	}
	if o.MessagesPerDomain == 0 {
		o.MessagesPerDomain = 200
	}
	if len(o.Domains) == 0 {
		o.Domains = []string{"it", "medical"}
	}
	if o.TimingTokens == 0 {
		o.TimingTokens = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E12Cell is one (tier, SNR) accuracy measurement.
type E12Cell struct {
	Tier       semantic.Tier
	SNRdB      float64
	ConceptAcc float64
	// MismatchDelta is the fraction of tokens whose decoded concept
	// differs from the f64 reference tier's decode of the same messages
	// under an identically seeded noise stream: the semantic cost of the
	// cheaper kernels, isolated from the channel.
	MismatchDelta float64
}

// E12Timing is one tier's codec compute cost (encode+decode, channel
// excluded), best-of-N over a fixed token stream.
type E12Timing struct {
	Tier       semantic.Tier
	NsPerToken float64
	// Speedup is f64-reference ns/token divided by this tier's.
	Speedup float64
}

// E12Result is the full grid plus the per-tier timing column.
type E12Result struct {
	Cells   []E12Cell
	Timings []E12Timing
}

// RunE12 measures what the reduced-precision serving tiers cost in meaning
// and buy in compute. Every (tier, SNR) cell replays the same messages
// through the same encode -> quantize -> channel -> decode pipeline; the
// channel RNG is re-seeded identically per SNR point so tiers face aligned
// noise, making the mismatch delta attributable to the kernels alone. The
// compute column times the batched encode+decode path per tier on one
// fixed token stream, channel excluded.
func RunE12(env *Env, opts E12Options) (*E12Result, error) {
	opts = opts.withDefaults()
	// Tiered serving clones, grouped per domain; clones keep the trained
	// weights and differ only in serving tier.
	type tierSet struct {
		domain *corpus.Domain
		codecs []*semantic.Codec // index-aligned with opts.Tiers
		msgs   []corpus.Message
	}
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(opts.Seed).Split())
	sets := make([]tierSet, 0, len(opts.Domains))
	for _, name := range opts.Domains {
		d := env.Corpus.Domain(name)
		if d == nil {
			return nil, fmt.Errorf("e12: unknown domain %q", name)
		}
		ts := tierSet{domain: d, msgs: gen.Batch(d.Index, opts.MessagesPerDomain, nil)}
		for _, tier := range opts.Tiers {
			c := env.Generals[d.Index].Clone()
			if err := c.SetTier(tier); err != nil {
				return nil, err
			}
			ts.codecs = append(ts.codecs, c)
		}
		sets = append(sets, ts)
	}
	// The f64 reference decodes; any f64 entry in Tiers reuses them.
	refCodecs := make([]*semantic.Codec, len(sets))
	for si, set := range sets {
		refCodecs[si] = env.Generals[set.domain.Index]
	}

	res := &E12Result{}
	runCell := func(tier int, codecOf func(si int) *semantic.Codec, snr float64, rngSeed uint64, ref [][]int) (E12Cell, [][]int) {
		ch := &channel.AWGN{SNRdB: snr, Rng: mat.NewRNG(rngSeed)}
		link := channel.DefaultFeatureLink(ch)
		cell := E12Cell{SNRdB: snr}
		if tier >= 0 {
			cell.Tier = opts.Tiers[tier]
		}
		decodes := make([][]int, 0, len(sets)*opts.MessagesPerDomain)
		var tokens, acc, mism float64
		for si, set := range sets {
			codec := codecOf(si)
			for _, m := range set.msgs {
				feats := codec.EncodeWords(m.Words)
				rx, _ := link.Send(feats, codec.FeatureDim())
				decoded := codec.DecodeFeatures(rx)
				acc += semantic.ConceptAccuracy(decoded, m.ConceptIDs) * float64(len(m.Words))
				tokens += float64(len(m.Words))
				if ref != nil {
					r := ref[len(decodes)]
					for t := range decoded {
						if decoded[t] != r[t] {
							mism++
						}
					}
				}
				decodes = append(decodes, decoded)
			}
		}
		cell.ConceptAcc = acc / tokens
		cell.MismatchDelta = mism / tokens
		return cell, decodes
	}

	// Accuracy grid: SNR points fan out; within a point the tiers run
	// serially against one reference decode set under one noise seed.
	cells := make([][]E12Cell, len(opts.SNRs))
	err := forEachTrial(len(opts.SNRs), func(pi int) error {
		seed := opts.Seed + 7919*uint64(pi+1)
		_, ref := runCell(-1, func(si int) *semantic.Codec { return refCodecs[si] }, opts.SNRs[pi], seed, nil)
		row := make([]E12Cell, len(opts.Tiers))
		for ti := range opts.Tiers {
			row[ti], _ = runCell(ti, func(si int) *semantic.Codec { return sets[si].codecs[ti] }, opts.SNRs[pi], seed, ref)
		}
		cells[pi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ti := range opts.Tiers {
		for pi := range opts.SNRs {
			res.Cells = append(res.Cells, cells[pi][ti])
		}
	}

	// Compute column: batched encode+decode over one token stream, best of
	// five rounds after a warm-up, run serially so tiers do not contend.
	var words []string
	for len(words) < opts.TimingTokens {
		words = append(words, gen.Message(sets[0].domain.Index, nil).Words...)
	}
	words = words[:opts.TimingTokens]
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	concepts := make([]int, len(words))
	var refNs float64
	for ti, tier := range opts.Tiers {
		codec := sets[0].codecs[ti]
		run := func() {
			sc.Reset()
			codec.DecodeFeaturesInto(sc, codec.EncodeWordsInto(sc, words), concepts)
		}
		run() // warm-up: builds tier shadows, fills scratch arenas
		best := time.Duration(1<<63 - 1)
		for r := 0; r < 5; r++ {
			t0 := time.Now()
			run()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		t := E12Timing{Tier: tier, NsPerToken: float64(best.Nanoseconds()) / float64(len(words))}
		if tier == semantic.TierF64 {
			refNs = t.NsPerToken
		}
		res.Timings = append(res.Timings, t)
	}
	for i := range res.Timings {
		if refNs > 0 {
			res.Timings[i].Speedup = refNs / res.Timings[i].NsPerToken
		}
	}
	return res, nil
}

// TableH renders the accuracy grid: one row per (tier, SNR) cell.
func (r *E12Result) TableH() *metrics.Table {
	t := metrics.NewTable("Table H: kernel-tier accuracy vs SNR (AWGN, 3-bit wire)",
		"tier", "snr_db", "concept_acc", "mismatch_delta")
	for _, c := range r.Cells {
		t.AddRow(c.Tier.String(), metrics.F(c.SNRdB, 0), metrics.F(c.ConceptAcc, 4), metrics.F(c.MismatchDelta, 4))
	}
	return t
}

// TableH2 renders the per-tier compute column.
func (r *E12Result) TableH2() *metrics.Table {
	t := metrics.NewTable("Table H': kernel-tier codec compute (encode+decode, channel excluded)",
		"tier", "ns_per_token", "speedup_vs_f64")
	for _, tm := range r.Timings {
		t.AddRow(tm.Tier.String(), metrics.F(tm.NsPerToken, 0), metrics.F(tm.Speedup, 2)+"x")
	}
	return t
}
