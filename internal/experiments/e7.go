package experiments

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// E7Options parameterizes the gradient-compression ablation.
type E7Options struct {
	// TopKFracs to sweep (default 1, 0.5, 0.25, 0.1, 0.05, 0.01).
	TopKFracs []float64
	// BufferSize transactions per update (default 64).
	BufferSize int
	// Updates applied sequentially per setting (default 6).
	Updates int
	// Domain under test (default "it").
	Domain string
	// Seed (default 1).
	Seed uint64
}

func (o E7Options) withDefaults() E7Options {
	if len(o.TopKFracs) == 0 {
		o.TopKFracs = []float64{1, 0.5, 0.25, 0.1, 0.05, 0.01}
	}
	if o.BufferSize == 0 {
		o.BufferSize = 64
	}
	if o.Updates == 0 {
		o.Updates = 6
	}
	if o.Domain == "" {
		o.Domain = "it"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E7Point is one compression setting's outcome.
type E7Point struct {
	TopKFrac     float64
	Int8         bool
	BytesPerSync float64
	// SenderAccuracy is the fine-tuned sender-local accuracy (upper
	// bound); ReceiverAccuracy is after lossy sync.
	SenderAccuracy   float64
	ReceiverAccuracy float64
}

// E7Result is the compression sweep.
type E7Result struct {
	Points []E7Point
}

// RunE7 sweeps decoder-update compression (top-k sparsification with and
// without int8 quantization), measuring sync payload against the
// receiver-side accuracy retained after a sequence of lossy updates.
func RunE7(env *Env, opts E7Options) (*E7Result, error) {
	opts = opts.withDefaults()
	d := env.Corpus.Domain(opts.Domain)
	general := env.Generals[d.Index]

	res := &E7Result{}
	for _, int8q := range []bool{false, true} {
		for _, frac := range opts.TopKFracs {
			compress := nn.CompressOptions{Int8: int8q}
			if frac < 1 {
				compress.TopKFrac = frac
			}
			rng := mat.NewRNG(opts.Seed)
			idio := corpus.NewIdiolect(env.Corpus, rng.Split(), 0.4)
			gen := corpus.NewGenerator(env.Corpus, rng.Split())
			sender := general.Clone()
			receiver := general.Clone()

			var syncBytes float64
			var lastBuf *fl.Buffer
			for u := 0; u < opts.Updates; u++ {
				buf := fl.NewBuffer(d.Name, "u1", opts.BufferSize)
				for i := 0; i < opts.BufferSize; i++ {
					msg := gen.Message(d.Index, idio)
					tx := fl.Transaction{
						SurfaceIDs: make([]int, len(msg.Words)),
						ConceptIDs: msg.ConceptIDs,
						Decoded:    sender.RoundTrip(msg.Words),
					}
					for j, w := range msg.Words {
						tx.SurfaceIDs[j] = d.SurfaceID(w)
					}
					buf.Add(tx)
				}
				upd, err := fl.RunUpdate(sender, buf, u, fl.UpdateConfig{
					Epochs: 3, Seed: uint64(u) + 1, Compress: compress,
				})
				if err != nil {
					return nil, err
				}
				if err := fl.ApplyUpdate(receiver, upd); err != nil {
					return nil, err
				}
				syncBytes += float64(upd.Stats.PayloadBytes)
				lastBuf = buf
			}
			exs := lastBuf.Examples()
			res.Points = append(res.Points, E7Point{
				TopKFrac:         frac,
				Int8:             int8q,
				BytesPerSync:     syncBytes / float64(opts.Updates),
				SenderAccuracy:   sender.Evaluate(exs),
				ReceiverAccuracy: fl.CrossEvaluate(sender, receiver, exs),
			})
		}
	}
	return res, nil
}

// FigureE renders the compression sweep.
func (r *E7Result) FigureE() *metrics.Table {
	t := metrics.NewTable("Figure E: decoder-update compression vs post-sync accuracy",
		"topk_frac", "int8", "bytes_per_sync", "sender_acc", "receiver_acc", "acc_loss")
	for _, p := range r.Points {
		t.AddRow(
			metrics.F(p.TopKFrac, 2),
			fmt.Sprintf("%v", p.Int8),
			metrics.F(p.BytesPerSync, 0),
			metrics.F(p.SenderAccuracy, 3),
			metrics.F(p.ReceiverAccuracy, 3),
			metrics.F(p.SenderAccuracy-p.ReceiverAccuracy, 3))
	}
	return t
}
