// Package experiments implements the reproduction harness: one runner per
// experiment in DESIGN.md's experiment index (E1-E8 plus ablations), each
// producing the table or figure series the evaluation reports. Runners are
// deterministic given their Options and shared by cmd/sembench and the
// top-level benchmarks.
package experiments

import (
	"sync"

	"repro/internal/baseline"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/semantic"
)

// Env is the shared expensive state (pretrained general codecs, trained
// Huffman coder) reused across experiments within one process.
type Env struct {
	Corpus   *corpus.Corpus
	Generals []*semantic.Codec
	Huffman  *baseline.Huffman
}

var (
	envOnce sync.Once
	envInst *Env
)

// Environment returns the lazily built shared environment. The build is
// deterministic: default codec config, seed 1.
func Environment() *Env {
	envOnce.Do(func() {
		corp := corpus.Build()
		generals := semantic.PretrainAll(corp, semantic.Config{})
		gen := corpus.NewGenerator(corp, mat.NewRNG(1))
		samples := make([]string, 0, 8*120)
		for di := range corp.Domains {
			for _, m := range gen.Batch(di, 120, nil) {
				samples = append(samples, m.Text())
			}
		}
		envInst = &Env{
			Corpus:   corp,
			Generals: generals,
			Huffman:  baseline.Train(samples),
		}
	})
	return envInst
}

// General returns the pretrained general codec for a domain name.
func (e *Env) General(name string) *semantic.Codec {
	d := e.Corpus.Domain(name)
	if d == nil {
		return nil
	}
	return e.Generals[d.Index]
}
