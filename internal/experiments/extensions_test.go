package experiments

import "testing"

func TestE9Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE9(env, E9Options{
		Donors: 6, SentencesPerDonor: 32, Rounds: 3, ProbeUsers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	stock, fed := res.Rows[0], res.Rows[1]
	if fed.ColdStartAcc <= stock.ColdStartAcc {
		t.Fatalf("FedAvg did not improve cold start: %v -> %v",
			stock.ColdStartAcc, fed.ColdStartAcc)
	}
	if fed.GenericAcc < stock.GenericAcc-0.05 {
		t.Fatalf("FedAvg degraded generic traffic: %v -> %v",
			stock.GenericAcc, fed.GenericAcc)
	}
	if res.TableE().NumRows() != 2 {
		t.Fatal("table shape wrong")
	}
}

func TestE10Shapes(t *testing.T) {
	env := Environment()
	res, err := RunE10(env, E10Options{Frames: 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	sem, raw3, raw6 := res.Rows[0], res.Rows[1], res.Rows[2]
	// At an equal byte budget the semantic codec must reconstruct better:
	// it spends its bits on the pose manifold, not on every raw dimension.
	if sem.BytesPerPose > raw3.BytesPerPose+1 {
		t.Fatalf("semantic bytes (%v) should be <= equal-budget raw (%v)",
			sem.BytesPerPose, raw3.BytesPerPose)
	}
	if sem.NMSE >= raw3.NMSE {
		t.Fatalf("semantic NMSE (%v) should beat equal-byte raw (%v)", sem.NMSE, raw3.NMSE)
	}
	// Raw transport can buy quality, but only by paying ~2.4x the bytes.
	if raw6.BytesPerPose <= 2*sem.BytesPerPose {
		t.Fatalf("raw 6-bit bytes (%v) should cost over 2x semantic (%v)",
			raw6.BytesPerPose, sem.BytesPerPose)
	}
	if raw6.NMSE >= raw3.NMSE {
		t.Fatalf("raw 6-bit (%v) should beat raw 3-bit (%v)", raw6.NMSE, raw3.NMSE)
	}
	if res.TableF().NumRows() != 3 {
		t.Fatal("table shape wrong")
	}
}

func TestErasureAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping erasure ablation sweep in -short")
	}
	env := Environment()
	res, err := RunAblations(env, AblationOptions{Messages: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Erasure) != 5 {
		t.Fatalf("erasure rows = %d", len(res.Erasure))
	}
	// Semantic must degrade gracefully: at 10% erasures it should stay far
	// above the traditional pipeline.
	var at10 ErasureRow
	for _, row := range res.Erasure {
		if row.ErasureP == 0.10 {
			at10 = row
		}
	}
	if at10.SemanticAcc <= at10.TraditionalAcc {
		t.Fatalf("at 10%% erasures semantic (%v) should beat traditional (%v)",
			at10.SemanticAcc, at10.TraditionalAcc)
	}
	// Monotone degradation with erasure rate for the semantic pipeline.
	for i := 1; i < len(res.Erasure); i++ {
		if res.Erasure[i].SemanticAcc > res.Erasure[i-1].SemanticAcc+0.05 {
			t.Fatalf("semantic accuracy not degrading with erasures: %v",
				res.Erasure)
		}
	}
	if len(res.Tables()) != 3 {
		t.Fatal("expected 3 ablation tables")
	}
}

func TestE11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep is slow; run without -short")
	}
	env := Environment()
	opts := E11Options{
		Policies:      []string{"lru", "gdsf"},
		NodeCounts:    []int{2, 3},
		MobilityRates: []float64{0, 0.1},
		Users:         12,
		Requests:      1200,
	}
	res, err := RunE11(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(res.Cells))
	}
	cell := func(p string, n int, r float64) E11Cell {
		for _, c := range res.Cells {
			if c.Policy == p && c.Nodes == n && c.MobilityRate == r {
				return c
			}
		}
		t.Fatalf("missing cell %s/%d/%v", p, n, r)
		return E11Cell{}
	}
	for _, p := range opts.Policies {
		static := cell(p, 2, 0)
		mobile := cell(p, 2, 0.1)
		if static.Handovers != 0 || static.MigratedKB != 0 {
			t.Fatalf("%s: static population reported handovers: %+v", p, static)
		}
		if mobile.Handovers == 0 || mobile.MigratedKB <= 0 {
			t.Fatalf("%s: mobile population reported no handovers: %+v", p, mobile)
		}
		if mobile.NeighborShare <= 0 {
			t.Fatalf("%s: cluster never fetched cooperatively: %+v", p, mobile)
		}
		if static.LocalHitRate <= 0 || mobile.LocalHitRate <= 0 {
			t.Fatalf("%s: hit rates missing", p)
		}
	}
	// Determinism: the sweep must reproduce bit-identically.
	res2, err := RunE11(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Cells {
		if res.Cells[i] != res2.Cells[i] {
			t.Fatalf("cell %d not deterministic: %+v != %+v", i, res.Cells[i], res2.Cells[i])
		}
	}
	if res.TableG().NumRows() != 8 {
		t.Fatal("table shape wrong")
	}
}
