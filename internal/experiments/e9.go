package experiments

import (
	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/semantic"
)

// E9Options parameterizes the federated general-model improvement
// experiment (extension of §II-D via the paper's FL reference).
type E9Options struct {
	// Donors contributing individual-model improvements (default 10).
	Donors int
	// SentencesPerDonor of local traffic (default 48).
	SentencesPerDonor int
	// Rounds of FedAvg (default 4).
	Rounds int
	// ProbeUsers are fresh users measuring cold-start quality (default 6).
	ProbeUsers int
	// Domain under test (default "it").
	Domain string
	// IdiolectStrength for donors and probes (default 0.5).
	IdiolectStrength float64
	// Seed (default 1).
	Seed uint64
}

func (o E9Options) withDefaults() E9Options {
	if o.Donors == 0 {
		o.Donors = 10
	}
	if o.SentencesPerDonor == 0 {
		o.SentencesPerDonor = 48
	}
	if o.Rounds == 0 {
		o.Rounds = 4
	}
	if o.ProbeUsers == 0 {
		o.ProbeUsers = 6
	}
	if o.Domain == "" {
		o.Domain = "it"
	}
	if o.IdiolectStrength == 0 {
		o.IdiolectStrength = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E9Row is one model variant's cold-start measurement.
type E9Row struct {
	Model             string
	ColdStartAcc      float64
	GenericAcc        float64
	ColdStartMismatch float64
}

// E9Result compares the stock general model against the FedAvg-improved
// one.
type E9Result struct {
	Rows []E9Row
}

// RunE9 measures whether federating many users' individual-model deltas
// back into the general model improves cold start for brand-new users with
// unseen idiolects — the paper's future-work relaxation of "general models
// remain the same".
func RunE9(env *Env, opts E9Options) (*E9Result, error) {
	opts = opts.withDefaults()
	d := env.Corpus.Domain(opts.Domain)
	stock := env.Generals[d.Index]
	rng := mat.NewRNG(opts.Seed)

	donors := make([][]semantic.Example, opts.Donors)
	for i := range donors {
		idio := corpus.NewIdiolect(env.Corpus, rng.Split(), opts.IdiolectStrength)
		gen := corpus.NewGenerator(env.Corpus, rng.Split())
		var exs []semantic.Example
		for _, m := range gen.Batch(d.Index, opts.SentencesPerDonor, idio) {
			exs = append(exs, semantic.ExamplesFromMessage(d, m)...)
		}
		donors[i] = exs
	}
	improved, err := fl.RunFederated(stock, donors, fl.FederatedConfig{
		Rounds: opts.Rounds, LocalEpochs: 2, Seed: opts.Seed + 99,
	})
	if err != nil {
		return nil, err
	}

	// Fresh probe users: idiolects never seen by any donor.
	var cold, generic []semantic.Example
	for p := 0; p < opts.ProbeUsers; p++ {
		idio := corpus.NewIdiolect(env.Corpus, rng.Split(), opts.IdiolectStrength)
		gen := corpus.NewGenerator(env.Corpus, rng.Split())
		for _, m := range gen.Batch(d.Index, 40, idio) {
			cold = append(cold, semantic.ExamplesFromMessage(d, m)...)
		}
		for _, m := range gen.Batch(d.Index, 20, nil) {
			generic = append(generic, semantic.ExamplesFromMessage(d, m)...)
		}
	}

	res := &E9Result{}
	for _, row := range []struct {
		name  string
		codec *semantic.Codec
	}{
		{"stock general", stock},
		{"fedavg general", improved},
	} {
		ca := row.codec.Evaluate(cold)
		res.Rows = append(res.Rows, E9Row{
			Model:             row.name,
			ColdStartAcc:      ca,
			GenericAcc:        row.codec.Evaluate(generic),
			ColdStartMismatch: 1 - ca,
		})
	}
	return res, nil
}

// TableE renders the FedAvg comparison.
func (r *E9Result) TableE() *metrics.Table {
	t := metrics.NewTable("Table E (extension): FedAvg-improved general model, cold-start users",
		"model", "coldstart_acc", "coldstart_mismatch", "generic_acc")
	for _, row := range r.Rows {
		t.AddRow(row.Model,
			metrics.F(row.ColdStartAcc, 3),
			metrics.F(row.ColdStartMismatch, 3),
			metrics.F(row.GenericAcc, 3))
	}
	return t
}
