package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/edge"
	"repro/internal/kb"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// E8Options parameterizes the concurrency/scalability measurement.
type E8Options struct {
	// UserCounts to sweep (default 1, 2, 4, 8, 16, 32, 64).
	UserCounts []int
	// MessagesPerUser per run (default 200).
	MessagesPerUser int
	// Seed (default 1).
	Seed uint64
}

func (o E8Options) withDefaults() E8Options {
	if len(o.UserCounts) == 0 {
		o.UserCounts = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if o.MessagesPerUser == 0 {
		o.MessagesPerUser = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E8Row is one concurrency level's wall-clock measurement.
type E8Row struct {
	Users      int
	Messages   int
	Throughput float64 // messages per wall-clock second
	P99        time.Duration
}

// E8Result is the scalability sweep.
type E8Result struct {
	Rows []E8Row
}

// RunE8 drives a shared pair of edge servers with real concurrent user
// goroutines (encode, record transaction, decode) and measures wall-clock
// throughput and tail latency of the edge processing path. Unlike the
// other experiments it intentionally measures real time.
func RunE8(env *Env, opts E8Options) (*E8Result, error) {
	opts = opts.withDefaults()
	cloud := kb.NewRegistry()
	for i, d := range env.Corpus.Domains {
		cloud.Put(&kb.Model{Key: kb.GeneralKey(d.Name, kb.RoleCodec), Version: 1, Codec: env.Generals[i]})
	}
	res := &E8Result{Rows: make([]E8Row, 0, len(opts.UserCounts))}
	for _, users := range opts.UserCounts {
		mk := func(name string) (*edge.Server, error) {
			return edge.New(edge.Config{
				Name:          name,
				CacheCapacity: 64 << 20,
				Uplink:        netsim.Link{Latency: time.Millisecond},
				// Real wall-clock measurement: no simulated compute.
				ComputePerToken: time.Nanosecond,
			}, cloud)
		}
		sender, err := mk("edge-s")
		if err != nil {
			return nil, err
		}
		receiver, err := mk("edge-r")
		if err != nil {
			return nil, err
		}
		if _, err := sender.Prefetch(env.Corpus.Names()); err != nil {
			return nil, err
		}
		if _, err := receiver.Prefetch(env.Corpus.Names()); err != nil {
			return nil, err
		}

		latencies := make([][]time.Duration, users)
		var wg sync.WaitGroup
		var firstErr error
		var errOnce sync.Once
		start := time.Now()
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(opts.Seed+uint64(u)*31))
				user := fmt.Sprintf("u%03d", u)
				lats := make([]time.Duration, 0, opts.MessagesPerUser)
				sc := mat.GetScratch()
				defer mat.PutScratch(sc)
				for i := 0; i < opts.MessagesPerUser; i++ {
					di := (u + i) % len(env.Corpus.Domains)
					msg := gen.Message(di, nil)
					t0 := time.Now()
					sc.Reset()
					enc, err := sender.Encode(sc, msg.DomainName, user, msg.Words)
					if err == nil {
						_, _, err = sender.RecordTransaction(sc, msg.DomainName, user, msg.Words, &enc)
					}
					if err == nil {
						_, err = receiver.Decode(sc, msg.DomainName, user, enc.Features)
					}
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					lats = append(lats, time.Since(t0))
				}
				latencies[u] = lats
			}(u)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		elapsed := time.Since(start)
		total := users * opts.MessagesPerUser
		var all metrics.Durations
		for _, lats := range latencies {
			for _, l := range lats {
				all.Add(l)
			}
		}
		res.Rows = append(res.Rows, E8Row{
			Users:      users,
			Messages:   total,
			Throughput: float64(total) / elapsed.Seconds(),
			P99:        all.P(99),
		})
	}
	return res, nil
}

// TableD renders the scalability sweep.
func (r *E8Result) TableD() *metrics.Table {
	t := metrics.NewTable("Table D: edge-server throughput under concurrent users (wall clock)",
		"users", "messages", "msgs_per_sec", "p99_us")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.Users),
			fmt.Sprintf("%d", row.Messages),
			metrics.F(row.Throughput, 0),
			metrics.F(float64(row.P99)/float64(time.Microsecond), 1))
	}
	return t
}
