package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// E6Options parameterizes the edge-versus-cloud latency comparison.
type E6Options struct {
	// Messages per condition (default 400).
	Messages int
	// Seed (default 1).
	Seed uint64
}

func (o E6Options) withDefaults() E6Options {
	if o.Messages == 0 {
		o.Messages = 400
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E6Row is one caching condition's latency profile.
type E6Row struct {
	Condition string
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	Mean      time.Duration
	HitRate   float64
}

// E6Result compares caching conditions.
type E6Result struct {
	Rows []E6Row
}

// RunE6 measures end-to-end message latency under three model-placement
// conditions: a cold edge cache that fills on demand, a warm cache with
// pinned general models, and a thrashing cache too small to hold the
// working set (approximating fetch-from-cloud per domain switch).
func RunE6(env *Env, opts E6Options) (*E6Result, error) {
	opts = opts.withDefaults()
	type condition struct {
		name     string
		capacity int64 // model-equivalents; 0 = default (fits all)
		prewarm  bool
	}
	// Largest general codec model size, for capacity math.
	var modelBytes int64
	for _, g := range env.Generals {
		if s := g.SizeBytes(); s > modelBytes {
			modelBytes = s
		}
	}
	conds := []condition{
		{name: "warm edge cache (pinned)", prewarm: true},
		{name: "cold edge cache", capacity: 0},
		{name: "thrashing cache (1 model)", capacity: modelBytes + modelBytes/2},
	}
	res := &E6Result{Rows: make([]E6Row, 0, len(conds))}
	for _, cond := range conds {
		cfg := core.Config{
			Selector:          core.SelectorOracle,
			PinGeneral:        cond.prewarm,
			DisableAutoUpdate: true,
			Seed:              opts.Seed,
			Pretrained:        env.Generals,
		}
		if cond.capacity > 0 {
			cfg.SenderCacheBytes = cond.capacity
			cfg.ReceiverCacheBytes = cond.capacity
			cfg.PinGeneral = false
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if cond.prewarm {
			if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
				return nil, err
			}
			if _, err := sys.Receiver.Prefetch(sys.Corpus.Names()); err != nil {
				return nil, err
			}
			sys.Sender.ResetCacheStats()
			sys.Receiver.ResetCacheStats()
		}
		w := trace.Generate(sys.Corpus, trace.Config{
			Users: 8, Messages: opts.Messages, MeanRunLength: 6, Seed: opts.Seed + 9,
		})
		results, err := sys.RunWorkload(w)
		if err != nil {
			return nil, err
		}
		var lat metrics.Durations
		for _, r := range results {
			lat.Add(r.Latency)
		}
		res.Rows = append(res.Rows, E6Row{
			Condition: cond.name,
			P50:       lat.P(50),
			P95:       lat.P(95),
			P99:       lat.P(99),
			Mean:      lat.Mean(),
			HitRate:   sys.Sender.CacheStats().HitRate(),
		})
	}
	return res, nil
}

// TableC renders the latency percentile comparison.
func (r *E6Result) TableC() *metrics.Table {
	t := metrics.NewTable("Table C: end-to-end message latency by model placement",
		"condition", "p50_ms", "p95_ms", "p99_ms", "mean_ms", "sender_hit_rate")
	ms := func(d time.Duration) string { return metrics.F(float64(d)/float64(time.Millisecond), 2) }
	for _, row := range r.Rows {
		t.AddRow(row.Condition, ms(row.P50), ms(row.P95), ms(row.P99), ms(row.Mean),
			metrics.F(row.HitRate, 3))
	}
	return t
}
