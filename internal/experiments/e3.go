package experiments

import (
	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/semantic"
)

// E3Options parameterizes the personalization experiment.
type E3Options struct {
	// Users is the simulated user count (default 12).
	Users int
	// Rounds is the number of communication rounds (default 40).
	Rounds int
	// MessagesPerRound per user (default 8).
	MessagesPerRound int
	// BufferThreshold transactions trigger a fine-tune (default 32).
	BufferThreshold int
	// IdiolectStrength in [0,1] (default 0.3).
	IdiolectStrength float64
	// Domain under test (default "it").
	Domain string
	// Seed drives everything (default 1).
	Seed uint64
}

func (o E3Options) withDefaults() E3Options {
	if o.Users == 0 {
		o.Users = 12
	}
	if o.Rounds == 0 {
		o.Rounds = 40
	}
	if o.MessagesPerRound == 0 {
		o.MessagesPerRound = 8
	}
	if o.BufferThreshold == 0 {
		o.BufferThreshold = 32
	}
	if o.IdiolectStrength == 0 {
		o.IdiolectStrength = 0.3
	}
	if o.Domain == "" {
		o.Domain = "it"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E3Round is one round's mean mismatch across users.
type E3Round struct {
	Round              int
	GeneralMismatch    float64
	IndividualMismatch float64
	UpdatesFired       int
}

// E3Result is the mismatch trajectory.
type E3Result struct {
	Rounds []E3Round
	// FinalGap is general minus individual mismatch averaged over the
	// last quarter of rounds.
	FinalGap float64
}

// RunE3 tracks semantic mismatch over communication rounds for users with
// idiolects, comparing a frozen general model against individual models
// updated through the paper's buffer-triggered fine-tuning.
func RunE3(env *Env, opts E3Options) (*E3Result, error) {
	opts = opts.withDefaults()
	d := env.Corpus.Domain(opts.Domain)
	general := env.Generals[d.Index]
	rng := mat.NewRNG(opts.Seed)

	type user struct {
		idio       *corpus.Idiolect
		individual *semantic.Codec
		buf        *fl.Buffer
		gen        *corpus.Generator
		ftRNG      *mat.RNG
	}
	users := make([]*user, opts.Users)
	for i := range users {
		users[i] = &user{
			idio:       corpus.NewIdiolect(env.Corpus, rng.Split(), opts.IdiolectStrength),
			individual: general.Clone(),
			buf:        fl.NewBuffer(d.Name, "u", opts.BufferThreshold),
			gen:        corpus.NewGenerator(env.Corpus, rng.Split()),
			ftRNG:      rng.Split(),
		}
	}

	res := &E3Result{Rounds: make([]E3Round, 0, opts.Rounds)}
	for round := 0; round < opts.Rounds; round++ {
		row := E3Round{Round: round + 1}
		for _, u := range users {
			for m := 0; m < opts.MessagesPerRound; m++ {
				msg := u.gen.Message(d.Index, u.idio)
				exs := semantic.ExamplesFromMessage(d, msg)
				// General-model mismatch (frozen baseline).
				row.GeneralMismatch += 1 - general.Evaluate(exs)
				// Individual-model mismatch + buffering.
				row.IndividualMismatch += 1 - u.individual.Evaluate(exs)
				tx := fl.Transaction{
					SurfaceIDs: make([]int, len(msg.Words)),
					ConceptIDs: msg.ConceptIDs,
					Decoded:    u.individual.RoundTrip(msg.Words),
				}
				for i, w := range msg.Words {
					tx.SurfaceIDs[i] = d.SurfaceID(w)
				}
				u.buf.Add(tx)
			}
			if u.buf.Ready() {
				if _, err := fl.RunUpdate(u.individual, u.buf, 0, fl.UpdateConfig{
					Epochs: 3, Seed: u.ftRNG.Uint64()%1000 + 1,
				}); err != nil {
					return nil, err
				}
				u.buf.Reset()
				row.UpdatesFired++
			}
		}
		n := float64(opts.Users * opts.MessagesPerRound)
		row.GeneralMismatch /= n
		row.IndividualMismatch /= n
		res.Rounds = append(res.Rounds, row)
	}
	quarter := opts.Rounds / 4
	if quarter == 0 {
		quarter = 1
	}
	for _, row := range res.Rounds[len(res.Rounds)-quarter:] {
		res.FinalGap += (row.GeneralMismatch - row.IndividualMismatch) / float64(quarter)
	}
	return res, nil
}

// FigureC renders the mismatch trajectory.
func (r *E3Result) FigureC() *metrics.Table {
	t := metrics.NewTable("Figure C: semantic mismatch vs communication round (idiolect users)",
		"round", "general_model", "individual_model", "updates_fired")
	for _, row := range r.Rounds {
		t.AddRow(metrics.F(float64(row.Round), 0),
			metrics.F(row.GeneralMismatch, 4),
			metrics.F(row.IndividualMismatch, 4),
			metrics.F(float64(row.UpdatesFired), 0))
	}
	return t
}
