package experiments

import (
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// E5Options parameterizes the model-selection comparison.
type E5Options struct {
	// Selectors to compare (default oracle, static, naivebayes, sticky,
	// qlearn, ucb).
	Selectors []string
	// Messages per selector (default 3000).
	Messages int
	// Users sharing the stream (default 6).
	Users int
	// MeanRunLength of topic runs (default 12).
	MeanRunLength float64
	// Seed (default 1).
	Seed uint64
}

func (o E5Options) withDefaults() E5Options {
	if len(o.Selectors) == 0 {
		o.Selectors = []string{
			core.SelectorOracle, core.SelectorStatic, core.SelectorNaiveBayes,
			core.SelectorSticky, core.SelectorQLearn, core.SelectorUCB,
		}
	}
	if o.Messages == 0 {
		o.Messages = 3000
	}
	if o.Users == 0 {
		o.Users = 6
	}
	if o.MeanRunLength == 0 {
		o.MeanRunLength = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E5Row is one selector's end-to-end outcome.
type E5Row struct {
	Selector          string
	SelectionAccuracy float64
	WordAccuracy      float64
	Similarity        float64
	Mismatch          float64
}

// E5Result compares selection policies.
type E5Result struct {
	Rows []E5Row
}

// RunE5 runs the full system under each selection policy on an ambiguous
// workload (short, function-word-heavy messages under topic drift), where
// per-message classification is unreliable and the §III-A context/RL
// approaches should win.
func RunE5(env *Env, opts E5Options) (*E5Result, error) {
	opts = opts.withDefaults()
	// Each selector gets its own full System (cloned from the shared
	// pretrained codecs) and a deterministic workload, so the comparison
	// rows shard across the worker pool and land by index.
	res := &E5Result{Rows: make([]E5Row, len(opts.Selectors))}
	err := forEachTrial(len(opts.Selectors), func(si int) error {
		sel := opts.Selectors[si]
		sys, err := core.NewSystem(core.Config{
			Selector:          sel,
			PinGeneral:        true,
			DisableAutoUpdate: true,
			Seed:              opts.Seed,
			Pretrained:        env.Generals,
		})
		if err != nil {
			return err
		}
		w := trace.Generate(sys.Corpus, trace.Config{
			Users: opts.Users, Messages: opts.Messages,
			MeanRunLength: opts.MeanRunLength,
			MinLen:        3, MaxLen: 6, FuncProb: 0.55,
			Seed: opts.Seed + 100,
		})
		results, err := sys.RunWorkload(w)
		if err != nil {
			return err
		}
		sum, err := core.Summarize(results)
		if err != nil {
			return err
		}
		res.Rows[si] = E5Row{
			Selector:          sel,
			SelectionAccuracy: sum.SelectionAccuracy,
			WordAccuracy:      sum.MeanWordAccuracy,
			Similarity:        sum.MeanSimilarity,
			Mismatch:          sum.MeanMismatch,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FigureD renders the selection comparison.
func (r *E5Result) FigureD() *metrics.Table {
	t := metrics.NewTable("Figure D: model selection under topic drift (ambiguous short messages)",
		"selector", "selection_acc", "word_acc", "similarity", "sender_mismatch")
	for _, row := range r.Rows {
		t.AddRow(row.Selector,
			metrics.F(row.SelectionAccuracy, 3),
			metrics.F(row.WordAccuracy, 3),
			metrics.F(row.Similarity, 3),
			metrics.F(row.Mismatch, 3))
	}
	return t
}
