package experiments

import (
	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// E4Options parameterizes the decoder-copy traffic comparison.
type E4Options struct {
	// Rounds of buffer-fill + update (default 30).
	Rounds int
	// BufferSize transactions per round (default 32).
	BufferSize int
	// Domain under test (default "it").
	Domain string
	// IdiolectStrength for the simulated user (default 0.4).
	IdiolectStrength float64
	// Seed (default 1).
	Seed uint64
}

func (o E4Options) withDefaults() E4Options {
	if o.Rounds == 0 {
		o.Rounds = 30
	}
	if o.BufferSize == 0 {
		o.BufferSize = 32
	}
	if o.Domain == "" {
		o.Domain = "it"
	}
	if o.IdiolectStrength == 0 {
		o.IdiolectStrength = 0.4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E4Mechanism is one feedback/sync mechanism's traffic accounting.
type E4Mechanism struct {
	Name string
	// FeedbackBytesPerRound is per-message feedback traffic accumulated
	// over one buffer round (receiver -> sender).
	FeedbackBytesPerRound float64
	// SyncBytesPerUpdate is the decoder-synchronization payload
	// (sender -> receiver).
	SyncBytesPerUpdate float64
	// TotalBytes over all rounds (feedback + sync).
	TotalBytes float64
	// PostAccuracy is the receiver-side accuracy after the final update.
	PostAccuracy float64
}

// E4Result compares mechanisms.
type E4Result struct {
	Mechanisms []E4Mechanism
	Rounds     int
}

// RunE4 quantifies §II-C: computing mismatch by returning receiver outputs
// to the sender versus caching a decoder copy on the sender edge. All
// mechanisms end with identical fine-tuning; they differ only in traffic.
func RunE4(env *Env, opts E4Options) (*E4Result, error) {
	opts = opts.withDefaults()
	d := env.Corpus.Domain(opts.Domain)
	general := env.Generals[d.Index]
	rng := mat.NewRNG(opts.Seed)
	idio := corpus.NewIdiolect(env.Corpus, rng.Split(), opts.IdiolectStrength)

	type mech struct {
		name         string
		outputReturn bool
		compress     nn.CompressOptions
	}
	mechs := []mech{
		{name: "output-return + dense sync", outputReturn: true},
		{name: "decoder-copy + dense sync"},
		{name: "decoder-copy + top10% sync", compress: nn.CompressOptions{TopKFrac: 0.10}},
		{name: "decoder-copy + top10% int8 sync", compress: nn.CompressOptions{TopKFrac: 0.10, Int8: true}},
	}

	res := &E4Result{Rounds: opts.Rounds}
	for _, mc := range mechs {
		sender := general.Clone()
		receiver := general.Clone()
		gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(opts.Seed+7))
		ftRNG := mat.NewRNG(opts.Seed + 13)

		var feedbackTotal, syncTotal float64
		var lastExamples []fl.Transaction
		for round := 0; round < opts.Rounds; round++ {
			buf := fl.NewBuffer(d.Name, "u1", opts.BufferSize)
			for i := 0; i < opts.BufferSize; i++ {
				msg := gen.Message(d.Index, idio)
				tx := fl.Transaction{
					SurfaceIDs: make([]int, len(msg.Words)),
					ConceptIDs: msg.ConceptIDs,
				}
				for j, w := range msg.Words {
					tx.SurfaceIDs[j] = d.SurfaceID(w)
				}
				if mc.outputReturn {
					// The receiver decodes and returns its output text.
					decoded := receiver.DecodeFeatures(sender.EncodeWords(msg.Words))
					tx.Decoded = decoded
					feedbackTotal += float64(tx.OutputReturnBytes(receiver.RestoreWords(decoded)))
				} else {
					// Decoder copy: computed locally, no feedback traffic.
					tx.Decoded = sender.RoundTrip(msg.Words)
				}
				buf.Add(tx)
			}
			upd, err := fl.RunUpdate(sender, buf, round, fl.UpdateConfig{
				Epochs: 3, Seed: ftRNG.Uint64()%1000 + 1, Compress: mc.compress,
			})
			if err != nil {
				return nil, err
			}
			if err := fl.ApplyUpdate(receiver, upd); err != nil {
				return nil, err
			}
			syncTotal += float64(upd.Stats.PayloadBytes)
			lastExamples = buf.Transactions()
		}
		// Post-sync receiver accuracy on the final round's traffic.
		var exs []fl.Transaction = lastExamples
		buf := fl.NewBuffer(d.Name, "u1", 1)
		for _, tx := range exs {
			buf.Add(tx)
		}
		post := fl.CrossEvaluate(sender, receiver, buf.Examples())

		res.Mechanisms = append(res.Mechanisms, E4Mechanism{
			Name:                  mc.name,
			FeedbackBytesPerRound: feedbackTotal / float64(opts.Rounds),
			SyncBytesPerUpdate:    syncTotal / float64(opts.Rounds),
			TotalBytes:            feedbackTotal + syncTotal,
			PostAccuracy:          post,
		})
	}
	return res, nil
}

// TableB renders the traffic comparison.
func (r *E4Result) TableB() *metrics.Table {
	t := metrics.NewTable("Table B: mismatch-feedback and decoder-sync traffic (per user, per domain)",
		"mechanism", "feedback_B_per_round", "sync_B_per_update", "total_B", "post_sync_accuracy")
	for _, m := range r.Mechanisms {
		t.AddRow(m.Name,
			metrics.F(m.FeedbackBytesPerRound, 0),
			metrics.F(m.SyncBytesPerUpdate, 0),
			metrics.F(m.TotalBytes, 0),
			metrics.F(m.PostAccuracy, 3))
	}
	return t
}
