package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/mat"
)

func TestForEachTrialCoversAllAndPropagatesError(t *testing.T) {
	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)
	for _, workers := range []int{1, 4} {
		mat.SetParallelism(workers)
		var ran atomic.Int64
		if err := forEachTrial(17, func(i int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if got := ran.Load(); got != 17 {
			t.Fatalf("workers=%d: ran %d of 17 trials", workers, got)
		}

		boom := errors.New("boom")
		err := forEachTrial(9, func(i int) error {
			if i == 4 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error = %v, want boom", workers, err)
		}
	}
}

// TestTrialFanOutDeterminism asserts the parallelized runners produce
// results identical to serial execution: per-trial RNGs are split before
// the fan-out, so worker count must never change a table.
func TestTrialFanOutDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fan-out determinism sweep in -short")
	}
	env := Environment()
	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)

	e1opts := E1Options{SNRs: []float64{0, 6, 12}, MessagesPerDomain: 20, Domains: []string{"it"}}
	e2opts := E2Options{Capacities: []int{1, 4}, Policies: []string{"lru", "lfu"}, Requests: 400}
	e5opts := E5Options{Selectors: []string{"oracle", "naivebayes"}, Messages: 150, Users: 2}

	mat.SetParallelism(1)
	e1s, err := RunE1(env, e1opts)
	if err != nil {
		t.Fatal(err)
	}
	e2s, err := RunE2(env, e2opts)
	if err != nil {
		t.Fatal(err)
	}
	e5s, err := RunE5(env, e5opts)
	if err != nil {
		t.Fatal(err)
	}

	mat.SetParallelism(4)
	e1p, err := RunE1(env, e1opts)
	if err != nil {
		t.Fatal(err)
	}
	e2p, err := RunE2(env, e2opts)
	if err != nil {
		t.Fatal(err)
	}
	e5p, err := RunE5(env, e5opts)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(e1s, e1p) {
		t.Errorf("E1 results differ between 1 and 4 workers:\n%+v\n%+v", e1s.Points, e1p.Points)
	}
	if !reflect.DeepEqual(e2s, e2p) {
		t.Errorf("E2 results differ between 1 and 4 workers:\n%+v\n%+v", e2s.Cells, e2p.Cells)
	}
	if !reflect.DeepEqual(e5s, e5p) {
		t.Errorf("E5 results differ between 1 and 4 workers:\n%+v\n%+v", e5s.Rows, e5p.Rows)
	}
}
