package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/mat"
)

// forEachTrial runs fn(0) … fn(n-1), sharding independent trials across up
// to mat.Parallelism() goroutines. On failure it returns the error of the
// lowest-numbered failing trial — the same error serial execution would
// return — so error reporting, like results, never depends on scheduling.
// Callers must make fn write results by index so output ordering is
// scheduling-independent too; every runner that uses this splits per-trial
// RNGs serially up front, preserving bit-identical results at any
// parallelism.
func forEachTrial(n int, fn func(i int) error) error {
	workers := mat.Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
