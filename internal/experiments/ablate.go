package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/channel"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/semantic"
)

// AblationOptions parameterizes the design-choice ablations from
// DESIGN.md §5.
type AblationOptions struct {
	// SNRdB is the operating point (default 6: noisy but workable).
	SNRdB float64
	// Messages per configuration (default 200).
	Messages int
	// Domain under test (default "it").
	Domain string
	// Seed (default 1).
	Seed uint64
}

func (o AblationOptions) withDefaults() AblationOptions {
	if o.SNRdB == 0 {
		o.SNRdB = 6
	}
	if o.Messages == 0 {
		o.Messages = 200
	}
	if o.Domain == "" {
		o.Domain = "it"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Config       string
	Similarity   float64
	ConceptAcc   float64
	PayloadBytes float64
}

// AblationResult groups rows per study.
type AblationResult struct {
	FeatureDim []AblationRow
	Transport  []AblationRow
	// Erasure compares semantic and traditional pipelines under symbol
	// erasures (§III-C losses/congestion); Config holds the erasure rate.
	Erasure []ErasureRow
}

// ErasureRow is one erasure-rate measurement.
type ErasureRow struct {
	ErasureP       float64
	SemanticAcc    float64
	TraditionalAcc float64
}

// RunAblations measures two design choices: codec bottleneck width
// (feature dimension, which trades payload against fidelity) and feature
// transport (digital quantized+coded versus DeepSC-style analog, plus
// channel-code choices).
func RunAblations(env *Env, opts AblationOptions) (*AblationResult, error) {
	opts = opts.withDefaults()
	d := env.Corpus.Domain(opts.Domain)
	res := &AblationResult{}

	// Study 1: feature dimension sweep (retrains small codecs).
	for _, dim := range []int{2, 4, 8, 16} {
		codec := semantic.Pretrain(d, env.Corpus, semantic.Config{
			FeatureDim: dim, Seed: opts.Seed,
		})
		row, err := measureTransport(env, codec, "digital/hamming", opts)
		if err != nil {
			return nil, err
		}
		row.Config = fmt.Sprintf("feature_dim=%d", dim)
		res.FeatureDim = append(res.FeatureDim, row)
	}

	// Study 2: transport comparison on the default codec.
	codec := env.Generals[d.Index]
	for _, transport := range []string{"digital/hamming", "digital/none", "digital/rep3", "analog"} {
		row, err := measureTransport(env, codec, transport, opts)
		if err != nil {
			return nil, err
		}
		row.Config = transport
		res.Transport = append(res.Transport, row)
	}

	// Study 3: symbol erasures (losses/congestion). Both pipelines use
	// Hamming(7,4) + BPSK; the channel drops symbols independently.
	for _, p := range []float64{0.01, 0.03, 0.05, 0.10, 0.20} {
		row, err := measureErasure(env, codec, p, opts)
		if err != nil {
			return nil, err
		}
		res.Erasure = append(res.Erasure, row)
	}
	return res, nil
}

// measureErasure compares meaning recovery under a symbol-erasure channel.
func measureErasure(env *Env, codec *semantic.Codec, p float64, opts AblationOptions) (ErasureRow, error) {
	d := codec.Domain()
	rng := mat.NewRNG(opts.Seed + 991)
	gen := corpus.NewGenerator(env.Corpus, rng.Split())
	ch := &channel.Erasure{P: p, Rng: rng.Split()}
	link := channel.DefaultFeatureLink(ch)
	pipe := tradPipeline(env, ch)

	row := ErasureRow{ErasureP: p}
	for i := 0; i < opts.Messages; i++ {
		m := gen.Message(d.Index, nil)
		rx, _ := link.Send(codec.EncodeWords(m.Words), codec.FeatureDim())
		decoded := codec.DecodeFeatures(rx)
		row.SemanticAcc += semantic.ConceptAccuracy(decoded, m.ConceptIDs)

		got, _, _ := pipe.Send(m.Text())
		concepts := conceptsOfText(d, got, len(m.ConceptIDs))
		row.TraditionalAcc += semantic.ConceptAccuracy(concepts, m.ConceptIDs)
	}
	n := float64(opts.Messages)
	row.SemanticAcc /= n
	row.TraditionalAcc /= n
	return row, nil
}

// measureTransport runs messages through one transport configuration.
func measureTransport(env *Env, codec *semantic.Codec, transport string, opts AblationOptions) (AblationRow, error) {
	d := codec.Domain()
	rng := mat.NewRNG(opts.Seed + 77)
	gen := corpus.NewGenerator(env.Corpus, rng.Split())
	ch := &channel.AWGN{SNRdB: opts.SNRdB, Rng: rng.Split()}

	send := func(feats [][]float64) ([][]float64, channel.LinkStats) {
		switch transport {
		case "digital/hamming":
			return channel.DefaultFeatureLink(ch).Send(feats, codec.FeatureDim())
		case "digital/none":
			l := channel.DefaultFeatureLink(ch)
			l.Code = channel.Identity{}
			return l.Send(feats, codec.FeatureDim())
		case "digital/rep3":
			l := channel.DefaultFeatureLink(ch)
			l.Code = channel.Repetition{N: 3}
			return l.Send(feats, codec.FeatureDim())
		default: // analog
			return channel.AnalogLink{Ch: ch}.Send(feats, codec.FeatureDim())
		}
	}

	var row AblationRow
	for i := 0; i < opts.Messages; i++ {
		m := gen.Message(d.Index, nil)
		rx, stats := send(codec.EncodeWords(m.Words))
		decoded := codec.DecodeFeatures(rx)
		row.Similarity += semantic.Similarity(codec, decoded, m.ConceptIDs)
		row.ConceptAcc += semantic.ConceptAccuracy(decoded, m.ConceptIDs)
		row.PayloadBytes += float64(stats.PayloadBytes())
	}
	n := float64(opts.Messages)
	row.Similarity /= n
	row.ConceptAcc /= n
	row.PayloadBytes /= n
	return row, nil
}

// tradPipeline builds the traditional pipeline over ch.
func tradPipeline(env *Env, ch channel.Channel) baseline.Pipeline {
	return baseline.Pipeline{
		Huff: env.Huffman,
		Code: channel.Hamming74{},
		Mod:  channel.BPSK{},
		Ch:   ch,
	}
}

// Tables renders all ablation studies.
func (r *AblationResult) Tables() []*metrics.Table {
	t1 := metrics.NewTable("Ablation 1: codec bottleneck width (6 dB AWGN)",
		"config", "similarity", "concept_acc", "bytes_per_msg")
	for _, row := range r.FeatureDim {
		t1.AddRow(row.Config, metrics.F(row.Similarity, 3), metrics.F(row.ConceptAcc, 3),
			metrics.F(row.PayloadBytes, 1))
	}
	t2 := metrics.NewTable("Ablation 2: feature transport (6 dB AWGN)",
		"config", "similarity", "concept_acc", "bytes_per_msg")
	for _, row := range r.Transport {
		t2.AddRow(row.Config, metrics.F(row.Similarity, 3), metrics.F(row.ConceptAcc, 3),
			metrics.F(row.PayloadBytes, 1))
	}
	t3 := metrics.NewTable("Ablation 3: symbol erasures (losses/congestion)",
		"erasure_p", "semantic_concept_acc", "traditional_concept_acc")
	for _, row := range r.Erasure {
		t3.AddRow(metrics.F(row.ErasureP, 2), metrics.F(row.SemanticAcc, 3),
			metrics.F(row.TraditionalAcc, 3))
	}
	return []*metrics.Table{t1, t2, t3}
}
