package experiments

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/edge"
	"repro/internal/kb"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// E2Options parameterizes the cache-policy comparison.
type E2Options struct {
	// Capacities lists cache sizes in model-equivalents (default 1..8).
	Capacities []int
	// Policies to compare (default lru, lfu, fifo, gdsf).
	Policies []string
	// Requests per configuration (default 5000).
	Requests int
	// ZipfS is the domain-popularity skew (default 1.0).
	ZipfS float64
	// Seed drives the workload (default 1).
	Seed uint64
}

func (o E2Options) withDefaults() E2Options {
	if len(o.Capacities) == 0 {
		o.Capacities = []int{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if len(o.Policies) == 0 {
		o.Policies = []string{"lru", "lfu", "fifo", "gdsf"}
	}
	if o.Requests == 0 {
		o.Requests = 5000
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// E2Cell is one (policy, capacity) measurement.
type E2Cell struct {
	Policy      string
	Capacity    int
	HitRate     float64
	MeanFetchMs float64
	Evictions   uint64
}

// E2Result is the full grid.
type E2Result struct {
	Cells []E2Cell
}

// RunE2 replays a Zipf-skewed domain workload against an edge model cache
// for every (policy, capacity) pair, measuring hit rate and mean
// model-acquisition latency.
func RunE2(env *Env, opts E2Options) (*E2Result, error) {
	opts = opts.withDefaults()
	// Cloud with one general codec model per domain. Capacity units use
	// the largest model so "n model-equivalents" always fits n models.
	cloud := kb.NewRegistry()
	var modelBytes int64
	for i, d := range env.Corpus.Domains {
		m := &kb.Model{Key: kb.GeneralKey(d.Name, kb.RoleCodec), Version: 1, Codec: env.Generals[i]}
		cloud.Put(m)
		if s := m.SizeBytes(); s > modelBytes {
			modelBytes = s
		}
	}
	w := trace.Generate(env.Corpus, trace.Config{
		Users: 16, Messages: opts.Requests, DomainZipfS: opts.ZipfS,
		MeanRunLength: 8, Seed: opts.Seed,
	})

	// Every (policy, capacity) cell replays the same read-only workload
	// against its own cache, so cells shard across the worker pool; the
	// grid stays in insertion order because cells write by index.
	res := &E2Result{Cells: make([]E2Cell, len(opts.Policies)*len(opts.Capacities))}
	err := forEachTrial(len(res.Cells), func(ci int) error {
		policyName := opts.Policies[ci/len(opts.Capacities)]
		capModels := opts.Capacities[ci%len(opts.Capacities)]
		policy, ok := cache.NewPolicy(policyName)
		if !ok {
			return fmt.Errorf("experiments: unknown policy %q", policyName)
		}
		srv, err := edge.New(edge.Config{
			Name:          "edge-e2",
			CacheCapacity: modelBytes * int64(capModels),
			Policy:        policy,
			Uplink:        netsim.Link{Latency: 40 * time.Millisecond, BandwidthBps: 200e6},
		}, cloud)
		if err != nil {
			return err
		}
		var totalFetch time.Duration
		for _, req := range w.Requests {
			acq, err := srv.AcquireCodec(req.Msg.DomainName, "")
			if err != nil {
				return err
			}
			totalFetch += acq.FetchLatency
		}
		st := srv.CacheStats()
		res.Cells[ci] = E2Cell{
			Policy:      policyName,
			Capacity:    capModels,
			HitRate:     st.HitRate(),
			MeanFetchMs: float64(totalFetch.Milliseconds()) / float64(len(w.Requests)),
			Evictions:   st.Evictions,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FigureB renders hit rate versus capacity, one column per policy.
func (r *E2Result) FigureB() *metrics.Table {
	policies, capacities := r.axes()
	t := metrics.NewTable("Figure B: model-cache hit rate vs capacity (Zipf domain popularity)",
		append([]string{"capacity_models"}, policies...)...)
	for _, c := range capacities {
		row := []string{fmt.Sprintf("%d", c)}
		for _, p := range policies {
			row = append(row, metrics.F(r.cell(p, c).HitRate, 3))
		}
		t.AddRow(row...)
	}
	return t
}

// LatencyTable renders mean model-acquisition latency versus capacity.
func (r *E2Result) LatencyTable() *metrics.Table {
	policies, capacities := r.axes()
	t := metrics.NewTable("Figure B (companion): mean model-fetch latency per request, ms",
		append([]string{"capacity_models"}, policies...)...)
	for _, c := range capacities {
		row := []string{fmt.Sprintf("%d", c)}
		for _, p := range policies {
			row = append(row, metrics.F(r.cell(p, c).MeanFetchMs, 2))
		}
		t.AddRow(row...)
	}
	return t
}

// axes recovers the distinct policies and capacities in insertion order.
func (r *E2Result) axes() (policies []string, capacities []int) {
	seenP := map[string]bool{}
	seenC := map[int]bool{}
	for _, c := range r.Cells {
		if !seenP[c.Policy] {
			seenP[c.Policy] = true
			policies = append(policies, c.Policy)
		}
		if !seenC[c.Capacity] {
			seenC[c.Capacity] = true
			capacities = append(capacities, c.Capacity)
		}
	}
	return policies, capacities
}

// cell looks up a grid cell.
func (r *E2Result) cell(policy string, capacity int) E2Cell {
	for _, c := range r.Cells {
		if c.Policy == policy && c.Capacity == capacity {
			return c
		}
	}
	return E2Cell{}
}
