// Package kb is the knowledge-base model registry: it names, versions and
// stores the domain-specialized general models and user-specific individual
// models that the edge servers cache. The cloud origin in the experiments
// is simply a Registry that edge caches fetch from on miss.
package kb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/semantic"
)

// Role distinguishes which half of a codec a key refers to. Sizes and
// transfer costs differ per role: the paper's update process ships decoder
// state only.
type Role int

// Role values. They start at 1 so the zero value is invalid and cannot be
// confused with a real role.
const (
	// RoleEncoder names the semantic-encoder tensors.
	RoleEncoder Role = iota + 1
	// RoleDecoder names the semantic-decoder tensors.
	RoleDecoder
	// RoleCodec names the full encoder+decoder pair.
	RoleCodec
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleEncoder:
		return "encoder"
	case RoleDecoder:
		return "decoder"
	case RoleCodec:
		return "codec"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// Key identifies one model in a registry or cache.
type Key struct {
	// Domain is the domain the model specializes in, e.g. "it".
	Domain string
	// User is the owning user for individual models; empty for the
	// domain-specialized general model.
	User string
	// Role selects encoder, decoder or the full codec.
	Role Role
}

// IsGeneral reports whether the key names a domain-general model.
func (k Key) IsGeneral() bool { return k.User == "" }

// String implements fmt.Stringer.
func (k Key) String() string {
	if k.IsGeneral() {
		return fmt.Sprintf("%s/general/%s", k.Domain, k.Role)
	}
	return fmt.Sprintf("%s/%s/%s", k.Domain, k.User, k.Role)
}

// GeneralKey names the general model for a domain and role.
func GeneralKey(domain string, role Role) Key {
	return Key{Domain: domain, Role: role}
}

// UserKey names a user's individual model for a domain and role.
func UserKey(domain, user string, role Role) Key {
	return Key{Domain: domain, User: user, Role: role}
}

// Model is one stored model: a semantic codec (or one half of it) plus
// metadata. Size accounting follows the role so cache capacity tracks what
// would really be stored.
type Model struct {
	Key     Key
	Version int
	Codec   *semantic.Codec
}

// SizeBytes returns the serialized parameter footprint for the model's
// role.
func (m *Model) SizeBytes() int64 {
	switch m.Key.Role {
	case RoleEncoder:
		return m.Codec.EncoderSizeBytes()
	case RoleDecoder:
		return m.Codec.DecoderSizeBytes()
	default:
		return m.Codec.SizeBytes()
	}
}

// Registry is a concurrency-safe model store.
type Registry struct {
	mu     sync.RWMutex
	models map[Key]*Model
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{models: make(map[Key]*Model, 16)}
}

// Put stores m, replacing any model with the same key.
func (r *Registry) Put(m *Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.models[m.Key] = m
}

// Get returns the model for k.
func (r *Registry) Get(k Key) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[k]
	return m, ok
}

// Delete removes the model for k if present.
func (r *Registry) Delete(k Key) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.models, k)
}

// Len returns the number of stored models.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Keys returns all keys in deterministic (string-sorted) order.
func (r *Registry) Keys() []Key {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]Key, 0, len(r.models))
	for k := range r.models {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}
