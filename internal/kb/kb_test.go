package kb

import (
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/semantic"
)

func newTestCodec(t *testing.T) *semantic.Codec {
	t.Helper()
	corp := corpus.Build()
	return semantic.NewCodec(corp.Domain("it"), semantic.Config{
		EmbedDim: 8, FeatureDim: 4, HiddenDim: 8,
	})
}

func TestKeyString(t *testing.T) {
	tests := []struct {
		key  Key
		want string
	}{
		{GeneralKey("it", RoleEncoder), "it/general/encoder"},
		{GeneralKey("news", RoleDecoder), "news/general/decoder"},
		{UserKey("it", "alice", RoleCodec), "it/alice/codec"},
	}
	for _, tc := range tests {
		if got := tc.key.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestKeyIsGeneral(t *testing.T) {
	if !GeneralKey("it", RoleCodec).IsGeneral() {
		t.Error("general key not recognized")
	}
	if UserKey("it", "bob", RoleCodec).IsGeneral() {
		t.Error("user key misclassified as general")
	}
}

func TestRoleString(t *testing.T) {
	if RoleEncoder.String() != "encoder" || RoleDecoder.String() != "decoder" || RoleCodec.String() != "codec" {
		t.Error("role names wrong")
	}
	if Role(0).String() == "" {
		t.Error("invalid role should still render")
	}
}

func TestModelSizeByRole(t *testing.T) {
	codec := newTestCodec(t)
	enc := &Model{Key: GeneralKey("it", RoleEncoder), Codec: codec}
	dec := &Model{Key: GeneralKey("it", RoleDecoder), Codec: codec}
	full := &Model{Key: GeneralKey("it", RoleCodec), Codec: codec}
	if enc.SizeBytes() != codec.EncoderSizeBytes() {
		t.Error("encoder size mismatch")
	}
	if dec.SizeBytes() != codec.DecoderSizeBytes() {
		t.Error("decoder size mismatch")
	}
	if full.SizeBytes() != codec.SizeBytes() {
		t.Error("codec size mismatch")
	}
	if enc.SizeBytes() >= full.SizeBytes() {
		t.Error("encoder should be smaller than the full codec")
	}
}

func TestRegistryCRUD(t *testing.T) {
	r := NewRegistry()
	codec := newTestCodec(t)
	m := &Model{Key: GeneralKey("it", RoleCodec), Version: 1, Codec: codec}
	if _, ok := r.Get(m.Key); ok {
		t.Fatal("empty registry returned a model")
	}
	r.Put(m)
	got, ok := r.Get(m.Key)
	if !ok || got.Version != 1 {
		t.Fatal("Get after Put failed")
	}
	r.Put(&Model{Key: m.Key, Version: 2, Codec: codec})
	got, _ = r.Get(m.Key)
	if got.Version != 2 {
		t.Fatal("Put did not replace")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.Delete(m.Key)
	if r.Len() != 0 {
		t.Fatal("Delete failed")
	}
}

func TestRegistryKeysSorted(t *testing.T) {
	r := NewRegistry()
	codec := newTestCodec(t)
	for _, d := range []string{"zeta", "alpha", "news"} {
		r.Put(&Model{Key: GeneralKey(d, RoleCodec), Codec: codec})
	}
	keys := r.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1].String() >= keys[i].String() {
			t.Fatal("Keys not sorted")
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	codec := newTestCodec(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := UserKey("it", string(rune('a'+g)), RoleCodec)
				r.Put(&Model{Key: k, Version: i, Codec: codec})
				r.Get(k)
				r.Len()
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
}
