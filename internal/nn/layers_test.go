package nn

import (
	"math"
	"testing"

	"repro/internal/mat"
)

// numericalGrad estimates d(loss)/d(param) by central differences.
func numericalGrad(param *float64, loss func() float64) float64 {
	const h = 1e-6
	orig := *param
	*param = orig + h
	up := loss()
	*param = orig - h
	down := loss()
	*param = orig
	return (up - down) / (2 * h)
}

// TestLinearGradCheck verifies the analytic backward pass of Linear against
// numerical differentiation through a softmax cross-entropy head.
func TestLinearGradCheck(t *testing.T) {
	rng := mat.NewRNG(1)
	l := NewLinear(rng, 4, 3)
	x := []float64{0.3, -0.5, 0.9, 0.1}
	target := 2

	loss := func() float64 {
		y := make([]float64, 3)
		l.Forward(y, x)
		d := make([]float64, 3)
		return SoftmaxCrossEntropy(d, y, target)
	}

	// Analytic gradients.
	y := make([]float64, 3)
	l.Forward(y, x)
	dy := make([]float64, 3)
	SoftmaxCrossEntropy(dy, y, target)
	gW := mat.NewDense(3, 4)
	gB := mat.NewDense(1, 3)
	dx := make([]float64, 4)
	l.Backward(x, dy, gW, gB, dx)

	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			num := numericalGrad(&l.W.Data[i*4+j], loss)
			if math.Abs(num-gW.At(i, j)) > 1e-5 {
				t.Errorf("dW[%d,%d]: analytic %v numeric %v", i, j, gW.At(i, j), num)
			}
		}
	}
	for j := 0; j < 3; j++ {
		num := numericalGrad(&l.B.Data[j], loss)
		if math.Abs(num-gB.Data[j]) > 1e-5 {
			t.Errorf("dB[%d]: analytic %v numeric %v", j, gB.Data[j], num)
		}
	}
	for j := 0; j < 4; j++ {
		num := numericalGrad(&x[j], loss)
		if math.Abs(num-dx[j]) > 1e-5 {
			t.Errorf("dx[%d]: analytic %v numeric %v", j, dx[j], num)
		}
	}
}

// TestTanhGradCheck verifies the tanh backward pass within a two-layer net.
func TestTanhGradCheck(t *testing.T) {
	rng := mat.NewRNG(2)
	l1 := NewLinear(rng, 3, 5)
	l2 := NewLinear(rng, 5, 2)
	x := []float64{0.2, -0.7, 0.4}
	target := 1

	loss := func() float64 {
		h := make([]float64, 5)
		l1.Forward(h, x)
		TanhForward(h, h)
		y := make([]float64, 2)
		l2.Forward(y, h)
		d := make([]float64, 2)
		return SoftmaxCrossEntropy(d, y, target)
	}

	// Forward.
	h := make([]float64, 5)
	l1.Forward(h, x)
	TanhForward(h, h)
	y := make([]float64, 2)
	l2.Forward(y, h)
	dy := make([]float64, 2)
	SoftmaxCrossEntropy(dy, y, target)
	// Backward.
	g2W := mat.NewDense(2, 5)
	g2B := mat.NewDense(1, 2)
	dh := make([]float64, 5)
	l2.Backward(h, dy, g2W, g2B, dh)
	TanhBackward(dh, h, dh)
	g1W := mat.NewDense(5, 3)
	g1B := mat.NewDense(1, 5)
	l1.Backward(x, dh, g1W, g1B, nil)

	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			num := numericalGrad(&l1.W.Data[i*3+j], loss)
			if math.Abs(num-g1W.At(i, j)) > 1e-5 {
				t.Errorf("dW1[%d,%d]: analytic %v numeric %v", i, j, g1W.At(i, j), num)
			}
		}
	}
}

// TestEmbeddingGradCheck verifies the embedding gradient accumulation.
func TestEmbeddingGradCheck(t *testing.T) {
	rng := mat.NewRNG(3)
	emb := NewEmbedding(rng, 6, 4)
	l := NewLinear(rng, 4, 3)
	id := 2
	target := 0

	loss := func() float64 {
		y := make([]float64, 3)
		l.Forward(y, emb.Lookup(id))
		d := make([]float64, 3)
		return SoftmaxCrossEntropy(d, y, target)
	}

	y := make([]float64, 3)
	l.Forward(y, emb.Lookup(id))
	dy := make([]float64, 3)
	SoftmaxCrossEntropy(dy, y, target)
	gW := mat.NewDense(3, 4)
	gB := mat.NewDense(1, 3)
	dEmb := make([]float64, 4)
	l.Backward(emb.Lookup(id), dy, gW, gB, dEmb)
	gTable := mat.NewDense(6, 4)
	emb.AccumulateGrad(gTable, id, dEmb)

	for j := 0; j < 4; j++ {
		num := numericalGrad(&emb.Table.Data[id*4+j], loss)
		if math.Abs(num-gTable.At(id, j)) > 1e-5 {
			t.Errorf("dEmb[%d]: analytic %v numeric %v", j, gTable.At(id, j), num)
		}
	}
	// Untouched rows must have zero gradient.
	for r := 0; r < 6; r++ {
		if r == id {
			continue
		}
		if mat.MaxAbs(gTable.Row(r)) != 0 {
			t.Errorf("embedding row %d has nonzero gradient without lookup", r)
		}
	}
}

func TestReLU(t *testing.T) {
	src := []float64{-1, 0, 2}
	dst := make([]float64, 3)
	ReLUForward(dst, src)
	if dst[0] != 0 || dst[1] != 0 || dst[2] != 2 {
		t.Fatalf("ReLUForward = %v", dst)
	}
	dy := []float64{5, 5, 5}
	dx := make([]float64, 3)
	ReLUBackward(dx, dst, dy)
	if dx[0] != 0 || dx[1] != 0 || dx[2] != 5 {
		t.Fatalf("ReLUBackward = %v", dx)
	}
}

func TestMSE(t *testing.T) {
	pred := []float64{1, 2}
	target := []float64{0, 2}
	d := make([]float64, 2)
	loss := MSE(d, pred, target)
	if loss != 0.5 {
		t.Fatalf("MSE loss = %v, want 0.5", loss)
	}
	if d[0] != 1 || d[1] != 0 {
		t.Fatalf("MSE grad = %v", d)
	}
}

func TestSoftmaxCrossEntropyTargetPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range target")
		}
	}()
	d := make([]float64, 2)
	SoftmaxCrossEntropy(d, []float64{1, 2}, 5)
}
