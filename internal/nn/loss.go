package nn

import (
	"math"

	"repro/internal/mat"
)

// SoftmaxCrossEntropy computes the cross-entropy loss of logits against the
// target class and writes the gradient w.r.t. the logits into dLogits
// (softmax(logits) with 1 subtracted at the target). dLogits may alias
// logits. It returns the loss value.
func SoftmaxCrossEntropy(dLogits, logits []float64, target int) float64 {
	if target < 0 || target >= len(logits) {
		panic("nn: SoftmaxCrossEntropy target out of range")
	}
	mat.Softmax(dLogits, logits)
	p := dLogits[target]
	// Guard against log(0) from extreme logits.
	if p < 1e-300 {
		p = 1e-300
	}
	loss := -math.Log(p)
	dLogits[target] -= 1
	return loss
}

// MSE computes 0.5*||pred-target||^2 and writes the gradient (pred-target)
// into dPred. dPred may alias pred.
func MSE(dPred, pred, target []float64) float64 {
	if len(pred) != len(target) || len(dPred) != len(pred) {
		panic("nn: MSE length mismatch")
	}
	loss := 0.0
	for i := range pred {
		d := pred[i] - target[i]
		loss += 0.5 * d * d
		dPred[i] = d
	}
	return loss
}
