package nn

import (
	"testing"

	"repro/internal/mat"
)

// batchFixture builds a deterministic layer and example batch.
func batchFixture(t *testing.T, examples, in, out int) (*Linear, *mat.Dense, *mat.Dense) {
	t.Helper()
	rng := mat.NewRNG(42)
	l := NewLinear(rng, in, out)
	x := mat.NewDense(examples, in)
	x.Randomize(rng, 1)
	dy := mat.NewDense(examples, out)
	dy.Randomize(rng, 1)
	// Plant exact zeros: the batched kernels have zero-skip paths.
	dy.Set(0, 0, 0)
	x.Set(examples-1, in-1, 0)
	return l, x, dy
}

// TestForwardBatchMatchesForward asserts the batched forward equals the
// per-example Forward bitwise at 1, 2 and 8 workers.
func TestForwardBatchMatchesForward(t *testing.T) {
	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)
	l, x, _ := batchFixture(t, 9, 16, 8)

	mat.SetParallelism(1)
	want := mat.NewDense(9, 8)
	for i := 0; i < x.Rows; i++ {
		l.Forward(want.Row(i), x.Row(i))
	}
	for _, workers := range []int{1, 2, 8} {
		mat.SetParallelism(workers)
		got := mat.NewDense(9, 8)
		l.ForwardBatch(got, x)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%d workers: element %d = %v, want %v", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestBackwardBatchMatchesBackward asserts the batched backward produces
// bitwise-identical gradients to per-example Backward calls in order.
func TestBackwardBatchMatchesBackward(t *testing.T) {
	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)
	l, x, dy := batchFixture(t, 9, 16, 8)

	mat.SetParallelism(1)
	wantGW := mat.NewDense(8, 16)
	wantGB := mat.NewDense(1, 8)
	wantDX := mat.NewDense(9, 16)
	for i := 0; i < x.Rows; i++ {
		l.Backward(x.Row(i), dy.Row(i), wantGW, wantGB, wantDX.Row(i))
	}
	for _, workers := range []int{1, 2, 8} {
		mat.SetParallelism(workers)
		gW := mat.NewDense(8, 16)
		gB := mat.NewDense(1, 8)
		dx := mat.NewDense(9, 16)
		l.BackwardBatch(x, dy, gW, gB, dx)
		for i := range wantGW.Data {
			if gW.Data[i] != wantGW.Data[i] {
				t.Fatalf("%d workers: gW[%d] = %v, want %v", workers, i, gW.Data[i], wantGW.Data[i])
			}
		}
		for i := range wantGB.Data {
			if gB.Data[i] != wantGB.Data[i] {
				t.Fatalf("%d workers: gB[%d] = %v, want %v", workers, i, gB.Data[i], wantGB.Data[i])
			}
		}
		for i := range wantDX.Data {
			if dx.Data[i] != wantDX.Data[i] {
				t.Fatalf("%d workers: dx[%d] = %v, want %v", workers, i, dx.Data[i], wantDX.Data[i])
			}
		}
	}
}
