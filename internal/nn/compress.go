package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
)

// CompressOptions selects the lossy encodings applied to a gradient (or
// model-delta) ParamSet before wire transport. The zero value means dense
// float64 — lossless.
type CompressOptions struct {
	// TopKFrac keeps only the given fraction (0,1] of entries per tensor,
	// chosen by largest magnitude. 0 or 1 transmits all entries.
	TopKFrac float64
	// Int8 quantizes values to int8 with a per-tensor scale factor.
	Int8 bool
}

// CompressedTensor is one tensor of a compressed update.
type CompressedTensor struct {
	Name       string
	Rows, Cols int
	// Idx holds flat indices of retained entries; nil means all entries in
	// order (dense).
	Idx []uint32
	// Val holds float64 values when Q is nil.
	Val []float64
	// Q holds int8-quantized values with Scale when quantization is on.
	Q     []int8
	Scale float64
}

// entries returns the number of retained values.
func (ct *CompressedTensor) entries() int {
	if ct.Q != nil {
		return len(ct.Q)
	}
	return len(ct.Val)
}

// CompressedGrads is a compressed parameter update ready for transport.
type CompressedGrads struct {
	Tensors []CompressedTensor
}

// Compress encodes grads under opts. The input is not modified.
func Compress(grads *ParamSet, opts CompressOptions) *CompressedGrads {
	out := &CompressedGrads{Tensors: make([]CompressedTensor, 0, len(grads.Params))}
	for _, p := range grads.Params {
		ct := CompressedTensor{Name: p.Name, Rows: p.M.Rows, Cols: p.M.Cols}
		data := p.M.Data
		var vals []float64
		if opts.TopKFrac > 0 && opts.TopKFrac < 1 {
			k := int(math.Ceil(opts.TopKFrac * float64(len(data))))
			if k < 1 {
				k = 1
			}
			idx := topKIndices(data, k)
			ct.Idx = make([]uint32, len(idx))
			vals = make([]float64, len(idx))
			for i, fi := range idx {
				ct.Idx[i] = uint32(fi)
				vals[i] = data[fi]
			}
		} else {
			vals = mat.Clone(data)
		}
		if opts.Int8 {
			scale := mat.MaxAbs(vals) / 127
			ct.Scale = scale
			ct.Q = make([]int8, len(vals))
			if scale > 0 {
				for i, v := range vals {
					q := math.Round(v / scale)
					if q > 127 {
						q = 127
					} else if q < -127 {
						q = -127
					}
					ct.Q[i] = int8(q)
				}
			}
		} else {
			ct.Val = vals
		}
		out.Tensors = append(out.Tensors, ct)
	}
	return out
}

// topKIndices returns the flat indices of the k largest-magnitude entries,
// in ascending index order for cache-friendly application.
func topKIndices(data []float64, k int) []int {
	if k >= len(data) {
		idx := make([]int, len(data))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(data[idx[a]]) > math.Abs(data[idx[b]])
	})
	kept := idx[:k]
	sort.Ints(kept)
	return kept
}

// ApplyTo adds the decompressed update, multiplied by scale, into params.
// Tensors are matched by name; a missing or shape-mismatched target is an
// error.
func (cg *CompressedGrads) ApplyTo(params *ParamSet, scale float64) error {
	for i := range cg.Tensors {
		ct := &cg.Tensors[i]
		target := params.ByName(ct.Name)
		if target == nil {
			return fmt.Errorf("nn: apply: no parameter named %q", ct.Name)
		}
		if target.Rows != ct.Rows || target.Cols != ct.Cols {
			return fmt.Errorf("nn: apply: shape mismatch for %q: have %dx%d, update %dx%d",
				ct.Name, target.Rows, target.Cols, ct.Rows, ct.Cols)
		}
		value := func(i int) float64 {
			if ct.Q != nil {
				return float64(ct.Q[i]) * ct.Scale
			}
			return ct.Val[i]
		}
		if ct.Idx == nil {
			if ct.entries() != len(target.Data) {
				return fmt.Errorf("nn: apply: dense length mismatch for %q", ct.Name)
			}
			for i := range target.Data {
				target.Data[i] += scale * value(i)
			}
			continue
		}
		for i, fi := range ct.Idx {
			if int(fi) >= len(target.Data) {
				return fmt.Errorf("nn: apply: index %d out of range for %q", fi, ct.Name)
			}
			target.Data[fi] += scale * value(i)
		}
	}
	return nil
}

const (
	flagSparse = 1 << 0
	flagInt8   = 1 << 1
)

const gradMagic = uint32(0x47524431) // "GRD1"

// errBadGrads reports a malformed compressed-gradient payload.
var errBadGrads = errors.New("nn: malformed compressed gradients")

// Encode serializes the compressed update to a self-describing byte
// payload; its length is the wire cost counted by the experiments.
func (cg *CompressedGrads) Encode() []byte {
	// Precompute size.
	size := 8 // magic + tensor count
	for i := range cg.Tensors {
		ct := &cg.Tensors[i]
		size += 2 + len(ct.Name) + 4 + 4 + 1 + 4 // name, rows, cols, flags, count
		if ct.Idx != nil {
			size += 4 * len(ct.Idx)
		}
		if ct.Q != nil {
			size += 8 + len(ct.Q) // scale + int8 values
		} else {
			size += 8 * len(ct.Val)
		}
	}
	buf := make([]byte, 0, size)
	var scratch [8]byte
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	putU16 := func(v uint16) {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		buf = append(buf, scratch[:2]...)
	}
	putF64 := func(v float64) {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(v))
		buf = append(buf, scratch[:8]...)
	}
	putU32(gradMagic)
	putU32(uint32(len(cg.Tensors)))
	for i := range cg.Tensors {
		ct := &cg.Tensors[i]
		putU16(uint16(len(ct.Name)))
		buf = append(buf, ct.Name...)
		putU32(uint32(ct.Rows))
		putU32(uint32(ct.Cols))
		var flags byte
		if ct.Idx != nil {
			flags |= flagSparse
		}
		if ct.Q != nil {
			flags |= flagInt8
		}
		buf = append(buf, flags)
		putU32(uint32(ct.entries()))
		for _, ix := range ct.Idx {
			putU32(ix)
		}
		if ct.Q != nil {
			putF64(ct.Scale)
			for _, q := range ct.Q {
				buf = append(buf, byte(q))
			}
		} else {
			for _, v := range ct.Val {
				putF64(v)
			}
		}
	}
	return buf
}

// SizeBytes returns the encoded payload size without materializing it.
func (cg *CompressedGrads) SizeBytes() int {
	size := 8
	for i := range cg.Tensors {
		ct := &cg.Tensors[i]
		size += 2 + len(ct.Name) + 4 + 4 + 1 + 4
		if ct.Idx != nil {
			size += 4 * len(ct.Idx)
		}
		if ct.Q != nil {
			size += 8 + len(ct.Q)
		} else {
			size += 8 * len(ct.Val)
		}
	}
	return size
}

// DecodeCompressed parses a payload produced by Encode.
func DecodeCompressed(data []byte) (*CompressedGrads, error) {
	pos := 0
	need := func(n int) error {
		if pos+n > len(data) {
			return errBadGrads
		}
		return nil
	}
	getU32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	getU16 := func() (uint16, error) {
		if err := need(2); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint16(data[pos:])
		pos += 2
		return v, nil
	}
	getF64 := func() (float64, error) {
		if err := need(8); err != nil {
			return 0, err
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))
		pos += 8
		return v, nil
	}
	magic, err := getU32()
	if err != nil {
		return nil, err
	}
	if magic != gradMagic {
		return nil, errBadGrads
	}
	count, err := getU32()
	if err != nil {
		return nil, err
	}
	if count > 1<<16 {
		return nil, errBadGrads
	}
	out := &CompressedGrads{Tensors: make([]CompressedTensor, 0, count)}
	for t := uint32(0); t < count; t++ {
		nameLen, err := getU16()
		if err != nil {
			return nil, err
		}
		if err := need(int(nameLen)); err != nil {
			return nil, err
		}
		name := string(data[pos : pos+int(nameLen)])
		pos += int(nameLen)
		rows, err := getU32()
		if err != nil {
			return nil, err
		}
		cols, err := getU32()
		if err != nil {
			return nil, err
		}
		if err := need(1); err != nil {
			return nil, err
		}
		flags := data[pos]
		pos++
		entries, err := getU32()
		if err != nil {
			return nil, err
		}
		if int64(rows)*int64(cols) > 1<<28 || entries > rows*cols {
			return nil, errBadGrads
		}
		ct := CompressedTensor{Name: name, Rows: int(rows), Cols: int(cols)}
		if flags&flagSparse != 0 {
			ct.Idx = make([]uint32, entries)
			for i := range ct.Idx {
				v, err := getU32()
				if err != nil {
					return nil, err
				}
				ct.Idx[i] = v
			}
		} else if entries != rows*cols {
			return nil, errBadGrads
		}
		if flags&flagInt8 != 0 {
			ct.Scale, err = getF64()
			if err != nil {
				return nil, err
			}
			if err := need(int(entries)); err != nil {
				return nil, err
			}
			ct.Q = make([]int8, entries)
			for i := range ct.Q {
				ct.Q[i] = int8(data[pos+i])
			}
			pos += int(entries)
		} else {
			ct.Val = make([]float64, entries)
			for i := range ct.Val {
				v, err := getF64()
				if err != nil {
					return nil, err
				}
				ct.Val[i] = v
			}
		}
		out.Tensors = append(out.Tensors, ct)
	}
	return out, nil
}
