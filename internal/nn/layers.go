package nn

import (
	"repro/internal/mat"
)

// Embedding maps integer token IDs to dense vectors via a VxE lookup table.
type Embedding struct {
	Table *mat.Dense // V rows, E cols
}

// NewEmbedding allocates a Glorot-initialized embedding table for vocab
// words of dim dimensions.
func NewEmbedding(rng *mat.RNG, vocab, dim int) *Embedding {
	e := &Embedding{Table: mat.NewDense(vocab, dim)}
	e.Table.GlorotInit(rng, vocab, dim)
	return e
}

// Vocab returns the number of rows (token IDs) in the table.
func (e *Embedding) Vocab() int { return e.Table.Rows }

// Dim returns the embedding dimensionality.
func (e *Embedding) Dim() int { return e.Table.Cols }

// Lookup returns a read-only view of the embedding for token id.
func (e *Embedding) Lookup(id int) []float64 { return e.Table.Row(id) }

// AccumulateGrad adds dVec into the gradient row for token id. grad must be
// a ZeroClone-shaped gradient table for this embedding.
func (e *Embedding) AccumulateGrad(grad *mat.Dense, id int, dVec []float64) {
	mat.AddTo(grad.Row(id), dVec)
}

// Linear is a fully connected layer computing y = W*x + b.
type Linear struct {
	W *mat.Dense // Out x In
	B *mat.Dense // 1 x Out (kept as a matrix so it shares ParamSet plumbing)
}

// NewLinear allocates a Glorot-initialized layer with the given fan-in and
// fan-out.
func NewLinear(rng *mat.RNG, in, out int) *Linear {
	l := &Linear{W: mat.NewDense(out, in), B: mat.NewDense(1, out)}
	l.W.GlorotInit(rng, in, out)
	return l
}

// In returns the input dimensionality.
func (l *Linear) In() int { return l.W.Cols }

// Out returns the output dimensionality.
func (l *Linear) Out() int { return l.W.Rows }

// Forward computes dst = W*x + b. dst must have length Out and must not
// alias x.
func (l *Linear) Forward(dst, x []float64) {
	l.W.MulVec(dst, x)
	mat.AddTo(dst, l.B.Row(0))
}

// ForwardBatch computes dst = x*Wᵀ + b for a batch: row i of dst is the
// layer output for row i of x. It is bit-identical to calling Forward on
// each row in order (each output element keeps the serial dot-product
// accumulation order), at any worker count. dst must not alias x.
func (l *Linear) ForwardBatch(dst, x *mat.Dense) {
	mat.MulMatTAddRow(dst, x, l.W, l.B.Row(0))
}

// BackwardBatch accumulates parameter gradients for a batch of examples and
// computes per-example input gradients. It is bit-identical to calling
// Backward on each (x, dy) row pair in ascending order: every gradient
// element accumulates examples in exactly that order.
//
//	x      — batch inputs, one example per row
//	dy     — batch output gradients, aligned with x
//	gW, gB — gradient accumulators shaped like W and B
//	dx     — batch input-gradient buffer (may be nil to skip)
func (l *Linear) BackwardBatch(x, dy *mat.Dense, gW, gB *mat.Dense, dx *mat.Dense) {
	mat.AddOuterBatch(gW, 1, dy, x)
	for i := 0; i < dy.Rows; i++ {
		mat.AddTo(gB.Row(0), dy.Row(i))
	}
	if dx != nil {
		mat.MulMat(dx, dy, l.W)
	}
}

// Backward accumulates parameter gradients for one example and computes the
// gradient with respect to the input.
//
//	x      — the input that produced the forward pass
//	dy     — gradient of the loss w.r.t. the layer output
//	gW, gB — gradient accumulators shaped like W and B
//	dx     — output buffer for the input gradient (may be nil to skip)
func (l *Linear) Backward(x, dy []float64, gW, gB *mat.Dense, dx []float64) {
	gW.AddOuter(1, dy, x)
	mat.AddTo(gB.Row(0), dy)
	if dx != nil {
		l.W.MulVecT(dx, dy)
	}
}

// TanhForward applies tanh element-wise: dst = tanh(src). dst may alias src.
func TanhForward(dst, src []float64) { mat.Tanh(dst, src) }

// TanhBackward computes the input gradient of a tanh layer given the
// activation output y and the output gradient dy: dx = dy * (1 - y^2).
// dst may alias dy.
func TanhBackward(dst, y, dy []float64) {
	if len(dst) != len(y) || len(y) != len(dy) {
		panic("nn: TanhBackward length mismatch")
	}
	for i := range dst {
		dst[i] = dy[i] * (1 - y[i]*y[i])
	}
}

// ReLUForward applies max(0, x) element-wise. dst may alias src.
func ReLUForward(dst, src []float64) {
	if len(dst) != len(src) {
		panic("nn: ReLUForward length mismatch")
	}
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// ReLUBackward computes dx = dy where the forward output was positive, else
// zero. y is the forward output. dst may alias dy.
func ReLUBackward(dst, y, dy []float64) {
	if len(dst) != len(y) || len(y) != len(dy) {
		panic("nn: ReLUBackward length mismatch")
	}
	for i := range dst {
		if y[i] > 0 {
			dst[i] = dy[i]
		} else {
			dst[i] = 0
		}
	}
}
