package nn

import (
	"bytes"
	"testing"

	"repro/internal/mat"
)

func sampleParams(seed uint64) *ParamSet {
	rng := mat.NewRNG(seed)
	ps := &ParamSet{}
	a := mat.NewDense(3, 4)
	a.Randomize(rng, 1)
	b := mat.NewDense(1, 4)
	b.Randomize(rng, 1)
	ps.Add("enc.W", a)
	ps.Add("enc.B", b)
	return ps
}

func TestParamSetByName(t *testing.T) {
	ps := sampleParams(1)
	if ps.ByName("enc.W") == nil || ps.ByName("enc.B") == nil {
		t.Fatal("ByName missed present tensors")
	}
	if ps.ByName("nope") != nil {
		t.Fatal("ByName returned tensor for absent name")
	}
}

func TestParamSetCloneIndependence(t *testing.T) {
	ps := sampleParams(2)
	c := ps.Clone()
	c.ByName("enc.W").Data[0] = 999
	if ps.ByName("enc.W").Data[0] == 999 {
		t.Fatal("Clone shares storage")
	}
}

func TestZeroCloneShape(t *testing.T) {
	ps := sampleParams(3)
	z := ps.ZeroClone()
	if z.NumValues() != ps.NumValues() {
		t.Fatalf("ZeroClone values = %d, want %d", z.NumValues(), ps.NumValues())
	}
	if z.MaxAbs() != 0 {
		t.Fatal("ZeroClone not zero")
	}
}

func TestAddScaledAndCopyFrom(t *testing.T) {
	ps := sampleParams(4)
	orig := ps.Clone()
	delta := ps.ZeroClone()
	delta.ByName("enc.W").Data[0] = 2
	ps.AddScaled(0.5, delta)
	if got := ps.ByName("enc.W").Data[0]; got != orig.ByName("enc.W").Data[0]+1 {
		t.Fatalf("AddScaled result %v", got)
	}
	ps.CopyFrom(orig)
	if ps.ByName("enc.W").Data[0] != orig.ByName("enc.W").Data[0] {
		t.Fatal("CopyFrom did not restore")
	}
}

func TestParamSetSerializationRoundTrip(t *testing.T) {
	ps := sampleParams(5)
	var buf bytes.Buffer
	n, err := ps.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != ps.SizeBytes() {
		t.Fatalf("wrote %d bytes, SizeBytes = %d", n, ps.SizeBytes())
	}
	got, err := ReadParamSet(&buf)
	if err != nil {
		t.Fatalf("ReadParamSet: %v", err)
	}
	if len(got.Params) != 2 {
		t.Fatalf("round-trip param count = %d", len(got.Params))
	}
	for i, p := range ps.Params {
		q := got.Params[i]
		if q.Name != p.Name {
			t.Fatalf("name %q != %q", q.Name, p.Name)
		}
		for j := range p.M.Data {
			if p.M.Data[j] != q.M.Data[j] {
				t.Fatalf("tensor %q differs at %d", p.Name, j)
			}
		}
	}
}

func TestReadParamSetRejectsGarbage(t *testing.T) {
	if _, err := ReadParamSet(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("accepted truncated input")
	}
}
