package nn

import (
	"repro/internal/channel"
	"repro/internal/mat"
)

// This file builds the reduced-precision shadows of a Linear layer the
// f32/int8 kernel tiers run on. Shadows are derived views: they are built
// from (and never written back to) the float64 master weights, so training
// and the bit-exact f64 serving tier are untouched. Callers cache shadows
// and must rebuild them after mutating the master weights.

// Linear32 is the float32 shadow of a Linear layer, used by the f32 kernel
// tier.
type Linear32 struct {
	W *mat.Dense32 // Out x In
	B []float32    // Out
}

// NewLinear32 narrows l's weights into a fresh float32 shadow.
func NewLinear32(l *Linear) *Linear32 {
	b := make([]float32, l.Out())
	mat.Narrow(b, l.B.Row(0))
	return &Linear32{W: mat.Dense32From(l.W), B: b}
}

// ForwardBatch computes dst = x*Wᵀ + b on the f32 kernels: deterministic,
// but NOT bit-identical to the f64 Linear.ForwardBatch (relaxed
// accumulation order; see mat.MulMatTAddRow32).
func (l *Linear32) ForwardBatch(dst, x *mat.Dense32) {
	mat.MulMatTAddRow32(dst, x, l.W, l.B)
}

// LinearQ8 is the int8 post-training-quantized shadow of a Linear layer:
// each weight row lives as 8-bit codes on its own symmetric 256-level
// affine grid, derived through the channel.Quantizer machinery (the same
// scale/zero-point grid the wire quantizer uses). The bias stays float32
// and is added after dequantization.
type LinearQ8 struct {
	W *mat.QMat8
	B []float32
}

// NewLinearQ8 quantizes l's weights into a fresh int8 shadow. Each row r
// uses the grid channel.Quantizer{Bits: 8, Lo: -m, Hi: m} with m =
// max|W[r]|; an all-zero row stores a degenerate zero grid so it
// dequantizes to exactly zero.
func NewLinearQ8(l *Linear) *LinearQ8 {
	out, in := l.Out(), l.In()
	q := mat.NewQMat8(out, in)
	codes := make([]uint8, in)
	for r := 0; r < out; r++ {
		row := l.W.Row(r)
		m := mat.MaxAbs(row)
		if m == 0 {
			for i := range codes {
				codes[i] = 0
			}
			q.SetRow(r, codes, 0, 0)
			continue
		}
		qr := channel.Quantizer{Bits: 8, Lo: -m, Hi: m}
		for i, v := range row {
			codes[i] = uint8(qr.Index(v))
		}
		q.SetRow(r, codes, float32(qr.Lo), float32(qr.StepSize()))
	}
	b := make([]float32, out)
	mat.Narrow(b, l.B.Row(0))
	return &LinearQ8{W: q, B: b}
}

// ForwardBatch computes dst = x*ŵᵀ + b on the int8 kernels: activations
// are quantized per row (temporaries from sc), products accumulate in
// int32, and outputs dequantize into float32.
func (l *LinearQ8) ForwardBatch(sc *mat.Scratch, dst, x *mat.Dense32) {
	mat.MulMatTQ8AddRow(sc, dst, x, l.W, l.B)
}
