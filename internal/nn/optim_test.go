package nn

import (
	"testing"

	"repro/internal/mat"
)

// toyProblem builds a 2-class linearly separable classification task and
// returns (params, trainStep) where trainStep runs one full-batch update and
// returns the mean loss.
func toyProblem(opt Optimizer) (loss0, lossN float64) {
	rng := mat.NewRNG(7)
	l := NewLinear(rng, 2, 2)
	params := &ParamSet{}
	params.Add("W", l.W)
	params.Add("B", l.B)
	grads := params.ZeroClone()

	type ex struct {
		x []float64
		y int
	}
	var data []ex
	for i := 0; i < 40; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 0
		if x[0]+x[1] > 0 {
			y = 1
		}
		data = append(data, ex{x, y})
	}

	step := func() float64 {
		grads.Zero()
		total := 0.0
		y := make([]float64, 2)
		dy := make([]float64, 2)
		for _, e := range data {
			l.Forward(y, e.x)
			total += SoftmaxCrossEntropy(dy, y, e.y)
			l.Backward(e.x, dy, grads.ByName("W"), grads.ByName("B"), nil)
		}
		mat.Scale(grads.ByName("W").Data, 1/float64(len(data)))
		mat.Scale(grads.ByName("B").Data, 1/float64(len(data)))
		opt.Step(params, grads)
		return total / float64(len(data))
	}

	loss0 = step()
	for i := 0; i < 200; i++ {
		lossN = step()
	}
	return loss0, lossN
}

func TestSGDConverges(t *testing.T) {
	loss0, lossN := toyProblem(&SGD{LR: 0.5})
	if lossN >= loss0/2 {
		t.Fatalf("SGD did not converge: %v -> %v", loss0, lossN)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	loss0, lossN := toyProblem(&SGD{LR: 0.2, Momentum: 0.9})
	if lossN >= loss0/2 {
		t.Fatalf("SGD+momentum did not converge: %v -> %v", loss0, lossN)
	}
}

func TestAdamConverges(t *testing.T) {
	loss0, lossN := toyProblem(&Adam{LR: 0.05})
	if lossN >= loss0/2 {
		t.Fatalf("Adam did not converge: %v -> %v", loss0, lossN)
	}
}

func TestClipScale(t *testing.T) {
	ps := &ParamSet{}
	ps.Add("a", mat.NewDense(1, 2))
	copy(ps.ByName("a").Data, []float64{3, 4}) // norm 5
	if s := clipScale(ps, 10); s != 1 {
		t.Fatalf("clip above norm should be 1, got %v", s)
	}
	if s := clipScale(ps, 2.5); s != 0.5 {
		t.Fatalf("clip to half norm should be 0.5, got %v", s)
	}
	if s := clipScale(ps, 0); s != 1 {
		t.Fatalf("clip 0 disables clipping, got %v", s)
	}
}

func TestSGDClippedStepBounded(t *testing.T) {
	ps := &ParamSet{}
	ps.Add("a", mat.NewDense(1, 2))
	grads := ps.ZeroClone()
	copy(grads.ByName("a").Data, []float64{300, 400}) // norm 500
	opt := &SGD{LR: 1, Clip: 1}
	opt.Step(ps, grads)
	// After clipping to norm 1, the step must have magnitude <= 1.
	if n := mat.L2(ps.ByName("a").Data); n > 1+1e-9 {
		t.Fatalf("clipped step norm = %v, want <= 1", n)
	}
}
