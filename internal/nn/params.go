// Package nn is a small, pure-Go neural-network substrate: dense and
// embedding layers with manual backpropagation, SGD/Adam optimizers,
// parameter serialization and gradient compression.
//
// It exists because the reproduced paper's knowledge bases (KBs) are
// deep-learning encoder/decoder models that are trained, fine-tuned per
// user, and synchronized across edge servers by shipping gradients. This
// package provides exactly those mechanics with no external dependencies.
package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mat"
)

// Param is one named parameter tensor. Biases are stored as 1xN matrices so
// that every parameter flows through the same serialization, optimization
// and compression paths.
type Param struct {
	Name string
	M    *mat.Dense
}

// ParamSet is an ordered collection of named parameters. Order is
// significant: gradients, optimizer state and serialized forms all align by
// index.
type ParamSet struct {
	Params []Param
}

// Add appends a named tensor to the set.
func (ps *ParamSet) Add(name string, m *mat.Dense) {
	ps.Params = append(ps.Params, Param{Name: name, M: m})
}

// ByName returns the tensor with the given name, or nil if absent.
func (ps *ParamSet) ByName(name string) *mat.Dense {
	for _, p := range ps.Params {
		if p.Name == name {
			return p.M
		}
	}
	return nil
}

// Clone returns a deep copy of the set.
func (ps *ParamSet) Clone() *ParamSet {
	out := &ParamSet{Params: make([]Param, 0, len(ps.Params))}
	for _, p := range ps.Params {
		out.Add(p.Name, p.M.Clone())
	}
	return out
}

// ZeroClone returns a set with the same names and shapes, all values zero.
// It is the canonical way to allocate a gradient buffer.
func (ps *ParamSet) ZeroClone() *ParamSet {
	out := &ParamSet{Params: make([]Param, 0, len(ps.Params))}
	for _, p := range ps.Params {
		out.Add(p.Name, mat.NewDense(p.M.Rows, p.M.Cols))
	}
	return out
}

// Zero clears every tensor in place.
func (ps *ParamSet) Zero() {
	for _, p := range ps.Params {
		p.M.Zero()
	}
}

// CopyFrom copies values from src into ps. It panics if the sets are not
// shape-compatible.
func (ps *ParamSet) CopyFrom(src *ParamSet) {
	if len(ps.Params) != len(src.Params) {
		panic("nn: CopyFrom param count mismatch")
	}
	for i, p := range ps.Params {
		p.M.CopyFrom(src.Params[i].M)
	}
}

// AddScaled accumulates ps += a*other tensor-wise. It panics on shape
// mismatch.
func (ps *ParamSet) AddScaled(a float64, other *ParamSet) {
	if len(ps.Params) != len(other.Params) {
		panic("nn: AddScaled param count mismatch")
	}
	for i, p := range ps.Params {
		p.M.AddScaled(a, other.Params[i].M)
	}
}

// NumValues returns the total number of scalar parameters.
func (ps *ParamSet) NumValues() int {
	n := 0
	for _, p := range ps.Params {
		n += len(p.M.Data)
	}
	return n
}

// SizeBytes returns the serialized size of the set: the true footprint a
// model occupies in an edge cache or on the wire.
func (ps *ParamSet) SizeBytes() int64 {
	var n int64 = 4 // count header
	for _, p := range ps.Params {
		n += 2 + int64(len(p.Name)) + p.M.SizeBytes()
	}
	return n
}

// MaxAbs returns the largest absolute scalar across all tensors.
func (ps *ParamSet) MaxAbs() float64 {
	m := 0.0
	for _, p := range ps.Params {
		if v := mat.MaxAbs(p.M.Data); v > m {
			m = v
		}
	}
	return m
}

// errBadParamSet reports a malformed serialized ParamSet.
var errBadParamSet = errors.New("nn: malformed serialized parameter set")

// WriteTo serializes the set: a uint32 tensor count, then for each tensor a
// uint16 name length, the name bytes, and the matrix in mat binary form.
func (ps *ParamSet) WriteTo(w io.Writer) (int64, error) {
	var written int64
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(ps.Params)))
	n, err := w.Write(hdr)
	written += int64(n)
	if err != nil {
		return written, fmt.Errorf("nn: write count: %w", err)
	}
	for _, p := range ps.Params {
		if len(p.Name) > 1<<16-1 {
			return written, fmt.Errorf("nn: parameter name too long: %q", p.Name)
		}
		nameHdr := make([]byte, 2)
		binary.LittleEndian.PutUint16(nameHdr, uint16(len(p.Name)))
		n, err = w.Write(nameHdr)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("nn: write name length: %w", err)
		}
		n, err = io.WriteString(w, p.Name)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("nn: write name: %w", err)
		}
		m, err := p.M.WriteTo(w)
		written += m
		if err != nil {
			return written, fmt.Errorf("nn: write tensor %q: %w", p.Name, err)
		}
	}
	return written, nil
}

// ReadParamSet deserializes a set written by WriteTo.
func ReadParamSet(r io.Reader) (*ParamSet, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("nn: read count: %w", err)
	}
	count := binary.LittleEndian.Uint32(hdr)
	if count > 1<<16 {
		return nil, errBadParamSet
	}
	ps := &ParamSet{Params: make([]Param, 0, count)}
	nameHdr := make([]byte, 2)
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, nameHdr); err != nil {
			return nil, fmt.Errorf("nn: read name length: %w", err)
		}
		nameLen := binary.LittleEndian.Uint16(nameHdr)
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return nil, fmt.Errorf("nn: read name: %w", err)
		}
		m, err := mat.ReadDense(r)
		if err != nil {
			return nil, fmt.Errorf("nn: read tensor %q: %w", nameBuf, err)
		}
		ps.Add(string(nameBuf), m)
	}
	return ps, nil
}
