package nn

import (
	"math"

	"repro/internal/mat"
)

// Optimizer updates a parameter set in place from a gradient set of the
// same shape.
type Optimizer interface {
	// Step applies one update. Implementations must not retain grads.
	Step(params, grads *ParamSet)
}

// SGD is stochastic gradient descent with optional momentum and global
// gradient-norm clipping.
type SGD struct {
	LR       float64 // learning rate; must be > 0
	Momentum float64 // 0 disables momentum
	Clip     float64 // 0 disables clipping; otherwise max global L2 norm

	velocity *ParamSet
}

var _ Optimizer = (*SGD)(nil)

// Step applies one SGD update to params.
func (o *SGD) Step(params, grads *ParamSet) {
	scale := clipScale(grads, o.Clip)
	if o.Momentum == 0 {
		forEachTensor(params, func(i int) {
			mat.AXPY(params.Params[i].M.Data, -o.LR*scale, grads.Params[i].M.Data)
		})
		return
	}
	if o.velocity == nil {
		o.velocity = params.ZeroClone()
	}
	forEachTensor(params, func(i int) {
		p := params.Params[i].M.Data
		v := o.velocity.Params[i].M.Data
		g := grads.Params[i].M.Data
		for j := range v {
			v[j] = o.Momentum*v[j] - o.LR*scale*g[j]
			p[j] += v[j]
		}
	})
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR    float64 // learning rate; must be > 0
	Beta1 float64 // first-moment decay; 0 means default 0.9
	Beta2 float64 // second-moment decay; 0 means default 0.999
	Eps   float64 // 0 means default 1e-8
	Clip  float64 // 0 disables clipping

	m, v *ParamSet
	t    int
}

var _ Optimizer = (*Adam)(nil)

// Step applies one Adam update to params.
func (o *Adam) Step(params, grads *ParamSet) {
	b1, b2, eps := o.Beta1, o.Beta2, o.Eps
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	if eps == 0 {
		eps = 1e-8
	}
	if o.m == nil {
		o.m = params.ZeroClone()
		o.v = params.ZeroClone()
	}
	o.t++
	scale := clipScale(grads, o.Clip)
	c1 := 1 - math.Pow(b1, float64(o.t))
	c2 := 1 - math.Pow(b2, float64(o.t))
	forEachTensor(params, func(i int) {
		md := o.m.Params[i].M.Data
		vd := o.v.Params[i].M.Data
		gd := grads.Params[i].M.Data
		pd := params.Params[i].M.Data
		for j := range pd {
			g := gd[j] * scale
			md[j] = b1*md[j] + (1-b1)*g
			vd[j] = b2*vd[j] + (1-b2)*g*g
			mHat := md[j] / c1
			vHat := vd[j] / c2
			pd[j] -= o.LR * mHat / (math.Sqrt(vHat) + eps)
		}
	})
}

// parallelStepThreshold is the minimum total scalar count before an
// optimizer step shards tensors across the mat worker pool; the paper's
// small codecs stay on the serial path.
const parallelStepThreshold = 1 << 15

// forEachTensor applies fn to every tensor index, sharding across the mat
// worker pool for large parameter sets. Tensors are disjoint, so the update
// is bit-identical to the serial loop at any parallelism.
func forEachTensor(ps *ParamSet, fn func(i int)) {
	if ps.NumValues() < parallelStepThreshold {
		for i := range ps.Params {
			fn(i)
		}
		return
	}
	mat.ParallelFor(len(ps.Params), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// clipScale returns the multiplier that rescales grads to global L2 norm at
// most clip (1 when clip is 0 or the norm is within bounds). The reduction
// stays serial deliberately: a sharded sum would change the floating-point
// accumulation order and break bit-reproducibility across worker counts.
func clipScale(grads *ParamSet, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	sq := 0.0
	for _, p := range grads.Params {
		for _, g := range p.M.Data {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm <= clip {
		return 1
	}
	return clip / norm
}
