package nn

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/mat"
)

func testLinear(in, out int, seed uint64) *Linear {
	return NewLinear(mat.NewRNG(seed), in, out)
}

// TestActivationGridMatchesChannelQuantizer pins the contract between
// mat.QuantizeRowQ8 (activation quantization inside the int8 GEMM) and the
// channel.Quantizer grid (weight quantization here): identical codes for
// every value, so weights and activations provably share one machinery.
func TestActivationGridMatchesChannelQuantizer(t *testing.T) {
	rng := mat.NewRNG(13)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		src := make([]float32, n)
		for i := range src {
			src[i] = float32(6*rng.Float64() - 3)
		}
		if trial%3 == 0 {
			src[rng.Intn(n)] = 0
		}
		codes := make([]uint8, n)
		lo, scale, _ := mat.QuantizeRowQ8(codes, src)
		m := float64(mat.MaxAbs32(src))
		if m == 0 {
			continue
		}
		q := channel.Quantizer{Bits: 8, Lo: -m, Hi: m}
		if float64(lo) != float32ed(q.Lo) || float64(scale) != float32ed(q.StepSize()) {
			t.Fatalf("trial %d: grid (%v,%v) vs channel (%v,%v)", trial, lo, scale, q.Lo, q.StepSize())
		}
		for i, v := range src {
			if want := q.Index(float64(v)); int(codes[i]) != want {
				t.Fatalf("trial %d elem %d: code %d, channel.Index %d (v=%v m=%v)",
					trial, i, codes[i], want, v, m)
			}
		}
	}
}

// float32ed rounds a float64 through float32, matching how the grids store
// their parameters.
func float32ed(v float64) float64 { return float64(float32(v)) }

func TestLinear32ForwardTracksF64(t *testing.T) {
	l := testLinear(48, 33, 5)
	l32 := NewLinear32(l)
	x := mat.NewDense(17, 48)
	rng := mat.NewRNG(6)
	for i := range x.Data {
		x.Data[i] = 2*rng.Float64() - 1
	}
	want := mat.NewDense(17, 33)
	l.ForwardBatch(want, x)
	got := mat.NewDense32(17, 33)
	l32.ForwardBatch(got, mat.Dense32From(x))
	for i, g := range got.Data {
		if diff := math.Abs(float64(g) - want.Data[i]); diff > 1e-5 {
			t.Fatalf("elem %d: f32 %v vs f64 %v", i, g, want.Data[i])
		}
	}
}

func TestLinearQ8ForwardWithinQuantizationBudget(t *testing.T) {
	l := testLinear(24, 59, 7)
	lq := NewLinearQ8(l)
	x := mat.NewDense(31, 24)
	rng := mat.NewRNG(8)
	for i := range x.Data {
		x.Data[i] = 2*rng.Float64() - 1 // tanh-bounded activations, like the codec
	}
	want := mat.NewDense(31, 59)
	l.ForwardBatch(want, x)
	got := mat.NewDense32(31, 59)
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	lq.ForwardBatch(sc, got, mat.Dense32From(x))
	// Error budget: one truncating-grid step per factor, summed over the
	// fan-in. step_w <= 2*max|w|/255, step_x <= 2/255 here; the dot of k
	// terms then drifts by at most k*(|x|*step_w + |w|*step_x + step_w*step_x).
	var wmax float64
	for _, v := range l.W.Data {
		if a := math.Abs(v); a > wmax {
			wmax = a
		}
	}
	budget := float64(l.In()) * (2*wmax/255 + 2*(wmax+2.0/255)/255)
	for i, g := range got.Data {
		if diff := math.Abs(float64(g) - want.Data[i]); diff > budget {
			t.Fatalf("elem %d: int8 %v vs f64 %v (diff %v > budget %v)", i, g, want.Data[i], diff, budget)
		}
	}
}

func TestLinearQ8ZeroRowDequantizesToBias(t *testing.T) {
	l := testLinear(8, 4, 9)
	for j := range l.W.Row(2) {
		l.W.Row(2)[j] = 0
	}
	l.B.Row(0)[2] = 0.75
	lq := NewLinearQ8(l)
	x := mat.NewDense32(1, 8)
	for i := range x.Data {
		x.Data[i] = float32(i) - 3.5
	}
	got := mat.NewDense32(1, 4)
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	lq.ForwardBatch(sc, got, x)
	if got.Data[2] != 0.75 {
		t.Fatalf("zero weight row output = %v, want exactly the bias 0.75", got.Data[2])
	}
}
