package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func gradFixture(seed uint64) *ParamSet {
	rng := mat.NewRNG(seed)
	ps := &ParamSet{}
	w := mat.NewDense(8, 10)
	w.Randomize(rng, 1)
	b := mat.NewDense(1, 8)
	b.Randomize(rng, 1)
	ps.Add("dec.W", w)
	ps.Add("dec.B", b)
	return ps
}

func TestCompressDenseLossless(t *testing.T) {
	g := gradFixture(1)
	cg := Compress(g, CompressOptions{})
	target := g.ZeroClone()
	if err := cg.ApplyTo(target, 1); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	for i, p := range g.Params {
		for j := range p.M.Data {
			if p.M.Data[j] != target.Params[i].M.Data[j] {
				t.Fatalf("dense compress not lossless at %s[%d]", p.Name, j)
			}
		}
	}
}

func TestCompressTopKKeepsLargest(t *testing.T) {
	g := &ParamSet{}
	w := mat.NewDense(1, 10)
	copy(w.Data, []float64{0.1, -5, 0.2, 3, -0.1, 0.05, 4, -0.3, 0.01, 2})
	g.Add("w", w)
	cg := Compress(g, CompressOptions{TopKFrac: 0.3})
	ct := cg.Tensors[0]
	if len(ct.Idx) != 3 {
		t.Fatalf("top-30%% of 10 = %d entries, want 3", len(ct.Idx))
	}
	// Largest magnitudes are -5 (idx 1), 4 (idx 6), 3 (idx 3).
	want := map[uint32]bool{1: true, 3: true, 6: true}
	for _, ix := range ct.Idx {
		if !want[ix] {
			t.Fatalf("top-k kept unexpected index %d", ix)
		}
	}
}

func TestCompressInt8BoundedError(t *testing.T) {
	g := gradFixture(2)
	cg := Compress(g, CompressOptions{Int8: true})
	target := g.ZeroClone()
	if err := cg.ApplyTo(target, 1); err != nil {
		t.Fatalf("ApplyTo: %v", err)
	}
	for i, p := range g.Params {
		maxAbs := mat.MaxAbs(p.M.Data)
		tol := maxAbs/127 + 1e-12 // one quantization step
		for j := range p.M.Data {
			diff := math.Abs(p.M.Data[j] - target.Params[i].M.Data[j])
			if diff > tol {
				t.Fatalf("int8 error %v exceeds one step %v at %s[%d]", diff, tol, p.Name, j)
			}
		}
	}
}

func TestCompressSizeOrdering(t *testing.T) {
	g := gradFixture(3)
	dense := Compress(g, CompressOptions{}).SizeBytes()
	topk := Compress(g, CompressOptions{TopKFrac: 0.1}).SizeBytes()
	topkQ := Compress(g, CompressOptions{TopKFrac: 0.1, Int8: true}).SizeBytes()
	q := Compress(g, CompressOptions{Int8: true}).SizeBytes()
	if !(topkQ < topk && topk < dense) {
		t.Fatalf("size ordering violated: topkQ=%d topk=%d dense=%d", topkQ, topk, dense)
	}
	if q >= dense {
		t.Fatalf("int8 (%d) not smaller than dense (%d)", q, dense)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, opts := range []CompressOptions{
		{},
		{TopKFrac: 0.25},
		{Int8: true},
		{TopKFrac: 0.25, Int8: true},
	} {
		g := gradFixture(4)
		cg := Compress(g, opts)
		payload := cg.Encode()
		if len(payload) != cg.SizeBytes() {
			t.Fatalf("opts %+v: payload %d bytes, SizeBytes %d", opts, len(payload), cg.SizeBytes())
		}
		got, err := DecodeCompressed(payload)
		if err != nil {
			t.Fatalf("opts %+v: decode: %v", opts, err)
		}
		// Applying original and decoded must produce identical results.
		a := g.ZeroClone()
		b := g.ZeroClone()
		if err := cg.ApplyTo(a, 1); err != nil {
			t.Fatal(err)
		}
		if err := got.ApplyTo(b, 1); err != nil {
			t.Fatal(err)
		}
		for i := range a.Params {
			for j := range a.Params[i].M.Data {
				if a.Params[i].M.Data[j] != b.Params[i].M.Data[j] {
					t.Fatalf("opts %+v: decoded apply differs", opts)
				}
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	g := gradFixture(5)
	payload := Compress(g, CompressOptions{TopKFrac: 0.5}).Encode()
	if _, err := DecodeCompressed(payload[:len(payload)/2]); err == nil {
		t.Fatal("accepted truncated payload")
	}
	bad := append([]byte{}, payload...)
	bad[0] ^= 0xff // corrupt magic
	if _, err := DecodeCompressed(bad); err == nil {
		t.Fatal("accepted corrupted magic")
	}
	if _, err := DecodeCompressed(nil); err == nil {
		t.Fatal("accepted empty payload")
	}
}

func TestApplyToNameMismatch(t *testing.T) {
	g := gradFixture(6)
	cg := Compress(g, CompressOptions{})
	other := &ParamSet{}
	other.Add("different", mat.NewDense(8, 10))
	if err := cg.ApplyTo(other, 1); err == nil {
		t.Fatal("applied to mismatched parameter set")
	}
}

func TestApplyToShapeMismatch(t *testing.T) {
	g := gradFixture(7)
	cg := Compress(g, CompressOptions{})
	other := &ParamSet{}
	other.Add("dec.W", mat.NewDense(2, 2))
	other.Add("dec.B", mat.NewDense(1, 8))
	if err := cg.ApplyTo(other, 1); err == nil {
		t.Fatal("applied despite shape mismatch")
	}
}

// Property: encode/decode round-trips for arbitrary seeds and compression
// settings, and top-k never increases the payload.
func TestCompressQuick(t *testing.T) {
	f := func(seed uint64, frac float64, int8q bool) bool {
		frac = math.Abs(math.Mod(frac, 1))
		g := gradFixture(seed)
		cg := Compress(g, CompressOptions{TopKFrac: frac, Int8: int8q})
		payload := cg.Encode()
		got, err := DecodeCompressed(payload)
		if err != nil {
			return false
		}
		return len(got.Tensors) == len(cg.Tensors) &&
			cg.SizeBytes() <= Compress(g, CompressOptions{Int8: int8q}).SizeBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
