// Package text provides tokenization and vocabulary primitives shared by
// the semantic codecs, the classical baseline and the workload generators.
package text

import (
	"strings"
	"unicode"
)

// UnknownID is the reserved token ID for out-of-vocabulary words.
const UnknownID = 0

// UnknownWord is the surface form of the unknown token.
const UnknownWord = "<unk>"

// Vocab is an append-only bidirectional mapping between words and dense
// integer IDs. ID 0 is always the unknown token.
type Vocab struct {
	words []string
	index map[string]int
}

// NewVocab returns a vocabulary containing only the unknown token.
func NewVocab() *Vocab {
	v := &Vocab{
		words: make([]string, 0, 64),
		index: make(map[string]int, 64),
	}
	v.Add(UnknownWord)
	return v
}

// Add inserts word if absent and returns its ID.
func (v *Vocab) Add(word string) int {
	if id, ok := v.index[word]; ok {
		return id
	}
	id := len(v.words)
	v.words = append(v.words, word)
	v.index[word] = id
	return id
}

// ID returns the ID for word, or UnknownID if the word is absent.
func (v *Vocab) ID(word string) int {
	if id, ok := v.index[word]; ok {
		return id
	}
	return UnknownID
}

// Has reports whether word is present.
func (v *Vocab) Has(word string) bool {
	_, ok := v.index[word]
	return ok
}

// Word returns the surface form for id, or the unknown word for
// out-of-range IDs.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return UnknownWord
	}
	return v.words[id]
}

// Size returns the number of distinct tokens including the unknown token.
func (v *Vocab) Size() int { return len(v.words) }

// Words returns a copy of the vocabulary in ID order.
func (v *Vocab) Words() []string {
	out := make([]string, len(v.words))
	copy(out, v.words)
	return out
}

// Encode tokenizes s and maps each token to its ID (UnknownID when absent).
func (v *Vocab) Encode(s string) []int {
	tokens := Tokenize(s)
	ids := make([]int, len(tokens))
	for i, tok := range tokens {
		ids[i] = v.ID(tok)
	}
	return ids
}

// Decode renders a space-joined sentence from token IDs.
func (v *Vocab) Decode(ids []int) string {
	words := make([]string, len(ids))
	for i, id := range ids {
		words[i] = v.Word(id)
	}
	return strings.Join(words, " ")
}

// Tokenize lower-cases s and splits it into maximal runs of letters and
// digits. Punctuation separates tokens and is dropped.
func Tokenize(s string) []string {
	s = strings.ToLower(s)
	tokens := make([]string, 0, len(s)/5+1)
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			tokens = append(tokens, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, s[start:])
	}
	return tokens
}

// Join renders tokens as a space-separated sentence.
func Join(tokens []string) string { return strings.Join(tokens, " ") }
