package text

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "the quick fox", []string{"the", "quick", "fox"}},
		{"case folding", "The QUICK Fox", []string{"the", "quick", "fox"}},
		{"punctuation", "hello, world! a-b", []string{"hello", "world", "a", "b"}},
		{"digits", "port 8080 open", []string{"port", "8080", "open"}},
		{"empty", "", nil},
		{"only punctuation", "?!,.", nil},
		{"leading trailing space", "  padded  ", []string{"padded"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Tokenize(tc.in)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVocabAddIdempotent(t *testing.T) {
	v := NewVocab()
	a := v.Add("alpha")
	b := v.Add("alpha")
	if a != b {
		t.Fatalf("Add not idempotent: %d vs %d", a, b)
	}
	if v.Size() != 2 { // <unk> + alpha
		t.Fatalf("Size = %d, want 2", v.Size())
	}
}

func TestVocabUnknown(t *testing.T) {
	v := NewVocab()
	if v.ID("missing") != UnknownID {
		t.Fatal("missing word should map to UnknownID")
	}
	if v.Word(UnknownID) != UnknownWord {
		t.Fatal("UnknownID should map to UnknownWord")
	}
	if v.Word(-1) != UnknownWord || v.Word(9999) != UnknownWord {
		t.Fatal("out-of-range IDs should map to UnknownWord")
	}
	if v.Has("missing") {
		t.Fatal("Has(missing) = true")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := NewVocab()
	for _, w := range []string{"semantic", "edge", "cache"} {
		v.Add(w)
	}
	ids := v.Encode("semantic edge cache")
	if got := v.Decode(ids); got != "semantic edge cache" {
		t.Fatalf("round trip = %q", got)
	}
}

func TestEncodeUnknownWords(t *testing.T) {
	v := NewVocab()
	v.Add("known")
	ids := v.Encode("known stranger")
	if ids[0] == UnknownID || ids[1] != UnknownID {
		t.Fatalf("Encode = %v", ids)
	}
}

func TestWordsCopy(t *testing.T) {
	v := NewVocab()
	v.Add("x")
	w := v.Words()
	w[0] = "mutated"
	if v.Word(0) != UnknownWord {
		t.Fatal("Words() leaked internal storage")
	}
}

// Property: every token produced by Tokenize is non-empty and lower-case,
// and re-tokenizing a joined token stream is the identity.
func TestTokenizeQuick(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				return false
			}
			if Tokenize(tok)[0] != tok {
				return false
			}
		}
		again := Tokenize(Join(toks))
		return reflect.DeepEqual(again, toks) || (len(again) == 0 && len(toks) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
