package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a typed connection to an edged daemon. It owns one TCP
// connection and serializes calls over it; a Client is safe for use from
// multiple goroutines, with concurrent calls queueing on an internal
// mutex.
//
// Transport-level failures (including a per-call deadline expiring
// mid-frame) leave the connection in an undefined framing state: the
// caller should Close the client and Dial a fresh one. Application-level
// failures arrive as Response.OK == false with the connection intact.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// ErrClosed reports a call on a closed Client.
var ErrClosed = errors.New("rpc: client closed")

// Dial connects to an edged daemon at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection in a Client. The Client takes
// ownership of conn.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// SetTimeout sets the default per-call deadline applied when a call does
// not carry its own. Zero (the initial state) means calls wait forever.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close shuts the connection down. Calls after Close fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// DoContext issues one request and reads its response. The exchange
// deadline derives from ctx (falling back to the client default timeout
// when ctx carries none), and the remaining budget is forwarded to the
// daemon as Request.DeadlineMs so admission control can shed the request
// instead of serving it late. Cancelling ctx mid-call unblocks the
// exchange by expiring the connection deadline.
func (c *Client) DoContext(ctx context.Context, req *Request) (*Response, error) {
	return c.do(ctx, Version, req)
}

// Do issues one request with an explicit per-call deadline (zero selects
// the client default).
//
// Deprecated: use DoContext, which derives the deadline from a context
// and composes with cancellation.
func (c *Client) Do(req *Request, deadline time.Duration) (*Response, error) {
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	return c.do(ctx, Version, req)
}

// do runs one framed exchange at the given protocol version under the
// client mutex.
func (c *Client) do(ctx context.Context, version byte, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	conn := c.conn
	deadline, ok := ctx.Deadline()
	if !ok && c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
		ok = true
	}
	if ok {
		if remain := time.Until(deadline); remain > 0 {
			req.DeadlineMs = float64(remain) / float64(time.Millisecond)
		}
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("rpc: set deadline: %w", err)
		}
		defer conn.SetDeadline(time.Time{})
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	if err := WriteV(conn, version, req); err != nil {
		return nil, err
	}
	return ReadResponse(conn)
}

// Transmit runs one message through the daemon's semantic pipeline.
func (c *Client) Transmit(user, text string) (*Response, error) {
	return c.TransmitContext(context.Background(), user, text)
}

// TransmitContext is Transmit with the deadline derived from ctx.
func (c *Client) TransmitContext(ctx context.Context, user, text string) (*Response, error) {
	return c.do(ctx, Version, &Request{Op: OpTransmit, User: user, Text: text})
}

// TransmitDeadline is Transmit with an explicit per-call deadline.
//
// Deprecated: use TransmitContext.
func (c *Client) TransmitDeadline(user, text string, deadline time.Duration) (*Response, error) {
	ctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	return c.TransmitContext(ctx, user, text)
}

// Move attaches user to a radio cell (cluster mode). The returned
// Response carries the Handover outcome when the daemon runs a cluster.
func (c *Client) Move(user string, cell int) (*Response, error) {
	return c.do(context.Background(), Version, &Request{Op: OpMove, User: user, Cell: cell})
}

// Stats fetches the daemon's counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.do(context.Background(), Version, &Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: stats: %s", resp.Error)
	}
	if resp.Stats == nil {
		return nil, errors.New("rpc: stats response carried no stats")
	}
	return resp.Stats, nil
}

// Ping checks daemon liveness.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext checks daemon liveness, honoring ctx for cancellation and
// deadline.
func (c *Client) PingContext(ctx context.Context) error {
	resp, err := c.do(ctx, Version, &Request{Op: OpPing})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("rpc: ping: %s", resp.Error)
	}
	return nil
}

// Mesh calls: peer-to-peer ops framed at protocol version 2.

// Join announces peer to the daemon and returns the daemon's current
// membership view.
func (c *Client) Join(ctx context.Context, peer PeerInfo) ([]PeerInfo, error) {
	resp, err := c.do(ctx, Version2, &Request{Op: OpJoin, Peer: &peer})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: join: %s", resp.Error)
	}
	return resp.Peers, nil
}

// Leave announces peer's graceful shutdown to the daemon.
func (c *Client) Leave(ctx context.Context, peer PeerInfo) error {
	resp, err := c.do(ctx, Version2, &Request{Op: OpLeave, Peer: &peer})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("rpc: leave: %s", resp.Error)
	}
	return nil
}

// PeerStats fetches the daemon's own per-node counter snapshot.
func (c *Client) PeerStats(ctx context.Context) (*NodeStats, error) {
	resp, err := c.do(ctx, Version2, &Request{Op: OpPeerStats})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: peer-stats: %s", resp.Error)
	}
	if resp.Node == nil {
		return nil, errors.New("rpc: peer-stats response carried no node")
	}
	return resp.Node, nil
}

// FetchModel probes the daemon's cache for a model. A miss returns
// (nil, nil): the daemon answers with Peek semantics and never forwards
// to origin, so the caller decides when to pay the uplink.
func (c *Client) FetchModel(ctx context.Context, fetch FetchRequest) (*ModelPayload, error) {
	resp, err := c.do(ctx, Version2, &Request{Op: OpFetchModel, Fetch: &fetch})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: fetch-model: %s", resp.Error)
	}
	return resp.Model, nil
}

// HandoverPush ships a user's serving state to the daemon taking
// ownership.
func (c *Client) HandoverPush(ctx context.Context, h *HandoffPayload) error {
	resp, err := c.do(ctx, Version2, &Request{Op: OpHandoverPush, Handoff: h})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("rpc: handover-push: %s", resp.Error)
	}
	return nil
}
