package rpc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a typed connection to an edged daemon. It owns one TCP
// connection and serializes calls over it; a Client is safe for use from
// multiple goroutines, with concurrent calls queueing on an internal
// mutex.
//
// Transport-level failures (including a per-call deadline expiring
// mid-frame) leave the connection in an undefined framing state: the
// caller should Close the client and Dial a fresh one. Application-level
// failures arrive as Response.OK == false with the connection intact.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
}

// ErrClosed reports a call on a closed Client.
var ErrClosed = errors.New("rpc: client closed")

// Dial connects to an edged daemon at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection in a Client. The Client takes
// ownership of conn.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// SetTimeout sets the default per-call deadline applied when a call does
// not carry its own. Zero (the initial state) means calls wait forever.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close shuts the connection down. Calls after Close fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Do issues one request and reads its response, applying deadline (or the
// client default when deadline is zero) to the whole exchange. A positive
// deadline is also forwarded to the daemon as Request.DeadlineMs so
// admission control can shed the request instead of serving it late.
func (c *Client) Do(req *Request, deadline time.Duration) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if deadline <= 0 {
		deadline = c.timeout
	}
	if deadline > 0 {
		req.DeadlineMs = float64(deadline) / float64(time.Millisecond)
		if err := c.conn.SetDeadline(time.Now().Add(deadline)); err != nil {
			return nil, fmt.Errorf("rpc: set deadline: %w", err)
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := Write(c.conn, req); err != nil {
		return nil, err
	}
	return ReadResponse(c.conn)
}

// Transmit runs one message through the daemon's semantic pipeline.
func (c *Client) Transmit(user, text string) (*Response, error) {
	return c.Do(&Request{Op: OpTransmit, User: user, Text: text}, 0)
}

// TransmitDeadline is Transmit with an explicit per-call deadline.
func (c *Client) TransmitDeadline(user, text string, deadline time.Duration) (*Response, error) {
	return c.Do(&Request{Op: OpTransmit, User: user, Text: text}, deadline)
}

// Move attaches user to a radio cell (cluster mode). The returned
// Response carries the Handover outcome when the daemon runs a cluster.
func (c *Client) Move(user string, cell int) (*Response, error) {
	return c.Do(&Request{Op: OpMove, User: user, Cell: cell}, 0)
}

// Stats fetches the daemon's counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.Do(&Request{Op: OpStats}, 0)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("rpc: stats: %s", resp.Error)
	}
	if resp.Stats == nil {
		return nil, errors.New("rpc: stats response carried no stats")
	}
	return resp.Stats, nil
}

// Ping checks daemon liveness.
func (c *Client) Ping() error {
	resp, err := c.Do(&Request{Op: OpPing}, 0)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("rpc: ping: %s", resp.Error)
	}
	return nil
}
