package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// frame wraps payload in the wire format (possibly with a lying header
// when lieLen is set) for seeding the fuzz corpus.
func frame(payload []byte, lieLen uint32) []byte {
	return frameV(Version, payload, lieLen)
}

// frameV is frame with an explicit version byte, for seeding
// wrong-version inputs.
func frameV(version byte, payload []byte, lieLen uint32) []byte {
	hdr := make([]byte, headerBytes)
	hdr[0] = version
	n := uint32(len(payload))
	if lieLen != 0 {
		n = lieLen
	}
	binary.LittleEndian.PutUint32(hdr[1:], n)
	return append(hdr, payload...)
}

// seedFrames is the shared corpus for both framed-message parsers: valid
// messages, truncations, oversized and lying headers, and JSON garbage.
func seedFrames(f *testing.F, valid interface{}) {
	f.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, valid); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-2])                       // truncated payload
	f.Add(full[:3])                                 // truncated header
	f.Add([]byte{})                                 // empty stream
	f.Add(frame([]byte(`{"op":`), 0))               // malformed JSON
	f.Add(frame([]byte(`null`), 0))                 // null document
	f.Add(frame([]byte(`{}`), 1<<30))               // lying oversize header
	f.Add(frame(bytes.Repeat([]byte{0xff}, 64), 0)) // binary garbage
	f.Add(frameV(0, []byte(`{}`), 0))               // pre-versioning framing
	f.Add(frameV(Version2, []byte(`{}`), 0))        // mesh protocol version
	f.Add(frameV(3, []byte(`{}`), 0))               // future protocol version
	f.Add(frameV(0xff, []byte(`{}`), 0))            // junk version byte
}

// seedFramesV2 adds v2-framed variants of the mesh messages to the
// corpus.
func seedFramesV2(f *testing.F, valids ...interface{}) {
	f.Helper()
	for _, valid := range valids {
		var buf bytes.Buffer
		if err := WriteV(&buf, Version2, valid); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
}

// checkVersionByte asserts the parser's version handling for one fuzz
// input: any frame whose first byte is neither supported version must be
// rejected with *VersionError (never accepted, never misreported), and
// *VersionError must never surface for a supported-version frame.
func checkVersionByte(t *testing.T, data []byte, err error) {
	t.Helper()
	var verr *VersionError
	wrongVersion := len(data) >= headerBytes && data[0] != Version && data[0] != Version2
	if wrongVersion && err == nil {
		t.Fatalf("frame with version byte %d accepted", data[0])
	}
	if errors.As(err, &verr) {
		if !wrongVersion {
			t.Fatalf("VersionError %v for frame %q", verr, data)
		}
		if verr.Got != data[0] {
			t.Fatalf("VersionError.Got = %d, frame has %d", verr.Got, data[0])
		}
	}
}

// FuzzReadRequest feeds arbitrary bytes to the request parser: it must
// never panic, and every frame it accepts must re-frame losslessly.
func FuzzReadRequest(f *testing.F) {
	seedFrames(f, &Request{Op: OpTransmit, User: "u01", Text: "the server restarted", Cell: 2})
	seedFramesV2(f,
		&Request{Op: OpJoin, Peer: &PeerInfo{Name: "node-1", Index: 1, Addr: "127.0.0.1:7102"}},
		&Request{Op: OpLeave, Peer: &PeerInfo{Name: "node-2", Index: 2}},
		&Request{Op: OpPeerStats},
		&Request{Op: OpFetchModel, Fetch: &FetchRequest{Domain: "it", Role: "codec"}},
		&Request{Op: OpHandoverPush, Handoff: &HandoffPayload{
			User: "u01", FromNode: "node-0", NoiseSeq: 41,
			Models: []HandoffModel{{Side: "sender", Model: ModelPayload{
				Domain: "it", User: "u01", Version: 3, Params: []byte{1, 2, 3, 4},
			}}},
		}},
		&Request{Op: OpHandoverPush, Handoff: &HandoffPayload{
			User: "u02", FromNode: "node-1", NoiseSeq: 7, Reason: HandoffDrain,
			Belief:  []float64{0.5, 0.25, 0.25},
			Buffers: []BufferState{{Domain: "it", Txs: []TxState{{Surfaces: []int{3, 1}, Concepts: []int{2}, Decoded: []int{3, 1}}}}},
			General: []ModelPayload{{Domain: "it", Version: 1, Params: []byte{5, 6}}},
		}},
		&Request{Op: OpHandoverPush, Handoff: &HandoffPayload{
			FromNode: "node-2", Reason: HandoffReplica,
			General: []ModelPayload{{Domain: "sports", Version: 1, Params: []byte{7}}},
		}},
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		req, version, err := ReadRequestV(bytes.NewReader(data))
		checkVersionByte(t, data, err)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteV(&buf, version, req); err != nil {
			t.Fatalf("accepted request %+v fails to serialize: %v", req, err)
		}
		again, v2, err := ReadRequestV(&buf)
		if err != nil {
			t.Fatalf("re-framed request fails to parse: %v", err)
		}
		if v2 != version {
			t.Fatalf("version changed across round-trip: %d != %d", v2, version)
		}
		if !reflect.DeepEqual(again, req) {
			t.Fatalf("request round-trip changed: %+v != %+v", again, req)
		}
	})
}

// FuzzReadResponse is the response-side twin of FuzzReadRequest.
func FuzzReadResponse(f *testing.F) {
	seedFrames(f, &Response{
		OK: true, Restored: "the server restarted", SelectedDomain: "it",
		Mismatch: 0.25, PayloadBytes: 96, LatencyMs: 41.5,
		Handover: &Handover{From: "node-0", To: "node-1", Moved: true, Models: 1},
		Stats:    &Stats{Messages: 7, Nodes: []NodeStats{{Name: "node-0", Users: 3}}},
	})
	seedFramesV2(f,
		&Response{OK: true, Model: &ModelPayload{Domain: "it", Version: 2, Params: []byte{9, 8, 7}}},
		&Response{OK: true, Node: &NodeStats{Name: "node-1", NeighborHits: 4, NeighborBytes: 512, OriginBytes: 2048, FetchLatencyMs: 5.5}},
		&Response{OK: true, Node: &NodeStats{
			Name: "node-2", Generals: []string{"it", "sports"},
			Hot: []DomainHeat{{Domain: "it", Count: 31}}, ReplicasOut: 2, ReplicasIn: 1,
		}},
		&Response{OK: true, Peers: []PeerInfo{{Name: "node-0", Index: 0, Addr: "127.0.0.1:7101"}}},
		&Response{OK: false, Error: ErrMeshOpVersion.Error()},
		&Response{OK: false, Draining: true, Error: "draining: member is leaving the mesh"},
	)
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, version, err := ReadResponseV(bytes.NewReader(data))
		checkVersionByte(t, data, err)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteV(&buf, version, resp); err != nil {
			t.Fatalf("accepted response fails to serialize: %v", err)
		}
		again, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("re-framed response fails to parse: %v", err)
		}
		if !reflect.DeepEqual(again, resp) {
			t.Fatalf("response round-trip changed: %+v != %+v", again, resp)
		}
	})
}
