package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Request{Op: OpTransmit, User: "alice", Text: "the server is down"}
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Response{OK: true, Restored: "the server is down", SelectedDomain: "it",
		PayloadBytes: 25, LatencyMs: 14.2, Stats: &Stats{Messages: 3}}
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Restored != in.Restored || out.Stats.Messages != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestZeroTransmitFieldsSerialize(t *testing.T) {
	payload, err := json.Marshal(&Response{OK: true, Restored: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	// A flawless transmit (mismatch 0) must not be indistinguishable from
	// a response that never set the field.
	for _, field := range []string{`"mismatch"`, `"payload_bytes"`, `"latency_ms"`} {
		if !bytes.Contains(payload, []byte(field)) {
			t.Fatalf("zero-valued %s dropped from wire form %s", field, payload)
		}
	}
}

// header builds a wire header with the given version and payload length.
func header(version byte, n uint32) []byte {
	hdr := make([]byte, headerBytes)
	hdr[0] = version
	binary.LittleEndian.PutUint32(hdr[1:], n)
	return hdr
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(Version, MaxMessageBytes+1))
	if _, err := ReadRequest(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(Version, 100))
	buf.WriteString("short")
	if _, err := ReadRequest(&buf); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWriteEmitsVersionByte(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[0]; got != Version {
		t.Fatalf("frame starts with %d, want version byte %d", got, Version)
	}
}

func TestReadRejectsUnknownVersions(t *testing.T) {
	for _, v := range []byte{0, 3, 0x7f, 0xff} {
		var buf bytes.Buffer
		buf.Write(header(v, 2))
		buf.WriteString("{}")
		_, err := ReadRequest(&buf)
		var verr *VersionError
		if !errors.As(err, &verr) {
			t.Fatalf("version %d: err = %v, want *VersionError", v, err)
		}
		if verr.Got != v {
			t.Fatalf("VersionError.Got = %d, want %d", verr.Got, v)
		}
	}
}

func TestV2RequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Request{Op: OpHandoverPush, Handoff: &HandoffPayload{
		User: "alice", FromNode: "node-0", NoiseSeq: 17,
		Models: []HandoffModel{{Side: "sender", Model: ModelPayload{
			Domain: "it", User: "alice", Version: 2, Params: []byte{1, 2, 3},
		}}},
	}}
	if err := WriteV(&buf, Version2, in); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[0]; got != Version2 {
		t.Fatalf("frame starts with %d, want version byte %d", got, Version2)
	}
	out, version, err := ReadRequestV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if version != Version2 {
		t.Fatalf("version = %d, want %d", version, Version2)
	}
	if out.Handoff == nil || out.Handoff.NoiseSeq != 17 || len(out.Handoff.Models) != 1 {
		t.Fatalf("handoff round trip: %+v", out.Handoff)
	}
	m := out.Handoff.Models[0]
	if m.Side != "sender" || m.Model.Domain != "it" || !bytes.Equal(m.Model.Params, []byte{1, 2, 3}) {
		t.Fatalf("model round trip: %+v", m)
	}
}

func TestV1ReaderStillAcceptsV1(t *testing.T) {
	// The version-returning reader must report v1 for legacy frames so a
	// server can gate mesh ops on the version a request arrived with.
	var buf bytes.Buffer
	if err := Write(&buf, &Request{Op: OpTransmit, User: "alice"}); err != nil {
		t.Fatal(err)
	}
	req, version, err := ReadRequestV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if version != Version || req.Op != OpTransmit {
		t.Fatalf("version = %d op = %q, want %d %q", version, req.Op, Version, OpTransmit)
	}
}

func TestWriteVRejectsUnknownVersion(t *testing.T) {
	var buf bytes.Buffer
	err := WriteV(&buf, 9, &Request{Op: OpPing})
	var verr *VersionError
	if !errors.As(err, &verr) || verr.Got != 9 {
		t.Fatalf("err = %v, want *VersionError{Got: 9}", err)
	}
}

func TestIsMeshOp(t *testing.T) {
	for _, op := range []string{OpJoin, OpLeave, OpPeerStats, OpFetchModel, OpHandoverPush} {
		if !IsMeshOp(op) {
			t.Fatalf("IsMeshOp(%q) = false", op)
		}
	}
	for _, op := range []string{OpTransmit, OpMove, OpStats, OpPing, "nonsense"} {
		if IsMeshOp(op) {
			t.Fatalf("IsMeshOp(%q) = true", op)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	a := &Stats{
		Messages: 10, SenderHitRate: 0.8, SyncBytes: 100, SyncCount: 2,
		CachedModels: 3, CacheUsedBytes: 300, Handovers: 1, MigratedBytes: 50,
		Nodes: []NodeStats{{Name: "node-0", Users: 4}},
		Serve: &ServeStats{InFlight: 1, Shed: 2, Batches: 3, BatchedRequests: 6, BatchOccupancy: [6]int64{1, 1, 1, 0, 0, 0}},
	}
	b := &Stats{
		Messages: 30, SenderHitRate: 0.4, SyncBytes: 200, SyncCount: 1,
		CachedModels: 5, CacheUsedBytes: 700, Handovers: 2, MigratedBytes: 70,
		Nodes: []NodeStats{{Name: "node-1", Users: 6}},
		Serve: &ServeStats{InFlight: 2, Shed: 1, Batches: 1, BatchedRequests: 2, BatchOccupancy: [6]int64{0, 1, 0, 0, 0, 0}},
	}
	a.Merge(b)
	if a.Messages != 40 {
		t.Fatalf("Messages = %d, want 40", a.Messages)
	}
	// Weighted hit rate: (0.8*10 + 0.4*30) / 40 = 0.5.
	if math.Abs(a.SenderHitRate-0.5) > 1e-12 {
		t.Fatalf("SenderHitRate = %g, want 0.5", a.SenderHitRate)
	}
	if a.SyncBytes != 300 || a.SyncCount != 3 || a.CachedModels != 8 || a.CacheUsedBytes != 1000 {
		t.Fatalf("additive counters wrong: %+v", a)
	}
	if a.Handovers != 3 || a.MigratedBytes != 120 {
		t.Fatalf("handover counters wrong: %+v", a)
	}
	if len(a.Nodes) != 2 || a.Nodes[1].Name != "node-1" {
		t.Fatalf("Nodes = %+v", a.Nodes)
	}
	if a.Serve.InFlight != 3 || a.Serve.Shed != 3 || a.Serve.Batches != 4 || a.Serve.BatchedRequests != 8 {
		t.Fatalf("Serve counters wrong: %+v", a.Serve)
	}
	if a.Serve.BatchOccupancy != [6]int64{1, 2, 1, 0, 0, 0} {
		t.Fatalf("BatchOccupancy = %v", a.Serve.BatchOccupancy)
	}
	// Merging nil and merging into empty both behave.
	a.Merge(nil)
	empty := &Stats{}
	empty.Merge(&Stats{Messages: 4, SenderHitRate: 1})
	if empty.Messages != 4 || empty.SenderHitRate != 1 {
		t.Fatalf("merge into empty: %+v", empty)
	}
}

func TestReadEOFPassthrough(t *testing.T) {
	if _, err := ReadRequest(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestReadGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(Version, 4))
	buf.WriteString("]]]]")
	if _, err := ReadRequest(&buf); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		req, err := ReadRequest(conn)
		if err != nil {
			done <- err
			return
		}
		done <- Write(conn, &Response{OK: true, Restored: req.Text})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Write(conn, &Request{Op: OpPing, Text: "hello"}); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Restored != "hello" {
		t.Fatalf("resp = %+v", resp)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
