package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Request{Op: OpTransmit, User: "alice", Text: "the server is down"}
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Response{OK: true, Restored: "the server is down", SelectedDomain: "it",
		PayloadBytes: 25, LatencyMs: 14.2, Stats: &Stats{Messages: 3}}
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Restored != in.Restored || out.Stats.Messages != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestZeroTransmitFieldsSerialize(t *testing.T) {
	payload, err := json.Marshal(&Response{OK: true, Restored: "perfect"})
	if err != nil {
		t.Fatal(err)
	}
	// A flawless transmit (mismatch 0) must not be indistinguishable from
	// a response that never set the field.
	for _, field := range []string{`"mismatch"`, `"payload_bytes"`, `"latency_ms"`} {
		if !bytes.Contains(payload, []byte(field)) {
			t.Fatalf("zero-valued %s dropped from wire form %s", field, payload)
		}
	}
}

// header builds a wire header with the given version and payload length.
func header(version byte, n uint32) []byte {
	hdr := make([]byte, headerBytes)
	hdr[0] = version
	binary.LittleEndian.PutUint32(hdr[1:], n)
	return hdr
}

func TestReadRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(Version, MaxMessageBytes+1))
	if _, err := ReadRequest(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(Version, 100))
	buf.WriteString("short")
	if _, err := ReadRequest(&buf); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWriteEmitsVersionByte(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[0]; got != Version {
		t.Fatalf("frame starts with %d, want version byte %d", got, Version)
	}
}

func TestReadRejectsUnknownVersions(t *testing.T) {
	for _, v := range []byte{0, 2, 0x7f, 0xff} {
		var buf bytes.Buffer
		buf.Write(header(v, 2))
		buf.WriteString("{}")
		_, err := ReadRequest(&buf)
		var verr *VersionError
		if !errors.As(err, &verr) {
			t.Fatalf("version %d: err = %v, want *VersionError", v, err)
		}
		if verr.Got != v {
			t.Fatalf("VersionError.Got = %d, want %d", verr.Got, v)
		}
	}
}

func TestReadEOFPassthrough(t *testing.T) {
	if _, err := ReadRequest(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestReadGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(header(Version, 4))
	buf.WriteString("]]]]")
	if _, err := ReadRequest(&buf); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		req, err := ReadRequest(conn)
		if err != nil {
			done <- err
			return
		}
		done <- Write(conn, &Response{OK: true, Restored: req.Text})
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Write(conn, &Request{Op: OpPing, Text: "hello"}); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Restored != "hello" {
		t.Fatalf("resp = %+v", resp)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
