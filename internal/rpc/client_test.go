package rpc

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts one connection and answers requests until EOF,
// echoing Text for transmits, reporting fixed stats, and acknowledging
// everything else. It sends each received request to reqs when non-nil.
func echoServer(t *testing.T, ln net.Listener, reqs chan<- *Request) {
	t.Helper()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			req, version, err := ReadRequestV(conn)
			if err != nil {
				return
			}
			if reqs != nil {
				reqs <- req
			}
			resp := &Response{OK: true}
			if IsMeshOp(req.Op) && version != Version2 {
				resp.OK = false
				resp.Error = ErrMeshOpVersion.Error()
			} else {
				switch req.Op {
				case OpTransmit:
					resp.Restored = req.Text
				case OpStats:
					resp.Stats = &Stats{Messages: 9, Serve: &ServeStats{InFlight: 1}}
				case OpMove:
					resp.Handover = &Handover{From: "node-0", To: "node-1", Moved: true}
				case OpJoin:
					resp.Peers = []PeerInfo{{Name: "node-0", Index: 0, Addr: "127.0.0.1:1"}, *req.Peer}
				case OpPeerStats:
					resp.Node = &NodeStats{Name: "node-0", NeighborHits: 2}
				case OpFetchModel:
					if req.Fetch.Domain == "it" {
						resp.Model = &ModelPayload{Domain: "it", Version: 1, Params: []byte{5, 6}}
					}
				}
			}
			if err := WriteV(conn, version, resp); err != nil {
				return
			}
		}
	}()
}

func dialTest(t *testing.T, reqs chan<- *Request) *Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	echoServer(t, ln, reqs)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientCalls(t *testing.T) {
	c := dialTest(t, nil)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Transmit("alice", "the server is down")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Restored != "the server is down" {
		t.Fatalf("transmit resp = %+v", resp)
	}
	mv, err := c.Move("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Handover == nil || !mv.Handover.Moved {
		t.Fatalf("move resp = %+v", mv)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 9 || st.Serve == nil || st.Serve.InFlight != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientForwardsDeadline(t *testing.T) {
	reqs := make(chan *Request, 1)
	c := dialTest(t, reqs)
	// The forwarded DeadlineMs is the budget remaining when the frame is
	// written, so it lands just under the nominal value.
	if _, err := c.TransmitDeadline("alice", "hi", 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	req := <-reqs
	if req.DeadlineMs <= 100 || req.DeadlineMs > 250 {
		t.Fatalf("DeadlineMs = %g, want in (100, 250]", req.DeadlineMs)
	}
	// The default timeout applies when a call carries no deadline of its
	// own.
	c.SetTimeout(500 * time.Millisecond)
	if _, err := c.Transmit("alice", "hi"); err != nil {
		t.Fatal(err)
	}
	if req = <-reqs; req.DeadlineMs <= 250 || req.DeadlineMs > 500 {
		t.Fatalf("default DeadlineMs = %g, want in (250, 500]", req.DeadlineMs)
	}
}

func TestClientDoContext(t *testing.T) {
	reqs := make(chan *Request, 1)
	c := dialTest(t, reqs)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	resp, err := c.DoContext(ctx, &Request{Op: OpTransmit, User: "alice", Text: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Restored != "hello" {
		t.Fatalf("resp = %+v", resp)
	}
	req := <-reqs
	if req.DeadlineMs <= 0 || req.DeadlineMs > 300 {
		t.Fatalf("DeadlineMs = %g, want in (0, 300]", req.DeadlineMs)
	}
	// A cancelled context fails fast without touching the wire.
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if _, err := c.DoContext(cancelled, &Request{Op: OpPing}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClientContextCancelUnblocks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A server that accepts but never answers: cancelling the context must
	// unblock the exchange even though it carries no deadline.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := c.TransmitContext(ctx, "alice", "hi"); err == nil {
		t.Fatal("call against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel ignored: call blocked %v", elapsed)
	}
}

func TestClientMeshCalls(t *testing.T) {
	reqs := make(chan *Request, 1)
	c := dialTest(t, reqs)
	ctx := context.Background()

	peers, err := c.Join(ctx, PeerInfo{Name: "node-1", Index: 1, Addr: "127.0.0.1:2"})
	if err != nil {
		t.Fatal(err)
	}
	<-reqs
	if len(peers) != 2 || peers[1].Name != "node-1" {
		t.Fatalf("join peers = %+v", peers)
	}
	node, err := c.PeerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	<-reqs
	if node.Name != "node-0" || node.NeighborHits != 2 {
		t.Fatalf("peer stats = %+v", node)
	}
	m, err := c.FetchModel(ctx, FetchRequest{Domain: "it", Role: "codec"})
	if err != nil {
		t.Fatal(err)
	}
	<-reqs
	if m == nil || m.Domain != "it" {
		t.Fatalf("fetch hit = %+v", m)
	}
	miss, err := c.FetchModel(ctx, FetchRequest{Domain: "unknown", Role: "codec"})
	if err != nil {
		t.Fatal(err)
	}
	<-reqs
	if miss != nil {
		t.Fatalf("fetch miss returned %+v", miss)
	}
	if err := c.Leave(ctx, PeerInfo{Name: "node-1", Index: 1}); err != nil {
		t.Fatal(err)
	}
	req := <-reqs
	if req.Op != OpLeave || req.Peer == nil || req.Peer.Index != 1 {
		t.Fatalf("leave request = %+v", req)
	}
}

func TestClientDeadlineExpires(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A server that accepts but never answers: the call must fail by the
	// deadline instead of hanging.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.TransmitDeadline("alice", "hi", 50*time.Millisecond); err == nil {
		t.Fatal("call against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: call blocked %v", elapsed)
	}
}

func TestClientClosed(t *testing.T) {
	c := dialTest(t, nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Transmit("alice", "hi"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
