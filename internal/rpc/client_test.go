package rpc

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts one connection and answers requests until EOF,
// echoing Text for transmits, reporting fixed stats, and acknowledging
// everything else. It sends each received request to reqs when non-nil.
func echoServer(t *testing.T, ln net.Listener, reqs chan<- *Request) {
	t.Helper()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			req, err := ReadRequest(conn)
			if err != nil {
				return
			}
			if reqs != nil {
				reqs <- req
			}
			resp := &Response{OK: true}
			switch req.Op {
			case OpTransmit:
				resp.Restored = req.Text
			case OpStats:
				resp.Stats = &Stats{Messages: 9, Serve: &ServeStats{InFlight: 1}}
			case OpMove:
				resp.Handover = &Handover{From: "node-0", To: "node-1", Moved: true}
			}
			if err := Write(conn, resp); err != nil {
				return
			}
		}
	}()
}

func dialTest(t *testing.T, reqs chan<- *Request) *Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	echoServer(t, ln, reqs)
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientCalls(t *testing.T) {
	c := dialTest(t, nil)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Transmit("alice", "the server is down")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.Restored != "the server is down" {
		t.Fatalf("transmit resp = %+v", resp)
	}
	mv, err := c.Move("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Handover == nil || !mv.Handover.Moved {
		t.Fatalf("move resp = %+v", mv)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 9 || st.Serve == nil || st.Serve.InFlight != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientForwardsDeadline(t *testing.T) {
	reqs := make(chan *Request, 1)
	c := dialTest(t, reqs)
	if _, err := c.TransmitDeadline("alice", "hi", 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	req := <-reqs
	if req.DeadlineMs != 250 {
		t.Fatalf("DeadlineMs = %g, want 250", req.DeadlineMs)
	}
	// The default timeout applies when a call carries no deadline of its
	// own.
	c.SetTimeout(500 * time.Millisecond)
	if _, err := c.Transmit("alice", "hi"); err != nil {
		t.Fatal(err)
	}
	if req = <-reqs; req.DeadlineMs != 500 {
		t.Fatalf("default DeadlineMs = %g, want 500", req.DeadlineMs)
	}
}

func TestClientDeadlineExpires(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A server that accepts but never answers: the call must fail by the
	// deadline instead of hanging.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := c.TransmitDeadline("alice", "hi", 50*time.Millisecond); err == nil {
		t.Fatal("call against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: call blocked %v", elapsed)
	}
}

func TestClientClosed(t *testing.T) {
	c := dialTest(t, nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := c.Transmit("alice", "hi"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
