// Package rpc defines the length-prefixed JSON wire protocol spoken
// between the edged daemon and its clients: a uint32 little-endian length
// header followed by one JSON document.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxMessageBytes bounds a single wire message; larger frames are
// rejected to keep a malformed peer from exhausting memory.
const MaxMessageBytes = 1 << 20

// Op names the request operations.
const (
	// OpTransmit runs one message through the semantic pipeline.
	OpTransmit = "transmit"
	// OpMove attaches a user to a radio cell (cluster mode), triggering a
	// handover when the serving node changes.
	OpMove = "move"
	// OpStats returns system counters.
	OpStats = "stats"
	// OpPing checks liveness.
	OpPing = "ping"
)

// Request is a client-to-daemon message.
type Request struct {
	Op   string `json:"op"`
	User string `json:"user,omitempty"`
	Text string `json:"text,omitempty"`
	// Cell is the target radio cell for OpMove.
	Cell int `json:"cell,omitempty"`
}

// Response is a daemon-to-client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Transmit results. Mismatch, PayloadBytes and LatencyMs always
	// serialize: a perfect zero-mismatch transmit must stay
	// distinguishable from a response that never set the field.
	Restored       string  `json:"restored,omitempty"`
	SelectedDomain string  `json:"selected_domain,omitempty"`
	Mismatch       float64 `json:"mismatch"`
	PayloadBytes   int     `json:"payload_bytes"`
	LatencyMs      float64 `json:"latency_ms"`
	CacheHit       bool    `json:"cache_hit,omitempty"`
	Individual     bool    `json:"individual_model,omitempty"`
	UpdateFired    bool    `json:"update_fired,omitempty"`

	// Move results.
	Handover *Handover `json:"handover,omitempty"`

	// Stats results.
	Stats *Stats `json:"stats,omitempty"`
}

// Handover reports one OpMove outcome.
type Handover struct {
	// From and To name the old and new serving nodes.
	From string `json:"from"`
	To   string `json:"to"`
	// Moved is false when the user was already served by the target node.
	Moved bool `json:"moved"`
	// Models and MigratedBytes count the individual models shipped over
	// the mesh; LatencyMs is the simulated migration transfer time.
	Models        int     `json:"models"`
	MigratedBytes int64   `json:"migrated_bytes"`
	LatencyMs     float64 `json:"latency_ms"`
}

// Stats reports daemon counters.
type Stats struct {
	Messages       int     `json:"messages"`
	SenderHitRate  float64 `json:"sender_hit_rate"`
	SyncBytes      int64   `json:"sync_bytes"`
	SyncCount      int     `json:"sync_count"`
	CachedModels   int     `json:"cached_models"`
	CacheUsedBytes int64   `json:"cache_used_bytes"`

	// InFlight is the number of transmits being served right now.
	InFlight int `json:"in_flight"`
	// Latency percentiles of daemon-side transmit service time, in
	// milliseconds, from the daemon's streaming histogram.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// Cluster-mode counters (absent in single-sender mode).
	Nodes         []NodeStats `json:"nodes,omitempty"`
	Handovers     int64       `json:"handovers,omitempty"`
	MigratedBytes int64       `json:"migrated_bytes,omitempty"`
}

// NodeStats reports one cluster node's counters.
type NodeStats struct {
	Name           string  `json:"name"`
	Users          int     `json:"users"`
	HitRate        float64 `json:"hit_rate"`
	CachedModels   int     `json:"cached_models"`
	CacheUsedBytes int64   `json:"cache_used_bytes"`
	HandoversIn    int64   `json:"handovers_in"`
	HandoversOut   int64   `json:"handovers_out"`
	NeighborHits   int64   `json:"neighbor_hits"`
	NeighborServed int64   `json:"neighbor_served"`
	OriginFetches  int64   `json:"origin_fetches"`
}

// errFrameTooLarge reports an oversized wire frame.
var errFrameTooLarge = errors.New("rpc: frame exceeds MaxMessageBytes")

// Write marshals v and writes one framed message.
func Write(w io.Writer, v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: marshal: %w", err)
	}
	if len(payload) > MaxMessageBytes {
		return errFrameTooLarge
	}
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("rpc: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("rpc: write payload: %w", err)
	}
	return nil
}

// read reads one framed payload.
func read(r io.Reader) ([]byte, error) {
	hdr := make([]byte, 4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n > MaxMessageBytes {
		return nil, errFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("rpc: read payload: %w", err)
	}
	return payload, nil
}

// ReadRequest reads one framed Request.
func ReadRequest(r io.Reader) (*Request, error) {
	payload, err := read(r)
	if err != nil {
		return nil, err
	}
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("rpc: unmarshal request: %w", err)
	}
	return &req, nil
}

// ReadResponse reads one framed Response.
func ReadResponse(r io.Reader) (*Response, error) {
	payload, err := read(r)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, fmt.Errorf("rpc: unmarshal response: %w", err)
	}
	return &resp, nil
}
