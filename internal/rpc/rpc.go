// Package rpc defines the versioned, length-prefixed JSON wire protocol
// spoken between the edged daemon and its clients: a one-byte protocol
// version, a uint32 little-endian length header, then one JSON document.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the wire protocol version written by this build. The original
// unversioned framing is retroactively version 1; peers speaking any other
// version are rejected with *VersionError.
const Version = 1

// headerBytes is the framed-message header size: 1 version byte + 4-byte
// little-endian payload length.
const headerBytes = 5

// MaxMessageBytes bounds a single wire message; larger frames are
// rejected to keep a malformed peer from exhausting memory.
const MaxMessageBytes = 1 << 20

// Op names the request operations.
const (
	// OpTransmit runs one message through the semantic pipeline.
	OpTransmit = "transmit"
	// OpMove attaches a user to a radio cell (cluster mode), triggering a
	// handover when the serving node changes.
	OpMove = "move"
	// OpStats returns system counters.
	OpStats = "stats"
	// OpPing checks liveness.
	OpPing = "ping"
)

// Request is a client-to-daemon message.
type Request struct {
	Op   string `json:"op"`
	User string `json:"user,omitempty"`
	Text string `json:"text,omitempty"`
	// Cell is the target radio cell for OpMove.
	Cell int `json:"cell,omitempty"`
	// DeadlineMs is the client's remaining patience for this call in
	// milliseconds. Zero means no deadline. The daemon sheds the request
	// with an error instead of serving it when admission queueing alone
	// would exceed the deadline.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// Response is a daemon-to-client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Shed marks a request rejected by admission control (queue wait
	// exceeded the deadline or the shed threshold) rather than failed.
	Shed bool `json:"shed,omitempty"`

	// Transmit results. Mismatch, PayloadBytes and LatencyMs always
	// serialize: a perfect zero-mismatch transmit must stay
	// distinguishable from a response that never set the field.
	Restored       string  `json:"restored,omitempty"`
	SelectedDomain string  `json:"selected_domain,omitempty"`
	Mismatch       float64 `json:"mismatch"`
	PayloadBytes   int     `json:"payload_bytes"`
	LatencyMs      float64 `json:"latency_ms"`
	CacheHit       bool    `json:"cache_hit,omitempty"`
	Individual     bool    `json:"individual_model,omitempty"`
	UpdateFired    bool    `json:"update_fired,omitempty"`

	// Move results.
	Handover *Handover `json:"handover,omitempty"`

	// Stats results.
	Stats *Stats `json:"stats,omitempty"`
}

// Handover reports one OpMove outcome.
type Handover struct {
	// From and To name the old and new serving nodes.
	From string `json:"from"`
	To   string `json:"to"`
	// Moved is false when the user was already served by the target node.
	Moved bool `json:"moved"`
	// Models and MigratedBytes count the individual models shipped over
	// the mesh; LatencyMs is the simulated migration transfer time.
	Models        int     `json:"models"`
	MigratedBytes int64   `json:"migrated_bytes"`
	LatencyMs     float64 `json:"latency_ms"`
}

// Stats reports daemon counters.
type Stats struct {
	Messages       int     `json:"messages"`
	SenderHitRate  float64 `json:"sender_hit_rate"`
	SyncBytes      int64   `json:"sync_bytes"`
	SyncCount      int     `json:"sync_count"`
	CachedModels   int     `json:"cached_models"`
	CacheUsedBytes int64   `json:"cache_used_bytes"`

	// Serve carries the daemon's serve-path metrics: admission state,
	// latency and queue-wait histograms, and cross-request batching
	// counters. Nil when the responder predates the serve path (e.g. a
	// unit-test stub).
	Serve *ServeStats `json:"serve,omitempty"`

	// Cluster-mode counters (absent in single-sender mode).
	Nodes         []NodeStats `json:"nodes,omitempty"`
	Handovers     int64       `json:"handovers,omitempty"`
	MigratedBytes int64       `json:"migrated_bytes,omitempty"`
}

// ServeStats nests the serve-path metrics: what the daemon is doing right
// now (in-flight), how fast it has been (latency percentiles), how long
// admission queueing takes (queue-wait percentiles plus sheds), and how
// well the cross-request batcher is packing work (occupancy histogram).
type ServeStats struct {
	// InFlight is the number of transmits being served right now.
	InFlight int `json:"in_flight"`
	// Latency percentiles of daemon-side transmit service time, in
	// milliseconds, from the daemon's streaming histogram.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// Queue-wait percentiles measure time spent blocked on the
	// -max-inflight admission gate before service began, in milliseconds.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95Ms float64 `json:"queue_wait_p95_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	// Shed counts requests rejected by admission control.
	Shed int64 `json:"shed,omitempty"`

	// Batches counts batch executions by the cross-request collector, and
	// BatchedRequests the transmits served through them. Both stay zero
	// with batching off (-batch-window 0).
	Batches         int64 `json:"batches,omitempty"`
	BatchedRequests int64 `json:"batched_requests,omitempty"`
	// BatchOccupancy histograms requests-per-executed-batch into the
	// buckets 1, 2, 3–4, 5–8, 9–16 and 17+.
	BatchOccupancy [6]int64 `json:"batch_occupancy,omitempty"`
}

// BatchOccupancyLabels names the ServeStats.BatchOccupancy buckets, for
// printers.
var BatchOccupancyLabels = [6]string{"1", "2", "3-4", "5-8", "9-16", "17+"}

// NodeStats reports one cluster node's counters.
type NodeStats struct {
	Name           string  `json:"name"`
	Users          int     `json:"users"`
	HitRate        float64 `json:"hit_rate"`
	CachedModels   int     `json:"cached_models"`
	CacheUsedBytes int64   `json:"cache_used_bytes"`
	HandoversIn    int64   `json:"handovers_in"`
	HandoversOut   int64   `json:"handovers_out"`
	NeighborHits   int64   `json:"neighbor_hits"`
	NeighborServed int64   `json:"neighbor_served"`
	OriginFetches  int64   `json:"origin_fetches"`
}

// errFrameTooLarge reports an oversized wire frame.
var errFrameTooLarge = errors.New("rpc: frame exceeds MaxMessageBytes")

// VersionError reports a frame whose version byte does not match this
// build's protocol version.
type VersionError struct {
	// Got is the version byte received from the peer.
	Got byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("rpc: unsupported protocol version %d (want %d)", e.Got, Version)
}

// Write marshals v and writes one framed message.
func Write(w io.Writer, v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: marshal: %w", err)
	}
	if len(payload) > MaxMessageBytes {
		return errFrameTooLarge
	}
	hdr := make([]byte, headerBytes)
	hdr[0] = Version
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("rpc: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("rpc: write payload: %w", err)
	}
	return nil
}

// read reads one framed payload, rejecting unknown protocol versions.
func read(r io.Reader) ([]byte, error) {
	hdr := make([]byte, headerBytes)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	if hdr[0] != Version {
		return nil, &VersionError{Got: hdr[0]}
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxMessageBytes {
		return nil, errFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("rpc: read payload: %w", err)
	}
	return payload, nil
}

// ReadRequest reads one framed Request.
func ReadRequest(r io.Reader) (*Request, error) {
	payload, err := read(r)
	if err != nil {
		return nil, err
	}
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("rpc: unmarshal request: %w", err)
	}
	return &req, nil
}

// ReadResponse reads one framed Response.
func ReadResponse(r io.Reader) (*Response, error) {
	payload, err := read(r)
	if err != nil {
		return nil, err
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, fmt.Errorf("rpc: unmarshal response: %w", err)
	}
	return &resp, nil
}
