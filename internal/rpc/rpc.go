// Package rpc defines the versioned, length-prefixed JSON wire protocol
// spoken between the edged daemon and its clients: a one-byte protocol
// version, a uint32 little-endian length header, then one JSON document.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the wire protocol version written by this build for the
// client-facing ops (transmit/move/stats/ping). The original unversioned
// framing is retroactively version 1.
const Version = 1

// Version2 adds the mesh ops (join/leave/peer-stats/fetch-model/
// handover-push) spoken between edged peers. A v2 frame is identical
// framing with version byte 2; readers accept both versions and report
// which one arrived, so v1 clients keep working against a v2 daemon.
// Frames with any other version byte are rejected with *VersionError.
const Version2 = 2

// headerBytes is the framed-message header size: 1 version byte + 4-byte
// little-endian payload length.
const headerBytes = 5

// MaxMessageBytes bounds a single wire message; larger frames are
// rejected to keep a malformed peer from exhausting memory.
const MaxMessageBytes = 1 << 20

// Op names the request operations.
const (
	// OpTransmit runs one message through the semantic pipeline.
	OpTransmit = "transmit"
	// OpMove attaches a user to a radio cell (cluster mode), triggering a
	// handover when the serving node changes.
	OpMove = "move"
	// OpStats returns system counters.
	OpStats = "stats"
	// OpPing checks liveness.
	OpPing = "ping"
)

// Mesh ops, spoken between edged peers over v2 frames. A daemon rejects
// these on a v1 frame (see ErrMeshOpVersion) so pre-mesh clients cannot
// accidentally drive peer-only state transitions.
const (
	// OpJoin announces a peer coming online; Request.Peer identifies it.
	OpJoin = "join"
	// OpLeave announces a graceful shutdown; Request.Peer identifies it.
	OpLeave = "leave"
	// OpPeerStats returns the responding node's own NodeStats snapshot.
	OpPeerStats = "peer-stats"
	// OpFetchModel asks a peer whether its cache holds the model named by
	// Request.Fetch, returning the serialized parameters on a hit
	// (cooperative fetch over the mesh).
	OpFetchModel = "fetch-model"
	// OpHandoverPush ships a user's serving state (individual models plus
	// the per-user noise sequence) to the node taking ownership.
	OpHandoverPush = "handover-push"
)

// IsMeshOp reports whether op is peer-to-peer only and therefore requires
// a v2 frame.
func IsMeshOp(op string) bool {
	switch op {
	case OpJoin, OpLeave, OpPeerStats, OpFetchModel, OpHandoverPush:
		return true
	}
	return false
}

// ErrMeshOpVersion reports a mesh op carried on a v1 frame.
var ErrMeshOpVersion = errors.New("rpc: mesh op requires protocol version 2")

// Request is a client-to-daemon message.
type Request struct {
	Op   string `json:"op"`
	User string `json:"user,omitempty"`
	Text string `json:"text,omitempty"`
	// Cell is the target radio cell for OpMove.
	Cell int `json:"cell,omitempty"`
	// DeadlineMs is the client's remaining patience for this call in
	// milliseconds. Zero means no deadline. The daemon sheds the request
	// with an error instead of serving it when admission queueing alone
	// would exceed the deadline.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`

	// Peer identifies the calling node for OpJoin/OpLeave.
	Peer *PeerInfo `json:"peer,omitempty"`
	// Fetch names the model wanted by OpFetchModel.
	Fetch *FetchRequest `json:"fetch,omitempty"`
	// Handoff carries the migrating user state for OpHandoverPush.
	Handoff *HandoffPayload `json:"handoff,omitempty"`
}

// PeerInfo identifies one mesh member.
type PeerInfo struct {
	// Name is the node name ("node-0", ...); Index its mesh position.
	Name  string `json:"name"`
	Index int    `json:"index"`
	// Addr is the peer's mesh listen address, host:port.
	Addr string `json:"addr,omitempty"`
}

// FetchRequest names a model for OpFetchModel. The responder answers from
// its cache with Peek semantics (no eviction-policy or hit-stat
// distortion) and reports a plain miss, never forwarding to origin — the
// caller decides when to pay the uplink.
type FetchRequest struct {
	Domain string `json:"domain"`
	User   string `json:"user,omitempty"`
	Role   string `json:"role"`
}

// ModelPayload is a serialized model shipped between peers: the
// OpFetchModel hit response and each entry of a handover push.
type ModelPayload struct {
	Domain  string `json:"domain"`
	User    string `json:"user,omitempty"`
	Version int    `json:"version"`
	// Params is the full parameter payload in nn.ParamSet wire form
	// (base64 over JSON).
	Params []byte `json:"params"`
}

// HandoffModel is one individual model inside a handover push, tagged
// with the pipeline side it personalizes.
type HandoffModel struct {
	// Side is "sender" or "receiver".
	Side  string       `json:"side"`
	Model ModelPayload `json:"model"`
}

// Handover-push reasons. The empty reason is a mobility handover (OpMove
// changed the user's serving node); drain and replica pushes reuse the
// same op with an explicit tag so receivers can pin accordingly.
const (
	// HandoffDrain marks a push from a gracefully departing member: the
	// receiver is the new consistent-hash owner and installs shipped
	// general models pinned.
	HandoffDrain = "drain"
	// HandoffReplica marks a proactive hot-model replica push: the
	// receiver installs shipped general models unpinned, as a cache hint.
	HandoffReplica = "replica"
)

// HandoffPayload is the complete user state shipped by OpHandoverPush:
// every individual model both pipeline sides hold for the user, plus the
// per-user channel-noise sequence counter so the user's noise stream
// continues bit-identically on the new owner. Drain pushes additionally
// carry the user's selection-filter posterior and buffered federated
// transactions, so the stream continues exactly where it left off, and
// may ship general models (as do replica pushes) with User empty.
type HandoffPayload struct {
	User     string         `json:"user"`
	FromNode string         `json:"from_node"`
	NoiseSeq uint64         `json:"noise_seq"`
	Models   []HandoffModel `json:"models,omitempty"`
	// Reason tags the push: "" (mobility), HandoffDrain or HandoffReplica.
	Reason string `json:"reason,omitempty"`
	// General carries general (user-independent) models pushed by drain
	// rebalancing or hot-model replication.
	General []ModelPayload `json:"general,omitempty"`
	// Belief is the user's domain-selection posterior (sticky selector).
	Belief []float64 `json:"belief,omitempty"`
	// Buffers are the user's pending federated-update transactions.
	Buffers []BufferState `json:"buffers,omitempty"`
}

// BufferState is one (user, domain) federated-update buffer in wire form.
type BufferState struct {
	Domain string    `json:"domain"`
	Txs    []TxState `json:"txs,omitempty"`
}

// TxState is one buffered transaction: the surface token ids, the concept
// ids the encoder chose, and the decoder's reconstruction.
type TxState struct {
	Surfaces []int `json:"surfaces,omitempty"`
	Concepts []int `json:"concepts,omitempty"`
	Decoded  []int `json:"decoded,omitempty"`
}

// Response is a daemon-to-client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	// Shed marks a request rejected by admission control (queue wait
	// exceeded the deadline or the shed threshold) rather than failed.
	Shed bool `json:"shed,omitempty"`

	// Draining marks a request refused because the member is gracefully
	// leaving the mesh. The response is only written after the member has
	// handed its state off, so a client that retries against the surviving
	// membership finds the user's state already at the new owner.
	Draining bool `json:"draining,omitempty"`

	// Transmit results. Mismatch, PayloadBytes and LatencyMs always
	// serialize: a perfect zero-mismatch transmit must stay
	// distinguishable from a response that never set the field.
	Restored       string  `json:"restored,omitempty"`
	SelectedDomain string  `json:"selected_domain,omitempty"`
	Mismatch       float64 `json:"mismatch"`
	PayloadBytes   int     `json:"payload_bytes"`
	LatencyMs      float64 `json:"latency_ms"`
	CacheHit       bool    `json:"cache_hit,omitempty"`
	Individual     bool    `json:"individual_model,omitempty"`
	UpdateFired    bool    `json:"update_fired,omitempty"`

	// Move results.
	Handover *Handover `json:"handover,omitempty"`

	// Stats results.
	Stats *Stats `json:"stats,omitempty"`

	// Mesh results. Model answers an OpFetchModel hit (nil on miss, with
	// OK still true); Node answers OpPeerStats; Peers lists the
	// responder's current view of the mesh membership for OpJoin.
	Model *ModelPayload `json:"model,omitempty"`
	Node  *NodeStats    `json:"node,omitempty"`
	Peers []PeerInfo    `json:"peers,omitempty"`
}

// Handover reports one OpMove outcome.
type Handover struct {
	// From and To name the old and new serving nodes.
	From string `json:"from"`
	To   string `json:"to"`
	// Moved is false when the user was already served by the target node.
	Moved bool `json:"moved"`
	// Models and MigratedBytes count the individual models shipped over
	// the mesh; LatencyMs is the simulated migration transfer time.
	Models        int     `json:"models"`
	MigratedBytes int64   `json:"migrated_bytes"`
	LatencyMs     float64 `json:"latency_ms"`
}

// Stats reports daemon counters.
type Stats struct {
	Messages       int     `json:"messages"`
	SenderHitRate  float64 `json:"sender_hit_rate"`
	SyncBytes      int64   `json:"sync_bytes"`
	SyncCount      int     `json:"sync_count"`
	CachedModels   int     `json:"cached_models"`
	CacheUsedBytes int64   `json:"cache_used_bytes"`

	// Serve carries the daemon's serve-path metrics: admission state,
	// latency and queue-wait histograms, and cross-request batching
	// counters. Nil when the responder predates the serve path (e.g. a
	// unit-test stub).
	Serve *ServeStats `json:"serve,omitempty"`

	// Cluster-mode counters (absent in single-sender mode).
	Nodes         []NodeStats `json:"nodes,omitempty"`
	Handovers     int64       `json:"handovers,omitempty"`
	MigratedBytes int64       `json:"migrated_bytes,omitempty"`
}

// ServeStats nests the serve-path metrics: what the daemon is doing right
// now (in-flight), how fast it has been (latency percentiles), how long
// admission queueing takes (queue-wait percentiles plus sheds), and how
// well the cross-request batcher is packing work (occupancy histogram).
type ServeStats struct {
	// InFlight is the number of transmits being served right now.
	InFlight int `json:"in_flight"`
	// Latency percentiles of daemon-side transmit service time, in
	// milliseconds, from the daemon's streaming histogram.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// Queue-wait percentiles measure time spent blocked on the
	// -max-inflight admission gate before service began, in milliseconds.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95Ms float64 `json:"queue_wait_p95_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	// Shed counts requests rejected by admission control.
	Shed int64 `json:"shed,omitempty"`

	// Batches counts batch executions by the cross-request collector, and
	// BatchedRequests the transmits served through them. Both stay zero
	// with batching off (-batch-window 0).
	Batches         int64 `json:"batches,omitempty"`
	BatchedRequests int64 `json:"batched_requests,omitempty"`
	// BatchOccupancy histograms requests-per-executed-batch into the
	// buckets 1, 2, 3–4, 5–8, 9–16 and 17+.
	BatchOccupancy [6]int64 `json:"batch_occupancy,omitempty"`
}

// BatchOccupancyLabels names the ServeStats.BatchOccupancy buckets, for
// printers.
var BatchOccupancyLabels = [6]string{"1", "2", "3-4", "5-8", "9-16", "17+"}

// NodeStats reports one cluster node's counters. The field set mirrors
// cluster.NodeStats one-for-one (FetchLatency carried as milliseconds) so
// per-process mesh snapshots and single-process cluster snapshots
// aggregate through the same code.
type NodeStats struct {
	Name           string  `json:"name"`
	Users          int     `json:"users"`
	HitRate        float64 `json:"hit_rate"`
	CachedModels   int     `json:"cached_models"`
	CacheUsedBytes int64   `json:"cache_used_bytes"`
	HandoversIn    int64   `json:"handovers_in"`
	HandoversOut   int64   `json:"handovers_out"`
	NeighborHits   int64   `json:"neighbor_hits"`
	NeighborBytes  int64   `json:"neighbor_bytes,omitempty"`
	NeighborServed int64   `json:"neighbor_served"`
	OriginFetches  int64   `json:"origin_fetches"`
	OriginBytes    int64   `json:"origin_bytes,omitempty"`
	FetchLatencyMs float64 `json:"fetch_latency_ms,omitempty"`

	// Generals lists the domains whose general model this node's sender
	// cache currently holds. Peers use it for coordinated eviction (never
	// evict the mesh's last copy) and to skip redundant drain pushes.
	Generals []string `json:"generals,omitempty"`
	// Hot reports per-domain transmit counts, hottest first — the
	// popularity signal replication promotes on, piggybacked on the
	// OpPeerStats probe exchange.
	Hot []DomainHeat `json:"hot,omitempty"`
	// ReplicasOut counts general-model replicas this node pushed to its
	// ring-successors; ReplicasIn counts replicas it received.
	ReplicasOut int64 `json:"replicas_out,omitempty"`
	ReplicasIn  int64 `json:"replicas_in,omitempty"`
}

// DomainHeat is one entry of NodeStats.Hot.
type DomainHeat struct {
	Domain string `json:"domain"`
	Count  int64  `json:"count"`
}

// Merge folds other's counters into s, so per-process stats scraped from
// N mesh daemons aggregate to the same totals a single-process cluster
// reports: additive counters sum, SenderHitRate re-weights by Messages,
// and Nodes concatenates. Serve percentiles are per-process measurements
// with no meaningful cross-process merge; s keeps its own Serve snapshot
// untouched except for the additive shed/batch counters.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	total := s.Messages + other.Messages
	if total > 0 {
		s.SenderHitRate = (s.SenderHitRate*float64(s.Messages) +
			other.SenderHitRate*float64(other.Messages)) / float64(total)
	}
	s.Messages = total
	s.SyncBytes += other.SyncBytes
	s.SyncCount += other.SyncCount
	s.CachedModels += other.CachedModels
	s.CacheUsedBytes += other.CacheUsedBytes
	s.Handovers += other.Handovers
	s.MigratedBytes += other.MigratedBytes
	s.Nodes = append(s.Nodes, other.Nodes...)
	if other.Serve != nil {
		if s.Serve == nil {
			s.Serve = &ServeStats{}
		}
		s.Serve.InFlight += other.Serve.InFlight
		s.Serve.Shed += other.Serve.Shed
		s.Serve.Batches += other.Serve.Batches
		s.Serve.BatchedRequests += other.Serve.BatchedRequests
		for i := range s.Serve.BatchOccupancy {
			s.Serve.BatchOccupancy[i] += other.Serve.BatchOccupancy[i]
		}
	}
}

// errFrameTooLarge reports an oversized wire frame.
var errFrameTooLarge = errors.New("rpc: frame exceeds MaxMessageBytes")

// VersionError reports a frame whose version byte is not a protocol
// version this build understands (1 or 2).
type VersionError struct {
	// Got is the version byte received from the peer.
	Got byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("rpc: unsupported protocol version %d (want %d or %d)", e.Got, Version, Version2)
}

// Write marshals v and writes one framed v1 message.
func Write(w io.Writer, v interface{}) error {
	return WriteV(w, Version, v)
}

// WriteV marshals v and writes one framed message with an explicit
// protocol version byte. Mesh traffic uses Version2.
func WriteV(w io.Writer, version byte, v interface{}) error {
	if version != Version && version != Version2 {
		return &VersionError{Got: version}
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("rpc: marshal: %w", err)
	}
	if len(payload) > MaxMessageBytes {
		return errFrameTooLarge
	}
	hdr := make([]byte, headerBytes)
	hdr[0] = version
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("rpc: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("rpc: write payload: %w", err)
	}
	return nil
}

// read reads one framed payload and the version byte that carried it,
// rejecting unknown protocol versions.
func read(r io.Reader) ([]byte, byte, error) {
	hdr := make([]byte, headerBytes)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, 0, err // io.EOF passes through for clean shutdown
	}
	if hdr[0] != Version && hdr[0] != Version2 {
		return nil, 0, &VersionError{Got: hdr[0]}
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxMessageBytes {
		return nil, 0, errFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("rpc: read payload: %w", err)
	}
	return payload, hdr[0], nil
}

// ReadRequest reads one framed Request, accepting either protocol
// version. Servers that must gate mesh ops on the frame version use
// ReadRequestV.
func ReadRequest(r io.Reader) (*Request, error) {
	req, _, err := ReadRequestV(r)
	return req, err
}

// ReadRequestV reads one framed Request and reports the protocol version
// it arrived on.
func ReadRequestV(r io.Reader) (*Request, byte, error) {
	payload, version, err := read(r)
	if err != nil {
		return nil, 0, err
	}
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, 0, fmt.Errorf("rpc: unmarshal request: %w", err)
	}
	return &req, version, nil
}

// ReadResponse reads one framed Response, accepting either protocol
// version.
func ReadResponse(r io.Reader) (*Response, error) {
	resp, _, err := ReadResponseV(r)
	return resp, err
}

// ReadResponseV reads one framed Response and reports the protocol
// version it arrived on.
func ReadResponseV(r io.Reader) (*Response, byte, error) {
	payload, version, err := read(r)
	if err != nil {
		return nil, 0, err
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, 0, fmt.Errorf("rpc: unmarshal response: %w", err)
	}
	return &resp, version, nil
}
