// Package sim is a minimal deterministic discrete-event simulation engine:
// a virtual clock and an event queue with stable ordering. Experiments use
// it to account for compute, queueing and transfer latency without any
// wall-clock dependence.
package sim

import (
	"container/heap"
	"errors"
	"time"
)

// errPastEvent reports scheduling into the past.
var errPastEvent = errors.New("sim: cannot schedule event before current time")

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap orders events by time, then insertion sequence (stable).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Engine runs events in virtual time. It is not safe for concurrent use:
// simulations are single-threaded by design for determinism.
type Engine struct {
	now    time.Duration
	queue  eventHeap
	seq    uint64
	ran    uint64
	maxLen int
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.ran }

// Schedule queues fn to run after delay. Negative delays are an error.
func (e *Engine) Schedule(delay time.Duration, fn func()) error {
	if delay < 0 {
		return errPastEvent
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn at an absolute virtual time, which must not precede
// the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) error {
	if at < e.now {
		return errPastEvent
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
	if len(e.queue) > e.maxLen {
		e.maxLen = len(e.queue)
	}
	return nil
}

// Step executes the next event, advancing the clock. It returns false when
// the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.at
	e.ran++
	ev.fn()
	return true
}

// Run executes events until the queue drains, returning the final time.
func (e *Engine) Run() time.Duration {
	for e.Step() {
	}
	return e.now
}

// RunUntil executes events with time <= deadline, then sets the clock to
// deadline if it has not passed it. Events scheduled later stay queued.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
