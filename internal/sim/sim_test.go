package sim

import (
	"testing"
	"time"
)

func TestScheduleAndRun(t *testing.T) {
	e := NewEngine()
	var order []int
	if err := e.Schedule(20*time.Millisecond, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Schedule(10*time.Millisecond, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	end := e.Run()
	if end != 20*time.Millisecond {
		t.Fatalf("final time = %v", end)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
	if e.Processed() != 2 {
		t.Fatalf("Processed = %d", e.Processed())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if err := e.Schedule(time.Millisecond, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestScheduleNegativeDelay(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(-time.Millisecond, func() {}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestScheduleAtPast(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(10*time.Millisecond, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.ScheduleAt(5*time.Millisecond, func() {}); err == nil {
		t.Fatal("past ScheduleAt accepted")
	}
}

func TestEventsScheduleMoreEvents(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	var chain func()
	count := 0
	chain = func() {
		fired = append(fired, e.Now())
		count++
		if count < 3 {
			if err := e.Schedule(5*time.Millisecond, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.Schedule(5*time.Millisecond, chain); err != nil {
		t.Fatal(err)
	}
	e.Run()
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond}
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	for _, d := range []time.Duration{1, 2, 3, 10, 20} {
		if err := e.Schedule(d*time.Millisecond, func() { ran++ }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(5 * time.Millisecond)
	if ran != 3 {
		t.Fatalf("ran = %d events by t=5ms, want 3", ran)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now = %v, want 5ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Run()
	if ran != 5 {
		t.Fatalf("ran = %d after full Run", ran)
	}
}

func TestStepEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	if e.Now() != 0 {
		t.Fatal("clock moved with no events")
	}
}

func TestManyEventsDeterministic(t *testing.T) {
	run := func() []time.Duration {
		e := NewEngine()
		var fired []time.Duration
		for i := 0; i < 100; i++ {
			d := time.Duration((i*37)%50) * time.Millisecond
			if err := e.Schedule(d, func() { fired = append(fired, e.Now()) }); err != nil {
				t.Fatal(err)
			}
		}
		e.Run()
		return fired
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("engine not deterministic")
		}
	}
	// Times must be non-decreasing.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatal("event times not monotone")
		}
	}
}
