// Package metrics provides the small statistics and table-rendering
// utilities shared by the benchmark harness: streaming mean/variance,
// percentiles and fixed-width experiment tables.
package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Welford accumulates mean and variance in a single streaming pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// CI95 returns the 95% confidence half-interval of the mean under a normal
// approximation.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.Std() / math.Sqrt(float64(w.n))
}

// Percentile returns the p-th percentile (0-100) of values using linear
// interpolation; it copies and sorts internally. It returns 0 for empty
// input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Durations accumulates latency observations for percentile reporting.
type Durations struct {
	ds []time.Duration
}

// Add records one duration.
func (d *Durations) Add(v time.Duration) { d.ds = append(d.ds, v) }

// N returns the number of observations.
func (d *Durations) N() int { return len(d.ds) }

// P returns the p-th percentile duration.
func (d *Durations) P(p float64) time.Duration {
	vals := make([]float64, len(d.ds))
	for i, v := range d.ds {
		vals[i] = float64(v)
	}
	return time.Duration(Percentile(vals, p))
}

// Mean returns the mean duration (0 when empty).
func (d *Durations) Mean() time.Duration {
	if len(d.ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, v := range d.ds {
		total += v
	}
	return total / time.Duration(len(d.ds))
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Table renders experiment results as a fixed-width text table. The zero
// value is unusable; set Title and Header via NewTable.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
