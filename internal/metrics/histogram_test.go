package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if h.N() != 0 || h.Mean() != 0 || h.P(50) != 0 {
		t.Fatalf("empty histogram not zero: n=%d mean=%v p50=%v", h.N(), h.Mean(), h.P(50))
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(1e-3, 1e5, 10)
	// Uniform ramp 1..1000 ms: quantiles are known exactly.
	for v := 1.0; v <= 1000; v++ {
		h.Observe(v)
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
	ratio := math.Pow(10, 0.1)
	for _, tc := range []struct{ p, want float64 }{
		{50, 500}, {95, 950}, {99, 990},
	} {
		got := h.P(tc.p)
		// Log-spaced buckets bound the relative error by one bucket ratio.
		if got < tc.want/ratio || got > tc.want*ratio {
			t.Fatalf("P(%v) = %v, want within one bucket of %v", tc.p, got, tc.want)
		}
	}
	wantMean := 500.5
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(1, 100, 5)
	h.Observe(0.001) // underflow
	h.Observe(-4)    // negative: underflow, still counted
	h.Observe(1e9)   // overflow
	if h.N() != 3 {
		t.Fatalf("n = %d", h.N())
	}
	if got := h.P(1); got != 1 {
		t.Fatalf("underflow quantile = %v, want clamped to lo", got)
	}
	if got := h.P(99.9); got != 100 {
		t.Fatalf("overflow quantile = %v, want clamped to hi", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(1, 1000, 10)
	// Exact bucket boundaries must not panic or land out of range.
	for i := 0; i < 30; i++ {
		h.Observe(math.Pow(10, float64(i)/10))
	}
	if h.N() != 30 {
		t.Fatalf("n = %d", h.N())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const workers, each = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(1+(w*each+i)%500) * 0.1)
			}
		}(w)
	}
	wg.Wait()
	if h.N() != workers*each {
		t.Fatalf("lost observations: n = %d, want %d", h.N(), workers*each)
	}
	if p50 := h.P(50); p50 <= 0 {
		t.Fatalf("p50 = %v after %d observations", p50, h.N())
	}
	// Sum is order-independent up to FP association; bound loosely.
	want := 0.0
	for i := 0; i < workers*each; i++ {
		want += float64(1+i%500) * 0.1
	}
	if math.Abs(h.Mean()-want/float64(workers*each)) > 1e-6 {
		t.Fatalf("mean = %v, want ~%v", h.Mean(), want/float64(workers*each))
	}
}
