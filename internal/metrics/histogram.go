package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a streaming histogram over positive values with fixed
// log-spaced buckets. It keeps O(buckets) memory regardless of how many
// observations it absorbs, and is safe for concurrent use: Observe is a
// single atomic increment, so request paths can record into a shared
// instance without locking.
//
// Quantiles are approximate: the answer is exact to within one bucket
// ratio (e.g. ~26% width at 10 buckets per decade), which is ample for
// latency reporting. Values below Lo land in an underflow bucket and
// report as Lo; values at or above Hi land in an overflow bucket and
// report as Hi.
type Histogram struct {
	lo, hi  float64
	invLogR float64 // 1 / ln(ratio)
	logLo   float64
	ratio   float64
	counts  []atomic.Int64
	under   atomic.Int64
	over    atomic.Int64
	n       atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram covering [lo, hi) with perDecade
// log-spaced buckets per factor of ten. It panics on invalid bounds; the
// bounds are compile-time choices, not runtime input.
func NewHistogram(lo, hi float64, perDecade int) *Histogram {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic(fmt.Sprintf("metrics: invalid histogram layout lo=%g hi=%g perDecade=%d", lo, hi, perDecade))
	}
	nBuckets := int(math.Ceil(math.Log10(hi/lo) * float64(perDecade)))
	ratio := math.Pow(10, 1/float64(perDecade))
	return &Histogram{
		lo:      lo,
		hi:      hi,
		ratio:   ratio,
		invLogR: 1 / math.Log(ratio),
		logLo:   math.Log(lo),
		counts:  make([]atomic.Int64, nBuckets),
	}
}

// NewLatencyHistogram returns the layout shared by the daemon and the load
// generator: 1µs to 100s in milliseconds, 10 buckets per decade.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(1e-3, 1e5, 10)
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v float64) {
	h.n.Add(1)
	h.addSum(v)
	switch {
	case v < h.lo:
		h.under.Add(1)
	case v >= h.hi:
		h.over.Add(1)
	default:
		i := int((math.Log(v) - h.logLo) * h.invLogR)
		// Guard the edges against floating-point rounding.
		if i < 0 {
			i = 0
		} else if i >= len(h.counts) {
			i = len(h.counts) - 1
		}
		h.counts[i].Add(1)
	}
}

// addSum atomically accumulates the running sum of observations.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n.Load() }

// Mean returns the mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load()) / float64(n)
}

// P returns the p-th percentile (0-100), log-interpolated within the
// containing bucket. Concurrent Observe calls make the answer a snapshot,
// not an instant: each counter is read once, in order.
func (h *Histogram) P(p float64) float64 {
	total := h.under.Load()
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	total += h.over.Load()
	if total == 0 {
		return 0
	}
	rank := p / 100 * float64(total)
	cum := float64(h.under.Load())
	if rank <= cum && cum > 0 {
		return h.lo
	}
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			frac := (rank - cum) / c
			lower := h.lo * math.Pow(h.ratio, float64(i))
			return lower * math.Pow(h.ratio, frac)
		}
		cum += c
	}
	return h.hi
}
