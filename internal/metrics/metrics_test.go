package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordAgainstDirect(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, v := range vals {
		w.Add(v)
	}
	if w.N() != len(vals) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.CI95() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatal("single observation stats wrong")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {200, 5},
	}
	for _, tc := range tests {
		if got := Percentile(vals, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Interpolation between points.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestDurations(t *testing.T) {
	var d Durations
	if d.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	d.Add(10 * time.Millisecond)
	d.Add(20 * time.Millisecond)
	d.Add(30 * time.Millisecond)
	if d.N() != 3 {
		t.Fatalf("N = %d", d.N())
	}
	if d.Mean() != 20*time.Millisecond {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if d.P(50) != 20*time.Millisecond {
		t.Fatalf("P50 = %v", d.P(50))
	}
	if d.P(100) != 30*time.Millisecond {
		t.Fatalf("P100 = %v", d.P(100))
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("E1: fidelity vs SNR", "snr", "semantic", "traditional")
	tbl.AddRow("-6", "0.81", "0.12")
	tbl.AddRow("18", "0.99", "1.00")
	out := tbl.String()
	if !strings.Contains(out, "E1: fidelity vs SNR") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "snr") || !strings.Contains(out, "semantic") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "0.81") || !strings.Contains(out, "1.00") {
		t.Fatal("rows missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("", "a", "b", "c")
	tbl.AddRow("only")
	out := tbl.String()
	if !strings.Contains(out, "only") {
		t.Fatal("row missing")
	}
}

func TestF(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatalf("F = %q", F(1.23456, 2))
	}
	if F(2, 0) != "2" {
		t.Fatalf("F = %q", F(2, 0))
	}
}

// Property: Welford mean matches the arithmetic mean for any inputs.
func TestWelfordQuick(t *testing.T) {
	f := func(raw [16]float64) bool {
		var w Welford
		sum := 0.0
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e9)
			w.Add(v)
			sum += v
			n++
		}
		if n == 0 {
			return true
		}
		direct := sum / float64(n)
		return math.Abs(w.Mean()-direct) <= 1e-6*(1+math.Abs(direct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileQuick(t *testing.T) {
	f := func(raw [12]float64, p1, p2 float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			vals = append(vals, math.Mod(v, 1e6))
		}
		if len(vals) == 0 {
			return true
		}
		p1 = math.Abs(math.Mod(p1, 100))
		p2 = math.Abs(math.Mod(p2, 100))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(vals, 0), Percentile(vals, 100)
		a, b := Percentile(vals, p1), Percentile(vals, p2)
		return a <= b+1e-9 && a >= lo-1e-9 && b <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
