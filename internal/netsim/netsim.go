// Package netsim models the network substrate between users, edge servers
// and the cloud origin: point-to-point links with propagation latency and
// finite bandwidth, composed into a named topology. Transfer times are
// computed analytically in virtual time, keeping experiments deterministic.
package netsim

import (
	"fmt"
	"sort"
	"time"
)

// Link is a directed point-to-point connection.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// BandwidthBps is the link throughput in bits per second; values <= 0
	// mean infinite bandwidth (latency-only links).
	BandwidthBps float64
}

// TransferTime returns the virtual time to move size bytes across the
// link: propagation latency plus serialization time.
func (l Link) TransferTime(size int64) time.Duration {
	d := l.Latency
	if l.BandwidthBps > 0 && size > 0 {
		seconds := float64(size*8) / l.BandwidthBps
		d += time.Duration(seconds * float64(time.Second))
	}
	return d
}

// Topology is a set of named nodes and directed links.
type Topology struct {
	links map[[2]string]Link
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{links: make(map[[2]string]Link, 8)}
}

// Connect adds a bidirectional link between a and b.
func (t *Topology) Connect(a, b string, l Link) {
	t.links[[2]string{a, b}] = l
	t.links[[2]string{b, a}] = l
}

// ConnectDirected adds a one-way link from a to b.
func (t *Topology) ConnectDirected(a, b string, l Link) {
	t.links[[2]string{a, b}] = l
}

// Link returns the direct link from a to b.
func (t *Topology) Link(a, b string) (Link, bool) {
	l, ok := t.links[[2]string{a, b}]
	return l, ok
}

// TransferTime returns the time to move size bytes from a to b over the
// direct link, or an error when no link exists.
func (t *Topology) TransferTime(a, b string, size int64) (time.Duration, error) {
	l, ok := t.Link(a, b)
	if !ok {
		return 0, fmt.Errorf("netsim: no link %s -> %s", a, b)
	}
	return l.TransferTime(size), nil
}

// Nodes returns the sorted set of node names appearing in any link.
func (t *Topology) Nodes() []string {
	set := make(map[string]struct{}, 2*len(t.links))
	for k := range t.links {
		set[k[0]] = struct{}{}
		set[k[1]] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
