package netsim

import (
	"testing"
	"time"
)

func TestTransferTimeLatencyOnly(t *testing.T) {
	l := Link{Latency: 10 * time.Millisecond}
	if got := l.TransferTime(1 << 20); got != 10*time.Millisecond {
		t.Fatalf("latency-only transfer = %v", got)
	}
}

func TestTransferTimeWithBandwidth(t *testing.T) {
	// 1 Mbps link, 1000 bytes = 8000 bits -> 8 ms serialization + 2 ms.
	l := Link{Latency: 2 * time.Millisecond, BandwidthBps: 1e6}
	got := l.TransferTime(1000)
	want := 10 * time.Millisecond
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Fatalf("TransferTime = %v, want ~%v", got, want)
	}
}

func TestTransferTimeZeroBytes(t *testing.T) {
	l := Link{Latency: 5 * time.Millisecond, BandwidthBps: 1e6}
	if got := l.TransferTime(0); got != 5*time.Millisecond {
		t.Fatalf("zero-byte transfer = %v", got)
	}
}

func TestTransferTimeMonotoneInSize(t *testing.T) {
	l := Link{Latency: time.Millisecond, BandwidthBps: 1e8}
	prev := time.Duration(0)
	for _, size := range []int64{0, 100, 10000, 1000000} {
		d := l.TransferTime(size)
		if d < prev {
			t.Fatalf("TransferTime not monotone: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestTopologyConnect(t *testing.T) {
	topo := NewTopology()
	topo.Connect("edge1", "cloud", Link{Latency: 40 * time.Millisecond})
	if _, ok := topo.Link("edge1", "cloud"); !ok {
		t.Fatal("forward link missing")
	}
	if _, ok := topo.Link("cloud", "edge1"); !ok {
		t.Fatal("reverse link missing")
	}
	if _, ok := topo.Link("edge1", "edge2"); ok {
		t.Fatal("phantom link present")
	}
}

func TestTopologyConnectDirected(t *testing.T) {
	topo := NewTopology()
	topo.ConnectDirected("a", "b", Link{Latency: time.Millisecond})
	if _, ok := topo.Link("a", "b"); !ok {
		t.Fatal("directed link missing")
	}
	if _, ok := topo.Link("b", "a"); ok {
		t.Fatal("directed link should be one-way")
	}
}

func TestTopologyTransferTime(t *testing.T) {
	topo := NewTopology()
	topo.Connect("a", "b", Link{Latency: 3 * time.Millisecond})
	d, err := topo.TransferTime("a", "b", 100)
	if err != nil || d != 3*time.Millisecond {
		t.Fatalf("TransferTime = %v, %v", d, err)
	}
	if _, err := topo.TransferTime("a", "zzz", 100); err == nil {
		t.Fatal("missing link should error")
	}
}

func TestTopologyNodes(t *testing.T) {
	topo := NewTopology()
	topo.Connect("edge2", "cloud", Link{})
	topo.Connect("edge1", "cloud", Link{})
	nodes := topo.Nodes()
	want := []string{"cloud", "edge1", "edge2"}
	if len(nodes) != len(want) {
		t.Fatalf("Nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", nodes, want)
		}
	}
}
