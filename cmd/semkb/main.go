// Command semkb manages knowledge-base model files: pretrain the
// domain-specialized general codecs and persist them to disk, inspect a
// saved model, or verify a directory of models against the corpus.
//
// Usage:
//
//	semkb -pretrain -out ./kb                 # write one .kbm per domain
//	semkb -inspect ./kb/it.kbm                # print model metadata
//	semkb -verify ./kb                        # reload + self-check all models
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/semantic"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("semkb: %v", err)
	}
}

func run() error {
	var (
		pretrain = flag.Bool("pretrain", false, "pretrain general models and write them to -out")
		out      = flag.String("out", "./kb", "output directory for -pretrain")
		inspect  = flag.String("inspect", "", "print metadata for one .kbm file")
		verify   = flag.String("verify", "", "reload every .kbm in a directory and self-check")
		seed     = flag.Uint64("seed", 1, "pretraining seed")
	)
	flag.Parse()

	switch {
	case *pretrain:
		return runPretrain(*out, *seed)
	case *inspect != "":
		return runInspect(*inspect)
	case *verify != "":
		return runVerify(*verify)
	default:
		flag.Usage()
		return fmt.Errorf("one of -pretrain, -inspect or -verify is required")
	}
}

// runPretrain trains and persists every domain's general codec.
func runPretrain(dir string, seed uint64) error {
	corp := corpus.Build()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range corp.Domains {
		t0 := time.Now()
		codec := semantic.Pretrain(d, corp, semantic.Config{Seed: seed})
		path := filepath.Join(dir, d.Name+".kbm")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		n, err := codec.WriteTo(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Printf("%-14s -> %s (%d bytes, trained in %v)\n",
			d.Name, path, n, time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// runInspect prints one model's metadata.
func runInspect(path string) error {
	corp := corpus.Build()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	codec, err := semantic.ReadCodec(f, corp)
	if err != nil {
		return err
	}
	cfg := codec.Config()
	d := codec.Domain()
	fmt.Printf("domain        : %s\n", d.Name)
	fmt.Printf("lexicon       : %d surfaces, %d concepts (%d function)\n",
		d.VocabSize(), d.NumConcepts(), d.NumFunction)
	fmt.Printf("architecture  : embed %d -> feature %d -> hidden %d -> concepts %d\n",
		cfg.EmbedDim, cfg.FeatureDim, cfg.HiddenDim, d.NumConcepts())
	fmt.Printf("size          : %d bytes total (%d encoder, %d decoder)\n",
		codec.SizeBytes(), codec.EncoderSizeBytes(), codec.DecoderSizeBytes())
	fmt.Printf("params        : %d scalars\n", codec.Params().NumValues())
	return nil
}

// runVerify reloads every model and checks reconstruction sanity.
func runVerify(dir string) error {
	corp := corpus.Build()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	checked := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".kbm" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		codec, err := semantic.ReadCodec(f, corp)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		d := codec.Domain()
		gen := corpus.NewGenerator(corp, mat.NewRNG(99))
		var exs []semantic.Example
		for _, m := range gen.Batch(d.Index, 100, nil) {
			exs = append(exs, semantic.ExamplesFromMessage(d, m)...)
		}
		acc := codec.Evaluate(exs)
		status := "ok"
		if acc < 0.85 {
			status = "DEGRADED"
		}
		fmt.Printf("%-20s accuracy %.3f  %s\n", e.Name(), acc, status)
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("no .kbm files in %s", dir)
	}
	return nil
}
