// Command semload is a closed-loop load generator for the edged daemon:
// N concurrent users, each with its own sticky connection and
// deterministic RNG, draw messages from a configurable mix of corpus
// domains and keep exactly one request outstanding per user until a fixed
// request budget drains. It reports client-side throughput and a latency
// histogram, then the daemon's own counters.
//
// With -sweep it instead runs a saturation sweep: the same closed loop at
// each user count in the list, one summary line per stage, so the knee of
// the throughput curve (and the onset of shedding under -deadline) is
// visible in one run.
//
// With -mobility it runs the cluster churn scenario against an edged
// started with -nodes N: one serial deterministic request stream in
// which users roam across radio cells (OpMove) between transmits, so
// handovers and cooperative cache fetches happen under load. The run
// prints a 64-bit digest over every response; two runs with the same
// -seed against identically-started daemons are bit-identical.
//
// With -mesh it drives a multi-process edged mesh instead of a single
// daemon: requests route client-side over the same consistent-hash ring
// the members build, -spawn launches the members as child edged
// processes first, and -chaos-kill (with -mobility) SIGKILLs one member
// halfway through the run, asserting that the survivors rebalance with
// zero lost requests. -chaos-term SIGTERMs the member instead: the
// victim drains gracefully (handing every owned model and user to the
// survivors) and the run additionally asserts a clean exit and zero
// survivor origin re-fetches.
//
// Usage:
//
//	semload [-addr localhost:7060] [-users 8] [-requests 512] \
//	        [-mix it:3,med:1] [-seed 1] [-deadline 50ms]
//	semload -sweep 1,4,8,16,32 [-requests 512] ...
//	semload -mobility [-cells 3] [-move-rate 0.1] ...
//	semload -mesh host0:7060,host1:7060,host2:7060 [-spawn -edged-bin ./edged] \
//	        -mobility [-chaos-kill] ...
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"math"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("semload: %v", err)
	}
}

// parseMix parses "it:3,med:1" into per-domain weights over corp. Names
// without an explicit weight get weight 1; an empty mix is uniform.
func parseMix(corp *corpus.Corpus, mix string) ([]float64, error) {
	weights := make([]float64, len(corp.Domains))
	if mix == "" {
		for i := range weights {
			weights[i] = 1
		}
		return weights, nil
	}
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, ":")
		w := 1.0
		if hasW {
			var err error
			if w, err = strconv.ParseFloat(wstr, 64); err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		d := corp.Domain(name)
		if d == nil {
			return nil, fmt.Errorf("unknown domain %q (have %v)", name, corp.Names())
		}
		weights[d.Index] += w
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", mix)
	}
	return weights, nil
}

// pickDomain draws a domain index from the cumulative weights.
func pickDomain(rng *mat.RNG, cum []float64) int {
	x := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// parseSweep parses "1,4,8,32" into positive user counts.
func parseSweep(s string) ([]int, error) {
	var stages []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad sweep stage %q", part)
		}
		stages = append(stages, n)
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("sweep %q has no stages", s)
	}
	return stages, nil
}

// userLoop is one closed-loop client: claim a request from the shared
// budget, send it on the sticky connection, wait for the response, repeat.
// A non-zero deadline is applied per call and forwarded to the daemon's
// admission gate, so requests queued past it come back as Shed.
func userLoop(addr, user string, rng *mat.RNG, corp *corpus.Corpus, cum []float64,
	deadline time.Duration, budget *atomic.Int64, hist *metrics.Histogram,
	sent []atomic.Int64, errs, shed *atomic.Int64) error {
	cl, err := rpc.Dial(addr)
	if err != nil {
		return fmt.Errorf("%s: dial: %w", user, err)
	}
	defer cl.Close()
	gen := corpus.NewGenerator(corp, rng)
	send := func(text string) (*rpc.Response, error) {
		ctx := context.Background()
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		return cl.TransmitContext(ctx, user, text)
	}
	for budget.Add(-1) >= 0 {
		di := pickDomain(rng, cum)
		msg := gen.Message(di, nil)
		start := time.Now()
		resp, err := send(msg.Text())
		if err != nil {
			return fmt.Errorf("%s: transmit: %w", user, err)
		}
		hist.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		sent[di].Add(1)
		switch {
		case resp.Shed:
			shed.Add(1)
		case !resp.OK:
			errs.Add(1)
		}
	}
	return nil
}

// loadResult is one closed-loop run's client-side outcome.
type loadResult struct {
	done      int64
	errs      int64
	shed      int64
	elapsed   time.Duration
	hist      *metrics.Histogram
	sent      []atomic.Int64
	memBefore runtime.MemStats
	memAfter  runtime.MemStats
}

// fixedAddr routes every user to one address — the single-daemon case.
func fixedAddr(addr string) func(string) string {
	return func(string) string { return addr }
}

// loadRun drains one request budget across `users` closed-loop clients,
// each dialing the address addrFor maps its user name to (one fixed
// daemon, or the user's ring owner in mesh mode). Per-user RNGs split in
// user order from one seeded root, so a run is reproducible for any
// fixed (seed, users).
func loadRun(addrFor func(user string) string, users, requests int, deadline time.Duration,
	seed uint64, corp *corpus.Corpus, cum []float64) (*loadResult, error) {
	root := mat.NewRNG(seed)
	rngs := make([]*mat.RNG, users)
	for i := range rngs {
		rngs[i] = root.Split()
	}

	res := &loadResult{
		hist: metrics.NewLatencyHistogram(),
		sent: make([]atomic.Int64, len(corp.Domains)),
	}
	var (
		budget  atomic.Int64
		errs    atomic.Int64
		shed    atomic.Int64
		loopErr error
		errMu   sync.Mutex
		wg      sync.WaitGroup
	)
	budget.Store(int64(requests))

	runtime.ReadMemStats(&res.memBefore)
	start := time.Now()
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("u%03d", u)
			if err := userLoop(addrFor(user), user, rngs[u], corp, cum, deadline, &budget, res.hist, res.sent, &errs, &shed); err != nil {
				errMu.Lock()
				if loopErr == nil {
					loopErr = err
				}
				errMu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	runtime.ReadMemStats(&res.memAfter)
	if loopErr != nil {
		return nil, loopErr
	}
	res.errs = errs.Load()
	res.shed = shed.Load()
	res.done = res.hist.N()
	return res, nil
}

func run() error {
	var (
		addr      = flag.String("addr", "localhost:7060", "edged address")
		users     = flag.Int("users", 8, "concurrent users, one sticky connection each")
		requests  = flag.Int("requests", 512, "total request budget across all users (per stage with -sweep)")
		mix       = flag.String("mix", "", "domain mix as name:weight,... (default uniform over all domains)")
		seed      = flag.Uint64("seed", 1, "deterministic seed; user u gets the u-th split")
		deadline  = flag.Duration("deadline", 0, "per-request deadline, forwarded to the daemon's admission gate (0 = none)")
		sweep     = flag.String("sweep", "", "saturation sweep: comma-separated user counts, one closed-loop stage each")
		mobility  = flag.Bool("mobility", false, "run the serial mobility scenario against a cluster-mode edged (-nodes)")
		cells     = flag.Int("cells", 3, "radio cells users roam across (with -mobility)")
		moveRate  = flag.Float64("move-rate", 0.1, "per-request probability a user moves to a random cell (with -mobility)")
		mesh      = flag.String("mesh", "", "multi-process mesh member list, comma-separated host:port; requests route client-side over the members' ring")
		spawn     = flag.Bool("spawn", false, "launch the -mesh members as child edged processes before the run")
		edgedBin  = flag.String("edged-bin", "edged", "edged binary to launch with -spawn")
		kbDir     = flag.String("kb", "", "pretrained model dir forwarded to spawned members (-spawn)")
		chaosKill = flag.Bool("chaos-kill", false, "SIGKILL one spawned mesh member halfway through a -mesh -mobility run")
		chaosTerm = flag.Bool("chaos-term", false, "SIGTERM one spawned mesh member halfway through a -mesh -mobility run (graceful drain; gates on zero errors and zero lost models)")
		replicas  = flag.Int("replicas", 0, "forward -replicas to spawned members: hot-model replication degree (-spawn)")
	)
	flag.Parse()
	if *users <= 0 || *requests <= 0 {
		return fmt.Errorf("need positive -users and -requests (got %d, %d)", *users, *requests)
	}
	if *mobility && *cells < 2 {
		return fmt.Errorf("-mobility needs at least 2 -cells, got %d", *cells)
	}
	if *chaosKill && (*mesh == "" || !*mobility || !*spawn) {
		return fmt.Errorf("-chaos-kill requires -mesh, -mobility and -spawn")
	}
	if *chaosTerm && (*mesh == "" || !*mobility || !*spawn) {
		return fmt.Errorf("-chaos-term requires -mesh, -mobility and -spawn")
	}
	if *chaosKill && *chaosTerm {
		return fmt.Errorf("-chaos-kill and -chaos-term are mutually exclusive")
	}
	if *replicas < 0 {
		return fmt.Errorf("-replicas must be >= 0, got %d", *replicas)
	}

	corp := corpus.Build()
	weights, err := parseMix(corp, *mix)
	if err != nil {
		return err
	}
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cum[i] = sum
	}

	if *mesh != "" {
		addrs, err := parseMeshAddrs(*mesh)
		if err != nil {
			return err
		}
		var children []*exec.Cmd
		if *spawn {
			var stop func()
			children, stop, err = spawnMesh(*edgedBin, addrs, *seed, *kbDir, *replicas)
			if err != nil {
				return err
			}
			defer stop()
		}
		topo := newMeshTopology(addrs, *seed)
		defer topo.close()
		if *mobility {
			return runMeshMobility(topo, children, *chaosKill, *chaosTerm, *users, *requests, *cells, *moveRate, *seed, *mix)
		}
		// Plain closed loop against the mesh: each user's sticky connection
		// goes to its ring owner, and the final report merges every
		// member's counters.
		res, err := loadRun(func(user string) string {
			return addrs[topo.owner(user)]
		}, *users, *requests, *deadline, *seed, corp, cum)
		if err != nil {
			return err
		}
		printLoadResult(res, *users, corp)
		if st, err := topo.mergedStats(); err == nil {
			printStats(st)
		}
		return nil
	}
	if *mobility {
		return runMobility(*addr, *users, *requests, *cells, *moveRate, *seed, *mix)
	}

	if *sweep != "" {
		stages, err := parseSweep(*sweep)
		if err != nil {
			return err
		}
		return runSweep(*addr, stages, *requests, *deadline, *seed, corp, cum)
	}

	res, err := loadRun(fixedAddr(*addr), *users, *requests, *deadline, *seed, corp, cum)
	if err != nil {
		return err
	}
	printLoadResult(res, *users, corp)

	// Close with the daemon's own view of the run.
	printDaemonStats(*addr)
	return nil
}

// printLoadResult prints the client-side report of one closed-loop run.
func printLoadResult(res *loadResult, users int, corp *corpus.Corpus) {
	fmt.Printf("requests : %d ok, %d daemon errors, %d shed, %d users, %.2fs\n",
		res.done-res.errs-res.shed, res.errs, res.shed, users, res.elapsed.Seconds())
	fmt.Printf("rate     : %.1f req/s (closed loop)\n", float64(res.done)/res.elapsed.Seconds())
	fmt.Printf("latency  : mean %.2f ms  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
		res.hist.Mean(), res.hist.P(50), res.hist.P(95), res.hist.P(99))
	memReport(&res.memBefore, &res.memAfter, int(res.done))
	type dc struct {
		name string
		n    int64
	}
	mixed := make([]dc, 0, len(corp.Domains))
	for i := range res.sent {
		if n := res.sent[i].Load(); n > 0 {
			mixed = append(mixed, dc{corp.Domains[i].Name, n})
		}
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].n > mixed[j].n })
	parts := make([]string, len(mixed))
	for i, d := range mixed {
		parts[i] = fmt.Sprintf("%s:%d", d.name, d.n)
	}
	fmt.Printf("mix      : %s\n", strings.Join(parts, " "))
}

// runSweep drives one closed-loop stage per user count and prints a
// compact table: the stage where rate stops scaling (or shedding starts
// under -deadline) is the daemon's saturation point. Stage s runs with
// seed+s so stages do not replay identical traffic at a warming cache.
func runSweep(addr string, stages []int, requests int, deadline time.Duration,
	seed uint64, corp *corpus.Corpus, cum []float64) error {
	fmt.Printf("%7s %10s %9s %9s %9s %6s %6s\n",
		"users", "req/s", "p50 ms", "p95 ms", "p99 ms", "shed", "errs")
	for s, n := range stages {
		res, err := loadRun(fixedAddr(addr), n, requests, deadline, seed+uint64(s), corp, cum)
		if err != nil {
			return fmt.Errorf("sweep stage %d users: %w", n, err)
		}
		fmt.Printf("%7d %10.1f %9.2f %9.2f %9.2f %6d %6d\n",
			n, float64(res.done)/res.elapsed.Seconds(),
			res.hist.P(50), res.hist.P(95), res.hist.P(99), res.shed, res.errs)
	}
	printDaemonStats(addr)
	return nil
}

// memReport prints the client-process allocation pressure of the load run
// from two runtime.MemStats snapshots: total bytes allocated, allocation
// count, GC cycles and cumulative pause time. Latency percentiles alone
// hide GC impact; this line puts them side by side.
func memReport(before, after *runtime.MemStats, requests int) {
	allocBytes := after.TotalAlloc - before.TotalAlloc
	allocs := after.Mallocs - before.Mallocs
	gcs := after.NumGC - before.NumGC
	pause := time.Duration(after.PauseTotalNs - before.PauseTotalNs)
	perReq := float64(0)
	if requests > 0 {
		perReq = float64(allocBytes) / float64(requests)
	}
	fmt.Printf("memory   : %.1f MiB allocated (%.0f B/req), %d allocs, %d GC cycles, %s pause total\n",
		float64(allocBytes)/(1<<20), perReq, allocs, gcs, pause.Round(10*time.Microsecond))
}

// printDaemonStats fetches and prints the daemon counters (best-effort:
// the client-side report is already out).
func printDaemonStats(addr string) {
	cl, err := rpc.Dial(addr)
	if err != nil {
		return
	}
	defer cl.Close()
	s, err := cl.Stats()
	if err != nil {
		return
	}
	printStats(s)
}

// printStats prints one counter snapshot — a single daemon's, or several
// mesh members' merged with Stats.Merge.
func printStats(s *rpc.Stats) {
	fmt.Printf("daemon   : %d messages, hit %.1f%%\n", s.Messages, 100*s.SenderHitRate)
	if sv := s.Serve; sv != nil {
		fmt.Printf("serve    : in-flight %d, %d shed, service p50 %.2f ms p95 %.2f ms p99 %.2f ms, queue p50 %.2f ms p95 %.2f ms p99 %.2f ms\n",
			sv.InFlight, sv.Shed,
			sv.LatencyP50Ms, sv.LatencyP95Ms, sv.LatencyP99Ms,
			sv.QueueWaitP50Ms, sv.QueueWaitP95Ms, sv.QueueWaitP99Ms)
		if sv.Batches > 0 {
			parts := make([]string, 0, len(sv.BatchOccupancy))
			for i, n := range sv.BatchOccupancy {
				if n > 0 {
					parts = append(parts, fmt.Sprintf("%s:%d", rpc.BatchOccupancyLabels[i], n))
				}
			}
			fmt.Printf("batches  : %d batches, %d requests batched (%.2f avg), occupancy %s\n",
				sv.Batches, sv.BatchedRequests,
				float64(sv.BatchedRequests)/float64(sv.Batches), strings.Join(parts, " "))
		}
	}
	fmt.Printf("syncs    : %d decoder updates, %d bytes\n", s.SyncCount, s.SyncBytes)
	if len(s.Nodes) == 0 {
		return
	}
	var neighborHits int64
	for _, n := range s.Nodes {
		neighborHits += n.NeighborHits
	}
	fmt.Printf("cluster  : %d handovers, %d bytes migrated, %d neighbor cache hits\n",
		s.Handovers, s.MigratedBytes, neighborHits)
	for _, n := range s.Nodes {
		fmt.Printf("  %-8s: %d users, hit %.1f%%, %d models, handover in/out %d/%d, neighbor hit/served %d/%d, origin %d\n",
			n.Name, n.Users, 100*n.HitRate, n.CachedModels,
			n.HandoversIn, n.HandoversOut, n.NeighborHits, n.NeighborServed, n.OriginFetches)
	}
}

// foldResponse folds the deterministic fields of one response into the
// run digest. Simulated latency is included (it is virtual time, not
// wall-clock); service-time metrics are not.
func foldResponse(digest *uint64, parts ...string) {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	// Mix order-dependently (boost-style) so reordered responses change
	// the digest even when the multiset of responses is unchanged.
	*digest ^= h.Sum64() + 0x9e3779b97f4a7c15 + (*digest << 6) + (*digest >> 2)
}

// runMobility drives the cluster churn scenario: a single connection
// serves a serial, fully seeded stream in which each step may first move
// the emitting user to a random cell (a handover when the serving node
// changes) and then transmits one message. Serial execution is what makes
// the run digest reproducible: responses arrive in issue order.
func runMobility(addr string, users, requests, cells int, moveRate float64, seed uint64, mix string) error {
	corp := corpus.Build()
	weights, err := parseMix(corp, mix)
	if err != nil {
		return err
	}
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cum[i] = sum
	}

	cl, err := rpc.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	// One scheduler stream for user order and mobility, one generator
	// stream per user, all split in fixed order from the root seed.
	root := mat.NewRNG(seed)
	sched := root.Split()
	gens := make([]*corpus.Generator, users)
	for i := range gens {
		gens[i] = corpus.NewGenerator(corp, root.Split())
	}

	var (
		digest    uint64
		hist      = metrics.NewLatencyHistogram()
		handovers int
		moves     int
		daemonErr int
	)
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	for i := 0; i < requests; i++ {
		u := sched.Intn(users)
		user := fmt.Sprintf("u%03d", u)
		if sched.Float64() < moveRate {
			cell := sched.Intn(cells)
			resp, err := cl.Move(user, cell)
			if err != nil {
				return fmt.Errorf("move %s: %w", user, err)
			}
			if !resp.OK {
				return fmt.Errorf("move %s: daemon error %q (is edged running with -nodes?)", user, resp.Error)
			}
			if resp.Handover == nil {
				return fmt.Errorf("move %s: daemon sent no handover result (version skew?)", user)
			}
			moves++
			if resp.Handover.Moved {
				handovers++
			}
			foldResponse(&digest, "move", user, strconv.Itoa(cell),
				resp.Handover.From, resp.Handover.To,
				strconv.FormatBool(resp.Handover.Moved),
				strconv.FormatInt(resp.Handover.MigratedBytes, 10))
		}
		di := pickDomain(sched, cum)
		msg := gens[u].Message(di, nil)
		reqStart := time.Now()
		resp, err := cl.Transmit(user, msg.Text())
		if err != nil {
			return fmt.Errorf("%s: transmit: %w", user, err)
		}
		hist.Observe(float64(time.Since(reqStart)) / float64(time.Millisecond))
		if !resp.OK {
			daemonErr++
			foldResponse(&digest, "error", user, resp.Error)
			continue
		}
		foldResponse(&digest, "transmit", user, resp.Restored, resp.SelectedDomain,
			strconv.FormatUint(math.Float64bits(resp.Mismatch), 16),
			strconv.Itoa(resp.PayloadBytes),
			strconv.FormatUint(math.Float64bits(resp.LatencyMs), 16))
	}
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	fmt.Printf("requests : %d ok, %d daemon errors, %d users (serial), %.2fs\n",
		requests-daemonErr, daemonErr, users, elapsed.Seconds())
	fmt.Printf("rate     : %.1f req/s (closed loop)\n", float64(requests)/elapsed.Seconds())
	fmt.Printf("latency  : mean %.2f ms  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
		hist.Mean(), hist.P(50), hist.P(95), hist.P(99))
	memReport(&memBefore, &memAfter, requests)
	fmt.Printf("mobility : %d moves, %d handovers, %d cells, rate %.2f\n", moves, handovers, cells, moveRate)
	fmt.Printf("digest   : %016x\n", digest)
	printDaemonStats(addr)
	return nil
}
